#pragma once
/// \file failure.hpp
/// Unplanned site downtime -- the "dynamic availability" of the paper.
///
/// Each site gets an alternating up/down renewal process: up-times and
/// repair-times are exponentially distributed, and each outage picks one
/// of the configured failure modes (fully down, black hole, degraded).
/// A site can also be configured as a *permanent* black hole -- the
/// "site that accepts jobs and never completes them" that motivates the
/// feedback experiments (Figures 2 and 8).

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "grid/site.hpp"
#include "sim/engine.hpp"

namespace sphinx::obs {
class Recorder;
}  // namespace sphinx::obs

namespace sphinx::grid {

/// What an outage does to the site while it lasts.
enum class OutageMode {
  kDown,       ///< rejects submissions, running jobs stall
  kBlackHole,  ///< accepts jobs, never completes them
  kDegraded,   ///< slow responder: completes, but far slower
};

[[nodiscard]] const char* to_string(OutageMode mode) noexcept;

/// One pre-planned outage for the schedule-driven injection mode.
struct ScheduledOutage {
  SimTime at = 0.0;       ///< absolute outage start
  Duration duration = 0.0;  ///< strictly positive; repair at `at + duration`
  OutageMode mode = OutageMode::kDown;
};

/// Failure behaviour of one site.
struct FailureConfig {
  bool enabled = false;
  Duration mean_uptime = hours(6);
  Duration mean_downtime = minutes(30);
  /// Mode mix for each outage; weights need not sum to 1 (normalized).
  double weight_down = 1.0;
  double weight_black_hole = 0.0;
  double weight_degraded = 0.0;
  /// If true the site starts and stays a black hole forever.
  bool permanent_black_hole = false;
  /// Schedule-driven mode: when non-empty this exact outage list replaces
  /// the exponential renewal process (and ignores `enabled`).  Entries
  /// must be sorted by `at` and non-overlapping: each repair
  /// (`at + duration`) must not run past the next entry's `at`.
  std::vector<ScheduledOutage> schedule;
};

/// Drives one site through up/down cycles on the engine.  Mode weights
/// must be non-negative and finite (contract-checked); an all-zero mix
/// falls back to plain downtime (`weight_down` semantics) instead of
/// selecting a mode from an undefined distribution.
class FailureModel {
 public:
  FailureModel(sim::Engine& engine, Site& site, FailureConfig config, Rng rng);

  /// Begins the renewal process (applies permanent modes immediately).
  void start();

  /// Attaches a flight recorder; outages and repairs are traced with
  /// their failure mode.  Observation only.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

  [[nodiscard]] std::size_t outages() const noexcept { return outages_; }
  [[nodiscard]] const FailureConfig& config() const noexcept { return config_; }

 private:
  void schedule_failure();
  void fail();
  void repair();
  void apply_mode(OutageMode mode);
  void fail_scheduled(std::size_t index);
  void repair_scheduled();
  void record_outage(const char* mode);
  void record_repair();

  sim::Engine& engine_;
  Site& site_;
  FailureConfig config_;
  Rng rng_;
  std::size_t outages_ = 0;
  obs::Recorder* recorder_ = nullptr;
};

/// Poisson background load from other grid users (the site's "dynamic
/// load").  Jobs arrive with exponential inter-arrival times, occupy CPUs
/// for exponential durations, and carry a configurable VO whose local
/// priority the site applies -- this is the traffic a monitoring system
/// sees in the queue lengths.
struct BackgroundLoadConfig {
  bool enabled = false;
  Duration mean_interarrival = 30.0;  ///< seconds between arrivals
  Duration mean_duration = minutes(10);
  std::string vo = "background";
  /// Jobs injected immediately at start so the site begins in (approx.)
  /// steady state instead of empty -- remaining times of in-service
  /// exponential jobs are again exponential, so fresh draws are correct.
  int prefill_jobs = 0;
  /// Non-stationarity: arrival rate alternates between (1 + burstiness)
  /// and (1 - burstiness) times the base rate, switching phase after
  /// exponential times with mean `mean_phase`.  This is what makes
  /// point-in-time monitoring data go stale in a way that matters
  /// (paper section 2: "the dynamic load ... of the resources").
  double burstiness = 0.0;
  Duration mean_phase = minutes(25);
};

class BackgroundLoad {
 public:
  BackgroundLoad(sim::Engine& engine, Site& site, BackgroundLoadConfig config,
                 Rng rng);

  void start();
  [[nodiscard]] std::size_t jobs_injected() const noexcept { return injected_; }
  /// True while in the heavy phase (for tests).
  [[nodiscard]] bool heavy_phase() const noexcept { return heavy_; }

 private:
  void schedule_arrival();
  void schedule_phase_flip();

  sim::Engine& engine_;
  Site& site_;
  BackgroundLoadConfig config_;
  Rng rng_;
  std::size_t injected_ = 0;
  bool heavy_ = false;
};

}  // namespace sphinx::grid
