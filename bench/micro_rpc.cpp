/// Microbenchmarks for the reliable-RPC stack: dedup-cache lookup cost
/// on the service hot path, and the end-to-end overhead the retry layer
/// (sequence numbers, timers, outbox hooks, dedup) adds on a perfect
/// wire -- the price every fault-free experiment pays for at-least-once
/// delivery.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/clarens.hpp"
#include "rpc/transport.hpp"
#include "sim/engine.hpp"

namespace {

using namespace sphinx;

rpc::Proxy bench_proxy() {
  return rpc::Proxy(
      rpc::Identity{"/DC=org/DC=griphyn/CN=Bench", "/CN=iGOC CA"}, "uscms",
      {"/uscms/production"}, 0.0, hours(24 * 365));
}

rpc::AuthzPolicy open_policy() {
  rpc::AuthzPolicy policy;
  policy.allow_vo("*", "uscms");
  return policy;
}

/// One client/service pair on a zero-fault bus; `reliable` toggles the
/// whole at-least-once machinery off (single attempt, no dedup cache)
/// for the A/B comparison.
struct RpcHarness {
  explicit RpcHarness(bool reliable)
      : service(bus, "sphinx-server", open_policy()),
        client(bus, "bench-client", bench_proxy(), make_retry(reliable)) {
    if (!reliable) service.set_dedup_capacity(0);
    service.register_method(
        "echo", [](const std::vector<rpc::XrValue>& params, const rpc::Proxy&) {
          return Expected<rpc::XrValue>(rpc::XrValue(params.at(0)));
        });
  }

  static rpc::RetryPolicy make_retry(bool reliable) {
    rpc::RetryPolicy retry;
    if (!reliable) retry.max_attempts = 1;
    return retry;
  }

  sim::Engine engine;
  rpc::MessageBus bus{engine, Rng(1), 0.05, 0.0};
  rpc::ClarensService service;
  rpc::ClarensClient client;
};

/// Round-trip calls on a perfect wire.  Compare reliable=1 vs reliable=0
/// to read the retry-path overhead at 0% loss straight off the report.
void BM_RpcRoundTrip(benchmark::State& state) {
  RpcHarness harness(state.range(0) == 1);
  std::size_t completed = 0;
  for (auto _ : state) {
    harness.client.call("sphinx-server", "echo", {rpc::XrValue("payload")},
                        [&completed](Expected<rpc::XrValue> result) {
                          if (result.has_value()) ++completed;
                        });
    harness.engine.run_until();
  }
  if (completed != state.iterations()) state.SkipWithError("lost a call");
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.SetLabel(state.range(0) == 1 ? "reliable" : "bare");
}
BENCHMARK(BM_RpcRoundTrip)->Arg(0)->Arg(1);

/// Dedup-cache lookup on the service hot path.  range(0) = cache
/// capacity (and resident entries); every request is a fresh miss, so
/// this prices the lookup + FIFO bookkeeping a first delivery pays.
void BM_DedupCacheMiss(benchmark::State& state) {
  RpcHarness harness(true);
  const std::size_t capacity = static_cast<std::size_t>(state.range(0));
  harness.service.set_dedup_capacity(capacity);
  harness.bus.register_endpoint("raw-caller", [](const rpc::Envelope&) {});
  const std::string request =
      rpc::MethodCall{"echo", {rpc::XrValue("x")}}.serialize();
  std::uint64_t seq = 0;
  // Pre-fill the cache to capacity so steady-state misses also evict.
  for (std::size_t i = 0; i < capacity; ++i) {
    harness.bus.send("raw-caller", "sphinx-server", request, bench_proxy(),
                     ++seq);
  }
  harness.engine.run_until();
  for (auto _ : state) {
    harness.bus.send("raw-caller", "sphinx-server", request, bench_proxy(),
                     ++seq);
    harness.engine.run_until();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DedupCacheMiss)->Range(8, 4096);

/// Dedup-cache hit: the same sequence number over and over, so every
/// request after the first replays the cached reply without touching
/// the handler.  This is the retransmission fast path.
void BM_DedupCacheHit(benchmark::State& state) {
  RpcHarness harness(true);
  harness.service.set_dedup_capacity(static_cast<std::size_t>(state.range(0)));
  harness.bus.register_endpoint("raw-caller", [](const rpc::Envelope&) {});
  const std::string request =
      rpc::MethodCall{"echo", {rpc::XrValue("x")}}.serialize();
  harness.bus.send("raw-caller", "sphinx-server", request, bench_proxy(), 1);
  harness.engine.run_until();
  for (auto _ : state) {
    harness.bus.send("raw-caller", "sphinx-server", request, bench_proxy(), 1);
    harness.engine.run_until();
  }
  if (harness.service.calls_served() != 1) {
    state.SkipWithError("handler re-executed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DedupCacheHit)->Range(8, 4096);

}  // namespace
