file(REMOVE_RECURSE
  "CMakeFiles/baseline_manual.dir/baseline_manual.cpp.o"
  "CMakeFiles/baseline_manual.dir/baseline_manual.cpp.o.d"
  "baseline_manual"
  "baseline_manual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_manual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
