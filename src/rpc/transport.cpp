#include "rpc/transport.hpp"

#include <utility>

#include "obs/recorder.hpp"

namespace sphinx::rpc {

MessageBus::MessageBus(sim::Engine& engine, Rng rng, Duration base_latency,
                       Duration jitter)
    : engine_(engine),
      rng_(std::move(rng)),
      base_latency_(base_latency),
      jitter_(jitter) {
  SPHINX_ASSERT(base_latency_ >= 0, "latency must be non-negative");
  SPHINX_ASSERT(jitter_ >= 0, "jitter must be non-negative");
}

void MessageBus::register_endpoint(const std::string& name, Handler handler) {
  SPHINX_ASSERT(handler != nullptr, "endpoint handler must not be null");
  endpoints_[name] = std::move(handler);
}

void MessageBus::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

bool MessageBus::has_endpoint(const std::string& name) const noexcept {
  return endpoints_.contains(name);
}

MessageId MessageBus::send(const std::string& from, const std::string& to,
                           std::string payload, Proxy proxy) {
  Envelope env;
  env.from = from;
  env.to = to;
  env.payload = std::move(payload);
  env.proxy = std::move(proxy);
  return post(std::move(env));
}

MessageId MessageBus::reply(const Envelope& request, std::string payload) {
  Envelope env;
  env.from = request.to;
  env.to = request.from;
  env.payload = std::move(payload);
  env.in_reply_to = request.id;
  return post(std::move(env));
}

MessageId MessageBus::post(Envelope envelope) {
  envelope.id = ids_.next();
  envelope.sent_at = engine_.now();
  ++stats_.sent;
  const Duration delay =
      base_latency_ + (jitter_ > 0 ? rng_.uniform(0.0, jitter_) : 0.0);
  const MessageId id = envelope.id;
  engine_.schedule_in(
      delay, "bus:" + envelope.from + "->" + envelope.to,
      [this, env = std::move(envelope)]() {
        const auto it = endpoints_.find(env.to);
        if (it == endpoints_.end()) {
          ++stats_.dropped;
          if (recorder_ != nullptr) recorder_->count("bus", "bus.dropped");
          return;
        }
        ++stats_.delivered;
        if (recorder_ != nullptr) {
          const Duration latency = engine_.now() - env.sent_at;
          recorder_->event(obs::TraceKind::kBusDelivery, env.from, env.to, "",
                           latency);
          recorder_->observe("bus", "bus.delivery_latency", latency);
        }
        it->second(env);
      });
  return id;
}

}  // namespace sphinx::rpc
