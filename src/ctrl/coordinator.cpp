#include "ctrl/coordinator.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "obs/trace.hpp"

namespace sphinx::ctrl {

LeaseCoordinator::LeaseCoordinator(rpc::MessageBus& bus,
                                   CoordinatorConfig config)
    : LeaseCoordinator(bus, std::move(config), /*deferred_recovery=*/false) {}

LeaseCoordinator::LeaseCoordinator(rpc::MessageBus& bus,
                                   CoordinatorConfig config,
                                   bool /*deferred_recovery*/)
    : bus_(bus), config_(std::move(config)) {
  SPHINX_PRECONDITION(config_.lease_ttl > 0, "lease ttl must be positive");
  SPHINX_PRECONDITION(config_.monitor_period > 0,
                      "monitor period must be positive");
  register_methods();
  monitor_ = std::make_unique<sim::PeriodicProcess>(
      bus_.engine(), "ctrl-monitor:" + config_.endpoint,
      config_.monitor_period, [this] { monitor_sweep(); },
      config_.monitor_phase);
}

Expected<std::unique_ptr<LeaseCoordinator>> LeaseCoordinator::recover(
    rpc::MessageBus& bus, CoordinatorConfig config,
    const db::Journal& journal) {
  auto coordinator = std::unique_ptr<LeaseCoordinator>(new LeaseCoordinator(
      bus, std::move(config), /*deferred_recovery=*/true));
  if (auto replayed = coordinator->leases_.recover_from(journal); !replayed) {
    return Unexpected<Error>{replayed.error()};
  }
  coordinator->leases_.check_invariants();
  return coordinator;
}

LeaseCoordinator::~LeaseCoordinator() = default;

void LeaseCoordinator::register_methods() {
  rpc::AuthzPolicy policy;
  policy.allow_vo("*", config_.control_vo);
  service_ = std::make_unique<rpc::ClarensService>(bus_, config_.endpoint,
                                                   std::move(policy));
  service_->register_method(
      "ctrl.renew", [this](const std::vector<rpc::XrValue>& params,
                           const rpc::Proxy&) { return handle_renew(params); });
}

std::uint64_t LeaseCoordinator::grant(const std::string& shard,
                                      const std::string& owner) {
  const std::uint64_t epoch =
      leases_.grant(shard, owner, bus_.engine().now(), config_.lease_ttl);
  if (recorder_ != nullptr) {
    recorder_->event(obs::TraceKind::kLeaseGranted, config_.endpoint, shard,
                     owner, static_cast<double>(epoch));
    recorder_->count("ctrl", "ctrl.leases_granted");
  }
  return epoch;
}

void LeaseCoordinator::set_adopt_handler(AdoptHandler handler) {
  adopt_handler_ = std::move(handler);
}

void LeaseCoordinator::set_adopted_callback(AdoptedCallback callback) {
  adopted_callback_ = std::move(callback);
}

void LeaseCoordinator::start() { monitor_->start(); }
void LeaseCoordinator::stop() { monitor_->stop(); }

Expected<rpc::XrValue> LeaseCoordinator::handle_renew(
    const std::vector<rpc::XrValue>& params) {
  if (params.size() != 3 || !params[0].is_string() || !params[1].is_string() ||
      !params[2].is_int()) {
    return make_error("bad_request", "ctrl.renew(shard, owner, epoch)");
  }
  const std::string& shard = params[0].as_string();
  const std::string& owner = params[1].as_string();
  const auto epoch = static_cast<std::uint64_t>(params[2].as_int());
  switch (leases_.renew(shard, owner, epoch, bus_.engine().now(),
                        config_.lease_ttl)) {
    case RenewOutcome::kRenewed:
      ++stats_.renewals;
      if (recorder_ != nullptr) recorder_->count("ctrl", "ctrl.lease_renewals");
      return rpc::XrValue("renewed");
    case RenewOutcome::kFenced:
      ++stats_.fenced;
      if (recorder_ != nullptr) {
        recorder_->event(obs::TraceKind::kLeaseFenced, config_.endpoint, shard,
                         owner, static_cast<double>(epoch));
        recorder_->count("ctrl", "ctrl.lease_fenced");
      }
      return rpc::XrValue("fenced");
    case RenewOutcome::kUnknownShard:
      break;
  }
  return rpc::XrValue("unknown");
}

void LeaseCoordinator::monitor_sweep() {
  const SimTime now = bus_.engine().now();
  // Phase 1: declare newly overdue leases dead.  mark_expired() flips
  // them out of expired()'s view, so each missed deadline is announced
  // exactly once no matter how often the monitor sweeps.
  for (const Lease& lease : leases_.expired(now)) {
    leases_.mark_expired(lease.shard);
    ++stats_.expirations;
    if (recorder_ != nullptr) {
      recorder_->event(obs::TraceKind::kLeaseExpired, config_.endpoint,
                       lease.shard, lease.owner,
                       static_cast<double>(lease.epoch));
      recorder_->count("ctrl", "ctrl.lease_expired");
    }
  }
  // Phase 2: adopt every dead shard that has a candidate.  dead() is the
  // standing work-list -- a shard whose adoption fails (no survivor, or
  // the handler refused) simply comes back on the next sweep.
  for (const Lease& lease : leases_.dead()) {
    const std::optional<std::string> adopter =
        leases_.first_live_owner(now, lease.owner);
    if (!adopter.has_value()) {
      ++stats_.failed_adoptions;
      continue;
    }
    if (adopt_handler_ != nullptr) {
      if (auto adopted = adopt_handler_(lease.shard, lease.owner, *adopter);
          !adopted) {
        ++stats_.failed_adoptions;
        continue;
      }
    }
    const std::uint64_t epoch =
        leases_.transfer(lease.shard, *adopter, now, config_.lease_ttl);
    ++stats_.adoptions;
    if (recorder_ != nullptr) {
      recorder_->event(obs::TraceKind::kShardAdopted, config_.endpoint,
                       lease.shard, lease.owner + "->" + *adopter,
                       static_cast<double>(epoch));
      recorder_->count("ctrl", "ctrl.shard_adoptions");
    }
    if (adopted_callback_ != nullptr) {
      adopted_callback_(lease.shard, *adopter, epoch);
    }
  }
}

}  // namespace sphinx::ctrl
