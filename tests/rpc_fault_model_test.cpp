// Tests for the bus-level network fault model: injected loss,
// duplication, reorder spikes, timed partition windows, the split drop
// counters, and the byte-identity guarantee for fault-free configs.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "obs/recorder.hpp"
#include "rpc/transport.hpp"
#include "sim/engine.hpp"

namespace sphinx::rpc {
namespace {

class FaultBusFixture : public ::testing::Test {
 protected:
  /// Installs one rule and returns the bus for chaining.
  MessageBus& with_rule(LinkFaultRule rule, std::uint64_t faults_seed = 42) {
    NetworkFaultConfig config;
    config.rules.push_back(rule);
    bus.set_fault_model(config, Rng(faults_seed));
    return bus;
  }

  /// Registers a sink endpoint that counts deliveries.
  std::size_t* sink(const std::string& name) {
    auto counter = std::make_unique<std::size_t>(0);
    std::size_t* raw = counter.get();
    counters_.push_back(std::move(counter));
    bus.register_endpoint(name, [raw](const Envelope&) { ++*raw; });
    return raw;
  }

  sim::Engine engine;
  MessageBus bus{engine, Rng(1), 0.05, 0.0};

 private:
  std::vector<std::unique_ptr<std::size_t>> counters_;
};

TEST_F(FaultBusFixture, CertainLossDropsEveryMessage) {
  LinkFaultRule rule;  // empty prefixes: all links
  rule.loss = 1.0;
  with_rule(rule);
  std::size_t* got = sink("server");
  for (int i = 0; i < 8; ++i) bus.send("client", "server", "m");
  engine.run_until();
  EXPECT_EQ(*got, 0u);
  EXPECT_EQ(bus.stats().sent, 8u);
  EXPECT_EQ(bus.stats().lost_injected, 8u);
  EXPECT_EQ(bus.stats().delivered, 0u);
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 0u);
}

TEST_F(FaultBusFixture, CertainDuplicationDeliversTwice) {
  LinkFaultRule rule;
  rule.duplicate = 1.0;
  with_rule(rule);
  std::size_t* got = sink("server");
  bus.send("client", "server", "m");
  engine.run_until();
  EXPECT_EQ(*got, 2u);
  EXPECT_EQ(bus.stats().sent, 1u);
  EXPECT_EQ(bus.stats().duplicated_injected, 1u);
  EXPECT_EQ(bus.stats().delivered, 2u);
}

TEST_F(FaultBusFixture, PartitionWindowIsHalfOpen) {
  LinkFaultRule rule;
  rule.partition = true;
  rule.start = 10.0;
  rule.end = 20.0;
  with_rule(rule);
  std::size_t* got = sink("server");
  for (const SimTime at : {5.0, 10.0, 19.99, 20.0}) {
    engine.schedule_at(at, "send", [this] { bus.send("c", "server", "m"); });
  }
  engine.run_until();
  // Sends at t=10 and t=19.99 fall inside [start, end); 5.0 and 20.0 pass.
  EXPECT_EQ(*got, 2u);
  EXPECT_EQ(bus.stats().partition_dropped, 2u);
  EXPECT_EQ(bus.stats().lost_injected, 0u);
}

TEST_F(FaultBusFixture, RuleMatchingIsSymmetricAndPrefixBased) {
  LinkFaultRule rule;
  rule.from_prefix = "client";
  rule.to_prefix = "server";
  rule.partition = true;
  with_rule(rule);
  std::size_t* to_server = sink("server/out");
  std::size_t* to_client = sink("client-7");
  std::size_t* to_other = sink("other");
  bus.send("client-7", "server/out", "req");     // forward: partitioned
  bus.send("server/out", "client-7", "reply");   // reverse: partitioned too
  bus.send("client-7", "other", "side");         // unmatched link: delivered
  engine.run_until();
  EXPECT_EQ(*to_server, 0u);
  EXPECT_EQ(*to_client, 0u);
  EXPECT_EQ(*to_other, 1u);
  EXPECT_EQ(bus.stats().partition_dropped, 2u);
}

TEST_F(FaultBusFixture, ReorderSpikeDelaysDelivery) {
  LinkFaultRule rule;
  rule.reorder = 1.0;
  rule.reorder_spike = 100.0;
  with_rule(rule);
  std::vector<SimTime> delivered_at;
  bus.register_endpoint("server", [&](const Envelope&) {
    delivered_at.push_back(engine.now());
  });
  bus.send("client", "server", "m");
  engine.run_until();
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_GT(delivered_at[0], 0.05);  // base latency plus a spike
  EXPECT_LT(delivered_at[0], 100.05 + 1e-9);
  EXPECT_EQ(bus.stats().reordered_injected, 1u);
}

TEST_F(FaultBusFixture, DropDetailDistinguishesUnregisteredFromMissing) {
  obs::Recorder recorder(engine);
  bus.set_recorder(&recorder);
  std::size_t* got = sink("ephemeral");
  bus.send("client", "ephemeral", "in-flight");
  bus.unregister_endpoint("ephemeral");  // drop the in-flight message
  bus.send("client", "never-wired", "lost cause");
  engine.run_until();
  EXPECT_EQ(*got, 0u);
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 2u);
  std::vector<std::string> details;
  for (const obs::TraceEvent& e : recorder.trace().events()) {
    if (e.kind == obs::TraceKind::kBusDrop) details.push_back(e.detail);
  }
  ASSERT_EQ(details.size(), 2u);
  EXPECT_EQ(details[0], "endpoint_unregistered");
  EXPECT_EQ(details[1], "missing_endpoint");
  EXPECT_EQ(recorder.counter("bus.dropped_no_endpoint", "bus"), 2u);
}

TEST_F(FaultBusFixture, HandoffWindowDistinguishesPlannedDropsFromCrash) {
  obs::Recorder recorder(engine);
  bus.set_recorder(&recorder);
  std::size_t* got = sink("sphinx-server/shard0");
  bus.send("client", "sphinx-server/shard0", "in-flight");

  // Planned ownership transfer: announce the handoff, then take the
  // endpoint down.  The in-flight reply is dropped -- but as
  // "endpoint_handoff", counted separately from crash-style drops.
  bus.expect_handoff("sphinx-server/shard0");
  EXPECT_TRUE(bus.handoff_pending("sphinx-server/shard0"));
  bus.unregister_endpoint("sphinx-server/shard0");
  engine.run_until();
  EXPECT_EQ(*got, 0u);
  EXPECT_EQ(bus.stats().dropped_handoff, 1u);
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 0u);

  std::vector<std::string> details;
  for (const obs::TraceEvent& e : recorder.trace().events()) {
    if (e.kind == obs::TraceKind::kBusDrop) details.push_back(e.detail);
  }
  ASSERT_EQ(details.size(), 1u);
  EXPECT_EQ(details[0], "endpoint_handoff");
  EXPECT_EQ(recorder.counter("bus.dropped_handoff", "bus"), 1u);
}

TEST_F(FaultBusFixture, ReRegistrationClosesTheHandoffWindow) {
  obs::Recorder recorder(engine);
  bus.set_recorder(&recorder);
  bus.expect_handoff("sphinx-server/shard0");

  // The new owner registering the endpoint completes the handoff; a
  // later unregister is a plain crash again, not a handoff remnant.
  std::size_t* got = sink("sphinx-server/shard0");
  EXPECT_FALSE(bus.handoff_pending("sphinx-server/shard0"));
  bus.send("client", "sphinx-server/shard0", "post-handoff");
  engine.run_until();
  EXPECT_EQ(*got, 1u);
  EXPECT_EQ(bus.stats().dropped_handoff, 0u);

  bus.send("client", "sphinx-server/shard0", "in-flight");
  bus.unregister_endpoint("sphinx-server/shard0");
  engine.run_until();
  EXPECT_EQ(bus.stats().dropped_handoff, 0u);
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 1u);
  std::vector<std::string> details;
  for (const obs::TraceEvent& e : recorder.trace().events()) {
    if (e.kind == obs::TraceKind::kBusDrop) details.push_back(e.detail);
  }
  ASSERT_EQ(details.size(), 1u);
  EXPECT_EQ(details[0], "endpoint_unregistered");
}

// --- control-plane lane -----------------------------------------------------

// Control traffic (names under the configured prefix) must not perturb
// the core latency stream: a run with heartbeats interleaved delivers
// the core messages at exactly the times a heartbeat-free run does.
TEST(ControlStream, ControlTrafficNeverShiftsCoreLatencyDraws) {
  auto run = [](bool with_ctrl_traffic) {
    sim::Engine engine;
    MessageBus bus{engine, Rng(1), 0.05, 0.05};
    bus.set_control_stream("ctrl/", Rng(99));
    std::vector<SimTime> delivered_at;
    bus.register_endpoint("server", [&](const Envelope&) {
      delivered_at.push_back(engine.now());
    });
    bus.register_endpoint("ctrl/coordinator", [](const Envelope&) {});
    for (int i = 0; i < 16; ++i) {
      engine.schedule_at(static_cast<double>(i), "send", [&bus] {
        bus.send("client", "server", "core");
      });
      if (with_ctrl_traffic) {
        engine.schedule_at(static_cast<double>(i) + 0.5, "beat", [&bus] {
          bus.send("ctrl/hb/s0", "ctrl/coordinator", "renew");
        });
      }
    }
    engine.run_until();
    return delivered_at;
  };
  EXPECT_EQ(run(false), run(true));
}

// Control traffic is exempt from probabilistic faults (loss here), and
// its draws never consume from the faults stream either.
TEST(ControlStream, ControlTrafficIsExemptFromProbabilisticFaults) {
  sim::Engine engine;
  MessageBus bus{engine, Rng(1), 0.05, 0.0};
  bus.set_control_stream("ctrl/", Rng(99));
  NetworkFaultConfig config;
  LinkFaultRule rule;
  rule.loss = 1.0;
  config.rules.push_back(rule);
  bus.set_fault_model(config, Rng(7));
  std::size_t ctrl_delivered = 0;
  bus.register_endpoint("ctrl/coordinator",
                        [&](const Envelope&) { ++ctrl_delivered; });
  std::size_t core_delivered = 0;
  bus.register_endpoint("server", [&](const Envelope&) { ++core_delivered; });
  for (int i = 0; i < 8; ++i) {
    bus.send("ctrl/hb/s0", "ctrl/coordinator", "renew");
    bus.send("client", "server", "core");
  }
  engine.run_until();
  EXPECT_EQ(ctrl_delivered, 8u);
  EXPECT_EQ(core_delivered, 0u);
  EXPECT_EQ(bus.stats().lost_injected, 8u);
}

// Partitions are deterministic (no RNG draw), so the control lane still
// honors them: a partition covering the coordinator severs heartbeats.
TEST(ControlStream, ControlTrafficStillHonorsPartitions) {
  sim::Engine engine;
  MessageBus bus{engine, Rng(1), 0.05, 0.0};
  bus.set_control_stream("ctrl/", Rng(99));
  NetworkFaultConfig config;
  LinkFaultRule cut;
  cut.from_prefix = "ctrl/hb/";
  cut.to_prefix = "ctrl/coordinator";
  cut.start = 1.0;
  cut.end = 2.0;
  cut.partition = true;
  config.rules.push_back(cut);
  bus.set_fault_model(config, Rng(7));
  std::size_t delivered = 0;
  bus.register_endpoint("ctrl/coordinator",
                        [&](const Envelope&) { ++delivered; });
  engine.schedule_at(0.5, "s", [&] {
    bus.send("ctrl/hb/s0", "ctrl/coordinator", "renew");
  });
  engine.schedule_at(1.5, "s", [&] {
    bus.send("ctrl/hb/s0", "ctrl/coordinator", "renew");
  });
  engine.schedule_at(2.5, "s", [&] {
    bus.send("ctrl/hb/s0", "ctrl/coordinator", "renew");
  });
  engine.run_until();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(bus.stats().partition_dropped, 1u);
}

TEST_F(FaultBusFixture, InjectedFaultsEmitObserveOnlyTraceEvents) {
  obs::Recorder recorder(engine);
  bus.set_recorder(&recorder);
  LinkFaultRule loss;
  loss.loss = 1.0;
  loss.end = 1.0;
  LinkFaultRule dup;
  dup.duplicate = 1.0;
  dup.start = 1.0;
  dup.end = 2.0;
  LinkFaultRule cut;
  cut.partition = true;
  cut.start = 2.0;
  NetworkFaultConfig config;
  config.rules = {loss, dup, cut};
  bus.set_fault_model(config, Rng(9));
  sink("server");
  engine.schedule_at(0.5, "s", [this] { bus.send("c", "server", "a"); });
  engine.schedule_at(1.5, "s", [this] { bus.send("c", "server", "b"); });
  engine.schedule_at(2.5, "s", [this] { bus.send("c", "server", "c"); });
  engine.run_until();
  EXPECT_EQ(recorder.counter("bus.lost", "bus"), 1u);
  EXPECT_EQ(recorder.counter("bus.duplicated", "bus"), 1u);
  EXPECT_EQ(recorder.counter("bus.partitioned", "bus"), 1u);
}

// The fault model must be pay-for-what-you-use: installing a config whose
// rules can never fire leaves delivery timing and stats byte-identical to
// a bus with no model at all, because fault draws come from a dedicated
// stream and zero-probability rules draw nothing that alters delivery.
TEST(FaultModelDeterminism, InertConfigKeepsDeliveryTimingIdentical) {
  auto run = [](bool install_inert_model) {
    sim::Engine engine;
    MessageBus bus{engine, Rng(1), 0.05, 0.02};
    if (install_inert_model) {
      NetworkFaultConfig config;
      config.rules.push_back(LinkFaultRule{});  // all-zero probabilities
      bus.set_fault_model(config, Rng(1234));
    }
    std::vector<SimTime> delivered_at;
    bus.register_endpoint("server", [&](const Envelope&) {
      delivered_at.push_back(engine.now());
    });
    for (int i = 0; i < 32; ++i) {
      engine.schedule_at(static_cast<double>(i), "send", [&bus] {
        bus.send("client", "server", "m");
      });
    }
    engine.run_until();
    return delivered_at;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultModelDeterminism, SameSeedSameFaultSequence) {
  auto run = [] {
    sim::Engine engine;
    MessageBus bus{engine, Rng(1), 0.05, 0.0};
    NetworkFaultConfig config;
    LinkFaultRule rule;
    rule.loss = 0.3;
    rule.duplicate = 0.2;
    rule.reorder = 0.2;
    config.rules.push_back(rule);
    bus.set_fault_model(config, Rng(77));
    std::size_t delivered = 0;
    bus.register_endpoint("server", [&](const Envelope&) { ++delivered; });
    for (int i = 0; i < 64; ++i) {
      engine.schedule_at(static_cast<double>(i), "send", [&bus] {
        bus.send("client", "server", "m");
      });
    }
    engine.run_until();
    return std::tuple{delivered, bus.stats().lost_injected,
                      bus.stats().duplicated_injected,
                      bus.stats().reordered_injected};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<1>(a), 0u);  // the probabilities actually fired
  EXPECT_GT(std::get<2>(a), 0u);
}

}  // namespace
}  // namespace sphinx::rpc
