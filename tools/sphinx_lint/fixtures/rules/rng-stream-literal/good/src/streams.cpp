/// \file streams.cpp
/// Fixture: compliant stream labels -- whole-literal names and
/// 'prefix/' + suffix families.

#include <string>

namespace fixture {

struct Seeds {
  int stream(const std::string& label) const;
};

int plain_label(const Seeds& seeds) { return seeds.stream("bus"); }

int family_label(const Seeds& seeds, const std::string& name) {
  return seeds.stream("site/" + name);
}

}  // namespace fixture
