#pragma once
/// \file dax.hpp
/// DAX-style XML interchange for abstract DAGs.
///
/// Chimera emits abstract workflow descriptions as XML ("abstract DAG in
/// XML", the DAX format Pegasus and SPHINX-era tools consumed).  This
/// module writes and parses that representation so workflows can be
/// stored, shipped and inspected as documents rather than only as
/// in-memory objects:
///
///   <adag name="diamond" dagId="7" jobCount="4">
///     <job id="101" name="reco" computeTime="60">
///       <uses lfn="lfn://raw/a" link="input"/>
///       <uses lfn="lfn://reco/a" link="output" size="42000000"/>
///     </job>
///     <child ref="102"><parent ref="101"/></child>
///   </adag>

#include <string>

#include "common/error.hpp"
#include "workflow/dag.hpp"

namespace sphinx::workflow {

/// Serializes a DAG as a DAX document (pretty-printed XML).
[[nodiscard]] std::string write_dax(const Dag& dag);

/// Parses a DAX document.  Validates structure (acyclic, dataflow
/// consistency) before returning.
[[nodiscard]] Expected<Dag> parse_dax(const std::string& xml);

}  // namespace sphinx::workflow
