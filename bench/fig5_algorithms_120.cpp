/// Figure 5: the four scheduling algorithms at 120 DAGs x 10 jobs --
/// the scalability point.  Paper: "the results follow the trend same as
/// the 30 and 60 jobs experiments, thus exhibiting scalability".

#include "bench_common.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Figure 5", "four algorithms (120 dags x 10 jobs/dag)");
  exp::Experiment experiment(paper_config(120));
  const auto results = experiment.run(exp::standard_panel());
  print_results("fig5", results, true);

  const double best = results.front().avg_dag_completion;
  double worst = best;
  for (const auto& r : results) {
    worst = std::max(worst, r.avg_dag_completion);
  }
  std::printf("completion-time vs worst: %.1f%% better\n",
              100.0 * (worst - best) / worst);
  return 0;
}
