#pragma once
/// \file journal.hpp
/// Append-only operation log for crash recovery.
///
/// Every committed mutation on every table of a Database is appended here.
/// A fresh Database replaying the journal reaches the exact pre-crash
/// state -- this is the mechanism behind the paper's claim that SPHINX is
/// "easily recoverable from internal component failures" (section 3.1).
/// The log has a text serialization so it can be persisted and reloaded.

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "db/table.hpp"

namespace sphinx::db {

/// One journal record.
struct JournalEntry {
  enum class Op { kCreateTable, kInsert, kUpdate, kErase };

  Op op = Op::kInsert;
  std::string table;
  RowId row = kInvalidRow;
  std::size_t column = 0;            ///< kUpdate only
  std::vector<Value> cells;          ///< kInsert: full row; kUpdate: [value]
  std::vector<Column> schema;        ///< kCreateTable only
};

/// The append-only log.
class Journal {
 public:
  void append(JournalEntry entry) { entries_.push_back(std::move(entry)); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const std::vector<JournalEntry>& entries() const noexcept {
    return entries_;
  }
  void clear() noexcept { entries_.clear(); }

  /// Line-oriented text serialization (one record per line, tab-separated,
  /// values escaped).  Round-trips via parse().
  [[nodiscard]] std::string serialize() const;

  /// Parses a serialized journal.  Returns an error on malformed input.
  [[nodiscard]] static Expected<Journal> parse(const std::string& text);

 private:
  std::vector<JournalEntry> entries_;
};

}  // namespace sphinx::db
