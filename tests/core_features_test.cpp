// End-to-end tests for the extension features: output persistence
// (planner step 4), DAG request priorities, soft-state RLI propagation
// and the Condor-style user log.

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "submit/userlog.hpp"
#include "workflow/generator.hpp"

namespace sphinx::exp {
namespace {

ScenarioConfig quiet(std::uint64_t seed = 21) {
  ScenarioConfig config;
  config.seed = seed;
  config.site_failures = false;
  config.background_load = false;
  return config;
}

TEST(OutputPersistence, FinalOutputsArchivedIntermediatesNot) {
  Scenario scenario(quiet());
  const SiteId archive = scenario.grid().find_site("ufloridapg")->id();
  Tenant& tenant = scenario.add_tenant("persist", TenantOptions{});

  // Rebuild the server with a persistent-storage site configured.  The
  // old server must go away first -- its destructor unregisters the bus
  // endpoint the replacement wants.
  core::ServerConfig config = tenant.server->config();
  config.persistent_site = archive;
  tenant.server.reset();
  tenant.server = std::make_unique<core::SphinxServer>(
      scenario.bus(), scenario.catalog(), scenario.rls(),
      scenario.transfers(), &scenario.monitoring(), config);

  // A chain: a -> b -> c.  Only c's output is final.
  workflow::Dag dag(scenario.ids().dags.next(), "persist");
  std::vector<data::Lfn> outputs;
  JobId prev;
  for (int i = 0; i < 3; ++i) {
    workflow::JobSpec job;
    job.id = scenario.ids().jobs.next();
    job.name = "stage" + std::to_string(i);
    job.compute_time = 20.0;
    job.inputs = {i == 0 ? data::Lfn("lfn://persist/seed")
                         : outputs.back()};
    job.output = "lfn://persist/out" + std::to_string(i);
    job.output_bytes = 4e6;
    dag.add_job(job);
    if (i > 0) dag.add_edge(prev, job.id);
    prev = job.id;
    outputs.push_back(job.output);
  }
  scenario.rls().register_replica("lfn://persist/seed", SiteId(1), 1e6);

  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  scenario.run(hours(6));

  ASSERT_TRUE(tenant.client->all_dags_finished());
  EXPECT_EQ(tenant.client->tracker_stats().persisted_outputs, 1u);
  // Give the archival transfer time to finish (it is asynchronous).
  scenario.engine().run_until(scenario.engine().now() + hours(1));

  const auto final_replicas = scenario.rls().locate(outputs[2]);
  const bool archived = std::any_of(
      final_replicas.begin(), final_replicas.end(),
      [&](const data::Replica& r) { return r.site == archive; });
  EXPECT_TRUE(archived) << "final output missing from persistent storage";
  EXPECT_EQ(final_replicas.size(), 2u);  // execution site + archive

  for (int i = 0; i < 2; ++i) {
    const auto replicas = scenario.rls().locate(outputs[i]);
    for (const auto& r : replicas) {
      EXPECT_NE(r.site, archive) << "intermediate " << outputs[i]
                                 << " was archived";
    }
  }
}

TEST(Priorities, HighPriorityDagPlannedFirst) {
  Scenario scenario(quiet());
  Tenant& tenant = scenario.add_tenant("prio", TenantOptions{});
  workflow::WorkloadConfig workload;
  workload.jobs_per_dag = 8;
  auto generator = scenario.make_generator("w", workload);
  const auto low = generator.generate_batch("low", 4);
  const workflow::Dag urgent = generator.generate("urgent");

  scenario.start();
  // Submit the low-priority batch first, the urgent DAG last -- but with
  // a higher priority, in the same instant.
  scenario.engine().schedule_at(1.0, "submit", [&] {
    for (const auto& dag : low) tenant.client->submit(dag, 0.0);
    tenant.client->submit(urgent, 10.0);
  });
  scenario.run(hours(8));

  ASSERT_TRUE(tenant.client->all_dags_finished());
  // The urgent DAG finished before the average of the low batch.
  const auto& outcomes = tenant.client->dag_outcomes();
  double low_sum = 0;
  double urgent_time = 0;
  for (const auto& o : outcomes) {
    if (o.name == "urgent") {
      urgent_time = o.completion_time();
    } else {
      low_sum += o.completion_time();
    }
  }
  EXPECT_LT(urgent_time, low_sum / 4.0);
  // And its priority is stored in the warehouse.
  EXPECT_DOUBLE_EQ(tenant.server->warehouse().dag(urgent.id())->priority,
                   10.0);
}

TEST(SoftStateRls, IndexLagsLrc) {
  sim::Engine engine;
  data::ReplicaLocationService rls;
  rls.enable_soft_state(engine, 60.0);

  rls.register_replica("lfn://soft/a", SiteId(1), 1e6);
  // The LRC has it immediately; the index does not.
  EXPECT_TRUE(rls.lrc(SiteId(1)).has("lfn://soft/a"));
  EXPECT_FALSE(rls.exists("lfn://soft/a"));
  EXPECT_EQ(rls.pending_updates(), 1u);

  engine.run_until(59.0);
  EXPECT_FALSE(rls.exists("lfn://soft/a"));
  engine.run_until(61.0);
  EXPECT_TRUE(rls.exists("lfn://soft/a"));
  EXPECT_EQ(rls.pending_updates(), 0u);
  EXPECT_EQ(rls.locate("lfn://soft/a").size(), 1u);
}

TEST(SoftStateRls, UnregisteredBeforePropagationNeverAppears) {
  sim::Engine engine;
  data::ReplicaLocationService rls;
  rls.enable_soft_state(engine, 60.0);
  rls.register_replica("lfn://soft/b", SiteId(1), 1e6);
  rls.unregister_replica("lfn://soft/b", SiteId(1));
  engine.run_until(120.0);
  EXPECT_FALSE(rls.exists("lfn://soft/b"));
}

TEST(SoftStateRls, WorkflowStillCompletesWithLaggingIndex) {
  // Children need parent outputs visible in the RLS before they can be
  // planned; a lagging index delays but must not deadlock the DAG.
  Scenario scenario(quiet(33));
  scenario.rls().enable_soft_state(scenario.engine(), 90.0);
  Tenant& tenant = scenario.add_tenant("soft", TenantOptions{});
  workflow::WorkloadConfig workload;
  workload.jobs_per_dag = 6;
  auto generator = scenario.make_generator("w", workload);
  const auto dag = generator.generate("soft");
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  scenario.run(hours(8));
  EXPECT_TRUE(tenant.client->all_dags_finished());
}

TEST(UserLog, RecordsAndQueriesGatewayEvents) {
  using submit::GatewayEvent;
  using submit::GatewayJobState;
  submit::UserLog log;
  log.append(GatewayEvent{JobId(1), GatewayJobState::kSubmitted, 0.0});
  log.append(GatewayEvent{JobId(1), GatewayJobState::kIdle, 0.1});
  log.append(GatewayEvent{JobId(2), GatewayJobState::kSubmitted, 1.0});
  log.append(GatewayEvent{JobId(1), GatewayJobState::kRunning, 30.0});
  log.append(GatewayEvent{JobId(1), GatewayJobState::kCompleted, 90.0});
  log.append(GatewayEvent{JobId(2), GatewayJobState::kHeld, 120.0});

  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(log.history(JobId(1)).size(), 4u);
  EXPECT_EQ(log.jobs_in_state(GatewayJobState::kHeld),
            std::vector<JobId>{JobId(2)});
  EXPECT_TRUE(log.jobs_in_state(GatewayJobState::kRunning).empty());
  EXPECT_DOUBLE_EQ(log.time_between(JobId(1), GatewayJobState::kSubmitted,
                                    GatewayJobState::kRunning),
                   30.0);
  EXPECT_DOUBLE_EQ(log.time_between(JobId(1), GatewayJobState::kRunning,
                                    GatewayJobState::kCompleted),
                   60.0);
  EXPECT_LT(log.time_between(JobId(2), GatewayJobState::kSubmitted,
                             GatewayJobState::kCompleted),
            0.0);

  const std::string text = log.render();
  EXPECT_NE(text.find("000 (001.000.000)"), std::string::npos);
  EXPECT_NE(text.find("Job held"), std::string::npos);
  EXPECT_NE(text.find("012"), std::string::npos);  // ULOG_JOB_HELD
}

TEST(UserLog, IntegratesWithLiveGateway) {
  Scenario scenario(quiet(55));
  Tenant& tenant = scenario.add_tenant("log", TenantOptions{});
  // A user log cannot hook the client's internal callback, but it can be
  // fed from DAGMan-style usage of the same gateway.
  submit::UserLog log;
  submit::SubmitRequest request;
  request.job = scenario.ids().jobs.next();
  request.name = "logged";
  request.user = UserId(9);
  request.site = scenario.grid().find_site("spider")->id();
  request.compute_time = 30.0;
  request.output = "lfn://log/out";
  request.output_bytes = 1e6;
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit", [&] {
    (void)tenant.gateway->submit(
        request, [&log](const submit::GatewayEvent& e) { log.append(e); });
  });
  scenario.engine().run_until(hours(1));
  ASSERT_GE(log.size(), 3u);
  EXPECT_EQ(log.events().back().state, submit::GatewayJobState::kCompleted);
  EXPECT_GT(log.time_between(request.job, submit::GatewayJobState::kIdle,
                             submit::GatewayJobState::kCompleted),
            0.0);
}

TEST(GatewayReplicate, CopiesAndRegisters) {
  Scenario scenario(quiet(66));
  Tenant& tenant = scenario.add_tenant("rep", TenantOptions{});
  const SiteId src = scenario.grid().find_site("spider")->id();
  const SiteId dst = scenario.grid().find_site("spike")->id();
  scenario.rls().register_replica("lfn://rep/x", src, 10e6);
  scenario.start();

  bool ok = false;
  scenario.engine().schedule_at(1.0, "replicate", [&] {
    tenant.gateway->replicate("lfn://rep/x", dst,
                              [&ok](bool success) { ok = success; });
  });
  scenario.engine().run_until(hours(1));
  EXPECT_TRUE(ok);
  EXPECT_EQ(scenario.rls().locate("lfn://rep/x").size(), 2u);

  // Replicating to a site that already has it reports false.
  bool second = true;
  tenant.gateway->replicate("lfn://rep/x", dst,
                            [&second](bool success) { second = success; });
  scenario.engine().run_until(scenario.engine().now() + minutes(10));
  EXPECT_FALSE(second);
  // Replicating a nonexistent file reports false.
  bool missing = true;
  tenant.gateway->replicate("lfn://rep/none", dst,
                            [&missing](bool success) { missing = success; });
  scenario.engine().run_until(scenario.engine().now() + minutes(10));
  EXPECT_FALSE(missing);
}

}  // namespace
}  // namespace sphinx::exp
