#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sphinx {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace sphinx
