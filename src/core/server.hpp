#pragma once
/// \file server.hpp
/// The SPHINX server: control process composing the scheduling modules.
///
/// The server hosts a Clarens endpoint with two methods -- a client
/// submits abstract DAGs via `sphinx.submit_dag` and streams tracker
/// reports via `sphinx.report` -- and runs a periodic *control process*
/// that moves DAGs and jobs through the scheduling automaton:
///
///   DAG:  received --reducer--> planning --all jobs done--> finished
///   job:  unplanned --planner--> planned --client reports--> submitted
///         --> running --> completed | cancelled/held --> unplanned again
///
/// The work itself is done by the paper's modules, each its own class:
/// MessageHandler (RPC ingress + report application), DagReducer, and
/// Planner (strategy + prediction + policy filter).  They communicate
/// through the DataWarehouse's dirty-DAG work queue: every transition
/// that creates work enqueues the affected DAG, and sweep() drains the
/// queue and walks each DAG through the stages -- O(changed work), not
/// O(total state).  The server itself only owns the wiring: the RPC
/// endpoint, the outgoing client channel, and the periodic sweep.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/log.hpp"
#include "core/codec.hpp"
#include "core/config.hpp"
#include "core/dag_reducer.hpp"
#include "core/message_handler.hpp"
#include "core/planner.hpp"
#include "core/state.hpp"
#include "core/warehouse.hpp"
#include "data/gridftp.hpp"
#include "data/rls.hpp"
#include "monitor/service.hpp"
#include "obs/recorder.hpp"
#include "rpc/clarens.hpp"
#include "sim/engine.hpp"

namespace sphinx::core {

class SphinxServer {
 public:
  SphinxServer(rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
               data::ReplicaLocationService& rls,
               data::TransferService& transfers,
               const monitor::MonitoringService* monitoring,
               ServerConfig config);

  /// Reconstructs a server from a crashed instance's journal (paper:
  /// "easily recoverable from internal component failures").  In-flight
  /// client connections resume transparently because all state that
  /// matters lives in the warehouse; the recovered warehouse rebuilds
  /// the work queues, so the control process resumes exactly where the
  /// crashed one stopped.
  static Expected<std::unique_ptr<SphinxServer>> recover(
      rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
      data::ReplicaLocationService& rls, data::TransferService& transfers,
      const monitor::MonitoringService* monitoring, ServerConfig config,
      const db::Journal& journal);

  ~SphinxServer();
  SphinxServer(const SphinxServer&) = delete;
  SphinxServer& operator=(const SphinxServer&) = delete;

  /// Starts the control process.
  void start();
  /// Starts the control process with its first sweep at absolute time
  /// `t` -- how a recovered server resumes the crashed instance's exact
  /// sweep phase (see next_sweep_at()).
  void start_at(SimTime t);
  /// Stops the control process (simulating an internal failure).
  void stop();
  /// Absolute time of the next control sweep (meaningful while started).
  [[nodiscard]] SimTime next_sweep_at() const noexcept;

  /// Arms a fail-stop trigger for chaos testing: the first time the
  /// warehouse journal holds at least `journal_records` entries at a
  /// check point (end of a sweep or RPC handler), `hook` fires exactly
  /// once.  The hook must NOT destroy the server synchronously -- it is
  /// called from inside server code; schedule the teardown on the engine
  /// at the current time instead.  Passing nullptr disarms.
  void arm_crash_hook(std::size_t journal_records, std::function<void()> hook);

  /// One control-process sweep (also callable directly from tests):
  /// drains the dirty-DAG queue and walks each drained DAG through the
  /// reducer and planner stages.
  void sweep();

  [[nodiscard]] DataWarehouse& warehouse() noexcept { return *warehouse_; }
  [[nodiscard]] const DataWarehouse& warehouse() const noexcept {
    return *warehouse_;
  }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return config_.endpoint;
  }

  /// Sets a usage quota (administrative interface; also reachable over
  /// RPC via `sphinx.set_quota`).
  void set_quota(UserId user, SiteId site, const std::string& resource,
                 double limit);

  /// Attaches a flight recorder: sweeps, DAG arrivals/finishes and plan
  /// emissions are traced under this server's endpoint, and the
  /// warehouse's job transitions are wired up too.  Observation only.
  void set_recorder(obs::Recorder* recorder);

 private:
  SphinxServer(rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
               data::ReplicaLocationService& rls,
               data::TransferService& transfers,
               const monitor::MonitoringService* monitoring,
               ServerConfig config, std::unique_ptr<DataWarehouse> warehouse);

  void register_methods();
  /// RPC shims: parse the wire payload, then delegate to MessageHandler.
  Expected<rpc::XrValue> handle_submit_dag(const std::vector<rpc::XrValue>& params,
                                           const rpc::Proxy& proxy);
  Expected<rpc::XrValue> handle_report(const std::vector<rpc::XrValue>& params,
                                       const rpc::Proxy& proxy);
  Expected<rpc::XrValue> handle_set_quota(const std::vector<rpc::XrValue>& params,
                                          const rpc::Proxy& proxy);

  void maybe_finish_dag(DagId dag_id);
  void send_plan(const std::string& client, const ExecutionPlan& plan);
  /// Fires the armed crash hook when the journal crossed the threshold.
  void maybe_crash();

  rpc::MessageBus& bus_;
  ServerConfig config_;
  std::unique_ptr<DataWarehouse> warehouse_;
  ServerStats stats_;
  // The paper's pipeline modules (section 3.2), in stage order.
  std::unique_ptr<MessageHandler> message_handler_;
  std::unique_ptr<DagReducer> reducer_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<rpc::ClarensService> service_;
  std::unique_ptr<rpc::ClarensClient> out_;  ///< for server -> client calls
  std::unique_ptr<sim::PeriodicProcess> control_;
  std::size_t crash_at_records_ = 0;
  std::function<void()> crash_hook_;
  obs::Recorder* recorder_ = nullptr;
  Logger log_{"sphinx-server"};
};

}  // namespace sphinx::core
