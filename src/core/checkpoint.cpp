#include "core/checkpoint.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "db/encoding.hpp"

namespace sphinx::core {

std::string CheckpointImage::serialize() const {
  // Header + dirty-queue line, then the database snapshot verbatim.  The
  // sim time reuses the journal's real encoding so the bit pattern
  // round-trips.
  std::string out = "#ckpt\t1\t";
  out += std::to_string(seq);
  out += '\t';
  out += db::encode_value(db::Value(at));
  out += "\nD";
  for (const db::RowId row : dirty_rows) {
    out += '\t';
    out += std::to_string(row);
  }
  out += '\n';
  out += database;
  return out;
}

Expected<CheckpointImage> CheckpointImage::parse(const std::string& text) {
  const auto fail = [](const std::string& what) {
    return Unexpected<Error>{Error{"checkpoint_parse", what}};
  };
  std::istringstream in(text);
  CheckpointImage image;
  std::string line;
  if (!std::getline(in, line)) return fail("empty checkpoint");
  const std::vector<std::string> header = split(line, '\t');
  if (header.size() != 4 || header[0] != "#ckpt" || header[1] != "1") {
    return fail("bad checkpoint header: " + line);
  }
  try {
    image.seq = std::stoull(header[2]);
  } catch (const std::exception&) {
    return fail("bad checkpoint seq: " + header[2]);
  }
  auto at = db::decode_value(header[3]);
  if (!at) return Unexpected<Error>{at.error()};
  image.at = at->as_real();
  if (!std::getline(in, line)) return fail("missing dirty-queue line");
  const std::vector<std::string> dirty = split(line, '\t');
  if (dirty.empty() || dirty[0] != "D") {
    return fail("bad dirty-queue line: " + line);
  }
  for (std::size_t i = 1; i < dirty.size(); ++i) {
    try {
      image.dirty_rows.push_back(std::stoull(dirty[i]));
    } catch (const std::exception&) {
      return fail("bad dirty row id: " + dirty[i]);
    }
  }
  // The rest is the database snapshot, byte-for-byte.
  const std::string::size_type second_newline =
      text.find('\n', text.find('\n') + 1);
  image.database =
      second_newline == std::string::npos ? "" : text.substr(second_newline + 1);
  return image;
}

}  // namespace sphinx::core
