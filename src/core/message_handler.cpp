#include "core/message_handler.hpp"

#include <utility>

namespace sphinx::core {

MessageHandler::MessageHandler(DataWarehouse& warehouse,
                               const ServerConfig& config, ServerStats& stats,
                               JobCompletedHook on_job_completed)
    : warehouse_(warehouse),
      config_(config),
      stats_(stats),
      on_job_completed_(std::move(on_job_completed)) {}

bool MessageHandler::accept_dag(const workflow::Dag& dag,
                                const std::string& client, UserId user,
                                SimTime now, double priority,
                                SimTime deadline) {
  if (warehouse_.dag(dag.id()).has_value()) {
    ++stats_.duplicate_dags;
    return false;
  }
  warehouse_.insert_dag(dag, client, user, now, priority, deadline);
  ++stats_.dags_received;
  return true;
}

StatusOrError MessageHandler::apply_report(const TrackerReport& report) {
  ++stats_.reports_processed;

  const auto job = warehouse_.job(report.job);
  if (!job.has_value()) {
    return make_error("unknown_job",
                      "no job " + std::to_string(report.job.value()));
  }

  switch (report.kind) {
    case ReportKind::kSubmitted:
      if (job->state == JobState::kPlanned) {
        warehouse_.set_job_state(job->id, JobState::kSubmitted,
                                 "report:submitted");
      }
      break;
    case ReportKind::kRunning:
      if (job->state == JobState::kSubmitted ||
          job->state == JobState::kPlanned) {
        warehouse_.set_job_state(job->id, JobState::kRunning,
                                 "report:running");
      }
      break;
    case ReportKind::kCompleted: {
      if (job->state == JobState::kCompleted) {
        // Duplicate completion report: folding it in again would double
        // count the site's statistics and re-run the DAG finish check.
        break;
      }
      warehouse_.set_job_state(job->id, JobState::kCompleted,
                               "report:completed");
      // Feedback: fold the completion time into the site's EWMA (the
      // prediction module's knowledge base, eq. 3).
      warehouse_.record_completion(report.site, report.completion_time);
      if (on_job_completed_) on_job_completed_(job->dag);
      break;
    }
    case ReportKind::kCancelled:
    case ReportKind::kHeld: {
      if (job->state == JobState::kCompleted ||
          job->state == JobState::kUnplanned) {
        // Stale report: the job already finished, or the attempt was
        // already torn down and is waiting for the planner.  Acting on
        // it would double-refund quota and skew the site's statistics.
        break;
      }
      // The tracker killed or observed the death of this attempt.  Return
      // the reserved quota and queue the job for replanning.
      warehouse_.set_job_state(job->id,
                               report.kind == ReportKind::kHeld
                                   ? JobState::kHeld
                                   : JobState::kCancelled,
                               report.kind == ReportKind::kHeld
                                   ? "report:held"
                                   : "report:cancelled");
      warehouse_.record_cancellation(report.site, report.completion_time);
      if (config_.use_policy) {
        if (const auto dag = warehouse_.dag(job->dag); dag.has_value()) {
          warehouse_.refund_quota(dag->user, report.site, "cpu_seconds",
                                  job->compute_time);
          warehouse_.refund_quota(dag->user, report.site, "disk_bytes",
                                  job->output_bytes);
        }
      }
      // Back to the planner on the next sweep (the unplanned transition
      // re-enqueues the DAG on the dirty list).
      warehouse_.set_job_state(job->id, JobState::kUnplanned,
                               "replan-queued");
      break;
    }
  }
  return {};
}

void MessageHandler::set_quota(UserId user, SiteId site,
                               const std::string& resource, double limit) {
  warehouse_.set_quota(user, site, resource, limit);
}

}  // namespace sphinx::core
