#pragma once
/// \file chimera.hpp
/// Chimera-style virtual data catalog.
///
/// The paper's requests originate from "a workflow planner such as the
/// Chimera Virtual Data System" (section 3.3): users register
/// *transformations* (executables) and *derivations* (invocations with
/// bound logical inputs/outputs); asking for a logical file compiles the
/// derivation closure into an abstract DAG.  This module provides that
/// front end over workflow::Dag.

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "workflow/dag.hpp"
#include "workflow/generator.hpp"  // for IdSpace

namespace sphinx::workflow {

/// A registered executable.
struct Transformation {
  std::string name;
  Duration compute_time = 60.0;
};

/// One invocation of a transformation producing one logical output.
struct Derivation {
  std::string transformation;
  std::vector<data::Lfn> inputs;
  data::Lfn output;
  double output_bytes = 0.0;
};

class VirtualDataCatalog {
 public:
  /// Registers a transformation; re-registration replaces it.
  void add_transformation(Transformation t);

  /// Registers a derivation.  Fails if its transformation is unknown or
  /// another derivation already produces the same output (virtual data
  /// must be uniquely derivable).
  [[nodiscard]] StatusOrError add_derivation(Derivation d);

  [[nodiscard]] bool can_derive(const data::Lfn& lfn) const noexcept;
  [[nodiscard]] std::size_t derivation_count() const noexcept {
    return derivations_.size();
  }

  /// Compiles the abstract DAG that materializes `target`: the producing
  /// derivation plus, recursively, derivations for every derivable input.
  /// Inputs with no derivation are assumed pre-existing (the DAG reducer
  /// and RLS deal with them later).  Fails if `target` is not derivable
  /// or the derivation graph is cyclic.
  [[nodiscard]] Expected<Dag> request(const data::Lfn& target, IdSpace& ids,
                                      const std::string& dag_name) const;

 private:
  std::map<std::string, Transformation> transformations_;
  std::map<data::Lfn, Derivation> derivations_;  // keyed by output
};

}  // namespace sphinx::workflow
