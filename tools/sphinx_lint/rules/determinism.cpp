/// \file determinism.cpp
/// sim-clock / sim-random: no ambient time or randomness.  Regex passes
/// over the comment/string-stripped text.

#include <regex>
#include <string>

#include "rule.hpp"

namespace sphinx::lint {
namespace {

/// Scans the stripped text with `re`, reporting `rule` at every match.
void scan(const FileContext& file, const Reporter& out, const std::regex& re,
          const std::string& rule, const std::string& message) {
  const std::string_view text = file.stripped.code;
  auto begin = std::cregex_iterator(text.data(), text.data() + text.size(), re);
  for (auto it = begin; it != std::cregex_iterator(); ++it) {
    out.report(line_of(text, static_cast<std::size_t>(it->position(0))), rule,
               message);
  }
}

void rule_sim_clock(const FileContext& file, const Reporter& out) {
  if (determinism_whitelisted(file.rel_path)) return;
  static const std::regex re(
      R"((\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b|\blocaltime\b|\bgmtime\b|\bgettimeofday\b|\bclock_gettime\b))");
  static const std::regex time_re(
      R"((^|[^\w.>])(time\s*\(\s*(NULL|nullptr|0)?\s*\)|clock\s*\(\s*\)))");
  const std::string msg =
      "wall-clock source; simulation time must come from the Engine clock "
      "(src/common/time.hpp)";
  scan(file, out, re, "sim-clock", msg);
  const std::string_view text = file.stripped.code;
  for (auto it = std::cregex_iterator(text.data(), text.data() + text.size(),
                                      time_re);
       it != std::cregex_iterator(); ++it) {
    const std::size_t offset =
        static_cast<std::size_t>(it->position(0)) +
        static_cast<std::size_t>((*it)[1].length());
    out.report(line_of(text, offset), "sim-clock", msg);
  }
}

void rule_sim_random(const FileContext& file, const Reporter& out) {
  if (determinism_whitelisted(file.rel_path)) return;
  static const std::regex re(
      R"((\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bdrand48\b|\blrand48\b))");
  scan(file, out, re, "sim-random",
       "ambient randomness; draw from a seeded src/common/rng.hpp stream "
       "instead");
}

}  // namespace

std::vector<Rule> determinism_rules() {
  return {
      Rule{"sim-clock", "no wall-clock sources outside the whitelist",
           "Simulation results must be a pure function of the seed, so no "
           "code may consult system_clock, steady_clock, time(), ... -- the "
           "only clock is the Engine's (src/common/time.hpp).  Whitelisted: "
           "the time/rng abstractions themselves and the logger.",
           &rule_sim_clock},
      Rule{"sim-random", "no ambient randomness outside the whitelist",
           "rand(), std::random_device, drand48 and friends draw entropy the "
           "seed does not control, breaking same-seed reproducibility.  Draw "
           "from a seeded src/common/rng.hpp stream instead.",
           &rule_sim_random},
  };
}

}  // namespace sphinx::lint
