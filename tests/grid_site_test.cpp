// Tests for the site simulator: batch queue semantics, VO priorities,
// stage-in hooks, cancellation, and the failure modes.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "grid/failure.hpp"
#include "grid/grid.hpp"
#include "grid/site.hpp"
#include "sim/engine.hpp"

namespace sphinx::grid {
namespace {

SiteConfig basic_config(int cpus = 2, double speed = 1.0) {
  SiteConfig config;
  config.name = "testsite";
  config.cpus = cpus;
  config.cpu_speed = speed;
  config.runtime_noise = 0.0;  // deterministic runtimes for tests
  return config;
}

RemoteJob job_of(Duration compute, const std::string& vo = "uscms") {
  RemoteJob job;
  job.vo = vo;
  job.compute_time = compute;
  return job;
}

class SiteFixture : public ::testing::Test {
 protected:
  SiteFixture() : site(engine, SiteId(1), basic_config(), Rng(7)) {}

  /// Submits and collects all events for the submission.
  SubmissionId submit(RemoteJob job) {
    auto events = std::make_shared<std::vector<JobEvent>>();
    const auto sid = site.submit(std::move(job), [events](const JobEvent& e) {
      events->push_back(e);
    });
    EXPECT_TRUE(sid.has_value());
    history[*sid] = events;
    return *sid;
  }

  [[nodiscard]] RemoteJobState last_state(SubmissionId sid) const {
    const auto& events = *history.at(sid);
    return events.empty() ? RemoteJobState::kQueued : events.back().state;
  }

  sim::Engine engine;
  Site site;
  std::map<SubmissionId, std::shared_ptr<std::vector<JobEvent>>> history;
};

TEST_F(SiteFixture, JobRunsToCompletion) {
  const auto sid = submit(job_of(60.0));
  engine.run_until();
  EXPECT_EQ(last_state(sid), RemoteJobState::kCompleted);
  EXPECT_DOUBLE_EQ(engine.now(), 60.0);
  // Full lifecycle observed: queued -> staging -> running -> completed.
  const auto& events = *history.at(sid);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].state, RemoteJobState::kQueued);
  EXPECT_EQ(events[1].state, RemoteJobState::kStaging);
  EXPECT_EQ(events[2].state, RemoteJobState::kRunning);
  EXPECT_EQ(events[3].state, RemoteJobState::kCompleted);
}

TEST_F(SiteFixture, CpuSpeedScalesRuntime) {
  Site fast(engine, SiteId(2), basic_config(1, 2.0), Rng(7));
  bool done = false;
  (void)fast.submit(job_of(60.0), [&](const JobEvent& e) {
    if (e.state == RemoteJobState::kCompleted) {
      done = true;
      EXPECT_DOUBLE_EQ(e.at, 30.0);  // 60s / speed 2.0
    }
  });
  engine.run_until();
  EXPECT_TRUE(done);
}

TEST_F(SiteFixture, QueueingWhenCpusBusy) {
  // 2 CPUs, 3 jobs of 60s: third starts when the first finishes.
  submit(job_of(60.0));
  submit(job_of(60.0));
  const auto third = submit(job_of(60.0));
  engine.run_until(1.0);
  EXPECT_EQ(site.query()->running, 2);
  EXPECT_EQ(site.query()->queued, 1);
  engine.run_until();
  EXPECT_EQ(last_state(third), RemoteJobState::kCompleted);
  const auto& events = *history.at(third);
  // Third job started computing at t=60.
  EXPECT_DOUBLE_EQ(events[2].at, 60.0);
  EXPECT_DOUBLE_EQ(events[3].at, 120.0);
}

TEST_F(SiteFixture, VoPriorityOrdersQueue) {
  SiteConfig config = basic_config(1);
  config.vo_priority["atlas"] = 10.0;
  config.vo_priority["uscms"] = 1.0;
  Site prio(engine, SiteId(3), config, Rng(7));

  std::vector<std::string> finish_order;
  const auto watch = [&](const std::string& tag) {
    return [&finish_order, tag](const JobEvent& e) {
      if (e.state == RemoteJobState::kCompleted) finish_order.push_back(tag);
    };
  };
  // Occupy the single CPU, then queue one low-prio and one high-prio job.
  (void)prio.submit(job_of(10.0, "uscms"), watch("first"));
  engine.run_until(1.0);  // let "first" start running
  (void)prio.submit(job_of(10.0, "uscms"), watch("low"));
  (void)prio.submit(job_of(10.0, "atlas"), watch("high"));
  engine.run_until();
  ASSERT_EQ(finish_order.size(), 3u);
  EXPECT_EQ(finish_order[0], "first");
  EXPECT_EQ(finish_order[1], "high");  // atlas overtakes uscms
  EXPECT_EQ(finish_order[2], "low");
}

TEST_F(SiteFixture, EqualPriorityIsFifo) {
  Site one(engine, SiteId(4), basic_config(1), Rng(7));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    (void)one.submit(job_of(5.0), [&order, i](const JobEvent& e) {
      if (e.state == RemoteJobState::kCompleted) order.push_back(i);
    });
  }
  engine.run_until();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(SiteFixture, StageInHookDelaysCompute) {
  site.set_stage_in_hook([this](const RemoteJob&, std::function<void()> done) {
    engine.schedule_in(30.0, "stage", std::move(done));
  });
  const auto sid = submit(job_of(60.0));
  engine.run_until();
  const auto& events = *history.at(sid);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[1].at, 0.0);   // staging begins immediately
  EXPECT_DOUBLE_EQ(events[2].at, 30.0);  // running after stage-in
  EXPECT_DOUBLE_EQ(events[3].at, 90.0);  // completed after compute
}

TEST_F(SiteFixture, CancelQueuedJob) {
  Site one(engine, SiteId(5), basic_config(1), Rng(7));
  (void)one.submit(job_of(100.0), nullptr);
  std::vector<JobEvent> events;
  const auto sid = one.submit(job_of(100.0), [&](const JobEvent& e) {
    events.push_back(e);
  });
  engine.run_until(1.0);
  ASSERT_TRUE(sid.has_value());
  EXPECT_TRUE(one.cancel(*sid));
  engine.run_until();
  EXPECT_EQ(events.back().state, RemoteJobState::kCancelled);
  EXPECT_EQ(one.counters().cancelled, 1u);
  EXPECT_EQ(one.counters().completed, 1u);
}

TEST_F(SiteFixture, CancelRunningJobFreesCpu) {
  Site one(engine, SiteId(6), basic_config(1), Rng(7));
  const auto running = one.submit(job_of(1000.0), nullptr);
  bool second_done = false;
  (void)one.submit(job_of(10.0), [&](const JobEvent& e) {
    if (e.state == RemoteJobState::kCompleted) second_done = true;
  });
  engine.run_until(1.0);
  EXPECT_TRUE(one.cancel(*running));
  engine.run_until();
  EXPECT_TRUE(second_done);
  EXPECT_LT(engine.now(), 100.0);  // did not wait for the 1000s job
}

TEST_F(SiteFixture, CancelUnknownOrTerminalFails) {
  const auto sid = submit(job_of(10.0));
  engine.run_until();
  EXPECT_FALSE(site.cancel(sid));             // already completed
  EXPECT_FALSE(site.cancel(SubmissionId(999)));  // unknown
}

TEST_F(SiteFixture, QueryReportsQueue) {
  submit(job_of(60.0));
  submit(job_of(60.0));
  submit(job_of(60.0));
  engine.run_until(1.0);
  const auto q = site.query();
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->cpus, 2);
  EXPECT_EQ(q->running, 2);
  EXPECT_EQ(q->queued, 1);
  EXPECT_EQ(q->free_cpus, 0);
}

TEST_F(SiteFixture, DownSiteRejectsAndLosesJobs) {
  const auto sid = submit(job_of(100.0));
  engine.run_until(1.0);
  site.go_down();
  // Unresponsive: no queries, no new submissions, no cancel processing.
  EXPECT_FALSE(site.query().has_value());
  EXPECT_FALSE(site.submit(job_of(10.0), nullptr).has_value());
  EXPECT_FALSE(site.cancel(sid));
  engine.run_until();
  // The running job was lost without any event.
  EXPECT_EQ(last_state(sid), RemoteJobState::kRunning);
  EXPECT_EQ(site.counters().lost, 1u);
}

TEST_F(SiteFixture, RecoveredSiteRunsNewJobs) {
  site.go_down();
  site.recover();
  const auto sid = submit(job_of(10.0));
  engine.run_until();
  EXPECT_EQ(last_state(sid), RemoteJobState::kCompleted);
}

TEST_F(SiteFixture, BlackHoleAcceptsButNeverRuns) {
  site.become_black_hole();
  const auto sid = submit(job_of(10.0));
  engine.run_until(hours(10));
  EXPECT_EQ(last_state(sid), RemoteJobState::kQueued);
  // Looks healthy to monitoring: answers queries with an empty-ish queue.
  const auto q = site.query();
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->running, 0);
  // Cancellation works (the gatekeeper responds, the batch system is the
  // broken part) -- this is how the tracker cleans up timed-out jobs.
  EXPECT_TRUE(site.cancel(sid));
}

TEST_F(SiteFixture, BlackHoleRecoveryDispatchesBacklog) {
  site.become_black_hole();
  const auto sid = submit(job_of(10.0));
  engine.run_until(100.0);
  site.recover();
  engine.run_until();
  EXPECT_EQ(last_state(sid), RemoteJobState::kCompleted);
}

TEST_F(SiteFixture, DegradedSiteRunsSlower) {
  SiteConfig config = basic_config(1);
  config.degraded_speed = 0.5;
  Site slow(engine, SiteId(7), config, Rng(7));
  slow.degrade();
  bool done = false;
  (void)slow.submit(job_of(60.0), [&](const JobEvent& e) {
    if (e.state == RemoteJobState::kCompleted) {
      EXPECT_DOUBLE_EQ(e.at, 120.0);  // 60 / (1.0 * 0.5)
      done = true;
    }
  });
  engine.run_until();
  EXPECT_TRUE(done);
}

TEST_F(SiteFixture, CountersTrackLifecycle) {
  submit(job_of(10.0));
  submit(job_of(10.0));
  engine.run_until();
  EXPECT_EQ(site.counters().submitted, 2u);
  EXPECT_EQ(site.counters().dispatched, 2u);
  EXPECT_EQ(site.counters().completed, 2u);
}

TEST_F(SiteFixture, RuntimeNoiseVariesRuntimes) {
  SiteConfig config = basic_config(1);
  config.runtime_noise = 0.3;
  Site noisy(engine, SiteId(8), config, Rng(11));
  std::vector<double> durations;
  SimTime started = 0.0;
  for (int i = 0; i < 10; ++i) {
    (void)noisy.submit(job_of(60.0), [&](const JobEvent& e) {
      if (e.state == RemoteJobState::kRunning) started = e.at;
      if (e.state == RemoteJobState::kCompleted) {
        durations.push_back(e.at - started);
      }
    });
  }
  engine.run_until();
  ASSERT_EQ(durations.size(), 10u);
  double min = durations[0], max = durations[0];
  for (const double d : durations) {
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_GT(max - min, 1.0);  // noise produced spread
}

TEST(FailureModel, PermanentBlackHoleAppliesOnStart) {
  sim::Engine engine;
  Site site(engine, SiteId(1), basic_config(), Rng(1));
  FailureConfig config;
  config.permanent_black_hole = true;
  FailureModel model(engine, site, config, Rng(2));
  model.start();
  EXPECT_EQ(site.health(), SiteHealth::kBlackHole);
}

TEST(FailureModel, CyclesThroughOutages) {
  sim::Engine engine;
  Site site(engine, SiteId(1), basic_config(), Rng(1));
  FailureConfig config;
  config.enabled = true;
  config.mean_uptime = minutes(10);
  config.mean_downtime = minutes(2);
  FailureModel model(engine, site, config, Rng(2));
  model.start();
  engine.run_until(hours(10));
  EXPECT_GT(model.outages(), 10u);
}

TEST(FailureModel, AllZeroWeightsFallBackToPlainDowntime) {
  // Regression: an all-zero mode mix used to select an outage mode from
  // an undefined distribution.  It must degrade to weight_down semantics.
  sim::Engine engine;
  Site site(engine, SiteId(1), basic_config(), Rng(1));
  FailureConfig config;
  config.enabled = true;
  config.mean_uptime = minutes(10);
  config.mean_downtime = minutes(2);
  config.weight_down = 0.0;
  config.weight_black_hole = 0.0;
  config.weight_degraded = 0.0;
  FailureModel model(engine, site, config, Rng(2));
  model.start();
  // Step in small increments so we observe the site mid-outage, before
  // the repair lands (mean downtime is two minutes).
  while (model.outages() == 0 && engine.now() < hours(10)) {
    engine.run_until(engine.now() + 1.0);
  }
  ASSERT_GT(model.outages(), 0u);
  EXPECT_EQ(site.health(), SiteHealth::kDown);
}

TEST(FailureModel, NegativeOrNonFiniteWeightsRejected) {
  sim::Engine engine;
  Site site(engine, SiteId(1), basic_config(), Rng(1));
  FailureConfig config;
  config.enabled = true;
  config.weight_black_hole = -0.5;
  EXPECT_THROW(FailureModel(engine, site, config, Rng(2)), ContractViolation);
  config.weight_black_hole = 0.0;
  config.weight_degraded = std::numeric_limits<double>::infinity();
  EXPECT_THROW(FailureModel(engine, site, config, Rng(2)), ContractViolation);
}

TEST(FailureModel, DisabledNeverFails) {
  sim::Engine engine;
  Site site(engine, SiteId(1), basic_config(), Rng(1));
  FailureModel model(engine, site, FailureConfig{}, Rng(2));
  model.start();
  engine.run_until(hours(100));
  EXPECT_EQ(model.outages(), 0u);
  EXPECT_EQ(site.health(), SiteHealth::kHealthy);
}

TEST(BackgroundLoad, InjectsJobsThatOccupyCpus) {
  sim::Engine engine;
  Site site(engine, SiteId(1), basic_config(4), Rng(1));
  BackgroundLoadConfig config;
  config.enabled = true;
  config.mean_interarrival = 30.0;
  config.mean_duration = minutes(20);
  BackgroundLoad load(engine, site, config, Rng(3));
  load.start();
  engine.run_until(hours(1));
  EXPECT_GT(load.jobs_injected(), 50u);
  const auto q = site.query();
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->running, 4);  // saturated
  EXPECT_GT(q->queued, 0);
}

TEST(Grid, AddAndLookupSites) {
  sim::Engine engine;
  Grid grid(engine, SeedTree(5));
  SiteSpec spec;
  spec.site = basic_config(8);
  spec.site.name = "acdc";
  const SiteId a = grid.add_site(spec);
  spec.site.name = "atlas";
  spec.site.cpus = 32;
  const SiteId b = grid.add_site(spec);

  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.site(a).name(), "acdc");
  EXPECT_EQ(grid.site(b).config().cpus, 32);
  EXPECT_EQ(grid.total_cpus(), 40);
  ASSERT_NE(grid.find_site("atlas"), nullptr);
  EXPECT_EQ(grid.find_site("nope"), nullptr);
  EXPECT_EQ(grid.site_ids().size(), 2u);
}

TEST(Grid, DuplicateNameRejected) {
  sim::Engine engine;
  Grid grid(engine, SeedTree(5));
  SiteSpec spec;
  spec.site = basic_config();
  grid.add_site(spec);
  EXPECT_THROW(grid.add_site(spec), AssertionError);
}

TEST(Grid, StartLaunchesDrivers) {
  sim::Engine engine;
  Grid grid(engine, SeedTree(5));
  SiteSpec spec;
  spec.site = basic_config(2);
  spec.background.enabled = true;
  spec.background.mean_interarrival = 10.0;
  grid.add_site(spec);
  grid.start();
  engine.run_until(minutes(10));
  EXPECT_GT(engine.events_fired(), 10u);
  EXPECT_THROW(grid.add_site(spec), AssertionError);  // frozen after start
}

}  // namespace
}  // namespace sphinx::grid
