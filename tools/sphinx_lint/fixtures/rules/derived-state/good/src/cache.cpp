/// \file cache.cpp
/// Fixture: compliant derived-state usage -- mutations only in allowed
/// functions, reads anywhere.

#include "cache.hpp"

namespace fixture {

void Cache::rebuild() {
  dirty_.clear();
  dirty_.insert(1);
}

void Cache::absorb(int row) { dirty_.insert(row); }

std::size_t Cache::pending() const { return dirty_.size(); }

}  // namespace fixture
