#pragma once
/// \file rule.hpp
/// The shared rule interface: every rule is one entry in a catalog, and
/// every rule family lives in its own translation unit under rules/ so
/// the catalog can grow without one file growing without bound.
///
/// A rule is per-file: it sees one FileContext and reports findings
/// through a Reporter (which silently drops findings waived with an
/// inline `sphinx-lint-allow(rule)` comment).  Cross-file analyses --
/// the rng stream registry and duplicate detection, derived-state
/// annotations declared in a header and enforced in the matching source
/// -- are coordinated by analyze_tree() in linter.cpp using the
/// extraction helpers declared at the bottom.

#include <string>
#include <vector>

#include "analyzer.hpp"
#include "linter.hpp"

namespace sphinx::lint {

/// Routes findings, honouring per-line waivers.
class Reporter {
 public:
  Reporter(const FileContext& file, std::vector<Finding>& out)
      : file_(file), out_(out) {}

  void report(std::size_t line, std::string rule, std::string message) const {
    if (file_.allowed(line, rule)) return;
    out_.push_back(
        Finding{file_.rel_path, line, std::move(rule), std::move(message)});
  }

 private:
  const FileContext& file_;
  std::vector<Finding>& out_;
};

/// One catalog entry.  `check` may be null for rules that only fire
/// from the cross-file phase (rng-stream-duplicate).
struct Rule {
  const char* id;
  const char* summary;  ///< one line, for --list-rules
  const char* explain;  ///< several sentences, for --explain
  void (*check)(const FileContext&, const Reporter&);
};

/// The full catalog, in stable display order.
[[nodiscard]] const std::vector<Rule>& rule_catalog();

// Per-family registration, one function per rules/ translation unit.
[[nodiscard]] std::vector<Rule> determinism_rules();    // sim-clock, sim-random
[[nodiscard]] std::vector<Rule> status_rules();         // discarded-status, naked-throw
[[nodiscard]] std::vector<Rule> hygiene_rules();        // iostream-include, pragma-once, file-comment
[[nodiscard]] std::vector<Rule> ordered_escape_rules(); // ordered-escape
[[nodiscard]] std::vector<Rule> rng_stream_rules();     // rng-stream-literal, rng-stream-duplicate, rng-raw
[[nodiscard]] std::vector<Rule> derived_state_rules();  // derived-state
[[nodiscard]] std::vector<Rule> observe_only_rules();   // observe-only

// --- cross-file extraction helpers ------------------------------------

/// Every `seeds.stream(...)` use in one file (implemented with the
/// rng-stream rules so the registry and the rule agree byte-for-byte on
/// what counts as a stream).
[[nodiscard]] std::vector<StreamUse> extract_streams(const FileContext& file);

/// Derived-state annotations declared in one file: member -> functions
/// allowed to mutate it.  Parsed from `// sphinx-lint: derived(f1, f2)`
/// comments on member declaration lines.
[[nodiscard]] std::map<std::string, std::set<std::string>> extract_derived(
    const Stripped& stripped, const std::vector<Token>& tokens);

/// Unordered-container declarations in one token stream, for the
/// ordered-escape taint (names + functions returning such types).
void extract_unordered(const std::vector<Token>& tokens,
                       std::set<std::string>& vars,
                       std::set<std::string>& fns);

}  // namespace sphinx::lint
