/// Recovery-path microbenchmarks: full-history journal replay vs
/// checkpoint + suffix restore, at growing journal lengths.
///
/// The workload is completion-heavy on purpose: every record_completion
/// rewrites the same 15 site_stats rows, so the journal grows linearly
/// while the logical state stays O(sites).  That is the regime
/// checkpointing targets -- full replay is O(history), checkpointed
/// recovery is O(state + suffix) -- and the gap (tools/check.sh exports
/// it as BENCH_recovery.json) should widen roughly linearly with the
/// record count.  The reported counters also pin the footprint story:
/// journal_bytes keeps growing without checkpointing while the
/// checkpointed run retains only the post-checkpoint suffix.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "core/warehouse.hpp"

namespace {

using namespace sphinx;

constexpr int kSites = 15;
constexpr std::size_t kCheckpointEvery = 512;

/// Drives record_completion until the journal holds at least `records`
/// entries.  With `checkpoint_every` > 0, publishes a checkpoint (and
/// compacts the journal) on the same cadence the server's
/// record-triggered policy would.
std::unique_ptr<core::DataWarehouse> build_warehouse(
    std::uint64_t records, std::size_t checkpoint_every) {
  auto warehouse = std::make_unique<core::DataWarehouse>();
  std::uint64_t last_checkpoint = 0;
  double now = 0.0;
  while (warehouse->journal().next_seq() < records) {
    for (int site = 1; site <= kSites; ++site) {
      warehouse->record_completion(SiteId(static_cast<std::uint64_t>(site)),
                                   300.0 + site);
    }
    now += 1.0;
    if (checkpoint_every > 0 &&
        warehouse->journal().next_seq() >= last_checkpoint + checkpoint_every) {
      last_checkpoint = warehouse->checkpoint(now).seq;
    }
  }
  return warehouse;
}

void BM_RecoverFullReplay(benchmark::State& state) {
  const auto records = static_cast<std::uint64_t>(state.range(0));
  const auto warehouse = build_warehouse(records, 0);
  for (auto _ : state) {
    auto recovered = core::DataWarehouse::recover_from(warehouse->journal());
    benchmark::DoNotOptimize(recovered.has_value());
  }
  state.counters["journal_records"] =
      static_cast<double>(warehouse->journal().size());
  state.counters["journal_bytes"] =
      static_cast<double>(warehouse->journal().size_bytes());
}
BENCHMARK(BM_RecoverFullReplay)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RecoverCheckpointed(benchmark::State& state) {
  const auto records = static_cast<std::uint64_t>(state.range(0));
  const auto warehouse = build_warehouse(records, kCheckpointEvery);
  const auto& image = warehouse->checkpoint_image();
  for (auto _ : state) {
    auto recovered =
        core::DataWarehouse::recover_from(*image, warehouse->journal());
    benchmark::DoNotOptimize(recovered.has_value());
  }
  state.counters["journal_records"] =
      static_cast<double>(warehouse->journal().size());
  state.counters["journal_bytes"] =
      static_cast<double>(warehouse->journal().size_bytes());
  state.counters["snapshot_bytes"] =
      static_cast<double>(image->database.size());
}
BENCHMARK(BM_RecoverCheckpointed)->Arg(1000)->Arg(10000)->Arg(100000);

/// The checkpoint operation itself (snapshot + truncate), so the
/// recovery win above can be weighed against its steady-state cost.
void BM_CheckpointPublish(benchmark::State& state) {
  const auto warehouse = build_warehouse(2048, 0);
  double now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    benchmark::DoNotOptimize(warehouse->checkpoint(now).snapshot_bytes);
  }
}
BENCHMARK(BM_CheckpointPublish);

}  // namespace
