#pragma once
/// \file grid.hpp
/// The grid: a registry of sites plus their failure/background drivers.
///
/// This is the "Grid3" of the reproduction -- the shared physical fabric
/// that every SPHINX server instance competes for.  It owns the sites and
/// their dynamics; schedulers only ever hold SiteIds and talk to sites
/// through the submission layer and the monitoring system.

#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "grid/failure.hpp"
#include "grid/site.hpp"
#include "sim/engine.hpp"

namespace sphinx::grid {

/// Everything needed to instantiate one site.
struct SiteSpec {
  SiteConfig site;
  FailureConfig failure;
  BackgroundLoadConfig background;
};

class Grid {
 public:
  explicit Grid(sim::Engine& engine, SeedTree seeds);

  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  /// Adds a site and its drivers.  Drivers start when start() is called.
  SiteId add_site(const SiteSpec& spec);

  /// Starts failure models and background load for all sites.
  void start();

  /// Attaches a flight recorder to every site's failure model (current
  /// and future).  Observation only.
  void set_recorder(obs::Recorder* recorder) noexcept;

  [[nodiscard]] Site& site(SiteId id);
  [[nodiscard]] const Site& site(SiteId id) const;
  /// Lookup by name; nullptr when absent.
  [[nodiscard]] Site* find_site(const std::string& name) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sites_.size(); }
  /// All site ids in creation order (the static "site catalog").
  [[nodiscard]] const std::vector<SiteId>& site_ids() const noexcept {
    return ids_;
  }
  [[nodiscard]] int total_cpus() const noexcept;

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

 private:
  struct Slot {
    std::unique_ptr<Site> site;
    std::unique_ptr<FailureModel> failure;
    std::unique_ptr<BackgroundLoad> background;
  };

  sim::Engine& engine_;
  SeedTree seeds_;
  IdGenerator<SiteId> site_ids_gen_;
  std::vector<Slot> sites_;  // index = id - 1
  std::vector<SiteId> ids_;
  bool started_ = false;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace sphinx::grid
