#include "chaos/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace sphinx::chaos {
namespace {

/// Recursive-descent parser state over the raw input text.
class Parser {
 public:
  explicit Parser(const std::string& input) : input_(input) {}

  Expected<JsonValue> parse() {
    auto value = parse_value();
    if (!value) return value;
    skip_ws();
    if (pos_ != input_.size()) {
      return fail("trailing characters after document");
    }
    return value;
  }

 private:
  Unexpected<Error> fail(const std::string& what) const {
    return Unexpected<Error>{Error{
        "json_parse", what + " at offset " + std::to_string(pos_)}};
  }

  void skip_ws() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Expected<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= input_.size()) return fail("unexpected end of input");
    const char c = input_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  Expected<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonValue out;
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return key;
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      auto value = parse_value();
      if (!value) return value;
      out.members.emplace_back(std::move(key->text), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return out;
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonValue out;
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      auto value = parse_value();
      if (!value) return value;
      out.array.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return out;
      return fail("expected ',' or ']' in array");
    }
  }

  Expected<JsonValue> parse_string() {
    if (!consume('"')) return fail("expected string");
    JsonValue out;
    out.type = JsonValue::Type::kString;
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.text += c;
        continue;
      }
      if (pos_ >= input_.size()) break;
      const char esc = input_[pos_++];
      switch (esc) {
        case '"': out.text += '"'; break;
        case '\\': out.text += '\\'; break;
        case '/': out.text += '/'; break;
        case 'n': out.text += '\n'; break;
        case 't': out.text += '\t'; break;
        case 'r': out.text += '\r'; break;
        case 'b': out.text += '\b'; break;
        case 'f': out.text += '\f'; break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = input_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape digit");
            }
          }
          // The harness only emits control-character escapes (< 0x80);
          // anything wider is replaced rather than UTF-8 encoded.
          out.text += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Expected<JsonValue> parse_bool() {
    JsonValue out;
    out.type = JsonValue::Type::kBool;
    if (input_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return out;
    }
    if (input_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return out;
    }
    return fail("expected boolean");
  }

  Expected<JsonValue> parse_null() {
    if (input_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return fail("expected null");
  }

  Expected<JsonValue> parse_number() {
    const char* begin = input_.data() + pos_;
    const char* end = input_.data() + input_.size();
    JsonValue out;
    out.type = JsonValue::Type::kNumber;
    const auto [ptr, ec] = std::from_chars(begin, end, out.number);
    if (ec != std::errc{} || !std::isfinite(out.number)) {
      return fail("expected finite number");
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return out;
  }

  const std::string& input_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Expected<JsonValue> parse_json(const std::string& input) {
  return Parser(input).parse();
}

}  // namespace sphinx::chaos
