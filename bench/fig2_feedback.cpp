/// Figure 2: effect of utilizing feedback information.
///
/// Paper: average DAG completion time for round-robin and
/// number-of-CPUs scheduling, each with and without feedback, on 30 DAGs
/// x 10 jobs.  Expected shape: the with-feedback variants finish DAGs
/// ~20-29 % faster, because without feedback the scheduler keeps
/// submitting to unreliable sites and pays the timeout every time.

#include "bench_common.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Figure 2",
               "feedback vs no feedback (30 dags x 10 jobs/dag)");

  std::vector<exp::TenantSpec> specs;
  exp::TenantOptions options;
  options.algorithm = core::Algorithm::kRoundRobin;
  options.use_feedback = true;
  specs.push_back({"round-robin", options});
  options.use_feedback = false;
  specs.push_back({"round-robin w/o feedback", options});
  options.algorithm = core::Algorithm::kNumCpus;
  options.use_feedback = true;
  specs.push_back({"num-cpus", options});
  options.use_feedback = false;
  specs.push_back({"num-cpus w/o feedback", options});

  exp::Experiment experiment(paper_config(30));
  const auto results = experiment.run(specs);
  print_results("fig2", results, false);

  // Shape check against the paper's claim.  The headline numbers come
  // from the flight recorder's per-client completion-time histograms --
  // the same instrument every other figure can now read -- instead of
  // ad-hoc client counters.
  const auto& recorder = experiment.recorder();
  const auto mean_completion = [&](const std::string& label) -> double {
    const auto* histogram =
        recorder.histogram("dag.completion_time", "sphinx-client/" + label);
    if (histogram == nullptr) {
      throw AssertionError("no recorded completions for tenant " + label);
    }
    return histogram->stats.mean();
  };
  const double rr = mean_completion("round-robin");
  const double rr_nofb = mean_completion("round-robin w/o feedback");
  const double nc = mean_completion("num-cpus");
  const double nc_nofb = mean_completion("num-cpus w/o feedback");
  std::printf("feedback improvement: round-robin %.1f%%, num-cpus %.1f%%\n",
              100.0 * (rr_nofb - rr) / rr_nofb,
              100.0 * (nc_nofb - nc) / nc_nofb);
  std::printf("paper reports ~20-29%% improvement from feedback\n");
  return 0;
}
