#include "rpc/xmlrpc.hpp"

#include <sstream>

namespace sphinx::rpc {

std::int64_t XrValue::as_int() const {
  SPHINX_ASSERT(is_int(), "XrValue is not an int");
  return std::get<std::int64_t>(data_);
}

double XrValue::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  SPHINX_ASSERT(is_double(), "XrValue is not a double");
  return std::get<double>(data_);
}

bool XrValue::as_bool() const {
  SPHINX_ASSERT(is_bool(), "XrValue is not a bool");
  return std::get<bool>(data_);
}

const std::string& XrValue::as_string() const {
  SPHINX_ASSERT(is_string(), "XrValue is not a string");
  return std::get<std::string>(data_);
}

const XrValue::Array& XrValue::as_array() const {
  SPHINX_ASSERT(is_array(), "XrValue is not an array");
  return std::get<Array>(data_);
}

const XrValue::Struct& XrValue::as_struct() const {
  SPHINX_ASSERT(is_struct(), "XrValue is not a struct");
  return std::get<Struct>(data_);
}

const XrValue& XrValue::at(const std::string& key) const {
  const Struct& s = as_struct();
  const auto it = s.find(key);
  SPHINX_ASSERT(it != s.end(), "missing struct member: " + key);
  return it->second;
}

bool XrValue::has(const std::string& key) const noexcept {
  return is_struct() && std::get<Struct>(data_).contains(key);
}

XmlNode XrValue::to_xml() const {
  XmlNode value("value");
  if (is_int()) {
    value.add_child(XmlNode("i8", std::to_string(as_int())));
  } else if (is_double()) {
    std::ostringstream oss;
    oss.precision(17);
    oss << as_double();
    value.add_child(XmlNode("double", oss.str()));
  } else if (is_bool()) {
    value.add_child(XmlNode("boolean", as_bool() ? "1" : "0"));
  } else if (is_string()) {
    value.add_child(XmlNode("string", as_string()));
  } else if (is_array()) {
    XmlNode data("data");
    for (const XrValue& item : as_array()) data.add_child(item.to_xml());
    XmlNode array("array");
    array.add_child(std::move(data));
    value.add_child(std::move(array));
  } else {
    XmlNode strct("struct");
    for (const auto& [k, v] : as_struct()) {
      XmlNode member("member");
      member.add_child(XmlNode("name", k));
      member.add_child(v.to_xml());
      strct.add_child(std::move(member));
    }
    value.add_child(std::move(strct));
  }
  return value;
}

Expected<XrValue> XrValue::from_xml(const XmlNode& value_node) {
  if (value_node.name != "value") {
    return make_error("xmlrpc_parse", "expected <value>, got <" +
                                          value_node.name + ">");
  }
  // Bare text inside <value> is a string per the XML-RPC spec.
  if (value_node.children.empty()) {
    return XrValue(value_node.text);
  }
  const XmlNode& t = value_node.children.front();
  if (t.name == "i4" || t.name == "int" || t.name == "i8") {
    try {
      return XrValue(static_cast<std::int64_t>(std::stoll(t.text)));
    } catch (const std::exception&) {
      return make_error("xmlrpc_parse", "bad int: " + t.text);
    }
  }
  if (t.name == "double") {
    try {
      return XrValue(std::stod(t.text));
    } catch (const std::exception&) {
      return make_error("xmlrpc_parse", "bad double: " + t.text);
    }
  }
  if (t.name == "boolean") {
    if (t.text != "0" && t.text != "1") {
      return make_error("xmlrpc_parse", "bad boolean: " + t.text);
    }
    return XrValue(t.text == "1");
  }
  if (t.name == "string") {
    return XrValue(t.text);
  }
  if (t.name == "array") {
    const XmlNode* data = t.child("data");
    if (data == nullptr) return make_error("xmlrpc_parse", "array without <data>");
    Array items;
    for (const XmlNode& c : data->children) {
      auto item = from_xml(c);
      if (!item) return item;
      items.push_back(std::move(*item));
    }
    return XrValue(std::move(items));
  }
  if (t.name == "struct") {
    Struct members;
    for (const XmlNode& member : t.children) {
      if (member.name != "member") {
        return make_error("xmlrpc_parse", "struct child is not <member>");
      }
      const XmlNode* name = member.child("name");
      const XmlNode* value = member.child("value");
      if (name == nullptr || value == nullptr) {
        return make_error("xmlrpc_parse", "incomplete <member>");
      }
      auto v = from_xml(*value);
      if (!v) return v;
      members.emplace(name->text, std::move(*v));
    }
    return XrValue(std::move(members));
  }
  return make_error("xmlrpc_parse", "unknown value type <" + t.name + ">");
}

std::string MethodCall::serialize() const {
  XmlNode root("methodCall");
  root.add_child(XmlNode("methodName", method));
  XmlNode& params_node = root.add_child(XmlNode("params"));
  for (const XrValue& p : params) {
    XmlNode param("param");
    param.add_child(p.to_xml());
    params_node.add_child(std::move(param));
  }
  return "<?xml version=\"1.0\"?>" + xml_write(root);
}

Expected<MethodCall> MethodCall::parse(const std::string& xml) {
  auto doc = xml_parse(xml);
  if (!doc) return Unexpected<Error>{doc.error()};
  if (doc->name != "methodCall") {
    return make_error("xmlrpc_parse", "not a <methodCall>");
  }
  const XmlNode* name = doc->child("methodName");
  if (name == nullptr || name->text.empty()) {
    return make_error("xmlrpc_parse", "missing <methodName>");
  }
  MethodCall call;
  call.method = name->text;
  if (const XmlNode* params = doc->child("params"); params != nullptr) {
    for (const XmlNode& param : params->children) {
      const XmlNode* value = param.child("value");
      if (value == nullptr) {
        return make_error("xmlrpc_parse", "<param> without <value>");
      }
      auto v = XrValue::from_xml(*value);
      if (!v) return Unexpected<Error>{v.error()};
      call.params.push_back(std::move(*v));
    }
  }
  return call;
}

std::string MethodResponse::serialize() const {
  XmlNode root("methodResponse");
  if (is_fault) {
    XrValue::Struct f;
    f.emplace("faultCode", XrValue(fault.code));
    f.emplace("faultString", XrValue(fault.message));
    XmlNode& fault_node = root.add_child(XmlNode("fault"));
    fault_node.add_child(XrValue(std::move(f)).to_xml());
  } else {
    XmlNode& params = root.add_child(XmlNode("params"));
    XmlNode param("param");
    param.add_child(value.to_xml());
    params.add_child(std::move(param));
  }
  return "<?xml version=\"1.0\"?>" + xml_write(root);
}

Expected<MethodResponse> MethodResponse::parse(const std::string& xml) {
  auto doc = xml_parse(xml);
  if (!doc) return Unexpected<Error>{doc.error()};
  if (doc->name != "methodResponse") {
    return make_error("xmlrpc_parse", "not a <methodResponse>");
  }
  if (const XmlNode* fault = doc->child("fault"); fault != nullptr) {
    const XmlNode* value = fault->child("value");
    if (value == nullptr) return make_error("xmlrpc_parse", "fault without value");
    auto v = XrValue::from_xml(*value);
    if (!v) return Unexpected<Error>{v.error()};
    if (!v->has("faultCode") || !v->has("faultString")) {
      return make_error("xmlrpc_parse", "fault struct incomplete");
    }
    return MethodResponse::failure(v->at("faultCode").as_int(),
                                   v->at("faultString").as_string());
  }
  const XmlNode* params = doc->child("params");
  if (params == nullptr || params->children.empty()) {
    return make_error("xmlrpc_parse", "response without params or fault");
  }
  const XmlNode* value = params->children.front().child("value");
  if (value == nullptr) return make_error("xmlrpc_parse", "param without value");
  auto v = XrValue::from_xml(*value);
  if (!v) return Unexpected<Error>{v.error()};
  return MethodResponse::success(std::move(*v));
}

}  // namespace sphinx::rpc
