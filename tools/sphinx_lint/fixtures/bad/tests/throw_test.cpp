// Fixture: throwing anything but AssertionError/ContractViolation must
// trip naked-throw.
#include <stdexcept>

void fail_operationally() { throw std::runtime_error("site down"); }

void fail_numerically() { throw 42; }
