#pragma once
/// \file classad.hpp
/// Condor ClassAds: typed attribute lists with requirement matching.
///
/// The SPHINX client "creates an appropriate request submission file
/// according to the decision" (paper section 3.3).  Submit files and
/// machine descriptions are ClassAds; matchmaking evaluates one ad's
/// Requirements against another ad's attributes.  This implements the
/// subset the middleware needs: scalar attributes, comparison
/// requirements, conjunction, and a text rendering of submit files.

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace sphinx::submit {

/// A ClassAd attribute value.
using AdValue = std::variant<std::int64_t, double, bool, std::string>;

[[nodiscard]] std::string to_string(const AdValue& v);

/// Comparison operators usable in requirements.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

[[nodiscard]] const char* to_string(CmpOp op) noexcept;

/// One clause: `attribute <op> literal`.  A missing attribute fails the
/// clause (Condor's undefined semantics, simplified).
struct Requirement {
  std::string attribute;
  CmpOp op = CmpOp::kEq;
  AdValue literal;
};

/// An attribute list plus a conjunction of requirements.
class ClassAd {
 public:
  void set(const std::string& name, AdValue value);
  [[nodiscard]] bool has(const std::string& name) const noexcept;
  /// Typed read; throws AssertionError when absent (attributes the code
  /// reads are ones it previously set).
  [[nodiscard]] const AdValue& get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_real(const std::string& name) const;  ///< int widens
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  void add_requirement(Requirement r) { requirements_.push_back(std::move(r)); }
  [[nodiscard]] const std::vector<Requirement>& requirements() const noexcept {
    return requirements_;
  }

  /// True when every requirement of *this* ad holds against `other`'s
  /// attributes (one direction of Condor's two-way matchmaking).
  [[nodiscard]] bool matches(const ClassAd& other) const;

  /// Symmetric match: both ads' requirements hold against each other.
  [[nodiscard]] static bool symmetric_match(const ClassAd& a, const ClassAd& b);

  /// Submit-file style rendering ("attr = value" lines + requirements).
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t size() const noexcept { return attributes_.size(); }

 private:
  std::map<std::string, AdValue> attributes_;
  std::vector<Requirement> requirements_;
};

/// Evaluates a single requirement clause against an ad.
[[nodiscard]] bool evaluate(const Requirement& r, const ClassAd& ad);

}  // namespace sphinx::submit
