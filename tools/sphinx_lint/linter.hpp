#pragma once
/// \file linter.hpp
/// sphinx-lint: the project's determinism / error-discipline checker.
///
/// A token/regex-level linter (deliberately no libclang dependency) that
/// enforces the rules the simulator's credibility rests on:
///
///   sim-clock         no wall-clock sources in simulation code; sim time
///                     comes from src/common/time.hpp via the Engine
///   sim-random        no ambient randomness (rand, random_device, ...);
///                     draws come from seeded src/common/rng.hpp streams
///   discarded-status  no `(void)` casts of call results in library code
///                     (src/) -- they defeat [[nodiscard]] on
///                     Expected/Status; tests/benches may discard handles
///   naked-throw       throw only AssertionError/ContractViolation
///                     (operational failures travel as Expected/Status)
///   iostream-include  library code (src/) logs via src/common/log.hpp,
///                     never #include <iostream>
///   pragma-once       headers start with #pragma once
///   file-comment      headers carry a `/// \file` comment near the top
///
/// Comments and string literals (including raw strings) are stripped
/// before matching, so documentation may mention rand() freely.  A
/// deliberate exception is declared inline with a comment containing
/// `sphinx-lint-allow(<rule>)` on the offending line.

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace sphinx::lint {

/// One rule violation.
struct Finding {
  std::string path;     ///< scan-root-relative path, '/'-separated
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< rule identifier, e.g. "sim-clock"
  std::string message;  ///< human-readable explanation

  [[nodiscard]] std::string to_string() const;
};

/// Rule identifiers with one-line descriptions, for --list-rules.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> rule_list();

/// Lints one translation unit given its contents and scan-root-relative
/// path (path scoping: some rules apply only under src/, and the
/// determinism whitelist names specific src/common/ files).
[[nodiscard]] std::vector<Finding> lint_source(std::string_view content,
                                               const std::string& rel_path);

/// Walks `entries` (directories or files, relative to `root`) and lints
/// every C++ source/header found, in sorted order for deterministic
/// output.  IO problems are reported into `errors` (if non-null) rather
/// than thrown.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::filesystem::path& root, const std::vector<std::string>& entries,
    std::vector<std::string>* errors = nullptr);

}  // namespace sphinx::lint
