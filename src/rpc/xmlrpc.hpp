#pragma once
/// \file xmlrpc.hpp
/// XML-RPC data model and method-call/response envelopes.
///
/// The SPHINX client and server exchange GSI-enabled XML-RPC messages
/// (paper Figure 1).  This implements the XML-RPC value system (int,
/// double, boolean, string, array, struct), <methodCall> and
/// <methodResponse> envelopes including <fault>.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "rpc/xml.hpp"

namespace sphinx::rpc {

/// An XML-RPC value.  Arrays and structs nest arbitrarily.
class XrValue {
 public:
  using Array = std::vector<XrValue>;
  using Struct = std::map<std::string, XrValue>;

  XrValue() : data_(std::string{}) {}  ///< XML-RPC has no null; default ""
  XrValue(std::int64_t v) : data_(v) {}
  XrValue(int v) : data_(static_cast<std::int64_t>(v)) {}
  XrValue(std::uint64_t v) : data_(static_cast<std::int64_t>(v)) {}
  XrValue(double v) : data_(v) {}
  XrValue(bool v) : data_(v) {}
  XrValue(std::string v) : data_(std::move(v)) {}
  XrValue(const char* v) : data_(std::string(v)) {}
  XrValue(Array v) : data_(std::move(v)) {}
  XrValue(Struct v) : data_(std::move(v)) {}

  [[nodiscard]] bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(data_); }
  [[nodiscard]] bool is_double() const noexcept { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_struct() const noexcept { return std::holds_alternative<Struct>(data_); }

  /// Typed accessors; throw AssertionError on type mismatch.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  ///< accepts int too
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Struct& as_struct() const;

  /// Struct member access; throws if not a struct or key missing.
  [[nodiscard]] const XrValue& at(const std::string& key) const;
  /// True if this is a struct containing `key`.
  [[nodiscard]] bool has(const std::string& key) const noexcept;

  /// Encodes as a <value> element.
  [[nodiscard]] XmlNode to_xml() const;
  /// Decodes from a <value> element.
  [[nodiscard]] static Expected<XrValue> from_xml(const XmlNode& value_node);

  friend bool operator==(const XrValue& a, const XrValue& b) noexcept {
    return a.data_ == b.data_;
  }

 private:
  std::variant<std::int64_t, double, bool, std::string, Array, Struct> data_;
};

/// A <methodCall>.
struct MethodCall {
  std::string method;
  std::vector<XrValue> params;

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static Expected<MethodCall> parse(const std::string& xml);
};

/// XML-RPC fault payload.
struct Fault {
  std::int64_t code = 0;
  std::string message;
};

/// A <methodResponse>: either one return value or a fault.
struct MethodResponse {
  XrValue value;
  bool is_fault = false;
  Fault fault;

  [[nodiscard]] static MethodResponse success(XrValue v) {
    MethodResponse r;
    r.value = std::move(v);
    return r;
  }
  [[nodiscard]] static MethodResponse failure(std::int64_t code,
                                              std::string message) {
    MethodResponse r;
    r.is_fault = true;
    r.fault = Fault{code, std::move(message)};
    return r;
  }

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static Expected<MethodResponse> parse(const std::string& xml);
};

}  // namespace sphinx::rpc
