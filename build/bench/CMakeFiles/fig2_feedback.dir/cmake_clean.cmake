file(REMOVE_RECURSE
  "CMakeFiles/fig2_feedback.dir/fig2_feedback.cpp.o"
  "CMakeFiles/fig2_feedback.dir/fig2_feedback.cpp.o.d"
  "fig2_feedback"
  "fig2_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
