/// Microbenchmarks for the discrete-event engine: scheduling, firing,
/// cancellation and periodic processes.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace {

using sphinx::sim::Engine;
using sphinx::sim::EventHandle;

void BM_ScheduleAndFire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<double>(i), "e", [&fired] { ++fired; });
    }
    engine.run_until();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleAndFire)->Range(1 << 10, 1 << 16);

void BM_ScheduleReverseOrder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    for (std::size_t i = n; i > 0; --i) {
      engine.schedule_at(static_cast<double>(i), "e", [] {});
    }
    engine.run_until();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleReverseOrder)->Range(1 << 10, 1 << 14);

void BM_CancelHalf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    std::vector<EventHandle> handles;
    handles.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(
          engine.schedule_at(static_cast<double>(i), "e", [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) engine.cancel(handles[i]);
    engine.run_until();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CancelHalf)->Range(1 << 10, 1 << 14);

void BM_SelfRescheduling(benchmark::State& state) {
  // The dominant pattern in the simulator: an event chain (periodic
  // processes, transfer completions) rescheduling itself.
  for (auto _ : state) {
    Engine engine;
    std::size_t remaining = 10000;
    std::function<void()> chain = [&] {
      if (--remaining > 0) engine.schedule_in(1.0, "chain", chain);
    };
    engine.schedule_in(1.0, "chain", chain);
    engine.run_until();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SelfRescheduling);

void BM_PeriodicProcesses(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    std::vector<std::unique_ptr<sphinx::sim::PeriodicProcess>> procs;
    std::size_t ticks = 0;
    for (std::size_t i = 0; i < n; ++i) {
      procs.push_back(std::make_unique<sphinx::sim::PeriodicProcess>(
          engine, "tick", 1.0, [&ticks] { ++ticks; },
          static_cast<double>(i) / static_cast<double>(n)));
      procs.back()->start();
    }
    engine.run_until(100.0);
    benchmark::DoNotOptimize(ticks);
  }
}
BENCHMARK(BM_PeriodicProcesses)->Range(8, 128);

}  // namespace
