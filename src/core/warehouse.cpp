#include "core/warehouse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/contracts.hpp"
#include "obs/recorder.hpp"

namespace sphinx::core {

using db::Value;

namespace {
// EWMA weight for completion-time tracking: recent behaviour dominates on
// a dynamic grid, but not so sharply that one outlier flips the ranking.
constexpr double kEwmaAlpha = 0.3;
// Straggler detector sample rings: runtime observations retained per
// (site, job-class) key.  Bounded so the journal and the percentile scan
// both stay O(1) per key while the distribution still adapts.
constexpr std::size_t kMaxRuntimeSamples = 32;
}  // namespace

DataWarehouse::DataWarehouse() : DataWarehouse(true) {}

DataWarehouse::DataWarehouse(bool with_schema) {
  if (with_schema) create_schema();
}

void DataWarehouse::create_schema() {
  using db::indexed;
  using db::ValueType;
  // Hot-path columns declare their hash index in the schema itself, so the
  // index set is journaled with the kCreateTable entry and recovery
  // rebuilds it without a separate recreation pass.
  db_.create_table("dags", db::Schema{{indexed("dag_id", ValueType::kInt),
                                       {"name", ValueType::kText},
                                       {"client", ValueType::kText},
                                       {"user", ValueType::kInt},
                                       indexed("state", ValueType::kText),
                                       {"received_at", ValueType::kReal},
                                       {"finished_at", ValueType::kReal},
                                       {"total_jobs", ValueType::kInt},
                                       {"priority", ValueType::kReal},
                                       {"deadline", ValueType::kReal}}});
  db_.create_table("jobs", db::Schema{{indexed("job_id", ValueType::kInt),
                                       indexed("dag_id", ValueType::kInt),
                                       {"name", ValueType::kText},
                                       indexed("state", ValueType::kText),
                                       {"site", ValueType::kInt},
                                       {"compute_time", ValueType::kReal},
                                       {"output", ValueType::kText},
                                       {"output_bytes", ValueType::kReal},
                                       {"attempt", ValueType::kInt},
                                       {"planned_at", ValueType::kReal}}});
  db_.create_table("job_inputs",
                   db::Schema{{indexed("job_id", ValueType::kInt),
                               {"lfn", ValueType::kText}}});
  db_.create_table("job_deps",
                   db::Schema{{indexed("job_id", ValueType::kInt),
                               indexed("parent", ValueType::kInt)}});
  db_.create_table("site_stats",
                   db::Schema{{indexed("site_id", ValueType::kInt),
                               {"completed", ValueType::kInt},
                               {"cancelled", ValueType::kInt},
                               {"avg_completion", ValueType::kReal},
                               {"samples", ValueType::kInt}}});
  db_.create_table("quotas", db::Schema{{indexed("user", ValueType::kInt),
                                         {"site", ValueType::kInt},
                                         {"resource", ValueType::kText},
                                         {"limit", ValueType::kReal},
                                         {"used", ValueType::kReal}}});
  // Key/value store for scheduling-module soft state (strategy cursors).
  // Journaled like everything else, so a recovered server's strategy
  // resumes mid-rotation instead of resetting to job zero.
  db_.create_table("scheduler_state",
                   db::Schema{{indexed("key", ValueType::kText),
                               {"value", ValueType::kText}}});
  // In-flight calls of the server's outbound RPC client.  Journaled so a
  // journal-recovered server re-arms the exact retry schedule the
  // crashed instance had in flight (see ClarensClient::restore_call).
  db_.create_table("rpc_outbox",
                   db::Schema{{indexed("seq", ValueType::kInt),
                               {"service", ValueType::kText},
                               {"payload", ValueType::kText},
                               {"attempt", ValueType::kInt},
                               {"last_sent_at", ValueType::kReal}}});
  // Straggler defense.  Speculation races are scheduler state proper --
  // recovery must re-arm an open race exactly, so the rows ride the
  // journal like jobs do.  The runtime-sample rings feed the detector's
  // per-(site, class) percentiles; journaling them keeps a recovered
  // detector's decisions byte-identical to the crashed instance's.
  db_.create_table("speculations",
                   db::Schema{{indexed("job_id", ValueType::kInt),
                               {"dag_id", ValueType::kInt},
                               {"primary_site", ValueType::kInt},
                               {"primary_attempt", ValueType::kInt},
                               {"primary_planned_at", ValueType::kReal},
                               {"spec_site", ValueType::kInt},
                               {"spec_attempt", ValueType::kInt},
                               indexed("state", ValueType::kText),
                               {"launched_at", ValueType::kReal}}});
  db_.create_table("runtime_samples",
                   db::Schema{{indexed("site", ValueType::kInt),
                               indexed("class", ValueType::kInt),
                               {"runtime", ValueType::kReal}}});
  // One-row drain ledger.  The dirty queue itself is derived state, but
  // *when* each sweep cleared it is history only the journal carries:
  // rebuild_work_state() replays the enqueue rules over the journal and
  // needs the clear points to land in order between them.
  db::Table& work_queue =
      db_.create_table("work_queue", db::Schema{{"drains", ValueType::kInt}});
  work_queue.insert({Value(std::int64_t{0})});
}

Expected<std::unique_ptr<DataWarehouse>> DataWarehouse::recover_from(
    const db::Journal& journal) {
  if (journal.base_seq() != 0) {
    return Unexpected<Error>{
        Error{"recover_suffix",
              "journal is a compacted suffix; recovery needs its "
              "checkpoint image"}};
  }
  // Construct without a schema: the journal replays table creation, and
  // the journaled schema declares the indexes, so replay rebuilds those
  // too.  Only the derived work state needs explicit reconstruction.
  auto warehouse =
      std::unique_ptr<DataWarehouse>(new DataWarehouse(false));
  if (const auto status = warehouse->db_.recover(journal); !status.ok()) {
    return Unexpected<Error>{status.error()};
  }
  warehouse->rebuild_work_state();
  warehouse->check_invariants();  // replay must reproduce a sound store
  return warehouse;
}

Expected<std::unique_ptr<DataWarehouse>> DataWarehouse::recover_from(
    const CheckpointImage& checkpoint, const db::Journal& journal) {
  auto warehouse =
      std::unique_ptr<DataWarehouse>(new DataWarehouse(false));
  if (const auto status = warehouse->db_.restore(checkpoint.database);
      !status.ok()) {
    return Unexpected<Error>{status.error()};
  }
  // Replay only the post-checkpoint suffix.  When the crash landed
  // between image publication and truncation the journal still holds the
  // compacted prefix; skipping entries below checkpoint.seq completes
  // the interrupted truncation.
  if (const auto status = warehouse->db_.recover(journal, checkpoint.seq);
      !status.ok()) {
    return Unexpected<Error>{status.error()};
  }
  // Carry the image so rebuild_work_state() can seed the dirty queue
  // from it and so a later crash can pair the (now compacted) journal
  // with the image that anchors its sequence numbers.
  warehouse->checkpoint_ = checkpoint;
  warehouse->rebuild_work_state();
  warehouse->check_invariants();
  return warehouse;
}

DataWarehouse::CheckpointStats DataWarehouse::checkpoint(
    SimTime now, const std::function<bool(const CheckpointImage&)>& mid_hook) {
  CheckpointImage image;
  image.seq = db_.journal().next_seq();
  image.at = now;
  image.database = db_.snapshot();
  image.dirty_rows.assign(dirty_rows_.begin(), dirty_rows_.end());

  CheckpointStats stats;
  stats.seq = image.seq;
  stats.compacted_records = db_.journal().size();
  stats.snapshot_bytes = image.database.size();

  // Publish first: from here on a recovered instance no longer needs the
  // journal prefix, whether or not the truncation below completes.
  checkpoint_ = std::move(image);
  if (mid_hook && mid_hook(*checkpoint_)) {
    return stats;  // crashing mid-checkpoint; journal left untruncated
  }
  db_.truncate_journal(checkpoint_->seq);
  stats.truncated = true;
  SPHINX_POSTCONDITION(db_.journal().base_seq() == checkpoint_->seq,
                       "compaction must advance the journal base to the "
                       "checkpoint sequence");
  return stats;
}

void DataWarehouse::rebuild_work_state() {
  // With a checkpoint image carried, the journal is (or is treated as) a
  // suffix: drain points and enqueues at or before the checkpoint were
  // compacted away, so the queue replay below must start from the
  // image's dirty queue rather than empty.  The drain-ledger exactness
  // argument is unchanged -- the image captured the live queue at the
  // checkpoint, and the suffix carries every enqueue/drain after it.
  dirty_rows_.clear();
  if (checkpoint_.has_value()) {
    dirty_rows_.insert(checkpoint_->dirty_rows.begin(),
                       checkpoint_->dirty_rows.end());
  }
  outstanding_.clear();

  // One pass over jobs: rebuild the outstanding counters and note which
  // DAGs still have unplanned work.
  const db::Table& jobs = db_.table("jobs");
  const std::size_t job_state_col = jobs.schema().index_of("state");
  const std::size_t job_site_col = jobs.schema().index_of("site");
  const std::size_t job_dag_col = jobs.schema().index_of("dag_id");
  std::unordered_set<std::uint64_t> dags_with_unplanned;
  jobs.for_each([&](const db::Row& row) {
    const JobState state = job_state_from(row.cells[job_state_col].as_text());
    if (is_outstanding(state)) {
      ++outstanding_[SiteId(
          static_cast<std::uint64_t>(row.cells[job_site_col].as_int()))];
    }
    if (state == JobState::kUnplanned) {
      dags_with_unplanned.insert(
          static_cast<std::uint64_t>(row.cells[job_dag_col].as_int()));
    }
  });
  // Open speculation races: the job row tracks the replica attempt, so
  // the original attempt's outstanding unit lives on the racing row.
  {
    const db::Table& specs = db_.table("speculations");
    const std::size_t spec_state_col = specs.schema().index_of("state");
    const std::size_t spec_primary_col =
        specs.schema().index_of("primary_site");
    const std::string racing = to_string(SpeculationState::kRacing);
    specs.for_each([&](const db::Row& row) {
      if (row.cells[spec_state_col].as_text() != racing) return;
      ++outstanding_[SiteId(
          static_cast<std::uint64_t>(row.cells[spec_primary_col].as_int()))];
    });
  }

  // The dirty queue is history, not state: "job completed, DAG queued,
  // sweep pending" and "job completed, sweep already ran" leave
  // identical tables, so no table scan can reconstruct it.  Replay the
  // live enqueue/clear rules over the journal instead -- every enqueue
  // rides a journaled write, and the drain ledger marks where each sweep
  // cleared the queue -- so the recovered queue IS the crashed server's
  // queue, not an approximation (the chaos harness's differential oracle
  // compares the two runs byte-for-byte).
  const db::Table& dags = db_.table("dags");
  const std::size_t dag_id_col = dags.schema().index_of("dag_id");
  const std::size_t dag_state_col = dags.schema().index_of("state");
  const std::string dag_finished = to_string(DagState::kFinished);
  const std::string job_unplanned = to_string(JobState::kUnplanned);
  const std::string job_completed = to_string(JobState::kCompleted);
  for (const db::JournalEntry& entry : db_.journal().entries()) {
    switch (entry.op) {
      case db::JournalEntry::Op::kInsert:
        // record_dag: a received DAG is work for the reducer.
        if (entry.table == "dags") dirty_rows_.insert(entry.row);
        break;
      case db::JournalEntry::Op::kUpdate:
        if (entry.table == "dags" && entry.column == dag_state_col) {
          // set_dag_state / set_dag_finished: the next stage owns it,
          // finished DAGs hold no pending work.
          if (entry.cells[0].as_text() == dag_finished) {
            dirty_rows_.erase(entry.row);
          } else {
            dirty_rows_.insert(entry.row);
          }
        } else if (entry.table == "jobs" && entry.column == job_state_col) {
          // update_job_state: falling back to unplanned or completing
          // creates planner work for the owning DAG.
          const std::string& text = entry.cells[0].as_text();
          if (text == job_unplanned || text == job_completed) {
            const db::Row* job_row = jobs.find(entry.row);
            if (job_row == nullptr) break;
            const db::Row* dag_row = dags.find_first(
                "dag_id", Value(job_row->cells[job_dag_col].as_int()));
            if (dag_row != nullptr) dirty_rows_.insert(dag_row->id);
          }
        } else if (entry.table == "work_queue") {
          dirty_rows_.clear();  // a sweep drained everything queued so far
        }
        break;
      case db::JournalEntry::Op::kErase:
        if (entry.table == "dags") dirty_rows_.erase(entry.row);
        break;
      case db::JournalEntry::Op::kCreateTable:
        break;
    }
  }

  // One enqueue has no journal footprint: the sweep re-marks any drained
  // DAG whose planner left jobs unplanned (blocked, unplaceable or
  // waiting on parents -- retried every sweep).  Such DAGs are therefore
  // continuously dirty on a live server, so queueing every unfinished
  // DAG that still holds an unplanned job reproduces those marks
  // exactly.
  dags.for_each([&](const db::Row& row) {
    if (row.cells[dag_state_col].as_text() == dag_finished) return;
    if (dags_with_unplanned.contains(
            static_cast<std::uint64_t>(row.cells[dag_id_col].as_int()))) {
      dirty_rows_.insert(row.id);
    }
  });
}

// --- DAGs ---------------------------------------------------------------

void DataWarehouse::insert_dag(const workflow::Dag& dag,
                               const std::string& client, UserId user,
                               SimTime now, double priority,
                               SimTime deadline) {
  const db::RowId row = db_.table("dags").insert(
      {Value(dag.id().value()), Value(dag.name()), Value(client),
       Value(user.value()), Value(to_string(DagState::kReceived)), Value(now),
       Value(kNever), Value(static_cast<std::int64_t>(dag.size())),
       Value(priority), Value(deadline)});
  dirty_rows_.insert(row);  // a received DAG is work for the reducer
  db::Table& jobs = db_.table("jobs");
  db::Table& inputs = db_.table("job_inputs");
  db::Table& deps = db_.table("job_deps");
  for (const workflow::JobSpec& job : dag.jobs()) {
    jobs.insert({Value(job.id.value()), Value(dag.id().value()),
                 Value(job.name), Value(to_string(JobState::kUnplanned)),
                 Value(std::int64_t{0}), Value(job.compute_time),
                 Value(job.output), Value(job.output_bytes),
                 Value(std::int64_t{0}), Value(kNever)});
    for (const data::Lfn& lfn : job.inputs) {
      inputs.insert({Value(job.id.value()), Value(lfn)});
    }
    for (const JobId parent : dag.parents(job.id)) {
      deps.insert({Value(job.id.value()), Value(parent.value())});
    }
  }
}

DagRecord DataWarehouse::decode_dag(const db::Row& row) {
  DagRecord rec;
  rec.id = DagId(static_cast<std::uint64_t>(row.cells[0].as_int()));
  rec.name = row.cells[1].as_text();
  rec.client = row.cells[2].as_text();
  rec.user = UserId(static_cast<std::uint64_t>(row.cells[3].as_int()));
  rec.state = dag_state_from(row.cells[4].as_text());
  rec.received_at = row.cells[5].as_real();
  rec.finished_at = row.cells[6].as_real();
  rec.total_jobs = row.cells[7].as_int();
  rec.priority = row.cells[8].as_real();
  rec.deadline = row.cells[9].as_real();
  return rec;
}

std::vector<DagRecord> DataWarehouse::dags_in_state(DagState state) const {
  const db::Table& dags = db_.table("dags");
  std::vector<DagRecord> out;
  for (const db::RowId id : dags.find_by("state", Value(to_string(state)))) {
    out.push_back(decode_dag(*dags.find(id)));
  }
  return out;
}

std::optional<DagRecord> DataWarehouse::dag(DagId id) const {
  const db::Row* row =
      db_.table("dags").find_first("dag_id", Value(id.value()));
  if (row == nullptr) return std::nullopt;
  return decode_dag(*row);
}

void DataWarehouse::set_dag_state(DagId id, DagState state) {
  db::Table& dags = db_.table("dags");
  const db::Row* row = dags.find_first("dag_id", Value(id.value()));
  SPHINX_ASSERT(row != nullptr, "set_dag_state: unknown dag");
  SPHINX_PRECONDITION(
      is_legal_transition(dag_state_from(row->cells[4].as_text()), state),
      "dag automaton only moves forward");
  const db::RowId row_id = row->id;
  dags.update(row_id, "state", Value(to_string(state)));
  if (state == DagState::kFinished) {
    dirty_rows_.erase(row_id);
  } else {
    dirty_rows_.insert(row_id);  // the next pipeline stage owns it now
  }
}

void DataWarehouse::set_dag_finished(DagId id, SimTime at) {
  db::Table& dags = db_.table("dags");
  const db::Row* row = dags.find_first("dag_id", Value(id.value()));
  SPHINX_ASSERT(row != nullptr, "set_dag_finished: unknown dag");
  SPHINX_PRECONDITION(at >= row->cells[5].as_real(),
                      "dag cannot finish before it was received");
  const db::RowId row_id = row->id;
  dags.update(row_id, "state", Value(to_string(DagState::kFinished)));
  dags.update(row_id, "finished_at", Value(at));
  dirty_rows_.erase(row_id);  // finished DAGs hold no pending work
}

std::vector<DagRecord> DataWarehouse::all_dags() const {
  std::vector<DagRecord> out;
  db_.table("dags").for_each(
      [&out](const db::Row& row) { out.push_back(decode_dag(row)); });
  return out;
}

// --- jobs ---------------------------------------------------------------

JobRecord DataWarehouse::decode_job(const db::Row& row) {
  JobRecord rec;
  rec.id = JobId(static_cast<std::uint64_t>(row.cells[0].as_int()));
  rec.dag = DagId(static_cast<std::uint64_t>(row.cells[1].as_int()));
  rec.name = row.cells[2].as_text();
  rec.state = job_state_from(row.cells[3].as_text());
  rec.site = SiteId(static_cast<std::uint64_t>(row.cells[4].as_int()));
  rec.compute_time = row.cells[5].as_real();
  rec.output = row.cells[6].as_text();
  rec.output_bytes = row.cells[7].as_real();
  rec.attempt = static_cast<int>(row.cells[8].as_int());
  rec.planned_at = row.cells[9].as_real();
  return rec;
}

SpeculationRecord DataWarehouse::decode_speculation(const db::Row& row) {
  SpeculationRecord rec;
  rec.job = JobId(static_cast<std::uint64_t>(row.cells[0].as_int()));
  rec.dag = DagId(static_cast<std::uint64_t>(row.cells[1].as_int()));
  rec.primary_site =
      SiteId(static_cast<std::uint64_t>(row.cells[2].as_int()));
  rec.primary_attempt = static_cast<int>(row.cells[3].as_int());
  rec.primary_planned_at = row.cells[4].as_real();
  rec.spec_site = SiteId(static_cast<std::uint64_t>(row.cells[5].as_int()));
  rec.spec_attempt = static_cast<int>(row.cells[6].as_int());
  rec.state = speculation_state_from(row.cells[7].as_text());
  rec.launched_at = row.cells[8].as_real();
  return rec;
}

std::optional<JobRecord> DataWarehouse::job(JobId id) const {
  const db::Row* row =
      db_.table("jobs").find_first("job_id", Value(id.value()));
  if (row == nullptr) return std::nullopt;
  return decode_job(*row);
}

std::vector<JobRecord> DataWarehouse::jobs_of_dag(DagId id) const {
  const db::Table& jobs = db_.table("jobs");
  std::vector<JobRecord> out;
  for (const db::RowId row : jobs.find_by("dag_id", Value(id.value()))) {
    out.push_back(decode_job(*jobs.find(row)));
  }
  return out;
}

std::vector<JobRecord> DataWarehouse::jobs_in_state(JobState state) const {
  const db::Table& jobs = db_.table("jobs");
  std::vector<JobRecord> out;
  for (const db::RowId row : jobs.find_by("state", Value(to_string(state)))) {
    out.push_back(decode_job(*jobs.find(row)));
  }
  return out;
}

void DataWarehouse::set_job_state(JobId id, JobState state,
                                  std::string_view reason) {
  db::Table& jobs = db_.table("jobs");
  const db::Row* row = jobs.find_first("job_id", Value(id.value()));
  SPHINX_ASSERT(row != nullptr, "set_job_state: unknown job");
  const JobState old_state = job_state_from(row->cells[3].as_text());
  SPHINX_PRECONDITION(is_legal_transition(old_state, state),
                      "illegal job state transition " +
                          std::string(to_string(old_state)) + " -> " +
                          to_string(state));
  const SiteId site(static_cast<std::uint64_t>(row->cells[4].as_int()));
  const Value dag_key = row->cells[1];
  const std::int64_t attempt = row->cells[8].as_int();
  const db::RowId row_id = row->id;
  jobs.update(row_id, "state", Value(to_string(state)));

  // Maintain the outstanding counters on the transition itself.
  const bool was_out = is_outstanding(old_state);
  const bool now_out = is_outstanding(state);
  if (was_out && !now_out) {
    const auto it = outstanding_.find(site);
    SPHINX_ASSERT(it != outstanding_.end() && it->second > 0,
                  "outstanding counter underflow");
    if (--it->second == 0) outstanding_.erase(it);
  } else if (!was_out && now_out) {
    ++outstanding_[site];
  }

  // A job falling back to unplanned (replanning) or completing (children
  // may become ready; the DAG may finish) creates planner work.
  if (state == JobState::kUnplanned || state == JobState::kCompleted) {
    const db::Row* dag_row = db_.table("dags").find_first("dag_id", dag_key);
    if (dag_row != nullptr) dirty_rows_.insert(dag_row->id);
  }

  if (recorder_ != nullptr) {
    std::string detail = std::string(to_string(old_state)) + "->" +
                         to_string(state);
    if (!reason.empty()) {
      detail += " (";
      detail += reason;
      detail += ")";
    }
    recorder_->event(obs::TraceKind::kJobTransition, recorder_source_,
                     "job:" + std::to_string(id.value()), std::move(detail),
                     static_cast<double>(attempt));
  }
}

void DataWarehouse::set_job_planned(JobId id, SiteId site, SimTime at) {
  db::Table& jobs = db_.table("jobs");
  const db::Row* row = jobs.find_first("job_id", Value(id.value()));
  SPHINX_ASSERT(row != nullptr, "set_job_planned: unknown job");
  SPHINX_PRECONDITION(
      is_legal_transition(job_state_from(row->cells[3].as_text()),
                          JobState::kPlanned),
      "job must be plannable to receive a plan");
  const db::RowId row_id = row->id;
  const std::int64_t attempt = row->cells[8].as_int() + 1;
  jobs.update(row_id, "state", Value(to_string(JobState::kPlanned)));
  jobs.update(row_id, "site", Value(site.value()));
  jobs.update(row_id, "attempt", Value(attempt));
  jobs.update(row_id, "planned_at", Value(at));
  ++outstanding_[site];  // planned counts as outstanding until it resolves

  if (recorder_ != nullptr) {
    recorder_->event(obs::TraceKind::kJobTransition, recorder_source_,
                     "job:" + std::to_string(id.value()),
                     attempt > 1 ? std::string("unplanned->planned (replan)")
                                 : std::string("unplanned->planned"),
                     static_cast<double>(attempt));
  }
}

void DataWarehouse::set_recorder(obs::Recorder* recorder, std::string source) {
  recorder_ = recorder;
  recorder_source_ = std::move(source);
}

std::vector<data::Lfn> DataWarehouse::job_inputs(JobId id) const {
  const db::Table& inputs = db_.table("job_inputs");
  std::vector<data::Lfn> out;
  for (const db::RowId row : inputs.find_by("job_id", Value(id.value()))) {
    out.push_back(inputs.find(row)->cells[1].as_text());
  }
  return out;
}

std::vector<JobId> DataWarehouse::job_parents(JobId id) const {
  const db::Table& deps = db_.table("job_deps");
  std::vector<JobId> out;
  for (const db::RowId row : deps.find_by("job_id", Value(id.value()))) {
    out.emplace_back(
        static_cast<std::uint64_t>(deps.find(row)->cells[1].as_int()));
  }
  return out;
}

std::vector<JobId> DataWarehouse::job_children(JobId id) const {
  const db::Table& deps = db_.table("job_deps");
  std::vector<JobId> out;
  for (const db::RowId row : deps.find_by("parent", Value(id.value()))) {
    out.emplace_back(
        static_cast<std::uint64_t>(deps.find(row)->cells[0].as_int()));
  }
  return out;
}

std::unordered_set<JobId> DataWarehouse::completed_jobs(DagId dag) const {
  std::unordered_set<JobId> out;
  for (const JobRecord& job : jobs_of_dag(dag)) {
    if (job.state == JobState::kCompleted) out.insert(job.id);
  }
  return out;
}

std::int64_t DataWarehouse::outstanding_on_site(SiteId site) const {
  const auto it = outstanding_.find(site);
  return it == outstanding_.end() ? 0 : it->second;
}

std::unordered_map<SiteId, std::int64_t> DataWarehouse::outstanding_by_site()
    const {
  return outstanding_;
}

std::unordered_map<SiteId, std::int64_t>
DataWarehouse::scan_outstanding_by_site() const {
  const db::Table& jobs = db_.table("jobs");
  const std::size_t state_col = jobs.schema().index_of("state");
  const std::size_t site_col = jobs.schema().index_of("site");
  std::unordered_map<SiteId, std::int64_t> out;
  jobs.for_each([&](const db::Row& row) {
    if (is_outstanding(job_state_from(row.cells[state_col].as_text()))) {
      ++out[SiteId(static_cast<std::uint64_t>(row.cells[site_col].as_int()))];
    }
  });
  // Racing speculations hold the primary attempt's unit (the job row
  // only counts the replica).
  const db::Table& specs = db_.table("speculations");
  const std::size_t spec_state_col = specs.schema().index_of("state");
  const std::size_t spec_primary_col = specs.schema().index_of("primary_site");
  const std::string racing = to_string(SpeculationState::kRacing);
  specs.for_each([&](const db::Row& row) {
    if (row.cells[spec_state_col].as_text() != racing) return;
    ++out[SiteId(
        static_cast<std::uint64_t>(row.cells[spec_primary_col].as_int()))];
  });
  return out;
}

// --- work queue ---------------------------------------------------------

void DataWarehouse::mark_dag_dirty(DagId id) {
  const db::Row* row =
      db_.table("dags").find_first("dag_id", Value(id.value()));
  SPHINX_ASSERT(row != nullptr, "mark_dag_dirty: unknown dag");
  dirty_rows_.insert(row->id);
}

std::vector<DagRecord> DataWarehouse::drain_dirty_dags() {
  if (!dirty_rows_.empty()) {
    // Journal the drain point (empty sweeps write nothing): without it a
    // recovered server cannot tell "enqueued, not yet swept" from
    // "already swept" -- both leave identical tables.
    db::Table& ledger = db_.table("work_queue");
    db::RowId ledger_row = db::kInvalidRow;
    std::int64_t drains = 0;
    ledger.for_each([&ledger_row, &drains](const db::Row& row) {
      ledger_row = row.id;
      drains = row.cells[0].as_int();
    });
    SPHINX_ASSERT(ledger_row != db::kInvalidRow, "drain ledger row missing");
    ledger.update(ledger_row, "drains", Value(drains + 1));
  }
  const db::Table& dags = db_.table("dags");
  std::vector<DagRecord> out;
  out.reserve(dirty_rows_.size());
  for (const db::RowId row_id : dirty_rows_) {
    const db::Row* row = dags.find(row_id);
    if (row == nullptr) continue;
    DagRecord rec = decode_dag(*row);
    if (rec.state == DagState::kFinished) continue;
    out.push_back(std::move(rec));
  }
  dirty_rows_.clear();
  return out;
}

std::vector<DagId> DataWarehouse::dirty_dags() const {
  const db::Table& dags = db_.table("dags");
  std::vector<DagId> out;
  out.reserve(dirty_rows_.size());
  for (const db::RowId row_id : dirty_rows_) {
    const db::Row* row = dags.find(row_id);
    if (row == nullptr) continue;
    out.emplace_back(static_cast<std::uint64_t>(row->cells[0].as_int()));
  }
  return out;
}

// --- site stats -----------------------------------------------------------

db::RowId DataWarehouse::site_stats_row(SiteId site) const {
  const db::Row* row =
      db_.table("site_stats").find_first("site_id", Value(site.value()));
  return row == nullptr ? db::kInvalidRow : row->id;
}

SiteStats DataWarehouse::site_stats(SiteId site) const {
  SiteStats out;
  out.site = site;
  const db::RowId row = site_stats_row(site);
  if (row == db::kInvalidRow) return out;
  const db::Table& stats = db_.table("site_stats");
  out.completed = stats.get(row, "completed").as_int();
  out.cancelled = stats.get(row, "cancelled").as_int();
  out.avg_completion = stats.get(row, "avg_completion").as_real();
  out.samples = stats.get(row, "samples").as_int();
  return out;
}

void DataWarehouse::record_completion(SiteId site, Duration completion_time) {
  SPHINX_PRECONDITION(completion_time >= 0 && !std::isnan(completion_time),
                      "completion time must be a non-negative duration");
  db::Table& stats = db_.table("site_stats");
  db::RowId row = site_stats_row(site);
  if (row == db::kInvalidRow) {
    stats.insert({Value(site.value()), Value(std::int64_t{1}),
                  Value(std::int64_t{0}), Value(completion_time),
                  Value(std::int64_t{1})});
    return;
  }
  const std::int64_t completed = stats.get(row, "completed").as_int() + 1;
  const std::int64_t samples = stats.get(row, "samples").as_int() + 1;
  const double prev = stats.get(row, "avg_completion").as_real();
  const double next = samples == 1
                          ? completion_time
                          : kEwmaAlpha * completion_time +
                                (1.0 - kEwmaAlpha) * prev;
  stats.update(row, "completed", Value(completed));
  stats.update(row, "samples", Value(samples));
  stats.update(row, "avg_completion", Value(next));
}

void DataWarehouse::record_cancellation(SiteId site,
                                        Duration censored_duration) {
  db::Table& stats = db_.table("site_stats");
  db::RowId row = site_stats_row(site);
  if (row == db::kInvalidRow) {
    stats.insert({Value(site.value()), Value(std::int64_t{0}),
                  Value(std::int64_t{1}), Value(censored_duration),
                  Value(censored_duration > 0 ? std::int64_t{1}
                                              : std::int64_t{0})});
    return;
  }
  stats.update(row, "cancelled",
               Value(stats.get(row, "cancelled").as_int() + 1));
  if (censored_duration > 0) {
    const std::int64_t samples = stats.get(row, "samples").as_int() + 1;
    const double prev = stats.get(row, "avg_completion").as_real();
    const double next = samples == 1 ? censored_duration
                                     : kEwmaAlpha * censored_duration +
                                           (1.0 - kEwmaAlpha) * prev;
    stats.update(row, "samples", Value(samples));
    stats.update(row, "avg_completion", Value(next));
  }
}

bool DataWarehouse::site_available(SiteId site) const {
  const SiteStats stats = site_stats(site);
  return stats.cancelled <= stats.completed;
}

// --- straggler defense ------------------------------------------------------

void DataWarehouse::record_runtime_sample(SiteId site, int job_class,
                                          Duration runtime) {
  SPHINX_PRECONDITION(runtime >= 0 && !std::isnan(runtime),
                      "runtime sample must be a non-negative duration");
  db::Table& table = db_.table("runtime_samples");
  const std::size_t class_col = table.schema().index_of("class");
  // Ring bound: evict the oldest sample of this (site, class) key first.
  // find_by yields insertion order, so the first class match is oldest.
  std::size_t held = 0;
  db::RowId oldest = db::kInvalidRow;
  for (const db::RowId id : table.find_by("site", Value(site.value()))) {
    const db::Row* row = table.find(id);
    if (static_cast<int>(row->cells[class_col].as_int()) != job_class) continue;
    ++held;
    if (oldest == db::kInvalidRow) oldest = id;
  }
  if (held >= kMaxRuntimeSamples) table.erase(oldest);
  table.insert({Value(site.value()), Value(std::int64_t{job_class}),
                Value(runtime)});
}

std::vector<double> DataWarehouse::runtime_samples(SiteId site,
                                                   int job_class) const {
  const db::Table& table = db_.table("runtime_samples");
  const std::size_t class_col = table.schema().index_of("class");
  std::vector<double> out;
  for (const db::RowId id : table.find_by("site", Value(site.value()))) {
    const db::Row* row = table.find(id);
    if (static_cast<int>(row->cells[class_col].as_int()) != job_class) continue;
    out.push_back(row->cells[2].as_real());
  }
  return out;
}

std::vector<double> DataWarehouse::runtime_samples_all_sites(
    int job_class) const {
  const db::Table& table = db_.table("runtime_samples");
  std::vector<double> out;
  for (const db::RowId id :
       table.find_by("class", Value(std::int64_t{job_class}))) {
    out.push_back(table.find(id)->cells[2].as_real());
  }
  return out;
}

void DataWarehouse::speculate_job(JobId id, SiteId spec_site, SimTime at) {
  db::Table& jobs = db_.table("jobs");
  const db::Row* row = jobs.find_first("job_id", Value(id.value()));
  SPHINX_PRECONDITION(row != nullptr, "speculate_job: unknown job");
  const JobState state = job_state_from(row->cells[3].as_text());
  SPHINX_PRECONDITION(
      state == JobState::kSubmitted || state == JobState::kRunning,
      "only a submitted/running job can be speculatively replicated");
  const SiteId primary_site(
      static_cast<std::uint64_t>(row->cells[4].as_int()));
  SPHINX_PRECONDITION(primary_site != spec_site,
                      "replica must race on a different site");
  SPHINX_PRECONDITION(!active_speculation(id).has_value(),
                      "job already has an open race");
  const std::int64_t primary_attempt = row->cells[8].as_int();
  const double primary_planned_at = row->cells[9].as_real();
  const Value dag_key = row->cells[1];
  const db::RowId row_id = row->id;

  db_.table("speculations")
      .insert({Value(id.value()), dag_key, Value(primary_site.value()),
               Value(primary_attempt), Value(primary_planned_at),
               Value(spec_site.value()), Value(primary_attempt + 1),
               Value(to_string(SpeculationState::kRacing)), Value(at)});
  // Retarget the job row at the replica.  Direct writes: the automaton
  // forbids kSubmitted/kRunning -> kPlanned for a single attempt, but
  // here the original attempt stays live on the racing row.
  jobs.update(row_id, "state", Value(to_string(JobState::kPlanned)));
  jobs.update(row_id, "site", Value(spec_site.value()));
  jobs.update(row_id, "attempt", Value(primary_attempt + 1));
  jobs.update(row_id, "planned_at", Value(at));
  // The primary's unit moved onto the racing row; the replica's is new.
  ++outstanding_[spec_site];

  if (recorder_ != nullptr) {
    recorder_->event(obs::TraceKind::kJobTransition, recorder_source_,
                     "job:" + std::to_string(id.value()),
                     std::string(to_string(state)) + "->planned (speculate)",
                     static_cast<double>(primary_attempt + 1));
  }
}

std::optional<SpeculationRecord> DataWarehouse::active_speculation(
    JobId id) const {
  const db::Table& table = db_.table("speculations");
  for (const db::RowId row_id : table.find_by("job_id", Value(id.value()))) {
    SpeculationRecord rec = decode_speculation(*table.find(row_id));
    if (rec.state == SpeculationState::kRacing) return rec;
  }
  return std::nullopt;
}

std::optional<SpeculationRecord> DataWarehouse::latest_speculation(
    JobId id) const {
  const db::Table& table = db_.table("speculations");
  std::optional<SpeculationRecord> latest;
  // find_by yields insertion order; the last row is the newest race.
  for (const db::RowId row_id : table.find_by("job_id", Value(id.value()))) {
    latest = decode_speculation(*table.find(row_id));
  }
  return latest;
}

std::vector<SpeculationRecord> DataWarehouse::racing_speculations() const {
  const db::Table& table = db_.table("speculations");
  std::vector<SpeculationRecord> out;
  for (const db::RowId row_id : table.find_by(
           "state", Value(to_string(SpeculationState::kRacing)))) {
    out.push_back(decode_speculation(*table.find(row_id)));
  }
  return out;
}

void DataWarehouse::resolve_speculation(JobId id,
                                        SpeculationState final_state) {
  SPHINX_PRECONDITION(final_state != SpeculationState::kRacing,
                      "a race resolves to a terminal state");
  db::Table& table = db_.table("speculations");
  const db::Row* racing_row = nullptr;
  for (const db::RowId row_id : table.find_by("job_id", Value(id.value()))) {
    const db::Row* row = table.find(row_id);
    if (speculation_state_from(row->cells[7].as_text()) ==
        SpeculationState::kRacing) {
      racing_row = row;
      break;
    }
  }
  SPHINX_PRECONDITION(racing_row != nullptr,
                      "resolve_speculation: job has no open race");
  const SpeculationRecord rec = decode_speculation(*racing_row);
  table.update(racing_row->id, "state", Value(to_string(final_state)));

  const auto retire = [this](SiteId site) {
    const auto it = outstanding_.find(site);
    SPHINX_ASSERT(it != outstanding_.end() && it->second > 0,
                  "outstanding counter underflow");
    if (--it->second == 0) outstanding_.erase(it);
  };
  if (final_state == SpeculationState::kSpecDead) {
    // Replica died: hand the job row back to the surviving primary.  The
    // attempt column stays at the replica's number -- reusing the burnt
    // one would collide with the client's (job, attempt) duplicate guard
    // on the next replan.
    db::Table& jobs = db_.table("jobs");
    const db::Row* job_row = jobs.find_first("job_id", Value(id.value()));
    SPHINX_ASSERT(job_row != nullptr, "resolve_speculation: unknown job");
    SPHINX_ASSERT(job_row->cells[8].as_int() == rec.spec_attempt,
                  "racing job row must still track the replica attempt");
    jobs.update(job_row->id, "site", Value(rec.primary_site.value()));
    // The primary's unit transfers from the racing row to the job row;
    // net change is the replica's retirement.
    retire(rec.spec_site);
  } else {
    retire(rec.primary_site);
  }
}

// --- RPC outbox -------------------------------------------------------------

void DataWarehouse::outbox_upsert(std::uint64_t seq, const std::string& service,
                                  const std::string& payload, int attempt,
                                  SimTime last_sent_at) {
  db::Table& table = db_.table("rpc_outbox");
  const db::Row* row =
      table.find_first("seq", Value(static_cast<std::int64_t>(seq)));
  if (row == nullptr) {
    table.insert({Value(static_cast<std::int64_t>(seq)), Value(service),
                  Value(payload), Value(std::int64_t{attempt}),
                  Value(last_sent_at)});
    return;
  }
  table.update(row->id, "attempt", Value(std::int64_t{attempt}));
  table.update(row->id, "last_sent_at", Value(last_sent_at));
}

void DataWarehouse::outbox_erase(std::uint64_t seq) {
  db::Table& table = db_.table("rpc_outbox");
  const db::Row* row =
      table.find_first("seq", Value(static_cast<std::int64_t>(seq)));
  if (row != nullptr) table.erase(row->id);
}

std::vector<OutboxEntry> DataWarehouse::outbox_entries() const {
  const db::Table& table = db_.table("rpc_outbox");
  std::vector<OutboxEntry> entries;
  table.for_each([&](const db::Row& row) {
    OutboxEntry entry;
    entry.seq = static_cast<std::uint64_t>(row.cells[0].as_int());
    entry.service = row.cells[1].as_text();
    entry.payload = row.cells[2].as_text();
    entry.attempt = static_cast<int>(row.cells[3].as_int());
    entry.last_sent_at = row.cells[4].as_real();
    entries.push_back(std::move(entry));
  });
  std::sort(entries.begin(), entries.end(),
            [](const OutboxEntry& a, const OutboxEntry& b) {
              return a.seq < b.seq;
            });
  return entries;
}

// --- scheduler soft state ---------------------------------------------------

void DataWarehouse::set_scheduler_state(const std::string& key,
                                        const std::string& value) {
  db::Table& table = db_.table("scheduler_state");
  const db::Row* row = table.find_first("key", Value(key));
  if (row == nullptr) {
    table.insert({Value(key), Value(value)});
    return;
  }
  if (table.get(row->id, "value").as_text() == value) return;
  table.update(row->id, "value", Value(value));
}

std::string DataWarehouse::scheduler_state(const std::string& key) const {
  const db::Table& table = db_.table("scheduler_state");
  const db::Row* row = table.find_first("key", Value(key));
  if (row == nullptr) return "";
  return table.get(row->id, "value").as_text();
}

// --- quotas -----------------------------------------------------------------

db::RowId DataWarehouse::quota_row(UserId user, SiteId site,
                                   const std::string& resource) const {
  const db::Table& quotas = db_.table("quotas");
  for (const db::RowId id : quotas.find_by("user", Value(user.value()))) {
    const db::Row* row = quotas.find(id);
    if (static_cast<std::uint64_t>(row->cells[1].as_int()) == site.value() &&
        row->cells[2].as_text() == resource) {
      return id;
    }
  }
  return db::kInvalidRow;
}

void DataWarehouse::set_quota(UserId user, SiteId site,
                              const std::string& resource, double limit) {
  db::Table& quotas = db_.table("quotas");
  const db::RowId row = quota_row(user, site, resource);
  if (row == db::kInvalidRow) {
    quotas.insert({Value(user.value()), Value(site.value()), Value(resource),
                   Value(limit), Value(0.0)});
  } else {
    quotas.update(row, "limit", Value(limit));
  }
}

double DataWarehouse::quota_remaining(UserId user, SiteId site,
                                      const std::string& resource) const {
  const db::RowId row = quota_row(user, site, resource);
  if (row == db::kInvalidRow) {
    return std::numeric_limits<double>::infinity();
  }
  const db::Table& quotas = db_.table("quotas");
  return quotas.get(row, "limit").as_real() -
         quotas.get(row, "used").as_real();
}

void DataWarehouse::consume_quota(UserId user, SiteId site,
                                  const std::string& resource, double amount) {
  SPHINX_PRECONDITION(amount >= 0, "quota consumption must be non-negative");
  const db::RowId row = quota_row(user, site, resource);
  if (row == db::kInvalidRow) return;
  db::Table& quotas = db_.table("quotas");
  const double used = quotas.get(row, "used").as_real() + amount;
  quotas.update(row, "used", Value(used));
  SPHINX_POSTCONDITION(used >= 0, "quota usage went negative");
}

void DataWarehouse::refund_quota(UserId user, SiteId site,
                                 const std::string& resource, double amount) {
  SPHINX_PRECONDITION(amount >= 0, "quota refund must be non-negative");
  const db::RowId row = quota_row(user, site, resource);
  if (row == db::kInvalidRow) return;
  db::Table& quotas = db_.table("quotas");
  const double used = quotas.get(row, "used").as_real() - amount;
  quotas.update(row, "used", Value(used < 0 ? 0.0 : used));
}

// --- contracts --------------------------------------------------------------

void DataWarehouse::check_invariants() const {
#if SPHINX_CONTRACTS_ENABLED
  db_.check_invariants();

  // Jobs: state text parses, outstanding jobs are placed and attempted.
  std::unordered_map<std::uint64_t, std::int64_t> jobs_per_dag;
  db_.table("jobs").for_each([&](const db::Row& row) {
    JobRecord job;
    try {
      job = decode_job(row);
    } catch (const AssertionError& e) {
      SPHINX_INVARIANT(false, std::string("job row does not parse: ") +
                                  e.what());
    }
    ++jobs_per_dag[job.dag.value()];
    SPHINX_INVARIANT(job.attempt >= 0, "job attempt counter went negative");
    if (is_outstanding(job.state)) {
      SPHINX_INVARIANT(job.site.value() != 0,
                       "outstanding job has no site assigned");
      SPHINX_INVARIANT(job.attempt >= 1,
                       "outstanding job was never planned");
    }
  });

  // DAGs: state text parses, finish times are coherent, and the recorded
  // job total matches the job table (journal/table consistency: both are
  // rebuilt from the same journal on recovery).
  db_.table("dags").for_each([&](const db::Row& row) {
    DagRecord dag;
    try {
      dag = decode_dag(row);
    } catch (const AssertionError& e) {
      SPHINX_INVARIANT(false, std::string("dag row does not parse: ") +
                                  e.what());
    }
    SPHINX_INVARIANT(dag.total_jobs >= 0, "dag job total went negative");
    SPHINX_INVARIANT(jobs_per_dag[dag.id.value()] == dag.total_jobs,
                     "dag job total disagrees with the jobs table");
    if (dag.state == DagState::kFinished) {
      SPHINX_INVARIANT(dag.finished_at < kNever,
                       "finished dag has no finish time");
      SPHINX_INVARIANT(dag.finished_at >= dag.received_at,
                       "dag finished before it was received");
    }
  });

  // Site statistics: counters never regress below zero; an empty sample
  // set cannot carry an average.
  db_.table("site_stats").for_each([&](const db::Row& row) {
    const std::int64_t completed = row.cells[1].as_int();
    const std::int64_t cancelled = row.cells[2].as_int();
    const double avg = row.cells[3].as_real();
    const std::int64_t samples = row.cells[4].as_int();
    SPHINX_INVARIANT(completed >= 0 && cancelled >= 0 && samples >= 0,
                     "site statistics counter went negative");
    SPHINX_INVARIANT(avg >= 0 && !std::isnan(avg),
                     "site completion average must be non-negative");
    SPHINX_INVARIANT(samples > 0 || avg == 0,
                     "site carries an average with no samples");
  });

  // Quotas: limits and usage are non-negative.
  db_.table("quotas").for_each([&](const db::Row& row) {
    SPHINX_INVARIANT(row.cells[3].as_real() >= 0,
                     "quota limit went negative");
    SPHINX_INVARIANT(row.cells[4].as_real() >= 0,
                     "quota usage went negative");
  });

  // Speculation races: rows parse, attempts are consecutive, the two
  // sites differ, at most one race per job is open, and an open race's
  // job row still tracks the replica attempt.
  std::unordered_set<std::uint64_t> racing_jobs;
  db_.table("speculations").for_each([&](const db::Row& row) {
    SpeculationRecord rec;
    try {
      rec = decode_speculation(row);
    } catch (const AssertionError& e) {
      SPHINX_INVARIANT(false, std::string("speculation row does not parse: ") +
                                  e.what());
    }
    SPHINX_INVARIANT(rec.primary_attempt >= 1,
                     "race opened on a never-planned attempt");
    SPHINX_INVARIANT(rec.spec_attempt == rec.primary_attempt + 1,
                     "replica attempt must directly succeed the primary");
    SPHINX_INVARIANT(rec.primary_site != rec.spec_site,
                     "race must span two sites");
    if (rec.state != SpeculationState::kRacing) return;
    SPHINX_INVARIANT(racing_jobs.insert(rec.job.value()).second,
                     "job holds two open races");
    const std::optional<JobRecord> job_rec = job(rec.job);
    SPHINX_INVARIANT(job_rec.has_value(), "open race names a missing job");
    SPHINX_INVARIANT(is_outstanding(job_rec->state),
                     "open race on a job that is not outstanding");
    SPHINX_INVARIANT(
        job_rec->attempt == rec.spec_attempt && job_rec->site == rec.spec_site,
        "racing job row must track the replica attempt");
  });

  // Runtime sample rings: non-negative values, ring bound respected.
  {
    std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> ring_sizes;
    db_.table("runtime_samples").for_each([&](const db::Row& row) {
      SPHINX_INVARIANT(row.cells[2].as_real() >= 0,
                       "runtime sample went negative");
      ++ring_sizes[{row.cells[0].as_int(), row.cells[1].as_int()}];
    });
    for (const auto& [key, size] : ring_sizes) {
      SPHINX_INVARIANT(size <= kMaxRuntimeSamples,
                       "runtime sample ring exceeded its bound");
    }
  }

  // Derived work state mirrors the tables: the live counters must equal a
  // fresh scan, and every queued dirty row names a live, unfinished DAG.
  SPHINX_INVARIANT(outstanding_ == scan_outstanding_by_site(),
                   "live outstanding counters diverged from the jobs table");
  const db::Table& dags = db_.table("dags");
  const std::size_t dag_state_col = dags.schema().index_of("state");
  for (const db::RowId row_id : dirty_rows_) {
    const db::Row* row = dags.find(row_id);
    SPHINX_INVARIANT(row != nullptr, "dirty queue names a missing dag row");
    SPHINX_INVARIANT(
        dag_state_from(row->cells[dag_state_col].as_text()) !=
            DagState::kFinished,
        "dirty queue holds a finished dag");
  }
#endif
}

void DataWarehouse::check_dag_invariants(DagId id) const {
#if SPHINX_CONTRACTS_ENABLED
  const std::optional<DagRecord> rec = dag(id);
  SPHINX_INVARIANT(rec.has_value(), "check_dag_invariants: unknown dag");
  std::int64_t job_count = 0;
  for (const JobRecord& job : jobs_of_dag(id)) {
    ++job_count;
    SPHINX_INVARIANT(job.attempt >= 0, "job attempt counter went negative");
    if (is_outstanding(job.state)) {
      SPHINX_INVARIANT(job.site.value() != 0,
                       "outstanding job has no site assigned");
      SPHINX_INVARIANT(job.attempt >= 1,
                       "outstanding job was never planned");
    }
  }
  SPHINX_INVARIANT(rec->total_jobs >= 0, "dag job total went negative");
  SPHINX_INVARIANT(job_count == rec->total_jobs,
                   "dag job total disagrees with the jobs table");
  if (rec->state == DagState::kFinished) {
    SPHINX_INVARIANT(rec->finished_at < kNever,
                     "finished dag has no finish time");
    SPHINX_INVARIANT(rec->finished_at >= rec->received_at,
                     "dag finished before it was received");
  }
#else
  (void)id;
#endif
}

}  // namespace sphinx::core
