/// Ablation: how much long-tail pathology is needed before speculative
/// replication matters.
///
/// The straggler defense races a replica against any in-flight job whose
/// elapsed runtime exceeds a learned per-(site, class) percentile.  That
/// only pays when sites *have* a long tail: black holes (accept, never
/// complete) and degraded sites (complete, far slower).  This sweep runs
/// the chaos straggler probe -- the same seed + outage schedule executed
/// with speculation OFF then ON -- across grids of increasing tail
/// weight, and reports p99 DAG completion, tracker timeouts, and the
/// race outcomes.
///
/// Expectation: ~no effect on a clean grid (the detector never fires,
/// the OFF and ON arms are identical), modest gains under degraded-only
/// outages (slow is not dead: many degraded jobs finish before the
/// detector's floor), and the largest p99/timeout wins when black holes
/// dominate -- the tracker's timeout would otherwise be the only escape,
/// tens of minutes later.

#include <cstdio>

#include "bench_common.hpp"
#include "chaos/campaign.hpp"
#include "common/stats.hpp"

namespace {

struct ArmAggregate {
  std::vector<double> completions;
  std::size_t finished = 0;
  std::size_t total = 0;
  std::size_t timeouts = 0;
  std::size_t speculations = 0;
  std::size_t won_spec = 0;

  void add(const sphinx::chaos::StragglerArmResult& arm) {
    completions.insert(completions.end(), arm.dag_completions.begin(),
                       arm.dag_completions.end());
    finished += arm.dags_finished;
    total += arm.dags_total;
    timeouts += arm.timeouts;
    speculations += arm.speculations;
    won_spec += arm.won_spec;
  }
};

}  // namespace

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Ablation",
               "tail pathology vs value of speculation (straggler probe)");

  struct Case {
    const char* name;
    int outages;
    double weight_down;
    double weight_black_hole;
    double weight_degraded;
  };
  const Case cases[] = {
      {"clean grid", 0, 0.0, 0.0, 0.0},
      {"down only", 14, 1.0, 0.0, 0.0},
      {"degraded only", 14, 0.0, 0.0, 1.0},
      {"black holes only", 14, 0.0, 1.0, 0.0},
      {"mixed long tail", 14, 0.2, 1.0, 1.0},
  };
  constexpr int kRuns = 3;

  std::printf("\n%-18s %-22s %-18s %-14s %-12s\n", "grid",
              "p99 off->on (s)", "timeouts off->on", "speculations",
              "spec wins");
  for (const Case& c : cases) {
    ArmAggregate off;
    ArmAggregate on;
    for (int k = 0; k < kRuns; ++k) {
      chaos::StragglerProbeConfig config;
      config.seed = 977 + static_cast<std::uint64_t>(k);
      config.schedule = chaos::straggler_schedule_defaults();
      config.schedule.outages = c.outages;
      config.schedule.weight_down = c.weight_down;
      config.schedule.weight_black_hole = c.weight_black_hole;
      config.schedule.weight_degraded = c.weight_degraded;
      const chaos::StragglerProbeResult result =
          chaos::run_straggler_probe(config);
      off.add(result.off);
      on.add(result.on);
    }
    char tail[64];
    std::snprintf(tail, sizeof tail, "%.0f -> %.0f",
                  percentile(off.completions, 0.99),
                  percentile(on.completions, 0.99));
    char timeouts[32];
    std::snprintf(timeouts, sizeof timeouts, "%zu -> %zu", off.timeouts,
                  on.timeouts);
    std::printf("%-18s %-22s %-18s %-14zu %-12zu\n", c.name, tail, timeouts,
                on.speculations, on.won_spec);
  }
  std::printf(
      "\nexpectation: speculation is worth ~nothing on a clean grid and\n"
      "the most where black holes would otherwise ride out the tracker\n"
      "timeout; a degraded-only grid sits in between\n");
  return 0;
}
