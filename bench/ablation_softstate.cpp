/// Ablation: soft-state RLI propagation delay (the Giggle design the
/// paper's data layer is built on).
///
/// Child jobs become plannable only when their parents' outputs are
/// visible in the replica index; with soft-state propagation the index
/// lags the LRCs, so every DAG level pays the propagation delay on top
/// of real execution.  This sweep measures that cost end to end.

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "workflow/generator.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Ablation",
               "soft-state RLI propagation delay (30 dags x 10 jobs)");

  std::printf("\n%-18s %-16s %-14s\n", "propagation", "avg dag (s)",
              "dags finished");
  for (const double delay_s : {0.0, 30.0, 120.0, 300.0, 600.0}) {
    exp::ExperimentConfig config = paper_config(30);
    exp::Scenario scenario(config.scenario);
    if (delay_s > 0) {
      scenario.rls().enable_soft_state(scenario.engine(), delay_s);
    }
    exp::TenantOptions options;
    options.algorithm = core::Algorithm::kCompletionTime;
    exp::Tenant& tenant = scenario.add_tenant("ct", options);
    auto generator = scenario.make_generator("shared", config.workload);
    const auto dags = generator.generate_batch("ss", config.dag_count);
    scenario.start();
    for (std::size_t k = 0; k < dags.size(); ++k) {
      scenario.engine().schedule_at(
          10.0 + static_cast<double>(k) * config.submit_spacing, "submit",
          [&, k] { tenant.client->submit(dags[k]); });
    }
    scenario.run(config.horizon);
    std::printf("%-18s %-16.1f %zu/%zu\n",
                (format_double(delay_s, 0) + " s").c_str(),
                tenant.client->avg_dag_completion(),
                tenant.client->dags_finished(), dags.size());
  }
  std::printf("\nexpectation: DAG completion grows with the index lag "
              "(children wait for their parents' outputs to become "
              "visible)\n");
  return 0;
}
