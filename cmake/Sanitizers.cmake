# Sanitizer wiring for the whole repo.
#
# SPHINX_SANITIZE is a comma-separated subset of
#   address, undefined, leak, thread
# applied as -fsanitize compile AND link flags to every target (the
# static library, tests, benches, examples, tools).  The CMakePresets
# asan-ubsan / tsan presets set it; -fno-sanitize-recover=all turns every
# UBSan diagnostic into a hard failure so `ctest --preset asan-ubsan`
# cannot pass with outstanding reports.

set(SPHINX_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers to enable (address,undefined,leak,thread)")

if(SPHINX_SANITIZE)
  string(REPLACE "," ";" _sphinx_san_list "${SPHINX_SANITIZE}")
  foreach(_san IN LISTS _sphinx_san_list)
    if(NOT _san MATCHES "^(address|undefined|leak|thread)$")
      message(FATAL_ERROR
        "SPHINX_SANITIZE: unknown sanitizer '${_san}' "
        "(expected a comma-separated subset of address,undefined,leak,thread)")
    endif()
  endforeach()
  if("thread" IN_LIST _sphinx_san_list AND "address" IN_LIST _sphinx_san_list)
    message(FATAL_ERROR
      "SPHINX_SANITIZE: 'thread' and 'address' are mutually exclusive")
  endif()
  add_compile_options(
    -fsanitize=${SPHINX_SANITIZE}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  add_link_options(-fsanitize=${SPHINX_SANITIZE})
  message(STATUS "SPHINX: sanitizers enabled: ${SPHINX_SANITIZE}")
endif()
