// Tests for the XML layer and XML-RPC envelopes.

#include <gtest/gtest.h>

#include "rpc/xml.hpp"
#include "rpc/xmlrpc.hpp"

namespace sphinx::rpc {
namespace {

TEST(Xml, EscapeRoundTripsEntities) {
  const std::string raw = R"(a & b < c > d "e" 'f')";
  const std::string escaped = xml_escape(raw);
  EXPECT_EQ(escaped.find('<'), std::string::npos);
  EXPECT_NE(escaped.find("&amp;"), std::string::npos);
}

TEST(Xml, WriteSimpleElement) {
  XmlNode node("job", "payload");
  node.attributes["site"] = "ufloridapg";
  EXPECT_EQ(xml_write(node), "<job site=\"ufloridapg\">payload</job>");
}

TEST(Xml, WriteSelfClosing) {
  EXPECT_EQ(xml_write(XmlNode("empty")), "<empty/>");
}

TEST(Xml, ParseSimpleDocument) {
  const auto doc = xml_parse("<a x=\"1\"><b>hi</b><b>yo</b><c/></a>");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->name, "a");
  EXPECT_EQ(doc->attribute("x"), "1");
  ASSERT_EQ(doc->children.size(), 3u);
  EXPECT_EQ(doc->children_named("b").size(), 2u);
  ASSERT_NE(doc->child("b"), nullptr);
  EXPECT_EQ(doc->child("b")->text, "hi");
  EXPECT_EQ(doc->child("missing"), nullptr);
}

TEST(Xml, ParseSkipsDeclaration) {
  const auto doc = xml_parse("<?xml version=\"1.0\"?><root/>");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->name, "root");
}

TEST(Xml, ParseDecodesEntities) {
  const auto doc = xml_parse("<t a=\"x&amp;y\">1 &lt; 2</t>");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->attribute("a"), "x&y");
  EXPECT_EQ(doc->text, "1 < 2");
}

TEST(Xml, WriteParseRoundTrip) {
  XmlNode root("methodCall");
  root.add_child(XmlNode("methodName", "schedule<&>"));
  XmlNode& params = root.add_child(XmlNode("params"));
  params.attributes["count"] = "2";
  params.add_child(XmlNode("param", "a\"b"));
  params.add_child(XmlNode("param", "c'd"));

  const auto parsed = xml_parse(xml_write(root));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->child("methodName")->text, "schedule<&>");
  EXPECT_EQ(parsed->child("params")->attribute("count"), "2");
  EXPECT_EQ(parsed->child("params")->children[1].text, "c'd");
}

TEST(Xml, PrettyPrintedRoundTripDropsLayoutWhitespace) {
  XmlNode root("a");
  root.add_child(XmlNode("b", "x"));
  const auto parsed = xml_parse(xml_write(root, 2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->text.empty());
  EXPECT_EQ(parsed->child("b")->text, "x");
}

TEST(Xml, ParseRejectsMalformed) {
  EXPECT_FALSE(xml_parse("").has_value());
  EXPECT_FALSE(xml_parse("<a>").has_value());
  EXPECT_FALSE(xml_parse("<a></b>").has_value());
  EXPECT_FALSE(xml_parse("<a><b></a></b>").has_value());
  EXPECT_FALSE(xml_parse("<a x=1></a>").has_value());
  EXPECT_FALSE(xml_parse("<a>&bogus;</a>").has_value());
  EXPECT_FALSE(xml_parse("<a/><b/>").has_value());
  EXPECT_FALSE(xml_parse("<a>&amp</a>").has_value());
}

TEST(XrValue, TypedConstructionAndAccess) {
  EXPECT_EQ(XrValue(5).as_int(), 5);
  EXPECT_DOUBLE_EQ(XrValue(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(XrValue(4).as_double(), 4.0);  // int widens
  EXPECT_TRUE(XrValue(true).as_bool());
  EXPECT_EQ(XrValue("hi").as_string(), "hi");
  EXPECT_THROW((void)XrValue("hi").as_int(), AssertionError);
}

TEST(XrValue, StructAccess) {
  XrValue::Struct s;
  s.emplace("site", XrValue("acdc"));
  s.emplace("cpus", XrValue(72));
  const XrValue v(std::move(s));
  EXPECT_TRUE(v.has("site"));
  EXPECT_FALSE(v.has("nope"));
  EXPECT_EQ(v.at("cpus").as_int(), 72);
  EXPECT_THROW((void)v.at("nope"), AssertionError);
}

XrValue sample_value() {
  XrValue::Struct job;
  job.emplace("name", XrValue("cms-reco-042"));
  job.emplace("runtime", XrValue(61.25));
  job.emplace("retries", XrValue(3));
  job.emplace("held", XrValue(false));
  job.emplace("inputs",
              XrValue(XrValue::Array{XrValue("lfn://f1"), XrValue("lfn://f2")}));
  return XrValue(std::move(job));
}

TEST(XrValue, XmlRoundTripPreservesStructure) {
  const XrValue original = sample_value();
  const auto decoded = XrValue::from_xml(original.to_xml());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(XrValue, NestedArraysRoundTrip) {
  const XrValue v(XrValue::Array{
      XrValue(XrValue::Array{XrValue(1), XrValue(2)}),
      XrValue(XrValue::Array{}),
  });
  const auto decoded = XrValue::from_xml(v.to_xml());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
}

TEST(XrValue, BareTextValueIsString) {
  const auto doc = xml_parse("<value>plain</value>");
  ASSERT_TRUE(doc.has_value());
  const auto v = XrValue::from_xml(*doc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "plain");
}

TEST(XrValue, LegacyIntTagsAccepted) {
  for (const char* tag : {"i4", "int", "i8"}) {
    const auto doc =
        xml_parse("<value><" + std::string(tag) + ">7</" + tag + "></value>");
    ASSERT_TRUE(doc.has_value());
    const auto v = XrValue::from_xml(*doc);
    ASSERT_TRUE(v.has_value()) << tag;
    EXPECT_EQ(v->as_int(), 7);
  }
}

TEST(XrValue, RejectsBadPayloads) {
  const auto bad = [](const std::string& body) {
    const auto doc = xml_parse(body);
    if (!doc.has_value()) return true;
    return !XrValue::from_xml(*doc).has_value();
  };
  EXPECT_TRUE(bad("<value><i8>zzz</i8></value>"));
  EXPECT_TRUE(bad("<value><double>zzz</double></value>"));
  EXPECT_TRUE(bad("<value><boolean>7</boolean></value>"));
  EXPECT_TRUE(bad("<value><array/></value>"));
  EXPECT_TRUE(bad("<value><mystery>1</mystery></value>"));
  EXPECT_TRUE(bad("<notvalue>x</notvalue>"));
}

TEST(MethodCall, SerializeParseRoundTrip) {
  MethodCall call;
  call.method = "sphinx.schedule_dag";
  call.params = {XrValue("dag-xml"), sample_value(), XrValue(42)};
  const auto parsed = MethodCall::parse(call.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, call.method);
  ASSERT_EQ(parsed->params.size(), 3u);
  EXPECT_EQ(parsed->params[1], call.params[1]);
  EXPECT_EQ(parsed->params[2].as_int(), 42);
}

TEST(MethodCall, NoParamsOk) {
  MethodCall call;
  call.method = "ping";
  const auto parsed = MethodCall::parse(call.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->params.empty());
}

TEST(MethodCall, ParseRejectsMissingMethodName) {
  EXPECT_FALSE(MethodCall::parse("<methodCall><params/></methodCall>").has_value());
  EXPECT_FALSE(MethodCall::parse("<other/>").has_value());
}

TEST(MethodResponse, SuccessRoundTrip) {
  const auto r = MethodResponse::success(sample_value());
  const auto parsed = MethodResponse::parse(r.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->is_fault);
  EXPECT_EQ(parsed->value, r.value);
}

TEST(MethodResponse, FaultRoundTrip) {
  const auto r = MethodResponse::failure(3, "authorization denied");
  const auto parsed = MethodResponse::parse(r.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_fault);
  EXPECT_EQ(parsed->fault.code, 3);
  EXPECT_EQ(parsed->fault.message, "authorization denied");
}

TEST(MethodResponse, ParseRejectsEmptyResponse) {
  EXPECT_FALSE(MethodResponse::parse("<methodResponse/>").has_value());
}

}  // namespace
}  // namespace sphinx::rpc
