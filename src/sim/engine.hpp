#pragma once
/// \file engine.hpp
/// Discrete-event simulation kernel.
///
/// Everything dynamic in the reproduction -- batch queues draining, sites
/// failing, monitors polling, messages arriving -- is an event on this
/// engine.  The engine is single-threaded and deterministic: events at
/// equal timestamps fire in scheduling order (sequence-number tie-break),
/// so a given seed always produces the same run.

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

namespace sphinx::sim {

/// Opaque handle to a scheduled event; used to cancel it.
class EventHandle {
 public:
  constexpr EventHandle() noexcept = default;

  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0; }
  friend constexpr bool operator==(EventHandle, EventHandle) noexcept = default;

 private:
  friend class Engine;
  constexpr explicit EventHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

/// The event queue + clock.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time (seconds).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  /// `label` names the event for diagnostics.
  EventHandle schedule_at(SimTime t, std::string label, Callback cb);

  /// Schedules `cb` after `delay` seconds (clamped to >= 0).
  EventHandle schedule_in(Duration delay, std::string label, Callback cb);

  /// Cancels a pending event.  Cancelling an already-fired or invalid
  /// handle is a no-op (common when a job completes before its timeout).
  void cancel(EventHandle handle);

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventHandle handle) const;

  /// Fires the earliest pending event.  Returns false when the queue is
  /// empty (or only cancelled events remain).
  bool step();

  /// Runs until the queue drains, `limit` is reached, or stop() is called.
  /// Returns the number of events fired.
  std::size_t run_until(SimTime limit = kNever);

  /// Requests run_until() to return after the current event.
  void stop() noexcept { stop_requested_ = true; }

  /// Total events fired so far.
  [[nodiscard]] std::size_t events_fired() const noexcept { return fired_; }
  /// Events currently pending (including not-yet-collected cancelled ones).
  [[nodiscard]] std::size_t events_pending() const noexcept {
    return queue_.size() - cancelled_.size();
  }

  /// Label of the event currently being dispatched (empty outside dispatch).
  [[nodiscard]] const std::string& current_label() const noexcept {
    return current_label_;
  }

  /// Full structural sweep: clock monotonicity (no pending event is in
  /// the past), bookkeeping consistency (live ids mirror the queue, the
  /// cancelled set is a subset of live ids).  Throws ContractViolation on
  /// corruption; a no-op when contracts are compiled out.  Cheap per-event
  /// checks run inline in step()/schedule_at(); this sweep is for tests
  /// and debugging sessions.
  void check_invariants() const;

 private:
  friend struct EngineInspector;  // test-only fault injection
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    std::string label;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> live_ids_;  // ids currently in queue_
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::size_t fired_ = 0;
  bool stop_requested_ = false;
  std::string current_label_;
};

/// A periodic activity (monitor poll, control-process sweep, background
/// job arrivals).  Owns its pending event; stops cleanly on destruction.
class PeriodicProcess {
 public:
  using Body = std::function<void()>;

  /// \param jitter0 offset of the first firing after start().
  PeriodicProcess(Engine& engine, std::string label, Duration period, Body body,
                  Duration jitter0 = 0.0);
  ~PeriodicProcess();

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Begins firing; idempotent.
  void start();
  /// Begins firing with the first event at absolute time `t` (clamped to
  /// >= now); idempotent while running.  Lets a restarted process resume
  /// the exact firing phase of a predecessor (see next_fire_at()) instead
  /// of recomputing it -- recomputation drifts in floating point.
  void start_at(SimTime t);
  /// Stops firing; idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] Duration period() const noexcept { return period_; }
  /// Absolute time of the next pending firing (meaningful while running).
  [[nodiscard]] SimTime next_fire_at() const noexcept { return next_at_; }
  /// Changes the period; takes effect at the next firing.
  void set_period(Duration period) noexcept { period_ = period; }

 private:
  void fire();

  Engine& engine_;
  std::string label_;
  Duration period_;
  Body body_;
  Duration jitter0_;
  EventHandle next_;
  SimTime next_at_ = 0.0;
  bool running_ = false;
};

}  // namespace sphinx::sim
