#pragma once
/// \file heartbeat.hpp
/// The owner-side half of the lease protocol: periodic renewals.
///
/// Each scheduler instance runs one HeartbeatAgent per shard it owns.
/// The agent beats on a fixed period, sending `ctrl.renew` to the
/// coordinator over the ordinary at-least-once Clarens layer -- the same
/// wire, latency model and GSI authorization every other SPHINX call
/// uses.  Its endpoint lives under the "ctrl/" prefix, so the bus routes
/// its latency draws onto the dedicated control stream and the
/// differential oracle can strip its traffic wholesale (heartbeat volume
/// differs between a failover run and its baseline by design).
///
/// A beat is best-effort: max_attempts = 1, because the next beat
/// supersedes any retransmission the retry machinery could make.  When
/// the coordinator answers "fenced" the agent stops itself -- a fenced
/// owner lost the shard to adoption and must not keep acting on it.

#include <cstdint>
#include <memory>
#include <string>

#include "common/time.hpp"
#include "rpc/clarens.hpp"
#include "rpc/transport.hpp"
#include "sim/engine.hpp"

namespace sphinx::ctrl {

/// Heartbeat knobs.
struct HeartbeatConfig {
  std::string coordinator = "ctrl/coordinator";
  Duration period = 1.0;
  /// Offset of the first beat after start() (staggers agents so beats
  /// never share an engine timestamp with each other).
  Duration phase = 0.0;
};

class HeartbeatAgent {
 public:
  /// \param shard the shard whose lease this agent renews; \param owner
  /// the scheduler instance name the lease is bound to; \param epoch the
  /// epoch the lease was granted (or transferred) at.
  HeartbeatAgent(rpc::MessageBus& bus, std::string shard, std::string owner,
                 std::uint64_t epoch, HeartbeatConfig config, rpc::Proxy proxy);
  ~HeartbeatAgent();

  HeartbeatAgent(const HeartbeatAgent&) = delete;
  HeartbeatAgent& operator=(const HeartbeatAgent&) = delete;

  void start();
  /// Stops beating -- the crash harness calls this when it kills the
  /// owning scheduler, which is exactly what lets the lease expire.
  void stop();

  [[nodiscard]] const std::string& shard() const noexcept { return shard_; }
  [[nodiscard]] const std::string& owner() const noexcept { return owner_; }
  [[nodiscard]] bool running() const noexcept { return beat_->running(); }
  /// True once the coordinator rejected a renewal as stale; the agent has
  /// stopped itself and must not be restarted.
  [[nodiscard]] bool fenced() const noexcept { return fenced_; }
  [[nodiscard]] std::size_t renewals() const noexcept { return renewals_; }
  /// Beats that got no usable answer (timeout, unknown shard, wire error).
  [[nodiscard]] std::size_t missed() const noexcept { return missed_; }

 private:
  void beat();

  std::string shard_;
  std::string owner_;
  std::uint64_t epoch_;
  HeartbeatConfig config_;
  std::unique_ptr<rpc::ClarensClient> client_;
  std::unique_ptr<sim::PeriodicProcess> beat_;
  bool fenced_ = false;
  std::size_t renewals_ = 0;
  std::size_t missed_ = 0;
};

}  // namespace sphinx::ctrl
