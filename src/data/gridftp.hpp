#pragma once
/// \file gridftp.hpp
/// GridFTP-style wide-area transfer simulation.
///
/// Transfers share site uplink/downlink bandwidth using a fluid model:
/// every active transfer gets min(src_uplink / n_src, dst_downlink /
/// n_dst) bytes per second, recomputed whenever a transfer starts or
/// finishes.  Stage-in time is therefore load-dependent, which is what
/// makes the paper's jobs take "three or four minutes" instead of one.

#include <functional>
#include <map>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "data/lfn.hpp"
#include "sim/engine.hpp"

namespace sphinx::data {

/// Per-site network capacity in bytes/second.
struct LinkConfig {
  double uplink_bps = 10e6;    ///< 10 MB/s default
  double downlink_bps = 10e6;
};

/// Aggregate transfer counters.
struct TransferStats {
  std::size_t started = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  double bytes_moved = 0.0;
};

class TransferService {
 public:
  /// Callback receives the transfer id and the wall-clock duration the
  /// transfer actually took.
  using Callback = std::function<void(TransferId, Duration)>;

  explicit TransferService(sim::Engine& engine);

  /// Sets (or replaces) a site's link capacities.
  void set_link(SiteId site, LinkConfig link);
  [[nodiscard]] LinkConfig link(SiteId site) const;

  /// Starts a transfer of `bytes` from `src` to `dst`.  A transfer within
  /// one site completes immediately (local access).  The callback fires
  /// exactly once unless the transfer is cancelled.
  TransferId transfer(SiteId src, SiteId dst, double bytes, Callback done);

  /// Cancels an in-flight transfer; its callback never fires.
  void cancel(TransferId id);

  [[nodiscard]] std::size_t active() const noexcept { return active_.size(); }
  [[nodiscard]] const TransferStats& stats() const noexcept { return stats_; }

  /// Contention-free lower bound on the duration of a transfer, used by
  /// planners for estimation.
  [[nodiscard]] Duration estimate(SiteId src, SiteId dst, double bytes) const;

 private:
  struct Active {
    SiteId src;
    SiteId dst;
    double remaining = 0.0;
    double rate = 0.0;  ///< current bytes/sec
    SimTime started_at = 0.0;
    Callback done;
  };

  /// Applies elapsed progress, recomputes rates, reschedules completion.
  void rebalance();
  void advance_to_now();
  void schedule_next_completion();

  sim::Engine& engine_;
  std::unordered_map<SiteId, LinkConfig> links_;  // looked up, never iterated
  /// Ordered by id: iteration feeds stats accumulation, completion
  /// scheduling and the due_ list, all of which must replay identically
  /// under a fixed seed (rule ordered-escape).
  std::map<TransferId, Active> active_;
  IdGenerator<TransferId> ids_;
  SimTime last_update_ = 0.0;
  sim::EventHandle next_completion_;
  /// Transfers whose remaining/rate determined the pending completion
  /// event; force-completed when it fires (guards against floating-point
  /// residues that would otherwise reschedule with ~zero progress).
  std::vector<TransferId> due_;
  TransferStats stats_;
};

}  // namespace sphinx::data
