#pragma once
/// \file types.hpp
/// Shared vocabulary types for the grid fabric.

#include <functional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace sphinx::grid {

/// Lifecycle of a job as seen by a site's local batch system
/// (condor_q/PBS-style states).
enum class RemoteJobState {
  kQueued,     ///< accepted, waiting for a CPU ("idle" in condor_q)
  kStaging,    ///< CPU allocated, input files being transferred
  kRunning,    ///< computing
  kCompleted,  ///< finished successfully
  kHeld,       ///< stopped by the site (failure, policy); needs intervention
  kCancelled,  ///< removed on user request (condor_rm)
};

[[nodiscard]] const char* to_string(RemoteJobState state) noexcept;

/// True for states a job never leaves.
[[nodiscard]] constexpr bool is_terminal(RemoteJobState s) noexcept {
  return s == RemoteJobState::kCompleted || s == RemoteJobState::kHeld ||
         s == RemoteJobState::kCancelled;
}

/// A job as handed to a site by the submission layer.
struct RemoteJob {
  SubmissionId submission;   ///< assigned by the site on submit
  JobId job;                 ///< global (SPHINX) job id; may be invalid for
                             ///< background load
  UserId user;
  std::string vo;            ///< VO the submitter's proxy asserts
  Duration compute_time = 60.0;  ///< nominal seconds on a speed-1.0 CPU
  double priority = 0.0;     ///< local batch priority (higher runs first)
  /// Per-job stage-in action, installed by the submission layer: invoked
  /// when a CPU is allocated; compute starts when `done` is called.
  /// Takes precedence over the site-wide StageInHook.  Null = no staging.
  std::function<void(std::function<void()> done)> stage;
};

/// Status-change notification from a site to the submission layer.
struct JobEvent {
  SubmissionId submission;
  RemoteJobState state = RemoteJobState::kQueued;
  SimTime at = 0.0;
};

/// Callback the submitter registers to observe one submission.
using JobEventCallback = std::function<void(const JobEvent&)>;

/// Hook allowing the submission layer to stage input data when a CPU is
/// allocated.  The site calls it with a completion continuation; passing a
/// null hook means "no stage-in needed".
using StageInHook =
    std::function<void(const RemoteJob&, std::function<void()> done)>;

/// condor_q-style queue snapshot a site reports when queried.
struct QueueStatus {
  int cpus = 0;        ///< total CPUs at the site
  int queued = 0;      ///< jobs waiting for a CPU (all VOs)
  int running = 0;     ///< jobs staging or computing (all VOs)
  int free_cpus = 0;   ///< cpus - running
};

}  // namespace sphinx::grid
