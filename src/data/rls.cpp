#include "data/rls.hpp"

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace sphinx::data {

void LocalReplicaCatalog::add(const Lfn& lfn, double size_bytes) {
  SPHINX_ASSERT(size_bytes >= 0, "replica size must be non-negative");
  files_[lfn] = size_bytes;
}

void LocalReplicaCatalog::remove(const Lfn& lfn) { files_.erase(lfn); }

bool LocalReplicaCatalog::has(const Lfn& lfn) const noexcept {
  return files_.contains(lfn);
}

std::optional<double> LocalReplicaCatalog::size_of(
    const Lfn& lfn) const noexcept {
  const auto it = files_.find(lfn);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

LocalReplicaCatalog& ReplicaLocationService::lrc(SiteId site) {
  return lrcs_.try_emplace(site, site).first->second;
}

void ReplicaLocationService::enable_soft_state(sim::Engine& engine,
                                               Duration propagation_delay) {
  SPHINX_ASSERT(propagation_delay >= 0, "propagation delay must be >= 0");
  engine_ = &engine;
  propagation_delay_ = propagation_delay;
}

void ReplicaLocationService::register_replica(const Lfn& lfn, SiteId site,
                                              double size_bytes) {
  SPHINX_ASSERT(site.valid(), "replica needs a valid site");
  lrc(site).add(lfn, size_bytes);
  if (engine_ != nullptr && propagation_delay_ > 0) {
    ++pending_;
    engine_->schedule_in(propagation_delay_, "rls:propagate",
                         [this, lfn, site] {
                           --pending_;
                           // The LRC may have dropped the file meanwhile;
                           // the index only advertises what still exists.
                           if (lrc(site).has(lfn)) index_[lfn].insert(site);
                         });
    return;
  }
  index_[lfn].insert(site);
}

void ReplicaLocationService::unregister_replica(const Lfn& lfn, SiteId site) {
  const auto lrc_it = lrcs_.find(site);
  if (lrc_it != lrcs_.end()) lrc_it->second.remove(lfn);
  const auto idx = index_.find(lfn);
  if (idx != index_.end()) {
    idx->second.erase(site);
    if (idx->second.empty()) index_.erase(idx);
  }
}

bool ReplicaLocationService::exists(const Lfn& lfn) const noexcept {
  ++queries_;
  return index_.contains(lfn);
}

std::vector<Replica> ReplicaLocationService::locate_uncounted(
    const Lfn& lfn) const {
  std::vector<Replica> out;
  const auto idx = index_.find(lfn);
  if (idx == index_.end()) return out;
  for (const SiteId site : idx->second) {
    const auto lrc_it = lrcs_.find(site);
    if (lrc_it == lrcs_.end()) continue;
    const auto size = lrc_it->second.size_of(lfn);
    if (size.has_value()) out.push_back(Replica{lfn, site, *size});
  }
  return out;
}

std::vector<Replica> ReplicaLocationService::locate(const Lfn& lfn) const {
  ++queries_;
  return locate_uncounted(lfn);
}

std::vector<std::vector<Replica>> ReplicaLocationService::locate_bulk(
    const std::vector<Lfn>& lfns) const {
  ++queries_;  // a clubbed call is one query no matter how many names
  std::vector<std::vector<Replica>> out;
  out.reserve(lfns.size());
  for (const Lfn& lfn : lfns) out.push_back(locate_uncounted(lfn));
  return out;
}

}  // namespace sphinx::data
