/// Figure 8: "the number of times jobs were rescheduled in each of the
/// scheduling strategies", 120 DAGs x 10 jobs.
///
/// Paper values: completion-time 125, queue-length 154, round-robin and
/// num-cpus somewhat higher, and num-cpus *without feedback* 2258 -- an
/// order of magnitude above everything else ("without any feedback
/// information, the number of resubmissions is very high").  A
/// resubmission happens whenever the tracker cancels a timed-out job or
/// observes a held/failed one and the server replans it.

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Figure 8",
               "reschedules per strategy (120 dags x 10 jobs/dag)");

  auto specs = exp::standard_panel();
  exp::TenantOptions nofb;
  nofb.algorithm = core::Algorithm::kNumCpus;
  nofb.use_feedback = false;
  specs.push_back({"num-cpus w/o feedback", nofb});

  exp::Experiment experiment(paper_config(120));
  const auto results = experiment.run(specs);

  // Headline numbers come from the flight recorder's per-server replan
  // counters (one increment per attempt > 1 plan in the planner sweep)
  // rather than the tenants' ad-hoc counters.
  const auto& recorder = experiment.recorder();
  const auto reschedules = [&](const std::string& label) -> double {
    return static_cast<double>(
        recorder.counter("server.replans", "sphinx-server/" + label));
  };

  std::printf("\nJob reschedules (timeouts + held/failed resubmissions):\n");
  double max_value = 1.0;
  for (const auto& r : results) {
    max_value = std::max(max_value, reschedules(r.label));
  }
  for (const auto& r : results) {
    std::printf("%s\n",
                bar_line(r.label, reschedules(r.label), max_value, 40,
                         "reschedules")
                    .c_str());
  }
  std::printf("\nRun summary:\n%s\n", exp::render_summary(results).c_str());

  const double best = reschedules(results.front().label);   // completion-time
  const double worst = reschedules(results.back().label);   // no feedback
  if (best > 0.0) {
    std::printf("no-feedback / completion-time reschedule ratio: %.1fx "
                "(paper: 2258 / 125 = 18x)\n",
                worst / best);
  }
  return 0;
}
