file(REMOVE_RECURSE
  "CMakeFiles/sweep_seeds.dir/sweep_seeds.cpp.o"
  "CMakeFiles/sweep_seeds.dir/sweep_seeds.cpp.o.d"
  "sweep_seeds"
  "sweep_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
