file(REMOVE_RECURSE
  "CMakeFiles/fig8_timeouts.dir/fig8_timeouts.cpp.o"
  "CMakeFiles/fig8_timeouts.dir/fig8_timeouts.cpp.o.d"
  "fig8_timeouts"
  "fig8_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
