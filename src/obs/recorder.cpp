#include "obs/recorder.hpp"

#include "monitor/gma.hpp"

namespace sphinx::obs {

void Recorder::event(TraceKind kind, std::string source, std::string subject,
                     std::string detail, double value) {
  TraceEvent e;
  e.at = engine_.now();
  e.kind = kind;
  e.source = std::move(source);
  e.subject = std::move(subject);
  e.detail = std::move(detail);
  e.value = value;
  trace_.record(std::move(e));
}

void Recorder::count(const std::string& source, const std::string& name,
                     std::uint64_t delta) {
  metrics_.add(qualified_name(name, source), delta);
}

void Recorder::observe(const std::string& source, const std::string& name,
                       double value) {
  metrics_.observe(qualified_name(name, source), value);
}

std::uint64_t Recorder::counter(const std::string& name,
                                const std::string& source) const {
  return metrics_.counter(qualified_name(name, source));
}

const MetricSet::Histogram* Recorder::histogram(
    const std::string& name, const std::string& source) const {
  return metrics_.histogram(qualified_name(name, source));
}

void Recorder::bridge(monitor::MetricRegistry& registry, std::string source) {
  // The wildcard subscription sees every producer that publishes into the
  // registry, so monitoring observations land on the same timeline as
  // scheduler decisions.  Publishing is synchronous and in event order,
  // so the mirrored events inherit the run's determinism.
  registry.subscribe(
      "*", [this, source = std::move(source)](const monitor::Metric& m) {
        event(TraceKind::kMonitorSample, source,
              m.site.valid() ? "site:" + std::to_string(m.site.value())
                             : std::string{},
              m.name, m.value);
        observe(source, m.name, m.value);
      });
}

}  // namespace sphinx::obs
