#pragma once
/// \file rng.hpp
/// Deterministic random number generation.
///
/// Every run of the simulator is reproducible from a single master seed.
/// Subsystems never share a generator; instead each obtains a child stream
/// derived from the master seed and a stable string label (splitmix-style
/// mixing of the label hash).  This keeps results stable when an unrelated
/// subsystem adds or removes draws.

#include <cstdint>
#include <random>
#include <string_view>

namespace sphinx {

/// A seeded random stream.  Thin wrapper over mt19937_64 with the
/// distributions the simulator actually needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() { return unit_(engine_); }
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  /// Normal with mean/stddev, truncated below at `floor`.
  [[nodiscard]] double normal(double mean, double stddev, double floor = 0.0) {
    const double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return v < floor ? floor : v;
  }
  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }
  /// Log-normal parameterized by the mean/sigma of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Access to the raw engine for std distributions not wrapped above.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Derives independent child seeds from a master seed and a label, so each
/// subsystem gets its own stream (see file comment).
class SeedTree {
 public:
  explicit SeedTree(std::uint64_t master) noexcept : master_(master) {}

  /// Deterministic child seed for `label`.
  [[nodiscard]] std::uint64_t seed_for(std::string_view label) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the label
    for (const char c : label) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ull;
    }
    return mix(master_ ^ h);
  }

  /// Convenience: a ready-made Rng for `label`.
  [[nodiscard]] Rng stream(std::string_view label) const noexcept {
    return Rng(seed_for(label));
  }

  [[nodiscard]] std::uint64_t master() const noexcept { return master_; }

 private:
  // splitmix64 finalizer: decorrelates structurally similar inputs.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t master_;
};

}  // namespace sphinx
