#pragma once
/// \file straggler.hpp
/// Straggler detector: learns per-(site, job-class) runtime percentiles
/// and flags in-flight jobs whose elapsed time exceeds a configurable
/// multiple of the learned percentile.
///
/// The detector is the trigger half of the straggler defense: a flagged
/// job gets a speculative replica planned onto a second site and the two
/// attempts race, first completion wins (see Planner::plan_speculative
/// and the arbitration rules in MessageHandler).  Everything the
/// detector reads is journaled warehouse state -- the runtime-sample
/// rings fed by completion reports -- plus the monitoring service's
/// published timestamps, so its verdicts replay identically on a
/// recovered server.  It holds no state of its own and draws no random
/// numbers.

#include <optional>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "core/config.hpp"
#include "core/warehouse.hpp"
#include "monitor/service.hpp"

namespace sphinx::core {

/// Outcome of classifying one in-flight job.
enum class StragglerVerdict {
  kHealthy,       ///< within the learned threshold
  kStraggler,     ///< elapsed exceeded multiplier x percentile
  kTooYoung,      ///< below the min-elapsed floor
  kNoData,        ///< too few samples even with the all-site fallback
  kStaleMonitor,  ///< monitoring data too old to judge the site
};

[[nodiscard]] const char* to_string(StragglerVerdict verdict) noexcept;

/// log2 bucket of a job's expected compute time.  Jobs within one bucket
/// have runtimes within a factor of two of each other, so one percentile
/// distribution per (site, class) stays meaningful across heterogeneous
/// workloads without per-job-name bookkeeping.
[[nodiscard]] int job_class_of(Duration compute_time) noexcept;

class StragglerDetector {
 public:
  StragglerDetector(const DataWarehouse& warehouse,
                    const monitor::MonitoringService* monitoring,
                    const ServerConfig& config);

  /// Classifies one in-flight (kSubmitted/kRunning) job at `now`.
  /// kStaleMonitor takes precedence over the percentile test: a dark
  /// site's jobs all look like stragglers, and that failure mode belongs
  /// to the tracker timeout, not to replication.
  [[nodiscard]] StragglerVerdict classify(const JobRecord& job,
                                          SimTime now) const;

  /// The elapsed-time threshold classify() applies for (site, class):
  /// max(multiplier x percentile, min_elapsed).  nullopt when fewer than
  /// min_samples exist even after the all-site fallback.  Exposed for
  /// tests and diagnostics.
  [[nodiscard]] std::optional<Duration> threshold(SiteId site,
                                                  int job_class) const;

 private:
  const DataWarehouse& warehouse_;
  const monitor::MonitoringService* monitoring_;  ///< may be null
  const ServerConfig& config_;
};

}  // namespace sphinx::core
