#pragma once
/// \file cache.hpp
/// Fixture: a derived member annotated in the header; the stray
/// mutation lives in cache.cpp (cross-file enforcement).

#include <set>

namespace fixture {

class Cache {
 public:
  void rebuild();
  void poke();

 private:
  std::set<int> dirty_;  // sphinx-lint: derived(rebuild)
};

}  // namespace fixture
