#include "db/encoding.hpp"

#include <sstream>

namespace sphinx::db {

std::string escape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::size_t escaped_size(const std::string& s) noexcept {
  std::size_t n = s.size();
  for (const char c : s) {
    if (c == '\\' || c == '\t' || c == '\n') ++n;
  }
  return n;
}

Expected<std::string> unescape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      return make_error("journal_parse", "dangling escape");
    }
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default: return make_error("journal_parse", "unknown escape");
    }
  }
  return out;
}

std::string encode_value(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return "n:";
    case ValueType::kInt: return "i:" + std::to_string(v.as_int());
    case ValueType::kReal: {
      std::ostringstream oss;
      oss.precision(17);
      oss << v.as_real();
      return "r:" + oss.str();
    }
    case ValueType::kText: return "s:" + escape_field(v.as_text());
    case ValueType::kBool: return std::string("b:") + (v.as_bool() ? "1" : "0");
  }
  return "n:";
}

Expected<Value> decode_value(const std::string& s) {
  if (s.size() < 2 || s[1] != ':') {
    return make_error("journal_parse", "bad value encoding: " + s);
  }
  const std::string payload = s.substr(2);
  switch (s[0]) {
    case 'n': return Value();
    case 'i': {
      try {
        return Value(static_cast<std::int64_t>(std::stoll(payload)));
      } catch (const std::exception&) {
        return make_error("journal_parse", "bad int: " + payload);
      }
    }
    case 'r': {
      try {
        return Value(std::stod(payload));
      } catch (const std::exception&) {
        return make_error("journal_parse", "bad real: " + payload);
      }
    }
    case 's': {
      auto text = unescape_field(payload);
      if (!text) return Unexpected<Error>{text.error()};
      return Value(std::move(*text));
    }
    case 'b': return Value(payload == "1");
    default: return make_error("journal_parse", "unknown value tag");
  }
}

std::string encode_column(const Column& column) {
  // A trailing '!' marks an indexed column, so recovery rebuilds the
  // same hash indexes the original schema declared.
  return escape_field(column.name) + "=" + to_string(column.type) +
         (column.indexed ? "!" : "");
}

Expected<Column> decode_column(const std::string& spec) {
  const auto eq = spec.rfind('=');
  if (eq == std::string::npos) {
    return make_error("journal_parse", "bad column spec: " + spec);
  }
  auto name = unescape_field(spec.substr(0, eq));
  if (!name) return Unexpected<Error>{name.error()};
  std::string type_text = spec.substr(eq + 1);
  const bool is_indexed = !type_text.empty() && type_text.back() == '!';
  if (is_indexed) type_text.pop_back();
  auto type = decode_type(type_text);
  if (!type) return Unexpected<Error>{type.error()};
  return Column{std::move(*name), *type, is_indexed};
}

Expected<ValueType> decode_type(const std::string& s) {
  if (s == "null") return ValueType::kNull;
  if (s == "int") return ValueType::kInt;
  if (s == "real") return ValueType::kReal;
  if (s == "text") return ValueType::kText;
  if (s == "bool") return ValueType::kBool;
  return make_error("journal_parse", "unknown column type: " + s);
}

}  // namespace sphinx::db
