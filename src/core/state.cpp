#include "core/state.hpp"

#include "common/error.hpp"

namespace sphinx::core {

const char* to_string(DagState state) noexcept {
  switch (state) {
    case DagState::kReceived: return "received";
    case DagState::kReduced: return "reduced";
    case DagState::kPlanning: return "planning";
    case DagState::kFinished: return "finished";
  }
  return "?";
}

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kUnplanned: return "unplanned";
    case JobState::kPlanned: return "planned";
    case JobState::kSubmitted: return "submitted";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kHeld: return "held";
  }
  return "?";
}

DagState dag_state_from(std::string_view text) {
  if (text == "received") return DagState::kReceived;
  if (text == "reduced") return DagState::kReduced;
  if (text == "planning") return DagState::kPlanning;
  if (text == "finished") return DagState::kFinished;
  throw AssertionError("unknown dag state: " + std::string(text));
}

JobState job_state_from(std::string_view text) {
  if (text == "unplanned") return JobState::kUnplanned;
  if (text == "planned") return JobState::kPlanned;
  if (text == "submitted") return JobState::kSubmitted;
  if (text == "running") return JobState::kRunning;
  if (text == "completed") return JobState::kCompleted;
  if (text == "cancelled") return JobState::kCancelled;
  if (text == "held") return JobState::kHeld;
  throw AssertionError("unknown job state: " + std::string(text));
}

bool is_legal_transition(JobState from, JobState to) noexcept {
  if (from == to) return true;
  switch (from) {
    case JobState::kUnplanned:
      return to == JobState::kPlanned || to == JobState::kCompleted;
    case JobState::kPlanned:
      return to == JobState::kUnplanned || to == JobState::kSubmitted ||
             to == JobState::kRunning || to == JobState::kCompleted ||
             to == JobState::kCancelled || to == JobState::kHeld;
    case JobState::kSubmitted:
      return to == JobState::kRunning || to == JobState::kCompleted ||
             to == JobState::kCancelled || to == JobState::kHeld;
    case JobState::kRunning:
      return to == JobState::kCompleted || to == JobState::kCancelled ||
             to == JobState::kHeld;
    case JobState::kCancelled:
    case JobState::kHeld:
      return to == JobState::kUnplanned;
    case JobState::kCompleted:
      return false;  // terminal
  }
  return false;
}

const char* to_string(SpeculationState state) noexcept {
  switch (state) {
    case SpeculationState::kRacing: return "racing";
    case SpeculationState::kPrimaryWon: return "primary_won";
    case SpeculationState::kSpecWon: return "spec_won";
    case SpeculationState::kPrimaryDead: return "primary_dead";
    case SpeculationState::kSpecDead: return "spec_dead";
  }
  return "?";
}

SpeculationState speculation_state_from(std::string_view text) {
  if (text == "racing") return SpeculationState::kRacing;
  if (text == "primary_won") return SpeculationState::kPrimaryWon;
  if (text == "spec_won") return SpeculationState::kSpecWon;
  if (text == "primary_dead") return SpeculationState::kPrimaryDead;
  if (text == "spec_dead") return SpeculationState::kSpecDead;
  throw AssertionError("unknown speculation state: " + std::string(text));
}

const char* to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kRoundRobin: return "round-robin";
    case Algorithm::kNumCpus: return "num-cpus";
    case Algorithm::kQueueLength: return "queue-length";
    case Algorithm::kCompletionTime: return "completion-time";
  }
  return "?";
}

}  // namespace sphinx::core
