#include "ctrl/shard.hpp"

namespace sphinx::ctrl {

std::string shard_name(std::size_t index) {
  return "shard:" + std::to_string(index);
}

std::string scheduler_name(std::size_t index) {
  return "scheduler#" + std::to_string(index);
}

}  // namespace sphinx::ctrl
