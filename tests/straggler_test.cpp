// Straggler-defense tests: the detector's percentile learning and
// verdicts, the warehouse's race bookkeeping (burnt attempts, counter
// transfer), end-to-end first-completion-wins races under a lossy wire
// (completion/cancel cross-delivery, duplication, reorder), the
// monitor-staleness guard, the A/B tail-latency gate, and the mid-race
// crash-point sweep proving journal recovery is byte-invisible while
// races are open.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/schedule.hpp"
#include "common/stats.hpp"
#include "core/straggler.hpp"
#include "core/warehouse.hpp"
#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

namespace sphinx {
namespace {

// --- detector: job classes --------------------------------------------------

TEST(StragglerDetector, JobClassBucketsByLog2) {
  // Bucket k holds compute times in (2^(k-1), 2^k] seconds.
  EXPECT_EQ(core::job_class_of(0.0), 0);
  EXPECT_EQ(core::job_class_of(1.0), 0);
  EXPECT_EQ(core::job_class_of(1.5), 1);
  EXPECT_EQ(core::job_class_of(2.0), 1);
  EXPECT_EQ(core::job_class_of(2.5), 2);
  EXPECT_EQ(core::job_class_of(60.0), 6);   // (32, 64]
  EXPECT_EQ(core::job_class_of(64.0), 6);
  EXPECT_EQ(core::job_class_of(65.0), 7);
  EXPECT_EQ(core::job_class_of(1e300), 62);  // capped
  // Monotone in compute time.
  EXPECT_LE(core::job_class_of(100.0), core::job_class_of(1000.0));
}

// --- detector: thresholds and verdicts --------------------------------------

core::ServerConfig detector_config() {
  core::ServerConfig config;
  config.speculate = true;
  config.speculation_percentile = 0.95;
  config.speculation_multiplier = 2.0;
  config.speculation_min_elapsed = minutes(5);
  config.speculation_min_samples = 3;
  return config;
}

core::JobRecord running_job(SiteId site, Duration compute_time,
                            SimTime planned_at) {
  core::JobRecord job;
  job.id = JobId(1);
  job.dag = DagId(1);
  job.state = core::JobState::kRunning;
  job.site = site;
  job.compute_time = compute_time;
  job.attempt = 1;
  job.planned_at = planned_at;
  return job;
}

TEST(StragglerDetector, ThresholdNeedsMinSamples) {
  core::DataWarehouse warehouse;
  const core::ServerConfig config = detector_config();
  core::StragglerDetector detector(warehouse, nullptr, config);
  const int job_class = core::job_class_of(60.0);

  EXPECT_FALSE(detector.threshold(SiteId(1), job_class).has_value());
  warehouse.record_runtime_sample(SiteId(1), job_class, 100.0);
  warehouse.record_runtime_sample(SiteId(1), job_class, 100.0);
  EXPECT_FALSE(detector.threshold(SiteId(1), job_class).has_value());
  warehouse.record_runtime_sample(SiteId(1), job_class, 100.0);
  const auto limit = detector.threshold(SiteId(1), job_class);
  ASSERT_TRUE(limit.has_value());
  // 2 x p95(100,100,100) = 200 is below the 5-minute floor.
  EXPECT_DOUBLE_EQ(*limit, minutes(5));
}

TEST(StragglerDetector, ThresholdScalesWithPercentile) {
  core::DataWarehouse warehouse;
  const core::ServerConfig config = detector_config();
  core::StragglerDetector detector(warehouse, nullptr, config);
  const int job_class = core::job_class_of(60.0);
  for (int i = 0; i < 8; ++i) {
    warehouse.record_runtime_sample(SiteId(1), job_class, 400.0);
  }
  const auto limit = detector.threshold(SiteId(1), job_class);
  ASSERT_TRUE(limit.has_value());
  EXPECT_DOUBLE_EQ(*limit, 800.0);  // 2 x p95 = 2 x 400
}

TEST(StragglerDetector, ColdSiteFallsBackToAllSiteSamples) {
  core::DataWarehouse warehouse;
  const core::ServerConfig config = detector_config();
  core::StragglerDetector detector(warehouse, nullptr, config);
  const int job_class = core::job_class_of(60.0);
  for (int i = 0; i < 5; ++i) {
    warehouse.record_runtime_sample(SiteId(1), job_class, 400.0);
  }
  // Site 2 never completed anything (a black hole's signature), but the
  // class-wide samples still provide a baseline to judge it against.
  const auto limit = detector.threshold(SiteId(2), job_class);
  ASSERT_TRUE(limit.has_value());
  EXPECT_DOUBLE_EQ(*limit, 800.0);
}

TEST(StragglerDetector, SampleRingEvictsOldest) {
  core::DataWarehouse warehouse;
  const int job_class = 6;
  for (int i = 0; i < 40; ++i) {
    warehouse.record_runtime_sample(SiteId(1), job_class,
                                    static_cast<double>(i));
  }
  const std::vector<double> ring =
      warehouse.runtime_samples(SiteId(1), job_class);
  ASSERT_EQ(ring.size(), 32u);
  EXPECT_DOUBLE_EQ(ring.front(), 8.0);  // 0..7 evicted
  EXPECT_DOUBLE_EQ(ring.back(), 39.0);
}

TEST(StragglerDetector, Verdicts) {
  core::DataWarehouse warehouse;
  const core::ServerConfig config = detector_config();
  core::StragglerDetector detector(warehouse, nullptr, config);
  const int job_class = core::job_class_of(60.0);

  // No samples anywhere: kNoData once past the min-elapsed floor.
  core::JobRecord job = running_job(SiteId(2), 60.0, 0.0);
  EXPECT_EQ(detector.classify(job, minutes(10)),
            core::StragglerVerdict::kNoData);

  for (int i = 0; i < 8; ++i) {
    warehouse.record_runtime_sample(SiteId(1), job_class, 400.0);
  }
  // Below the floor: too young regardless of samples.
  EXPECT_EQ(detector.classify(job, minutes(2)),
            core::StragglerVerdict::kTooYoung);
  // Never planned: too young.
  core::JobRecord unplanned = running_job(SiteId(2), 60.0, kNever);
  EXPECT_EQ(detector.classify(unplanned, minutes(30)),
            core::StragglerVerdict::kTooYoung);
  // Past the floor but inside 2 x p95: healthy.
  EXPECT_EQ(detector.classify(job, 700.0), core::StragglerVerdict::kHealthy);
  // Past the threshold: straggler.
  EXPECT_EQ(detector.classify(job, 900.0),
            core::StragglerVerdict::kStraggler);
}

TEST(StragglerDetector, StaleMonitoringDeclinesClassification) {
  // A detector wired to a monitoring service that has never published
  // (age = kNever > stale_after) must refuse to judge the site: a dark
  // grid makes every job look like a straggler, and that failure mode
  // belongs to the tracker timeout, not to replication.
  exp::ScenarioConfig scenario_config;
  scenario_config.seed = 5;
  scenario_config.site_failures = false;
  scenario_config.background_load = false;
  exp::Scenario scenario(scenario_config);  // not started: no polls ever

  core::DataWarehouse warehouse;
  const core::ServerConfig config = detector_config();
  core::StragglerDetector detector(warehouse, &scenario.monitoring(), config);
  const int job_class = core::job_class_of(60.0);
  for (int i = 0; i < 8; ++i) {
    warehouse.record_runtime_sample(SiteId(1), job_class, 400.0);
  }
  const core::JobRecord job = running_job(SiteId(1), 60.0, 0.0);
  EXPECT_EQ(detector.classify(job, 900.0),
            core::StragglerVerdict::kStaleMonitor);
}

// --- warehouse: race bookkeeping --------------------------------------------

workflow::Dag one_job_dag() {
  workflow::Dag dag(DagId(1), "d");
  workflow::JobSpec job;
  job.id = JobId(1);
  job.name = "j";
  job.compute_time = 60.0;
  job.output = "lfn://out";
  job.output_bytes = 1e6;
  dag.add_job(job);
  return dag;
}

TEST(SpeculationWarehouse, OpenRaceRetargetsJobRowAtReplica) {
  core::DataWarehouse warehouse;
  warehouse.insert_dag(one_job_dag(), "client", UserId(1), 0.0);
  warehouse.set_job_planned(JobId(1), SiteId(1), 10.0);
  warehouse.set_job_state(JobId(1), core::JobState::kSubmitted);
  warehouse.set_job_state(JobId(1), core::JobState::kRunning);

  warehouse.speculate_job(JobId(1), SiteId(2), 500.0);
  const auto job = warehouse.job(JobId(1));
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->site, SiteId(2));
  EXPECT_EQ(job->attempt, 2);
  EXPECT_EQ(job->state, core::JobState::kPlanned);
  EXPECT_DOUBLE_EQ(job->planned_at, 500.0);

  const auto race = warehouse.active_speculation(JobId(1));
  ASSERT_TRUE(race.has_value());
  EXPECT_EQ(race->primary_site, SiteId(1));
  EXPECT_EQ(race->primary_attempt, 1);
  EXPECT_EQ(race->spec_site, SiteId(2));
  EXPECT_EQ(race->spec_attempt, 2);
  EXPECT_EQ(race->state, core::SpeculationState::kRacing);
  EXPECT_DOUBLE_EQ(race->primary_planned_at, 10.0);

  // Both attempts are outstanding: the racing row carries the primary's
  // unit, the job row the replica's.
  EXPECT_EQ(warehouse.outstanding_on_site(SiteId(1)), 1);
  EXPECT_EQ(warehouse.outstanding_on_site(SiteId(2)), 1);
  EXPECT_EQ(warehouse.outstanding_by_site(),
            warehouse.scan_outstanding_by_site());
  EXPECT_NO_THROW(warehouse.check_invariants());
  EXPECT_EQ(warehouse.racing_speculations().size(), 1u);
}

TEST(SpeculationWarehouse, SpecDeadKeepsBurntAttempt) {
  core::DataWarehouse warehouse;
  warehouse.insert_dag(one_job_dag(), "client", UserId(1), 0.0);
  warehouse.set_job_planned(JobId(1), SiteId(1), 10.0);
  warehouse.set_job_state(JobId(1), core::JobState::kSubmitted);
  warehouse.speculate_job(JobId(1), SiteId(2), 500.0);

  warehouse.resolve_speculation(JobId(1), core::SpeculationState::kSpecDead);
  const auto job = warehouse.job(JobId(1));
  ASSERT_TRUE(job.has_value());
  // Back on the primary site but the replica's attempt number stays
  // burnt: reusing it would collide with the client's (job, attempt)
  // duplicate guard.
  EXPECT_EQ(job->site, SiteId(1));
  EXPECT_EQ(job->attempt, 2);
  EXPECT_EQ(warehouse.outstanding_on_site(SiteId(1)), 1);
  EXPECT_EQ(warehouse.outstanding_on_site(SiteId(2)), 0);
  EXPECT_FALSE(warehouse.active_speculation(JobId(1)).has_value());
  const auto last = warehouse.latest_speculation(JobId(1));
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->state, core::SpeculationState::kSpecDead);

  // A later replan must mint attempt 3, never reuse 2.
  warehouse.set_job_state(JobId(1), core::JobState::kCancelled);
  warehouse.set_job_state(JobId(1), core::JobState::kUnplanned);
  warehouse.set_job_planned(JobId(1), SiteId(3), 900.0);
  EXPECT_EQ(warehouse.job(JobId(1))->attempt, 3);
  EXPECT_NO_THROW(warehouse.check_invariants());
}

TEST(SpeculationWarehouse, WinRetiresLoserUnit) {
  core::DataWarehouse warehouse;
  warehouse.insert_dag(one_job_dag(), "client", UserId(1), 0.0);
  warehouse.set_job_planned(JobId(1), SiteId(1), 10.0);
  warehouse.set_job_state(JobId(1), core::JobState::kSubmitted);
  warehouse.speculate_job(JobId(1), SiteId(2), 500.0);
  warehouse.set_job_state(JobId(1), core::JobState::kSubmitted);

  warehouse.resolve_speculation(JobId(1), core::SpeculationState::kSpecWon);
  // The primary's unit (held by the racing row) retired; the replica's
  // stays until the job row itself completes.
  EXPECT_EQ(warehouse.outstanding_on_site(SiteId(1)), 0);
  EXPECT_EQ(warehouse.outstanding_on_site(SiteId(2)), 1);
  warehouse.set_job_state(JobId(1), core::JobState::kCompleted);
  EXPECT_EQ(warehouse.outstanding_on_site(SiteId(2)), 0);
  EXPECT_NO_THROW(warehouse.check_invariants());
}

TEST(SpeculationWarehouse, RaceStateSurvivesJournalRecovery) {
  core::DataWarehouse warehouse;
  warehouse.insert_dag(one_job_dag(), "client", UserId(1), 0.0);
  warehouse.set_job_planned(JobId(1), SiteId(1), 10.0);
  warehouse.set_job_state(JobId(1), core::JobState::kSubmitted);
  warehouse.speculate_job(JobId(1), SiteId(2), 500.0);
  warehouse.record_runtime_sample(SiteId(1), 6, 123.0);

  const auto recovered = core::DataWarehouse::recover_from(warehouse.journal());
  ASSERT_TRUE(recovered.has_value());
  const auto race = (*recovered)->active_speculation(JobId(1));
  ASSERT_TRUE(race.has_value());
  EXPECT_EQ(race->primary_attempt, 1);
  EXPECT_EQ(race->spec_attempt, 2);
  EXPECT_EQ((*recovered)->job(JobId(1))->attempt, 2);
  EXPECT_EQ((*recovered)->outstanding_by_site(),
            (*recovered)->scan_outstanding_by_site());
  EXPECT_EQ((*recovered)->runtime_samples(SiteId(1), 6),
            std::vector<double>{123.0});
  EXPECT_NO_THROW((*recovered)->check_invariants());
}

// --- end-to-end races -------------------------------------------------------

struct RaceRun {
  std::size_t dags_total = 0;
  std::size_t dags_finished = 0;
  core::TrackerStats tracker;
  core::ServerStats server;
  std::string journal;
  std::string trace;
};

/// One tenant on a degraded-heavy grid (long black-hole/degraded
/// outages), optionally under a lossy + duplicating + reordering wire
/// for the whole run.
RaceRun run_race(std::uint64_t seed, bool speculate, bool lossy,
                 Duration monitor_poll = minutes(5)) {
  chaos::ScheduleConfig weights = chaos::straggler_schedule_defaults();
  const chaos::ChaosSchedule schedule =
      chaos::synthesize(seed, weights, exp::Scenario::site_names());

  exp::ScenarioConfig config;
  config.seed = seed;
  config.site_failures = false;
  config.background_load = false;
  config.outage_schedules = schedule.outages;
  config.monitor.poll_period = monitor_poll;
  if (lossy) {
    rpc::LinkFaultRule rule;  // empty prefixes: every link, whole run
    rule.loss = 0.05;
    rule.duplicate = 0.08;
    rule.reorder = 0.1;
    config.network_faults.rules.push_back(rule);
  }
  exp::Scenario scenario(config);
  exp::TenantOptions options;
  options.speculate = speculate;
  scenario.add_tenant("race", options);

  workflow::WorkloadConfig workload;
  workload.jobs_per_dag = 6;
  auto generator = scenario.make_generator("race", workload);
  const std::vector<workflow::Dag> dags = generator.generate_batch("race", 6);
  scenario.start();
  for (std::size_t k = 0; k < dags.size(); ++k) {
    const workflow::Dag& dag = dags[k];
    scenario.engine().schedule_at(
        10.0 + 15.0 * static_cast<double>(k), "submit:" + dag.name(),
        [&scenario, &dag] { scenario.tenants()[0].client->submit(dag); });
  }
  scenario.run(hours(24));

  const exp::Tenant& tenant = scenario.tenants()[0];
  tenant.server->warehouse().check_invariants();
  scenario.engine().check_invariants();
  RaceRun run;
  run.dags_total = tenant.client->dag_outcomes().size();
  run.dags_finished = tenant.client->dags_finished();
  run.tracker = tenant.client->tracker_stats();
  run.server = tenant.server->stats();
  run.journal = tenant.server->warehouse().journal().serialize();
  run.trace = scenario.recorder().trace().to_jsonl();
  return run;
}

/// Whether a seed's outage draws actually trap a job long enough to
/// trigger a race depends on the schedule, so the e2e tests scan a
/// bounded seed range for a triggering run instead of pinning one
/// brittle seed.  Returns the first run matching `pred` (and asserts
/// every scanned run kept its invariants -- run_race checks them).
template <typename Pred>
std::optional<RaceRun> find_run(bool lossy, Duration monitor_poll,
                                Pred&& pred) {
  for (std::uint64_t seed = 11; seed < 41; ++seed) {
    RaceRun run = run_race(seed, true, lossy, monitor_poll);
    if (pred(run)) return run;
  }
  return std::nullopt;
}

TEST(StragglerE2E, RacesResolveFirstCompletionWins) {
  const auto found = find_run(false, minutes(5), [](const RaceRun& r) {
    return r.server.speculations > 0;
  });
  ASSERT_TRUE(found.has_value()) << "no seed in range triggered a race";
  const RaceRun& run = *found;
  EXPECT_EQ(run.dags_finished, run.dags_total);
  // Every race resolves to exactly one of the four terminal states; the
  // won counters can never exceed the launches.
  EXPECT_LE(run.server.speculations_won_primary +
                run.server.speculations_won_spec,
            run.server.speculations);
  // A win retires the loser through the cancel path.
  EXPECT_EQ(run.server.speculation_cancels,
            run.server.speculations_won_primary +
                run.server.speculations_won_spec);
  EXPECT_LE(run.tracker.race_cancels, run.server.speculation_cancels);
  EXPECT_GE(run.tracker.speculative_plans, 1u);
}

TEST(StragglerE2E, LossyWireCrossDeliveryIsArbitratedAway) {
  // Loss, duplication and reorder on every link: completion and cancel
  // reports cross, duplicate, and arrive out of order.  The client's
  // first-completion arbitration plus the server's attempt guards must
  // keep the run clean: every DAG finishes, no plan executes twice, and
  // the race counters stay consistent.
  const auto found = find_run(true, minutes(5), [](const RaceRun& r) {
    return r.server.speculations > 0;
  });
  ASSERT_TRUE(found.has_value()) << "no seed in range triggered a race";
  const RaceRun& run = *found;
  EXPECT_EQ(run.dags_finished, run.dags_total);
  EXPECT_EQ(run.tracker.submissions,
            run.tracker.plans_received - run.tracker.duplicate_plans);
  EXPECT_LE(run.server.speculations_won_primary +
                run.server.speculations_won_spec,
            run.server.speculations);
}

TEST(StragglerE2E, SameSeedIsByteIdentical) {
  const RaceRun a = run_race(13, true, true);
  const RaceRun b = run_race(13, true, true);
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.server.speculations, b.server.speculations);
}

TEST(StragglerE2E, StaleMonitoringSuppressesSpeculation) {
  // Monitoring polls far slower than speculation_stale_after (45 min):
  // the detector must decline every classification and count the skips
  // instead of launching replicas on unjudgeable data.
  const auto found = find_run(false, hours(12), [](const RaceRun& r) {
    // Stale monitoring must never co-exist with a launch.
    EXPECT_EQ(r.server.speculations, 0u);
    return r.server.detector_stale_skips > 0;
  });
  ASSERT_TRUE(found.has_value())
      << "no seed in range trapped a job long enough to consult the guard";
}

TEST(StragglerE2E, SpeculationOffLaunchesNothing) {
  const RaceRun run = run_race(11, false, false);
  EXPECT_EQ(run.server.speculations, 0u);
  EXPECT_EQ(run.tracker.speculative_plans, 0u);
  EXPECT_EQ(run.tracker.race_cancels, 0u);
}

// --- A/B tail-latency gate --------------------------------------------------

TEST(StragglerProbe, SpeculationImprovesTailUnderLongTailGrid) {
  chaos::StragglerProbeConfig config;
  config.seed = 977;
  config.schedule = chaos::straggler_schedule_defaults();
  const chaos::StragglerProbeResult result =
      chaos::run_straggler_probe(config);
  ASSERT_GT(result.on.speculations, 0u);
  EXPECT_GE(result.on.dags_finished, result.off.dags_finished);
  EXPECT_LE(result.on.timeouts, result.off.timeouts);
  EXPECT_LT(percentile(result.on.dag_completions, 0.99),
            percentile(result.off.dag_completions, 0.99));
}

TEST(StragglerProbe, ProbeIsDeterministic) {
  chaos::StragglerProbeConfig config;
  config.seed = 978;
  config.schedule = chaos::straggler_schedule_defaults();
  const chaos::StragglerProbeResult a = chaos::run_straggler_probe(config);
  const chaos::StragglerProbeResult b = chaos::run_straggler_probe(config);
  EXPECT_EQ(a.off.digest, b.off.digest);
  EXPECT_EQ(a.on.digest, b.on.digest);
  EXPECT_NE(a.off.digest, a.on.digest);  // the defense actually acted
}

// --- mid-race crashes -------------------------------------------------------

TEST(StragglerChaos, MidRaceCrashRecoveryIsByteInvisible) {
  // Long-tail outage schedule with speculation on: races are open for
  // much of the run.  Crash + journal-recover the server at every Nth
  // journal record and demand byte-equality with the uninterrupted
  // baseline each time -- open races, sample rings and the detector's
  // cadence cursor must all re-arm exactly.
  chaos::ChaosRunConfig config;
  config.seed = 211;
  config.dag_count = 3;
  config.jobs_per_dag = 5;
  config.horizon = hours(24);
  config.speculate = true;
  config.schedule = chaos::straggler_schedule_defaults();

  chaos::ChaosSchedule schedule = chaos::synthesize_schedule(config);
  schedule.crash_records.clear();
  schedule.mid_ckpt_crashes.clear();
  const chaos::ChaosRunResult probe = chaos::run_chaos_pair(config, schedule);
  ASSERT_TRUE(probe.ok()) << probe.violation();
  ASSERT_GT(probe.speculations, 0u) << "schedule never triggered a race";
  const std::size_t total = probe.journal_records;
  ASSERT_GT(total, 20u);

  const std::size_t step = std::max<std::size_t>(total / 6, 1);
  for (std::size_t at = step; at < total; at += step) {
    chaos::ChaosSchedule crashed = schedule;
    crashed.crash_records = {at};
    const chaos::ChaosRunResult result =
        chaos::run_chaos_pair(config, crashed);
    EXPECT_TRUE(result.ok())
        << "crash at record " << at << ": " << result.violation();
  }
}

TEST(StragglerChaos, ReproJsonRoundTripsSpeculateFlag) {
  chaos::ReproCase repro;
  repro.config.seed = 42;
  repro.config.speculate = true;
  repro.violation = "v";
  const auto parsed = chaos::repro_from_json(chaos::to_json(repro));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  EXPECT_TRUE(parsed->config.speculate);
  EXPECT_EQ(parsed->config.seed, 42u);
}

}  // namespace
}  // namespace sphinx
