#pragma once
/// \file planner.hpp
/// Planner module: strategy + prediction + policy filter (paper section
/// 3.2) behind one narrow interface.
///
/// The planner consumes planning-state DAGs off the warehouse's dirty
/// list.  For every ready, unplanned job it assembles an immutable
/// PlanningContext snapshot -- policy-feasible sites with their static
/// catalog data, live outstanding counters, monitored queue depths, and
/// tracker feedback -- delegates the site choice to the configured
/// strategy, resolves input replicas through the RLS, and persists the
/// decision.  It returns the execution plans instead of sending them: the
/// outgoing RPC channel belongs to the composite server.

#include <memory>
#include <vector>

#include "common/time.hpp"
#include "core/algorithms.hpp"
#include "core/codec.hpp"
#include "core/config.hpp"
#include "core/warehouse.hpp"
#include "data/gridftp.hpp"
#include "data/rls.hpp"
#include "monitor/service.hpp"

namespace sphinx::core {

class Planner {
 public:
  Planner(DataWarehouse& warehouse, std::vector<CatalogSite> catalog,
          data::ReplicaLocationService& rls, data::TransferService& transfers,
          const monitor::MonitoringService* monitoring,
          const ServerConfig& config, ServerStats& stats);

  /// What one planning pass over a DAG produced.
  struct Outcome {
    /// Plans persisted this pass, in decision order; the server delivers
    /// them to the client.
    std::vector<ExecutionPlan> plans;
    /// True when the DAG still has unplanned jobs (blocked on parents,
    /// missing inputs, or no feasible site).  The server re-marks the DAG
    /// dirty so those jobs are retried next sweep.
    bool jobs_left_unplanned = false;
  };

  /// Plans every ready job of a planning-state DAG.
  [[nodiscard]] Outcome plan_dag(const DagRecord& dag, SimTime now);

  /// Straggler defense: plans a speculative replica of a still-live
  /// (kSubmitted/kRunning) job onto the best feasible site *other than*
  /// the one the suspected straggler runs on, through the same strategy
  /// interface as regular planning.  Persists the race in the warehouse
  /// (speculate_job) and returns the plan for the server to deliver;
  /// nullopt when no alternative feasible site exists right now.
  [[nodiscard]] std::optional<ExecutionPlan> plan_speculative(
      const DagRecord& dag, const JobRecord& job, SimTime now);

 private:
  /// Plans one job; returns false when no feasible site exists right now.
  bool plan_job(const DagRecord& dag, const JobRecord& job, SimTime now,
                std::vector<ExecutionPlan>& plans);
  /// Builds the strategy's immutable view of the feasible sites.
  [[nodiscard]] std::vector<CandidateSite> feasible_sites(
      const DagRecord& dag, const JobRecord& job);

  DataWarehouse& warehouse_;
  std::vector<CatalogSite> catalog_;
  data::ReplicaLocationService& rls_;
  data::TransferService& transfers_;
  const monitor::MonitoringService* monitoring_;  ///< may be null
  const ServerConfig& config_;
  ServerStats& stats_;
  std::unique_ptr<SchedulingAlgorithm> algorithm_;
  /// Last strategy state persisted to the warehouse; skips the table
  /// lookup when a pass changed nothing.
  std::string saved_algorithm_state_;
};

}  // namespace sphinx::core
