# Empty compiler generated dependencies file for sweep_seeds.
# This may be replaced when dependencies are built.
