#include "rpc/clarens.hpp"

#include <algorithm>
#include <utility>

namespace sphinx::rpc {
namespace {

/// Deterministic stateless jitter in [0, 1): FNV-1a over the endpoint
/// name folded with splitmix64 over (seq, attempt).  No RNG stream is
/// consumed, so a journal-recovered client re-arms byte-identical timers.
double jitter01(const std::string& endpoint, std::uint64_t seq, int attempt) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : endpoint) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  h ^= seq + 0x9e3779b97f4a7c15ull;
  h ^= static_cast<std::uint64_t>(attempt) * 0xbf58476d1ce4e5b9ull;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

ClarensService::ClarensService(MessageBus& bus, std::string endpoint,
                               AuthzPolicy policy)
    : bus_(bus), endpoint_(std::move(endpoint)), policy_(std::move(policy)) {
  bus_.register_endpoint(endpoint_,
                         [this](const Envelope& env) { handle(env); });
}

ClarensService::~ClarensService() { bus_.unregister_endpoint(endpoint_); }

void ClarensService::register_method(const std::string& name, Method method) {
  SPHINX_ASSERT(method != nullptr, "method handler must not be null");
  methods_[name] = std::move(method);
}

void ClarensService::set_dedup_capacity(std::size_t capacity) {
  dedup_capacity_ = capacity;
  // Trim eagerly.  Eviction used to run only on the next insert, so a
  // shrink (and especially a shrink to zero, which stops inserts -- the
  // only eviction point -- entirely) left the over-capacity tail cached
  // forever, replaying stale replies for retransmissions.
  while (dedup_order_.size() > dedup_capacity_) {
    dedup_cache_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
}

std::string ClarensService::dedup_key(const std::string& from,
                                      std::uint64_t seq) {
  // Length-prefix the caller name: "<len>:<from>#<seq>".  A bare
  // "<from>#<seq>" concatenation cannot distinguish where a '#'-bearing
  // shard-qualified name ends and the sequence number begins, so two
  // distinct (from, seq) pairs could alias one cache slot and replay the
  // wrong caller's reply.
  std::string key = std::to_string(from.size());
  key += ':';
  key += from;
  key += '#';
  key += std::to_string(seq);
  return key;
}

void ClarensService::handle(const Envelope& request) {
  const bool dedup = request.call_seq != 0 && dedup_capacity_ > 0;
  std::string key;
  if (dedup) {
    key = dedup_key(request.from, request.call_seq);
    const auto it = dedup_cache_.find(key);
    if (it != dedup_cache_.end()) {
      ++replayed_;
      bus_.reply(request, it->second);
      return;
    }
  }
  std::string wire = process(request);
  if (dedup) {
    while (dedup_order_.size() >= dedup_capacity_) {
      dedup_cache_.erase(dedup_order_.front());
      dedup_order_.pop_front();
    }
    dedup_cache_.emplace(key, wire);
    dedup_order_.push_back(std::move(key));
  }
  bus_.reply(request, std::move(wire));
}

std::string ClarensService::process(const Envelope& request) {
  auto call = MethodCall::parse(request.payload);
  if (!call) {
    return MethodResponse::failure(
               static_cast<std::int64_t>(ClarensFault::kParse),
               call.error().message)
        .serialize();
  }

  const AuthzDecision decision =
      policy_.check(request.proxy, call->method, bus_.engine().now());
  if (!decision.allowed) {
    ++denied_;
    return MethodResponse::failure(
               static_cast<std::int64_t>(ClarensFault::kDenied),
               decision.reason)
        .serialize();
  }

  const auto it = methods_.find(call->method);
  if (it == methods_.end()) {
    return MethodResponse::failure(
               static_cast<std::int64_t>(ClarensFault::kNoSuchMethod),
               "no such method: " + call->method)
        .serialize();
  }

  ++served_;
  auto result = it->second(call->params, request.proxy);
  if (!result) {
    return MethodResponse::failure(
               static_cast<std::int64_t>(ClarensFault::kApplication),
               result.error().to_string())
        .serialize();
  }
  return MethodResponse::success(std::move(*result)).serialize();
}

ClarensClient::ClarensClient(MessageBus& bus, std::string endpoint, Proxy proxy,
                             RetryPolicy retry)
    : bus_(bus),
      endpoint_(std::move(endpoint)),
      proxy_(std::move(proxy)),
      retry_(retry) {
  SPHINX_ASSERT(retry_.timeout > 0, "retry timeout must be positive");
  SPHINX_ASSERT(retry_.backoff >= 1, "backoff must not shrink the timeout");
  SPHINX_ASSERT(retry_.max_attempts >= 1, "need at least one transmission");
  bus_.register_endpoint(endpoint_,
                         [this](const Envelope& env) { handle(env); });
}

ClarensClient::~ClarensClient() {
  for (auto& [seq, state] : pending_) bus_.engine().cancel(state.timer);
  bus_.unregister_endpoint(endpoint_);
}

void ClarensClient::call(const std::string& service, const std::string& method,
                         std::vector<XrValue> params, Callback callback) {
  SPHINX_ASSERT(callback != nullptr, "call callback must not be null");
  MethodCall mc;
  mc.method = method;
  mc.params = std::move(params);
  const std::uint64_t seq = next_seq_++;
  CallState state;
  state.service = service;
  state.payload = mc.serialize();
  state.callback = std::move(callback);
  pending_.emplace(seq, std::move(state));
  transmit(seq);
}

void ClarensClient::set_outbox(OutboxUpsert upsert, OutboxErase erase) {
  outbox_upsert_ = std::move(upsert);
  outbox_erase_ = std::move(erase);
}

void ClarensClient::restore_call(std::uint64_t seq, std::string service,
                                 std::string payload, int attempt,
                                 SimTime last_sent_at, Callback callback) {
  SPHINX_ASSERT(callback != nullptr, "restore callback must not be null");
  SPHINX_ASSERT(attempt >= 1, "restored call must have been transmitted");
  SPHINX_ASSERT(!pending_.contains(seq), "sequence number already in flight");
  CallState state;
  state.service = std::move(service);
  state.payload = std::move(payload);
  state.callback = std::move(callback);
  state.attempt = attempt;
  state.last_sent_at = last_sent_at;
  auto [it, inserted] = pending_.emplace(seq, std::move(state));
  SPHINX_ASSERT(inserted, "sequence number already in flight");
  // Do not retransmit now: the crashed instance already sent attempt N.
  // Re-arm its timer where that instance would have fired it, clamped to
  // the present, so the recovered wire schedule matches the original.
  const SimTime fire_at =
      std::max(bus_.engine().now(), last_sent_at + rto(seq, attempt));
  it->second.timer = bus_.engine().schedule_at(
      fire_at, "rpc-timeout:" + endpoint_, [this, seq]() { on_timeout(seq); });
}

Duration ClarensClient::rto(std::uint64_t seq, int attempt) const {
  Duration base = retry_.timeout;
  for (int i = 1; i < attempt && base < retry_.max_timeout; ++i) {
    base *= retry_.backoff;
  }
  base = std::min(base, retry_.max_timeout);
  const double swing = 2.0 * jitter01(endpoint_, seq, attempt) - 1.0;
  return base * (1.0 + retry_.jitter * swing);
}

void ClarensClient::transmit(std::uint64_t seq) {
  auto it = pending_.find(seq);
  SPHINX_ASSERT(it != pending_.end(), "transmit of unknown call");
  CallState& state = it->second;
  ++state.attempt;
  state.last_sent_at = bus_.engine().now();
  bus_.send(endpoint_, state.service, state.payload, proxy_, seq);
  if (outbox_upsert_ != nullptr) {
    outbox_upsert_(seq, state.service, state.payload, state.attempt,
                   state.last_sent_at);
  }
  arm_timer(seq);
}

void ClarensClient::arm_timer(std::uint64_t seq) {
  auto it = pending_.find(seq);
  SPHINX_ASSERT(it != pending_.end(), "arming timer for unknown call");
  CallState& state = it->second;
  state.timer = bus_.engine().schedule_in(rto(seq, state.attempt),
                                          "rpc-timeout:" + endpoint_,
                                          [this, seq]() { on_timeout(seq); });
}

void ClarensClient::on_timeout(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // response won the race; timer stale
  if (it->second.attempt >= retry_.max_attempts) {
    ++exhausted_;
    complete(seq, make_error("rpc_timeout",
                             "no response from " + it->second.service +
                                 " after " +
                                 std::to_string(it->second.attempt) +
                                 " attempts"));
    return;
  }
  ++retransmissions_;
  transmit(seq);
}

void ClarensClient::remember_done(std::uint64_t seq) {
  constexpr std::size_t kDoneCapacity = 1024;
  if (done_set_.insert(seq).second) {
    done_ring_.push_back(seq);
    while (done_ring_.size() > kDoneCapacity) {
      done_set_.erase(done_ring_.front());
      done_ring_.pop_front();
    }
  }
}

void ClarensClient::complete(std::uint64_t seq, Expected<XrValue> result) {
  auto it = pending_.find(seq);
  SPHINX_ASSERT(it != pending_.end(), "completing unknown call");
  bus_.engine().cancel(it->second.timer);
  Callback callback = std::move(it->second.callback);
  pending_.erase(it);
  remember_done(seq);
  if (outbox_erase_ != nullptr) outbox_erase_(seq);
  callback(std::move(result));
}

void ClarensClient::handle(const Envelope& response) {
  const std::uint64_t seq = response.call_seq;
  if (seq == 0) {
    ++stray_replies_;  // unsequenced traffic cannot be one of our calls
    return;
  }
  const auto it = pending_.find(seq);
  if (it == pending_.end()) {
    // A duplicate of a reply we already consumed, or noise.  Counted and
    // dropped; the continuation never runs twice.
    if (done_set_.contains(seq)) {
      ++duplicate_replies_;
    } else {
      ++stray_replies_;
    }
    return;
  }

  auto parsed = MethodResponse::parse(response.payload);
  if (!parsed) {
    complete(seq, Unexpected<Error>{parsed.error()});
    return;
  }
  if (parsed->is_fault) {
    complete(seq, make_error("fault:" + std::to_string(parsed->fault.code),
                             parsed->fault.message));
    return;
  }
  complete(seq, std::move(parsed->value));
}

}  // namespace sphinx::rpc
