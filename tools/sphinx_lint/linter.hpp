#pragma once
/// \file linter.hpp
/// sphinx-lint: the project's determinism / state-discipline checker.
///
/// A token-stream, declaration-aware static analyzer (deliberately no
/// libclang dependency) that enforces the rules the simulator's
/// credibility rests on.  The byte-diff oracles -- the flight-recorder
/// determinism gate, the chaos differential oracle, the lossy-network
/// gate -- all assume a fixed-seed run is byte-identical; these rules
/// prove the common ways of silently breaking that property are absent
/// from the tree:
///
///   sim-clock            no wall-clock sources; sim time comes from
///                        src/common/time.hpp via the Engine
///   sim-random           no ambient randomness (rand, random_device, …)
///   discarded-status     no `(void)` casts of call results in src/
///   naked-throw          throw only AssertionError/ContractViolation
///   iostream-include     library code logs via src/common/log.hpp
///   pragma-once          headers start with #pragma once
///   file-comment         headers carry a `/// \file` comment
///   ordered-escape       iteration over unordered containers (or
///                        pointer-keyed ordered ones) must not escape
///                        into journal writes, trace events, serialized
///                        output or accumulation order
///   rng-stream-literal   seeds.stream() labels start with a string
///                        literal so the static registry can see them
///   rng-stream-duplicate one stream name, one module
///   rng-raw              library code never constructs Rng directly;
///                        streams come from SeedTree::stream
///   derived-state        members annotated `sphinx-lint: derived(...)`
///                        are only mutated by the functions named
///   observe-only         src/obs/ never draws randomness, requests
///                        streams, schedules events or reaches into
///                        warehouse/db state
///
/// Comments and string literals are stripped before regex matching, so
/// documentation may mention rand() freely.  Escapes:
///   - one line:  `// sphinx-lint-allow(<rule>): reason`
///   - one file:  `// sphinx-lint: ordered-escape-checked -- reason`
///     (audited iteration sites; the tag is rule-specific)

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace sphinx::lint {

/// One rule violation.
struct Finding {
  std::string path;     ///< scan-root-relative path, '/'-separated
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< rule identifier, e.g. "sim-clock"
  std::string message;  ///< human-readable explanation

  [[nodiscard]] std::string to_string() const;
};

/// One `seeds.stream(...)` call site, as seen by the static pass.
struct StreamUse {
  std::string name;    ///< literal label; families end in "*"
  bool family = false; ///< literal prefix + runtime suffix ("site/" + name)
  std::string path;    ///< file declaring the stream
  std::size_t line = 0;
  std::string module;  ///< uniqueness scope, e.g. "src/exp"
};

/// Result of analysing a whole tree: findings from the per-file rules
/// plus the cross-file phase, and the extracted rng stream registry.
struct TreeReport {
  std::vector<Finding> findings;
  std::vector<StreamUse> streams;  ///< sorted by (name, path, line)
  std::vector<std::string> errors; ///< IO problems
};

/// Rule identifiers with one-line descriptions, for --list-rules.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> rule_list();

/// Long-form description of one rule, or "" for an unknown id.
[[nodiscard]] std::string rule_explain(const std::string& rule);

/// Lints one translation unit given its contents and scan-root-relative
/// path (path scoping: some rules apply only under src/, and the
/// determinism whitelist names specific src/common/ files).  Runs every
/// per-file rule; cross-file rules need analyze_tree().
[[nodiscard]] std::vector<Finding> lint_source(std::string_view content,
                                               const std::string& rel_path);

/// As lint_source, but restricted to the rules named in `only` (empty =
/// all).  Unknown rule names simply never fire.
[[nodiscard]] std::vector<Finding> lint_source_rules(
    std::string_view content, const std::string& rel_path,
    const std::vector<std::string>& only);

/// Walks `entries` (directories or files, relative to `root`) and runs
/// the full analysis: per-file rules, then the cross-file phase
/// (duplicate stream names across modules; derived-state annotations
/// declared in a header enforced in the sibling source file).  Files
/// are visited in sorted order for deterministic output.  `only`
/// restricts the rule set (empty = all).
[[nodiscard]] TreeReport analyze_tree(
    const std::filesystem::path& root, const std::vector<std::string>& entries,
    const std::vector<std::string>& only = {});

/// Compatibility wrapper: analyze_tree's findings only.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::filesystem::path& root, const std::vector<std::string>& entries,
    std::vector<std::string>* errors = nullptr);

/// Findings as a JSON array (stable key order: path, line, rule,
/// message), for CI consumption.  Ends with a newline.
[[nodiscard]] std::string findings_json(const std::vector<Finding>& findings);

/// The rng stream registry as the committed docs/rng_streams.md
/// markdown: deterministic, sorted, suitable for byte-diffing.
[[nodiscard]] std::string rng_registry_markdown(
    const std::vector<StreamUse>& streams);

}  // namespace sphinx::lint
