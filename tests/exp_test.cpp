// Tests for the experiment layer: scenario determinism, the group-wise
// runner, report rendering and the parallel sweep pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "exp/parallel.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace sphinx::exp {
namespace {

ExperimentConfig tiny_config(std::uint64_t seed) {
  ExperimentConfig config;
  config.scenario.seed = seed;
  config.scenario.site_failures = false;
  config.scenario.background_load = false;
  config.workload.jobs_per_dag = 5;
  config.dag_count = 2;
  config.submit_spacing = 1.0;
  config.horizon = hours(12);
  return config;
}

TEST(ExperimentDeterminism, SameSeedSameNumbers) {
  const auto run_once = [](std::uint64_t seed) {
    Experiment experiment(tiny_config(seed));
    return experiment.run(standard_panel());
  };
  const auto a = run_once(17);
  const auto b = run_once(17);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].avg_dag_completion, b[i].avg_dag_completion);
    EXPECT_DOUBLE_EQ(a[i].avg_job_idle, b[i].avg_job_idle);
    EXPECT_EQ(a[i].timeouts, b[i].timeouts);
    EXPECT_EQ(a[i].plans, b[i].plans);
  }
}

TEST(ExperimentDeterminism, DifferentSeedsDiffer) {
  Experiment a(tiny_config(1));
  Experiment b(tiny_config(2));
  const auto ra = a.run(standard_panel());
  const auto rb = b.run(standard_panel());
  // At least one headline number differs across seeds.
  bool any_difference = false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].avg_dag_completion != rb[i].avg_dag_completion) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ExperimentRunner, StandardPanelShape) {
  const auto panel = standard_panel();
  ASSERT_EQ(panel.size(), 4u);
  std::set<core::Algorithm> algorithms;
  for (const auto& spec : panel) {
    algorithms.insert(spec.options.algorithm);
    EXPECT_TRUE(spec.options.use_feedback);
    EXPECT_FALSE(spec.options.use_policy);
  }
  EXPECT_EQ(algorithms.size(), 4u);
}

TEST(ExperimentRunner, QuotasProduceRejections) {
  ExperimentConfig config = tiny_config(5);
  config.quota_cpu_fraction = 0.25;  // ~2 jobs per site: forces spreading
  std::vector<TenantSpec> specs;
  TenantOptions options;
  options.algorithm = core::Algorithm::kNumCpus;
  options.use_policy = true;
  specs.push_back({"quota", options});
  Experiment experiment(config);
  const auto results = experiment.run(specs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].dags_finished, 2u);
  EXPECT_GT(results[0].policy_rejections, 0u);
}

TEST(Reports, RenderAllForms) {
  TenantResult r;
  r.label = "completion-time";
  r.dags_total = 30;
  r.dags_finished = 30;
  r.avg_dag_completion = 1234.5;
  r.avg_job_execution = 60.1;
  r.avg_job_idle = 200.2;
  r.timeouts = 12;
  r.replans = 15;
  r.per_site = {{"acdc", 10, 300.0}, {"ll3", 0, 0.0}};
  const std::vector<TenantResult> results{r};

  const std::string dag = render_dag_completion("DAGs:", results);
  EXPECT_NE(dag.find("completion-time"), std::string::npos);
  EXPECT_NE(dag.find("1234.5"), std::string::npos);

  const std::string exec = render_exec_idle("Exec:", results);
  EXPECT_NE(exec.find("60.1"), std::string::npos);
  EXPECT_NE(exec.find("260.3"), std::string::npos);  // total column

  const std::string sites = render_site_distribution("Sites:", r);
  EXPECT_NE(sites.find("acdc"), std::string::npos);
  EXPECT_NE(sites.find("-"), std::string::npos);  // ll3 has no data

  const std::string timeouts = render_timeouts("Timeouts:", results);
  EXPECT_NE(timeouts.find("12"), std::string::npos);

  const std::string summary = render_summary(results);
  EXPECT_NE(summary.find("30/30"), std::string::npos);
  EXPECT_NE(summary.find("15"), std::string::npos);
}

TEST(ParallelSweep, ResultsInInputOrder) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([i] { return i * i; });
  }
  const auto results = run_parallel(tasks, 8);
  ASSERT_EQ(results.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelSweep, PropagatesExceptions) {
  std::vector<std::function<int()>> tasks;
  tasks.push_back([] { return 1; });
  tasks.push_back([]() -> int {
    throw std::runtime_error(  // sphinx-lint-allow(naked-throw): propagation
        "boom");
  });
  EXPECT_THROW((void)run_parallel(tasks, 2), std::runtime_error);
}

TEST(ParallelSweep, EveryTaskRunsDespiteAThrow) {
  // One task failing must not strand the rest: the pool drains the
  // whole queue before the exception is rethrown, so results (and side
  // effects) of healthy tasks are complete.
  std::atomic<int> ran{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 12; ++i) {
    if (i == 3 || i == 7) {
      tasks.push_back([]() -> int {
        throw std::runtime_error(  // sphinx-lint-allow(naked-throw): test payload
            "boom");
      });
    } else {
      tasks.push_back([&ran] { return ++ran; });
    }
  }
  EXPECT_THROW((void)run_parallel(tasks, 3), std::runtime_error);
  EXPECT_EQ(ran.load(), 10);
}

TEST(ParallelSweep, LowestIndexedExceptionWinsUnderContention) {
  // Two tasks fail: a slow one at index 1 and an instant one at index
  // 6.  Whichever thread *finishes* first is a race, but the rethrown
  // exception is pinned to the lowest failing index -- reports stay
  // deterministic across runs.
  for (int attempt = 0; attempt < 5; ++attempt) {
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 8; ++i) {
      if (i == 1) {
        tasks.push_back([]() -> int {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          throw std::runtime_error(  // sphinx-lint-allow(naked-throw): test payload
              "slow-low-index");
        });
      } else if (i == 6) {
        tasks.push_back([]() -> int {
          throw std::runtime_error(  // sphinx-lint-allow(naked-throw): test payload
              "fast-high-index");
        });
      } else {
        tasks.push_back([i] { return i; });
      }
    }
    std::string message;
    try {
      (void)run_parallel(tasks, 8);
    } catch (const std::runtime_error& error) {
      message = error.what();
    }
    EXPECT_EQ(message, "slow-low-index") << "attempt " << attempt;
  }
}

TEST(ParallelSweep, SingleThreadMatchesSerialOrder) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 16; ++i) tasks.push_back([i] { return 100 - i; });
  const auto results = run_parallel(tasks, 1);
  ASSERT_EQ(results.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], 100 - i);
  }
}

TEST(ParallelSweep, MoreTasksThanThreads) {
  std::vector<std::function<std::uint64_t()>> tasks;
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    tasks.push_back([seed] {
      Rng rng(seed);
      std::uint64_t acc = 0;
      for (int i = 0; i < 1000; ++i) {
        acc += static_cast<std::uint64_t>(rng.uniform_int(0, 100));
      }
      return acc;
    });
  }
  const auto results = run_parallel(tasks, 2);
  // Parallel execution must match serial execution exactly.
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    Rng rng(seed);
    std::uint64_t acc = 0;
    for (int i = 0; i < 1000; ++i) {
      acc += static_cast<std::uint64_t>(rng.uniform_int(0, 100));
    }
    EXPECT_EQ(results[seed - 1], acc);
  }
}

TEST(ParallelSweep, RealScenariosInParallelAreDeterministic) {
  // Running simulations on the pool must give the same numbers as running
  // them serially -- simulations share nothing mutable.
  std::vector<std::function<double()>> tasks;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    tasks.push_back([seed] {
      Experiment experiment(tiny_config(seed));
      std::vector<TenantSpec> specs;
      specs.push_back({"ct", TenantOptions{}});
      return experiment.run(specs)[0].avg_dag_completion;
    });
  }
  const auto parallel = run_parallel(tasks, 4);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Experiment experiment(tiny_config(seed));
    std::vector<TenantSpec> specs;
    specs.push_back({"ct", TenantOptions{}});
    const double serial = experiment.run(specs)[0].avg_dag_completion;
    EXPECT_DOUBLE_EQ(parallel[seed - 1], serial);
  }
}

}  // namespace
}  // namespace sphinx::exp
