// sphinx_chaos: seeded chaos campaigns and repro replay.
//
//   sphinx_chaos campaign [--runs N] [--seed S] [--threads T]
//                         [--crashes C] [--mid-ckpt-crashes M]
//                         [--checkpoint-every R] [--dags K] [--repro PATH]
//                         [--net-windows W] [--net-partitions P]
//                         [--inject-divergence] [--no-minimize]
//   sphinx_chaos failover [--runs N] [--seed S] [--shards H] [--dags K]
//   sphinx_chaos replay --repro PATH
//
// `failover` runs N seeded multi-scheduler failover pairs (scheduler
// crash + client<->server partition during shard handoff vs the same
// seed uninterrupted) and demands every pair pass the failover
// differential oracle: adoption must be byte-invisible to the
// scheduling layer.  Same report determinism contract as `campaign`.
//
// `campaign` sweeps N seeded chaos runs (randomized outage schedules,
// lossy-wire windows + client<->server partitions, and
// mid-run server crash/recovery -- checkpointed by default, including
// crash points that land between checkpoint publication and journal
// truncation) and checks every run against the
// invariant and differential oracles.  The report is deterministic:
// same flags -> byte-identical stdout (tools/check.sh diffs two
// invocations).  On failure the first failing run is minimized and
// written to --repro as chaos_repro.json; `replay` re-executes such a
// file exactly.  Exit status: 0 all green, 1 oracle violation, 2 usage.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/failover.hpp"

namespace {

void print_run(const sphinx::chaos::ChaosRunResult& result) {
  std::printf("  seed=%llu outages=%zu net=%zu crashes=%zu digest=%016llx %s",
              static_cast<unsigned long long>(result.seed),
              result.schedule.outage_count(), result.schedule.net_windows.size(),
              result.crashes_executed,
              static_cast<unsigned long long>(result.digest),
              result.ok() ? "ok" : "FAIL");
  if (!result.ok()) std::printf(" (%s)", result.violation().c_str());
  std::printf("\n");
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sphinx_chaos campaign [--runs N] [--seed S] [--threads T]\n"
      "                             [--crashes C] [--mid-ckpt-crashes M]\n"
      "                             [--checkpoint-every R] [--dags K]\n"
      "                             [--repro PATH]\n"
      "                             [--net-windows W] [--net-partitions P]\n"
      "                             [--inject-divergence] [--no-minimize]\n"
      "       sphinx_chaos failover [--runs N] [--seed S] [--shards H]\n"
      "                             [--dags K]\n"
      "       sphinx_chaos replay --repro PATH\n");
  return 2;
}

int run_failover(int argc, char** argv) {
  int runs = 1;
  sphinx::chaos::FailoverConfig base;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (arg == "--runs" && value != nullptr) {
      runs = std::atoi(value);
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      base.seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--shards" && value != nullptr) {
      base.shards = static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else if (arg == "--dags" && value != nullptr) {
      base.dag_count = static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else {
      return usage();
    }
  }

  int failures = 0;
  std::uint64_t digest = 0xcbf29ce484222325ull;
  std::printf("sphinx_chaos failover: runs=%d shards=%zu dags=%zu\n", runs,
              base.shards, base.dag_count);
  for (int k = 0; k < runs; ++k) {
    sphinx::chaos::FailoverConfig config = base;
    config.seed = base.seed + static_cast<std::uint64_t>(k);
    const sphinx::chaos::FailoverRunResult result =
        sphinx::chaos::run_failover_pair(config);
    if (!result.ok()) ++failures;
    digest ^= result.digest;
    std::printf(
        "  seed=%llu adoptions=%zu expirations=%zu records=%zu "
        "stopped_at=%.3f digest=%016llx %s",
        static_cast<unsigned long long>(result.seed), result.adoptions,
        result.expirations, result.journal_records, result.stopped_at,
        static_cast<unsigned long long>(result.digest),
        result.ok() ? "ok" : "FAIL");
    if (!result.ok()) std::printf(" (%s)", result.violation().c_str());
    std::printf("\n");
  }
  std::printf("sphinx_chaos failover: failures=%d digest=%016llx\n", failures,
              static_cast<unsigned long long>(digest));
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "failover") return run_failover(argc, argv);

  sphinx::chaos::CampaignConfig config;
  std::string repro_path = "chaos_repro.json";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (arg == "--runs" && value != nullptr) {
      config.runs = std::atoi(value);
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      config.base.seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--threads" && value != nullptr) {
      config.max_threads = static_cast<unsigned>(std::atoi(value));
      ++i;
    } else if (arg == "--crashes" && value != nullptr) {
      config.base.schedule.crashes = std::atoi(value);
      ++i;
    } else if (arg == "--mid-ckpt-crashes" && value != nullptr) {
      config.base.schedule.mid_ckpt_crashes = std::atoi(value);
      ++i;
    } else if (arg == "--checkpoint-every" && value != nullptr) {
      config.base.checkpoint_every =
          static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else if (arg == "--dags" && value != nullptr) {
      config.base.dag_count = std::atoi(value);
      ++i;
    } else if (arg == "--net-windows" && value != nullptr) {
      config.base.schedule.net_windows = std::atoi(value);
      ++i;
    } else if (arg == "--net-partitions" && value != nullptr) {
      config.base.schedule.net_partitions = std::atoi(value);
      ++i;
    } else if (arg == "--repro" && value != nullptr) {
      repro_path = value;
      ++i;
    } else if (arg == "--inject-divergence") {
      config.base.inject_divergence = true;
    } else if (arg == "--no-minimize") {
      config.minimize_failures = false;
    } else {
      return usage();
    }
  }

  using namespace sphinx;
  if (command == "replay") {
    std::ifstream in(repro_path);
    if (!in) {
      std::fprintf(stderr, "sphinx_chaos: cannot read %s\n",
                   repro_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto repro = chaos::repro_from_json(text.str());
    if (!repro) {
      std::fprintf(stderr, "sphinx_chaos: bad repro %s: %s\n",
                   repro_path.c_str(), repro.error().to_string().c_str());
      return 2;
    }
    const chaos::ChaosRunResult result = chaos::replay(*repro);
    std::printf("sphinx_chaos replay: %s\n", repro_path.c_str());
    print_run(result);
    return result.ok() ? 0 : 1;
  }

  if (command != "campaign") return usage();
  const chaos::CampaignResult campaign = chaos::run_campaign(config);
  std::printf("sphinx_chaos campaign: runs=%d failures=%d digest=%016llx\n",
              campaign.runs, campaign.failures,
              static_cast<unsigned long long>(campaign.digest));
  for (const chaos::ChaosRunResult& result : campaign.results) {
    print_run(result);
  }
  if (!campaign.repros.empty()) {
    const std::string json = chaos::to_json(campaign.repros.front());
    std::ofstream out(repro_path, std::ios::trunc);
    out << json << "\n";
    std::printf("  minimized repro -> %s\n", repro_path.c_str());
  }
  return campaign.failures == 0 ? 0 : 1;
}
