#pragma once
/// \file message_handler.hpp
/// Message-handling module: ingress for client messages (paper section
/// 3.2, "message handling module").
///
/// The RPC layer decodes the wire payloads; this module applies them to
/// the data warehouse.  An accepted DAG lands in the dags table in state
/// received, which enqueues it on the warehouse's dirty list for the DAG
/// reducer.  A tracker report moves the job's state machine and maintains
/// the feedback statistics; a completion hands the affected DAG back to
/// the server (via the callback) so it can check for DAG completion and
/// notify the client.

#include <functional>
#include <string>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "core/codec.hpp"
#include "core/config.hpp"
#include "core/warehouse.hpp"
#include "workflow/dag.hpp"

namespace sphinx::core {

class MessageHandler {
 public:
  /// Invoked after a report completes a job, with the job's DAG, so the
  /// composite server can run the DAG-completion check and client
  /// notification (which need the outgoing RPC channel this module does
  /// not own).
  using JobCompletedHook = std::function<void(DagId)>;

  /// Invoked when a tracker report settles a speculation race, with the
  /// race as it was while racing and its final state.  The composite
  /// server turns this into traces, counters and -- for kPrimaryWon /
  /// kSpecWon -- the loser-cancel RPC to the client (which needs the
  /// outgoing channel this module does not own).
  using SpeculationResolvedHook =
      std::function<void(const SpeculationRecord&, SpeculationState)>;

  MessageHandler(DataWarehouse& warehouse, const ServerConfig& config,
                 ServerStats& stats, JobCompletedHook on_job_completed);

  void set_on_speculation_resolved(SpeculationResolvedHook hook) {
    on_speculation_resolved_ = std::move(hook);
  }

  /// Stores an incoming DAG in the warehouse (state: received).  Returns
  /// false (and touches nothing) when the DAG id is already stored -- a
  /// duplicate delivery of a submission that escaped the RPC-layer dedup
  /// cache must not re-insert rows or re-dirty the DAG.
  [[nodiscard]] bool accept_dag(const workflow::Dag& dag,
                                const std::string& client, UserId user,
                                SimTime now, double priority,
                                SimTime deadline);

  /// Folds one tracker report into the warehouse: advances the job's
  /// state machine, maintains feedback statistics and quotas, and queues
  /// cancelled/held attempts for replanning.  Errors on unknown jobs;
  /// stale and duplicate reports are ignored.
  [[nodiscard]] StatusOrError apply_report(const TrackerReport& report);

  /// Administrative quota update (eq. 4's limits).
  void set_quota(UserId user, SiteId site, const std::string& resource,
                 double limit);

 private:
  /// Settles an open race against a terminal report of one of its two
  /// attempts: resolves the speculation row, books the loser's censored
  /// duration into the site statistics, refunds the loser's quota, and
  /// fires the resolution hook.
  void settle_race(const JobRecord& job, const SpeculationRecord& race,
                   SpeculationState final_state, const TrackerReport& report);

  DataWarehouse& warehouse_;
  const ServerConfig& config_;
  ServerStats& stats_;
  JobCompletedHook on_job_completed_;
  SpeculationResolvedHook on_speculation_resolved_;
};

}  // namespace sphinx::core
