#pragma once
/// \file scenario.hpp
/// The Grid3-like testbed every experiment runs on.
///
/// Section 4.2 of the paper uses Grid3: "more than 25 sites across the US
/// and Korea that collectively provide more than 2000 CPUs", shared by
/// "7 different scientific applications".  This scenario builds the
/// simulated analogue: 15 heterogeneous sites (named after the sites in
/// the paper's Figure 6), with background load from other VOs, per-site
/// VO priorities, WAN links, storage elements, a monitoring service, and
/// the failure behaviours (downtime, black holes, degradation) that the
/// fault-tolerance results depend on.

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "data/gridftp.hpp"
#include "data/rls.hpp"
#include "data/storage.hpp"
#include "grid/grid.hpp"
#include "monitor/gma.hpp"
#include "monitor/service.hpp"
#include "obs/recorder.hpp"
#include "rpc/transport.hpp"
#include "sim/engine.hpp"
#include "submit/condor_g.hpp"
#include "workflow/generator.hpp"

namespace sphinx::exp {

/// Scenario-wide knobs.
struct ScenarioConfig {
  std::uint64_t seed = 1;
  bool site_failures = true;     ///< intermittent downtime + black holes
  bool background_load = true;   ///< other VOs' jobs
  monitor::MonitorConfig monitor;  ///< poll period 5 min by default
  Duration bus_latency = 0.1;
  Duration bus_jitter = 0.1;
  /// GMA registry retention per (metric, site) series.
  std::size_t metric_history_limit = 64;
  /// Pre-planned outages per site name (chaos harness).  A named site
  /// runs exactly this outage list instead of the seeded renewal process;
  /// unnamed sites keep whatever `site_failures` gives them.  Applied
  /// even when `site_failures` is false, so a chaos run can own all the
  /// grid's misbehaviour.
  std::map<std::string, std::vector<grid::ScheduledOutage>> outage_schedules;
  /// Network fault plan (loss, duplication, reorder spikes, partitions).
  /// Draws come from the dedicated "bus/faults" stream, so an empty plan
  /// leaves the run byte-identical to a build without the fault model.
  rpc::NetworkFaultConfig network_faults;
};

/// A crashed server's complete durable state, captured at the instant of
/// the crash: everything a surviving peer needs to adopt the shard later
/// (journal + optional checkpoint image + config + the crashed control
/// process's pending sweep time).
struct DurableServerState {
  db::Journal journal;
  std::optional<core::CheckpointImage> checkpoint;
  core::ServerConfig config;
  SimTime resume_at = 0.0;
};

/// One SPHINX deployment (server + client + gateway) sharing the grid
/// with the other tenants -- the paper's "multiple instances of SPHINX
/// servers ... started at the same time so that they can compete for the
/// same set of grid resources".
struct Tenant {
  std::string label;
  std::unique_ptr<submit::CondorG> gateway;
  std::unique_ptr<core::SphinxServer> server;
  std::unique_ptr<core::SphinxClient> client;
  /// Set between crash_server() and recover_server(): the dead shard's
  /// durable state, waiting for an adopter.
  std::optional<DurableServerState> durable;
};

/// Per-tenant scheduling options.
struct TenantOptions {
  core::Algorithm algorithm = core::Algorithm::kCompletionTime;
  bool use_feedback = true;
  bool use_policy = false;
  bool use_qos_ordering = true;  ///< priority + earliest-deadline planning
  Duration job_timeout = minutes(20);
  /// Server checkpoint policy (see ServerConfig): checkpoint every N
  /// journal records / every M sim-seconds.  0/0 (default) disables
  /// checkpointing and keeps recovery on full-history replay.
  std::size_t checkpoint_every_records = 0;
  Duration checkpoint_period = 0.0;
  /// First-sweep offset (ServerConfig::sweep_phase).  Multi-shard
  /// deployments stagger phases so no two shards sweep at the same
  /// engine timestamp.
  Duration sweep_phase = 0.0;
  /// Straggler defense (ServerConfig::speculate): race speculative
  /// replicas against detected stragglers, first completion wins.
  bool speculate = false;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  /// The static site catalog (id, name, CPUs) as SPHINX sees it.
  [[nodiscard]] std::vector<core::CatalogSite> catalog() const;

  /// The testbed's site names in catalog order, without building a
  /// scenario (schedule synthesis needs only the names).
  [[nodiscard]] static std::vector<std::string> site_names();

  /// Creates one tenant.  Tenants must be created before start().
  Tenant& add_tenant(const std::string& label, const TenantOptions& options);

  /// Builds a workload generator whose randomness depends only on
  /// `stream_label`, so two tenants given the same label receive
  /// structurally identical workloads (fair group-wise comparison).
  [[nodiscard]] workflow::WorkloadGenerator make_generator(
      const std::string& stream_label,
      const workflow::WorkloadConfig& workload);

  /// Starts grid dynamics, monitoring and every tenant's control process.
  void start();

  /// Fail-stop crash + journal recovery of one tenant's server, in place,
  /// within the current engine event: the old instance is destroyed (its
  /// endpoint disappears from the bus), a new one is rebuilt from the
  /// journal, re-registered under the same endpoint, and restarted at the
  /// crashed control process's exact pending sweep time.  Call from an
  /// engine event (e.g. a chaos crash hook), never re-entrantly from
  /// inside the server being killed.
  [[nodiscard]] StatusOrError crash_and_recover_server(
      std::size_t tenant_index);

  /// The crash half alone: captures the server's durable state into
  /// Tenant::durable and destroys the instance.  The endpoint stays dark
  /// until recover_server() -- failover's real dead window, where the
  /// control plane must notice the silence and arrange adoption.
  void crash_server(std::size_t tenant_index);

  /// The recovery half: rebuilds the tenant's server from the durable
  /// state crash_server() captured (checkpoint image + journal suffix
  /// when an image exists), re-registers the endpoint, re-arms the
  /// rpc_outbox without resending, and resumes the crashed instance's
  /// exact sweep phase.  Runs in the caller's engine event -- for a
  /// failover this is the adopting peer's monitor sweep.
  [[nodiscard]] StatusOrError recover_server(std::size_t tenant_index);

  /// Runs until `horizon`, stopping early once every tenant's client has
  /// finished all of its DAGs.  Returns the stop time.
  SimTime run(SimTime horizon);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] grid::Grid& grid() noexcept { return grid_; }
  [[nodiscard]] data::ReplicaLocationService& rls() noexcept { return rls_; }
  [[nodiscard]] data::TransferService& transfers() noexcept { return transfers_; }
  [[nodiscard]] monitor::MonitoringService& monitoring() noexcept {
    return monitoring_;
  }
  [[nodiscard]] rpc::MessageBus& bus() noexcept { return bus_; }
  [[nodiscard]] std::deque<Tenant>& tenants() noexcept { return tenants_; }
  [[nodiscard]] workflow::IdSpace& ids() noexcept { return ids_; }
  [[nodiscard]] const SeedTree& seeds() const noexcept { return seeds_; }
  /// The scenario-wide flight recorder: every layer (bus, grid failures,
  /// monitoring bridge, each tenant's server and client) records into it.
  [[nodiscard]] obs::Recorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const obs::Recorder& recorder() const noexcept {
    return recorder_;
  }
  /// The GMA registry monitoring publishes into (bridged to the recorder).
  [[nodiscard]] monitor::MetricRegistry& registry() noexcept {
    return registry_;
  }

 private:
  void build_sites();

  ScenarioConfig config_;
  sim::Engine engine_;
  // Declared before registry_: the registry holds a bridge callback into
  // the recorder, so it must be destroyed first (reverse declaration
  // order destroys registry_ before recorder_).
  obs::Recorder recorder_{engine_};
  monitor::MetricRegistry registry_;
  SeedTree seeds_;
  rpc::MessageBus bus_;
  grid::Grid grid_;
  data::TransferService transfers_;
  data::ReplicaLocationService rls_;
  data::StorageFabric storage_;
  monitor::MonitoringService monitoring_;
  workflow::IdSpace ids_;
  // deque: references returned by add_tenant stay valid as tenants are
  // appended (a vector would reallocate and dangle them).
  std::deque<Tenant> tenants_;
  IdGenerator<UserId> users_;
  bool started_ = false;
};

}  // namespace sphinx::exp
