// Fixture: every draw below must trip the sim-random rule.
#include <cstdlib>
#include <random>

int ambient_draws() {
  std::random_device rd;
  srand(rd());
  return rand() % 6;
}
