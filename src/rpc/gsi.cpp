#include "rpc/gsi.hpp"

#include <algorithm>

namespace sphinx::rpc {

Proxy::Proxy(Identity identity, std::string vo,
             std::vector<std::string> groups, SimTime issued_at,
             Duration lifetime)
    : identity_(std::move(identity)),
      vo_(std::move(vo)),
      groups_(std::move(groups)),
      expires_at_(issued_at + lifetime) {
  SPHINX_ASSERT(lifetime > 0, "proxy lifetime must be positive");
}

Proxy Proxy::delegate(SimTime now, Duration lifetime) const {
  Proxy child = *this;
  child.expires_at_ = std::min(expires_at_, now + lifetime);
  return child;
}

std::string Proxy::principal() const {
  std::string p = vo_;
  for (const std::string& g : groups_) p += ":" + g;
  return p;
}

void AuthzPolicy::allow_vo(const std::string& method, const std::string& vo) {
  acls_[method].vos.insert(vo);
}

void AuthzPolicy::allow_subject(const std::string& method,
                                const std::string& subject) {
  acls_[method].subjects.insert(subject);
}

void AuthzPolicy::ban_subject(const std::string& subject) {
  banned_.insert(subject);
}

bool AuthzPolicy::acl_matches(const MethodAcl& acl, const Proxy& proxy) const {
  return acl.vos.contains(proxy.vo()) ||
         acl.subjects.contains(proxy.identity().subject);
}

AuthzDecision AuthzPolicy::check(const Proxy& proxy, const std::string& method,
                                 SimTime now) const {
  if (banned_.contains(proxy.identity().subject)) {
    return {false, "subject is banned"};
  }
  if (!proxy.valid_at(now)) {
    return {false, "proxy expired or anonymous"};
  }
  const auto exact = acls_.find(method);
  if (exact != acls_.end() && acl_matches(exact->second, proxy)) {
    return {true, {}};
  }
  const auto wildcard = acls_.find("*");
  if (wildcard != acls_.end() && acl_matches(wildcard->second, proxy)) {
    return {true, {}};
  }
  // With no ACLs configured at all the service is open to any
  // authenticated caller; once any ACL exists, default is deny.
  if (acls_.empty()) {
    return {true, {}};
  }
  return {false, "no ACL grants " + proxy.principal() + " access to " + method};
}

}  // namespace sphinx::rpc
