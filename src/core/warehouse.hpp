#pragma once
/// \file warehouse.hpp
/// The SPHINX data warehouse: typed access to the server's database.
///
/// "The SPHINX server adopts database infrastructure to manage scheduling
/// procedure.  Database tables support inter-process communication among
/// scheduling modules ... It also supports fault tolerance by making the
/// system easily recoverable from internal component failures" (paper
/// section 3.1).  All server state -- DAGs, jobs, dependencies, site
/// statistics, quotas -- lives in db::Database tables; a crashed server
/// is rebuilt by replaying the journal (see recover_from()).
///
/// On top of the tables the warehouse maintains derived *work state* that
/// makes sweeps O(changed work) instead of O(total state):
///  - a dirty-DAG work queue ("dirty list"): every state transition that
///    can create planning work enqueues the affected DAG, and the server's
///    sweep drains the queue instead of scanning the dags table;
///  - live outstanding-per-site counters, maintained on job transitions
///    instead of recomputed by a per-sweep scan of the jobs table.
/// Both are rebuilt from the recovered tables in recover_from(), so a
/// restarted server resumes exactly where the crashed one stopped.
///
/// Recovery is O(state), not O(history): checkpoint() publishes a
/// CheckpointImage (database snapshot + dirty queue + sequence number)
/// and compacts the journal prefix it covers, and recover_from(image,
/// journal) restores the snapshot then replays only the post-checkpoint
/// suffix.  Full-history replay remains as the image-less path.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "core/checkpoint.hpp"
#include "core/state.hpp"
#include "data/lfn.hpp"
#include "db/database.hpp"
#include "workflow/dag.hpp"

namespace sphinx::obs {
class Recorder;
}  // namespace sphinx::obs

namespace sphinx::core {

/// Per-site statistics fed by tracker reports (feedback) and planning
/// decisions.  avg_completion is an EWMA persisted in the table so it
/// survives recovery.
struct SiteStats {
  SiteId site;
  std::int64_t completed = 0;
  std::int64_t cancelled = 0;
  double avg_completion = 0.0;  ///< EWMA of reported completion times
  std::int64_t samples = 0;     ///< completion reports folded in
};

/// A job row materialized from the warehouse.
struct JobRecord {
  JobId id;
  DagId dag;
  std::string name;
  JobState state = JobState::kUnplanned;
  SiteId site;                 ///< invalid until planned
  Duration compute_time = 0.0;
  data::Lfn output;
  double output_bytes = 0.0;
  int attempt = 0;
  SimTime planned_at = kNever;  ///< when the live attempt was planned
};

/// One speculative replication race (straggler defense).  While kRacing
/// the job's own row tracks the replica ("spec") attempt and this row
/// remembers the original ("primary") attempt; resolution retires one
/// side (see SpeculationState).
struct SpeculationRecord {
  JobId job;
  DagId dag;
  SiteId primary_site;
  int primary_attempt = 0;
  SimTime primary_planned_at = 0.0;  ///< for censored-duration bookkeeping
  SiteId spec_site;
  int spec_attempt = 0;
  SpeculationState state = SpeculationState::kRacing;
  SimTime launched_at = 0.0;
};

/// One in-flight outbound RPC call persisted for crash recovery.
struct OutboxEntry {
  std::uint64_t seq = 0;
  std::string service;
  std::string payload;   ///< serialized methodCall, retransmitted verbatim
  int attempt = 0;
  SimTime last_sent_at = 0.0;
};

/// A DAG row materialized from the warehouse.
struct DagRecord {
  DagId id;
  std::string name;
  std::string client;
  UserId user;
  DagState state = DagState::kReceived;
  SimTime received_at = 0.0;
  SimTime finished_at = kNever;
  std::int64_t total_jobs = 0;
  double priority = 0.0;  ///< request priority; higher is planned first
  SimTime deadline = kNever;  ///< QoS deadline; kNever = best effort
};

class DataWarehouse {
 public:
  /// Creates the schema in a fresh database.
  DataWarehouse();

  /// Rebuilds a warehouse from a crashed instance's journal by full
  /// replay.  The journal must start at sequence 0; once checkpointing
  /// compacted it, recovery must go through the image overload below.
  [[nodiscard]] static Expected<std::unique_ptr<DataWarehouse>> recover_from(
      const db::Journal& journal);

  /// Rebuilds a warehouse from a checkpoint image plus the crashed
  /// instance's journal: restores the snapshot, replays only the entries
  /// with sequence >= image.seq, and seeds the work-state rebuild from
  /// the image's dirty queue.  Handles both a compacted journal (crash
  /// after truncation) and an untruncated one (crash between snapshot
  /// publication and truncation -- recovery completes the truncation).
  [[nodiscard]] static Expected<std::unique_ptr<DataWarehouse>> recover_from(
      const CheckpointImage& checkpoint, const db::Journal& journal);

  /// The journal to persist elsewhere for crash recovery.
  [[nodiscard]] const db::Journal& journal() const { return db_.journal(); }

  // --- checkpointing ----------------------------------------------------
  /// Result of one checkpoint() call, for the caller's observability.
  struct CheckpointStats {
    std::uint64_t seq = 0;              ///< sequence the image reflects
    std::size_t compacted_records = 0;  ///< journal entries the image covers
    std::size_t snapshot_bytes = 0;     ///< size of the database snapshot
    bool truncated = false;  ///< false when mid_hook fail-stopped the run
  };

  /// Publishes a checkpoint image of the current state (database
  /// snapshot + dirty queue at the journal's next_seq) and truncates the
  /// journal prefix it covers.  `mid_hook`, when provided, runs between
  /// publication and truncation -- the chaos harness's mid-checkpoint
  /// kill point; returning true marks the instance as crashing and
  /// leaves the journal untruncated (the recovered instance finishes the
  /// truncation via recover_from, so a crash here is invisible).
  CheckpointStats checkpoint(
      SimTime now,
      const std::function<bool(const CheckpointImage&)>& mid_hook = {});

  /// The most recent checkpoint image: published by checkpoint() and
  /// carried across recover_from(), so a crash handler can always pair
  /// journal() with the image that anchors its sequence numbers.
  [[nodiscard]] const std::optional<CheckpointImage>& checkpoint_image()
      const noexcept {
    return checkpoint_;
  }

  // --- DAG lifecycle --------------------------------------------------
  void insert_dag(const workflow::Dag& dag, const std::string& client,
                  UserId user, SimTime now, double priority = 0.0,
                  SimTime deadline = kNever);
  [[nodiscard]] std::vector<DagRecord> dags_in_state(DagState state) const;
  [[nodiscard]] std::optional<DagRecord> dag(DagId id) const;
  void set_dag_state(DagId id, DagState state);
  void set_dag_finished(DagId id, SimTime at);
  [[nodiscard]] std::vector<DagRecord> all_dags() const;

  // --- job lifecycle --------------------------------------------------
  [[nodiscard]] std::optional<JobRecord> job(JobId id) const;
  [[nodiscard]] std::vector<JobRecord> jobs_of_dag(DagId id) const;
  [[nodiscard]] std::vector<JobRecord> jobs_in_state(JobState state) const;
  /// Transitions a job; `reason` is free-form context ("report:completed",
  /// "tracker-cancel", ...) carried into the flight-recorder trace.
  void set_job_state(JobId id, JobState state, std::string_view reason = {});
  /// Records a planning decision (state -> planned, attempt++).
  void set_job_planned(JobId id, SiteId site, SimTime at);
  [[nodiscard]] std::vector<data::Lfn> job_inputs(JobId id) const;
  [[nodiscard]] std::vector<JobId> job_parents(JobId id) const;
  /// Jobs that consume this job's output (dependency children).
  [[nodiscard]] std::vector<JobId> job_children(JobId id) const;
  /// Completed jobs of one DAG (for the ready-set computation).
  [[nodiscard]] std::unordered_set<JobId> completed_jobs(DagId dag) const;
  /// Jobs outstanding on a site (eq. 1/2's planned + unfinished term).
  /// Served from the live counter; O(1).
  [[nodiscard]] std::int64_t outstanding_on_site(SiteId site) const;
  /// All sites with outstanding work.  Served from the live counters
  /// maintained on job transitions -- no table scan.  Sites with zero
  /// outstanding jobs carry no entry.
  [[nodiscard]] std::unordered_map<SiteId, std::int64_t> outstanding_by_site()
      const;
  /// Recomputes the same map with a full scan of the jobs table.  Slow;
  /// exists so tests and the invariant sweep can cross-check the live
  /// counters against ground truth.
  [[nodiscard]] std::unordered_map<SiteId, std::int64_t>
  scan_outstanding_by_site() const;

  // --- work queue (dirty list) ------------------------------------------
  /// Enqueues a DAG for the next sweep.  Transitions that create planning
  /// work mark automatically; the server re-marks a DAG it leaves with
  /// unplanned jobs so blocked work is retried every sweep.  Idempotent.
  void mark_dag_dirty(DagId id);
  /// Removes and returns the queued DAGs as fresh records, in table
  /// insertion order (the order dags_in_state() used to yield), skipping
  /// DAGs that finished while queued.
  [[nodiscard]] std::vector<DagRecord> drain_dirty_dags();
  /// Snapshot of the queued DAG ids, in table insertion order.
  [[nodiscard]] std::vector<DagId> dirty_dags() const;

  // --- site statistics (feedback) --------------------------------------
  [[nodiscard]] SiteStats site_stats(SiteId site) const;
  void record_completion(SiteId site, Duration completion_time);
  /// Records a tracker-initiated cancellation.  `censored_duration` is
  /// how long the attempt had been outstanding when it was killed -- a
  /// lower bound on the site's true turnaround, folded into the EWMA as a
  /// censored observation so a black hole cannot keep a stale attractive
  /// average (it only ever "completes" nothing).
  void record_cancellation(SiteId site, Duration censored_duration = 0.0);
  /// Reliability rule from the paper: unreliable when more cancelled than
  /// completed jobs (section 4, "Importance of feedback information").
  [[nodiscard]] bool site_available(SiteId site) const;

  // --- straggler defense (speculative replication) ----------------------
  /// Records one completed attempt's runtime into the (site, job-class)
  /// sample ring the straggler detector learns percentiles from.  Rings
  /// are journaled (the detector's decisions must replay exactly on
  /// recovery) and bounded to kMaxRuntimeSamples per key: the oldest
  /// sample is evicted first.
  void record_runtime_sample(SiteId site, int job_class, Duration runtime);
  /// The (site, job-class) ring, oldest sample first.
  [[nodiscard]] std::vector<double> runtime_samples(SiteId site,
                                                    int job_class) const;
  /// The class's samples across every site (cold-site fallback: a site
  /// that never completed anything -- e.g. a black hole -- still gets a
  /// baseline to be judged against).
  [[nodiscard]] std::vector<double> runtime_samples_all_sites(
      int job_class) const;

  /// Opens a race: inserts a kRacing speculation row remembering the
  /// job's current ("primary") attempt and retargets the job row at the
  /// replica -- site = spec_site, attempt + 1, state back to kPlanned so
  /// the normal submitted/running reports of the replica apply.  This is
  /// a deliberate automaton regression (kSubmitted/kRunning -> kPlanned
  /// is illegal for single attempts), so it bypasses set_job_state under
  /// its own contract: job outstanding at a different site, no race
  /// already open.  Counters: the racing row carries the primary site's
  /// outstanding unit, the job row the replica's.
  void speculate_job(JobId id, SiteId spec_site, SimTime at);
  /// The job's open race, if any.
  [[nodiscard]] std::optional<SpeculationRecord> active_speculation(
      JobId id) const;
  /// The job's most recent race in any state (arbitration needs resolved
  /// races too: after kSpecDead the surviving primary reports under its
  /// own attempt number while the job row keeps the replica's).
  [[nodiscard]] std::optional<SpeculationRecord> latest_speculation(
      JobId id) const;
  /// Every open race, in launch order.
  [[nodiscard]] std::vector<SpeculationRecord> racing_speculations() const;
  /// Closes the job's open race.  kPrimaryWon/kSpecWon/kPrimaryDead
  /// retire the primary's outstanding unit (the job row keeps tracking
  /// the replica until set_job_state completes or cancels it);
  /// kSpecDead retargets the job row back at the primary site -- the
  /// attempt number stays at the replica's so a later replan can never
  /// reuse a burnt (job, attempt) pair against the client's duplicate
  /// guard -- and retires the replica's unit.
  void resolve_speculation(JobId id, SpeculationState final_state);

  // --- quotas (policy) --------------------------------------------------
  void set_quota(UserId user, SiteId site, const std::string& resource,
                 double limit);
  /// Remaining quota; +infinity when no quota row exists (unconstrained).
  [[nodiscard]] double quota_remaining(UserId user, SiteId site,
                                       const std::string& resource) const;
  /// Consumes quota; clamps at the limit.  No-op without a quota row.
  void consume_quota(UserId user, SiteId site, const std::string& resource,
                     double amount);
  /// Returns quota (used on replanning after a cancelled attempt).
  void refund_quota(UserId user, SiteId site, const std::string& resource,
                    double amount);

  // --- RPC outbox (reliable outbound calls) -----------------------------
  /// Inserts or refreshes the persisted state of one in-flight call.
  void outbox_upsert(std::uint64_t seq, const std::string& service,
                     const std::string& payload, int attempt,
                     SimTime last_sent_at);
  /// Drops a completed call.  No-op for an unknown sequence number.
  void outbox_erase(std::uint64_t seq);
  /// Every persisted in-flight call, ordered by sequence number.
  [[nodiscard]] std::vector<OutboxEntry> outbox_entries() const;

  // --- scheduler soft state --------------------------------------------
  /// Persists a scheduling-module key/value pair (e.g. a strategy's
  /// cursor) into the journaled `scheduler_state` table.  Writing the
  /// value already stored is a no-op, so unchanged state costs no
  /// journal growth.
  void set_scheduler_state(const std::string& key, const std::string& value);
  /// The stored value, or "" when the key was never written.
  [[nodiscard]] std::string scheduler_state(const std::string& key) const;

  [[nodiscard]] db::Database& database() noexcept { return db_; }

  /// Attaches a flight recorder; job transitions and planning decisions
  /// are traced as `source` (the owning server's endpoint).  The
  /// warehouse has no clock of its own -- the recorder stamps events
  /// with its engine's sim time.  Observation only.
  void set_recorder(obs::Recorder* recorder, std::string source);

  /// Semantic sweep over the whole warehouse: every job/dag state text
  /// parses, outstanding jobs have a site and at least one attempt,
  /// finished DAGs have a finish time, per-dag job counts match the
  /// recorded totals, site statistics counters are non-negative, quota
  /// usage is non-negative, the live outstanding counters agree with a
  /// scan of the jobs table, and every queued dirty DAG names a live,
  /// unfinished row.  Also runs the db layer's structural sweep.  O(total
  /// state) -- call from recovery and tests, not per sweep.  Throws
  /// ContractViolation on corruption; no-op when contracts are compiled
  /// out.
  void check_invariants() const;

  /// Incremental variant scoped to one DAG: its rows parse, outstanding
  /// jobs are placed and attempted, the job count matches the recorded
  /// total, and finish times are coherent.  O(jobs of that DAG), so the
  /// sweep can check just the DAGs it touched.
  void check_dag_invariants(DagId id) const;

 private:
  explicit DataWarehouse(bool create_schema);
  void create_schema();
  /// Rebuilds the outstanding counters from the recovered tables and the
  /// dirty queue by replaying the enqueue/clear rules over the journal
  /// (drain-ledger updates mark where sweeps cleared it) -- the queue is
  /// history, not a function of the final tables.
  void rebuild_work_state();
  [[nodiscard]] static JobRecord decode_job(const db::Row& row);
  [[nodiscard]] static DagRecord decode_dag(const db::Row& row);
  [[nodiscard]] static SpeculationRecord decode_speculation(const db::Row& row);
  [[nodiscard]] db::RowId site_stats_row(SiteId site) const;
  db::RowId quota_row(UserId user, SiteId site,
                      const std::string& resource) const;

  db::Database db_;
  /// Dirty-DAG work queue, keyed by dags-table row id so draining yields
  /// insertion order.  Derived state: never journaled, rebuilt on
  /// recovery by rebuild_work_state().  The annotation below lets
  /// sphinx-lint reject mutations from any other function -- a stray
  /// write would make recovered state diverge from the journal replay.
  std::set<db::RowId> dirty_rows_;  // sphinx-lint: derived(rebuild_work_state, insert_dag, set_dag_state, set_dag_finished, set_job_state, mark_dag_dirty, drain_dirty_dags)
  /// Live outstanding-jobs-per-site counters (zero entries erased so the
  /// map compares equal to a fresh scan).  Derived state like the queue.
  std::unordered_map<SiteId, std::int64_t> outstanding_;  // sphinx-lint: derived(rebuild_work_state, set_job_state, set_job_planned, speculate_job, resolve_speculation)
  /// Last published checkpoint image.  Written only when a checkpoint is
  /// published or carried across recovery -- any other write would let
  /// the image drift from the journal sequence it anchors.
  std::optional<CheckpointImage> checkpoint_;  // sphinx-lint: derived(checkpoint, recover_from)
  obs::Recorder* recorder_ = nullptr;
  std::string recorder_source_;
};

}  // namespace sphinx::core
