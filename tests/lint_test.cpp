// In-process coverage for every sphinx-lint rule (tools/sphinx_lint).
// Each case feeds a snippet through lint_source and checks which rules
// fire; the fixture trees under tools/sphinx_lint/fixtures are exercised
// end-to-end by the lint.fixtures_* ctest cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/json.hpp"
#include "linter.hpp"

namespace {

using sphinx::lint::Finding;
using sphinx::lint::lint_source;

/// A scratch tree on disk for analyze_tree() cases (cross-file taint,
/// duplicate streams, the registry).  Each test uses its own name:
/// gtest_discover_tests runs cases as separate processes, possibly in
/// parallel.
class TempTree {
 public:
  explicit TempTree(const std::string& name)
      : root_(std::filesystem::temp_directory_path() /
              ("sphinx_lint_test_" + name)) {
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  ~TempTree() { std::filesystem::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) const {
    const std::filesystem::path p = root_ / rel;
    std::filesystem::create_directories(p.parent_path());
    std::ofstream(p, std::ios::binary) << content;
  }

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path root_;
};

std::vector<std::string> rules_fired(const std::string& source,
                                     const std::string& path) {
  std::vector<std::string> out;
  for (const Finding& f : lint_source(source, path)) out.push_back(f.rule);
  return out;
}

bool fired(const std::vector<std::string>& rules, const std::string& rule) {
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

TEST(SphinxLint, CleanSourcePasses) {
  const std::string src = R"cpp(
    int add(int a, int b) { return a + b; }
  )cpp";
  EXPECT_TRUE(lint_source(src, "src/core/foo.cpp").empty());
}

TEST(SphinxLint, FlagsWallClocks) {
  const auto rules = rules_fired(
      "auto t = std::chrono::system_clock::now();\n"
      "auto u = std::chrono::steady_clock::now();\n"
      "auto v = time(nullptr);\n"
      "auto w = std::time(NULL);\n",
      "src/sim/foo.cpp");
  EXPECT_EQ(rules.size(), 4u);
  EXPECT_TRUE(fired(rules, "sim-clock"));
}

TEST(SphinxLint, MemberNamedTimeIsNotAClock) {
  const auto rules = rules_fired(
      "double t = event.time();\n"
      "double u = ptr->time();\n"
      "double v = compute_time(job);\n",
      "src/sim/foo.cpp");
  EXPECT_FALSE(fired(rules, "sim-clock"));
}

TEST(SphinxLint, FlagsAmbientRandomness) {
  const auto rules = rules_fired(
      "int a = rand();\n"
      "srand(42);\n"
      "std::random_device rd;\n",
      "tests/foo_test.cpp");
  EXPECT_EQ(rules.size(), 3u);
  EXPECT_TRUE(fired(rules, "sim-random"));
}

TEST(SphinxLint, WhitelistExemptsRngAndTimeHeaders) {
  const std::string src = "std::random_device rd;\n";
  EXPECT_TRUE(fired(rules_fired(src, "src/common/strings.cpp"), "sim-random"));
  EXPECT_FALSE(fired(rules_fired(src, "src/common/rng.hpp"), "sim-random"));
  EXPECT_FALSE(fired(rules_fired(src, "src/common/time.hpp"), "sim-random"));
}

TEST(SphinxLint, CommentsAndStringsAreStripped) {
  const auto rules = rules_fired(
      "// rand() and system_clock in a comment\n"
      "/* srand(1); time(nullptr); */\n"
      "const char* s = \"rand() inside a string\";\n"
      "const char* r = R\"(random_device in a raw string)\";\n",
      "src/core/foo.cpp");
  EXPECT_TRUE(rules.empty());
}

TEST(SphinxLint, DigitSeparatorsAreNotCharLiterals) {
  // A bad tokenizer would treat 1'000'000 as opening a char literal and
  // blank out the rand() call that follows.
  const auto rules = rules_fired(
      "long big = 1'000'000;\n"
      "int bad = rand();\n",
      "src/core/foo.cpp");
  EXPECT_TRUE(fired(rules, "sim-random"));
}

TEST(SphinxLint, FlagsDiscardedCallResults) {
  const auto rules = rules_fired(
      "(void)se->store(user, lfn, bytes);\n"
      "(void)dag.validate();\n",
      "src/data/foo.cpp");
  EXPECT_EQ(rules.size(), 2u);
  EXPECT_TRUE(fired(rules, "discarded-status"));
}

TEST(SphinxLint, VoidCastOfVariableIsAllowed) {
  const auto rules = rules_fired(
      "(void)unused_parameter;\n"
      "int f(void);\n",
      "src/core/foo.cpp");
  EXPECT_FALSE(fired(rules, "discarded-status"));
}

TEST(SphinxLint, GtestThrowAssertionsAreExempt) {
  const auto rules = rules_fired(
      "EXPECT_THROW((void)e.value(), AssertionError);\n"
      "ASSERT_THROW((void)s.error(), AssertionError);\n",
      "src/core/foo.cpp");
  EXPECT_FALSE(fired(rules, "discarded-status"));
}

TEST(SphinxLint, DiscardedStatusIsLibraryScoped) {
  // Tests and benches discard handles (submission ids, selector picks)
  // deliberately; the rule only polices library code.
  const std::string src = "(void)site.submit(job, nullptr);\n";
  EXPECT_TRUE(fired(rules_fired(src, "src/grid/foo.cpp"),
                    "discarded-status"));
  EXPECT_FALSE(fired(rules_fired(src, "tests/foo_test.cpp"),
                     "discarded-status"));
  EXPECT_FALSE(fired(rules_fired(src, "bench/foo.cpp"), "discarded-status"));
}

TEST(SphinxLint, FlagsNakedThrows) {
  const auto rules = rules_fired(
      "void f() { throw std::runtime_error(\"boom\"); }\n"
      "void g() { throw 42; }\n",
      "src/core/foo.cpp");
  EXPECT_EQ(rules.size(), 2u);
  EXPECT_TRUE(fired(rules, "naked-throw"));
}

TEST(SphinxLint, AssertionErrorThrowsAreLegal) {
  const auto rules = rules_fired(
      "throw AssertionError(\"bad state\");\n"
      "throw ::sphinx::AssertionError(\"bad state\");\n"
      "throw ::sphinx::ContractViolation(\"broken invariant\");\n"
      "try { f(); } catch (...) { throw; }\n",
      "src/core/foo.cpp");
  EXPECT_TRUE(rules.empty());
}

TEST(SphinxLint, FlagsIostreamInLibraryCodeOnly) {
  const std::string src = "#include <iostream>\n";
  EXPECT_TRUE(fired(rules_fired(src, "src/core/foo.cpp"), "iostream-include"));
  EXPECT_FALSE(fired(rules_fired(src, "tests/foo_test.cpp"),
                     "iostream-include"));
  EXPECT_FALSE(fired(rules_fired(src, "bench/foo.cpp"), "iostream-include"));
}

TEST(SphinxLint, HeaderHygiene) {
  const auto bad = rules_fired("#ifndef GUARD\n#define GUARD\n#endif\n",
                               "src/core/foo.hpp");
  EXPECT_TRUE(fired(bad, "pragma-once"));
  EXPECT_TRUE(fired(bad, "file-comment"));

  const auto good = rules_fired(
      "#pragma once\n/// \\file foo.hpp\n/// Does things.\n",
      "src/core/foo.hpp");
  EXPECT_TRUE(good.empty());

  // Sources are not held to header hygiene.
  EXPECT_TRUE(rules_fired("int x;\n", "src/core/foo.cpp").empty());
}

TEST(SphinxLint, InlineAllowWaivesARule) {
  const auto rules = rules_fired(
      "int a = rand();  // sphinx-lint-allow(sim-random): seeding torture\n"
      "int b = rand();\n",
      "src/core/foo.cpp");
  EXPECT_EQ(rules.size(), 1u);  // only the unwaived line fires
}

TEST(SphinxLint, FindingsCarryPathLineAndRule) {
  const auto findings = lint_source("int x;\nint y = rand();\n",
                                    "src/core/foo.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/core/foo.cpp");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].rule, "sim-random");
  EXPECT_NE(findings[0].to_string().find("src/core/foo.cpp:2:"),
            std::string::npos);
}

// --- ordered-escape ---------------------------------------------------

TEST(SphinxLint, OrderedEscapeFlagsHashIterationIntoSequence) {
  const auto rules = rules_fired(
      "std::unordered_map<int, double> active_;\n"
      "void f(std::vector<int>& out) {\n"
      "  for (const auto& [id, rate] : active_) out.push_back(id);\n"
      "}\n",
      "src/core/foo.cpp");
  EXPECT_TRUE(fired(rules, "ordered-escape"));
}

TEST(SphinxLint, OrderedEscapeFlagsAccumulationAndStreaming) {
  const auto rules = rules_fired(
      "std::unordered_set<int> ids_;\n"
      "double g() {\n"
      "  double total = 0.0;\n"
      "  for (int id : ids_) total += weight(id);\n"
      "  return total;\n"
      "}\n",
      "src/core/foo.cpp");
  EXPECT_TRUE(fired(rules, "ordered-escape"));
}

TEST(SphinxLint, OrderedEscapeIgnoresCommutativeLoops) {
  const auto rules = rules_fired(
      "std::unordered_map<int, double> active_;\n"
      "int count_hot() {\n"
      "  int hot = 0;\n"
      "  for (const auto& [id, rate] : active_) {\n"
      "    if (rate > 1.0) ++hot;\n"
      "  }\n"
      "  return hot;\n"
      "}\n",
      "src/core/foo.cpp");
  EXPECT_FALSE(fired(rules, "ordered-escape"));
}

TEST(SphinxLint, OrderedEscapeFlagsPointerKeyedOrderedMap) {
  // std::map keyed by pointer iterates in address order -- just as
  // unstable across runs as a hash container.
  const auto rules = rules_fired(
      "std::map<const Site*, int> by_site_;\n"
      "void dump(std::vector<int>& out) {\n"
      "  for (const auto& [site, n] : by_site_) out.push_back(n);\n"
      "}\n",
      "src/core/foo.cpp");
  EXPECT_TRUE(fired(rules, "ordered-escape"));
}

TEST(SphinxLint, OrderedEscapeValueKeyedMapIsClean) {
  const auto rules = rules_fired(
      "std::map<int, int> by_id_;\n"
      "void dump(std::vector<int>& out) {\n"
      "  for (const auto& [id, n] : by_id_) out.push_back(n);\n"
      "}\n",
      "src/core/foo.cpp");
  EXPECT_FALSE(fired(rules, "ordered-escape"));
}

TEST(SphinxLint, OrderedEscapeAckWaivesTheFile) {
  const auto rules = rules_fired(
      "// sphinx-lint: ordered-escape-checked -- sink is re-sorted below\n"
      "std::unordered_map<int, double> active_;\n"
      "void f(std::vector<int>& out) {\n"
      "  for (const auto& [id, rate] : active_) out.push_back(id);\n"
      "}\n",
      "src/core/foo.cpp");
  EXPECT_FALSE(fired(rules, "ordered-escape"));
}

TEST(SphinxLint, OrderedEscapeTaintCrossesHeaderSourcePairs) {
  // The gridftp shape: the container is a member declared in the
  // header, the escaping loop lives in the .cpp.
  TempTree tree("cross_taint");
  tree.write("src/core/track.hpp",
             "#pragma once\n/// \\file track.hpp\n/// Fixture.\n"
             "#include <unordered_map>\n"
             "struct T { std::unordered_map<int, double> active_; };\n");
  tree.write("src/core/track.cpp",
             "/// \\file track.cpp\n"
             "#include \"track.hpp\"\n"
             "void T_dump(T& t, std::vector<int>& out) {\n"
             "  for (const auto& [id, r] : t.active_) out.push_back(id);\n"
             "}\n");
  const auto report = sphinx::lint::analyze_tree(tree.root(), {"src"},
                                                 {"ordered-escape"});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].path, "src/core/track.cpp");
  EXPECT_EQ(report.findings[0].rule, "ordered-escape");
}

// --- rng stream discipline --------------------------------------------

TEST(SphinxLint, RngStreamLabelMustStartWithLiteral) {
  EXPECT_TRUE(fired(rules_fired("auto r = seeds.stream(label);\n",
                                "src/core/foo.cpp"),
                    "rng-stream-literal"));
  EXPECT_TRUE(fired(
      rules_fired("auto r = seeds.stream(\"site\" + name);\n",
                  "src/core/foo.cpp"),
      "rng-stream-literal"));
  EXPECT_FALSE(fired(rules_fired("auto r = seeds.stream(\"bus\");\n",
                                 "src/core/foo.cpp"),
                     "rng-stream-literal"));
  EXPECT_FALSE(fired(
      rules_fired("auto r = seeds.stream(\"site/\" + name);\n",
                  "src/core/foo.cpp"),
      "rng-stream-literal"));
}

TEST(SphinxLint, RngRawConstructionSpellings) {
  EXPECT_TRUE(fired(rules_fired("auto r = Rng(7);\n", "src/core/foo.cpp"),
                    "rng-raw"));
  EXPECT_TRUE(fired(rules_fired("Rng rng(seed);\n", "src/core/foo.cpp"),
                    "rng-raw"));
  EXPECT_TRUE(fired(rules_fired("Rng rng{seed};\n", "src/core/foo.cpp"),
                    "rng-raw"));
  // Signatures returning Rng are not constructions.
  EXPECT_FALSE(fired(
      rules_fired("Rng make_stream(std::uint64_t seed);\n",
                  "src/core/foo.cpp"),
      "rng-raw"));
  EXPECT_FALSE(fired(rules_fired("explicit Rng(std::uint64_t seed);\n",
                                 "src/core/foo.cpp"),
                     "rng-raw"));
  // Tests drive units in isolation; raw Rng is fine there.
  EXPECT_FALSE(fired(rules_fired("Rng rng(42);\n", "tests/foo_test.cpp"),
                     "rng-raw"));
}

TEST(SphinxLint, DuplicateStreamAcrossModulesFires) {
  TempTree tree("dup_streams");
  const std::string user =
      "struct S { int stream(const std::string& l) const; };\n"
      "int f(const S& seeds) { return seeds.stream(\"shared\"); }\n";
  tree.write("src/alpha/one.cpp", "/// \\file one.cpp\n" + user);
  tree.write("src/beta/two.cpp", "/// \\file two.cpp\n" + user);
  const auto report = sphinx::lint::analyze_tree(
      tree.root(), {"src"}, {"rng-stream-duplicate"});
  ASSERT_EQ(report.findings.size(), 2u);  // both declaring sites named
  EXPECT_EQ(report.findings[0].rule, "rng-stream-duplicate");
  // The registry still lists the stream once per declaring file.
  ASSERT_EQ(report.streams.size(), 2u);
  EXPECT_EQ(report.streams[0].name, "shared");
}

TEST(SphinxLint, SameStreamWithinOneModuleIsFine) {
  TempTree tree("same_module_streams");
  const std::string user =
      "struct S { int stream(const std::string& l) const; };\n"
      "int f(const S& seeds) { return seeds.stream(\"shared\"); }\n";
  tree.write("src/alpha/one.cpp", "/// \\file one.cpp\n" + user);
  tree.write("src/alpha/two.cpp", "/// \\file two.cpp\n" + user);
  const auto report = sphinx::lint::analyze_tree(
      tree.root(), {"src"}, {"rng-stream-duplicate"});
  EXPECT_TRUE(report.findings.empty());
}

TEST(SphinxLint, RngRegistryMarkdownListsStreams) {
  TempTree tree("registry");
  tree.write("src/grid/g.cpp",
             "/// \\file g.cpp\n"
             "struct S { int stream(const std::string& l) const; };\n"
             "int f(const S& seeds, const std::string& n) {\n"
             "  return seeds.stream(\"site/\" + n) + seeds.stream(\"bus\");\n"
             "}\n");
  const auto report = sphinx::lint::analyze_tree(tree.root(), {"src"}, {});
  const std::string md = sphinx::lint::rng_registry_markdown(report.streams);
  EXPECT_NE(md.find("| `bus` | literal | src/grid | src/grid/g.cpp |"),
            std::string::npos);
  EXPECT_NE(md.find("| `site/*` | family | src/grid | src/grid/g.cpp |"),
            std::string::npos);
}

// --- derived-state ----------------------------------------------------

TEST(SphinxLint, DerivedStateMutationOutsideAllowedFunctionFires) {
  const auto findings = lint_source(
      "#pragma once\n"
      "/// \\file cache.hpp\n"
      "/// Fixture.\n"
      "class C {\n"
      " public:\n"
      "  void rebuild() { dirty_.clear(); dirty_.insert(1); }\n"
      "  void poke() { dirty_.insert(2); }\n"
      "  std::size_t size() const { return dirty_.size(); }\n"
      " private:\n"
      "  std::set<int> dirty_;  // sphinx-lint: derived(rebuild)\n"
      "};\n",
      "src/core/cache.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "derived-state");
  EXPECT_EQ(findings[0].line, 7u);  // the poke() mutation
}

TEST(SphinxLint, DerivedStateAnnotationCrossesHeaderSourcePairs) {
  TempTree tree("derived_cross");
  tree.write("src/core/cache.hpp",
             "#pragma once\n/// \\file cache.hpp\n/// Fixture.\n"
             "#include <set>\n"
             "class Cache {\n"
             " public:\n"
             "  void rebuild();\n"
             "  void poke();\n"
             " private:\n"
             "  std::set<int> dirty_;  // sphinx-lint: derived(rebuild)\n"
             "};\n");
  tree.write("src/core/cache.cpp",
             "/// \\file cache.cpp\n"
             "#include \"cache.hpp\"\n"
             "void Cache::rebuild() { dirty_.clear(); }\n"
             "void Cache::poke() { dirty_.insert(2); }\n");
  const auto report = sphinx::lint::analyze_tree(tree.root(), {"src"},
                                                 {"derived-state"});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].path, "src/core/cache.cpp");
  EXPECT_EQ(report.findings[0].line, 4u);
}

// --- observe-only -----------------------------------------------------

TEST(SphinxLint, ObserveOnlyPolicesObsModule) {
  const std::string rng_use = "Rng rng_;\n";
  EXPECT_TRUE(fired(rules_fired(rng_use, "src/obs/spy.cpp"), "observe-only"));
  EXPECT_FALSE(fired(rules_fired(rng_use, "src/grid/site.cpp"),
                     "observe-only"));

  EXPECT_TRUE(fired(
      rules_fired("auto r = seeds.stream(\"obs/x\");\n", "src/obs/spy.cpp"),
      "observe-only"));
  EXPECT_TRUE(fired(
      rules_fired("#include \"core/warehouse.hpp\"\n", "src/obs/spy.cpp"),
      "observe-only"));
  EXPECT_FALSE(fired(
      rules_fired("double mean(double a, double b) { return (a + b) / 2; }\n",
                  "src/obs/export.cpp"),
      "observe-only"));
}

// --- catalog + JSON output --------------------------------------------

TEST(SphinxLint, CatalogListsEveryRuleWithExplanation) {
  const auto rules = sphinx::lint::rule_list();
  ASSERT_GE(rules.size(), 13u);
  for (const auto& [id, summary] : rules) {
    EXPECT_FALSE(summary.empty()) << id;
    EXPECT_FALSE(sphinx::lint::rule_explain(id).empty()) << id;
  }
  EXPECT_TRUE(sphinx::lint::rule_explain("no-such-rule").empty());
}

TEST(SphinxLint, FindingsJsonRoundTripsThroughRepoParser) {
  const auto findings = lint_source(
      "int a = rand();\n"
      "auto r = Rng(7);\n",
      "src/core/foo.cpp");
  ASSERT_EQ(findings.size(), 2u);

  const std::string json = sphinx::lint::findings_json(findings);
  const auto parsed = sphinx::chaos::parse_json(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  ASSERT_TRUE(parsed.value().is_array());
  ASSERT_EQ(parsed.value().array.size(), findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& obj = parsed.value().array[i];
    ASSERT_TRUE(obj.is_object());
    EXPECT_EQ(obj.find("path")->text, findings[i].path);
    EXPECT_EQ(static_cast<std::size_t>(obj.find("line")->number),
              findings[i].line);
    EXPECT_EQ(obj.find("rule")->text, findings[i].rule);
    // Messages contain quotes (code suggestions); escaping must hold.
    EXPECT_EQ(obj.find("message")->text, findings[i].message);
  }
}

TEST(SphinxLint, EmptyFindingsJsonIsAnEmptyArray) {
  const auto parsed = sphinx::chaos::parse_json(sphinx::lint::findings_json({}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed.value().is_array());
  EXPECT_TRUE(parsed.value().array.empty());
}

}  // namespace
