#include "ctrl/lease.hpp"

#include "common/contracts.hpp"

namespace sphinx::ctrl {
namespace {

constexpr const char* kTable = "lease";

}  // namespace

LeaseTable::LeaseTable() : db_(std::make_unique<db::Database>()) {
  table_ = &db_->create_table(
      kTable, db::Schema{db::indexed("shard", db::ValueType::kText),
                         {"owner", db::ValueType::kText},
                         {"epoch", db::ValueType::kInt},
                         {"expires_at", db::ValueType::kReal},
                         {"live", db::ValueType::kBool}});
}

Lease LeaseTable::from_row(const db::Row& row) {
  Lease lease;
  lease.shard = row.cells[0].as_text();
  lease.owner = row.cells[1].as_text();
  lease.epoch = static_cast<std::uint64_t>(row.cells[2].as_int());
  lease.expires_at = row.cells[3].as_real();
  lease.live = row.cells[4].as_bool();
  return lease;
}

std::uint64_t LeaseTable::grant(const std::string& shard,
                                const std::string& owner, SimTime now,
                                Duration ttl) {
  SPHINX_PRECONDITION(ttl > 0, "lease ttl must be positive");
  SPHINX_PRECONDITION(
      table_->find_first("shard", db::Value(shard)) == nullptr,
      "shard already holds a lease; use transfer() to rebind it");
  table_->insert({db::Value(shard), db::Value(owner),
                  db::Value(std::int64_t{1}), db::Value(now + ttl),
                  db::Value(true)});
  return 1;
}

RenewOutcome LeaseTable::renew(const std::string& shard,
                               const std::string& owner, std::uint64_t epoch,
                               SimTime now, Duration ttl) {
  const db::Row* row = table_->find_first("shard", db::Value(shard));
  if (row == nullptr) return RenewOutcome::kUnknownShard;
  const Lease lease = from_row(*row);
  if (!lease.live || lease.owner != owner || lease.epoch != epoch) {
    return RenewOutcome::kFenced;
  }
  table_->update(row->id, "expires_at", db::Value(now + ttl));
  return RenewOutcome::kRenewed;
}

std::vector<Lease> LeaseTable::expired(SimTime now) const {
  std::vector<Lease> out;
  table_->for_each([&](const db::Row& row) {
    const Lease lease = from_row(row);
    if (lease.live && lease.expires_at <= now) out.push_back(lease);
  });
  return out;
}

std::vector<Lease> LeaseTable::dead() const {
  std::vector<Lease> out;
  table_->for_each([&](const db::Row& row) {
    const Lease lease = from_row(row);
    if (!lease.live) out.push_back(lease);
  });
  return out;
}

void LeaseTable::mark_expired(const std::string& shard) {
  const db::Row* row = table_->find_first("shard", db::Value(shard));
  SPHINX_PRECONDITION(row != nullptr, "expiring a lease that was never granted");
  table_->update(row->id, "live", db::Value(false));
}

std::uint64_t LeaseTable::transfer(const std::string& shard,
                                   const std::string& new_owner, SimTime now,
                                   Duration ttl) {
  SPHINX_PRECONDITION(ttl > 0, "lease ttl must be positive");
  const db::Row* row = table_->find_first("shard", db::Value(shard));
  SPHINX_PRECONDITION(row != nullptr,
                      "transferring a lease that was never granted");
  const auto epoch = static_cast<std::uint64_t>(row->cells[2].as_int()) + 1;
  const db::RowId id = row->id;
  table_->update(id, "owner", db::Value(new_owner));
  table_->update(id, "epoch", db::Value(static_cast<std::int64_t>(epoch)));
  table_->update(id, "expires_at", db::Value(now + ttl));
  table_->update(id, "live", db::Value(true));
  return epoch;
}

std::optional<Lease> LeaseTable::lookup(const std::string& shard) const {
  const db::Row* row = table_->find_first("shard", db::Value(shard));
  if (row == nullptr) return std::nullopt;
  return from_row(*row);
}

std::optional<std::string> LeaseTable::first_live_owner(
    SimTime now, const std::string& exclude) const {
  std::optional<std::string> found;
  table_->for_each([&](const db::Row& row) {
    if (found.has_value()) return;
    const Lease lease = from_row(row);
    if (lease.live && lease.expires_at > now && lease.owner != exclude) {
      found = lease.owner;
    }
  });
  return found;
}

std::vector<Lease> LeaseTable::leases() const {
  std::vector<Lease> out;
  out.reserve(table_->size());
  table_->for_each([&](const db::Row& row) { out.push_back(from_row(row)); });
  return out;
}

StatusOrError LeaseTable::recover_from(const db::Journal& journal) {
  SPHINX_PRECONDITION(table_->size() == 0,
                      "recover_from() requires a never-mutated table");
  // Full replay needs an empty store, and the crashed journal's first
  // record recreates the lease table anyway: replay into a fresh
  // database and swap it in wholesale.
  auto replayed = std::make_unique<db::Database>();
  if (auto status = replayed->recover(journal); !status.ok()) return status;
  if (!replayed->has_table(kTable)) {
    return make_error("recover_lease", "journal holds no lease table");
  }
  table_ = &replayed->table(kTable);
  db_ = std::move(replayed);
  return {};
}

}  // namespace sphinx::ctrl
