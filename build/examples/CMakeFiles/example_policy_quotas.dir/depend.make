# Empty dependencies file for example_policy_quotas.
# This may be replaced when dependencies are built.
