#include "data/gridftp.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sphinx::data {
namespace {
constexpr double kEpsilonBytes = 1e-6;  // snap tiny residues to done
}

TransferService::TransferService(sim::Engine& engine) : engine_(engine) {}

void TransferService::set_link(SiteId site, LinkConfig link) {
  SPHINX_ASSERT(link.uplink_bps > 0 && link.downlink_bps > 0,
                "link capacities must be positive");
  links_[site] = link;
}

LinkConfig TransferService::link(SiteId site) const {
  const auto it = links_.find(site);
  return it == links_.end() ? LinkConfig{} : it->second;
}

Duration TransferService::estimate(SiteId src, SiteId dst,
                                   double bytes) const {
  if (src == dst || bytes <= 0) return 0.0;
  const double rate = std::min(link(src).uplink_bps, link(dst).downlink_bps);
  return bytes / rate;
}

TransferId TransferService::transfer(SiteId src, SiteId dst, double bytes,
                                     Callback done) {
  SPHINX_ASSERT(done != nullptr, "transfer callback must not be null");
  SPHINX_ASSERT(bytes >= 0, "transfer size must be non-negative");
  const TransferId id = ids_.next();
  ++stats_.started;

  if (src == dst || bytes <= 0) {
    // Local replica: no WAN movement.  Complete on the next tick so the
    // caller's bookkeeping finishes first.
    ++stats_.completed;
    stats_.bytes_moved += bytes;
    engine_.schedule_in(0.0, "gridftp:local",
                        [done = std::move(done), id] { done(id, 0.0); });
    return id;
  }

  advance_to_now();
  Active a;
  a.src = src;
  a.dst = dst;
  a.remaining = bytes;
  a.started_at = engine_.now();
  a.done = std::move(done);
  active_.emplace(id, std::move(a));
  rebalance();
  return id;
}

void TransferService::cancel(TransferId id) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  advance_to_now();
  active_.erase(it);
  ++stats_.cancelled;
  rebalance();
}

void TransferService::advance_to_now() {
  const SimTime now = engine_.now();
  const Duration dt = now - last_update_;
  if (dt > 0) {
    for (auto& [id, a] : active_) {
      a.remaining = std::max(0.0, a.remaining - a.rate * dt);
      stats_.bytes_moved += a.rate * dt;
    }
  }
  last_update_ = now;
}

void TransferService::rebalance() {
  // Count active flows per uplink and downlink.
  std::unordered_map<SiteId, int> up_count;
  std::unordered_map<SiteId, int> down_count;
  for (const auto& [id, a] : active_) {
    ++up_count[a.src];
    ++down_count[a.dst];
  }
  for (auto& [id, a] : active_) {
    const double up_share = link(a.src).uplink_bps / up_count[a.src];
    const double down_share = link(a.dst).downlink_bps / down_count[a.dst];
    a.rate = std::min(up_share, down_share);
  }
  schedule_next_completion();
}

void TransferService::schedule_next_completion() {
  engine_.cancel(next_completion_);
  next_completion_ = sim::EventHandle{};
  due_.clear();
  if (active_.empty()) return;

  Duration soonest = kNever;
  for (const auto& [id, a] : active_) {
    if (a.rate <= 0) continue;
    const Duration eta = a.remaining / a.rate;
    if (eta < soonest) soonest = eta;
  }
  if (soonest == kNever) return;
  // Transfers whose ETA (numerically) equals the minimum are *due*: they
  // will be force-completed when the event fires, so floating-point
  // residue can never strand a transfer in a zero-progress reschedule
  // loop.  A small relative window also batches near-simultaneous ends.
  const Duration window = soonest + 1e-9 * (1.0 + soonest);
  for (const auto& [id, a] : active_) {
    if (a.rate > 0 && a.remaining / a.rate <= window) due_.push_back(id);
  }

  next_completion_ = engine_.schedule_in(
      soonest, "gridftp:complete", [this] {
        advance_to_now();
        for (const TransferId id : due_) {
          const auto it = active_.find(id);
          if (it != active_.end()) it->second.remaining = 0.0;
        }
        // Collect every transfer that has drained (ties complete together).
        std::vector<std::pair<TransferId, Active>> finished;
        for (auto it = active_.begin(); it != active_.end();) {
          if (it->second.remaining <= kEpsilonBytes) {
            finished.emplace_back(it->first, std::move(it->second));
            it = active_.erase(it);
          } else {
            ++it;
          }
        }
        rebalance();
        for (auto& [id, a] : finished) {
          ++stats_.completed;
          a.done(id, engine_.now() - a.started_at);
        }
      });
}

}  // namespace sphinx::data
