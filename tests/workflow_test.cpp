// Tests for the workflow layer: DAG structure, the paper-workload
// generator, and the Chimera-style virtual data catalog.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "data/rls.hpp"
#include "workflow/chimera.hpp"
#include "workflow/dag.hpp"
#include "workflow/generator.hpp"

namespace sphinx::workflow {
namespace {

JobSpec make_job(JobId id, const std::string& name,
                 std::vector<data::Lfn> inputs, data::Lfn output) {
  JobSpec job;
  job.id = id;
  job.name = name;
  job.inputs = std::move(inputs);
  job.output = std::move(output);
  job.output_bytes = 1e6;
  return job;
}

/// A diamond: a -> {b, c} -> d.
Dag diamond() {
  Dag dag(DagId(1), "diamond");
  dag.add_job(make_job(JobId(1), "a", {"lfn://x"}, "lfn://a"));
  dag.add_job(make_job(JobId(2), "b", {"lfn://a"}, "lfn://b"));
  dag.add_job(make_job(JobId(3), "c", {"lfn://a"}, "lfn://c"));
  dag.add_job(make_job(JobId(4), "d", {"lfn://b", "lfn://c"}, "lfn://d"));
  dag.add_edge(JobId(1), JobId(2));
  dag.add_edge(JobId(1), JobId(3));
  dag.add_edge(JobId(2), JobId(4));
  dag.add_edge(JobId(3), JobId(4));
  return dag;
}

TEST(Dag, StructureAccessors) {
  const Dag dag = diamond();
  EXPECT_EQ(dag.size(), 4u);
  EXPECT_TRUE(dag.has_job(JobId(2)));
  EXPECT_FALSE(dag.has_job(JobId(99)));
  EXPECT_EQ(dag.job(JobId(4)).name, "d");
  EXPECT_EQ(dag.parents(JobId(4)).size(), 2u);
  EXPECT_EQ(dag.children(JobId(1)).size(), 2u);
  EXPECT_EQ(dag.roots(), std::vector<JobId>{JobId(1)});
}

TEST(Dag, DuplicateJobAndEdgeHandling) {
  Dag dag(DagId(1), "x");
  dag.add_job(make_job(JobId(1), "a", {}, "lfn://a"));
  dag.add_job(make_job(JobId(2), "b", {"lfn://a"}, "lfn://b"));
  EXPECT_THROW(dag.add_job(make_job(JobId(1), "dup", {}, "lfn://z")),
               AssertionError);
  dag.add_edge(JobId(1), JobId(2));
  dag.add_edge(JobId(1), JobId(2));  // ignored
  EXPECT_EQ(dag.children(JobId(1)).size(), 1u);
  EXPECT_THROW(dag.add_edge(JobId(1), JobId(1)), AssertionError);
  EXPECT_THROW(dag.add_edge(JobId(1), JobId(42)), AssertionError);
}

TEST(Dag, ReadyJobsFollowDependencies) {
  const Dag dag = diamond();
  std::unordered_set<JobId> done;
  EXPECT_EQ(dag.ready_jobs(done), std::vector<JobId>{JobId(1)});
  done.insert(JobId(1));
  EXPECT_EQ(dag.ready_jobs(done), (std::vector<JobId>{JobId(2), JobId(3)}));
  done.insert(JobId(2));
  EXPECT_EQ(dag.ready_jobs(done), std::vector<JobId>{JobId(3)});
  done.insert(JobId(3));
  EXPECT_EQ(dag.ready_jobs(done), std::vector<JobId>{JobId(4)});
  done.insert(JobId(4));
  EXPECT_TRUE(dag.ready_jobs(done).empty());
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag dag = diamond();
  const auto order = dag.topological_order();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  const auto pos = [&](JobId id) {
    return std::find(order->begin(), order->end(), id) - order->begin();
  };
  EXPECT_LT(pos(JobId(1)), pos(JobId(2)));
  EXPECT_LT(pos(JobId(1)), pos(JobId(3)));
  EXPECT_LT(pos(JobId(2)), pos(JobId(4)));
  EXPECT_LT(pos(JobId(3)), pos(JobId(4)));
}

TEST(Dag, CycleDetected) {
  Dag dag(DagId(1), "cyclic");
  dag.add_job(make_job(JobId(1), "a", {"lfn://b"}, "lfn://a"));
  dag.add_job(make_job(JobId(2), "b", {"lfn://a"}, "lfn://b"));
  dag.add_edge(JobId(1), JobId(2));
  dag.add_edge(JobId(2), JobId(1));
  EXPECT_FALSE(dag.topological_order().has_value());
  const auto status = dag.validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "dag_cycle");
}

TEST(Dag, ValidateChecksDataflow) {
  Dag dag(DagId(1), "bad-flow");
  dag.add_job(make_job(JobId(1), "a", {}, "lfn://a"));
  dag.add_job(make_job(JobId(2), "b", {"lfn://other"}, "lfn://b"));
  dag.add_edge(JobId(1), JobId(2));  // b does not consume a's output
  const auto status = dag.validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "dag_dataflow");
  EXPECT_TRUE(diamond().validate().ok());
}

class GeneratorFixture : public ::testing::Test {
 protected:
  GeneratorFixture()
      : sites{SiteId(1), SiteId(2), SiteId(3)},
        generator(WorkloadConfig{}, Rng(42), ids, rls, sites) {}

  IdSpace ids;
  data::ReplicaLocationService rls;
  std::vector<SiteId> sites;
  WorkloadGenerator generator;
};

TEST_F(GeneratorFixture, MatchesPaperWorkloadShape) {
  const Dag dag = generator.generate("exp");
  EXPECT_EQ(dag.size(), 10u);  // 10 jobs per DAG
  EXPECT_TRUE(dag.validate().ok());
  for (const JobSpec& job : dag.jobs()) {
    EXPECT_GE(job.inputs.size(), 2u);  // two or three input files
    EXPECT_LE(job.inputs.size(), 3u);
    EXPECT_DOUBLE_EQ(job.compute_time, 60.0);  // one minute compute
    EXPECT_GT(job.output_bytes, 0.0);
    EXPECT_FALSE(job.output.empty());
  }
}

TEST_F(GeneratorFixture, OutputSizesDiffer) {
  const Dag dag = generator.generate("exp");
  std::unordered_set<double> sizes;
  for (const JobSpec& job : dag.jobs()) sizes.insert(job.output_bytes);
  EXPECT_EQ(sizes.size(), dag.size());  // "different for each job"
}

TEST_F(GeneratorFixture, ExternalInputsRegisteredInRls) {
  const Dag dag = generator.generate("exp");
  for (const JobSpec& job : dag.jobs()) {
    for (const data::Lfn& input : job.inputs) {
      const bool is_parent_output =
          std::any_of(dag.jobs().begin(), dag.jobs().end(),
                      [&](const JobSpec& j) { return j.output == input; });
      if (!is_parent_output) {
        EXPECT_TRUE(rls.exists(input)) << input;
        const auto replicas = rls.locate(input);
        ASSERT_FALSE(replicas.empty());
        EXPECT_GE(replicas[0].size_bytes, 60e6);
        EXPECT_LE(replicas[0].size_bytes, 180e6);
      }
    }
  }
}

TEST_F(GeneratorFixture, IdsUniqueAcrossBatch) {
  const auto batch = generator.generate_batch("exp", 5);
  ASSERT_EQ(batch.size(), 5u);
  std::unordered_set<JobId> jobs;
  std::unordered_set<DagId> dags;
  for (const Dag& dag : batch) {
    EXPECT_TRUE(dags.insert(dag.id()).second);
    for (const JobSpec& job : dag.jobs()) {
      EXPECT_TRUE(jobs.insert(job.id).second);
    }
  }
  EXPECT_EQ(jobs.size(), 50u);
}

TEST_F(GeneratorFixture, DeterministicForSameSeed) {
  IdSpace ids2;
  data::ReplicaLocationService rls2;
  WorkloadGenerator twin(WorkloadConfig{}, Rng(42), ids2, rls2, sites);
  const Dag a = generator.generate("exp");
  const Dag b = twin.generate("exp");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs()[i].inputs, b.jobs()[i].inputs);
    EXPECT_DOUBLE_EQ(a.jobs()[i].output_bytes, b.jobs()[i].output_bytes);
  }
}

TEST_F(GeneratorFixture, SomeDagsHaveRealDependencies) {
  // Random structure: over a batch, at least some non-root jobs exist.
  const auto batch = generator.generate_batch("exp", 10);
  std::size_t non_roots = 0;
  for (const Dag& dag : batch) {
    non_roots += dag.size() - dag.roots().size();
  }
  EXPECT_GT(non_roots, 10u);
}

TEST_F(GeneratorFixture, ReplicaCountRespectsConfig) {
  WorkloadConfig config;
  config.external_replicas = 2;
  IdSpace ids2;
  data::ReplicaLocationService rls2;
  WorkloadGenerator gen(config, Rng(7), ids2, rls2, sites);
  const Dag dag = gen.generate("multi");
  bool saw_external = false;
  for (const JobSpec& job : dag.jobs()) {
    for (const data::Lfn& input : job.inputs) {
      if (rls2.exists(input)) {
        saw_external = true;
        EXPECT_EQ(rls2.locate(input).size(), 2u);
      }
    }
  }
  EXPECT_TRUE(saw_external);
}

TEST(VirtualDataCatalog, CompilesDerivationClosure) {
  VirtualDataCatalog vdc;
  vdc.add_transformation({"reco", 120.0});
  vdc.add_transformation({"analyze", 60.0});
  ASSERT_TRUE(vdc.add_derivation({"reco", {"lfn://raw1"}, "lfn://reco1", 1e6}).ok());
  ASSERT_TRUE(vdc.add_derivation({"reco", {"lfn://raw2"}, "lfn://reco2", 1e6}).ok());
  ASSERT_TRUE(vdc.add_derivation(
                     {"analyze", {"lfn://reco1", "lfn://reco2"}, "lfn://plot", 1e5})
                  .ok());

  IdSpace ids;
  const auto dag = vdc.request("lfn://plot", ids, "analysis");
  ASSERT_TRUE(dag.has_value());
  EXPECT_EQ(dag->size(), 3u);
  EXPECT_TRUE(dag->validate().ok());
  // The plot job depends on both reco jobs.
  const auto order = dag->topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(dag->job(order->back()).output, "lfn://plot");
  EXPECT_EQ(dag->parents(order->back()).size(), 2u);
  // Compute times come from the transformations.
  EXPECT_DOUBLE_EQ(dag->job(order->back()).compute_time, 60.0);
  EXPECT_DOUBLE_EQ(dag->job(order->front()).compute_time, 120.0);
}

TEST(VirtualDataCatalog, SharedAncestorCompiledOnce) {
  VirtualDataCatalog vdc;
  vdc.add_transformation({"t", 10.0});
  ASSERT_TRUE(vdc.add_derivation({"t", {}, "lfn://base", 1.0}).ok());
  ASSERT_TRUE(vdc.add_derivation({"t", {"lfn://base"}, "lfn://l", 1.0}).ok());
  ASSERT_TRUE(vdc.add_derivation({"t", {"lfn://base"}, "lfn://r", 1.0}).ok());
  ASSERT_TRUE(
      vdc.add_derivation({"t", {"lfn://l", "lfn://r"}, "lfn://top", 1.0}).ok());
  IdSpace ids;
  const auto dag = vdc.request("lfn://top", ids, "diamond");
  ASSERT_TRUE(dag.has_value());
  EXPECT_EQ(dag->size(), 4u);  // base appears once, not twice
}

TEST(VirtualDataCatalog, Errors) {
  VirtualDataCatalog vdc;
  EXPECT_FALSE(vdc.add_derivation({"missing", {}, "lfn://x", 1.0}).ok());
  vdc.add_transformation({"t", 1.0});
  ASSERT_TRUE(vdc.add_derivation({"t", {}, "lfn://x", 1.0}).ok());
  const auto dup = vdc.add_derivation({"t", {}, "lfn://x", 1.0});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, "vdc_duplicate_output");

  IdSpace ids;
  EXPECT_FALSE(vdc.request("lfn://unknown", ids, "x").has_value());
  EXPECT_TRUE(vdc.can_derive("lfn://x"));
  EXPECT_FALSE(vdc.can_derive("lfn://unknown"));
}

TEST(VirtualDataCatalog, CycleRejected) {
  VirtualDataCatalog vdc;
  vdc.add_transformation({"t", 1.0});
  ASSERT_TRUE(vdc.add_derivation({"t", {"lfn://b"}, "lfn://a", 1.0}).ok());
  ASSERT_TRUE(vdc.add_derivation({"t", {"lfn://a"}, "lfn://b", 1.0}).ok());
  IdSpace ids;
  const auto dag = vdc.request("lfn://a", ids, "cycle");
  ASSERT_FALSE(dag.has_value());
  EXPECT_EQ(dag.error().code, "vdc_cycle");
}

}  // namespace
}  // namespace sphinx::workflow
