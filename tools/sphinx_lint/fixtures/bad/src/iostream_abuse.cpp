// Fixture: library code including <iostream> must trip iostream-include.
#include <iostream>

void shout() { std::cout << "library code must use log.hpp\n"; }
