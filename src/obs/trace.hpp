#pragma once
/// \file trace.hpp
/// Structured, sim-time-stamped trace events -- the flight recorder's
/// timeline half.
///
/// Every layer of the scheduling pipeline appends typed events here:
/// server sweeps, per-job state transitions with reasons, tracker
/// timeouts and extensions, site outages and repairs, bus deliveries and
/// monitoring samples.  Events carry only deterministic payloads (sim
/// time, endpoint names, ids, reasons), so two same-seed runs produce
/// byte-identical serialized output -- the property tools/check.sh's
/// determinism gate enforces.

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace sphinx::obs {

/// What happened.  One enumerator per instrumented decision point; the
/// serialized name is to_string(kind).
enum class TraceKind {
  kSweepBegin,       ///< server sweep started; value = dirty-queue depth
  kSweepEnd,         ///< server sweep finished; value = plans sent
  kDagReceived,      ///< server accepted a DAG; value = job count
  kDagFinished,      ///< server observed a DAG complete; value = turnaround
  kJobTransition,    ///< warehouse job state change; detail = "old->new"
  kPlanSent,         ///< planner emitted an execution plan; value = attempt
  kTrackerTimeout,   ///< tracker cancelled a silent job; value = extensions used
  kTrackerExtension, ///< tracker deferred a timeout; value = extension number
  kSiteOutage,       ///< failure model took a site out; detail = mode
  kSiteRepair,       ///< failure model restored a site
  kBusDelivery,      ///< message delivered; value = delivery latency
  kMonitorSample,    ///< GMA metric published; detail = metric name
  kServerCrash,      ///< chaos harness killed a server; value = journal size
  kServerRecovery,   ///< journal-recovered server resumed; value = journal size
  kBusLoss,          ///< fault model lost a message on the wire
  kBusDuplicate,     ///< fault model injected a duplicate delivery
  kBusPartitionDrop, ///< message crossed a partitioned link; dropped
  kBusReorder,       ///< fault model added a jitter spike; value = extra delay
  kBusDrop,          ///< no recipient endpoint; detail = drop reason
  kCheckpoint,       ///< warehouse checkpoint published; detail = "seq:<n>",
                     ///< value = journal records compacted.  Emitted at
                     ///< image publication (before truncation), so a
                     ///< mid-checkpoint crash cannot make the chaotic
                     ///< trace diverge from the baseline's.
  kLeaseGranted,     ///< control plane granted a shard lease; detail = owner,
                     ///< value = lease epoch
  kLeaseExpired,     ///< heartbeats stopped; lease declared dead; value = epoch
  kLeaseFenced,      ///< stale-epoch renewal rejected; detail = owner,
                     ///< value = stale epoch presented
  kShardAdopted,     ///< surviving peer adopted a dead shard; detail =
                     ///< "old_owner->new_owner", value = new epoch
  kSpeculationLaunched,  ///< straggler detector replicated a job; detail =
                         ///< "site:<primary>-><spec>", value = spec attempt
  kSpeculationWon,       ///< a race resolved by completion; detail =
                         ///< "primary"/"spec", value = winning attempt
  kSpeculationCancelled, ///< losing/dead attempt retired; detail = reason
                         ///< ("loser-cancel", "primary_dead", "spec_dead"),
                         ///< value = retired attempt
};

[[nodiscard]] const char* to_string(TraceKind kind) noexcept;

/// One recorded event.  `source` is the emitting component (endpoint or
/// subsystem name), `subject` the entity acted on ("job:42", "dag:7",
/// "site:3"), `detail` a free-form reason string, `value` a numeric
/// payload whose meaning depends on the kind.
struct TraceEvent {
  SimTime at = 0.0;
  TraceKind kind = TraceKind::kJobTransition;
  std::string source;
  std::string subject;
  std::string detail;
  double value = 0.0;

  /// One JSON object, fixed key order, deterministic float formatting.
  [[nodiscard]] std::string to_json() const;
};

/// Append-only event log.  Events must arrive in non-decreasing sim-time
/// order (the engine guarantees this for anything recorded from event
/// context); the sink enforces it as an invariant so a trace can always
/// be merged or binary-searched by time.
class TraceSink {
 public:
  void record(TraceEvent event);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// The whole log as JSON Lines (one event object per line).
  [[nodiscard]] std::string to_jsonl() const;

 private:
  std::vector<TraceEvent> events_;
  SimTime last_at_ = 0.0;
};

/// Deterministic decimal rendering of a double: shortest round-trip form
/// via std::to_chars, identical across same-seed runs and platforms with
/// correct to_chars.  Shared by the trace and metrics serializers.
[[nodiscard]] std::string format_double(double value);

/// JSON string escaping for the few payloads that may carry quotes or
/// backslashes (endpoint names, reasons).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace sphinx::obs
