// Failover scenario tests: a scheduler crash plus a client<->server
// partition during shard handoff must be byte-invisible to the
// scheduling layer.  The surviving peer adopts the dead shard from its
// CheckpointImage + journal suffix, and the differential oracle demands
// the terminal journals and the control-plane-stripped trace equal a
// single-owner baseline's exactly.

#include <gtest/gtest.h>

#include <string>

#include "chaos/failover.hpp"
#include "chaos/oracle.hpp"

namespace sphinx {
namespace {

TEST(ChaosFailover, AdoptionIsByteInvisibleToTheSchedulingLayer) {
  const chaos::FailoverConfig config;
  const chaos::FailoverRunResult result = chaos::run_failover_pair(config);
  EXPECT_TRUE(result.ok()) << result.violation();
  EXPECT_TRUE(result.invariants.ok) << result.invariants.violation;
  EXPECT_TRUE(result.differential.ok) << result.differential.violation;
  // Exactly the crashed shard's lease expires and is adopted once; the
  // baseline (same seed, same partition, no crash) never loses a lease.
  EXPECT_EQ(result.expirations, 1u);
  EXPECT_EQ(result.adoptions, 1u);
  EXPECT_EQ(result.baseline_adoptions, 0u);
  EXPECT_GT(result.journal_records, 0u);
}

TEST(ChaosFailover, PairIsDeterministicAcrossInvocations) {
  const chaos::FailoverConfig config;
  const chaos::FailoverRunResult first = chaos::run_failover_pair(config);
  const chaos::FailoverRunResult second = chaos::run_failover_pair(config);
  ASSERT_TRUE(first.ok()) << first.violation();
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.stopped_at, second.stopped_at);
  EXPECT_EQ(first.journal_records, second.journal_records);
}

TEST(ChaosFailover, StripFailoverEventsDropsControlPlaneLines) {
  const std::string trace =
      "{\"t\":1.0,\"kind\":\"job_state\",\"src\":\"server\",\"subj\":\"j1\","
      "\"detail\":\"\",\"v\":0}\n"
      "{\"t\":1.5,\"kind\":\"lease_granted\",\"src\":\"ctrl/coordinator\","
      "\"subj\":\"shard:0\",\"detail\":\"scheduler#0\",\"v\":1}\n"
      "{\"t\":2.0,\"kind\":\"rpc_call\",\"src\":\"ctrl/hb/scheduler#0/"
      "shard:0\",\"subj\":\"ctrl/coordinator\",\"detail\":\"ctrl.renew\","
      "\"v\":1}\n"
      "{\"t\":2.5,\"kind\":\"server_crash\",\"src\":\"chaos\",\"subj\":"
      "\"failover#0\",\"detail\":\"fail-stop\",\"v\":0}\n"
      "{\"t\":3.0,\"kind\":\"shard_adopted\",\"src\":\"ctrl/coordinator\","
      "\"subj\":\"shard:0\",\"detail\":\"scheduler#0->scheduler#1\","
      "\"v\":2}\n"
      "{\"t\":4.0,\"kind\":\"job_state\",\"src\":\"server\",\"subj\":\"j2\","
      "\"detail\":\"\",\"v\":0}\n";
  const std::string stripped = chaos::strip_failover_events(trace);
  EXPECT_EQ(stripped,
            "{\"t\":1.0,\"kind\":\"job_state\",\"src\":\"server\",\"subj\":"
            "\"j1\",\"detail\":\"\",\"v\":0}\n"
            "{\"t\":4.0,\"kind\":\"job_state\",\"src\":\"server\",\"subj\":"
            "\"j2\",\"detail\":\"\",\"v\":0}\n");
}

}  // namespace
}  // namespace sphinx
