/// \file spy.cpp
/// Fixture: an observer that draws randomness and reaches into the
/// warehouse -- observation must never feed back into the simulation.

#include "core/warehouse.hpp"

#include <string>

namespace fixture::obs {

struct Seeds {
  int stream(const std::string& label) const;
};

int jittered_sample(const Seeds& seeds) {
  return seeds.stream("obs/jitter");  // observers may not draw
}

void noisy(Rng& rng);  // naming Rng at all is an escape

}  // namespace fixture::obs
