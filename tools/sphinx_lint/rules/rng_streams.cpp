/// \file rng_streams.cpp
/// RNG stream discipline: every random draw in the simulator comes from
/// a SeedTree stream with a statically visible label.
///
///   rng-stream-literal    `seeds.stream(...)` labels must start with a
///                         string literal ("bus", or "site/" + name for
///                         per-entity families) so this pass can build
///                         the stream registry (docs/rng_streams.md)
///   rng-stream-duplicate  a stream name may be declared in one module
///                         only; two modules sharing a label would share
///                         a generator and entangle their draw sequences
///                         (fires from the cross-file phase)
///   rng-raw               library code never constructs Rng(seed)
///                         directly -- a raw seed bypasses the registry
///                         and the SeedTree duplicate-label contract
///
/// The runtime counterpart lives in src/common/rng.hpp: SeedTree
/// records every label it hands out and throws ContractViolation on a
/// duplicate, so the registry this pass emits and the labels a run
/// actually uses cannot drift apart silently.

#include <string>

#include "rule.hpp"

namespace sphinx::lint {
namespace {

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Calls `use(i_stream_token, literal_or_empty, family)` for every
/// `.stream(...)` / `->stream(...)` / `.stream_replica(...)` call.
/// `literal` is empty when the first argument does not start with a
/// string literal.  Replicas share the label namespace (same seed
/// derivation), so the registry and the literal rule treat them alike.
template <typename Fn>
void scan_stream_calls(const FileContext& file, Fn&& use) {
  const std::vector<Token>& t = file.tokens;
  for (std::size_t i = 2; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier ||
        (t[i].text != "stream" && t[i].text != "stream_replica")) {
      continue;
    }
    if (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->")) continue;
    if (!is_punct(t[i + 1], "(")) continue;
    if (i + 2 >= t.size()) continue;
    const Token& arg = t[i + 2];
    if (arg.kind != TokenKind::kString) {
      use(i, std::string(), false);
      continue;
    }
    const bool family = !(i + 3 < t.size() && is_punct(t[i + 3], ")"));
    use(i, arg.text, family);
  }
}

void rule_rng_stream_literal(const FileContext& file, const Reporter& out) {
  // Library code + tools: tests drive private SeedTree instances whose
  // labels never land in the production registry.
  if (!is_library_code(file.rel_path) && !file.rel_path.starts_with("tools/"))
    return;
  if (determinism_whitelisted(file.rel_path)) return;
  scan_stream_calls(file, [&](std::size_t i, const std::string& literal,
                              bool family) {
    const std::size_t line = file.tokens[i].line;
    if (literal.empty()) {
      out.report(line, "rng-stream-literal",
                 "stream label must start with a string literal "
                 "(\"name\" or \"family/\" + suffix) so the static "
                 "registry (docs/rng_streams.md) can see it");
      return;
    }
    if (family && !literal.ends_with("/")) {
      out.report(line, "rng-stream-literal",
                 "per-entity stream families must use a 'prefix/' literal "
                 "followed by the entity suffix, e.g. seeds.stream(\"site/\" "
                 "+ name)");
    }
  });
}

void rule_rng_raw(const FileContext& file, const Reporter& out) {
  // Library code only (src/ and tools/): tests and benches construct
  // Rng(seed) directly to drive a unit in isolation, which is fine --
  // those draws never reach a recorded artifact.
  if (!is_library_code(file.rel_path) && !file.rel_path.starts_with("tools/"))
    return;
  if (determinism_whitelisted(file.rel_path)) return;
  const std::vector<Token>& t = file.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier || t[i].text != "Rng") continue;
    // The class's own declarations are not constructions: `explicit
    // Rng(seed)`, `~Rng()`, `Rng::Rng(...)`.
    if (i > 0 && t[i - 1].kind == TokenKind::kIdentifier &&
        (t[i - 1].text == "explicit" || t[i - 1].text == "class" ||
         t[i - 1].text == "struct")) {
      continue;
    }
    if (i > 0 && (is_punct(t[i - 1], "~") || is_punct(t[i - 1], "::"))) {
      continue;
    }
    // Temporary: `Rng(seed)` / `Rng{seed}`.
    bool construct = is_punct(t[i + 1], "(") || is_punct(t[i + 1], "{");
    // Declaration-with-init: `Rng rng(seed)` / `Rng rng{seed}`.  The
    // paren form is ambiguous with a function declaration returning Rng
    // (`Rng make(std::uint64_t seed)`); a parameter list starts with a
    // type, so skip when the first argument token is followed by
    // something type-ish (identifier, ::, <, &, *) or the list is empty.
    if (!construct && t[i + 1].kind == TokenKind::kIdentifier &&
        i + 2 < t.size()) {
      if (is_punct(t[i + 2], "{")) {
        construct = true;
      } else if (is_punct(t[i + 2], "(") && i + 3 < t.size() &&
                 !is_punct(t[i + 3], ")")) {
        const bool type_ish =
            t[i + 3].kind == TokenKind::kIdentifier && i + 4 < t.size() &&
            (t[i + 4].kind == TokenKind::kIdentifier ||
             is_punct(t[i + 4], "::") || is_punct(t[i + 4], "<") ||
             is_punct(t[i + 4], "&") || is_punct(t[i + 4], "*"));
        construct = !type_ish;
      }
    }
    if (!construct) continue;
    out.report(t[i].line, "rng-raw",
               "library code must not construct Rng directly; derive the "
               "stream with seeds.stream(\"label\") so the label lands in "
               "the registry and the duplicate-label contract applies");
  }
}

}  // namespace

std::vector<StreamUse> extract_streams(const FileContext& file) {
  std::vector<StreamUse> uses;
  // The registry documents production streams; tests and benches spin
  // up private SeedTrees whose labels are out of scope.
  if (!is_library_code(file.rel_path)) return uses;
  scan_stream_calls(file, [&](std::size_t i, const std::string& literal,
                              bool family) {
    if (literal.empty()) return;  // reported by rng-stream-literal
    StreamUse use;
    use.name = family ? literal + "*" : literal;
    use.family = family;
    use.path = file.rel_path;
    use.line = file.tokens[i].line;
    use.module = module_of(file.rel_path);
    uses.push_back(std::move(use));
  });
  return uses;
}

std::vector<Rule> rng_stream_rules() {
  return {
      Rule{"rng-stream-literal",
           "seeds.stream() labels start with a string literal",
           "The rng stream registry (docs/rng_streams.md) is extracted "
           "statically from seeds.stream(\"...\") call sites.  A label the "
           "analyzer cannot see is a label no-one can audit for collisions, "
           "so the first argument must begin with a string literal: either "
           "the whole label (\"bus\") or a family prefix ending in '/' "
           "(\"site/\" + site.name).",
           &rule_rng_stream_literal},
      Rule{"rng-stream-duplicate", "one stream name, one module",
           "Two modules requesting the same stream label would derive the "
           "same generator seed and entangle their draw sequences: adding a "
           "draw in one silently shifts the other, which is exactly the "
           "coupling SeedTree exists to prevent.  Fires from the cross-file "
           "phase (analyze_tree); the runtime counterpart is SeedTree's "
           "duplicate-label ContractViolation.",
           nullptr},
      Rule{"rng-raw", "library code never constructs Rng directly",
           "Rng(seed) with a hand-picked seed bypasses the SeedTree: the "
           "stream has no label, appears in no registry, and two such sites "
           "can silently share a seed.  Library code (src/, tools/) derives "
           "every stream via seeds.stream(\"label\"); tests and benches may "
           "construct Rng directly to drive units in isolation.",
           &rule_rng_raw},
  };
}

}  // namespace sphinx::lint
