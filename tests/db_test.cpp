// Tests for the table store: values, schemas, tables, indexes, journal
// serialization and crash recovery.

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "db/database.hpp"
#include "db/journal.hpp"
#include "db/table.hpp"
#include "db/value.hpp"

namespace sphinx::db {
namespace {

Schema jobs_schema() {
  return Schema{{"name", ValueType::kText},
                {"state", ValueType::kText},
                {"site", ValueType::kInt},
                {"runtime", ValueType::kReal},
                {"done", ValueType::kBool}};
}

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(std::int64_t{5}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kReal);
  EXPECT_EQ(Value("hi").type(), ValueType::kText);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);

  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_DOUBLE_EQ(Value(3).as_real(), 3.0);  // int widens to real
  EXPECT_EQ(Value("x").as_text(), "x");
  EXPECT_TRUE(Value(true).as_bool());
}

TEST(Value, WrongAccessorThrows) {
  EXPECT_THROW((void)Value("text").as_int(), AssertionError);
  EXPECT_THROW((void)Value(1).as_text(), AssertionError);
  EXPECT_THROW((void)Value(1.0).as_bool(), AssertionError);
  EXPECT_THROW((void)Value("t").as_real(), AssertionError);
}

TEST(Value, EqualityIsTyped) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value("1"));
  EXPECT_FALSE(Value(1) == Value(1.0));
  EXPECT_EQ(Value(), Value());
}

TEST(Schema, IndexOfAndHas) {
  const Schema s = jobs_schema();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.index_of("state"), 1u);
  EXPECT_TRUE(s.has("runtime"));
  EXPECT_FALSE(s.has("nope"));
  EXPECT_THROW((void)s.index_of("nope"), AssertionError);
}

TEST(Schema, DuplicateColumnRejected) {
  EXPECT_THROW(Schema({{"a", ValueType::kInt}, {"a", ValueType::kInt}}),
               AssertionError);
}

TEST(Schema, AcceptsChecksArityAndTypes) {
  const Schema s = jobs_schema();
  EXPECT_TRUE(s.accepts({Value("j"), Value("ready"), Value(1), Value(2.0),
                         Value(false)}));
  EXPECT_TRUE(s.accepts({Value("j"), Value("ready"), Value(1), Value(2),
                         Value(false)}));  // int -> real ok
  EXPECT_TRUE(s.accepts({Value("j"), Value(), Value(), Value(), Value()}));
  EXPECT_FALSE(s.accepts({Value("j"), Value("ready")}));  // wrong arity
  EXPECT_FALSE(s.accepts({Value(1), Value("ready"), Value(1), Value(2.0),
                          Value(false)}));  // wrong type
}

TEST(Table, InsertFindUpdateErase) {
  Table t("jobs", jobs_schema());
  const RowId id =
      t.insert({Value("j1"), Value("ready"), Value(3), Value(1.5), Value(false)});
  EXPECT_NE(id, kInvalidRow);
  EXPECT_EQ(t.size(), 1u);

  ASSERT_NE(t.find(id), nullptr);
  EXPECT_EQ(t.get(id, "state").as_text(), "ready");

  EXPECT_TRUE(t.update(id, "state", Value("planned")));
  EXPECT_EQ(t.get(id, "state").as_text(), "planned");

  EXPECT_TRUE(t.erase(id));
  EXPECT_EQ(t.find(id), nullptr);
  EXPECT_FALSE(t.erase(id));
  EXPECT_FALSE(t.update(id, "state", Value("x")));
}

TEST(Table, SchemaEnforcedOnInsert) {
  Table t("jobs", jobs_schema());
  EXPECT_THROW(t.insert({Value(1)}), AssertionError);
}

TEST(Table, RowIdsAreMonotonic) {
  Table t("jobs", jobs_schema());
  RowId prev = 0;
  for (int i = 0; i < 10; ++i) {
    const RowId id = t.insert(
        {Value("j"), Value("s"), Value(i), Value(0.0), Value(false)});
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(Table, FindByScanAndIndexAgree) {
  Table scan("jobs", jobs_schema());
  Table indexed("jobs", jobs_schema());
  indexed.create_index("state");
  for (int i = 0; i < 30; ++i) {
    const std::string state = i % 3 == 0 ? "ready" : "running";
    scan.insert({Value("j"), Value(state), Value(i), Value(0.0), Value(false)});
    indexed.insert(
        {Value("j"), Value(state), Value(i), Value(0.0), Value(false)});
  }
  EXPECT_EQ(scan.find_by("state", Value("ready")),
            indexed.find_by("state", Value("ready")));
  EXPECT_EQ(indexed.count_by("state", Value("ready")), 10u);
}

TEST(Table, IndexMaintainedAcrossUpdates) {
  Table t("jobs", jobs_schema());
  t.create_index("state");
  const RowId id =
      t.insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});
  EXPECT_EQ(t.count_by("state", Value("ready")), 1u);
  t.update(id, "state", Value("planned"));
  EXPECT_EQ(t.count_by("state", Value("ready")), 0u);
  EXPECT_EQ(t.count_by("state", Value("planned")), 1u);
  t.erase(id);
  EXPECT_EQ(t.count_by("state", Value("planned")), 0u);
}

TEST(Table, IndexCreatedAfterInsertsBackfills) {
  Table t("jobs", jobs_schema());
  for (int i = 0; i < 5; ++i) {
    t.insert({Value("j"), Value("ready"), Value(i), Value(0.0), Value(false)});
  }
  t.create_index("state");
  EXPECT_EQ(t.count_by("state", Value("ready")), 5u);
}

TEST(Table, SelectPredicate) {
  Table t("jobs", jobs_schema());
  for (int i = 0; i < 10; ++i) {
    t.insert({Value("j"), Value("s"), Value(i), Value(i * 1.0), Value(false)});
  }
  const auto big = t.select([&t](const Row& r) {
    return r.cells[t.schema().index_of("runtime")].as_real() >= 7.0;
  });
  EXPECT_EQ(big.size(), 3u);
}

TEST(Table, ForEachVisitsInInsertionOrder) {
  Table t("jobs", jobs_schema());
  for (int i = 0; i < 5; ++i) {
    t.insert({Value("j"), Value("s"), Value(i), Value(0.0), Value(false)});
  }
  std::int64_t expected = 0;
  t.for_each([&](const Row& r) {
    EXPECT_EQ(r.cells[2].as_int(), expected++);
  });
  EXPECT_EQ(expected, 5);
}

TEST(Database, CreateAndLookupTables) {
  Database d;
  d.create_table("jobs", jobs_schema());
  d.create_table("dags", Schema{{"name", ValueType::kText}});
  EXPECT_TRUE(d.has_table("jobs"));
  EXPECT_FALSE(d.has_table("nope"));
  EXPECT_EQ(d.table_count(), 2u);
  EXPECT_EQ(d.table_names(), (std::vector<std::string>{"jobs", "dags"}));
  EXPECT_THROW(d.create_table("jobs", jobs_schema()), AssertionError);
  EXPECT_THROW((void)d.table("nope"), AssertionError);
}

TEST(Database, JournalRecordsMutations) {
  Database d;
  Table& t = d.create_table("jobs", jobs_schema());
  const RowId id =
      t.insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});
  t.update(id, "state", Value("planned"));
  t.erase(id);
  // create + insert + update + erase
  EXPECT_EQ(d.journal().size(), 4u);
}

TEST(Database, RecoverRebuildsExactState) {
  Database original;
  Table& jobs = original.create_table("jobs", jobs_schema());
  std::vector<RowId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(jobs.insert({Value("job-" + std::to_string(i)),
                               Value("ready"), Value(i % 4), Value(60.0),
                               Value(false)}));
  }
  for (int i = 0; i < 20; i += 2) {
    jobs.update(ids[i], "state", Value("completed"));
    jobs.update(ids[i], "done", Value(true));
  }
  jobs.erase(ids[3]);
  jobs.erase(ids[5]);

  Database recovered;
  ASSERT_TRUE(recovered.recover(original.journal()).ok());
  const Table& r = recovered.table("jobs");
  EXPECT_EQ(r.size(), 18u);
  EXPECT_EQ(r.get(ids[0], "state").as_text(), "completed");
  EXPECT_TRUE(r.get(ids[0], "done").as_bool());
  EXPECT_EQ(r.get(ids[1], "state").as_text(), "ready");
  EXPECT_EQ(r.find(ids[3]), nullptr);
}

TEST(Database, RecoveredDatabaseContinuesJournaling) {
  Database original;
  original.create_table("jobs", jobs_schema())
      .insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});

  Database recovered;
  ASSERT_TRUE(recovered.recover(original.journal()).ok());
  // Insert post-recovery: new row ids must not collide with replayed ones.
  const RowId id2 = recovered.table("jobs").insert(
      {Value("k"), Value("ready"), Value(2), Value(0.0), Value(false)});
  EXPECT_EQ(recovered.table("jobs").size(), 2u);
  EXPECT_GT(id2, RowId{1});
  // And the recovered journal can recover a third instance.
  Database third;
  ASSERT_TRUE(third.recover(recovered.journal()).ok());
  EXPECT_EQ(third.table("jobs").size(), 2u);
}

TEST(Database, RecoverIntoNonEmptyFails) {
  Database d;
  d.create_table("jobs", jobs_schema());
  Journal empty;
  EXPECT_FALSE(d.recover(empty).ok());
}

TEST(Database, RecoverDetectsCorruptReplay) {
  Journal j;
  JournalEntry bad;
  bad.op = JournalEntry::Op::kUpdate;
  bad.table = "missing";
  bad.row = 1;
  bad.cells = {Value(1)};
  j.append(bad);
  Database d;
  const auto status = d.recover(j);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "recover_replay");
}

TEST(Journal, SerializeParseRoundTrip) {
  Database d;
  Table& t = d.create_table("jobs", jobs_schema());
  const RowId id = t.insert({Value("has\ttab and \\slash\nnewline"),
                             Value("ready"), Value(-7), Value(3.25),
                             Value(true)});
  t.update(id, "state", Value("planned"));
  t.erase(id);

  const std::string text = d.journal().serialize();
  const auto parsed = Journal::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), d.journal().size());

  Database recovered;
  ASSERT_TRUE(recovered.recover(*parsed).ok());
  EXPECT_EQ(recovered.table("jobs").size(), 0u);
  // Serialized journals of both databases agree record-for-record.
  EXPECT_EQ(recovered.journal().serialize(), text);
}

TEST(Journal, ParseRejectsGarbage) {
  EXPECT_FALSE(Journal::parse("X\tjobs\n").has_value());
  EXPECT_FALSE(Journal::parse("U\tjobs\t1\n").has_value());
  EXPECT_FALSE(Journal::parse("I\tjobs\t1\tz:9\n").has_value());
}

TEST(Journal, ParseEmptyIsEmpty) {
  const auto j = Journal::parse("");
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(j->empty());
}

TEST(Database, TruncateJournalKeepsData) {
  Database d;
  Table& t = d.create_table("jobs", jobs_schema());
  t.insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});
  d.truncate_journal();
  EXPECT_TRUE(d.journal().empty());
  EXPECT_EQ(d.table("jobs").size(), 1u);
}

TEST(Database, JournalingCanBeDisabled) {
  Database d;
  d.set_journaling(false);
  Table& t = d.create_table("jobs", jobs_schema());
  t.insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});
  EXPECT_TRUE(d.journal().empty());
}

Schema indexed_jobs_schema() {
  return Schema{{{"name", ValueType::kText},
                 indexed("state", ValueType::kText),
                 {"site", ValueType::kInt},
                 {"runtime", ValueType::kReal},
                 {"done", ValueType::kBool}}};
}

TEST(Table, SchemaDeclaredIndexes) {
  Database d;
  Table& t = d.create_table("jobs", indexed_jobs_schema());
  t.insert({Value("a"), Value("ready"), Value(1), Value(0.0), Value(false)});
  t.insert({Value("b"), Value("done"), Value(2), Value(1.0), Value(true)});
  t.insert({Value("c"), Value("ready"), Value(1), Value(2.0), Value(false)});

  // The declared index serves the query: no scan fallback.
  EXPECT_EQ(t.find_by("state", Value("ready")).size(), 2u);
  EXPECT_EQ(t.full_scans(), 0u);
#if SPHINX_CONTRACTS_ENABLED
  // Querying an undeclared column falls back to a (counted) full scan.
  EXPECT_EQ(t.find_by("name", Value("b")).size(), 1u);
  EXPECT_EQ(t.full_scans(), 1u);
#endif
}

TEST(Table, FindFirstMatchesFindBy) {
  Database d;
  Table& t = d.create_table("jobs", indexed_jobs_schema());
  const RowId first =
      t.insert({Value("a"), Value("ready"), Value(1), Value(0.0),
                Value(false)});
  t.insert({Value("b"), Value("ready"), Value(2), Value(1.0), Value(false)});

  // Index path.
  const Row* row = t.find_first("state", Value("ready"));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->id, first);
  EXPECT_EQ(row->id, t.find_by("state", Value("ready")).front());
  EXPECT_EQ(t.find_first("state", Value("nope")), nullptr);
  // Scan path agrees.
  row = t.find_first("name", Value("b"));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->id, t.find_by("name", Value("b")).front());
  EXPECT_EQ(t.find_first("name", Value("zzz")), nullptr);
}

TEST(Journal, CreateTableCarriesIndexFlags) {
  Database d;
  Table& t = d.create_table("jobs", indexed_jobs_schema());
  t.insert({Value("a"), Value("ready"), Value(1), Value(0.0), Value(false)});

  // The schema line marks indexed columns with a trailing '!'.
  const std::string text = d.journal().serialize();
  EXPECT_NE(text.find("state=text!"), std::string::npos);
  EXPECT_NE(text.find("name=text\t"), std::string::npos);

  // Round trip: the parsed journal rebuilds the index, so the recovered
  // table answers the hot query without a scan fallback.
  const auto parsed = Journal::parse(text);
  ASSERT_TRUE(parsed.has_value());
  Database r;
  ASSERT_TRUE(r.recover(*parsed).ok());
  Table& rt = r.table("jobs");
  EXPECT_EQ(rt.find_by("state", Value("ready")).size(), 1u);
  EXPECT_EQ(rt.full_scans(), 0u);

  // Journals written before the flag existed still parse (no '!').
  const auto legacy = Journal::parse("C\tlegacy\tname=text\tstate=text\n");
  ASSERT_TRUE(legacy.has_value());
  ASSERT_EQ(legacy->entries().size(), 1u);
  for (const Column& col : legacy->entries()[0].schema) {
    EXPECT_FALSE(col.indexed);
  }
}

}  // namespace
}  // namespace sphinx::db
