#include "monitor/gma.hpp"

#include <algorithm>
#include <set>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace sphinx::monitor {

MetricRegistry::MetricRegistry(std::size_t history_limit)
    : history_limit_(history_limit) {
  SPHINX_PRECONDITION(history_limit_ >= 1,
                      "history_limit must retain at least one observation");
}

void MetricRegistry::set_history_limit(std::size_t history_limit) {
  SPHINX_PRECONDITION(history_limit >= 1,
                      "history_limit must retain at least one observation");
  history_limit_ = history_limit;
  for (auto& [key, bucket] : series_) {
    while (bucket.size() > history_limit_) bucket.pop_front();
  }
}

void MetricRegistry::publish(Metric metric) {
  SPHINX_ASSERT(!metric.name.empty(), "metric needs a name");
  ++published_;
  auto& bucket = series_[SeriesKey{metric.name, metric.site}];
  bucket.push_back(metric);
  while (bucket.size() > history_limit_) bucket.pop_front();

  for (const Subscriber& sub : subscribers_) {
    if (sub.name != "*" && sub.name != metric.name) continue;
    if (sub.site.valid() && sub.site != metric.site) continue;
    sub.callback(metric);
  }
}

SubscriptionId MetricRegistry::subscribe(std::string name, Callback callback,
                                         SiteId site) {
  SPHINX_ASSERT(callback != nullptr, "subscription callback must not be null");
  const std::uint64_t id = next_subscription_++;
  subscribers_.push_back(
      Subscriber{id, std::move(name), site, std::move(callback)});
  return SubscriptionId(id);
}

void MetricRegistry::unsubscribe(SubscriptionId id) {
  std::erase_if(subscribers_,
                [&](const Subscriber& sub) { return sub.id == id.id_; });
}

std::optional<Metric> MetricRegistry::latest(const std::string& name,
                                             SiteId site) const {
  const auto it = series_.find(SeriesKey{name, site});
  if (it == series_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::vector<Metric> MetricRegistry::history(const std::string& name,
                                            SiteId site, SimTime since) const {
  std::vector<Metric> out;
  const auto it = series_.find(SeriesKey{name, site});
  if (it == series_.end()) return out;
  for (const Metric& m : it->second) {
    if (m.timestamp >= since) out.push_back(m);
  }
  return out;
}

std::optional<double> MetricRegistry::mean_since(const std::string& name,
                                                 SiteId site,
                                                 SimTime since) const {
  const auto window = history(name, site, since);
  if (window.empty()) return std::nullopt;
  double sum = 0.0;
  for (const Metric& m : window) sum += m.value;
  return sum / static_cast<double>(window.size());
}

std::vector<std::string> MetricRegistry::names() const {
  // Collect through a std::set: series_ is hash-ordered, so the result
  // must be rebuilt in a pinned order rather than iteration order.
  std::set<std::string> unique;
  for (const auto& [key, bucket] : series_) unique.insert(key.name);
  return {unique.begin(), unique.end()};
}

}  // namespace sphinx::monitor
