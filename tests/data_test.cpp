// Tests for the data layer: RLS, storage elements, GridFTP transfers and
// replica selection.

#include <gtest/gtest.h>

#include "data/gridftp.hpp"
#include "data/replication.hpp"
#include "data/rls.hpp"
#include "data/storage.hpp"
#include "sim/engine.hpp"

namespace sphinx::data {
namespace {

constexpr double kMB = 1e6;

TEST(Rls, RegisterAndLocate) {
  ReplicaLocationService rls;
  rls.register_replica("lfn://a", SiteId(1), 10 * kMB);
  rls.register_replica("lfn://a", SiteId(2), 10 * kMB);
  rls.register_replica("lfn://b", SiteId(1), 5 * kMB);

  EXPECT_TRUE(rls.exists("lfn://a"));
  EXPECT_FALSE(rls.exists("lfn://missing"));
  const auto replicas = rls.locate("lfn://a");
  EXPECT_EQ(replicas.size(), 2u);
  EXPECT_EQ(rls.locate("lfn://missing").size(), 0u);
  EXPECT_EQ(rls.lfn_count(), 2u);
}

TEST(Rls, ReRegisterUpdatesSize) {
  ReplicaLocationService rls;
  rls.register_replica("lfn://a", SiteId(1), 10 * kMB);
  rls.register_replica("lfn://a", SiteId(1), 20 * kMB);
  const auto replicas = rls.locate("lfn://a");
  ASSERT_EQ(replicas.size(), 1u);
  EXPECT_DOUBLE_EQ(replicas[0].size_bytes, 20 * kMB);
}

TEST(Rls, UnregisterDropsIndexWhenLastReplicaGone) {
  ReplicaLocationService rls;
  rls.register_replica("lfn://a", SiteId(1), kMB);
  rls.register_replica("lfn://a", SiteId(2), kMB);
  rls.unregister_replica("lfn://a", SiteId(1));
  EXPECT_TRUE(rls.exists("lfn://a"));
  rls.unregister_replica("lfn://a", SiteId(2));
  EXPECT_FALSE(rls.exists("lfn://a"));
  EXPECT_EQ(rls.lfn_count(), 0u);
}

TEST(Rls, BulkLookupIsParallelToInputAndCountsOnce) {
  ReplicaLocationService rls;
  rls.register_replica("lfn://a", SiteId(1), kMB);
  rls.register_replica("lfn://c", SiteId(2), kMB);
  const std::size_t before = rls.queries();
  const auto result = rls.locate_bulk({"lfn://a", "lfn://b", "lfn://c"});
  EXPECT_EQ(rls.queries(), before + 1);  // one clubbed call
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].size(), 1u);
  EXPECT_TRUE(result[1].empty());
  EXPECT_EQ(result[2][0].site, SiteId(2));
}

TEST(Rls, LrcIsPerSite) {
  ReplicaLocationService rls;
  rls.register_replica("lfn://a", SiteId(1), kMB);
  EXPECT_TRUE(rls.lrc(SiteId(1)).has("lfn://a"));
  EXPECT_FALSE(rls.lrc(SiteId(2)).has("lfn://a"));
  EXPECT_EQ(rls.lrc(SiteId(1)).size_of("lfn://a"), kMB);
  EXPECT_FALSE(rls.lrc(SiteId(2)).size_of("lfn://a").has_value());
}

TEST(Storage, StoreAndAccounting) {
  StorageElement se(SiteId(1), 100 * kMB);
  EXPECT_TRUE(se.store(UserId(1), "lfn://a", 30 * kMB).ok());
  EXPECT_TRUE(se.store(UserId(2), "lfn://b", 20 * kMB).ok());
  EXPECT_DOUBLE_EQ(se.used(), 50 * kMB);
  EXPECT_DOUBLE_EQ(se.free_space(), 50 * kMB);
  EXPECT_DOUBLE_EQ(se.used_by(UserId(1)), 30 * kMB);
  EXPECT_DOUBLE_EQ(se.used_by(UserId(3)), 0.0);
  EXPECT_EQ(se.file_count(), 2u);
}

TEST(Storage, RejectsOverflowAndDuplicates) {
  StorageElement se(SiteId(1), 10 * kMB);
  ASSERT_TRUE(se.store(UserId(1), "lfn://a", 8 * kMB).ok());
  const auto full = se.store(UserId(1), "lfn://b", 5 * kMB);
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, "storage_full");
  const auto dup = se.store(UserId(1), "lfn://a", kMB);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, "storage_duplicate");
  EXPECT_DOUBLE_EQ(se.used(), 8 * kMB);  // failed stores had no effect
}

TEST(Storage, EraseReleasesSpace) {
  StorageElement se(SiteId(1), 10 * kMB);
  ASSERT_TRUE(se.store(UserId(1), "lfn://a", 8 * kMB).ok());
  EXPECT_TRUE(se.erase("lfn://a"));
  EXPECT_FALSE(se.erase("lfn://a"));
  EXPECT_DOUBLE_EQ(se.used(), 0.0);
  EXPECT_DOUBLE_EQ(se.used_by(UserId(1)), 0.0);
  EXPECT_TRUE(se.store(UserId(1), "lfn://b", 9 * kMB).ok());
}

TEST(StorageFabric, OnePerSite) {
  StorageFabric fabric;
  StorageElement& a = fabric.add(SiteId(1), 10 * kMB);
  StorageElement& same = fabric.add(SiteId(1), 999 * kMB);
  EXPECT_EQ(&a, &same);  // first capacity wins
  EXPECT_DOUBLE_EQ(same.capacity(), 10 * kMB);
  EXPECT_NE(fabric.find(SiteId(1)), nullptr);
  EXPECT_EQ(fabric.find(SiteId(2)), nullptr);
}

class TransferFixture : public ::testing::Test {
 protected:
  TransferFixture() : transfers(engine) {
    transfers.set_link(SiteId(1), {10 * kMB, 10 * kMB});
    transfers.set_link(SiteId(2), {10 * kMB, 10 * kMB});
    transfers.set_link(SiteId(3), {1 * kMB, 1 * kMB});
  }

  sim::Engine engine;
  TransferService transfers;
};

TEST_F(TransferFixture, SingleTransferAtFullRate) {
  Duration took = -1;
  transfers.transfer(SiteId(1), SiteId(2), 100 * kMB,
                     [&](TransferId, Duration d) { took = d; });
  engine.run_until();
  EXPECT_NEAR(took, 10.0, 1e-6);  // 100 MB at 10 MB/s
  EXPECT_EQ(transfers.stats().completed, 1u);
  EXPECT_NEAR(transfers.stats().bytes_moved, 100 * kMB, 1.0);
}

TEST_F(TransferFixture, LocalTransferIsInstant) {
  Duration took = -1;
  transfers.transfer(SiteId(1), SiteId(1), 100 * kMB,
                     [&](TransferId, Duration d) { took = d; });
  engine.run_until();
  EXPECT_DOUBLE_EQ(took, 0.0);
}

TEST_F(TransferFixture, SlowLinkBoundsRate) {
  Duration took = -1;
  transfers.transfer(SiteId(3), SiteId(2), 60 * kMB,
                     [&](TransferId, Duration d) { took = d; });
  engine.run_until();
  EXPECT_NEAR(took, 60.0, 1e-6);  // bottleneck is the 1 MB/s uplink
}

TEST_F(TransferFixture, SharedDownlinkSplitsBandwidth) {
  // Two 10 MB/s sources into one 10 MB/s destination: each gets 5 MB/s.
  std::vector<Duration> done;
  transfers.set_link(SiteId(4), {10 * kMB, 10 * kMB});
  transfers.transfer(SiteId(1), SiteId(2), 50 * kMB,
                     [&](TransferId, Duration d) { done.push_back(d); });
  transfers.transfer(SiteId(4), SiteId(2), 50 * kMB,
                     [&](TransferId, Duration d) { done.push_back(d); });
  engine.run_until();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-6);  // 50 MB at 5 MB/s
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST_F(TransferFixture, RatesRebalanceWhenTransferFinishes) {
  // Transfer A: 50 MB, B: 100 MB, same links.  Shared 5 MB/s each until A
  // finishes at t=10 with 50 MB of B left; B then runs at 10 MB/s and
  // finishes at t=15.
  Duration a_done = -1, b_done = -1;
  transfers.transfer(SiteId(1), SiteId(2), 50 * kMB,
                     [&](TransferId, Duration d) { a_done = d; });
  transfers.transfer(SiteId(1), SiteId(2), 100 * kMB,
                     [&](TransferId, Duration d) { b_done = d; });
  engine.run_until();
  EXPECT_NEAR(a_done, 10.0, 1e-6);
  EXPECT_NEAR(b_done, 15.0, 1e-6);
}

TEST_F(TransferFixture, CancelSilencesCallbackAndFreesBandwidth) {
  bool a_fired = false;
  Duration b_done = -1;
  const TransferId a = transfers.transfer(
      SiteId(1), SiteId(2), 100 * kMB, [&](TransferId, Duration) { a_fired = true; });
  transfers.transfer(SiteId(1), SiteId(2), 50 * kMB,
                     [&](TransferId, Duration d) { b_done = d; });
  engine.schedule_in(2.0, "cancel", [&] { transfers.cancel(a); });
  engine.run_until();
  EXPECT_FALSE(a_fired);
  EXPECT_EQ(transfers.stats().cancelled, 1u);
  // B: 2s at 5 MB/s (10 MB) + 40 MB at 10 MB/s (4s) = 6s total.
  EXPECT_NEAR(b_done, 6.0, 1e-6);
}

TEST_F(TransferFixture, EstimateIgnoresContention) {
  EXPECT_NEAR(transfers.estimate(SiteId(1), SiteId(2), 100 * kMB), 10.0, 1e-9);
  EXPECT_NEAR(transfers.estimate(SiteId(3), SiteId(2), 10 * kMB), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(transfers.estimate(SiteId(1), SiteId(1), kMB), 0.0);
}

TEST_F(TransferFixture, ManyConcurrentTransfersAllComplete) {
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    transfers.transfer(SiteId(1 + i % 3), SiteId(1 + (i + 1) % 3), 10 * kMB,
                       [&](TransferId, Duration) { ++completed; });
  }
  engine.run_until();
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(transfers.active(), 0u);
}

TEST(ReplicaSelection, PrefersLocalThenFastest) {
  sim::Engine engine;
  TransferService transfers(engine);
  transfers.set_link(SiteId(1), {10 * kMB, 10 * kMB});
  transfers.set_link(SiteId(2), {1 * kMB, 1 * kMB});
  transfers.set_link(SiteId(3), {10 * kMB, 10 * kMB});

  const std::vector<Replica> replicas = {
      {"lfn://a", SiteId(2), 50 * kMB},
      {"lfn://a", SiteId(1), 50 * kMB},
  };
  // Destination 3: site 1's uplink (10 MB/s) beats site 2's (1 MB/s).
  const auto remote = select_replica(replicas, SiteId(3), transfers);
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->replica.site, SiteId(1));

  // Destination 2: the local replica wins with cost 0.
  const auto local = select_replica(replicas, SiteId(2), transfers);
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(local->replica.site, SiteId(2));
  EXPECT_DOUBLE_EQ(local->estimated_cost, 0.0);

  EXPECT_FALSE(select_replica({}, SiteId(1), transfers).has_value());
}

TEST(ReplicaSelection, StageInEstimateSumsInputs) {
  sim::Engine engine;
  TransferService transfers(engine);
  transfers.set_link(SiteId(1), {10 * kMB, 10 * kMB});
  transfers.set_link(SiteId(2), {10 * kMB, 10 * kMB});
  const std::vector<std::vector<Replica>> inputs = {
      {{"lfn://a", SiteId(1), 100 * kMB}},
      {{"lfn://b", SiteId(1), 50 * kMB}},
      {},  // missing input contributes nothing
  };
  EXPECT_NEAR(estimate_stage_in(inputs, SiteId(2), transfers), 15.0, 1e-9);
}

}  // namespace
}  // namespace sphinx::data
