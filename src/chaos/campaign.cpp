#include "chaos/campaign.hpp"

#include <algorithm>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "chaos/json.hpp"
#include "chaos/minimize.hpp"
#include "common/contracts.hpp"
#include "exp/parallel.hpp"
#include "exp/scenario.hpp"
#include "obs/trace.hpp"

namespace sphinx::chaos {
namespace {

constexpr SimTime kFirstSubmitAt = 10.0;
constexpr Duration kSubmitSpacing = 15.0;

/// One simulation: the outage schedule always applies; crash points only
/// when `with_crashes` (the baseline runs the same grid uninterrupted).
RunArtifacts run_once(const ChaosRunConfig& config,
                      const ChaosSchedule& schedule, bool with_crashes,
                      std::size_t* crashes_executed) {
  exp::ScenarioConfig scenario_config;
  scenario_config.seed = config.seed;
  // The schedule owns all site misbehaviour; the seeded renewal process
  // stays off so the baseline/chaotic pair differs only in crashes.
  scenario_config.site_failures = false;
  scenario_config.background_load = config.background_load;
  scenario_config.outage_schedules = schedule.outages;
  // Network-fault windows apply to the chaotic AND the baseline run, so
  // the differential oracle checks crash recovery *under* a lossy wire
  // (same draws: the fault stream is seeded per scenario, and the two
  // runs issue identical sends).
  for (const NetFaultWindow& window : schedule.net_windows) {
    rpc::LinkFaultRule rule;
    rule.start = window.at;
    rule.end = window.at + window.duration;
    if (window.partition) {
      // Sever client<->server; rule matching is symmetric, so both
      // directions (and the "/out" reply endpoints) are covered.
      rule.from_prefix = "sphinx-client";
      rule.to_prefix = "sphinx-server";
      rule.partition = true;
    } else {
      rule.loss = window.loss;
      rule.duplicate = window.duplicate;
      rule.reorder = window.reorder;
      rule.reorder_spike = window.reorder_spike;
    }
    scenario_config.network_faults.rules.push_back(rule);
  }
  exp::Scenario scenario(scenario_config);

  exp::TenantOptions options;
  options.algorithm = config.algorithm;
  options.checkpoint_every_records = config.checkpoint_every;
  options.speculate = config.speculate;
  // Single tenant: multiple tenants sweep at identical timestamps, and a
  // crash+recovery would reorder equal-time events across tenants --
  // byte-equality only holds within one tenant's event stream.
  scenario.add_tenant("chaos", options);

  workflow::WorkloadConfig workload;
  workload.jobs_per_dag = config.jobs_per_dag;
  auto generator = scenario.make_generator("chaos", workload);
  const std::vector<workflow::Dag> dags =
      generator.generate_batch("chaos", config.dag_count);

  scenario.start();
  for (std::size_t k = 0; k < dags.size(); ++k) {
    const workflow::Dag& dag = dags[k];
    scenario.engine().schedule_at(
        kFirstSubmitAt + static_cast<double>(k) * kSubmitSpacing,
        "submit:" + dag.name(),
        [&scenario, &dag] { scenario.tenants()[0].client->submit(dag); });
  }

  // Crash chain: arm the next crash point on whatever server instance is
  // currently alive; the hook defers the actual kill to a fresh engine
  // event (a server cannot destroy itself from inside its own sweep),
  // then recovery re-arms the following point on the new instance.
  // Regular and mid-checkpoint points merge into one chain ordered by
  // record threshold (regular first on a tie: the stable sort keeps the
  // insertion order below).
  struct CrashPoint {
    std::size_t records;
    bool mid_checkpoint;
  };
  std::vector<CrashPoint> crash_points;
  crash_points.reserve(schedule.crash_records.size() +
                       schedule.mid_ckpt_crashes.size());
  for (const std::size_t records : schedule.crash_records) {
    crash_points.push_back({records, false});
  }
  for (const std::size_t records : schedule.mid_ckpt_crashes) {
    crash_points.push_back({records, true});
  }
  std::stable_sort(crash_points.begin(), crash_points.end(),
                   [](const CrashPoint& a, const CrashPoint& b) {
                     return a.records < b.records;
                   });
  std::size_t next_crash = 0;
  std::string crash_failure;
  std::function<void()> arm_next = [&] {
    if (!with_crashes || next_crash >= crash_points.size()) return;
    const CrashPoint& point = crash_points[next_crash];
    scenario.tenants()[0].server->arm_crash_hook(point.records, [&] {
      sim::Engine& engine = scenario.engine();
      engine.schedule_at(engine.now(), "chaos:crash", [&] {
        ++next_crash;
        if (const auto status = scenario.crash_and_recover_server(0);
            !status.ok()) {
          if (crash_failure.empty()) {
            crash_failure = "recovery failed: " + status.error().to_string();
          }
          return;
        }
        if (config.inject_divergence) {
          // Deliberate corruption for harness self-tests: one phantom
          // completion report the baseline never saw.
          scenario.tenants()[0].server->warehouse().record_completion(
              SiteId(1), 1234.5);
        }
        arm_next();
      });
    }, point.mid_checkpoint);
  };
  arm_next();

  const SimTime stopped = scenario.run(config.horizon);
  if (crashes_executed != nullptr) *crashes_executed = next_crash;

  const exp::Tenant& tenant = scenario.tenants()[0];
  RunArtifacts artifacts;
  artifacts.stopped_at = stopped;
  artifacts.dags_total = tenant.client->dag_outcomes().size();
  artifacts.dags_finished = tenant.client->dags_finished();
  artifacts.journal_text = tenant.server->warehouse().journal().serialize();
  artifacts.journal_records = static_cast<std::size_t>(
      tenant.server->warehouse().journal().next_seq());
  artifacts.journal_live_records = tenant.server->warehouse().journal().size();
  artifacts.trace_jsonl = scenario.recorder().trace().to_jsonl();
  artifacts.speculations = tenant.server->stats().speculations;
  artifacts.invariant_violation = crash_failure;
  if (artifacts.invariant_violation.empty()) {
    try {
      tenant.server->warehouse().check_invariants();
      scenario.engine().check_invariants();
    } catch (const std::exception& error) {
      artifacts.invariant_violation = error.what();
    }
  }
  return artifacts;
}

/// One straggler-probe arm: the outage schedule and lossy-wire windows
/// apply as in run_once, but there are no server crashes -- the A/B
/// isolates the defense, and crash coverage lives in `campaign
/// --speculate`.
StragglerArmResult run_straggler_arm(const StragglerProbeConfig& config,
                                     const ChaosSchedule& schedule,
                                     bool speculate) {
  exp::ScenarioConfig scenario_config;
  scenario_config.seed = config.seed;
  scenario_config.site_failures = false;
  scenario_config.background_load = false;
  scenario_config.outage_schedules = schedule.outages;
  for (const NetFaultWindow& window : schedule.net_windows) {
    rpc::LinkFaultRule rule;
    rule.start = window.at;
    rule.end = window.at + window.duration;
    if (window.partition) {
      rule.from_prefix = "sphinx-client";
      rule.to_prefix = "sphinx-server";
      rule.partition = true;
    } else {
      rule.loss = window.loss;
      rule.duplicate = window.duplicate;
      rule.reorder = window.reorder;
      rule.reorder_spike = window.reorder_spike;
    }
    scenario_config.network_faults.rules.push_back(rule);
  }
  exp::Scenario scenario(scenario_config);

  exp::TenantOptions options;
  options.algorithm = config.algorithm;
  options.job_timeout = config.job_timeout;
  options.speculate = speculate;
  scenario.add_tenant("straggler", options);

  workflow::WorkloadConfig workload;
  workload.jobs_per_dag = config.jobs_per_dag;
  auto generator = scenario.make_generator("straggler", workload);
  const std::vector<workflow::Dag> dags =
      generator.generate_batch("straggler", config.dag_count);

  scenario.start();
  for (std::size_t k = 0; k < dags.size(); ++k) {
    const workflow::Dag& dag = dags[k];
    scenario.engine().schedule_at(
        kFirstSubmitAt + static_cast<double>(k) * kSubmitSpacing,
        "submit:" + dag.name(),
        [&scenario, &dag] { scenario.tenants()[0].client->submit(dag); });
  }
  scenario.run(config.horizon);

  const exp::Tenant& tenant = scenario.tenants()[0];
  StragglerArmResult arm;
  arm.speculate = speculate;
  arm.dags_total = tenant.client->dag_outcomes().size();
  arm.dags_finished = tenant.client->dags_finished();
  for (const core::DagOutcome& outcome : tenant.client->dag_outcomes()) {
    if (outcome.done()) arm.dag_completions.push_back(outcome.completion_time());
  }
  arm.timeouts = tenant.client->tracker_stats().timeouts;
  arm.speculations = tenant.server->stats().speculations;
  arm.won_primary = tenant.server->stats().speculations_won_primary;
  arm.won_spec = tenant.server->stats().speculations_won_spec;
  arm.stale_skips = tenant.server->stats().detector_stale_skips;
  arm.digest = fnv1a(scenario.recorder().trace().to_jsonl(),
                     fnv1a(tenant.server->warehouse().journal().serialize()));
  return arm;
}

}  // namespace

ScheduleConfig straggler_schedule_defaults() {
  ScheduleConfig schedule;
  // Long-tail grid: mostly black-hole and degraded outages, across
  // enough sites that every run has several compromised ones.  The span
  // is compressed to the workload's active window -- the probe's DAGs
  // are in flight for the first hour at most, and an outage that starts
  // after the last job finished measures nothing.  Outages last longer
  // than the tracker timeout, so without the defense a trapped job's
  // only escape is the timeout.  No server crashes -- this schedule
  // measures the defense, not recovery.
  schedule.span = minutes(45);
  schedule.outages = 14;
  schedule.mean_duration = minutes(50);
  schedule.min_duration = minutes(10);
  schedule.weight_down = 0.2;
  schedule.weight_black_hole = 1.0;
  schedule.weight_degraded = 1.0;
  schedule.bursts = 1;
  schedule.burst_sites = 3;
  schedule.crashes = 0;
  schedule.mid_ckpt_crashes = 0;
  // One mild lossy window; no partitions (a severed control link stalls
  // both arms identically and only blurs the tail-latency signal).
  schedule.net_windows = 1;
  schedule.net_loss = 0.03;
  schedule.net_duplicate = 0.02;
  schedule.net_reorder = 0.03;
  schedule.net_partitions = 0;
  return schedule;
}

StragglerProbeResult run_straggler_probe(const StragglerProbeConfig& config) {
  const ChaosSchedule schedule =
      synthesize(config.seed, config.schedule, exp::Scenario::site_names());
  StragglerProbeResult result;
  result.seed = config.seed;
  result.off = run_straggler_arm(config, schedule, false);
  result.on = run_straggler_arm(config, schedule, true);
  return result;
}

ChaosSchedule synthesize_schedule(const ChaosRunConfig& config) {
  return synthesize(config.seed, config.schedule, exp::Scenario::site_names());
}

ChaosRunResult run_chaos_pair(const ChaosRunConfig& config,
                              const ChaosSchedule& schedule) {
  ChaosRunResult result;
  result.seed = config.seed;
  result.schedule = schedule;

  const RunArtifacts chaotic =
      run_once(config, schedule, true, &result.crashes_executed);
  const RunArtifacts baseline = run_once(config, schedule, false, nullptr);

  result.invariants = check_run_invariants(chaotic);
  result.differential = check_differential(chaotic, baseline);
  result.digest = fnv1a(chaotic.trace_jsonl, fnv1a(chaotic.journal_text));
  result.speculations = chaotic.speculations;
  result.journal_records = chaotic.journal_records;
  result.journal_live_records = chaotic.journal_live_records;
  return result;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  std::vector<std::function<ChaosRunResult()>> tasks;
  tasks.reserve(static_cast<std::size_t>(config.runs));
  for (int i = 0; i < config.runs; ++i) {
    ChaosRunConfig run_config = config.base;
    run_config.seed = config.base.seed + static_cast<std::uint64_t>(i);
    tasks.emplace_back([run_config] {
      return run_chaos_pair(run_config, synthesize_schedule(run_config));
    });
  }

  CampaignResult campaign;
  campaign.runs = config.runs;
  campaign.results = exp::run_parallel(tasks, config.max_threads);

  std::uint64_t digest = fnv1a("sphinx-chaos-campaign");
  for (const ChaosRunResult& result : campaign.results) {
    if (!result.ok()) ++campaign.failures;
    digest = fnv1a(std::to_string(result.digest), digest);
  }
  campaign.digest = digest;

  if (campaign.failures > 0 && config.minimize_failures) {
    // Shrink the first failure only: minimization replays the run pair
    // per candidate schedule, so one repro per campaign keeps the cost
    // bounded while still leaving a deterministic artifact to replay.
    for (const ChaosRunResult& result : campaign.results) {
      if (result.ok()) continue;
      ChaosRunConfig run_config = config.base;
      run_config.seed = result.seed;
      const ChaosSchedule minimized = minimize_schedule(
          result.schedule, [&run_config](const ChaosSchedule& candidate) {
            return !run_chaos_pair(run_config, candidate).ok();
          });
      ReproCase repro;
      repro.config = run_config;
      repro.schedule = minimized;
      repro.violation = run_chaos_pair(run_config, minimized).violation();
      campaign.repros.push_back(std::move(repro));
      break;
    }
  }
  return campaign;
}

std::string to_json(const ReproCase& repro) {
  std::string out = "{\"config\":{";
  out += "\"seed\":" + std::to_string(repro.config.seed);
  out += ",\"dag_count\":" + std::to_string(repro.config.dag_count);
  out += ",\"jobs_per_dag\":" + std::to_string(repro.config.jobs_per_dag);
  out += ",\"algorithm\":\"";
  out += core::to_string(repro.config.algorithm);
  out += "\",\"horizon\":" + obs::format_double(repro.config.horizon);
  out += ",\"background_load\":";
  out += repro.config.background_load ? "true" : "false";
  out += ",\"checkpoint_every\":" +
         std::to_string(repro.config.checkpoint_every);
  out += ",\"speculate\":";
  out += repro.config.speculate ? "true" : "false";
  out += ",\"inject_divergence\":";
  out += repro.config.inject_divergence ? "true" : "false";
  out += "},\"violation\":\"" + obs::json_escape(repro.violation) + "\"";
  out += ",\"schedule\":" + to_json(repro.schedule);
  out += "}";
  return out;
}

Expected<ReproCase> repro_from_json(const std::string& text) {
  const auto bad = [](const std::string& what) {
    return Unexpected<Error>{Error{"bad_repro", what}};
  };
  auto doc = parse_json(text);
  if (!doc) return Unexpected<Error>{doc.error()};
  const JsonValue* config = doc->find("config");
  const JsonValue* schedule = doc->find("schedule");
  if (config == nullptr || !config->is_object() || schedule == nullptr) {
    return bad("expected {config, schedule}");
  }

  ReproCase repro;
  const auto number = [&](const char* key, double fallback) {
    const JsonValue* value = config->find(key);
    return value != nullptr && value->is_number() ? value->number : fallback;
  };
  const auto flag = [&](const char* key) {
    const JsonValue* value = config->find(key);
    return value != nullptr && value->type == JsonValue::Type::kBool &&
           value->boolean;
  };
  repro.config.seed = static_cast<std::uint64_t>(number("seed", 1));
  repro.config.dag_count = static_cast<int>(number("dag_count", 3));
  repro.config.jobs_per_dag = static_cast<int>(number("jobs_per_dag", 6));
  repro.config.horizon = number("horizon", hours(24));
  repro.config.background_load = flag("background_load");
  repro.config.checkpoint_every = static_cast<std::size_t>(
      number("checkpoint_every",
             static_cast<double>(repro.config.checkpoint_every)));
  repro.config.speculate = flag("speculate");
  repro.config.inject_divergence = flag("inject_divergence");
  if (const JsonValue* algorithm = config->find("algorithm")) {
    if (!algorithm->is_string()) return bad("algorithm: string");
    if (algorithm->text == "round-robin") {
      repro.config.algorithm = core::Algorithm::kRoundRobin;
    } else if (algorithm->text == "num-cpus") {
      repro.config.algorithm = core::Algorithm::kNumCpus;
    } else if (algorithm->text == "queue-length") {
      repro.config.algorithm = core::Algorithm::kQueueLength;
    } else if (algorithm->text == "completion-time") {
      repro.config.algorithm = core::Algorithm::kCompletionTime;
    } else {
      return bad("unknown algorithm: " + algorithm->text);
    }
  }
  if (const JsonValue* violation = doc->find("violation");
      violation != nullptr && violation->is_string()) {
    repro.violation = violation->text;
  }

  auto parsed = schedule_from_value(*schedule);
  if (!parsed) return Unexpected<Error>{parsed.error()};
  repro.schedule = std::move(*parsed);
  return repro;
}

ChaosRunResult replay(const ReproCase& repro) {
  return run_chaos_pair(repro.config, repro.schedule);
}

}  // namespace sphinx::chaos
