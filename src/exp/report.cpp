#include "exp/report.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace sphinx::exp {

std::string render_dag_completion(const std::string& title,
                                  const std::vector<TenantResult>& results) {
  std::string out = title + "\n";
  double max_value = 0.0;
  for (const TenantResult& r : results) {
    max_value = std::max(max_value, r.avg_dag_completion);
  }
  for (const TenantResult& r : results) {
    out += bar_line(r.label, r.avg_dag_completion, max_value, 40, "s") + "\n";
  }
  return out;
}

std::string render_exec_idle(const std::string& title,
                             const std::vector<TenantResult>& results) {
  std::string out = title + "\n";
  TextTable table;
  table.set_header({"algorithm", "execution (s)", "idle (s)", "total (s)"});
  for (const TenantResult& r : results) {
    table.add_row({r.label, format_double(r.avg_job_execution, 1),
                   format_double(r.avg_job_idle, 1),
                   format_double(r.avg_job_execution + r.avg_job_idle, 1)});
  }
  out += table.render();
  return out;
}

std::string render_site_distribution(const std::string& title,
                                     const TenantResult& result) {
  std::string out = title + " [" + result.label + "]\n";
  TextTable table;
  table.set_header({"site", "# of jobs", "avg comp time (s)"});
  for (const SiteFigure& site : result.per_site) {
    table.add_row({site.site, std::to_string(site.completed),
                   site.completed > 0 ? format_double(site.avg_completion, 1)
                                      : "-"});
  }
  out += table.render();
  return out;
}

std::string render_timeouts(const std::string& title,
                            const std::vector<TenantResult>& results) {
  std::string out = title + "\n";
  double max_value = 1.0;
  for (const TenantResult& r : results) {
    max_value = std::max(max_value, static_cast<double>(r.timeouts));
  }
  for (const TenantResult& r : results) {
    out += bar_line(r.label, static_cast<double>(r.timeouts), max_value, 40,
                    "timeouts") +
           "\n";
  }
  return out;
}

std::string render_summary(const std::vector<TenantResult>& results) {
  TextTable table;
  table.set_header({"algorithm", "dags done", "plans", "replans", "timeouts",
                    "held/failed"});
  for (const TenantResult& r : results) {
    table.add_row({r.label,
                   std::to_string(r.dags_finished) + "/" +
                       std::to_string(r.dags_total),
                   std::to_string(r.plans), std::to_string(r.replans),
                   std::to_string(r.timeouts),
                   std::to_string(r.held_or_failed)});
  }
  return table.render();
}

}  // namespace sphinx::exp
