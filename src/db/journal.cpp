#include "db/journal.hpp"

#include <sstream>

#include "common/contracts.hpp"
#include "common/strings.hpp"
#include "db/encoding.hpp"

namespace sphinx::db {
namespace {

std::size_t digit_count(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 10) {
    v /= 10;
    ++n;
  }
  return n;
}

/// Byte length encode_value(v) would produce.  Numeric payloads are
/// formatted to measure them (their width is format-defined); text is
/// measured without building the escaped copy.
std::size_t value_text_size(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return 2;
    case ValueType::kText: return 2 + escaped_size(v.as_text());
    case ValueType::kBool: return 3;
    default: return encode_value(v).size();
  }
}

/// Serialized line length of one entry, matching append_entry_text.
std::size_t entry_text_size(const JournalEntry& e) {
  // Every op starts "X\t<table>" and ends "\n".
  std::size_t n = 1 + 1 + escaped_size(e.table) + 1;
  switch (e.op) {
    case JournalEntry::Op::kCreateTable:
      for (const Column& col : e.schema) {
        n += 1 + escaped_size(col.name) + 1 +
             std::char_traits<char>::length(to_string(col.type)) +
             (col.indexed ? 1 : 0);
      }
      break;
    case JournalEntry::Op::kInsert:
      n += 1 + digit_count(e.row);
      for (const Value& v : e.cells) n += 1 + value_text_size(v);
      break;
    case JournalEntry::Op::kUpdate:
      n += 1 + digit_count(e.row) + 1 + digit_count(e.column) + 1 +
           value_text_size(e.cells.at(0));
      break;
    case JournalEntry::Op::kErase:
      n += 1 + digit_count(e.row);
      break;
  }
  return n;
}

void append_entry_text(const JournalEntry& e, std::string& out) {
  switch (e.op) {
    case JournalEntry::Op::kCreateTable: {
      out += 'C';
      out += '\t';
      out += escape_field(e.table);
      for (const Column& col : e.schema) {
        out += '\t';
        out += encode_column(col);
      }
      break;
    }
    case JournalEntry::Op::kInsert: {
      out += 'I';
      out += '\t';
      out += escape_field(e.table);
      out += '\t';
      out += std::to_string(e.row);
      for (const Value& v : e.cells) {
        out += '\t';
        out += encode_value(v);
      }
      break;
    }
    case JournalEntry::Op::kUpdate: {
      out += 'U';
      out += '\t';
      out += escape_field(e.table);
      out += '\t';
      out += std::to_string(e.row);
      out += '\t';
      out += std::to_string(e.column);
      out += '\t';
      out += encode_value(e.cells.at(0));
      break;
    }
    case JournalEntry::Op::kErase: {
      out += 'E';
      out += '\t';
      out += escape_field(e.table);
      out += '\t';
      out += std::to_string(e.row);
      break;
    }
  }
  out += '\n';
}

std::size_t header_text_size(std::uint64_t base_seq) noexcept {
  // "#seq\t<base>\n", emitted only once the journal has been truncated.
  return base_seq == 0 ? 0 : 4 + 1 + digit_count(base_seq) + 1;
}

}  // namespace

void Journal::truncate_before(std::uint64_t seq) {
  if (seq <= base_seq_) return;
  const std::uint64_t limit = next_seq();
  if (seq > limit) seq = limit;
  entries_.erase(entries_.begin(),
                 entries_.begin() +
                     static_cast<std::ptrdiff_t>(seq - base_seq_));
  base_seq_ = seq;
}

void Journal::clear() noexcept {
  base_seq_ += entries_.size();
  entries_.clear();
}

void Journal::adopt_suffix(const Journal& src, std::uint64_t from_seq) {
  entries_.clear();
  base_seq_ = std::max(from_seq, src.base_seq_);
  const std::uint64_t limit = src.next_seq();
  SPHINX_PRECONDITION(base_seq_ <= limit,
                      "adopt_suffix start past the source journal's end");
  entries_.assign(
      src.entries_.begin() +
          static_cast<std::ptrdiff_t>(base_seq_ - src.base_seq_),
      src.entries_.end());
}

std::size_t Journal::size_bytes() const noexcept {
  std::size_t n = header_text_size(base_seq_);
  for (const JournalEntry& e : entries_) n += entry_text_size(e);
  return n;
}

std::string Journal::serialize() const {
  std::string out;
  out.reserve(size_bytes());
  if (base_seq_ != 0) {
    out += "#seq\t";
    out += std::to_string(base_seq_);
    out += '\n';
  }
  for (const JournalEntry& e : entries_) append_entry_text(e, out);
  SPHINX_POSTCONDITION(out.size() == size_bytes(),
                       "size_bytes() disagrees with serialize()");
  return out;
}

Expected<Journal> Journal::parse(const std::string& text) {
  Journal journal;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Header line: "#seq\t<base>".  Legacy (pre-compaction) logs have
      // no header and parse with base 0.
      const std::vector<std::string> fields = split(line, '\t');
      if (fields.size() != 2 || fields[0] != "#seq" ||
          !journal.entries_.empty() || journal.base_seq_ != 0) {
        return make_error("journal_parse", "bad header: " + line);
      }
      try {
        journal.base_seq_ = std::stoull(fields[1]);
      } catch (const std::exception&) {
        return make_error("journal_parse", "bad header seq: " + fields[1]);
      }
      continue;
    }
    const std::vector<std::string> fields = split(line, '\t');
    if (fields.size() < 2) {
      return make_error("journal_parse", "short record: " + line);
    }
    JournalEntry entry;
    auto table = unescape_field(fields[1]);
    if (!table) return Unexpected<Error>{table.error()};
    entry.table = std::move(*table);

    const std::string& op = fields[0];
    if (op == "C") {
      entry.op = JournalEntry::Op::kCreateTable;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        auto column = decode_column(fields[i]);
        if (!column) return Unexpected<Error>{column.error()};
        entry.schema.push_back(std::move(*column));
      }
    } else if (op == "I") {
      if (fields.size() < 3) return make_error("journal_parse", "short insert");
      entry.op = JournalEntry::Op::kInsert;
      entry.row = std::stoull(fields[2]);
      for (std::size_t i = 3; i < fields.size(); ++i) {
        auto v = decode_value(fields[i]);
        if (!v) return Unexpected<Error>{v.error()};
        entry.cells.push_back(std::move(*v));
      }
    } else if (op == "U") {
      if (fields.size() != 5) return make_error("journal_parse", "bad update");
      entry.op = JournalEntry::Op::kUpdate;
      entry.row = std::stoull(fields[2]);
      entry.column = std::stoull(fields[3]);
      auto v = decode_value(fields[4]);
      if (!v) return Unexpected<Error>{v.error()};
      entry.cells.push_back(std::move(*v));
    } else if (op == "E") {
      if (fields.size() != 3) return make_error("journal_parse", "bad erase");
      entry.op = JournalEntry::Op::kErase;
      entry.row = std::stoull(fields[2]);
    } else {
      return make_error("journal_parse", "unknown op: " + op);
    }
    journal.append(std::move(entry));
  }
  return journal;
}

}  // namespace sphinx::db
