# Empty compiler generated dependencies file for ablation_dagshape.
# This may be replaced when dependencies are built.
