#include "grid/site.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sphinx::grid {

const char* to_string(RemoteJobState state) noexcept {
  switch (state) {
    case RemoteJobState::kQueued: return "queued";
    case RemoteJobState::kStaging: return "staging";
    case RemoteJobState::kRunning: return "running";
    case RemoteJobState::kCompleted: return "completed";
    case RemoteJobState::kHeld: return "held";
    case RemoteJobState::kCancelled: return "cancelled";
  }
  return "?";
}

const char* to_string(SiteHealth health) noexcept {
  switch (health) {
    case SiteHealth::kHealthy: return "healthy";
    case SiteHealth::kDown: return "down";
    case SiteHealth::kBlackHole: return "black-hole";
    case SiteHealth::kDegraded: return "degraded";
  }
  return "?";
}

Site::Site(sim::Engine& engine, SiteId id, SiteConfig config, Rng rng)
    : engine_(engine), id_(id), config_(std::move(config)), rng_(std::move(rng)) {
  SPHINX_ASSERT(config_.cpus > 0, "site must have at least one CPU");
  SPHINX_ASSERT(config_.cpu_speed > 0, "cpu speed must be positive");
}

std::optional<SubmissionId> Site::submit(RemoteJob job,
                                         JobEventCallback callback) {
  if (health_ == SiteHealth::kDown) return std::nullopt;
  job.submission = submission_ids_.next();

  // The site's VO priority sets the base; the submitter's requested
  // priority is honoured only as a bounded within-VO nudge (a user cannot
  // out-rank another VO by asking nicely).
  if (const auto it = config_.vo_priority.find(job.vo);
      it != config_.vo_priority.end()) {
    job.priority = it->second + std::clamp(job.priority, -0.9, 0.9);
  }

  Entry entry;
  entry.job = std::move(job);
  entry.callback = std::move(callback);
  entry.submitted_at = engine_.now();
  const SubmissionId sid = entry.job.submission;
  const double priority = entry.job.priority;
  entries_.emplace(sid, std::move(entry));

  const auto key = std::make_pair(-priority, arrival_seq_++);
  queue_.emplace(key, sid);
  queue_pos_.emplace(sid, key);
  ++counters_.submitted;

  emit(entries_.at(sid), RemoteJobState::kQueued);
  // Dispatch on the next engine tick so the submit call returns first.
  engine_.schedule_in(0.0, "site:" + config_.name + ":dispatch",
                      [this] { try_dispatch(); });
  return sid;
}

bool Site::cancel(SubmissionId submission) {
  if (health_ == SiteHealth::kDown) return false;
  const auto it = entries_.find(submission);
  if (it == entries_.end() || is_terminal(it->second.state)) return false;

  Entry& entry = it->second;
  if (entry.state == RemoteJobState::kQueued) {
    if (const auto pos = queue_pos_.find(submission); pos != queue_pos_.end()) {
      queue_.erase(pos->second);
      queue_pos_.erase(pos);
    }
  } else {
    // Staging or running: free the CPU.
    engine_.cancel(entry.completion);
    --busy_cpus_;
    engine_.schedule_in(0.0, "site:" + config_.name + ":dispatch",
                        [this] { try_dispatch(); });
  }
  ++counters_.cancelled;
  emit(entry, RemoteJobState::kCancelled);
  return true;
}

std::optional<QueueStatus> Site::query() const {
  if (health_ == SiteHealth::kDown) return std::nullopt;
  QueueStatus status;
  status.cpus = config_.cpus;
  status.queued = static_cast<int>(queue_.size());
  status.running = busy_cpus_;
  status.free_cpus = config_.cpus - busy_cpus_;
  return status;
}

std::optional<RemoteJobState> Site::submission_state(
    SubmissionId submission) const {
  const auto it = entries_.find(submission);
  if (it == entries_.end()) return std::nullopt;
  return it->second.state;
}

void Site::go_down() {
  health_ = SiteHealth::kDown;
  // Every non-terminal job is silently lost; no events are emitted
  // because an unresponsive site cannot notify anyone.  The submitter
  // only finds out through its own timeouts.
  for (auto& [sid, entry] : entries_) {
    if (is_terminal(entry.state)) continue;
    engine_.cancel(entry.completion);
    if (entry.state != RemoteJobState::kQueued) --busy_cpus_;
    entry.state = RemoteJobState::kHeld;  // terminal from the site's view
    ++counters_.lost;
  }
  queue_.clear();
  queue_pos_.clear();
  SPHINX_ASSERT(busy_cpus_ == 0, "cpu accounting broken on go_down");
}

void Site::become_black_hole() { health_ = SiteHealth::kBlackHole; }

void Site::degrade() { health_ = SiteHealth::kDegraded; }

void Site::recover() {
  health_ = SiteHealth::kHealthy;
  engine_.schedule_in(0.0, "site:" + config_.name + ":dispatch",
                      [this] { try_dispatch(); });
}

void Site::emit(Entry& entry, RemoteJobState state) {
  entry.state = state;
  if (entry.callback) {
    entry.callback(JobEvent{entry.job.submission, state, engine_.now()});
  }
}

double Site::effective_speed() const noexcept {
  const double base = config_.cpu_speed;
  return health_ == SiteHealth::kDegraded ? base * config_.degraded_speed
                                          : base;
}

void Site::try_dispatch() {
  if (health_ == SiteHealth::kDown || health_ == SiteHealth::kBlackHole) {
    return;  // black holes accept work but never start it
  }
  while (busy_cpus_ < config_.cpus && !queue_.empty()) {
    const auto front = queue_.begin();
    const SubmissionId sid = front->second;
    queue_.erase(front);
    queue_pos_.erase(sid);
    ++busy_cpus_;
    start_job(sid);
  }
}

void Site::start_job(SubmissionId submission) {
  Entry& entry = entries_.at(submission);
  ++counters_.dispatched;
  emit(entry, RemoteJobState::kStaging);
  if (entry.state != RemoteJobState::kStaging) return;  // callback cancelled us

  const auto resume = [this, submission] {
    // The job may have been cancelled or the site may have failed while
    // data was in flight.
    const auto it = entries_.find(submission);
    if (it == entries_.end() || it->second.state != RemoteJobState::kStaging ||
        health_ == SiteHealth::kDown) {
      return;
    }
    begin_compute(submission);
  };
  if (entry.job.stage) {
    entry.job.stage(resume);
  } else if (stage_in_) {
    stage_in_(entry.job, resume);
  } else {
    begin_compute(submission);
  }
}

void Site::begin_compute(SubmissionId submission) {
  Entry& entry = entries_.at(submission);
  emit(entry, RemoteJobState::kRunning);
  if (entry.state != RemoteJobState::kRunning) return;

  double runtime = entry.job.compute_time / effective_speed();
  if (config_.runtime_noise > 0) {
    runtime *= rng_.lognormal(0.0, config_.runtime_noise);
  }
  entry.completion = engine_.schedule_in(
      runtime, "site:" + config_.name + ":complete", [this, submission] {
        Entry& e = entries_.at(submission);
        if (e.state != RemoteJobState::kRunning) return;
        --busy_cpus_;
        ++counters_.completed;
        emit(e, RemoteJobState::kCompleted);
        try_dispatch();
      });
}

}  // namespace sphinx::grid
