/// Figure 4: the four scheduling algorithms at doubled load (60 DAGs x
/// 10 jobs).  Paper: completion-time's advantage grows (~33-50 % better)
/// because its knowledge base is richer by the time most jobs are
/// planned.

#include "bench_common.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Figure 4", "four algorithms (60 dags x 10 jobs/dag)");
  exp::Experiment experiment(paper_config(60));
  const auto results = experiment.run(exp::standard_panel());
  print_results("fig4", results, true);

  const double best = results.front().avg_dag_completion;
  double worst = best;
  for (const auto& r : results) {
    worst = std::max(worst, r.avg_dag_completion);
  }
  std::printf("completion-time vs worst: %.1f%% better (paper: 33-50%% vs "
              "other strategies)\n",
              100.0 * (worst - best) / worst);
  return 0;
}
