#include "core/client.hpp"

namespace sphinx::core {

using rpc::XrValue;

SphinxClient::SphinxClient(rpc::MessageBus& bus, submit::CondorG& gateway,
                           ClientConfig config, rpc::Proxy proxy)
    : bus_(bus), gateway_(gateway), config_(std::move(config)) {
  // The client endpoint only accepts calls from authenticated peers; the
  // server presents its host proxy (VO "ivdgl").
  rpc::AuthzPolicy policy;
  policy.allow_vo("*", "ivdgl");
  policy.allow_vo("*", config_.vo);
  service_ = std::make_unique<rpc::ClarensService>(bus_, config_.endpoint,
                                                   std::move(policy));
  service_->register_method(
      "sphinx_client.execute_plan",
      [this](const std::vector<XrValue>& params, const rpc::Proxy&) {
        return handle_execute_plan(params);
      });
  service_->register_method(
      "sphinx_client.dag_done",
      [this](const std::vector<XrValue>& params, const rpc::Proxy&) {
        return handle_dag_done(params);
      });
  service_->register_method(
      "sphinx_client.cancel_attempt",
      [this](const std::vector<XrValue>& params, const rpc::Proxy&) {
        return handle_cancel_attempt(params);
      });
  rpc_ = std::make_unique<rpc::ClarensClient>(bus_, config_.endpoint + "/out",
                                              std::move(proxy));
}

SphinxClient::~SphinxClient() = default;

void SphinxClient::submit(const workflow::Dag& dag, double priority,
                          SimTime deadline) {
  DagOutcome outcome;
  outcome.id = dag.id();
  outcome.name = dag.name();
  outcome.submitted_at = bus_.engine().now();
  outcome.deadline = deadline;
  outcome_index_[dag.id()] = outcomes_.size();
  outcomes_.push_back(outcome);

  rpc_->call(config_.server, "sphinx.submit_dag",
             {XrValue(config_.endpoint), XrValue(config_.user.value()),
              encode_dag(dag), XrValue(priority), XrValue(deadline)},
             [this, name = dag.name()](Expected<XrValue> result) {
               if (!result.has_value()) {
                 log_.error("dag submission rejected: ",
                            result.error().to_string());
               }
             });
}

Expected<XrValue> SphinxClient::handle_execute_plan(
    const std::vector<XrValue>& params) {
  if (params.size() != 1) return make_error("bad_request", "expected [plan]");
  auto plan = decode_plan(params[0]);
  if (!plan) return Unexpected<Error>{plan.error()};
  // Duplicate-delivery guard: a replanned job always carries a fresh
  // attempt number, so a repeated (job, attempt) pair is a retransmission
  // that escaped the RPC dedup cache.  Acknowledge it without touching
  // the tracker or the gateway -- a plan must never execute twice.
  if (!submitted_attempts_.emplace(plan->job.value(), plan->attempt).second) {
    ++tracker_.duplicate_plans;
    if (recorder_ != nullptr) {
      recorder_->count(config_.endpoint, "tracker.duplicate_plans");
    }
    return XrValue(true);
  }
  ++tracker_.plans_received;
  if (recorder_ != nullptr) {
    recorder_->count(config_.endpoint, "tracker.plans_received");
  }
  if (plan->speculative) {
    ++tracker_.speculative_plans;
    if (recorder_ != nullptr) {
      recorder_->count(config_.endpoint, "tracker.speculative_plans");
    }
  }

  // Build the submit file from the server's decision.
  submit::SubmitRequest request;
  request.job = plan->job;
  request.name = plan->job_name;
  request.user = config_.user;
  request.vo = config_.vo;
  request.site = plan->site;
  request.priority = plan->batch_priority;
  request.compute_time = plan->compute_time;
  request.attempt = plan->attempt;
  for (const PlannedInput& input : plan->inputs) {
    request.inputs.push_back(
        submit::StagedInput{input.lfn, input.source, input.bytes});
  }
  request.output = plan->output;
  request.output_bytes = plan->output_bytes;

  const SimTime now = bus_.engine().now();
  Tracked tracked;
  tracked.plan = *plan;
  tracked.submitted_at = now;
  const JobId job = plan->job;
  const int attempt = plan->attempt;
  const Key key{job.value(), attempt};
  // (Re)insert: each attempt gets its own entry, so a resubmission starts
  // with a *fresh* extensions budget -- the previous attempt's used-up
  // extensions must not count against the new attempt (Figure 8's timeout
  // counts depend on this).  A speculative plan coexists with the still
  // racing primary attempt instead of replacing it.
  if (const auto it = tracked_.find(key); it != tracked_.end()) {
    bus_.engine().cancel(it->second.timeout);
    erase_tracked(key);
  }
  if (plan->speculative) {
    ++racing_now_;
    // Cross-layer contract: the server enforces its speculation budgets
    // *before* sending a plan; more concurrent racers than the client
    // budget means that enforcement is broken.
    SPHINX_ASSERT(racing_now_ <= config_.speculation_budget,
                  "speculation budget exceeded at the client");
  }
  auto& slot = tracked_.emplace(key, std::move(tracked)).first->second;
  slot.timeout = bus_.engine().schedule_in(
      config_.job_timeout, config_.endpoint + ":timeout",
      [this, job, attempt] { on_timeout(job, attempt); });

  ++tracker_.submissions;
  const bool accepted = gateway_.submit(
      request,
      [this](const submit::GatewayEvent& event) { on_gateway_event(event); });
  if (accepted) {
    report(TrackerReport{job, ReportKind::kSubmitted, plan->site, now, 0, 0, 0,
                         attempt});
  }
  // If not accepted, the kFailed gateway event already ran on_gateway_event
  // and requested replanning.
  return XrValue(true);
}

Expected<XrValue> SphinxClient::handle_dag_done(
    const std::vector<XrValue>& params) {
  if (params.size() != 2 || !params[0].is_int()) {
    return make_error("bad_request", "expected [dag_id, finished_at]");
  }
  const DagId dag(static_cast<std::uint64_t>(params[0].as_int()));
  const auto it = outcome_index_.find(dag);
  if (it == outcome_index_.end()) {
    return make_error("unknown_dag", "client never submitted this dag");
  }
  DagOutcome& outcome = outcomes_[it->second];
  if (outcome.done()) {
    // Duplicate notification: keep the first delivery's finish time so
    // completion-time metrics are not skewed by the retransmission.
    ++tracker_.duplicate_dag_done;
    if (recorder_ != nullptr) {
      recorder_->count(config_.endpoint, "tracker.duplicate_dag_done");
    }
    return XrValue(true);
  }
  outcome.finished_at = bus_.engine().now();
  if (recorder_ != nullptr) {
    recorder_->count(config_.endpoint, "tracker.dags_done");
    recorder_->observe(config_.endpoint, "dag.completion_time",
                       outcome.completion_time());
  }
  return XrValue(true);
}

void SphinxClient::finish_tracking(Tracked& tracked) {
  tracked.terminal = true;
  bus_.engine().cancel(tracked.timeout);
}

void SphinxClient::erase_tracked(Key key) {
  const auto it = tracked_.find(key);
  if (it == tracked_.end()) return;
  if (it->second.plan.speculative) {
    SPHINX_ASSERT(racing_now_ > 0, "racing counter underflow");
    --racing_now_;
  }
  tracked_.erase(it);
}

Expected<XrValue> SphinxClient::handle_cancel_attempt(
    const std::vector<XrValue>& params) {
  if (params.size() != 2 || !params[0].is_int() || !params[1].is_int()) {
    return make_error("bad_request", "expected [job_id, attempt]");
  }
  const JobId job(static_cast<std::uint64_t>(params[0].as_int()));
  const int attempt = static_cast<int>(params[1].as_int());
  const Key key{job.value(), attempt};
  // Idempotent: the loser attempt may already be gone (it completed or
  // failed before the cancel arrived, or this is a retransmission).  The
  // server has already settled the race either way.
  const auto it = tracked_.find(key);
  if (it == tracked_.end() || it->second.terminal) return XrValue(true);
  Tracked& tracked = it->second;
  finish_tracking(tracked);
  ++tracker_.race_cancels;
  if (recorder_ != nullptr) {
    recorder_->count(config_.endpoint, "tracker.race_cancels");
  }
  gateway_.cancel(job, attempt);
  // No report: the server initiated this cancellation when it settled the
  // race and has already retired the attempt.
  erase_tracked(key);
  return XrValue(true);
}

void SphinxClient::on_gateway_event(const submit::GatewayEvent& event) {
  const Key key{event.job.value(), event.attempt};
  const auto it = tracked_.find(key);
  if (it == tracked_.end()) return;
  Tracked& tracked = it->second;
  if (tracked.terminal) return;
  const SimTime now = bus_.engine().now();
  const SiteId site = tracked.plan.site;
  const int attempt = tracked.plan.attempt;

  switch (event.state) {
    case submit::GatewayJobState::kRunning: {
      tracked.started_at = now;
      TrackerReport r{event.job, ReportKind::kRunning, site, now, 0, 0, 0,
                      attempt};
      r.idle_time = now - tracked.submitted_at;
      report(r);
      return;
    }
    case submit::GatewayJobState::kCompleted: {
      finish_tracking(tracked);
      // First-completion-wins arbitration: when the sibling attempt of a
      // speculation race already completed, this one is the loser whose
      // cancel lost the race to its own completion.  Swallow it -- no
      // stats, no report -- the job is already done.
      if (!completed_jobs_.insert(event.job.value()).second) {
        ++tracker_.duplicate_completions;
        if (recorder_ != nullptr) {
          recorder_->count(config_.endpoint, "tracker.duplicate_completions");
        }
        erase_tracked(key);
        return;
      }
      ++tracker_.completions;
      TrackerReport r{event.job, ReportKind::kCompleted, site, now, 0, 0, 0,
                      attempt};
      r.completion_time = now - tracked.submitted_at;
      if (tracked.started_at < kNever) {
        r.execution_time = now - tracked.started_at;
        r.idle_time = tracked.started_at - tracked.submitted_at;
      }
      exec_times_.add(r.execution_time);
      idle_times_.add(r.idle_time);
      auto& obs = per_site_[site];
      ++obs.completed;
      obs.completion_times.add(r.completion_time);
      // Planner step 4: archive final outputs to persistent storage.
      if (tracked.plan.persist_output &&
          tracked.plan.persistent_site.valid() &&
          tracked.plan.persistent_site != site) {
        ++tracker_.persisted_outputs;
        gateway_.replicate(tracked.plan.output, tracked.plan.persistent_site,
                           [](bool) {});
      }
      if (recorder_ != nullptr) {
        recorder_->count(config_.endpoint, "tracker.completions");
        recorder_->observe(config_.endpoint, "job.completion_time",
                           r.completion_time);
      }
      report(r);
      erase_tracked(key);  // terminal: drop the tracker entry
      return;
    }
    case submit::GatewayJobState::kHeld:
    case submit::GatewayJobState::kFailed: {
      // Site-initiated failure: clean up the remote side and request
      // replanning ("the client also sends the job cancellation message
      // to the remote sites on which the held jobs are located").
      finish_tracking(tracked);
      ++tracker_.held_or_failed;
      gateway_.cancel(event.job, attempt);
      TrackerReport r{event.job, ReportKind::kHeld, site, now, 0, 0, 0,
                      attempt};
      r.completion_time = now - tracked.submitted_at;  // censored
      if (recorder_ != nullptr) {
        recorder_->count(config_.endpoint, "tracker.held_or_failed");
      }
      report(r);
      erase_tracked(key);  // terminal: drop the tracker entry
      return;
    }
    case submit::GatewayJobState::kRemoved: {
      if (!tracked.terminal) {
        // Removed by someone other than our timeout path: treat as held.
        finish_tracking(tracked);
        TrackerReport r{event.job, ReportKind::kHeld, site, now, 0, 0, 0,
                        attempt};
        r.completion_time = now - tracked.submitted_at;  // censored
        report(r);
        erase_tracked(key);
      }
      // Terminal entries are left for the initiating path (on_timeout or
      // the held branch above) to erase -- it still holds a reference.
      return;
    }
    default:
      return;  // kSubmitted/kIdle/kStaging carry no tracker action
  }
}

void SphinxClient::on_timeout(JobId job, int attempt) {
  const Key key{job.value(), attempt};
  const auto it = tracked_.find(key);
  if (it == tracked_.end() || it->second.terminal) return;
  Tracked& tracked = it->second;
  // Progress check before killing: a job visibly staging or computing on
  // a responsive site is slow, not lost.  Grant it another period (up to
  // the configured budget) instead of cancelling and re-staging it
  // somewhere else.
  const auto state = gateway_.state_of(job, attempt);
  const bool progressing =
      state.has_value() && (*state == submit::GatewayJobState::kStaging ||
                            *state == submit::GatewayJobState::kRunning);
  if (progressing && gateway_.site_responsive(job, attempt) &&
      tracked.extensions < config_.max_timeout_extensions) {
    ++tracked.extensions;
    ++tracker_.extensions;
    // Rearm relative to *this observation*, not the original schedule:
    // the next check fires one full timeout period from now, so repeated
    // extensions never accumulate drift against the submission time.
    tracked.timeout = bus_.engine().schedule_in(
        config_.job_timeout, config_.endpoint + ":timeout",
        [this, job, attempt] { on_timeout(job, attempt); });
    if (recorder_ != nullptr) {
      recorder_->event(obs::TraceKind::kTrackerExtension, config_.endpoint,
                       "job:" + std::to_string(job.value()),
                       "site:" + std::to_string(tracked.plan.site.value()),
                       static_cast<double>(tracked.extensions));
      recorder_->count(config_.endpoint, "tracker.extensions");
    }
    return;
  }
  finish_tracking(tracked);
  ++tracker_.timeouts;
  log_.debug("timeout for job ", job.value(), " on site ",
             tracked.plan.site.value(), "; cancelling and replanning");
  if (recorder_ != nullptr) {
    recorder_->event(obs::TraceKind::kTrackerTimeout, config_.endpoint,
                     "job:" + std::to_string(job.value()),
                     "site:" + std::to_string(tracked.plan.site.value()),
                     static_cast<double>(tracked.extensions));
    recorder_->count(config_.endpoint, "tracker.timeouts");
  }
  gateway_.cancel(job, attempt);  // condor_rm (or forced removal)
  TrackerReport r{job, ReportKind::kCancelled, tracked.plan.site,
                  bus_.engine().now(), 0, 0, 0, attempt};
  // The attempt had been outstanding for the full timeout: report that as
  // a censored (lower-bound) completion-time observation.
  r.completion_time = bus_.engine().now() - tracked.submitted_at;
  report(r);
  // Terminal: drop the entry.  The replacement plan (if the server
  // replans) re-inserts a fresh one with a zeroed extensions budget.
  erase_tracked(key);
}

void SphinxClient::report(const TrackerReport& r) {
  rpc_->call(config_.server, "sphinx.report", {encode_report(r)},
             [this](Expected<XrValue> result) {
               if (!result.has_value()) {
                 log_.warn("report rejected: ", result.error().to_string());
               }
             });
}

std::size_t SphinxClient::dags_finished() const noexcept {
  std::size_t n = 0;
  for (const DagOutcome& outcome : outcomes_) {
    if (outcome.done()) ++n;
  }
  return n;
}

bool SphinxClient::all_dags_finished() const noexcept {
  return !outcomes_.empty() && dags_finished() == outcomes_.size();
}

double SphinxClient::avg_dag_completion() const {
  RunningStats stats;
  for (const DagOutcome& outcome : outcomes_) {
    if (outcome.done()) stats.add(outcome.completion_time());
  }
  return stats.mean();
}

std::pair<std::size_t, std::size_t> SphinxClient::deadline_hits() const {
  std::size_t met = 0;
  std::size_t total = 0;
  for (const DagOutcome& outcome : outcomes_) {
    if (outcome.deadline >= kNever) continue;
    ++total;
    if (outcome.deadline_met()) ++met;
  }
  return {met, total};
}

double SphinxClient::avg_job_execution() const { return exec_times_.mean(); }
double SphinxClient::avg_job_idle() const { return idle_times_.mean(); }

}  // namespace sphinx::core
