#pragma once
/// \file cache.hpp
/// Fixture: a derived member whose mutations all stay inside the
/// functions its annotation names.

#include <cstddef>
#include <set>

namespace fixture {

class Cache {
 public:
  void rebuild();
  void absorb(int row);
  [[nodiscard]] std::size_t pending() const;

 private:
  std::set<int> dirty_;  // sphinx-lint: derived(rebuild, absorb)
};

}  // namespace fixture
