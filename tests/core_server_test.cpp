// Protocol-level tests of the SPHINX server and client: authorization,
// malformed payloads, report edge cases and recovery of in-flight work.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/oracle.hpp"
#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

namespace sphinx::exp {
namespace {

ScenarioConfig quiet(std::uint64_t seed = 61) {
  ScenarioConfig config;
  config.seed = seed;
  config.site_failures = false;
  config.background_load = false;
  return config;
}

/// A raw Clarens client with an arbitrary proxy for poking the server.
class RawCaller {
 public:
  RawCaller(Scenario& scenario, rpc::Proxy proxy)
      : client_(scenario.bus(), "raw-caller", std::move(proxy)),
        engine_(scenario.engine()) {}

  /// Synchronous-style call: runs the engine until the response arrives.
  Expected<rpc::XrValue> call(const std::string& service,
                              const std::string& method,
                              std::vector<rpc::XrValue> params) {
    std::optional<Expected<rpc::XrValue>> result;
    client_.call(service, method, std::move(params),
                 [&result](Expected<rpc::XrValue> r) {
                   result = std::move(r);
                 });
    while (!result.has_value() && engine_.step()) {
    }
    SPHINX_ASSERT(result.has_value(), "no response received");
    return std::move(*result);
  }

 private:
  rpc::ClarensClient client_;
  sim::Engine& engine_;
};

rpc::Proxy vo_proxy(const std::string& vo) {
  return rpc::Proxy(rpc::Identity{"/CN=raw", "/CN=CA"}, vo, {}, 0.0,
                    hours(24));
}

TEST(ServerProtocol, RejectsUnknownVo) {
  Scenario scenario(quiet());
  scenario.add_tenant("t", TenantOptions{});
  RawCaller caller(scenario, vo_proxy("intruders"));
  const auto result =
      caller.call("sphinx-server/t", "sphinx.report", {rpc::XrValue(1)});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, "fault:3");  // authorization denied
}

TEST(ServerProtocol, RejectsMalformedSubmit) {
  Scenario scenario(quiet());
  scenario.add_tenant("t", TenantOptions{});
  RawCaller caller(scenario, vo_proxy("uscms"));
  // Wrong arity.
  auto r = caller.call("sphinx-server/t", "sphinx.submit_dag",
                       {rpc::XrValue("client")});
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "fault:100");
  // Garbage dag payload.
  r = caller.call("sphinx-server/t", "sphinx.submit_dag",
                  {rpc::XrValue("client"), rpc::XrValue(1),
                   rpc::XrValue("not a dag")});
  ASSERT_FALSE(r.has_value());
  // Non-numeric priority.
  workflow::Dag dag(DagId(1), "x");
  workflow::JobSpec job;
  job.id = JobId(1);
  job.name = "j";
  job.output = "lfn://x";
  dag.add_job(job);
  r = caller.call("sphinx-server/t", "sphinx.submit_dag",
                  {rpc::XrValue("client"), rpc::XrValue(1),
                   core::encode_dag(dag), rpc::XrValue("high")});
  ASSERT_FALSE(r.has_value());
}

TEST(ServerProtocol, ReportForUnknownJobFaults) {
  Scenario scenario(quiet());
  scenario.add_tenant("t", TenantOptions{});
  RawCaller caller(scenario, vo_proxy("uscms"));
  core::TrackerReport report;
  report.job = JobId(999999);
  report.kind = core::ReportKind::kCompleted;
  report.site = SiteId(1);
  const auto r = caller.call("sphinx-server/t", "sphinx.report",
                             {core::encode_report(report)});
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "fault:100");
}

TEST(ServerProtocol, SetQuotaOverRpc) {
  Scenario scenario(quiet());
  Tenant& tenant = scenario.add_tenant("t", TenantOptions{});
  RawCaller caller(scenario, vo_proxy("uscms"));
  const auto r = caller.call(
      "sphinx-server/t", "sphinx.set_quota",
      {rpc::XrValue(7), rpc::XrValue(3), rpc::XrValue("cpu_seconds"),
       rpc::XrValue(1234.5)});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(tenant.server->warehouse().quota_remaining(
                       UserId(7), SiteId(3), "cpu_seconds"),
                   1234.5);
}

TEST(ServerProtocol, SubmitReturnsDagIdAndStoresPriority) {
  Scenario scenario(quiet());
  Tenant& tenant = scenario.add_tenant("t", TenantOptions{});
  RawCaller caller(scenario, vo_proxy("uscms"));
  workflow::Dag dag(DagId(77), "raw-dag");
  workflow::JobSpec job;
  job.id = JobId(770);
  job.name = "j";
  job.inputs = {"lfn://in"};
  job.output = "lfn://raw-out";
  dag.add_job(job);
  const auto r = caller.call("sphinx-server/t", "sphinx.submit_dag",
                             {rpc::XrValue("raw-caller"), rpc::XrValue(5),
                              core::encode_dag(dag), rpc::XrValue(3.5)});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->as_int(), 77);
  const auto record = tenant.server->warehouse().dag(DagId(77));
  ASSERT_TRUE(record.has_value());
  EXPECT_DOUBLE_EQ(record->priority, 3.5);
  EXPECT_EQ(record->user, UserId(5));
  EXPECT_EQ(record->client, "raw-caller");
}

TEST(ServerProtocol, StoppedServerPlansNothing) {
  Scenario scenario(quiet());
  Tenant& tenant = scenario.add_tenant("t", TenantOptions{});
  auto generator =
      scenario.make_generator("w", workflow::WorkloadConfig{});
  const auto dag = generator.generate("stopped");
  scenario.start();
  tenant.server->stop();  // control process halted; endpoint still up
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  scenario.engine().run_until(minutes(30));
  // The DAG was received but never planned.
  EXPECT_EQ(tenant.server->stats().dags_received, 1u);
  EXPECT_EQ(tenant.server->stats().plans_sent, 0u);
  // Restart: scheduling resumes where it left off.
  tenant.server->start();
  scenario.run(hours(6));
  EXPECT_TRUE(tenant.client->all_dags_finished());
}

TEST(ServerProtocol, RecoveredServerKeepsQuotaState) {
  Scenario scenario(quiet());
  Tenant& tenant = scenario.add_tenant("t", TenantOptions{});
  tenant.server->set_quota(UserId(1), SiteId(2), "cpu_seconds", 500.0);
  tenant.server->warehouse().consume_quota(UserId(1), SiteId(2),
                                           "cpu_seconds", 100.0);
  const db::Journal journal = tenant.server->warehouse().journal();
  auto recovered = core::SphinxServer::recover(
      scenario.bus(), scenario.catalog(), scenario.rls(),
      scenario.transfers(), &scenario.monitoring(),
      [] {
        core::ServerConfig c;
        c.endpoint = "recovered";
        return c;
      }(),
      journal);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_DOUBLE_EQ((*recovered)
                       ->warehouse()
                       .quota_remaining(UserId(1), SiteId(2), "cpu_seconds"),
                   400.0);
}

TEST(ServerProtocol, RecoverFromCorruptJournalFails) {
  Scenario scenario(quiet());
  db::Journal junk;
  db::JournalEntry entry;
  entry.op = db::JournalEntry::Op::kInsert;
  entry.table = "never-created";
  entry.row = 1;
  junk.append(entry);
  const auto result = core::SphinxServer::recover(
      scenario.bus(), scenario.catalog(), scenario.rls(),
      scenario.transfers(), &scenario.monitoring(),
      [] {
        core::ServerConfig c;
        c.endpoint = "broken";
        return c;
      }(),
      junk);
  EXPECT_FALSE(result.has_value());
}

TEST(ServerProtocol, MidRunRecoveryRebuildsWorkState) {
  // Kill a server mid-run and rebuild it from nothing but the journal:
  // the derived work state (dirty queue, outstanding counters) must come
  // back exactly as a from-scratch scan of the recovered tables implies.
  Scenario scenario(quiet(17));
  Tenant& tenant = scenario.add_tenant("t", TenantOptions{});
  auto generator = scenario.make_generator("w", workflow::WorkloadConfig{});
  scenario.start();
  for (int i = 0; i < 6; ++i) {
    const auto dag = generator.generate("mid-" + std::to_string(i));
    scenario.engine().schedule_at(
        minutes(i), "submit", [&tenant, dag] { tenant.client->submit(dag); });
  }
  scenario.engine().run_until(minutes(10));
  tenant.server->stop();  // crash point: the journal is all that survives

  const auto recovered =
      core::DataWarehouse::recover_from(tenant.server->warehouse().journal());
  ASSERT_TRUE(recovered.has_value());
  const core::DataWarehouse& r = **recovered;
  EXPECT_EQ(r.all_dags().size(), 6u);

  // Counters: rebuilt map == scan of the recovered tables == scan of the
  // crashed instance's tables (the journal lost nothing).
  EXPECT_EQ(r.outstanding_by_site(), r.scan_outstanding_by_site());
  EXPECT_EQ(r.outstanding_by_site(),
            tenant.server->warehouse().scan_outstanding_by_site());

  // Work queue: exactly the DAGs a from-scratch scan says have pending
  // work -- received/reduced, or planning with unplanned jobs left.
  std::vector<DagId> expected;
  for (const auto& dag : r.all_dags()) {
    bool pending = dag.state == core::DagState::kReceived ||
                   dag.state == core::DagState::kReduced;
    if (dag.state == core::DagState::kPlanning) {
      for (const auto& job : r.jobs_of_dag(dag.id)) {
        if (job.state == core::JobState::kUnplanned) {
          pending = true;
          break;
        }
      }
    }
    if (pending) expected.push_back(dag.id);
  }
  EXPECT_EQ(r.dirty_dags(), expected);
  r.check_invariants();
}

TEST(ClientProtocol, TimeoutRearmsFromObservationWithFreshBudgetOnReplan) {
  // Regression coverage for two tracker properties:
  //  1. Extension checks are rearmed one full period after *each*
  //     observation, so a progressing job is checked at t0+J, t0+2J, ...
  //     and hard-killed at t0+4J (J = job_timeout, 3 extensions).
  //  2. A replanned job starts with a fresh extensions budget and the
  //     dead attempt's entry is dropped (tracked_jobs() never grows).
  Scenario scenario(quiet());
  TenantOptions options;
  options.job_timeout = minutes(20);  // J = 1200 s
  Tenant& tenant = scenario.add_tenant("t", options);

  // One job that runs "forever": visibly progressing on a healthy site,
  // so every timeout check grants an extension until the budget is gone.
  workflow::Dag dag(DagId(1), "stuck");
  workflow::JobSpec job;
  job.id = JobId(1);
  job.name = "stuck-job";
  job.output = "lfn://stuck.out";
  job.compute_time = hours(200);
  dag.add_job(job);

  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  const double J = minutes(20);
  const auto& stats = tenant.client->tracker_stats();

  // t = 3.5J: checks at ~J, ~2J, ~3J after submission each extended.
  scenario.run(3.5 * J);
  EXPECT_EQ(stats.extensions, 3u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(tenant.client->tracked_jobs(), 1u);

  // t = 4.5J: the fourth check found the budget exhausted -> hard kill,
  // cancellation reported, server replanned; the replacement attempt is
  // tracked with a *fresh* budget (no extension due yet).
  scenario.run(4.5 * J);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.extensions, 3u);
  EXPECT_EQ(tenant.client->tracked_jobs(), 1u);
  EXPECT_EQ(tenant.server->stats().replans, 1u);

  // t = 9.5J: attempt 2 burned its own 3 extensions before its kill at
  // ~8J; if the old attempt's used-up budget leaked into the new entry,
  // the second timeout would have come 3J earlier with no extensions.
  scenario.run(9.5 * J);
  EXPECT_EQ(stats.timeouts, 2u);
  EXPECT_GE(stats.extensions, 6u);
  EXPECT_EQ(tenant.client->tracked_jobs(), 1u);  // dead entries dropped

  // The flight recorder saw the same story under this client's endpoint.
  const auto& recorder = scenario.recorder();
  EXPECT_EQ(recorder.counter("tracker.timeouts", "sphinx-client/t"), 2u);
  EXPECT_EQ(recorder.counter("tracker.extensions", "sphinx-client/t"),
            stats.extensions);
}

TEST(ClientProtocol, RejectsBogusPlans) {
  Scenario scenario(quiet());
  Tenant& tenant = scenario.add_tenant("t", TenantOptions{});
  (void)tenant;
  RawCaller caller(scenario,
                   rpc::Proxy(rpc::Identity{"/CN=server", "/CN=CA"}, "ivdgl",
                              {}, 0.0, hours(24)));
  // Not a plan at all.
  auto r = caller.call("sphinx-client/t", "sphinx_client.execute_plan",
                       {rpc::XrValue("junk")});
  EXPECT_FALSE(r.has_value());
  // dag_done for a dag this client never submitted.
  r = caller.call("sphinx-client/t", "sphinx_client.dag_done",
                  {rpc::XrValue(424242), rpc::XrValue(1.0)});
  EXPECT_FALSE(r.has_value());
}

// --- checkpoint-timer edges across failover ---------------------------------

std::vector<SimTime> checkpoint_times(const Scenario& scenario) {
  std::vector<SimTime> times;
  for (const obs::TraceEvent& e : scenario.recorder().trace().events()) {
    if (e.kind == obs::TraceKind::kCheckpoint) times.push_back(e.at);
  }
  return times;
}

TEST(ServerCheckpoint, PeriodFiresExactlyOnTheSweepBoundary) {
  // checkpoint_period = 2 sweeps: the deciding sweep lands at *exactly*
  // last_checkpoint_at_ + period.  The trigger is `now >= last + period`;
  // a strict `>` would slip every period checkpoint one sweep late.
  Scenario scenario(quiet());
  TenantOptions options;
  options.checkpoint_period = 10.0;  // sweep_period is 5.0
  Tenant& tenant = scenario.add_tenant("t", options);
  auto generator = scenario.make_generator("w", workflow::WorkloadConfig{});
  const auto dag = generator.generate("boundary");
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&tenant, dag] { tenant.client->submit(dag); });
  scenario.engine().run_until(minutes(1));

  const std::vector<SimTime> times = checkpoint_times(scenario);
  ASSERT_GE(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 10.0);
  for (std::size_t i = 0; i < times.size(); ++i) {
    // Every checkpoint lands on a period boundary, never a sweep late.
    EXPECT_DOUBLE_EQ(times[i], 10.0 + 10.0 * static_cast<double>(i));
  }
}

TEST(ServerCheckpoint, AdoptedShardKeepsPeriodCheckpointsInLockstep) {
  // An adopted shard re-derives last_checkpoint_at_/last_checkpoint_seq_
  // from the carried CheckpointImage (src/core/server.cpp), so its
  // post-adoption period checkpoints fire at exactly the times the
  // uncrashed baseline's do -- pinned by byte-diffing the terminal
  // journal and the chaos-stripped trace.
  auto run = [](bool crash) {
    auto scenario = std::make_unique<Scenario>(quiet(23));
    TenantOptions options;
    options.checkpoint_period = 10.0;
    Tenant& tenant = scenario->add_tenant("t", options);
    auto generator =
        scenario->make_generator("w", workflow::WorkloadConfig{});
    scenario->start();
    for (int i = 0; i < 4; ++i) {
      const auto dag = generator.generate("lockstep-" + std::to_string(i));
      scenario->engine().schedule_at(
          minutes(i), "submit", [&tenant, dag] { tenant.client->submit(dag); });
    }
    if (crash) {
      // Mid-period kill (not on a sweep boundary), well after the first
      // images published: the recovered cursors come from a real image.
      scenario->engine().schedule_at(97.0, "crash", [&scenario] {
        scenario->crash_server(0);
        ASSERT_TRUE(scenario->recover_server(0).ok());
      });
    }
    scenario->engine().run_until(minutes(30));
    return scenario;
  };

  const auto baseline = run(false);
  const auto adopted = run(true);
  const std::vector<SimTime> baseline_times = checkpoint_times(*baseline);
  ASSERT_GE(baseline_times.size(), 3u);
  EXPECT_EQ(checkpoint_times(*adopted), baseline_times);
  EXPECT_EQ(adopted->tenants()[0].server->warehouse().journal().serialize(),
            baseline->tenants()[0].server->warehouse().journal().serialize());
  EXPECT_EQ(
      chaos::strip_chaos_events(adopted->recorder().trace().to_jsonl()),
      chaos::strip_chaos_events(baseline->recorder().trace().to_jsonl()));
}

}  // namespace
}  // namespace sphinx::exp
