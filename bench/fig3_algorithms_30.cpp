/// Figure 3: the four scheduling algorithms (with feedback) on 30 DAGs x
/// 10 jobs, no policy constraints.
///
/// (a) average DAG completion time -- paper: completion-time-based
/// scheduling wins by ~17 %.
/// (b) average job execution time and idle (queuing) time -- paper:
/// completion-time jobs execute faster and wait much less.

#include "bench_common.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Figure 3", "four algorithms (30 dags x 10 jobs/dag)");
  exp::Experiment experiment(paper_config(30));
  const auto results = experiment.run(exp::standard_panel());
  print_results("fig3", results, true);

  const double best = results.front().avg_dag_completion;  // completion-time
  double others = 0.0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    others += results[i].avg_dag_completion;
  }
  others /= static_cast<double>(results.size() - 1);
  std::printf("completion-time vs mean of others: %.1f%% better "
              "(paper: ~17%%)\n",
              100.0 * (others - best) / others);
  return 0;
}
