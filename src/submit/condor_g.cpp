#include "submit/condor_g.hpp"

#include "common/log.hpp"
#include "data/replication.hpp"

namespace sphinx::submit {

const char* to_string(GatewayJobState state) noexcept {
  switch (state) {
    case GatewayJobState::kSubmitted: return "submitted";
    case GatewayJobState::kIdle: return "idle";
    case GatewayJobState::kStaging: return "staging";
    case GatewayJobState::kRunning: return "running";
    case GatewayJobState::kCompleted: return "completed";
    case GatewayJobState::kHeld: return "held";
    case GatewayJobState::kRemoved: return "removed";
    case GatewayJobState::kFailed: return "failed";
  }
  return "?";
}

CondorG::CondorG(grid::Grid& grid, data::TransferService& transfers,
                 data::ReplicaLocationService& rls,
                 data::StorageFabric* storage, std::string name)
    : grid_(grid),
      transfers_(transfers),
      rls_(rls),
      storage_(storage),
      name_(std::move(name)) {}

ClassAd CondorG::make_ad(const SubmitRequest& request,
                         const std::string& site_name) {
  ClassAd ad;
  ad.set("universe", std::string("grid"));
  ad.set("executable", request.name);
  ad.set("grid_resource", "gt2 " + site_name + "/jobmanager");
  ad.set("x509userproxy", "/tmp/x509up_u" + std::to_string(request.user.value()));
  ad.set("vo", request.vo);
  ad.set("estimated_runtime", request.compute_time);
  ad.set("output_lfn", request.output);
  ad.set("input_count", static_cast<std::int64_t>(request.inputs.size()));
  ad.add_requirement(
      Requirement{"site", CmpOp::kEq, site_name});
  return ad;
}

std::map<CondorG::Key, CondorG::Record>::iterator CondorG::find_latest(
    JobId job) {
  auto it = records_.lower_bound(Key{job.value() + 1, 0});
  if (it == records_.begin()) return records_.end();
  --it;
  return it->first.first == job.value() ? it : records_.end();
}

std::map<CondorG::Key, CondorG::Record>::const_iterator CondorG::find_latest(
    JobId job) const {
  auto it = records_.lower_bound(Key{job.value() + 1, 0});
  if (it == records_.begin()) return records_.end();
  --it;
  return it->first.first == job.value() ? it : records_.end();
}

bool CondorG::submit(const SubmitRequest& request, GatewayCallback callback) {
  SPHINX_ASSERT(request.job.valid(), "submit needs a valid job id");
  // Replanned jobs are resubmitted under the same JobId (with a fresh
  // attempt number); a resubmission of the *same* attempt must be terminal
  // by then.  Distinct attempts of one job may be live concurrently — that
  // is exactly the speculation race.
  const Key key{request.job.value(), request.attempt};
  if (const auto it = records_.find(key); it != records_.end()) {
    const GatewayJobState s = it->second.state;
    SPHINX_ASSERT(s == GatewayJobState::kCompleted ||
                      s == GatewayJobState::kRemoved ||
                      s == GatewayJobState::kFailed ||
                      s == GatewayJobState::kHeld,
                  "job attempt already active on this gateway");
    records_.erase(it);
  }
  ++total_;

  grid::Site& site = grid_.site(request.site);
  Record record;
  record.request = request;
  record.site = request.site;
  record.callback = std::move(callback);
  record.ad = make_ad(request, site.name());

  grid::RemoteJob remote;
  remote.job = request.job;
  remote.user = request.user;
  remote.vo = request.vo;
  remote.priority = request.priority;
  remote.compute_time = request.compute_time;
  remote.stage = [this, key](std::function<void()> done) {
    stage_inputs(key, std::move(done));
  };

  auto& stored = records_.emplace(key, std::move(record)).first->second;

  const auto submission = site.submit(
      std::move(remote), [this, key](const grid::JobEvent& event) {
        const auto it = records_.find(key);
        if (it == records_.end()) return;
        Record& rec = it->second;
        switch (event.state) {
          case grid::RemoteJobState::kQueued:
            relay(rec, GatewayJobState::kIdle, event.at);
            break;
          case grid::RemoteJobState::kStaging:
            relay(rec, GatewayJobState::kStaging, event.at);
            break;
          case grid::RemoteJobState::kRunning:
            relay(rec, GatewayJobState::kRunning, event.at);
            break;
          case grid::RemoteJobState::kCompleted:
            on_completed(rec);
            relay(rec, GatewayJobState::kCompleted, event.at);
            break;
          case grid::RemoteJobState::kHeld:
            relay(rec, GatewayJobState::kHeld, event.at);
            break;
          case grid::RemoteJobState::kCancelled:
            relay(rec, GatewayJobState::kRemoved, event.at);
            break;
        }
      });

  if (!submission.has_value()) {
    relay(stored, GatewayJobState::kFailed, grid_.engine().now());
    return false;
  }
  stored.submission = *submission;
  return true;
}

void CondorG::stage_inputs(Key key, std::function<void()> done) {
  const auto it = records_.find(key);
  if (it == records_.end()) {
    done();  // not ours (defensive); nothing to stage
    return;
  }
  Record& rec = it->second;
  if (rec.request.inputs.empty()) {
    done();
    return;
  }
  // Transfer inputs sequentially: start input k+1 when k arrives.  The
  // record owns the chain; callbacks hold it weakly so a removed record
  // ends the chain instead of dangling.
  const SiteId dst = rec.site;
  auto advance = std::make_shared<std::function<void(std::size_t)>>();
  std::weak_ptr<std::function<void(std::size_t)>> weak = advance;
  *advance = [this, key, dst, weak,
              done = std::move(done)](std::size_t index) {
    const auto rec_it = records_.find(key);
    if (rec_it == records_.end()) return;  // removed meanwhile
    Record& r = rec_it->second;
    if (index >= r.request.inputs.size()) {
      // Note: the chain object stays alive until the record is erased;
      // resetting it here would destroy the closure mid-execution.
      done();
      return;
    }
    const StagedInput& input = r.request.inputs[index];
    const TransferId tid = transfers_.transfer(
        input.source, dst, input.bytes,
        [this, key, index, weak](TransferId id, Duration) {
          const auto rec_it2 = records_.find(key);
          if (rec_it2 != records_.end()) {
            auto& active = rec_it2->second.active_transfers;
            std::erase(active, id);
          }
          if (const auto chain = weak.lock()) (*chain)(index + 1);
        });
    r.active_transfers.push_back(tid);
  };
  rec.stage_chain = advance;
  (*advance)(0);
}

void CondorG::on_completed(Record& record) {
  const SubmitRequest& req = record.request;
  if (!req.register_output || req.output.empty()) return;
  // The output file materializes on the execution site.
  if (storage_ != nullptr) {
    if (auto* se = storage_->find(record.site); se != nullptr) {
      // Best effort: a full storage element does not fail the job in this
      // model; the replica is simply not persisted locally.
      if (!se->store(req.user, req.output, req.output_bytes).ok()) return;
    }
  }
  rls_.register_replica(req.output, record.site, req.output_bytes);
}

void CondorG::relay(Record& record, GatewayJobState state, SimTime at) {
  record.state = state;
  if (record.callback) {
    record.callback(
        GatewayEvent{record.request.job, state, at, record.request.attempt});
  }
}

bool CondorG::cancel(JobId job) {
  const auto it = find_latest(job);
  if (it == records_.end()) return false;
  return cancel(job, it->first.second);
}

bool CondorG::cancel(JobId job, int attempt) {
  const auto it = records_.find(Key{job.value(), attempt});
  if (it == records_.end()) return false;
  Record& rec = it->second;
  if (rec.state == GatewayJobState::kCompleted ||
      rec.state == GatewayJobState::kRemoved ||
      rec.state == GatewayJobState::kFailed) {
    return false;
  }
  // Kill in-flight stage-in transfers first; they reference this record.
  for (const TransferId tid : rec.active_transfers) transfers_.cancel(tid);
  rec.active_transfers.clear();

  grid::Site& site = grid_.site(rec.site);
  if (site.cancel(rec.submission)) {
    return true;  // site emitted kCancelled -> relay() already ran
  }
  // Unresponsive site: mark removed locally so the tracker can move on
  // (condor_rm -forcex semantics).
  relay(rec, GatewayJobState::kRemoved, grid_.engine().now());
  return true;
}

std::optional<GatewayJobState> CondorG::state_of(JobId job) const {
  const auto it = find_latest(job);
  if (it == records_.end()) return std::nullopt;
  return it->second.state;
}

std::optional<GatewayJobState> CondorG::state_of(JobId job,
                                                 int attempt) const {
  const auto it = records_.find(Key{job.value(), attempt});
  if (it == records_.end()) return std::nullopt;
  return it->second.state;
}

void CondorG::replicate(const data::Lfn& lfn, SiteId destination,
                        std::function<void(bool)> done) {
  SPHINX_ASSERT(done != nullptr, "replicate callback must not be null");
  const auto replicas = rls_.locate(lfn);
  if (replicas.empty()) {
    done(false);
    return;
  }
  // Already there?
  for (const data::Replica& r : replicas) {
    if (r.site == destination) {
      done(false);
      return;
    }
  }
  const auto choice = data::select_replica(replicas, destination, transfers_);
  const data::Replica source = choice->replica;
  transfers_.transfer(
      source.site, destination, source.size_bytes,
      [this, lfn, destination, source, done = std::move(done)](TransferId,
                                                               Duration) {
        if (storage_ != nullptr) {
          if (auto* se = storage_->find(destination); se != nullptr) {
            // Owner unknown at this layer; attribute to the gateway user 0.
            // A full element still receives the bytes on the real grid
            // (gridftp does not pre-reserve), so the replica is registered
            // either way; the refusal is only worth a log line.
            if (const auto stored = se->store(UserId(), lfn, source.size_bytes);
                !stored.ok()) {
              Logger("condor-g").warn("storage refused replica ", lfn, " at ",
                                      destination.value(), ": ",
                                      stored.error().to_string());
            }
          }
        }
        rls_.register_replica(lfn, destination, source.size_bytes);
        done(true);
      });
}

bool CondorG::site_responsive(JobId job) const {
  const auto it = find_latest(job);
  if (it == records_.end()) return false;
  return grid_.site(it->second.site).query().has_value();
}

bool CondorG::site_responsive(JobId job, int attempt) const {
  const auto it = records_.find(Key{job.value(), attempt});
  if (it == records_.end()) return false;
  return grid_.site(it->second.site).query().has_value();
}

GatewayQueue CondorG::queue() const {
  GatewayQueue q;
  for (const auto& [key, rec] : records_) {
    switch (rec.state) {
      case GatewayJobState::kSubmitted:
      case GatewayJobState::kIdle: ++q.idle; break;
      case GatewayJobState::kStaging: ++q.staging; break;
      case GatewayJobState::kRunning: ++q.running; break;
      case GatewayJobState::kCompleted: ++q.completed; break;
      case GatewayJobState::kHeld: ++q.held; break;
      case GatewayJobState::kRemoved: ++q.removed; break;
      case GatewayJobState::kFailed: ++q.failed; break;
    }
  }
  return q;
}

const ClassAd* CondorG::submit_ad(JobId job) const {
  const auto it = find_latest(job);
  return it == records_.end() ? nullptr : &it->second.ad;
}

}  // namespace sphinx::submit
