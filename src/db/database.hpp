#pragma once
/// \file database.hpp
/// The table store: named tables + journaling + recovery.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/journal.hpp"
#include "db/table.hpp"

namespace sphinx::db {

/// A collection of tables sharing one journal.
class Database : private TableObserver {
 public:
  Database();
  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; throws AssertionError if the name already exists.
  Table& create_table(const std::string& name, Schema schema);

  /// Looks up a table; throws AssertionError if absent (table names are
  /// compile-time constants in this codebase).
  [[nodiscard]] Table& table(const std::string& name);
  [[nodiscard]] const Table& table(const std::string& name) const;

  [[nodiscard]] bool has_table(const std::string& name) const noexcept;
  [[nodiscard]] std::vector<std::string> table_names() const;
  [[nodiscard]] std::size_t table_count() const noexcept { return tables_.size(); }

  /// The journal of all mutations since construction (or last checkpoint).
  [[nodiscard]] const Journal& journal() const noexcept { return journal_; }

  /// Drops the retained journal entries, advancing the sequence base
  /// (after a checkpoint captured the prefix's effects elsewhere).
  void truncate_journal() noexcept { journal_.clear(); }

  /// Compacts the journal prefix below `seq` (see
  /// Journal::truncate_before) -- the checkpoint path, where `seq` is
  /// the sequence the published image reflects.
  void truncate_journal(std::uint64_t seq) { journal_.truncate_before(seq); }

  /// Enables/disables journaling (enabled by default).  Replay-into-self
  /// would double-log, so recover() and restore() disable it internally.
  void set_journaling(bool on) noexcept { journaling_ = on; }

  /// Deterministic, byte-stable image of the whole store: table schemas
  /// (creation order, with their index declarations), rows (id order)
  /// and each table's id-allocation cursor.  A pure function of the
  /// store's logical state -- equal tables yield identical bytes no
  /// matter what mutation history produced them.  Round-trips through
  /// restore() using the journal's line-oriented text building blocks.
  [[nodiscard]] std::string snapshot() const;

  /// Rebuilds tables from a snapshot() image into this empty database.
  /// The snapshot is state, not history: nothing is journaled and the
  /// journal is left empty -- the caller pairs the image with the
  /// journal suffix it wants replayed on top (see recover()).
  [[nodiscard]] StatusOrError restore(const std::string& snapshot);

  /// Rebuilds database content by replaying the entries of `journal`
  /// whose sequence number is >= from_seq.  With from_seq == 0 (full
  /// replay) this database must be empty; with from_seq > 0 it replays a
  /// post-checkpoint suffix onto tables a restore() just rebuilt.  On
  /// success the replayed suffix is adopted wholesale as this database's
  /// own journal -- byte-identical to the crashed journal's retained
  /// entries -- so a recovered server remains recoverable.
  [[nodiscard]] StatusOrError recover(const Journal& journal,
                                      std::uint64_t from_seq = 0);

  /// Structural sweep across the store: every table passes its own
  /// check_invariants(), the name map and creation order agree, and
  /// every journal entry references a table that exists (tables are
  /// never dropped, so this holds across truncation and recovery).
  /// Throws ContractViolation on corruption; no-op when contracts are
  /// compiled out.
  void check_invariants() const;

 private:
  friend struct DatabaseInspector;  // test-only fault injection
  void on_insert(const std::string& table, RowId id,
                 const std::vector<Value>& cells) override;
  void on_update(const std::string& table, RowId id, std::size_t column,
                 const Value& value) override;
  void on_erase(const std::string& table, RowId id) override;

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> creation_order_;
  Journal journal_;
  bool journaling_ = true;
};

}  // namespace sphinx::db
