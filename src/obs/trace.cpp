#include "obs/trace.hpp"

#include <charconv>
#include <cmath>

#include "common/contracts.hpp"

namespace sphinx::obs {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kSweepBegin: return "sweep_begin";
    case TraceKind::kSweepEnd: return "sweep_end";
    case TraceKind::kDagReceived: return "dag_received";
    case TraceKind::kDagFinished: return "dag_finished";
    case TraceKind::kJobTransition: return "job_transition";
    case TraceKind::kPlanSent: return "plan_sent";
    case TraceKind::kTrackerTimeout: return "tracker_timeout";
    case TraceKind::kTrackerExtension: return "tracker_extension";
    case TraceKind::kSiteOutage: return "site_outage";
    case TraceKind::kSiteRepair: return "site_repair";
    case TraceKind::kBusDelivery: return "bus_delivery";
    case TraceKind::kMonitorSample: return "monitor_sample";
    case TraceKind::kServerCrash: return "server_crash";
    case TraceKind::kServerRecovery: return "server_recovery";
    case TraceKind::kBusLoss: return "bus_loss";
    case TraceKind::kBusDuplicate: return "bus_duplicate";
    case TraceKind::kBusPartitionDrop: return "bus_partition_drop";
    case TraceKind::kBusReorder: return "bus_reorder";
    case TraceKind::kBusDrop: return "bus_drop";
    case TraceKind::kCheckpoint: return "checkpoint";
    case TraceKind::kLeaseGranted: return "lease_granted";
    case TraceKind::kLeaseExpired: return "lease_expired";
    case TraceKind::kLeaseFenced: return "lease_fenced";
    case TraceKind::kShardAdopted: return "shard_adopted";
    case TraceKind::kSpeculationLaunched: return "speculation_launched";
    case TraceKind::kSpeculationWon: return "speculation_won";
    case TraceKind::kSpeculationCancelled: return "speculation_cancelled";
  }
  return "unknown";
}

std::string format_double(double value) {
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  if (std::isnan(value)) return "\"nan\"";
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  SPHINX_INVARIANT(ec == std::errc{}, "double formatting cannot fail");
  return std::string(buffer, ptr);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string TraceEvent::to_json() const {
  std::string out = "{\"t\":";
  out += format_double(at);
  out += ",\"kind\":\"";
  out += to_string(kind);
  out += "\",\"src\":\"";
  out += json_escape(source);
  out += "\",\"subj\":\"";
  out += json_escape(subject);
  out += "\",\"detail\":\"";
  out += json_escape(detail);
  out += "\",\"v\":";
  out += format_double(value);
  out += "}";
  return out;
}

void TraceSink::record(TraceEvent event) {
  SPHINX_PRECONDITION(event.at >= last_at_,
                      "trace events must arrive in sim-time order");
  last_at_ = event.at;
  events_.push_back(std::move(event));
}

std::string TraceSink::to_jsonl() const {
  std::string out;
  for (const TraceEvent& event : events_) {
    out += event.to_json();
    out += '\n';
  }
  return out;
}

}  // namespace sphinx::obs
