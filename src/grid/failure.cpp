#include "grid/failure.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "obs/recorder.hpp"

namespace sphinx::grid {
namespace {

bool weight_ok(double w) { return std::isfinite(w) && w >= 0.0; }

}  // namespace

const char* to_string(OutageMode mode) noexcept {
  switch (mode) {
    case OutageMode::kDown: return "down";
    case OutageMode::kBlackHole: return "black_hole";
    case OutageMode::kDegraded: return "degraded";
  }
  return "unknown";
}

FailureModel::FailureModel(sim::Engine& engine, Site& site,
                           FailureConfig config, Rng rng)
    : engine_(engine), site_(site), config_(config), rng_(std::move(rng)) {
  SPHINX_PRECONDITION(weight_ok(config_.weight_down) &&
                          weight_ok(config_.weight_black_hole) &&
                          weight_ok(config_.weight_degraded),
                      "failure mode weights must be non-negative and finite");
}

void FailureModel::start() {
  if (config_.permanent_black_hole) {
    site_.become_black_hole();
    record_outage("black_hole(permanent)");
    return;
  }
  if (!config_.schedule.empty()) {
    // Deterministic, pre-planned outages (the chaos harness path).  The
    // schedule is its own source of randomness, so the renewal process
    // stays off even when `enabled` is set.
    for (std::size_t i = 0; i < config_.schedule.size(); ++i) {
      const ScheduledOutage& outage = config_.schedule[i];
      SPHINX_PRECONDITION(outage.at >= 0.0 && outage.duration > 0.0,
                          "scheduled outage needs t >= 0, duration > 0");
      if (i > 0) {
        const ScheduledOutage& prev = config_.schedule[i - 1];
        SPHINX_PRECONDITION(prev.at + prev.duration <= outage.at,
                            "scheduled outages must be sorted, non-overlap");
      }
      engine_.schedule_at(outage.at, "failure:" + site_.name() + ":fail",
                          [this, i] { fail_scheduled(i); });
    }
    return;
  }
  if (config_.enabled) schedule_failure();
}

void FailureModel::record_outage(const char* mode) {
  if (recorder_ == nullptr) return;
  recorder_->event(obs::TraceKind::kSiteOutage, "failure:" + site_.name(),
                   "site:" + std::to_string(site_.id().value()), mode,
                   static_cast<double>(outages_));
  recorder_->count("grid", "site.outages");
}

void FailureModel::schedule_failure() {
  const Duration uptime = rng_.exponential(config_.mean_uptime);
  engine_.schedule_in(uptime, "failure:" + site_.name() + ":fail",
                      [this] { fail(); });
}

void FailureModel::apply_mode(OutageMode mode) {
  ++outages_;
  switch (mode) {
    case OutageMode::kDown: site_.go_down(); break;
    case OutageMode::kBlackHole: site_.become_black_hole(); break;
    case OutageMode::kDegraded: site_.degrade(); break;
  }
  record_outage(to_string(mode));
}

void FailureModel::fail() {
  const double total = config_.weight_down + config_.weight_black_hole +
                       config_.weight_degraded;
  OutageMode mode = OutageMode::kDown;
  if (total > 0.0) {
    // An all-zero mode mix has no distribution to draw from, so the
    // outage takes the `weight_down` meaning (plain downtime) instead of
    // falling through to an arbitrary mode.
    const double draw = rng_.uniform(0.0, total);
    if (draw < config_.weight_down) {
      mode = OutageMode::kDown;
    } else if (draw < config_.weight_down + config_.weight_black_hole) {
      mode = OutageMode::kBlackHole;
    } else {
      mode = OutageMode::kDegraded;
    }
  }
  apply_mode(mode);
  const Duration downtime = rng_.exponential(config_.mean_downtime);
  engine_.schedule_in(downtime, "failure:" + site_.name() + ":repair",
                      [this] { repair(); });
}

void FailureModel::fail_scheduled(std::size_t index) {
  const ScheduledOutage& outage = config_.schedule[index];
  apply_mode(outage.mode);
  engine_.schedule_at(outage.at + outage.duration,
                      "failure:" + site_.name() + ":repair",
                      [this] { repair_scheduled(); });
}

void FailureModel::repair_scheduled() {
  site_.recover();
  record_repair();
}

void FailureModel::repair() {
  site_.recover();
  record_repair();
  schedule_failure();
}

void FailureModel::record_repair() {
  if (recorder_ == nullptr) return;
  recorder_->event(obs::TraceKind::kSiteRepair, "failure:" + site_.name(),
                   "site:" + std::to_string(site_.id().value()), "",
                   static_cast<double>(outages_));
  recorder_->count("grid", "site.repairs");
}

BackgroundLoad::BackgroundLoad(sim::Engine& engine, Site& site,
                               BackgroundLoadConfig config, Rng rng)
    : engine_(engine), site_(site), config_(config), rng_(std::move(rng)) {}

void BackgroundLoad::start() {
  if (!config_.enabled) return;
  for (int i = 0; i < config_.prefill_jobs; ++i) {
    RemoteJob job;
    job.vo = config_.vo;
    job.compute_time = rng_.exponential(config_.mean_duration);
    if (site_.submit(std::move(job), nullptr).has_value()) ++injected_;
  }
  if (config_.burstiness > 0) {
    heavy_ = rng_.chance(0.5);
    schedule_phase_flip();
  }
  schedule_arrival();
}

void BackgroundLoad::schedule_phase_flip() {
  const Duration phase = rng_.exponential(config_.mean_phase);
  engine_.schedule_in(phase, "bg:" + site_.name() + ":phase", [this] {
    heavy_ = !heavy_;
    schedule_phase_flip();
  });
}

void BackgroundLoad::schedule_arrival() {
  // The heavy/light phase scales the arrival *rate*, i.e. divides the
  // inter-arrival mean.
  double rate_scale = 1.0;
  if (config_.burstiness > 0) {
    rate_scale = heavy_ ? 1.0 + config_.burstiness : 1.0 - config_.burstiness;
    if (rate_scale <= 0.05) rate_scale = 0.05;
  }
  const Duration gap =
      rng_.exponential(config_.mean_interarrival / rate_scale);
  engine_.schedule_in(gap, "bg:" + site_.name() + ":arrival", [this] {
    RemoteJob job;
    job.vo = config_.vo;
    job.compute_time = rng_.exponential(config_.mean_duration);
    // Background jobs do not stage data and nobody watches them.
    if (site_.submit(std::move(job), nullptr).has_value()) ++injected_;
    schedule_arrival();
  });
}

}  // namespace sphinx::grid
