
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/sphinxgrid.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/common/log.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/sphinxgrid.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/sphinxgrid.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/sphinxgrid.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/common/table.cpp.o.d"
  "/root/repo/src/core/algorithms.cpp" "src/CMakeFiles/sphinxgrid.dir/core/algorithms.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/core/algorithms.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/CMakeFiles/sphinxgrid.dir/core/client.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/core/client.cpp.o.d"
  "/root/repo/src/core/codec.cpp" "src/CMakeFiles/sphinxgrid.dir/core/codec.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/core/codec.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/CMakeFiles/sphinxgrid.dir/core/server.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/core/server.cpp.o.d"
  "/root/repo/src/core/state.cpp" "src/CMakeFiles/sphinxgrid.dir/core/state.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/core/state.cpp.o.d"
  "/root/repo/src/core/warehouse.cpp" "src/CMakeFiles/sphinxgrid.dir/core/warehouse.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/core/warehouse.cpp.o.d"
  "/root/repo/src/data/gridftp.cpp" "src/CMakeFiles/sphinxgrid.dir/data/gridftp.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/data/gridftp.cpp.o.d"
  "/root/repo/src/data/replication.cpp" "src/CMakeFiles/sphinxgrid.dir/data/replication.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/data/replication.cpp.o.d"
  "/root/repo/src/data/rls.cpp" "src/CMakeFiles/sphinxgrid.dir/data/rls.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/data/rls.cpp.o.d"
  "/root/repo/src/data/storage.cpp" "src/CMakeFiles/sphinxgrid.dir/data/storage.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/data/storage.cpp.o.d"
  "/root/repo/src/db/database.cpp" "src/CMakeFiles/sphinxgrid.dir/db/database.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/db/database.cpp.o.d"
  "/root/repo/src/db/journal.cpp" "src/CMakeFiles/sphinxgrid.dir/db/journal.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/db/journal.cpp.o.d"
  "/root/repo/src/db/table.cpp" "src/CMakeFiles/sphinxgrid.dir/db/table.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/db/table.cpp.o.d"
  "/root/repo/src/db/value.cpp" "src/CMakeFiles/sphinxgrid.dir/db/value.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/db/value.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/sphinxgrid.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/exp/report.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/CMakeFiles/sphinxgrid.dir/exp/runner.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/exp/runner.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/CMakeFiles/sphinxgrid.dir/exp/scenario.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/exp/scenario.cpp.o.d"
  "/root/repo/src/grid/failure.cpp" "src/CMakeFiles/sphinxgrid.dir/grid/failure.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/grid/failure.cpp.o.d"
  "/root/repo/src/grid/grid.cpp" "src/CMakeFiles/sphinxgrid.dir/grid/grid.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/grid/grid.cpp.o.d"
  "/root/repo/src/grid/site.cpp" "src/CMakeFiles/sphinxgrid.dir/grid/site.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/grid/site.cpp.o.d"
  "/root/repo/src/monitor/gma.cpp" "src/CMakeFiles/sphinxgrid.dir/monitor/gma.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/monitor/gma.cpp.o.d"
  "/root/repo/src/monitor/service.cpp" "src/CMakeFiles/sphinxgrid.dir/monitor/service.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/monitor/service.cpp.o.d"
  "/root/repo/src/rpc/clarens.cpp" "src/CMakeFiles/sphinxgrid.dir/rpc/clarens.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/rpc/clarens.cpp.o.d"
  "/root/repo/src/rpc/gsi.cpp" "src/CMakeFiles/sphinxgrid.dir/rpc/gsi.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/rpc/gsi.cpp.o.d"
  "/root/repo/src/rpc/transport.cpp" "src/CMakeFiles/sphinxgrid.dir/rpc/transport.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/rpc/transport.cpp.o.d"
  "/root/repo/src/rpc/xml.cpp" "src/CMakeFiles/sphinxgrid.dir/rpc/xml.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/rpc/xml.cpp.o.d"
  "/root/repo/src/rpc/xmlrpc.cpp" "src/CMakeFiles/sphinxgrid.dir/rpc/xmlrpc.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/rpc/xmlrpc.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/sphinxgrid.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/sim/engine.cpp.o.d"
  "/root/repo/src/submit/classad.cpp" "src/CMakeFiles/sphinxgrid.dir/submit/classad.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/submit/classad.cpp.o.d"
  "/root/repo/src/submit/condor_g.cpp" "src/CMakeFiles/sphinxgrid.dir/submit/condor_g.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/submit/condor_g.cpp.o.d"
  "/root/repo/src/submit/dagman.cpp" "src/CMakeFiles/sphinxgrid.dir/submit/dagman.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/submit/dagman.cpp.o.d"
  "/root/repo/src/submit/userlog.cpp" "src/CMakeFiles/sphinxgrid.dir/submit/userlog.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/submit/userlog.cpp.o.d"
  "/root/repo/src/workflow/chimera.cpp" "src/CMakeFiles/sphinxgrid.dir/workflow/chimera.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/workflow/chimera.cpp.o.d"
  "/root/repo/src/workflow/dag.cpp" "src/CMakeFiles/sphinxgrid.dir/workflow/dag.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/workflow/dag.cpp.o.d"
  "/root/repo/src/workflow/dax.cpp" "src/CMakeFiles/sphinxgrid.dir/workflow/dax.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/workflow/dax.cpp.o.d"
  "/root/repo/src/workflow/generator.cpp" "src/CMakeFiles/sphinxgrid.dir/workflow/generator.cpp.o" "gcc" "src/CMakeFiles/sphinxgrid.dir/workflow/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
