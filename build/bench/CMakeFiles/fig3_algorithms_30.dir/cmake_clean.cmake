file(REMOVE_RECURSE
  "CMakeFiles/fig3_algorithms_30.dir/fig3_algorithms_30.cpp.o"
  "CMakeFiles/fig3_algorithms_30.dir/fig3_algorithms_30.cpp.o.d"
  "fig3_algorithms_30"
  "fig3_algorithms_30.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_algorithms_30.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
