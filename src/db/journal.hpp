#pragma once
/// \file journal.hpp
/// Append-only operation log for crash recovery.
///
/// Every committed mutation on every table of a Database is appended here.
/// A fresh Database replaying the journal reaches the exact pre-crash
/// state -- this is the mechanism behind the paper's claim that SPHINX is
/// "easily recoverable from internal component failures" (section 3.1).
/// The log has a text serialization so it can be persisted and reloaded.
///
/// Entries carry monotonic sequence numbers: the i-th retained entry has
/// sequence base_seq() + i, and truncate_before() compacts a prefix (after
/// a checkpoint captured its effects) without renumbering the suffix.  A
/// checkpoint image recording sequence S therefore pairs with exactly the
/// entries whose sequence is >= S, whether or not the prefix was already
/// dropped -- recovery after a crash between snapshot publication and
/// truncation simply completes the truncation.

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "db/table.hpp"

namespace sphinx::db {

/// One journal record.
struct JournalEntry {
  enum class Op { kCreateTable, kInsert, kUpdate, kErase };

  Op op = Op::kInsert;
  std::string table;
  RowId row = kInvalidRow;
  std::size_t column = 0;            ///< kUpdate only
  std::vector<Value> cells;          ///< kInsert: full row; kUpdate: [value]
  std::vector<Column> schema;        ///< kCreateTable only
};

/// The append-only log.
class Journal {
 public:
  void append(JournalEntry entry) { entries_.push_back(std::move(entry)); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const std::vector<JournalEntry>& entries() const noexcept {
    return entries_;
  }

  /// Sequence number of the first retained entry (0 until a truncation).
  [[nodiscard]] std::uint64_t base_seq() const noexcept { return base_seq_; }
  /// Sequence number the next appended entry will carry -- equivalently,
  /// the total number of entries ever appended.  Monotonic: truncation
  /// advances base_seq() but never rewinds this, so record-count
  /// thresholds (chaos crash points, checkpoint policy) stay meaningful
  /// across compaction.
  [[nodiscard]] std::uint64_t next_seq() const noexcept {
    return base_seq_ + entries_.size();
  }

  /// Drops every entry with sequence number < seq (compaction after a
  /// checkpoint captured the prefix's effects).  Clamped to
  /// [base_seq, next_seq]; the retained suffix keeps its numbering.
  void truncate_before(std::uint64_t seq);

  /// Drops everything, advancing base_seq to next_seq -- equivalent to
  /// truncate_before(next_seq()).
  void clear() noexcept;

  /// Replaces this journal's contents with the entries of `src` whose
  /// sequence number is >= from_seq, preserving their numbering.  Used by
  /// recovery to carry the crashed journal (or its post-checkpoint
  /// suffix) into the rebuilt database byte-for-byte.
  void adopt_suffix(const Journal& src, std::uint64_t from_seq);

  /// Exact byte length of serialize(), computed without building the
  /// string -- lets serialize() pre-size its buffer and gives callers a
  /// journal-footprint metric that costs no allocator churn.
  [[nodiscard]] std::size_t size_bytes() const noexcept;

  /// Line-oriented text serialization (one record per line, tab-separated,
  /// values escaped).  A truncated journal leads with a "#seq <base>"
  /// header line so sequence numbers survive the round-trip; untruncated
  /// journals serialize headerless, byte-compatible with older logs.
  /// Round-trips via parse().
  [[nodiscard]] std::string serialize() const;

  /// Parses a serialized journal.  Returns an error on malformed input.
  [[nodiscard]] static Expected<Journal> parse(const std::string& text);

 private:
  std::vector<JournalEntry> entries_;
  std::uint64_t base_seq_ = 0;
};

}  // namespace sphinx::db
