#include "rpc/xml.hpp"

#include <cctype>

namespace sphinx::rpc {

const XmlNode* XmlNode::child(const std::string& name) const noexcept {
  for (const XmlNode& c : children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    const std::string& name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& c : children) {
    if (c.name == name) out.push_back(&c);
  }
  return out;
}

std::string XmlNode::attribute(const std::string& key) const {
  const auto it = attributes.find(key);
  return it == attributes.end() ? std::string{} : it->second;
}

std::string xml_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void write_node(const XmlNode& node, std::string& out, int indent, int depth) {
  const std::string pad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent) * depth, ' ')
                  : std::string{};
  out += pad + "<" + node.name;
  for (const auto& [k, v] : node.attributes) {
    out += " " + k + "=\"" + xml_escape(v) + "\"";
  }
  if (node.children.empty() && node.text.empty()) {
    out += "/>";
    if (indent >= 0) out += '\n';
    return;
  }
  out += ">";
  out += xml_escape(node.text);
  if (!node.children.empty()) {
    if (indent >= 0) out += '\n';
    for (const XmlNode& c : node.children) {
      write_node(c, out, indent, depth + 1);
    }
    out += pad;
  }
  out += "</" + node.name + ">";
  if (indent >= 0) out += '\n';
}

/// Recursive-descent XML parser over the subset xml_write() produces.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Expected<XmlNode> parse() {
    skip_ws();
    if (!skip_declaration()) return fail("bad XML declaration");
    skip_ws();
    auto root = parse_element();
    if (!root) return root;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after root");
    return root;
  }

 private:
  Unexpected<Error> fail(const std::string& what) const {
    return make_error("xml_parse",
                      what + " at offset " + std::to_string(pos_));
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept {
    return at_end() ? '\0' : text_[pos_];
  }
  char take() noexcept { return at_end() ? '\0' : text_[pos_++]; }

  void skip_ws() noexcept {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
  }

  bool skip_declaration() noexcept {
    if (text_.compare(pos_, 2, "<?") != 0) return true;
    const auto end = text_.find("?>", pos_);
    if (end == std::string::npos) return false;
    pos_ = end + 2;
    return true;
  }

  [[nodiscard]] bool name_char(char c) const noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!at_end() && name_char(peek())) name += take();
    return name;
  }

  Expected<std::string> decode_text(std::string_view raw) const {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return make_error("xml_parse", "unterminated entity");
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else return make_error("xml_parse", "unknown entity: " + std::string(entity));
      i = semi;
    }
    return out;
  }

  Expected<XmlNode> parse_element() {
    if (take() != '<') return fail("expected '<'");
    XmlNode node;
    node.name = parse_name();
    if (node.name.empty()) return fail("empty element name");

    // Attributes.
    while (true) {
      skip_ws();
      if (peek() == '/') {
        ++pos_;
        if (take() != '>') return fail("expected '>' after '/'");
        return node;
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      const std::string key = parse_name();
      if (key.empty()) return fail("expected attribute name");
      skip_ws();
      if (take() != '=') return fail("expected '='");
      skip_ws();
      const char quote = take();
      if (quote != '"' && quote != '\'') return fail("expected quote");
      std::string raw;
      while (!at_end() && peek() != quote) raw += take();
      if (take() != quote) return fail("unterminated attribute");
      auto decoded = decode_text(raw);
      if (!decoded) return Unexpected<Error>{decoded.error()};
      node.attributes[key] = std::move(*decoded);
    }

    // Content: text and child elements until the matching close tag.
    std::string raw_text;
    while (true) {
      if (at_end()) return fail("unexpected end inside <" + node.name + ">");
      if (peek() == '<') {
        if (text_.compare(pos_, 2, "</") == 0) {
          pos_ += 2;
          const std::string closing = parse_name();
          if (closing != node.name) {
            return fail("mismatched close tag </" + closing + ">");
          }
          skip_ws();
          if (take() != '>') return fail("expected '>' in close tag");
          auto decoded = decode_text(raw_text);
          if (!decoded) return Unexpected<Error>{decoded.error()};
          node.text = std::move(*decoded);
          // Pretty-printed documents put layout whitespace between child
          // elements; that is not character data the caller wrote.
          if (!node.children.empty() &&
              node.text.find_first_not_of(" \t\r\n") == std::string::npos) {
            node.text.clear();
          }
          return node;
        }
        auto child = parse_element();
        if (!child) return child;
        node.children.push_back(std::move(*child));
      } else {
        raw_text += take();
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string xml_write(const XmlNode& root, int indent) {
  std::string out;
  write_node(root, out, indent, 0);
  return out;
}

Expected<XmlNode> xml_parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace sphinx::rpc
