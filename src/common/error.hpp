#pragma once
/// \file error.hpp
/// Lightweight Expected<T, E> for recoverable errors.
///
/// The middleware distinguishes programming errors (checked with
/// SPHINX_ASSERT, which throws) from operational failures (a site being
/// down, a quota exhausted, a replica missing) which are ordinary data and
/// travel as Expected values.  C++20 has no std::expected yet, so a small
/// purpose-built one is provided.

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace sphinx {

/// Thrown on violated internal invariants.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

#define SPHINX_ASSERT(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      throw ::sphinx::AssertionError(std::string("assertion failed: ") + \
                                     (msg) + " [" #cond "]");           \
    }                                                                   \
  } while (false)

/// A simple error payload: machine-readable code plus human text.
struct Error {
  std::string code;     ///< stable short identifier, e.g. "quota_exceeded"
  std::string message;  ///< human-readable details

  [[nodiscard]] std::string to_string() const { return code + ": " + message; }
};

/// Marker wrapper so Expected<T> can be constructed unambiguously from an
/// error even when T is constructible from Error.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

[[nodiscard]] inline Unexpected<Error> make_error(std::string code,
                                                  std::string message) {
  return Unexpected<Error>{Error{std::move(code), std::move(message)}};
}

/// Either a value or an error.  Accessing the wrong alternative throws
/// AssertionError -- misuse is a programming bug, not an operational one.
template <typename T, typename E = Error>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> err)
      : data_(std::in_place_index<1>, std::move(err.error)) {}

  [[nodiscard]] bool has_value() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() {
    SPHINX_ASSERT(has_value(), "Expected::value() on error");
    return std::get<0>(data_);
  }
  [[nodiscard]] const T& value() const {
    SPHINX_ASSERT(has_value(), "Expected::value() on error");
    return std::get<0>(data_);
  }
  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<0>(data_) : std::move(fallback);
  }

  [[nodiscard]] const E& error() const {
    SPHINX_ASSERT(!has_value(), "Expected::error() on value");
    return std::get<1>(data_);
  }

  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  std::variant<T, E> data_;
};

/// Status-only variant: success or an error.
template <typename E = Error>
class [[nodiscard]] Status {
 public:
  Status() = default;  ///< success
  Status(Unexpected<E> err) : error_(std::move(err.error)), ok_(false) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }

  [[nodiscard]] const E& error() const {
    SPHINX_ASSERT(!ok_, "Status::error() on success");
    return error_;
  }

 private:
  E error_{};
  bool ok_ = true;
};

using StatusOrError = Status<Error>;

}  // namespace sphinx
