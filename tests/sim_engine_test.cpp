// Tests for the discrete-event engine: ordering, determinism,
// cancellation, horizons and periodic processes.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace sphinx::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, "c", [&] { order.push_back(3); });
  e.schedule_at(1.0, "a", [&] { order.push_back(1); });
  e.schedule_at(2.0, "b", [&] { order.push_back(2); });
  e.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5.0, "tie", [&order, i] { order.push_back(i); });
  }
  e.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleInUsesCurrentTime) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(10.0, "outer", [&] {
    e.schedule_in(5.0, "inner", [&] { fired_at = e.now(); });
  });
  e.run_until();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Engine, PastSchedulingClampsToNow) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(10.0, "outer", [&] {
    e.schedule_at(3.0, "late", [&] { fired_at = e.now(); });
  });
  e.run_until();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Engine, NegativeDelayClampsToZero) {
  Engine e;
  bool fired = false;
  e.schedule_in(-5.0, "neg", [&] { fired = true; });
  e.run_until();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  const EventHandle h = e.schedule_at(1.0, "x", [&] { fired = true; });
  EXPECT_TRUE(e.pending(h));
  e.cancel(h);
  EXPECT_FALSE(e.pending(h));
  e.run_until();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine e;
  const EventHandle h = e.schedule_at(1.0, "x", [] {});
  e.run_until();
  EXPECT_FALSE(e.pending(h));
  EXPECT_NO_THROW(e.cancel(h));
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, CancelInvalidHandleIsNoop) {
  Engine e;
  EXPECT_NO_THROW(e.cancel(EventHandle{}));
}

TEST(Engine, RunUntilHorizonStopsEarly) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, "a", [&] { ++fired; });
  e.schedule_at(100.0, "b", [&] { ++fired; });
  const std::size_t n = e.run_until(10.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);  // clock advanced to the horizon
  // Remaining event still fires later.
  e.run_until(200.0);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StopRequestHaltsRun) {
  Engine e;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    e.schedule_at(i, "tick", [&] {
      ++fired;
      if (fired == 3) e.stop();
    });
  }
  e.run_until();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1.0, "x", [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsFiredCounter) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, "x", [] {});
  e.run_until();
  EXPECT_EQ(e.events_fired(), 5u);
}

TEST(Engine, CurrentLabelVisibleDuringDispatch) {
  Engine e;
  std::string seen;
  e.schedule_at(1.0, "my-event", [&] { seen = e.current_label(); });
  e.run_until();
  EXPECT_EQ(seen, "my-event");
  EXPECT_TRUE(e.current_label().empty());
}

TEST(Engine, NullCallbackRejected) {
  Engine e;
  EXPECT_THROW(e.schedule_at(1.0, "bad", nullptr), AssertionError);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_in(1.0, "chain", chain);
  };
  e.schedule_in(1.0, "chain", chain);
  e.run_until();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(e.now(), 100.0);
}

TEST(PeriodicProcess, FiresAtPeriod) {
  Engine e;
  int count = 0;
  PeriodicProcess p(e, "tick", 10.0, [&] { ++count; });
  p.start();
  e.run_until(35.0);
  EXPECT_EQ(count, 4);  // t=0, 10, 20, 30
}

TEST(PeriodicProcess, InitialJitterOffsetsFirstFiring) {
  Engine e;
  std::vector<double> times;
  PeriodicProcess p(e, "tick", 10.0, [&] { times.push_back(e.now()); }, 3.0);
  p.start();
  e.run_until(25.0);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 3.0);
  EXPECT_DOUBLE_EQ(times[1], 13.0);
}

TEST(PeriodicProcess, StopHaltsFiring) {
  Engine e;
  int count = 0;
  PeriodicProcess p(e, "tick", 1.0, [&] { ++count; });
  p.start();
  e.run_until(5.5);
  p.stop();
  e.run_until(100.0);
  EXPECT_EQ(count, 6);
  EXPECT_FALSE(p.running());
}

TEST(PeriodicProcess, BodyMayStopItself) {
  Engine e;
  int count = 0;
  PeriodicProcess p(e, "tick", 1.0, [&] {
    if (++count == 3) p.stop();
  });
  p.start();
  e.run_until();
  EXPECT_EQ(count, 3);
}

TEST(PeriodicProcess, DestructorCancelsPending) {
  Engine e;
  int count = 0;
  {
    PeriodicProcess p(e, "tick", 1.0, [&] { ++count; });
    p.start();
    e.run_until(2.5);
  }
  e.run_until(100.0);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicProcess, StartIsIdempotent) {
  Engine e;
  int count = 0;
  PeriodicProcess p(e, "tick", 10.0, [&] { ++count; });
  p.start();
  p.start();
  e.run_until(5.0);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicProcess, SetPeriodTakesEffectNextFiring) {
  Engine e;
  std::vector<double> times;
  PeriodicProcess p(e, "tick", 10.0, [&] { times.push_back(e.now()); });
  p.start();
  e.run_until(0.5);       // fires at t=0
  p.set_period(2.0);      // next gap still 10 (already scheduled), then 2
  e.run_until(14.5);
  ASSERT_GE(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[1], 10.0);
  EXPECT_DOUBLE_EQ(times[2], 12.0);
}

TEST(PeriodicProcess, InvalidConstructionRejected) {
  Engine e;
  EXPECT_THROW(PeriodicProcess(e, "x", 0.0, [] {}), AssertionError);
  EXPECT_THROW(PeriodicProcess(e, "x", 1.0, nullptr), AssertionError);
}

}  // namespace
}  // namespace sphinx::sim
