#include "chaos/schedule.hpp"

#include <algorithm>
#include <utility>

#include "chaos/json.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace sphinx::chaos {
namespace {

/// Minimum gap between one site's repair and its next outage.  A zero
/// gap would fire the next outage and the previous repair at the same
/// timestamp, where event seq-order (outages are scheduled at t=0)
/// recovers the site immediately after downing it.
constexpr Duration kRepairGap = 1.0;

grid::OutageMode draw_mode(Rng& rng, const ScheduleConfig& config) {
  const double total = config.weight_down + config.weight_black_hole +
                       config.weight_degraded;
  if (total <= 0.0) return grid::OutageMode::kDown;
  const double draw = rng.uniform(0.0, total);
  if (draw < config.weight_down) return grid::OutageMode::kDown;
  if (draw < config.weight_down + config.weight_black_hole) {
    return grid::OutageMode::kBlackHole;
  }
  return grid::OutageMode::kDegraded;
}

grid::ScheduledOutage draw_outage(Rng& rng, const ScheduleConfig& config,
                                  SimTime at) {
  grid::ScheduledOutage outage;
  outage.at = at;
  outage.duration =
      std::max(config.min_duration, rng.exponential(config.mean_duration));
  outage.mode = draw_mode(rng, config);
  return outage;
}

/// Sorts one site's list and pushes overlapping outages behind the
/// previous repair, keeping every drawn entry.
void normalize(std::vector<grid::ScheduledOutage>& list) {
  std::sort(list.begin(), list.end(),
            [](const grid::ScheduledOutage& a, const grid::ScheduledOutage& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.duration < b.duration;
            });
  for (std::size_t i = 1; i < list.size(); ++i) {
    const SimTime min_start =
        list[i - 1].at + list[i - 1].duration + kRepairGap;
    if (list[i].at < min_start) list[i].at = min_start;
  }
}

Unexpected<Error> bad_schedule(const std::string& what) {
  return Unexpected<Error>{Error{"bad_schedule", what}};
}

}  // namespace

std::size_t ChaosSchedule::outage_count() const {
  std::size_t n = 0;
  for (const auto& [site, list] : outages) n += list.size();
  return n;
}

ChaosSchedule synthesize(std::uint64_t seed, const ScheduleConfig& config,
                         const std::vector<std::string>& sites) {
  SPHINX_PRECONDITION(!sites.empty(), "schedule synthesis needs sites");
  ChaosSchedule schedule;
  const SeedTree seeds(seed);

  Rng rng = seeds.stream("chaos/outages");
  for (int i = 0; i < config.outages; ++i) {
    const std::string& site = sites[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1))];
    schedule.outages[site].push_back(
        draw_outage(rng, config, rng.uniform(0.0, config.span)));
  }

  Rng burst_rng = seeds.stream("chaos/bursts");
  const int burst_sites =
      std::min<int>(config.burst_sites, static_cast<int>(sites.size()));
  for (int b = 0; b < config.bursts; ++b) {
    // Correlated multi-site event: same instant (within the window), same
    // mode, distinct sites -- the "whole rack lost power" shape a renewal
    // process essentially never produces.
    const SimTime at = burst_rng.uniform(0.0, config.span);
    const grid::OutageMode mode = draw_mode(burst_rng, config);
    std::vector<std::size_t> indices(sites.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    for (int k = 0; k < burst_sites; ++k) {
      // Partial Fisher-Yates: pick the k-th distinct site.
      const std::size_t j = static_cast<std::size_t>(burst_rng.uniform_int(
          k, static_cast<std::int64_t>(indices.size()) - 1));
      std::swap(indices[static_cast<std::size_t>(k)], indices[j]);
      grid::ScheduledOutage outage = draw_outage(
          burst_rng, config, at + burst_rng.uniform(0.0, config.burst_window));
      outage.mode = mode;
      schedule.outages[sites[indices[static_cast<std::size_t>(k)]]].push_back(
          outage);
    }
  }

  for (auto& [site, list] : schedule.outages) normalize(list);

  Rng crash_rng = seeds.stream("chaos/crashes");
  for (int c = 0; c < config.crashes; ++c) {
    schedule.crash_records.push_back(static_cast<std::size_t>(
        crash_rng.uniform_int(static_cast<std::int64_t>(config.min_crash_record),
                              static_cast<std::int64_t>(config.max_crash_record))));
  }
  std::sort(schedule.crash_records.begin(), schedule.crash_records.end());
  for (std::size_t i = 1; i < schedule.crash_records.size(); ++i) {
    // Strictly increasing, with room for the recovered server to make
    // progress before the next crash.
    if (schedule.crash_records[i] <= schedule.crash_records[i - 1]) {
      schedule.crash_records[i] = schedule.crash_records[i - 1] + 25;
    }
  }

  // Mid-checkpoint crash points ride the same stream *after* the regular
  // draws: changing their count never perturbs the regular points, so a
  // minimized repro's regular crashes stay where the original run put
  // them.
  for (int c = 0; c < config.mid_ckpt_crashes; ++c) {
    schedule.mid_ckpt_crashes.push_back(static_cast<std::size_t>(
        crash_rng.uniform_int(static_cast<std::int64_t>(config.min_crash_record),
                              static_cast<std::int64_t>(config.max_crash_record))));
  }
  std::sort(schedule.mid_ckpt_crashes.begin(),
            schedule.mid_ckpt_crashes.end());
  for (std::size_t i = 1; i < schedule.mid_ckpt_crashes.size(); ++i) {
    if (schedule.mid_ckpt_crashes[i] <= schedule.mid_ckpt_crashes[i - 1]) {
      schedule.mid_ckpt_crashes[i] = schedule.mid_ckpt_crashes[i - 1] + 25;
    }
  }

  Rng net_rng = seeds.stream("chaos/net");
  for (int i = 0; i < config.net_windows; ++i) {
    NetFaultWindow window;
    window.at = net_rng.uniform(0.0, config.span);
    window.duration = std::max(config.net_min_duration,
                               net_rng.exponential(config.net_mean_duration));
    window.loss = config.net_loss;
    window.duplicate = config.net_duplicate;
    window.reorder = config.net_reorder;
    window.reorder_spike = config.net_reorder_spike;
    schedule.net_windows.push_back(window);
  }
  for (int i = 0; i < config.net_partitions; ++i) {
    NetFaultWindow window;
    window.at = net_rng.uniform(0.0, config.span);
    window.duration = config.net_partition_duration;
    window.partition = true;
    schedule.net_windows.push_back(window);
  }
  std::sort(schedule.net_windows.begin(), schedule.net_windows.end(),
            [](const NetFaultWindow& a, const NetFaultWindow& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.duration < b.duration;
            });
  return schedule;
}

std::string to_json(const ChaosSchedule& schedule) {
  std::string out = "{\"crash_records\":[";
  for (std::size_t i = 0; i < schedule.crash_records.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(schedule.crash_records[i]);
  }
  out += "],\"mid_ckpt_crashes\":[";
  for (std::size_t i = 0; i < schedule.mid_ckpt_crashes.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(schedule.mid_ckpt_crashes[i]);
  }
  out += "],\"net_windows\":[";
  for (std::size_t i = 0; i < schedule.net_windows.size(); ++i) {
    const NetFaultWindow& w = schedule.net_windows[i];
    if (i > 0) out += ',';
    out += "{\"at\":" + obs::format_double(w.at) +
           ",\"duration\":" + obs::format_double(w.duration) +
           ",\"loss\":" + obs::format_double(w.loss) +
           ",\"duplicate\":" + obs::format_double(w.duplicate) +
           ",\"reorder\":" + obs::format_double(w.reorder) +
           ",\"spike\":" + obs::format_double(w.reorder_spike) +
           ",\"partition\":" + (w.partition ? "true" : "false") + "}";
  }
  out += "],\"outages\":{";
  bool first_site = true;
  for (const auto& [site, list] : schedule.outages) {
    if (!first_site) out += ',';
    first_site = false;
    out += '"' + obs::json_escape(site) + "\":[";
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"at\":" + obs::format_double(list[i].at) +
             ",\"duration\":" + obs::format_double(list[i].duration) +
             ",\"mode\":\"" + grid::to_string(list[i].mode) + "\"}";
    }
    out += ']';
  }
  out += "}}";
  return out;
}

Expected<ChaosSchedule> schedule_from_json(const std::string& text) {
  auto doc = parse_json(text);
  if (!doc) return Unexpected<Error>{doc.error()};
  return schedule_from_value(*doc);
}

Expected<ChaosSchedule> schedule_from_value(const JsonValue& doc) {
  if (!doc.is_object()) return bad_schedule("schedule must be an object");

  ChaosSchedule schedule;
  if (const JsonValue* crashes = doc.find("crash_records")) {
    if (!crashes->is_array()) return bad_schedule("crash_records: array");
    for (const JsonValue& entry : crashes->array) {
      if (!entry.is_number() || entry.number < 0) {
        return bad_schedule("crash_records: non-negative numbers");
      }
      schedule.crash_records.push_back(
          static_cast<std::size_t>(entry.number));
    }
  }
  if (const JsonValue* mid = doc.find("mid_ckpt_crashes")) {
    if (!mid->is_array()) return bad_schedule("mid_ckpt_crashes: array");
    for (const JsonValue& entry : mid->array) {
      if (!entry.is_number() || entry.number < 0) {
        return bad_schedule("mid_ckpt_crashes: non-negative numbers");
      }
      schedule.mid_ckpt_crashes.push_back(
          static_cast<std::size_t>(entry.number));
    }
  }
  if (const JsonValue* windows = doc.find("net_windows")) {
    if (!windows->is_array()) return bad_schedule("net_windows: array");
    for (const JsonValue& entry : windows->array) {
      const JsonValue* at = entry.find("at");
      const JsonValue* duration = entry.find("duration");
      if (at == nullptr || !at->is_number() || duration == nullptr ||
          !duration->is_number()) {
        return bad_schedule("net window: {at, duration, ...}");
      }
      NetFaultWindow window;
      window.at = at->number;
      window.duration = duration->number;
      const auto number_or = [&entry](const char* key, double fallback) {
        const JsonValue* v = entry.find(key);
        return (v != nullptr && v->is_number()) ? v->number : fallback;
      };
      window.loss = number_or("loss", 0.0);
      window.duplicate = number_or("duplicate", 0.0);
      window.reorder = number_or("reorder", 0.0);
      window.reorder_spike = number_or("spike", 5.0);
      if (const JsonValue* partition = entry.find("partition")) {
        window.partition = partition->type == JsonValue::Type::kBool &&
                           partition->boolean;
      }
      schedule.net_windows.push_back(window);
    }
  }
  if (const JsonValue* outages = doc.find("outages")) {
    if (!outages->is_object()) return bad_schedule("outages: object");
    for (const auto& [site, list] : outages->members) {
      if (!list.is_array()) return bad_schedule("outage list: array");
      for (const JsonValue& entry : list.array) {
        const JsonValue* at = entry.find("at");
        const JsonValue* duration = entry.find("duration");
        const JsonValue* mode = entry.find("mode");
        if (at == nullptr || !at->is_number() || duration == nullptr ||
            !duration->is_number() || mode == nullptr || !mode->is_string()) {
          return bad_schedule("outage entry: {at, duration, mode}");
        }
        grid::ScheduledOutage outage;
        outage.at = at->number;
        outage.duration = duration->number;
        if (mode->text == "down") {
          outage.mode = grid::OutageMode::kDown;
        } else if (mode->text == "black_hole") {
          outage.mode = grid::OutageMode::kBlackHole;
        } else if (mode->text == "degraded") {
          outage.mode = grid::OutageMode::kDegraded;
        } else {
          return bad_schedule("unknown outage mode: " + mode->text);
        }
        schedule.outages[site].push_back(outage);
      }
    }
  }
  return schedule;
}

}  // namespace sphinx::chaos
