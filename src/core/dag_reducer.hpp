#pragma once
/// \file dag_reducer.hpp
/// DAG reducer module (paper section 3.2).
///
/// "The DAG reducer simply checks for the existence of the output files
/// of each job, and if they all exist, the job ... can be deleted."  The
/// reducer consumes DAGs in state received off the warehouse's dirty
/// list, marks jobs whose outputs already exist as completed (one clubbed
/// RLS call covers the whole DAG), and advances the DAG to reduced for
/// the planner stage.

#include "core/config.hpp"
#include "core/warehouse.hpp"
#include "data/rls.hpp"

namespace sphinx::core {

class DagReducer {
 public:
  DagReducer(DataWarehouse& warehouse, data::ReplicaLocationService& rls,
             ServerStats& stats);

  /// Reduces one received DAG: completes jobs with pre-existing outputs
  /// and transitions the DAG to reduced.
  void reduce(const DagRecord& dag);

 private:
  DataWarehouse& warehouse_;
  data::ReplicaLocationService& rls_;
  ServerStats& stats_;
};

}  // namespace sphinx::core
