#pragma once
/// \file ids.hpp
/// Strongly-typed integer identifiers used throughout the system.
///
/// Every entity in the middleware (jobs, DAGs, sites, files, users,
/// messages, ...) is referred to by an opaque 64-bit id.  A shared
/// template with a tag type prevents accidentally passing a JobId where a
/// SiteId is expected -- the kind of mixup that is easy to make in a
/// scheduler that joins many tables keyed by integers.

#include <cstdint>
#include <functional>
#include <ostream>

namespace sphinx {

/// A strongly typed id.  \tparam Tag is an empty struct that makes each
/// instantiation a distinct type.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint64_t;

  /// An invalid/unset id.  Value 0 is reserved for "none".
  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(underlying_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }

  friend constexpr bool operator==(StrongId, StrongId) noexcept = default;
  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  underlying_type value_ = 0;
};

/// Monotonic generator for a given id type.  Not thread-safe by design:
/// each simulation owns its own generators and simulations are
/// single-threaded (see DESIGN.md section 5).
template <typename Id>
class IdGenerator {
 public:
  /// Returns a fresh id, never the invalid id.
  [[nodiscard]] Id next() noexcept { return Id(++last_); }
  /// Highest id handed out so far (0 if none).
  [[nodiscard]] typename Id::underlying_type last() const noexcept { return last_; }

 private:
  typename Id::underlying_type last_ = 0;
};

struct JobIdTag {};
struct DagIdTag {};
struct SiteIdTag {};
struct FileIdTag {};
struct UserIdTag {};
struct MessageIdTag {};
struct TransferIdTag {};
struct SubmissionIdTag {};
struct VoIdTag {};

using JobId = StrongId<JobIdTag>;
using DagId = StrongId<DagIdTag>;
using SiteId = StrongId<SiteIdTag>;
using FileId = StrongId<FileIdTag>;
using UserId = StrongId<UserIdTag>;
using MessageId = StrongId<MessageIdTag>;
using TransferId = StrongId<TransferIdTag>;
using SubmissionId = StrongId<SubmissionIdTag>;
using VoId = StrongId<VoIdTag>;

}  // namespace sphinx

namespace std {
template <typename Tag>
struct hash<sphinx::StrongId<Tag>> {
  size_t operator()(sphinx::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
