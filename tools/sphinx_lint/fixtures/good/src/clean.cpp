// Fixture: a translation unit that satisfies every sphinx-lint rule,
// including a waived violation via an inline allow comment.
#include <cstdlib>
#include <stdexcept>

#include "clean.hpp"

namespace fixture {

class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

void guard(bool ok) {
  if (!ok) throw AssertionError("invariant broken");
}

int waived_draw() {
  return rand() % 2;  // sphinx-lint-allow(sim-random): fixture exercise
}

}  // namespace fixture
