// Smoke tests for the remaining small surfaces: the logger, enum
// renderings, and user-log event numbering.

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "core/codec.hpp"
#include "core/state.hpp"
#include "grid/site.hpp"
#include "submit/userlog.hpp"

namespace sphinx {
namespace {

TEST(Logger, LevelGateRoundTrip) {
  const LogLevel before = log_level();
  const LogLevel prev = set_log_level(LogLevel::kError);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold calls are cheap no-ops; above-threshold ones emit.
  Logger log("test-component");
  log.debug("this is ", 42, " and should be suppressed");
  log.error("visible error with value ", 3.5);
  EXPECT_EQ(log.component(), "test-component");
  set_log_level(LogLevel::kOff);
  log.error("suppressed entirely");
  set_log_level(before);
}

TEST(EnumRenderings, GridStates) {
  using grid::RemoteJobState;
  using grid::SiteHealth;
  EXPECT_STREQ(grid::to_string(RemoteJobState::kQueued), "queued");
  EXPECT_STREQ(grid::to_string(RemoteJobState::kStaging), "staging");
  EXPECT_STREQ(grid::to_string(RemoteJobState::kRunning), "running");
  EXPECT_STREQ(grid::to_string(RemoteJobState::kCompleted), "completed");
  EXPECT_STREQ(grid::to_string(RemoteJobState::kHeld), "held");
  EXPECT_STREQ(grid::to_string(RemoteJobState::kCancelled), "cancelled");
  EXPECT_STREQ(grid::to_string(SiteHealth::kHealthy), "healthy");
  EXPECT_STREQ(grid::to_string(SiteHealth::kDown), "down");
  EXPECT_STREQ(grid::to_string(SiteHealth::kBlackHole), "black-hole");
  EXPECT_STREQ(grid::to_string(SiteHealth::kDegraded), "degraded");
}

TEST(EnumRenderings, GatewayAndReports) {
  using submit::GatewayJobState;
  EXPECT_STREQ(submit::to_string(GatewayJobState::kSubmitted), "submitted");
  EXPECT_STREQ(submit::to_string(GatewayJobState::kFailed), "failed");
  EXPECT_STREQ(core::to_string(core::ReportKind::kCompleted), "completed");
  EXPECT_STREQ(core::to_string(core::ReportKind::kHeld), "held");
  EXPECT_STREQ(core::to_string(core::Algorithm::kCompletionTime),
               "completion-time");
}

TEST(UserLogNumbers, MatchCondorConventions) {
  using submit::GatewayJobState;
  using submit::userlog_event_number;
  EXPECT_EQ(userlog_event_number(GatewayJobState::kSubmitted), 0);
  EXPECT_EQ(userlog_event_number(GatewayJobState::kRunning), 1);
  EXPECT_EQ(userlog_event_number(GatewayJobState::kCompleted), 5);
  EXPECT_EQ(userlog_event_number(GatewayJobState::kRemoved), 9);
  EXPECT_EQ(userlog_event_number(GatewayJobState::kHeld), 12);
}

TEST(StateTerminality, GridJobStates) {
  using grid::RemoteJobState;
  EXPECT_TRUE(grid::is_terminal(RemoteJobState::kCompleted));
  EXPECT_TRUE(grid::is_terminal(RemoteJobState::kHeld));
  EXPECT_TRUE(grid::is_terminal(RemoteJobState::kCancelled));
  EXPECT_FALSE(grid::is_terminal(RemoteJobState::kQueued));
  EXPECT_FALSE(grid::is_terminal(RemoteJobState::kStaging));
  EXPECT_FALSE(grid::is_terminal(RemoteJobState::kRunning));
}

}  // namespace
}  // namespace sphinx
