#include "rpc/transport.hpp"

#include <algorithm>
#include <utility>

#include "obs/recorder.hpp"

namespace sphinx::rpc {

MessageBus::MessageBus(sim::Engine& engine, Rng rng, Duration base_latency,
                       Duration jitter)
    : engine_(engine),
      rng_(std::move(rng)),
      base_latency_(base_latency),
      jitter_(jitter) {
  SPHINX_ASSERT(base_latency_ >= 0, "latency must be non-negative");
  SPHINX_ASSERT(jitter_ >= 0, "jitter must be non-negative");
}

void MessageBus::register_endpoint(const std::string& name, Handler handler) {
  SPHINX_ASSERT(handler != nullptr, "endpoint handler must not be null");
  endpoints_[name] = std::move(handler);
  ever_registered_.insert(name);
  // Registration completes a planned handoff: the name has an owner
  // again, so later drops (if any) are back to crash semantics.
  handoff_pending_.erase(name);
}

void MessageBus::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

void MessageBus::expect_handoff(const std::string& name) {
  handoff_pending_.insert(name);
}

bool MessageBus::handoff_pending(const std::string& name) const noexcept {
  return handoff_pending_.contains(name);
}

bool MessageBus::has_endpoint(const std::string& name) const noexcept {
  return endpoints_.contains(name);
}

void MessageBus::set_fault_model(NetworkFaultConfig config, Rng faults_rng) {
  for (const LinkFaultRule& rule : config.rules) {
    SPHINX_ASSERT(rule.loss >= 0 && rule.loss <= 1, "loss is a probability");
    SPHINX_ASSERT(rule.duplicate >= 0 && rule.duplicate <= 1,
                  "duplicate is a probability");
    SPHINX_ASSERT(rule.reorder >= 0 && rule.reorder <= 1,
                  "reorder is a probability");
    SPHINX_ASSERT(rule.reorder_spike >= 0, "spike must be non-negative");
    SPHINX_ASSERT(rule.end >= rule.start, "fault window must not be inverted");
  }
  faults_ = std::move(config);
  faults_rng_ = std::move(faults_rng);
  faults_enabled_ = !faults_.rules.empty();
}

void MessageBus::set_control_stream(std::string prefix, Rng rng) {
  control_prefix_ = std::move(prefix);
  control_rng_ = std::move(rng);
  control_enabled_ = !control_prefix_.empty();
}

MessageId MessageBus::send(const std::string& from, const std::string& to,
                           std::string payload, Proxy proxy,
                           std::uint64_t call_seq) {
  Envelope env;
  env.from = from;
  env.to = to;
  env.payload = std::move(payload);
  env.proxy = std::move(proxy);
  env.call_seq = call_seq;
  return post(std::move(env));
}

MessageId MessageBus::reply(const Envelope& request, std::string payload) {
  Envelope env;
  env.from = request.to;
  env.to = request.from;
  env.payload = std::move(payload);
  env.in_reply_to = request.id;
  env.call_seq = request.call_seq;
  return post(std::move(env));
}

bool MessageBus::rule_matches(const LinkFaultRule& rule, const Envelope& env,
                              SimTime now) {
  if (now < rule.start || now >= rule.end) return false;
  const auto has_prefix = [](const std::string& name,
                             const std::string& prefix) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  // Symmetric: a (client, server) rule also hits server->client replies.
  return (has_prefix(env.from, rule.from_prefix) &&
          has_prefix(env.to, rule.to_prefix)) ||
         (has_prefix(env.from, rule.to_prefix) &&
          has_prefix(env.to, rule.from_prefix));
}

MessageId MessageBus::post(Envelope envelope) {
  envelope.id = ids_.next();
  envelope.sent_at = engine_.now();
  ++stats_.sent;
  // Control-plane traffic draws its latency from a dedicated stream and
  // skips the probabilistic faults below: its volume differs by design
  // between a failover run and its baseline, so letting it touch rng_ or
  // faults_rng_ would desynchronize every later core draw.
  const auto has_prefix = [this](const std::string& name) {
    return name.rfind(control_prefix_, 0) == 0;
  };
  const bool control =
      control_enabled_ && (has_prefix(envelope.from) || has_prefix(envelope.to));
  // The legacy latency-jitter draw comes first and always happens, so a
  // bus with no fault model consumes the identical rng_ sequence as one
  // that predates faults entirely.
  Rng& latency_rng = control ? control_rng_ : rng_;
  Duration delay =
      base_latency_ + (jitter_ > 0 ? latency_rng.uniform(0.0, jitter_) : 0.0);
  const MessageId id = envelope.id;

  if (faults_enabled_) {
    const SimTime now = engine_.now();
    bool partitioned = false;
    double pass_loss = 1.0;
    double pass_duplicate = 1.0;
    double pass_reorder = 1.0;
    Duration spike = 0.0;
    for (const LinkFaultRule& rule : faults_.rules) {
      if (!rule_matches(rule, envelope, now)) continue;
      partitioned = partitioned || rule.partition;
      pass_loss *= 1.0 - rule.loss;
      pass_duplicate *= 1.0 - rule.duplicate;
      if (rule.reorder > 0) {
        pass_reorder *= 1.0 - rule.reorder;
        spike = std::max(spike, rule.reorder_spike);
      }
    }
    if (partitioned) {
      ++stats_.partition_dropped;
      if (recorder_ != nullptr) {
        recorder_->event(obs::TraceKind::kBusPartitionDrop, envelope.from,
                         envelope.to, "", 0.0);
        recorder_->count("bus", "bus.partitioned");
      }
      return id;
    }
    // Partitions (above) are deterministic and apply to everything, the
    // control plane included -- a severed link severs heartbeats too.
    // The probabilistic faults below consume faults_rng_ draws, so
    // control traffic must not reach them (see set_control_stream()).
    if (control) {
      deliver_in(delay, std::move(envelope));
      return id;
    }
    if (pass_loss < 1.0 && faults_rng_.chance(1.0 - pass_loss)) {
      ++stats_.lost_injected;
      if (recorder_ != nullptr) {
        recorder_->event(obs::TraceKind::kBusLoss, envelope.from, envelope.to,
                         "", 0.0);
        recorder_->count("bus", "bus.lost");
      }
      return id;
    }
    if (pass_duplicate < 1.0 && faults_rng_.chance(1.0 - pass_duplicate)) {
      ++stats_.duplicated_injected;
      if (recorder_ != nullptr) {
        recorder_->event(obs::TraceKind::kBusDuplicate, envelope.from,
                         envelope.to, "", 0.0);
        recorder_->count("bus", "bus.duplicated");
      }
      // The duplicate's extra jitter comes from the fault stream so the
      // legacy stream still sees exactly one draw per logical send.
      const Duration dup_delay =
          base_latency_ +
          (jitter_ > 0 ? faults_rng_.uniform(0.0, jitter_) : 0.0);
      deliver_in(dup_delay, envelope);
    }
    if (pass_reorder < 1.0 && faults_rng_.chance(1.0 - pass_reorder)) {
      const Duration extra =
          spike > 0 ? faults_rng_.uniform(0.0, spike) : 0.0;
      delay += extra;
      ++stats_.reordered_injected;
      if (recorder_ != nullptr) {
        recorder_->event(obs::TraceKind::kBusReorder, envelope.from,
                         envelope.to, "", extra);
        recorder_->count("bus", "bus.reordered");
      }
    }
  }

  deliver_in(delay, std::move(envelope));
  return id;
}

void MessageBus::deliver_in(Duration delay, Envelope envelope) {
  engine_.schedule_in(
      delay, "bus:" + envelope.from + "->" + envelope.to,
      [this, env = std::move(envelope)]() {
        const auto it = endpoints_.find(env.to);
        if (it == endpoints_.end()) {
          // A planned-handoff window is not a crash: the old owner
          // unregistered deliberately and a new owner is on the way, so
          // the drop gets its own counter and detail.
          if (handoff_pending_.contains(env.to)) {
            ++stats_.dropped_handoff;
            if (recorder_ != nullptr) {
              recorder_->count("bus", "bus.dropped_handoff");
              recorder_->event(obs::TraceKind::kBusDrop, env.from, env.to,
                               "endpoint_handoff", 0.0);
            }
            return;
          }
          ++stats_.dropped_no_endpoint;
          const bool known = ever_registered_.contains(env.to);
          if (recorder_ != nullptr) {
            recorder_->count("bus", "bus.dropped_no_endpoint");
            recorder_->event(
                obs::TraceKind::kBusDrop, env.from, env.to,
                known ? "endpoint_unregistered" : "missing_endpoint", 0.0);
          }
          return;
        }
        ++stats_.delivered;
        if (recorder_ != nullptr) {
          const Duration latency = engine_.now() - env.sent_at;
          recorder_->event(obs::TraceKind::kBusDelivery, env.from, env.to, "",
                           latency);
          recorder_->observe("bus", "bus.delivery_latency", latency);
        }
        it->second(env);
      });
}

}  // namespace sphinx::rpc
