#include "monitor/service.hpp"

#include <cmath>

namespace sphinx::monitor {

MonitoringService::MonitoringService(sim::Engine& engine, grid::Grid& grid,
                                     MonitorConfig config, Rng rng)
    : engine_(engine), grid_(grid), config_(config), rng_(std::move(rng)) {}

void MonitoringService::start() {
  if (!config_.enabled) return;
  const std::size_t n = grid_.site_ids().size();
  for (std::size_t i = 0; i < n; ++i) {
    const SiteId site = grid_.site_ids()[i];
    // Stagger polls across the period like independent query jobs would.
    const Duration offset =
        config_.poll_period * static_cast<double>(i) / static_cast<double>(n);
    auto poller = std::make_unique<sim::PeriodicProcess>(
        engine_, "monitor:" + grid_.site(site).name(), config_.poll_period,
        [this, site] { poll_site(site); }, offset);
    poller->start();
    pollers_.push_back(std::move(poller));
  }
}

void MonitoringService::poll_site(SiteId site) {
  ++polls_;
  const auto status = grid_.site(site).query();
  const auto emit = [&](const std::string& name, double value) {
    if (registry_ == nullptr) return;
    registry_->publish(Metric{name, site, value, engine_.now(),
                              "sphinx-monitor"});
  };
  if (!status.has_value()) {
    ++failed_;  // site down: the old published snapshot just goes stale
    emit("site.alive", 0.0);
    return;
  }
  emit("site.alive", 1.0);
  emit("queue.length", status->queued);
  emit("jobs.running", status->running);
  emit("cpu.free", status->free_cpus);
  SiteSnapshot snap;
  snap.site = site;
  snap.cpus = status->cpus;
  snap.queued = perturb(status->queued);
  snap.running = perturb(status->running);
  snap.free_cpus = status->free_cpus;
  snap.measured_at = engine_.now();
  // Publication is delayed by the reporting pipeline.
  engine_.schedule_in(config_.report_latency, "monitor:publish",
                      [this, snap]() mutable {
                        snap.published_at = engine_.now();
                        published_[snap.site] = snap;
                      });
}

int MonitoringService::perturb(int value) {
  if (config_.noise <= 0 || value == 0) return value;
  const double factor = 1.0 + rng_.uniform(-config_.noise, config_.noise);
  return std::max(0, static_cast<int>(std::lround(value * factor)));
}

std::optional<SiteSnapshot> MonitoringService::snapshot(SiteId site) const {
  const auto it = published_.find(site);
  if (it == published_.end()) return std::nullopt;
  return it->second;
}

Duration MonitoringService::age(SiteId site, SimTime now) const {
  const auto snap = snapshot(site);
  if (!snap.has_value()) return kNever;
  return now - snap->measured_at;
}

int MonitoringService::catalog_cpus(SiteId site) const {
  return grid_.site(site).config().cpus;
}

}  // namespace sphinx::monitor
