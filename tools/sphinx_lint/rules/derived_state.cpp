/// \file derived_state.cpp
/// derived-state: members annotated as derived (never journaled,
/// rebuilt from recovered tables) may only be mutated by the functions
/// their annotation names.
///
/// The warehouse keeps derived work state -- the dirty-DAG queue, the
/// live outstanding-per-site counters -- that is deliberately *not*
/// journaled: recovery rebuilds it.  The recovery-equivalence oracle
/// only holds if every mutation path is one of the declared ones; a
/// stray `outstanding_[site]++` in a new feature would desync the
/// counters from the journal without any test noticing until a chaos
/// campaign bisection.
///
/// Declaration annotation, on the member's declaration line:
///   std::set<db::RowId> dirty_rows_;  // sphinx-lint: derived(mark_dag_dirty, drain_dirty_dags, rebuild_work_state)
///
/// Annotations declared in a header are enforced in the sibling source
/// file sharing the path stem (warehouse.hpp -> warehouse.cpp) by the
/// cross-file phase in analyze_tree().

#include <cctype>
#include <set>
#include <string>

#include "rule.hpp"

namespace sphinx::lint {
namespace {

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Container-mutating member functions.
[[nodiscard]] bool mutator_method(const std::string& name) {
  static const std::set<std::string> kMutators = {
      "insert",  "insert_or_assign", "emplace", "emplace_back",
      "emplace_hint", "try_emplace", "push_back", "pop_back", "push_front",
      "pop_front", "erase", "clear", "assign", "swap", "merge", "extract",
      "resize"};
  return kMutators.contains(name);
}

void rule_derived_state(const FileContext& file, const Reporter& out) {
  if (file.derived.empty()) return;
  const std::vector<Token>& t = file.tokens;
  const std::vector<FunctionSpan> spans = function_spans(t);

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    const auto it = file.derived.find(t[i].text);
    if (it == file.derived.end()) continue;
    // Skip member access on some *other* object (rec.outstanding_ ...).
    if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) {
      continue;
    }

    const Token& next = t[i + 1];
    std::string how;
    if (is_punct(next, ".") || is_punct(next, "->")) {
      if (i + 2 < t.size() && t[i + 2].kind == TokenKind::kIdentifier &&
          mutator_method(t[i + 2].text)) {
        how = "." + t[i + 2].text + "()";
      }
    } else if (is_punct(next, "[")) {
      how = "operator[]";
    } else if (is_punct(next, "=") || is_punct(next, "+=") ||
               is_punct(next, "-=")) {
      how = next.text;
    }
    if (how.empty()) continue;

    const FunctionSpan* fn = enclosing_function(spans, i);
    // Class-scope tokens (the declaration's default initializer) are
    // not mutations.
    if (fn == nullptr) continue;
    if (it->second.contains(fn->name) || it->second.contains(fn->qualified)) {
      continue;
    }
    std::string allowed;
    for (const std::string& name : it->second) {
      if (!allowed.empty()) allowed += ", ";
      allowed += name;
    }
    out.report(t[i].line, "derived-state",
               "derived member '" + t[i].text + "' mutated (" + how +
                   ") in '" + fn->qualified +
                   "', which is not one of its declared rebuild/maintenance "
                   "functions (" +
                   allowed +
                   "); derived state must stay a function of the journaled "
                   "tables plus the declared update points, or recovery "
                   "silently diverges");
  }
}

}  // namespace

std::map<std::string, std::set<std::string>> extract_derived(
    const Stripped& stripped, const std::vector<Token>& tokens) {
  std::map<std::string, std::set<std::string>> derived;
  for (std::size_t line_idx = 0; line_idx < stripped.comment_lines.size();
       ++line_idx) {
    const std::string& comment = stripped.comment_lines[line_idx];
    const std::size_t pos = comment.find("sphinx-lint: derived(");
    if (pos == std::string::npos) continue;
    // Parse the allowed-function list.
    std::set<std::string> fns;
    std::size_t p = pos + std::string_view("sphinx-lint: derived(").size();
    std::string name;
    while (p < comment.size() && comment[p] != ')') {
      const char c = comment[p++];
      if (c == ',') {
        if (!name.empty()) fns.insert(name);
        name.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        name.push_back(c);
      }
    }
    if (!name.empty()) fns.insert(name);
    if (fns.empty()) continue;

    // The annotated member: the identifier directly before ';', '=' or
    // '{' among this line's tokens.
    const std::size_t line = line_idx + 1;
    std::string member;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].line != line) continue;
      if (tokens[i].kind != TokenKind::kIdentifier) continue;
      const Token& next = tokens[i + 1];
      if (is_punct(next, ";") || is_punct(next, "=") || is_punct(next, "{")) {
        member = tokens[i].text;
        break;
      }
    }
    if (!member.empty()) derived[member] = std::move(fns);
  }
  return derived;
}

std::vector<Rule> derived_state_rules() {
  return {
      Rule{"derived-state",
           "derived members are only mutated by their declared functions",
           "A member annotated `// sphinx-lint: derived(f1, f2, ...)` on "
           "its declaration line is derived state: never journaled, "
           "rebuilt on recovery.  The recovery-equivalence oracle assumes "
           "every mutation flows through the declared maintenance/rebuild "
           "functions; this rule flags container mutations (insert, erase, "
           "clear, operator[], =, += ...) of an annotated member anywhere "
           "else.  Header annotations are enforced in the sibling .cpp via "
           "the cross-file phase.",
           &rule_derived_state},
  };
}

}  // namespace sphinx::lint
