/// \file raw.cpp
/// Fixture: compliant code -- streams come from the seed tree, and a
/// function *returning* Rng (or taking parameters) is a signature, not
/// a construction.

#include <cstdint>
#include <string>

namespace fixture {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);
};

struct Seeds {
  Rng stream(const std::string& label) const;
};

Rng make_stream(const Seeds& seeds);          // declaration, no args named
Rng for_label(const Seeds& seeds, std::string label);

Rng make_stream(const Seeds& seeds) { return seeds.stream("bus"); }

}  // namespace fixture
