#include "data/replication.hpp"

namespace sphinx::data {

std::optional<ReplicaChoice> select_replica(
    const std::vector<Replica>& replicas, SiteId destination,
    const TransferService& transfers) {
  std::optional<ReplicaChoice> best;
  for (const Replica& r : replicas) {
    const Duration cost =
        transfers.estimate(r.site, destination, r.size_bytes);
    if (!best.has_value() || cost < best->estimated_cost) {
      best = ReplicaChoice{r, cost};
    }
  }
  return best;
}

Duration estimate_stage_in(const std::vector<std::vector<Replica>>& inputs,
                           SiteId destination,
                           const TransferService& transfers) {
  Duration total = 0.0;
  for (const auto& replicas : inputs) {
    const auto choice = select_replica(replicas, destination, transfers);
    if (choice.has_value()) total += choice->estimated_cost;
  }
  return total;
}

}  // namespace sphinx::data
