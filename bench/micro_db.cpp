/// Microbenchmarks for the table store: inserts, indexed lookups, state
/// updates and journal replay -- the operations the SPHINX control
/// process performs on every sweep.

#include <benchmark/benchmark.h>

#include "core/warehouse.hpp"
#include "db/database.hpp"

namespace {

using namespace sphinx;
using db::Value;

db::Schema job_schema() {
  return db::Schema{{"job_id", db::ValueType::kInt},
                    {"state", db::ValueType::kText},
                    {"site", db::ValueType::kInt},
                    {"runtime", db::ValueType::kReal}};
}

void BM_TableInsert(benchmark::State& state) {
  for (auto _ : state) {
    db::Table table("jobs", job_schema());
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      table.insert({Value(i), Value("unplanned"), Value(i % 16),
                    Value(60.0)});
    }
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableInsert)->Range(256, 4096);

void BM_IndexedFindBy(benchmark::State& state) {
  db::Table table("jobs", job_schema());
  table.create_index("state");
  for (std::int64_t i = 0; i < 4096; ++i) {
    table.insert({Value(i), Value(i % 7 == 0 ? "ready" : "running"),
                  Value(i % 16), Value(60.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find_by("state", Value("ready")));
  }
}
BENCHMARK(BM_IndexedFindBy);

void BM_ScanFindBy(benchmark::State& state) {
  db::Table table("jobs", job_schema());  // no index: full scan
  for (std::int64_t i = 0; i < 4096; ++i) {
    table.insert({Value(i), Value(i % 7 == 0 ? "ready" : "running"),
                  Value(i % 16), Value(60.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find_by("state", Value("ready")));
  }
}
BENCHMARK(BM_ScanFindBy);

void BM_StateUpdate(benchmark::State& state) {
  db::Table table("jobs", job_schema());
  table.create_index("state");
  std::vector<db::RowId> rows;
  for (std::int64_t i = 0; i < 4096; ++i) {
    rows.push_back(
        table.insert({Value(i), Value("a"), Value(i % 16), Value(60.0)}));
  }
  std::size_t k = 0;
  for (auto _ : state) {
    table.update(rows[k % rows.size()], "state",
                 Value(k % 2 == 0 ? "b" : "a"));
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StateUpdate);

void BM_JournalReplay(benchmark::State& state) {
  // Build a realistic warehouse journal, then measure recovery.
  core::DataWarehouse warehouse;
  workflow::Dag dag(DagId(1), "bench");
  for (int i = 1; i <= 64; ++i) {
    workflow::JobSpec job;
    job.id = JobId(static_cast<std::uint64_t>(i));
    job.name = "j" + std::to_string(i);
    job.output = "lfn://o" + std::to_string(i);
    dag.add_job(job);
  }
  warehouse.insert_dag(dag, "client", UserId(1), 0.0);
  for (int i = 1; i <= 64; ++i) {
    warehouse.set_job_planned(JobId(static_cast<std::uint64_t>(i)),
                              SiteId(1 + i % 15), 1.0);
    warehouse.set_job_state(JobId(static_cast<std::uint64_t>(i)),
                            core::JobState::kCompleted);
    warehouse.record_completion(SiteId(1 + i % 15), 300.0);
  }
  for (auto _ : state) {
    auto recovered = core::DataWarehouse::recover_from(warehouse.journal());
    benchmark::DoNotOptimize(recovered.has_value());
  }
  state.SetLabel(std::to_string(warehouse.journal().size()) + " records");
}
BENCHMARK(BM_JournalReplay);

void BM_JournalSerializeParse(benchmark::State& state) {
  db::Database database;
  db::Table& table = database.create_table("jobs", job_schema());
  for (std::int64_t i = 0; i < 512; ++i) {
    table.insert({Value(i), Value("state-" + std::to_string(i % 5)),
                  Value(i % 16), Value(60.0 + i)});
  }
  for (auto _ : state) {
    const std::string text = database.journal().serialize();
    benchmark::DoNotOptimize(db::Journal::parse(text));
  }
}
BENCHMARK(BM_JournalSerializeParse);

}  // namespace
