
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/core_algorithms_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/core_algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/core_algorithms_test.cpp.o.d"
  "/root/repo/tests/core_codec_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/core_codec_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/core_codec_test.cpp.o.d"
  "/root/repo/tests/core_e2e_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/core_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/core_e2e_test.cpp.o.d"
  "/root/repo/tests/core_features_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/core_features_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/core_features_test.cpp.o.d"
  "/root/repo/tests/core_qos_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/core_qos_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/core_qos_test.cpp.o.d"
  "/root/repo/tests/core_server_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/core_server_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/core_server_test.cpp.o.d"
  "/root/repo/tests/core_warehouse_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/core_warehouse_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/core_warehouse_test.cpp.o.d"
  "/root/repo/tests/data_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/data_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/data_test.cpp.o.d"
  "/root/repo/tests/db_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/db_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/db_test.cpp.o.d"
  "/root/repo/tests/exp_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/exp_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/exp_test.cpp.o.d"
  "/root/repo/tests/grid_site_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/grid_site_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/grid_site_test.cpp.o.d"
  "/root/repo/tests/misc_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/misc_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/misc_test.cpp.o.d"
  "/root/repo/tests/monitor_gma_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/monitor_gma_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/monitor_gma_test.cpp.o.d"
  "/root/repo/tests/monitor_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/monitor_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rpc_clarens_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/rpc_clarens_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/rpc_clarens_test.cpp.o.d"
  "/root/repo/tests/rpc_xml_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/rpc_xml_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/rpc_xml_test.cpp.o.d"
  "/root/repo/tests/sim_engine_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/sim_engine_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/sim_engine_test.cpp.o.d"
  "/root/repo/tests/submit_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/submit_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/submit_test.cpp.o.d"
  "/root/repo/tests/workflow_dax_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/workflow_dax_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/workflow_dax_test.cpp.o.d"
  "/root/repo/tests/workflow_test.cpp" "tests/CMakeFiles/sphinx_tests.dir/workflow_test.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/workflow_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sphinxgrid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
