# Empty compiler generated dependencies file for fig4_algorithms_60.
# This may be replaced when dependencies are built.
