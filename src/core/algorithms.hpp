#pragma once
/// \file algorithms.hpp
/// The four scheduling strategies evaluated in the paper (section 4.1).
///
/// Every strategy sees the same PlanningContext -- an immutable
/// per-decision snapshot of the *feasible* sites (policy and reliability
/// filters have already run, and the Planner assembled the monitored and
/// feedback data) -- and returns the chosen execution site.  The
/// information each
/// strategy actually uses differs, which is the whole point of the
/// paper's comparison:
///
///   round-robin      uses nothing (cycles the site list)
///   num-cpus         eq. (1): local accounting / static CPU counts
///   queue-length     eq. (2): monitored queue data (possibly stale)
///   completion-time  eq. (3): tracker-fed completion-time EWMAs, with a
///                    round-robin warm-up for sites lacking data (hybrid)

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "core/state.hpp"

namespace sphinx::core {

/// Everything a strategy may know about one feasible site.
struct CandidateSite {
  SiteId id;
  int cpus = 1;                   ///< static catalog information
  std::int64_t outstanding = 0;   ///< this server's planned + unfinished jobs
  // Monitored data (possibly stale or absent):
  bool monitored = false;
  int mon_queued = 0;
  int mon_running = 0;
  // Feedback data from the tracker:
  std::int64_t completed = 0;
  std::int64_t cancelled = 0;
  double avg_completion = 0.0;    ///< EWMA; meaningless when samples == 0
  std::int64_t samples = 0;
};

/// One scheduling decision's input.
struct PlanningContext {
  SimTime now = 0.0;
  std::vector<CandidateSite> sites;  ///< feasible sites, catalog order
};

/// Strategy interface.  Implementations keep internal cursors (round
/// robin position) but no per-job state.
///
/// Cursor state is *soft* but not *free*: a recovered server that resets
/// it would diverge from the uninterrupted run.  save_state()/
/// restore_state() serialize it to a short deterministic string the
/// warehouse journals alongside the tables, closing that gap.
class SchedulingAlgorithm {
 public:
  virtual ~SchedulingAlgorithm() = default;

  /// Picks a site from the context; nullopt when no site is acceptable.
  [[nodiscard]] virtual std::optional<SiteId> select(
      const PlanningContext& context) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Serializes internal cursors; "" for stateless strategies.  Equal
  /// internal state must serialize identically (used for change checks).
  [[nodiscard]] virtual std::string save_state() const { return ""; }

  /// Restores state produced by save_state() on the same strategy type.
  /// Unparseable or empty input leaves the strategy at its defaults.
  virtual void restore_state(const std::string& state) { (void)state; }
};

/// Factory for the paper's strategies.
[[nodiscard]] std::unique_ptr<SchedulingAlgorithm> make_algorithm(
    Algorithm algorithm);

/// Round robin: submit jobs in the order of sites in the list.
class RoundRobinAlgorithm final : public SchedulingAlgorithm {
 public:
  [[nodiscard]] std::optional<SiteId> select(
      const PlanningContext& context) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  [[nodiscard]] std::string save_state() const override;
  void restore_state(const std::string& state) override;

 private:
  std::uint64_t cursor_ = 0;
};

/// Eq. (1): rate_i = (planned_i + unfinished_i) / CPU_i, pick the min.
class NumCpusAlgorithm final : public SchedulingAlgorithm {
 public:
  [[nodiscard]] std::optional<SiteId> select(
      const PlanningContext& context) override;
  [[nodiscard]] std::string name() const override { return "num-cpus"; }
};

/// Eq. (2): rate_i = (queued_i + running_i + planned_i) / CPU_i using the
/// monitoring system's (stale) queue data; unmonitored sites fall back to
/// local accounting only.
class QueueLengthAlgorithm final : public SchedulingAlgorithm {
 public:
  [[nodiscard]] std::optional<SiteId> select(
      const PlanningContext& context) override;
  [[nodiscard]] std::string name() const override { return "queue-length"; }
};

/// Eq. (3): pick the available site minimizing the normalized average
/// completion time, scaled by the prediction module's load estimate.
/// Hybrid warm-up ("schedules jobs on round robin technique until it has
/// that information for the remote sites"): every site lacking data gets
/// exactly one probe job; between probes -- and for good -- planning
/// exploits the sites already measured.
class CompletionTimeAlgorithm final : public SchedulingAlgorithm {
 public:
  [[nodiscard]] std::optional<SiteId> select(
      const PlanningContext& context) override;
  [[nodiscard]] std::string name() const override { return "completion-time"; }
  [[nodiscard]] std::string save_state() const override;
  void restore_state(const std::string& state) override;

 private:
  std::uint64_t warmup_cursor_ = 0;
  std::unordered_set<std::uint64_t> probed_;  ///< sites given a probe job
};

}  // namespace sphinx::core
