// Fixture: every line below must trip the sim-clock rule.
#include <chrono>
#include <ctime>

double wall_seconds() {
  const auto t0 = std::chrono::system_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  const auto t2 = std::chrono::high_resolution_clock::now();
  const std::time_t stamp = std::time(nullptr);
  return static_cast<double>(stamp) + t0.time_since_epoch().count() +
         t1.time_since_epoch().count() + t2.time_since_epoch().count();
}
