#include "obs/metrics.hpp"

#include "obs/trace.hpp"

namespace sphinx::obs {

void MetricSet::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricSet::observe(const std::string& name, double value) {
  Histogram& histogram = histograms_[name];
  histogram.stats.add(value);
  histogram.samples.push_back(value);
}

std::uint64_t MetricSet::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const MetricSet::Histogram* MetricSet::histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricSet::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    const RunningStats& stats = histogram.stats;
    out += "    \"" + json_escape(name) + "\": {";
    out += "\"count\": " + std::to_string(stats.count());
    out += ", \"mean\": " + format_double(stats.mean());
    out += ", \"min\": " + format_double(stats.min());
    out += ", \"max\": " + format_double(stats.max());
    out += ", \"stddev\": " + format_double(stats.stddev());
    out += ", \"p50\": " + format_double(percentile(histogram.samples, 0.5));
    out += ", \"p90\": " + format_double(percentile(histogram.samples, 0.9));
    out += ", \"p99\": " + format_double(percentile(histogram.samples, 0.99));
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace sphinx::obs
