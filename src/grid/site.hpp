#pragma once
/// \file site.hpp
/// One grid site: CPUs + local batch scheduler + health state.
///
/// A site accepts job submissions into a priority queue (VO priority
/// decides order, FIFO within a priority), dispatches them onto free CPUs,
/// optionally runs a stage-in hook before computing, and emits condor-like
/// status events.  Health states model the failure modes the paper's
/// evaluation depends on: honest sites, sites that are down (unresponsive,
/// jobs lost), black holes (accept jobs, never run them) and degraded
/// sites (CPUs slowed).

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "grid/types.hpp"
#include "sim/engine.hpp"

namespace sphinx::grid {

/// Site health, driven by the failure model.
enum class SiteHealth {
  kHealthy,
  kDown,       ///< unresponsive: loses jobs, answers no queries
  kBlackHole,  ///< responsive but never dispatches jobs
  kDegraded,   ///< responsive, CPUs run slower
};

[[nodiscard]] const char* to_string(SiteHealth health) noexcept;

/// Static configuration of a site.
struct SiteConfig {
  std::string name;
  int cpus = 16;
  double cpu_speed = 1.0;      ///< relative speed; runtime = nominal / speed
  double runtime_noise = 0.1;  ///< lognormal sigma on job runtimes
  double degraded_speed = 0.3; ///< speed multiplier while kDegraded
  /// Local batch priority by VO name; unlisted VOs get priority 0.
  std::map<std::string, double> vo_priority;
};

/// Cumulative counters for site-level reporting (Figure 6).
struct SiteCounters {
  std::size_t submitted = 0;
  std::size_t dispatched = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t lost = 0;  ///< dropped while the site was down
};

class Site {
 public:
  Site(sim::Engine& engine, SiteId id, SiteConfig config, Rng rng);

  [[nodiscard]] SiteId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return config_.name; }
  [[nodiscard]] const SiteConfig& config() const noexcept { return config_; }
  [[nodiscard]] SiteHealth health() const noexcept { return health_; }
  [[nodiscard]] const SiteCounters& counters() const noexcept { return counters_; }

  /// Installs the stage-in hook (typically the GridFTP-backed one from the
  /// submission layer).  May be null for compute-only workloads.
  void set_stage_in_hook(StageInHook hook) { stage_in_ = std::move(hook); }

  /// Submits a job.  The site assigns and returns the submission id (ids
  /// are scoped to this site).  Returns nullopt if the site is down: the
  /// gatekeeper does not respond and the submission is lost.  The callback
  /// observes every later state change of this submission.
  std::optional<SubmissionId> submit(RemoteJob job, JobEventCallback callback);

  /// condor_rm: cancels a queued/staging/running job.  Queued jobs leave
  /// the queue; running jobs free their CPU.  Emits kCancelled.  Returns
  /// false if the submission is unknown, already terminal, or the site is
  /// down (an unresponsive gatekeeper cannot process the remove -- the
  /// job is already lost anyway).
  bool cancel(SubmissionId submission);

  /// condor_q: the live queue snapshot, or nullopt if the site is down.
  [[nodiscard]] std::optional<QueueStatus> query() const;

  /// State of one submission (for gateway polling); nullopt if unknown.
  [[nodiscard]] std::optional<RemoteJobState> submission_state(
      SubmissionId submission) const;

  /// --- health transitions (driven by FailureModel) -------------------
  /// Takes the site down: queued/staging/running jobs are silently lost
  /// (no events -- an unresponsive site cannot notify anyone).
  void go_down();
  /// Turns the site into a black hole: it keeps accepting submissions and
  /// answering queries but never dispatches.
  void become_black_hole();
  /// Degrades CPU speed (running jobs finish at the degraded rate from
  /// their original schedule; new dispatches use the degraded speed).
  void degrade();
  /// Restores a healthy site.
  void recover();

 private:
  struct Entry {
    RemoteJob job;
    RemoteJobState state = RemoteJobState::kQueued;
    JobEventCallback callback;
    SimTime submitted_at = 0.0;
    sim::EventHandle completion;  ///< pending compute-finish event
  };

  void emit(Entry& entry, RemoteJobState state);
  void try_dispatch();
  void start_job(SubmissionId submission);
  void begin_compute(SubmissionId submission);
  [[nodiscard]] double effective_speed() const noexcept;

  sim::Engine& engine_;
  SiteId id_;
  SiteConfig config_;
  Rng rng_;
  SiteHealth health_ = SiteHealth::kHealthy;
  StageInHook stage_in_;

  // Queue of waiting submissions ordered by (priority desc, arrival).
  // Key: (-priority, arrival sequence) for natural map ordering.
  std::map<std::pair<double, std::uint64_t>, SubmissionId> queue_;
  std::uint64_t arrival_seq_ = 0;
  IdGenerator<SubmissionId> submission_ids_;
  int busy_cpus_ = 0;
  std::unordered_map<SubmissionId, Entry> entries_;
  std::unordered_map<SubmissionId, std::pair<double, std::uint64_t>> queue_pos_;
  SiteCounters counters_;
};

}  // namespace sphinx::grid
