/// \file one.cpp
/// Fixture: module src/alpha owns stream "alpha-label".

#include <string>

namespace fixture {

struct Seeds {
  int stream(const std::string& label) const;
};

int alpha_draw(const Seeds& seeds) { return seeds.stream("alpha-label"); }

}  // namespace fixture
