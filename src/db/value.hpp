#pragma once
/// \file value.hpp
/// Dynamically-typed cell values for the table store.
///
/// The SPHINX server keeps all scheduling state (DAGs, jobs, messages,
/// site statistics, quotas) in database tables so that modules communicate
/// through storage and the server can be rebuilt after a crash (paper
/// section 3.1, "robust and recoverable system").  Values are the cells of
/// those tables.

#include <cstdint>
#include <string>
#include <variant>

namespace sphinx::db {

/// Column/value type tags.
enum class ValueType { kNull, kInt, kReal, kText, kBool };

/// Human-readable name of a value type ("int", "text", ...).
[[nodiscard]] const char* to_string(ValueType type) noexcept;

/// A single dynamically typed cell.
class Value {
 public:
  Value() noexcept = default;  ///< null
  Value(std::int64_t v) noexcept : data_(v) {}
  Value(int v) noexcept : data_(static_cast<std::int64_t>(v)) {}
  Value(std::uint64_t v) noexcept : data_(static_cast<std::int64_t>(v)) {}
  Value(double v) noexcept : data_(v) {}
  Value(bool v) noexcept : data_(v) {}
  Value(std::string v) noexcept : data_(std::move(v)) {}
  Value(const char* v) : data_(std::string(v)) {}

  [[nodiscard]] ValueType type() const noexcept;
  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(data_);
  }

  /// Typed accessors.  Reading the wrong type throws AssertionError --
  /// schemas are enforced on write, so this indicates a programming bug.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;  ///< also accepts int cells
  [[nodiscard]] const std::string& as_text() const;
  [[nodiscard]] bool as_bool() const;

  /// Canonical text form, used by the journal serialization.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.data_ == b.data_;
  }
  friend bool operator<(const Value& a, const Value& b) noexcept {
    return a.data_ < b.data_;
  }

 private:
  std::variant<std::monostate, std::int64_t, double, std::string, bool> data_;
};

}  // namespace sphinx::db
