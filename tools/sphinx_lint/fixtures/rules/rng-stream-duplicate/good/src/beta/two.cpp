/// \file two.cpp
/// Fixture: module src/beta owns a distinct label; reusing a label
/// *within* one module (several call sites of one subsystem) is fine.

#include <string>

namespace fixture {

struct Seeds {
  int stream(const std::string& label) const;
};

int beta_draw(const Seeds& seeds) { return seeds.stream("beta-label"); }

}  // namespace fixture
