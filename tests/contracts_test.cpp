// Negative tests for the runtime contracts layer (common/contracts.hpp).
// Each case corrupts state that the public API can no longer reach --
// either through a test-only Inspector friend or by writing semantically
// invalid (but schema-valid) cells straight into the warehouse tables --
// and checks that the matching check_invariants() sweep or precondition
// throws ContractViolation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "core/state.hpp"
#include "core/warehouse.hpp"
#include "db/database.hpp"
#include "sim/engine.hpp"
#include "workflow/dag.hpp"

namespace sphinx::sim {

/// Test-only back door: the public Engine API cannot produce a
/// non-monotonic clock or a desynchronized live-id set, so the negative
/// tests reach in directly.
struct EngineInspector {
  static void warp_clock(Engine& engine, SimTime t) { engine.now_ = t; }
  static void drop_live_ids(Engine& engine) { engine.live_ids_.clear(); }
};

}  // namespace sphinx::sim

namespace sphinx::db {

/// Test-only back door into the table store.
struct TableInspector {
  static void append_phantom_cell(Table& table, RowId id) {
    table.rows_.at(id).cells.emplace_back();  // arity now violates schema
  }
  static void add_phantom_index_entry(Table& table) {
    table.indexes_.begin()->second.begin()->second.push_back(RowId{9999});
  }
};

/// Test-only back door into the journal.
struct DatabaseInspector {
  static void append_foreign_journal_entry(Database& db) {
    JournalEntry entry;
    entry.op = JournalEntry::Op::kInsert;
    entry.table = "no_such_table";
    entry.row = 1;
    db.journal_.append(std::move(entry));
  }
};

}  // namespace sphinx::db

namespace sphinx::core {
namespace {

using db::Value;

workflow::Dag one_job_dag(std::uint64_t base = 100) {
  workflow::Dag dag(DagId(base), "contract-dag");
  workflow::JobSpec spec;
  spec.id = JobId(base + 1);
  spec.name = "only";
  spec.compute_time = 30.0;
  spec.output = "lfn://out";
  spec.output_bytes = 1e6;
  dag.add_job(spec);
  return dag;
}

#if SPHINX_CONTRACTS_ENABLED

// --- sim: event queue monotonicity --------------------------------------

TEST(Contracts, EngineDetectsNonMonotonicClock) {
  sim::Engine engine;
  engine.schedule_at(100.0, "late", [] {});
  EXPECT_NO_THROW(engine.check_invariants());
  sim::EngineInspector::warp_clock(engine, 200.0);
  EXPECT_THROW(engine.check_invariants(), ContractViolation);
}

TEST(Contracts, EngineDetectsDesyncedLiveIdSet) {
  sim::Engine engine;
  engine.schedule_at(5.0, "ev", [] {});
  sim::EngineInspector::drop_live_ids(engine);
  EXPECT_THROW(engine.check_invariants(), ContractViolation);
}

TEST(Contracts, EngineRejectsBadScheduleArguments) {
  sim::Engine engine;
  EXPECT_THROW(engine.schedule_at(1.0, "null-cb", nullptr),
               ContractViolation);
  EXPECT_THROW(engine.schedule_at(std::numeric_limits<double>::quiet_NaN(),
                                  "nan-time", [] {}),
               ContractViolation);
}

TEST(Contracts, PeriodicProcessRejectsDegenerateConfig) {
  sim::Engine engine;
  EXPECT_THROW(sim::PeriodicProcess(engine, "p", 0.0, [] {}),
               ContractViolation);
  EXPECT_THROW(sim::PeriodicProcess(engine, "p", 1.0, nullptr),
               ContractViolation);
}

// --- core: job state machine legality -----------------------------------

TEST(Contracts, JobStateMachineRejectsResurrection) {
  DataWarehouse wh;
  wh.insert_dag(one_job_dag(), "c", UserId(1), 0.0);
  wh.set_job_state(JobId(101), JobState::kCompleted);  // DAG-reduction path
  EXPECT_THROW(wh.set_job_state(JobId(101), JobState::kRunning),
               ContractViolation);
}

TEST(Contracts, JobStateMachineAllowsWithdrawal) {
  DataWarehouse wh;
  wh.insert_dag(one_job_dag(), "c", UserId(1), 0.0);
  wh.set_job_planned(JobId(101), SiteId(3), 1.0);
  EXPECT_NO_THROW(wh.set_job_state(JobId(101), JobState::kUnplanned));
}

TEST(Contracts, DagAutomatonOnlyMovesForward) {
  DataWarehouse wh;
  wh.insert_dag(one_job_dag(), "c", UserId(1), 0.0);
  wh.set_dag_state(DagId(100), DagState::kPlanning);
  EXPECT_THROW(wh.set_dag_state(DagId(100), DagState::kReceived),
               ContractViolation);
}

TEST(Contracts, DagCannotFinishBeforeItWasReceived) {
  DataWarehouse wh;
  wh.insert_dag(one_job_dag(), "c", UserId(1), 100.0);
  EXPECT_THROW(wh.set_dag_finished(DagId(100), 50.0), ContractViolation);
}

// --- core: warehouse sweeps over corrupted rows -------------------------

TEST(Contracts, WarehouseDetectsUnparseableJobState) {
  DataWarehouse wh;
  wh.insert_dag(one_job_dag(), "c", UserId(1), 0.0);
  EXPECT_NO_THROW(wh.check_invariants());
  // "bogus" is schema-valid text, so the table layer accepts it; only the
  // warehouse-level sweep knows it is not a job state.
  const auto rows =
      wh.database().table("jobs").find_by("job_id", Value(std::uint64_t{101}));
  ASSERT_EQ(rows.size(), 1u);
  wh.database().table("jobs").update(rows.front(), "state", Value("bogus"));
  EXPECT_THROW(wh.check_invariants(), ContractViolation);
}

TEST(Contracts, WarehouseDetectsJobCountDrift) {
  DataWarehouse wh;
  wh.insert_dag(one_job_dag(), "c", UserId(1), 0.0);
  const auto rows =
      wh.database().table("jobs").find_by("job_id", Value(std::uint64_t{101}));
  ASSERT_EQ(rows.size(), 1u);
  wh.database().table("jobs").erase(rows.front());
  EXPECT_THROW(wh.check_invariants(), ContractViolation);
}

TEST(Contracts, WarehouseDetectsNegativeSiteStats) {
  DataWarehouse wh;
  wh.record_completion(SiteId(7), 12.0);
  EXPECT_NO_THROW(wh.check_invariants());
  const auto rows = wh.database().table("site_stats").select(
      [](const db::Row&) { return true; });
  ASSERT_EQ(rows.size(), 1u);
  wh.database().table("site_stats").update(rows.front(), "completed",
                                           Value(std::int64_t{-1}));
  EXPECT_THROW(wh.check_invariants(), ContractViolation);
}

TEST(Contracts, WarehouseDetectsNegativeQuotaUsage) {
  DataWarehouse wh;
  wh.set_quota(UserId(1), SiteId(2), "cpu", 10.0);
  wh.consume_quota(UserId(1), SiteId(2), "cpu", 4.0);
  EXPECT_NO_THROW(wh.check_invariants());
  const auto rows = wh.database().table("quotas").select(
      [](const db::Row&) { return true; });
  ASSERT_EQ(rows.size(), 1u);
  wh.database().table("quotas").update(rows.front(), "used", Value(-1.0));
  EXPECT_THROW(wh.check_invariants(), ContractViolation);
}

TEST(Contracts, QuotaApiRejectsNegativeAmounts) {
  DataWarehouse wh;
  wh.set_quota(UserId(1), SiteId(2), "cpu", 10.0);
  EXPECT_THROW(wh.consume_quota(UserId(1), SiteId(2), "cpu", -4.0),
               ContractViolation);
  EXPECT_THROW(wh.refund_quota(UserId(1), SiteId(2), "cpu", -4.0),
               ContractViolation);
}

TEST(Contracts, RecordCompletionRejectsAbsurdDurations) {
  DataWarehouse wh;
  EXPECT_THROW(wh.record_completion(SiteId(1), -5.0), ContractViolation);
  EXPECT_THROW(
      wh.record_completion(SiteId(1),
                           std::numeric_limits<double>::quiet_NaN()),
      ContractViolation);
}

// --- db: table / journal consistency ------------------------------------

TEST(Contracts, TableDetectsSchemaArityCorruption) {
  db::Database db;
  db.create_table("t", db::Schema{{"a", db::ValueType::kInt}});
  const auto id = db.table("t").insert({Value(std::int64_t{1})});
  EXPECT_NO_THROW(db.check_invariants());
  db::TableInspector::append_phantom_cell(db.table("t"), id);
  EXPECT_THROW(db.check_invariants(), ContractViolation);
}

TEST(Contracts, TableDetectsIndexNamingMissingRow) {
  db::Database db;
  db.create_table("t", db::Schema{{"a", db::ValueType::kInt}});
  db.table("t").create_index("a");
  db.table("t").insert({Value(std::int64_t{1})});
  EXPECT_NO_THROW(db.check_invariants());
  db::TableInspector::add_phantom_index_entry(db.table("t"));
  EXPECT_THROW(db.check_invariants(), ContractViolation);
}

TEST(Contracts, TableRejectsTypeConfusedUpdate) {
  db::Database db;
  db.create_table("t", db::Schema{{"a", db::ValueType::kInt}});
  const auto id = db.table("t").insert({Value(std::int64_t{1})});
  EXPECT_THROW(db.table("t").update(id, "a", Value("not an int")),
               AssertionError);
}

TEST(Contracts, DatabaseDetectsForeignJournalEntry) {
  db::Database db;
  db.create_table("t", db::Schema{{"a", db::ValueType::kInt}});
  EXPECT_NO_THROW(db.check_invariants());
  db::DatabaseInspector::append_foreign_journal_entry(db);
  EXPECT_THROW(db.check_invariants(), ContractViolation);
}

// --- positive: honest workloads sail through the sweeps -----------------

TEST(Contracts, HealthyWarehousePassesAllSweeps) {
  DataWarehouse wh;
  wh.insert_dag(one_job_dag(), "c", UserId(1), 0.0);
  wh.set_dag_state(DagId(100), DagState::kPlanning);
  wh.set_job_planned(JobId(101), SiteId(3), 1.0);
  wh.set_job_state(JobId(101), JobState::kSubmitted);
  wh.set_job_state(JobId(101), JobState::kRunning);
  wh.set_job_state(JobId(101), JobState::kCompleted);
  wh.record_completion(SiteId(3), 29.0);
  wh.set_dag_finished(DagId(100), 31.0);
  EXPECT_NO_THROW(wh.check_invariants());
}

TEST(Contracts, ViolationIsAnAssertionError) {
  // Callers that already catch AssertionError keep working.
  try {
    SPHINX_INVARIANT(false, "deliberate");
    FAIL() << "invariant did not fire";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("deliberate"), std::string::npos);
  }
}

#else  // contracts compiled out

TEST(Contracts, DisabledContractsAreFreeAndSilent) {
  sim::Engine engine;
  engine.schedule_at(100.0, "late", [] {});
  sim::EngineInspector::warp_clock(engine, 200.0);
  EXPECT_NO_THROW(engine.check_invariants());
}

#endif  // SPHINX_CONTRACTS_ENABLED

}  // namespace
}  // namespace sphinx::core
