#include "workflow/dag.hpp"

#include <algorithm>
#include <queue>

namespace sphinx::workflow {

void Dag::add_job(JobSpec job) {
  SPHINX_ASSERT(job.id.valid(), "job needs a valid id");
  SPHINX_ASSERT(!index_.contains(job.id), "duplicate job id in DAG");
  index_.emplace(job.id, jobs_.size());
  jobs_.push_back(std::move(job));
  parents_.emplace_back();
  children_.emplace_back();
}

void Dag::add_edge(JobId parent, JobId child) {
  const std::size_t p = index_of(parent);
  const std::size_t c = index_of(child);
  SPHINX_ASSERT(parent != child, "self edge in DAG");
  auto& kids = children_[p];
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) return;
  kids.push_back(child);
  parents_[c].push_back(parent);
}

bool Dag::has_job(JobId id) const noexcept { return index_.contains(id); }

std::size_t Dag::index_of(JobId id) const {
  const auto it = index_.find(id);
  SPHINX_ASSERT(it != index_.end(),
                "unknown job id " + std::to_string(id.value()));
  return it->second;
}

const JobSpec& Dag::job(JobId id) const { return jobs_[index_of(id)]; }

const std::vector<JobId>& Dag::parents(JobId id) const {
  return parents_[index_of(id)];
}

const std::vector<JobId>& Dag::children(JobId id) const {
  return children_[index_of(id)];
}

std::vector<JobId> Dag::ready_jobs(
    const std::unordered_set<JobId>& completed) const {
  std::vector<JobId> out;
  for (const JobSpec& job : jobs_) {
    if (completed.contains(job.id)) continue;
    const auto& ps = parents_[index_.at(job.id)];
    const bool ready = std::all_of(ps.begin(), ps.end(), [&](JobId p) {
      return completed.contains(p);
    });
    if (ready) out.push_back(job.id);
  }
  return out;
}

std::vector<JobId> Dag::roots() const {
  std::vector<JobId> out;
  for (const JobSpec& job : jobs_) {
    if (parents_[index_.at(job.id)].empty()) out.push_back(job.id);
  }
  return out;
}

Expected<std::vector<JobId>> Dag::topological_order() const {
  std::unordered_map<JobId, std::size_t> indegree;
  for (const JobSpec& job : jobs_) {
    indegree[job.id] = parents_[index_.at(job.id)].size();
  }
  // Kahn's algorithm with a FIFO for stable output order.
  std::queue<JobId> frontier;
  for (const JobSpec& job : jobs_) {
    if (indegree[job.id] == 0) frontier.push(job.id);
  }
  std::vector<JobId> order;
  order.reserve(jobs_.size());
  while (!frontier.empty()) {
    const JobId id = frontier.front();
    frontier.pop();
    order.push_back(id);
    for (const JobId child : children_[index_.at(id)]) {
      if (--indegree[child] == 0) frontier.push(child);
    }
  }
  if (order.size() != jobs_.size()) {
    return make_error("dag_cycle", "DAG " + name_ + " contains a cycle");
  }
  return order;
}

StatusOrError Dag::validate() const {
  const auto order = topological_order();
  if (!order) return Unexpected<Error>{order.error()};
  for (const JobSpec& job : jobs_) {
    for (const JobId parent : parents_[index_.at(job.id)]) {
      const JobSpec& p = this->job(parent);
      const bool consumed =
          std::find(job.inputs.begin(), job.inputs.end(), p.output) !=
          job.inputs.end();
      if (!consumed) {
        return make_error("dag_dataflow",
                          "edge " + p.name + " -> " + job.name +
                              " has no matching input for " + p.output);
      }
    }
  }
  return {};
}

}  // namespace sphinx::workflow
