#include "chaos/minimize.hpp"

#include <utility>
#include <vector>

namespace sphinx::chaos {
namespace {

/// Tries removing one outage entry; returns true (and commits) when the
/// failure survives without it.
bool try_remove_outage(ChaosSchedule& schedule, const std::string& site,
                       std::size_t index, const FailingPredicate& still_fails) {
  ChaosSchedule candidate = schedule;
  std::vector<grid::ScheduledOutage>& list = candidate.outages[site];
  list.erase(list.begin() + static_cast<std::ptrdiff_t>(index));
  if (list.empty()) candidate.outages.erase(site);
  if (!still_fails(candidate)) return false;
  schedule = std::move(candidate);
  return true;
}

}  // namespace

ChaosSchedule minimize_schedule(ChaosSchedule schedule,
                                const FailingPredicate& still_fails) {
  // Phase 1: greedy outage pruning, repeated until a full pass removes
  // nothing (removing entry A can make entry B removable).
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    // Snapshot the site names: pruning mutates the map.
    std::vector<std::string> sites;
    sites.reserve(schedule.outages.size());
    for (const auto& [site, list] : schedule.outages) sites.push_back(site);
    for (const std::string& site : sites) {
      std::size_t index = 0;
      while (schedule.outages.contains(site) &&
             index < schedule.outages[site].size()) {
        if (try_remove_outage(schedule, site, index, still_fails)) {
          shrunk = true;  // same index now names the next entry
        } else {
          ++index;
        }
      }
    }
  }

  // Phase 2: crash point pruning -- a multi-crash failure often needs
  // only one of its crashes.  Regular and mid-checkpoint points prune
  // against the combined count, so minimization can land on either kind
  // alone (but never on a schedule with no crash at all: such a failure
  // is not a recovery failure and belongs to the invariant oracles).
  const auto total_crashes = [&schedule] {
    return schedule.crash_records.size() + schedule.mid_ckpt_crashes.size();
  };
  std::size_t index = 0;
  while (total_crashes() > 1 && index < schedule.crash_records.size()) {
    ChaosSchedule candidate = schedule;
    candidate.crash_records.erase(candidate.crash_records.begin() +
                                  static_cast<std::ptrdiff_t>(index));
    if (still_fails(candidate)) {
      schedule = std::move(candidate);
    } else {
      ++index;
    }
  }
  index = 0;
  while (total_crashes() > 1 && index < schedule.mid_ckpt_crashes.size()) {
    ChaosSchedule candidate = schedule;
    candidate.mid_ckpt_crashes.erase(candidate.mid_ckpt_crashes.begin() +
                                     static_cast<std::ptrdiff_t>(index));
    if (still_fails(candidate)) {
      schedule = std::move(candidate);
    } else {
      ++index;
    }
  }

  // Phase 2b: network-window pruning -- same greedy shape as the outage
  // pass; a wire-fault failure usually hinges on one window (often the
  // partition), so drop every window the failure survives without.
  index = 0;
  while (index < schedule.net_windows.size()) {
    ChaosSchedule candidate = schedule;
    candidate.net_windows.erase(candidate.net_windows.begin() +
                                static_cast<std::ptrdiff_t>(index));
    if (still_fails(candidate)) {
      schedule = std::move(candidate);
    } else {
      ++index;
    }
  }

  // Phase 3: bisect each surviving crash point down to the smallest
  // journal-record position that still reproduces.  The predicate is not
  // monotone in general, so this is a heuristic descent; every accepted
  // midpoint is re-verified, and the loop never accepts a non-failing
  // candidate.
  for (std::size_t c = 0; c < schedule.crash_records.size(); ++c) {
    std::size_t lo = 1;
    std::size_t hi = schedule.crash_records[c];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      ChaosSchedule candidate = schedule;
      candidate.crash_records[c] = mid;
      if (still_fails(candidate)) {
        schedule = std::move(candidate);
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }
  // Same descent for mid-checkpoint points.  Their firing position also
  // depends on the checkpoint cadence (the arm only triggers inside a
  // checkpoint), but the predicate re-verifies every candidate, so the
  // descent simply stops where reproduction stops.
  for (std::size_t c = 0; c < schedule.mid_ckpt_crashes.size(); ++c) {
    std::size_t lo = 1;
    std::size_t hi = schedule.mid_ckpt_crashes[c];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      ChaosSchedule candidate = schedule;
      candidate.mid_ckpt_crashes[c] = mid;
      if (still_fails(candidate)) {
        schedule = std::move(candidate);
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }
  return schedule;
}

}  // namespace sphinx::chaos
