// Chaos harness tests: crash-recovery kill-point sweeps, campaign
// determinism, the schedule minimizer, and the chaos_repro.json
// round-trip.  The injected-divergence tests prove the oracles actually
// fire: a deliberately corrupted recovery must fail the differential
// oracle, auto-minimize, and replay to the same failure.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/minimize.hpp"
#include "chaos/schedule.hpp"
#include "exp/scenario.hpp"

namespace sphinx {
namespace {

/// Small fixed-shape run: two DAGs, light outage plan, one crash.
chaos::ChaosRunConfig tiny_chaos(std::uint64_t seed) {
  chaos::ChaosRunConfig config;
  config.seed = seed;
  config.dag_count = 2;
  config.jobs_per_dag = 4;
  config.horizon = hours(10);
  config.schedule.span = hours(4);
  config.schedule.outages = 4;
  config.schedule.bursts = 1;
  config.schedule.burst_sites = 2;
  config.schedule.crashes = 1;
  config.schedule.min_crash_record = 30;
  config.schedule.max_crash_record = 200;
  return config;
}

// --- kill-point sweep -------------------------------------------------------

TEST(ChaosKillPoints, RecoveryIsTransparentAtEveryNthRecord) {
  // Probe the uninterrupted run's journal length, then crash/recover at
  // every Nth record position and demand byte-equality with the
  // baseline each time.
  chaos::ChaosRunConfig config = tiny_chaos(91);
  chaos::ChaosSchedule outages_only = chaos::synthesize_schedule(config);
  outages_only.crash_records.clear();
  const chaos::ChaosRunResult probe =
      chaos::run_chaos_pair(config, outages_only);
  ASSERT_TRUE(probe.ok()) << probe.violation();
  const std::size_t total = probe.journal_records;
  ASSERT_GT(total, 50u);

  const std::size_t step = std::max<std::size_t>(total / 8, 1);
  std::size_t crashes_seen = 0;
  for (std::size_t at = step; at < total; at += step) {
    chaos::ChaosSchedule schedule = outages_only;
    schedule.crash_records = {at};
    const chaos::ChaosRunResult result =
        chaos::run_chaos_pair(config, schedule);
    EXPECT_TRUE(result.ok())
        << "crash at record " << at << ": " << result.violation();
    crashes_seen += result.crashes_executed;
  }
  // The sweep actually exercised recovery (kill points within the
  // journal's range all fire).
  EXPECT_GE(crashes_seen, total / step - 1);
}

TEST(ChaosKillPoints, BackToBackCrashesRecover) {
  chaos::ChaosRunConfig config = tiny_chaos(17);
  chaos::ChaosSchedule schedule = chaos::synthesize_schedule(config);
  schedule.crash_records = {40, 80, 120};
  const chaos::ChaosRunResult result = chaos::run_chaos_pair(config, schedule);
  EXPECT_TRUE(result.ok()) << result.violation();
  EXPECT_EQ(result.crashes_executed, 3u);
}

TEST(ChaosKillPoints, BackToBackCrashesWithMidCheckpointSecond) {
  // Two crashes in sequence where the second lands inside the checkpoint
  // window -- after the image is published, before the journal is
  // truncated.  The second recovery therefore starts from a server that
  // was itself recovered from a checkpoint.
  chaos::ChaosRunConfig config = tiny_chaos(17);
  config.checkpoint_every = 32;
  chaos::ChaosSchedule schedule = chaos::synthesize_schedule(config);
  schedule.crash_records = {40};
  schedule.mid_ckpt_crashes = {80};
  const chaos::ChaosRunResult result = chaos::run_chaos_pair(config, schedule);
  EXPECT_TRUE(result.ok()) << result.violation();
  EXPECT_EQ(result.crashes_executed, 2u);
}

TEST(ChaosKillPoints, MidCheckpointCrashSweepIsTransparent) {
  // Sweep the mid-checkpoint kill window across the run: at each probed
  // position, the kill fires between checkpoint publication and journal
  // truncation, so recovery must complete the truncation itself and
  // still match the baseline byte for byte.
  chaos::ChaosRunConfig config = tiny_chaos(91);
  config.checkpoint_every = 32;
  chaos::ChaosSchedule outages_only = chaos::synthesize_schedule(config);
  outages_only.crash_records.clear();
  outages_only.mid_ckpt_crashes.clear();
  const chaos::ChaosRunResult probe =
      chaos::run_chaos_pair(config, outages_only);
  ASSERT_TRUE(probe.ok()) << probe.violation();
  const std::size_t total = probe.journal_records;
  ASSERT_GT(total, 50u);
  // Compaction held on the probe itself: the live journal is a strict
  // suffix of the history (memory is O(state), not O(history)).
  EXPECT_LT(probe.journal_live_records, probe.journal_records);

  const std::size_t step = std::max<std::size_t>(total / 6, 1);
  std::size_t crashes_seen = 0;
  for (std::size_t at = step; at < total; at += step) {
    chaos::ChaosSchedule schedule = outages_only;
    schedule.mid_ckpt_crashes = {at};
    const chaos::ChaosRunResult result =
        chaos::run_chaos_pair(config, schedule);
    EXPECT_TRUE(result.ok())
        << "mid-checkpoint crash at record " << at << ": "
        << result.violation();
    crashes_seen += result.crashes_executed;
  }
  // Positions in the run's tail may never see another checkpoint, but
  // the sweep as a whole must actually exercise the window.
  EXPECT_GE(crashes_seen, 2u);
}

TEST(ChaosKillPoints, FullReplayModeStillRecovers) {
  // checkpoint_every = 0 is the legacy configuration: no checkpoints,
  // recovery replays the whole history.  It must stay green -- the
  // refactor adds a path, it does not retire one.
  chaos::ChaosRunConfig config = tiny_chaos(17);
  config.checkpoint_every = 0;
  chaos::ChaosSchedule schedule = chaos::synthesize_schedule(config);
  schedule.crash_records = {40, 80};
  schedule.mid_ckpt_crashes.clear();  // can never fire without checkpoints
  const chaos::ChaosRunResult result = chaos::run_chaos_pair(config, schedule);
  EXPECT_TRUE(result.ok()) << result.violation();
  EXPECT_EQ(result.crashes_executed, 2u);
  // Without compaction the live journal is the full history.
  EXPECT_EQ(result.journal_live_records, result.journal_records);
}

// --- campaigns --------------------------------------------------------------

TEST(ChaosCampaign, SmokeCampaignIsGreenAndByteIdentical) {
  chaos::CampaignConfig config;
  config.base = tiny_chaos(1);
  config.runs = 6;
  const chaos::CampaignResult first = chaos::run_campaign(config);
  const chaos::CampaignResult second = chaos::run_campaign(config);

  EXPECT_EQ(first.failures, 0);
  for (const chaos::ChaosRunResult& result : first.results) {
    EXPECT_TRUE(result.ok()) << "seed " << result.seed << ": "
                             << result.violation();
  }
  // Same campaign, two invocations: identical digests run by run.
  EXPECT_EQ(first.digest, second.digest);
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].digest, second.results[i].digest);
  }
}

TEST(ChaosCampaign, FiftySeededRunsAllGreen) {
  // The acceptance sweep: 50 seeded runs, every oracle green, and the
  // combined digest reproducible across invocations.
  chaos::CampaignConfig config;
  config.base = tiny_chaos(1000);
  config.runs = 50;
  const chaos::CampaignResult first = chaos::run_campaign(config);
  EXPECT_EQ(first.failures, 0);
  EXPECT_TRUE(first.repros.empty());
  const chaos::CampaignResult second = chaos::run_campaign(config);
  EXPECT_EQ(first.digest, second.digest);
}

// --- minimizer --------------------------------------------------------------

TEST(ChaosMinimize, ShrinksToThePlantedCore) {
  // Synthetic predicate: the failure needs the "acdc" outage at t=100
  // together with any crash at record >= 60.  Everything else is noise
  // the minimizer must discard.
  chaos::ChaosSchedule schedule;
  for (int i = 0; i < 4; ++i) {
    schedule.outages["fnal"].push_back(
        {1000.0 + 200.0 * i, 50.0, grid::OutageMode::kDown});
  }
  schedule.outages["acdc"].push_back({100.0, 30.0, grid::OutageMode::kDown});
  schedule.outages["acdc"].push_back({900.0, 30.0, grid::OutageMode::kDegraded});
  schedule.crash_records = {45, 140, 700};

  int evaluations = 0;
  const auto fails = [&evaluations](const chaos::ChaosSchedule& candidate) {
    ++evaluations;
    bool has_outage = false;
    if (const auto it = candidate.outages.find("acdc");
        it != candidate.outages.end()) {
      for (const auto& outage : it->second) {
        if (outage.at == 100.0) has_outage = true;
      }
    }
    bool has_crash = false;
    for (const std::size_t record : candidate.crash_records) {
      if (record >= 60) has_crash = true;
    }
    return has_outage && has_crash;
  };

  ASSERT_TRUE(fails(schedule));
  const chaos::ChaosSchedule minimized =
      chaos::minimize_schedule(schedule, fails);
  EXPECT_TRUE(fails(minimized));
  EXPECT_EQ(minimized.outage_count(), 1u);
  ASSERT_EQ(minimized.crash_records.size(), 1u);
  // Bisection walks the surviving crash down to the smallest failing
  // record position.
  EXPECT_EQ(minimized.crash_records[0], 60u);
  EXPECT_GT(evaluations, 0);
}

TEST(ChaosMinimize, PrunesAndBisectsMidCheckpointCrashes) {
  // A failure that hinges on one mid-checkpoint kill: the minimizer must
  // discard the outage noise and every regular crash, keep a single mid
  // point, and bisect it down to the smallest record that reproduces.
  chaos::ChaosSchedule schedule;
  schedule.outages["fnal"].push_back({100.0, 50.0, grid::OutageMode::kDown});
  schedule.crash_records = {45, 700};
  schedule.mid_ckpt_crashes = {90, 500};

  const auto fails = [](const chaos::ChaosSchedule& candidate) {
    for (const std::size_t record : candidate.mid_ckpt_crashes) {
      if (record >= 70) return true;
    }
    return false;
  };
  ASSERT_TRUE(fails(schedule));
  const chaos::ChaosSchedule minimized =
      chaos::minimize_schedule(schedule, fails);
  EXPECT_TRUE(fails(minimized));
  EXPECT_EQ(minimized.outage_count(), 0u);
  EXPECT_TRUE(minimized.crash_records.empty());
  ASSERT_EQ(minimized.mid_ckpt_crashes.size(), 1u);
  EXPECT_EQ(minimized.mid_ckpt_crashes[0], 70u);
}

// --- network-fault windows --------------------------------------------------

TEST(ChaosNetWindows, SynthesisIsSeededSortedAndConfigurable) {
  chaos::ChaosRunConfig config = tiny_chaos(33);
  config.schedule.net_windows = 3;
  config.schedule.net_partitions = 2;
  const chaos::ChaosSchedule a = chaos::synthesize_schedule(config);
  const chaos::ChaosSchedule b = chaos::synthesize_schedule(config);
  EXPECT_EQ(chaos::to_json(a), chaos::to_json(b));
  ASSERT_EQ(a.net_windows.size(), 5u);
  std::size_t partitions = 0;
  for (std::size_t i = 0; i < a.net_windows.size(); ++i) {
    const chaos::NetFaultWindow& window = a.net_windows[i];
    if (i > 0) {
      EXPECT_LE(a.net_windows[i - 1].at, window.at);
    }
    EXPECT_GE(window.at, 0.0);
    EXPECT_LT(window.at, config.schedule.span);
    if (window.partition) {
      ++partitions;
      EXPECT_DOUBLE_EQ(window.duration,
                       config.schedule.net_partition_duration);
    } else {
      EXPECT_GE(window.duration, config.schedule.net_min_duration);
      EXPECT_DOUBLE_EQ(window.loss, config.schedule.net_loss);
      EXPECT_DOUBLE_EQ(window.duplicate, config.schedule.net_duplicate);
      EXPECT_DOUBLE_EQ(window.reorder, config.schedule.net_reorder);
    }
  }
  EXPECT_EQ(partitions, 2u);

  config.schedule.net_windows = 0;
  config.schedule.net_partitions = 0;
  EXPECT_TRUE(chaos::synthesize_schedule(config).net_windows.empty());
}

TEST(ChaosNetWindows, JsonRoundTripPreservesWindows) {
  chaos::ChaosSchedule schedule;
  chaos::NetFaultWindow lossy;
  lossy.at = 120.5;
  lossy.duration = 300.0;
  lossy.loss = 0.08;
  lossy.duplicate = 0.03;
  lossy.reorder = 0.1;
  lossy.reorder_spike = 7.5;
  chaos::NetFaultWindow cut;
  cut.at = 900.0;
  cut.duration = 60.0;
  cut.partition = true;
  schedule.net_windows = {lossy, cut};

  const std::string json = chaos::to_json(schedule);
  const auto parsed = chaos::schedule_from_json(json);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  ASSERT_EQ(parsed->net_windows.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->net_windows[0].loss, 0.08);
  EXPECT_DOUBLE_EQ(parsed->net_windows[0].reorder_spike, 7.5);
  EXPECT_FALSE(parsed->net_windows[0].partition);
  EXPECT_TRUE(parsed->net_windows[1].partition);
  EXPECT_EQ(chaos::to_json(*parsed), json);
}

TEST(ChaosNetWindows, LossyWireRunStaysDifferentiallyClean) {
  // An aggressive loss/duplication window plus a partition on top of the
  // synthesized plan: recovery must still be byte-transparent because
  // the same wire faults hit the chaotic and baseline runs alike.
  chaos::ChaosRunConfig config = tiny_chaos(57);
  chaos::ChaosSchedule schedule = chaos::synthesize_schedule(config);
  chaos::NetFaultWindow storm;
  storm.at = 60.0;
  storm.duration = hours(1);
  storm.loss = 0.2;
  storm.duplicate = 0.1;
  storm.reorder = 0.1;
  chaos::NetFaultWindow cut;
  cut.at = 600.0;
  cut.duration = 60.0;
  cut.partition = true;
  schedule.net_windows.push_back(storm);
  schedule.net_windows.push_back(cut);
  const chaos::ChaosRunResult result = chaos::run_chaos_pair(config, schedule);
  EXPECT_TRUE(result.ok()) << result.violation();
}

TEST(ChaosMinimize, PrunesIrrelevantNetWindows) {
  chaos::ChaosSchedule schedule;
  for (int i = 0; i < 3; ++i) {
    chaos::NetFaultWindow noise;
    noise.at = 100.0 * i;
    noise.duration = 30.0;
    noise.loss = 0.05;
    schedule.net_windows.push_back(noise);
  }
  chaos::NetFaultWindow culprit;
  culprit.at = 500.0;
  culprit.duration = 60.0;
  culprit.partition = true;
  schedule.net_windows.push_back(culprit);

  const auto fails = [](const chaos::ChaosSchedule& candidate) {
    for (const chaos::NetFaultWindow& window : candidate.net_windows) {
      if (window.partition) return true;
    }
    return false;
  };
  ASSERT_TRUE(fails(schedule));
  const chaos::ChaosSchedule minimized =
      chaos::minimize_schedule(schedule, fails);
  ASSERT_EQ(minimized.net_windows.size(), 1u);
  EXPECT_TRUE(minimized.net_windows[0].partition);
}

// --- repro round-trip -------------------------------------------------------

TEST(ChaosRepro, JsonRoundTripPreservesEverything) {
  chaos::ReproCase repro;
  repro.config = tiny_chaos(77);
  repro.config.algorithm = core::Algorithm::kRoundRobin;
  repro.config.background_load = true;
  repro.config.inject_divergence = true;
  repro.config.checkpoint_every = 17;
  repro.config.schedule.mid_ckpt_crashes = 2;
  repro.schedule = chaos::synthesize_schedule(repro.config);
  repro.violation = "differential: journal diverged at line 3";

  const std::string json = chaos::to_json(repro);
  const auto parsed = chaos::repro_from_json(json);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  EXPECT_EQ(parsed->config.seed, repro.config.seed);
  EXPECT_EQ(parsed->config.dag_count, repro.config.dag_count);
  EXPECT_EQ(parsed->config.jobs_per_dag, repro.config.jobs_per_dag);
  EXPECT_EQ(parsed->config.algorithm, repro.config.algorithm);
  EXPECT_EQ(parsed->config.horizon, repro.config.horizon);
  EXPECT_EQ(parsed->config.background_load, repro.config.background_load);
  EXPECT_EQ(parsed->config.inject_divergence, repro.config.inject_divergence);
  EXPECT_EQ(parsed->config.checkpoint_every, repro.config.checkpoint_every);
  EXPECT_EQ(parsed->schedule.mid_ckpt_crashes,
            repro.schedule.mid_ckpt_crashes);
  ASSERT_EQ(parsed->schedule.mid_ckpt_crashes.size(), 2u);
  EXPECT_EQ(parsed->violation, repro.violation);
  // The schedule is the real payload: byte-identical re-serialization.
  EXPECT_EQ(chaos::to_json(parsed->schedule), chaos::to_json(repro.schedule));
  EXPECT_EQ(chaos::to_json(*parsed), json);
}

TEST(ChaosRepro, RejectsMalformedInput) {
  EXPECT_FALSE(chaos::repro_from_json("not json").has_value());
  EXPECT_FALSE(chaos::repro_from_json("{}").has_value());
  EXPECT_FALSE(
      chaos::repro_from_json(R"({"config":{},"schedule":[]})").has_value());
  EXPECT_FALSE(chaos::schedule_from_json(R"({"crash_records":[-1]})")
                   .has_value());
  EXPECT_FALSE(chaos::schedule_from_json(R"({"mid_ckpt_crashes":[-1]})")
                   .has_value());
  EXPECT_FALSE(
      chaos::schedule_from_json(
          R"({"outages":{"x":[{"at":0,"duration":1,"mode":"melted"}]}})")
          .has_value());
}

// --- oracle end-to-end: injected divergence ---------------------------------

TEST(ChaosOracles, InjectedDivergenceMinimizesToReplayableRepro) {
  // Corrupt every recovery on purpose: the differential oracle must
  // fail, the campaign must auto-minimize, and the written repro must
  // replay to the same failure after a JSON round-trip.
  chaos::CampaignConfig config;
  config.base = tiny_chaos(7);
  config.base.inject_divergence = true;
  config.runs = 2;
  const chaos::CampaignResult campaign = chaos::run_campaign(config);
  EXPECT_GT(campaign.failures, 0);
  ASSERT_EQ(campaign.repros.size(), 1u);

  const chaos::ReproCase& repro = campaign.repros.front();
  EXPECT_FALSE(repro.violation.empty());
  // Minimization kept the failure reproducible and small: a corrupted
  // recovery needs exactly one crash and no outage at all.
  ASSERT_EQ(repro.schedule.crash_records.size(), 1u);
  EXPECT_EQ(repro.schedule.outage_count(), 0u);

  const auto parsed = chaos::repro_from_json(chaos::to_json(repro));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  const chaos::ChaosRunResult replayed = chaos::replay(*parsed);
  EXPECT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.violation(), repro.violation);
}

TEST(ChaosOracles, DifferentialReportsFirstDivergingLine) {
  chaos::ChaosRunConfig config = tiny_chaos(23);
  config.inject_divergence = true;
  chaos::ChaosSchedule schedule;
  schedule.crash_records = {60};
  const chaos::ChaosRunResult result = chaos::run_chaos_pair(config, schedule);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.invariants.ok) << result.invariants.violation;
  EXPECT_FALSE(result.differential.ok);
  EXPECT_NE(result.differential.violation.find("diverge"), std::string::npos)
      << result.differential.violation;
}

}  // namespace
}  // namespace sphinx
