/// \file status.cpp
/// discarded-status / naked-throw: the error-discipline rules.

#include <regex>
#include <set>
#include <string>

#include "rule.hpp"

namespace sphinx::lint {
namespace {

void rule_discarded_status(const FileContext& file, const Reporter& out) {
  // Library code only: tests/benches/examples routinely discard handles
  // (submission ids, selector picks) on purpose; in src/ a (void) cast
  // is how a dropped Status hides.
  if (!is_library_code(file.rel_path)) return;
  static const std::regex re(
      R"(\(\s*void\s*\)\s*[A-Za-z_:][A-Za-z0-9_:<>.*\[\]\->]*\()");
  const std::string_view text = file.stripped.code;
  for (auto it =
           std::cregex_iterator(text.data(), text.data() + text.size(), re);
       it != std::cregex_iterator(); ++it) {
    const std::size_t offset = static_cast<std::size_t>(it->position(0));
    const std::size_t line = line_of(text, offset);
    // Deliberately invoking a throwing accessor inside a gtest assertion
    // is not a discarded result.
    const std::string& raw = file.stripped.raw_lines[line - 1];
    if (raw.find("EXPECT_THROW") != std::string::npos ||
        raw.find("ASSERT_THROW") != std::string::npos ||
        raw.find("EXPECT_NO_THROW") != std::string::npos ||
        raw.find("ASSERT_NO_THROW") != std::string::npos) {
      continue;
    }
    out.report(line, "discarded-status",
               "(void) cast discards a call result and defeats "
               "[[nodiscard]] on Expected/Status; handle the result or "
               "waive with sphinx-lint-allow(discarded-status)");
  }
}

void rule_naked_throw(const FileContext& file, const Reporter& out) {
  static const std::regex re(R"(\bthrow\b\s*(;|[A-Za-z_:][\w:]*)?)");
  const std::string_view text = file.stripped.code;
  for (auto it =
           std::cregex_iterator(text.data(), text.data() + text.size(), re);
       it != std::cregex_iterator(); ++it) {
    std::string token = (*it)[1].matched ? it->str(1) : std::string();
    if (token == ";") continue;  // bare rethrow in a catch handler
    static const std::set<std::string> kAllowed = {
        "AssertionError",          "sphinx::AssertionError",
        "::sphinx::AssertionError", "ContractViolation",
        "sphinx::ContractViolation", "::sphinx::ContractViolation",
    };
    if (kAllowed.contains(token)) continue;
    out.report(line_of(text, static_cast<std::size_t>(it->position(0))),
               "naked-throw",
               "only AssertionError/ContractViolation may be thrown; "
               "operational failures travel as Expected/Status");
  }
}

}  // namespace

std::vector<Rule> status_rules() {
  return {
      Rule{"discarded-status", "no (void) casts of call results",
           "A `(void)f(...)` cast in library code silences [[nodiscard]] on "
           "Expected/Status and drops an error on the floor.  Handle the "
           "result, or waive a deliberate discard with "
           "sphinx-lint-allow(discarded-status).  Tests/benches/examples "
           "are exempt -- they discard handles on purpose.",
           &rule_discarded_status},
      Rule{"naked-throw", "throw only AssertionError/ContractViolation",
           "Operational failures (a site is down, a file is missing) travel "
           "as Expected/Status values; exceptions are reserved for "
           "programming errors via AssertionError/ContractViolation.  A "
           "bare rethrow (`throw;`) in a catch handler is fine.",
           &rule_naked_throw},
  };
}

}  // namespace sphinx::lint
