// Tests for the monitoring service: polling, latency, staleness, noise
// and behaviour across site failures.

#include <gtest/gtest.h>

#include "grid/grid.hpp"
#include "monitor/service.hpp"
#include "sim/engine.hpp"

namespace sphinx::monitor {
namespace {

grid::SiteSpec make_spec(const std::string& name, int cpus) {
  grid::SiteSpec spec;
  spec.site.name = name;
  spec.site.cpus = cpus;
  spec.site.runtime_noise = 0.0;
  return spec;
}

class MonitorFixture : public ::testing::Test {
 protected:
  MonitorFixture() : grid(engine, SeedTree(9)) {
    a = grid.add_site(make_spec("alpha", 4));
    b = grid.add_site(make_spec("beta", 8));
  }

  MonitoringService make_service(MonitorConfig config) {
    return MonitoringService(engine, grid, config, Rng(3));
  }

  sim::Engine engine;
  grid::Grid grid;
  SiteId a, b;
};

TEST_F(MonitorFixture, NoDataBeforeFirstPoll) {
  MonitorConfig config;
  config.poll_period = minutes(5);
  config.report_latency = 30.0;
  auto service = make_service(config);
  service.start();
  EXPECT_FALSE(service.snapshot(a).has_value());
  EXPECT_DOUBLE_EQ(service.age(a, 0.0), kNever);
}

TEST_F(MonitorFixture, PublishesAfterLatency) {
  MonitorConfig config;
  config.poll_period = minutes(5);
  config.report_latency = 30.0;
  auto service = make_service(config);
  service.start();
  // First poll of site `a` happens at t=0, published at t=30.
  engine.run_until(29.0);
  EXPECT_FALSE(service.snapshot(a).has_value());
  engine.run_until(31.0);
  const auto snap = service.snapshot(a);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->cpus, 4);
  EXPECT_EQ(snap->queued, 0);
  EXPECT_DOUBLE_EQ(snap->measured_at, 0.0);
  EXPECT_DOUBLE_EQ(snap->published_at, 30.0);
}

TEST_F(MonitorFixture, SnapshotReflectsQueueState) {
  // Load site `a` with jobs, then check the next snapshot sees them.
  for (int i = 0; i < 6; ++i) {
    grid::RemoteJob job;
    job.compute_time = hours(2);
    (void)grid.site(a).submit(std::move(job), nullptr);
  }
  MonitorConfig config;
  config.poll_period = minutes(5);
  config.report_latency = 10.0;
  auto service = make_service(config);
  service.start();
  engine.run_until(minutes(1));
  const auto snap = service.snapshot(a);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->running, 4);
  EXPECT_EQ(snap->queued, 2);
  EXPECT_EQ(snap->free_cpus, 0);
}

TEST_F(MonitorFixture, StaleDataSurvivesSiteFailure) {
  MonitorConfig config;
  config.poll_period = minutes(5);
  config.report_latency = 1.0;
  auto service = make_service(config);
  service.start();
  engine.run_until(minutes(1));
  ASSERT_TRUE(service.snapshot(a).has_value());
  const SimTime measured = service.snapshot(a)->measured_at;

  grid.site(a).go_down();
  engine.run_until(hours(1));
  // Polls kept failing; the published snapshot is the pre-failure one.
  const auto snap = service.snapshot(a);
  ASSERT_TRUE(snap.has_value());
  EXPECT_DOUBLE_EQ(snap->measured_at, measured);
  EXPECT_GT(service.age(a, engine.now()), minutes(50));
  EXPECT_GT(service.polls_failed(), 5u);
}

TEST_F(MonitorFixture, AgeGrowsBetweenPolls) {
  MonitorConfig config;
  config.poll_period = minutes(10);
  config.report_latency = 0.5;
  auto service = make_service(config);
  service.start();
  engine.run_until(minutes(1));
  const Duration age1 = service.age(a, engine.now());
  engine.run_until(minutes(9));
  const Duration age2 = service.age(a, engine.now());
  EXPECT_GT(age2, age1);
  EXPECT_LT(age2, minutes(10));
}

TEST_F(MonitorFixture, PollsAreStaggeredAcrossSites) {
  MonitorConfig config;
  config.poll_period = minutes(10);
  config.report_latency = 0.1;
  auto service = make_service(config);
  service.start();
  engine.run_until(minutes(6));
  // Site `a` polls at t=0, site `b` at t=5min.
  ASSERT_TRUE(service.snapshot(a).has_value());
  ASSERT_TRUE(service.snapshot(b).has_value());
  EXPECT_DOUBLE_EQ(service.snapshot(a)->measured_at, 0.0);
  EXPECT_DOUBLE_EQ(service.snapshot(b)->measured_at, minutes(5));
}

TEST_F(MonitorFixture, DisabledServiceNeverPolls) {
  MonitorConfig config;
  config.enabled = false;
  auto service = make_service(config);
  service.start();
  engine.run_until(hours(1));
  EXPECT_EQ(service.polls_attempted(), 0u);
  EXPECT_FALSE(service.snapshot(a).has_value());
}

TEST_F(MonitorFixture, CatalogCpusAlwaysAvailable) {
  MonitorConfig config;
  config.enabled = false;
  auto service = make_service(config);
  EXPECT_EQ(service.catalog_cpus(a), 4);
  EXPECT_EQ(service.catalog_cpus(b), 8);
}

TEST_F(MonitorFixture, NoisePerturbsButStaysNonNegative) {
  for (int i = 0; i < 20; ++i) {
    grid::RemoteJob job;
    job.compute_time = hours(5);
    (void)grid.site(a).submit(std::move(job), nullptr);
  }
  MonitorConfig config;
  config.poll_period = minutes(1);
  config.report_latency = 0.1;
  config.noise = 0.5;
  auto service = make_service(config);
  service.start();
  bool saw_non_exact = false;
  for (int i = 0; i < 30; ++i) {
    engine.run_until(minutes(i + 1));
    const auto snap = service.snapshot(a);
    if (!snap.has_value()) continue;
    EXPECT_GE(snap->queued, 0);
    if (snap->queued != 16) saw_non_exact = true;  // true value is 16
  }
  EXPECT_TRUE(saw_non_exact);
}

TEST_F(MonitorFixture, BlackHoleLooksHealthyToMonitoring) {
  grid.site(a).become_black_hole();
  for (int i = 0; i < 3; ++i) {
    grid::RemoteJob job;
    (void)grid.site(a).submit(std::move(job), nullptr);
  }
  MonitorConfig config;
  config.poll_period = minutes(1);
  config.report_latency = 0.1;
  auto service = make_service(config);
  service.start();
  engine.run_until(minutes(2));
  const auto snap = service.snapshot(a);
  ASSERT_TRUE(snap.has_value());
  // The trap: queue visible, nothing running, CPUs "free".
  EXPECT_EQ(snap->running, 0);
  EXPECT_EQ(snap->free_cpus, 4);
}

}  // namespace
}  // namespace sphinx::monitor
