#pragma once
/// \file minimize.hpp
/// Failure-schedule minimization (delta-debugging style).
///
/// When a chaos run trips an oracle, the raw schedule usually carries a
/// dozen irrelevant outages around the one interaction that matters.
/// minimize_schedule() shrinks it against a deterministic "does this
/// still fail?" predicate: greedy one-at-a-time outage pruning, crash
/// point pruning, then a bisection that walks each surviving crash point
/// down to the smallest journal-record position that still reproduces.
/// Every candidate the predicate accepts becomes the new baseline, so
/// the result is a local minimum: removing any single remaining entry
/// makes the failure disappear.

#include <functional>

#include "chaos/schedule.hpp"

namespace sphinx::chaos {

/// True when the candidate schedule still reproduces the failure.  Must
/// be deterministic (same schedule, same verdict) -- the chaos pair
/// runner is.
using FailingPredicate = std::function<bool(const ChaosSchedule&)>;

/// Shrinks `schedule` while `still_fails` holds.  The input schedule is
/// assumed failing; the returned schedule is guaranteed failing.
[[nodiscard]] ChaosSchedule minimize_schedule(
    ChaosSchedule schedule, const FailingPredicate& still_fails);

}  // namespace sphinx::chaos
