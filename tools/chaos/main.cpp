// sphinx_chaos: seeded chaos campaigns and repro replay.
//
//   sphinx_chaos campaign [--runs N] [--seed S] [--threads T]
//                         [--crashes C] [--mid-ckpt-crashes M]
//                         [--checkpoint-every R] [--dags K] [--repro PATH]
//                         [--net-windows W] [--net-partitions P]
//                         [--speculate]
//                         [--inject-divergence] [--no-minimize]
//   sphinx_chaos failover [--runs N] [--seed S] [--shards H] [--dags K]
//   sphinx_chaos straggler [--runs N] [--seed S] [--dags K] [--jobs J]
//                          [--json PATH]
//   sphinx_chaos replay --repro PATH
//
// `straggler` is the straggler-defense acceptance gate: each run
// synthesizes one degraded-heavy outage schedule (long black-hole and
// degraded windows over several sites) and executes it twice with the
// same seed -- speculation OFF, then ON.  It reports per-run and pooled
// p50/p99 DAG completion times and tracker timeout counts, optionally
// exports the pooled numbers as JSON (--json, the BENCH_straggler.json
// schema), and exits 1 unless speculation improved pooled p99 AND did
// not increase pooled timeouts.  Deterministic stdout, same as campaign.
//
// `failover` runs N seeded multi-scheduler failover pairs (scheduler
// crash + client<->server partition during shard handoff vs the same
// seed uninterrupted) and demands every pair pass the failover
// differential oracle: adoption must be byte-invisible to the
// scheduling layer.  Same report determinism contract as `campaign`.
//
// `campaign` sweeps N seeded chaos runs (randomized outage schedules,
// lossy-wire windows + client<->server partitions, and
// mid-run server crash/recovery -- checkpointed by default, including
// crash points that land between checkpoint publication and journal
// truncation) and checks every run against the
// invariant and differential oracles.  The report is deterministic:
// same flags -> byte-identical stdout (tools/check.sh diffs two
// invocations).  On failure the first failing run is minimized and
// written to --repro as chaos_repro.json; `replay` re-executes such a
// file exactly.  Exit status: 0 all green, 1 oracle violation, 2 usage.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/failover.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"

namespace {

void print_run(const sphinx::chaos::ChaosRunResult& result) {
  std::printf("  seed=%llu outages=%zu net=%zu crashes=%zu spec=%zu "
              "digest=%016llx %s",
              static_cast<unsigned long long>(result.seed),
              result.schedule.outage_count(), result.schedule.net_windows.size(),
              result.crashes_executed, result.speculations,
              static_cast<unsigned long long>(result.digest),
              result.ok() ? "ok" : "FAIL");
  if (!result.ok()) std::printf(" (%s)", result.violation().c_str());
  std::printf("\n");
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sphinx_chaos campaign [--runs N] [--seed S] [--threads T]\n"
      "                             [--crashes C] [--mid-ckpt-crashes M]\n"
      "                             [--checkpoint-every R] [--dags K]\n"
      "                             [--repro PATH]\n"
      "                             [--net-windows W] [--net-partitions P]\n"
      "                             [--speculate]\n"
      "                             [--inject-divergence] [--no-minimize]\n"
      "       sphinx_chaos failover [--runs N] [--seed S] [--shards H]\n"
      "                             [--dags K]\n"
      "       sphinx_chaos straggler [--runs N] [--seed S] [--dags K]\n"
      "                              [--jobs J] [--json PATH]\n"
      "       sphinx_chaos replay --repro PATH\n");
  return 2;
}

/// Pooled tail stats of one probe arm across runs.
struct ArmSummary {
  std::vector<double> completions;
  std::size_t finished = 0;
  std::size_t total = 0;
  std::size_t timeouts = 0;
  std::size_t speculations = 0;
  std::size_t won_primary = 0;
  std::size_t won_spec = 0;
  std::size_t stale_skips = 0;

  void add(const sphinx::chaos::StragglerArmResult& arm) {
    completions.insert(completions.end(), arm.dag_completions.begin(),
                       arm.dag_completions.end());
    finished += arm.dags_finished;
    total += arm.dags_total;
    timeouts += arm.timeouts;
    speculations += arm.speculations;
    won_primary += arm.won_primary;
    won_spec += arm.won_spec;
    stale_skips += arm.stale_skips;
  }
  [[nodiscard]] double p50() const { return sphinx::percentile(completions, 0.5); }
  [[nodiscard]] double p99() const { return sphinx::percentile(completions, 0.99); }
  [[nodiscard]] double mean() const {
    if (completions.empty()) return 0.0;
    double sum = 0.0;
    for (const double value : completions) sum += value;
    return sum / static_cast<double>(completions.size());
  }
};

std::string arm_json(const ArmSummary& arm) {
  using sphinx::obs::format_double;
  std::string out = "{";
  out += "\"p50\":" + format_double(arm.p50());
  out += ",\"p99\":" + format_double(arm.p99());
  out += ",\"mean\":" + format_double(arm.mean());
  out += ",\"dags_finished\":" + std::to_string(arm.finished);
  out += ",\"dags_total\":" + std::to_string(arm.total);
  out += ",\"timeouts\":" + std::to_string(arm.timeouts);
  out += ",\"speculations\":" + std::to_string(arm.speculations);
  out += ",\"won_primary\":" + std::to_string(arm.won_primary);
  out += ",\"won_spec\":" + std::to_string(arm.won_spec);
  out += ",\"stale_skips\":" + std::to_string(arm.stale_skips);
  out += "}";
  return out;
}

int run_straggler(int argc, char** argv) {
  int runs = 3;
  std::string json_path;
  sphinx::chaos::StragglerProbeConfig base;
  base.schedule = sphinx::chaos::straggler_schedule_defaults();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (arg == "--runs" && value != nullptr) {
      runs = std::atoi(value);
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      base.seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--dags" && value != nullptr) {
      base.dag_count = std::atoi(value);
      ++i;
    } else if (arg == "--jobs" && value != nullptr) {
      base.jobs_per_dag = std::atoi(value);
      ++i;
    } else if (arg == "--json" && value != nullptr) {
      json_path = value;
      ++i;
    } else {
      return usage();
    }
  }

  std::printf("sphinx_chaos straggler: runs=%d dags=%d jobs=%d\n", runs,
              base.dag_count, base.jobs_per_dag);
  ArmSummary off;
  ArmSummary on;
  for (int k = 0; k < runs; ++k) {
    sphinx::chaos::StragglerProbeConfig config = base;
    config.seed = base.seed + static_cast<std::uint64_t>(k);
    const sphinx::chaos::StragglerProbeResult result =
        sphinx::chaos::run_straggler_probe(config);
    off.add(result.off);
    on.add(result.on);
    std::printf(
        "  seed=%llu off: finished=%zu/%zu p99=%.3f timeouts=%zu "
        "digest=%016llx\n",
        static_cast<unsigned long long>(result.seed),
        result.off.dags_finished, result.off.dags_total,
        sphinx::percentile(result.off.dag_completions, 0.99),
        result.off.timeouts,
        static_cast<unsigned long long>(result.off.digest));
    std::printf(
        "  seed=%llu on:  finished=%zu/%zu p99=%.3f timeouts=%zu "
        "spec=%zu won=%zu+%zu stale_skips=%zu digest=%016llx\n",
        static_cast<unsigned long long>(result.seed),
        result.on.dags_finished, result.on.dags_total,
        sphinx::percentile(result.on.dag_completions, 0.99),
        result.on.timeouts, result.on.speculations, result.on.won_primary,
        result.on.won_spec, result.on.stale_skips,
        static_cast<unsigned long long>(result.on.digest));
  }

  const bool improved =
      on.p99() < off.p99() && on.timeouts <= off.timeouts &&
      on.finished >= off.finished;
  std::printf(
      "sphinx_chaos straggler: off p50=%.3f p99=%.3f timeouts=%zu | "
      "on p50=%.3f p99=%.3f timeouts=%zu spec=%zu | %s\n",
      off.p50(), off.p99(), off.timeouts, on.p50(), on.p99(), on.timeouts,
      on.speculations, improved ? "improved" : "NOT IMPROVED");

  if (!json_path.empty()) {
    std::string json = "{\"bench\":\"straggler\"";
    json += ",\"runs\":" + std::to_string(runs);
    json += ",\"seed\":" + std::to_string(base.seed);
    json += ",\"dags\":" + std::to_string(base.dag_count);
    json += ",\"jobs\":" + std::to_string(base.jobs_per_dag);
    json += ",\"off\":" + arm_json(off);
    json += ",\"on\":" + arm_json(on);
    json += ",\"improved\":";
    json += improved ? "true" : "false";
    json += "}";
    std::ofstream out(json_path, std::ios::trunc);
    out << json << "\n";
    std::printf("  summary -> %s\n", json_path.c_str());
  }
  return improved ? 0 : 1;
}

int run_failover(int argc, char** argv) {
  int runs = 1;
  sphinx::chaos::FailoverConfig base;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (arg == "--runs" && value != nullptr) {
      runs = std::atoi(value);
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      base.seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--shards" && value != nullptr) {
      base.shards = static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else if (arg == "--dags" && value != nullptr) {
      base.dag_count = static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else {
      return usage();
    }
  }

  int failures = 0;
  std::uint64_t digest = 0xcbf29ce484222325ull;
  std::printf("sphinx_chaos failover: runs=%d shards=%zu dags=%zu\n", runs,
              base.shards, base.dag_count);
  for (int k = 0; k < runs; ++k) {
    sphinx::chaos::FailoverConfig config = base;
    config.seed = base.seed + static_cast<std::uint64_t>(k);
    const sphinx::chaos::FailoverRunResult result =
        sphinx::chaos::run_failover_pair(config);
    if (!result.ok()) ++failures;
    digest ^= result.digest;
    std::printf(
        "  seed=%llu adoptions=%zu expirations=%zu records=%zu "
        "stopped_at=%.3f digest=%016llx %s",
        static_cast<unsigned long long>(result.seed), result.adoptions,
        result.expirations, result.journal_records, result.stopped_at,
        static_cast<unsigned long long>(result.digest),
        result.ok() ? "ok" : "FAIL");
    if (!result.ok()) std::printf(" (%s)", result.violation().c_str());
    std::printf("\n");
  }
  std::printf("sphinx_chaos failover: failures=%d digest=%016llx\n", failures,
              static_cast<unsigned long long>(digest));
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "failover") return run_failover(argc, argv);
  if (command == "straggler") return run_straggler(argc, argv);

  sphinx::chaos::CampaignConfig config;
  std::string repro_path = "chaos_repro.json";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (arg == "--runs" && value != nullptr) {
      config.runs = std::atoi(value);
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      config.base.seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--threads" && value != nullptr) {
      config.max_threads = static_cast<unsigned>(std::atoi(value));
      ++i;
    } else if (arg == "--crashes" && value != nullptr) {
      config.base.schedule.crashes = std::atoi(value);
      ++i;
    } else if (arg == "--mid-ckpt-crashes" && value != nullptr) {
      config.base.schedule.mid_ckpt_crashes = std::atoi(value);
      ++i;
    } else if (arg == "--checkpoint-every" && value != nullptr) {
      config.base.checkpoint_every =
          static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else if (arg == "--dags" && value != nullptr) {
      config.base.dag_count = std::atoi(value);
      ++i;
    } else if (arg == "--net-windows" && value != nullptr) {
      config.base.schedule.net_windows = std::atoi(value);
      ++i;
    } else if (arg == "--net-partitions" && value != nullptr) {
      config.base.schedule.net_partitions = std::atoi(value);
      ++i;
    } else if (arg == "--repro" && value != nullptr) {
      repro_path = value;
      ++i;
    } else if (arg == "--speculate") {
      config.base.speculate = true;
    } else if (arg == "--inject-divergence") {
      config.base.inject_divergence = true;
    } else if (arg == "--no-minimize") {
      config.minimize_failures = false;
    } else {
      return usage();
    }
  }

  using namespace sphinx;
  if (command == "replay") {
    std::ifstream in(repro_path);
    if (!in) {
      std::fprintf(stderr, "sphinx_chaos: cannot read %s\n",
                   repro_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto repro = chaos::repro_from_json(text.str());
    if (!repro) {
      std::fprintf(stderr, "sphinx_chaos: bad repro %s: %s\n",
                   repro_path.c_str(), repro.error().to_string().c_str());
      return 2;
    }
    const chaos::ChaosRunResult result = chaos::replay(*repro);
    std::printf("sphinx_chaos replay: %s\n", repro_path.c_str());
    print_run(result);
    return result.ok() ? 0 : 1;
  }

  if (command != "campaign") return usage();
  const chaos::CampaignResult campaign = chaos::run_campaign(config);
  std::printf("sphinx_chaos campaign: runs=%d failures=%d digest=%016llx\n",
              campaign.runs, campaign.failures,
              static_cast<unsigned long long>(campaign.digest));
  for (const chaos::ChaosRunResult& result : campaign.results) {
    print_run(result);
  }
  if (!campaign.repros.empty()) {
    const std::string json = chaos::to_json(campaign.repros.front());
    std::ofstream out(repro_path, std::ios::trunc);
    out << json << "\n";
    std::printf("  minimized repro -> %s\n", repro_path.c_str());
  }
  return campaign.failures == 0 ? 0 : 1;
}
