#pragma once
/// \file rng.hpp
/// Deterministic random number generation.
///
/// Every run of the simulator is reproducible from a single master seed.
/// Subsystems never share a generator; instead each obtains a child stream
/// derived from the master seed and a stable string label (splitmix-style
/// mixing of the label hash).  This keeps results stable when an unrelated
/// subsystem adds or removes draws.

#include <cstdint>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <string_view>

#include "common/contracts.hpp"

namespace sphinx {

/// A seeded random stream.  Thin wrapper over mt19937_64 with the
/// distributions the simulator actually needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() { return unit_(engine_); }
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  /// Normal with mean/stddev, truncated below at `floor`.
  [[nodiscard]] double normal(double mean, double stddev, double floor = 0.0) {
    const double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return v < floor ? floor : v;
  }
  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }
  /// Log-normal parameterized by the mean/sigma of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Access to the raw engine for std distributions not wrapped above.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Derives independent child seeds from a master seed and a label, so each
/// subsystem gets its own stream (see file comment).
///
/// Stream labels are a contract, not a convenience: two call sites
/// sharing a label share a generator, entangling their draw sequences in
/// a way no test catches until a byte-diff oracle fails.  Each SeedTree
/// instance therefore hands out a given label at most once -- a second
/// stream() with the same label throws ContractViolation (when contracts
/// are armed).  Copies inherit the issued set, so a tree forwarded by
/// value into a subsystem still rejects labels the parent already used.
/// The static half of the same contract lives in sphinx-lint's
/// rng-stream-* rules and docs/rng_streams.md.
class SeedTree {
 public:
  explicit SeedTree(std::uint64_t master) noexcept : master_(master) {}

  SeedTree(const SeedTree& other) : master_(other.master_) {
    const std::lock_guard<std::mutex> lock(other.issued_mutex_);
    issued_ = other.issued_;
  }
  SeedTree& operator=(const SeedTree& other) {
    if (this != &other) {
      std::scoped_lock lock(issued_mutex_, other.issued_mutex_);
      master_ = other.master_;
      issued_ = other.issued_;
    }
    return *this;
  }

  /// Deterministic child seed for `label`.  Does not count as issuing a
  /// stream: planners may probe child seeds freely.
  [[nodiscard]] std::uint64_t seed_for(std::string_view label) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the label
    for (const char c : label) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ull;
    }
    return mix(master_ ^ h);
  }

  /// Convenience: a ready-made Rng for `label`.  Throws
  /// ContractViolation if this instance already issued `label`.
  [[nodiscard]] Rng stream(std::string_view label) const {
    {
      const std::lock_guard<std::mutex> lock(issued_mutex_);
      const bool fresh = issued_.emplace(label).second;
      SPHINX_PRECONDITION(fresh, "rng stream label '" + std::string(label) +
                                     "' issued twice from one SeedTree; "
                                     "two streams sharing a label share a "
                                     "generator -- rename one");
    }
    return Rng(seed_for(label));
  }

  /// A replica of `label`'s stream: same seed on every call, exempt
  /// from the issue-once contract.  For call sites that *want* several
  /// identical generators (per-tenant structurally identical workloads);
  /// the deliberate name keeps grep and the static registry honest about
  /// where replication happens.
  [[nodiscard]] Rng stream_replica(std::string_view label) const noexcept {
    return Rng(seed_for(label));
  }

  /// Labels this instance has handed out, for registry cross-checks.
  [[nodiscard]] std::set<std::string, std::less<>> issued() const {
    const std::lock_guard<std::mutex> lock(issued_mutex_);
    return issued_;
  }

  [[nodiscard]] std::uint64_t master() const noexcept { return master_; }

 private:
  // splitmix64 finalizer: decorrelates structurally similar inputs.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t master_;
  /// Labels issued by stream(); mutable because issuing a stream is
  /// conceptually read-only derivation, tracked only to police labels.
  mutable std::set<std::string, std::less<>> issued_;
  mutable std::mutex issued_mutex_;
};

}  // namespace sphinx
