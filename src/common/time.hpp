#pragma once
/// \file time.hpp
/// Simulation time types.
///
/// Simulation time is a double number of seconds since the start of the
/// simulation.  Durations are also seconds.  Helpers provide readable
/// literals for the scales that matter in grid scheduling (seconds,
/// minutes, hours).

#include <limits>

namespace sphinx {

/// Absolute simulation time in seconds since simulation start.
using SimTime = double;
/// A duration in seconds.
using Duration = double;

/// Sentinel for "never" / unset timestamps.
inline constexpr SimTime kNever = std::numeric_limits<double>::infinity();

[[nodiscard]] constexpr Duration seconds(double s) noexcept { return s; }
[[nodiscard]] constexpr Duration minutes(double m) noexcept { return m * 60.0; }
[[nodiscard]] constexpr Duration hours(double h) noexcept { return h * 3600.0; }

}  // namespace sphinx
