// Tests for the table store: values, schemas, tables, indexes, journal
// serialization and crash recovery.

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "db/database.hpp"
#include "db/journal.hpp"
#include "db/table.hpp"
#include "db/value.hpp"

namespace sphinx::db {
namespace {

Schema jobs_schema() {
  return Schema{{"name", ValueType::kText},
                {"state", ValueType::kText},
                {"site", ValueType::kInt},
                {"runtime", ValueType::kReal},
                {"done", ValueType::kBool}};
}

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(std::int64_t{5}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kReal);
  EXPECT_EQ(Value("hi").type(), ValueType::kText);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);

  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_DOUBLE_EQ(Value(3).as_real(), 3.0);  // int widens to real
  EXPECT_EQ(Value("x").as_text(), "x");
  EXPECT_TRUE(Value(true).as_bool());
}

TEST(Value, WrongAccessorThrows) {
  EXPECT_THROW((void)Value("text").as_int(), AssertionError);
  EXPECT_THROW((void)Value(1).as_text(), AssertionError);
  EXPECT_THROW((void)Value(1.0).as_bool(), AssertionError);
  EXPECT_THROW((void)Value("t").as_real(), AssertionError);
}

TEST(Value, EqualityIsTyped) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value("1"));
  EXPECT_FALSE(Value(1) == Value(1.0));
  EXPECT_EQ(Value(), Value());
}

TEST(Schema, IndexOfAndHas) {
  const Schema s = jobs_schema();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.index_of("state"), 1u);
  EXPECT_TRUE(s.has("runtime"));
  EXPECT_FALSE(s.has("nope"));
  EXPECT_THROW((void)s.index_of("nope"), AssertionError);
}

TEST(Schema, DuplicateColumnRejected) {
  EXPECT_THROW(Schema({{"a", ValueType::kInt}, {"a", ValueType::kInt}}),
               AssertionError);
}

TEST(Schema, AcceptsChecksArityAndTypes) {
  const Schema s = jobs_schema();
  EXPECT_TRUE(s.accepts({Value("j"), Value("ready"), Value(1), Value(2.0),
                         Value(false)}));
  EXPECT_TRUE(s.accepts({Value("j"), Value("ready"), Value(1), Value(2),
                         Value(false)}));  // int -> real ok
  EXPECT_TRUE(s.accepts({Value("j"), Value(), Value(), Value(), Value()}));
  EXPECT_FALSE(s.accepts({Value("j"), Value("ready")}));  // wrong arity
  EXPECT_FALSE(s.accepts({Value(1), Value("ready"), Value(1), Value(2.0),
                          Value(false)}));  // wrong type
}

TEST(Table, InsertFindUpdateErase) {
  Table t("jobs", jobs_schema());
  const RowId id =
      t.insert({Value("j1"), Value("ready"), Value(3), Value(1.5), Value(false)});
  EXPECT_NE(id, kInvalidRow);
  EXPECT_EQ(t.size(), 1u);

  ASSERT_NE(t.find(id), nullptr);
  EXPECT_EQ(t.get(id, "state").as_text(), "ready");

  EXPECT_TRUE(t.update(id, "state", Value("planned")));
  EXPECT_EQ(t.get(id, "state").as_text(), "planned");

  EXPECT_TRUE(t.erase(id));
  EXPECT_EQ(t.find(id), nullptr);
  EXPECT_FALSE(t.erase(id));
  EXPECT_FALSE(t.update(id, "state", Value("x")));
}

TEST(Table, SchemaEnforcedOnInsert) {
  Table t("jobs", jobs_schema());
  EXPECT_THROW(t.insert({Value(1)}), AssertionError);
}

TEST(Table, RowIdsAreMonotonic) {
  Table t("jobs", jobs_schema());
  RowId prev = 0;
  for (int i = 0; i < 10; ++i) {
    const RowId id = t.insert(
        {Value("j"), Value("s"), Value(i), Value(0.0), Value(false)});
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(Table, FindByScanAndIndexAgree) {
  Table scan("jobs", jobs_schema());
  Table indexed("jobs", jobs_schema());
  indexed.create_index("state");
  for (int i = 0; i < 30; ++i) {
    const std::string state = i % 3 == 0 ? "ready" : "running";
    scan.insert({Value("j"), Value(state), Value(i), Value(0.0), Value(false)});
    indexed.insert(
        {Value("j"), Value(state), Value(i), Value(0.0), Value(false)});
  }
  EXPECT_EQ(scan.find_by("state", Value("ready")),
            indexed.find_by("state", Value("ready")));
  EXPECT_EQ(indexed.count_by("state", Value("ready")), 10u);
}

TEST(Table, IndexMaintainedAcrossUpdates) {
  Table t("jobs", jobs_schema());
  t.create_index("state");
  const RowId id =
      t.insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});
  EXPECT_EQ(t.count_by("state", Value("ready")), 1u);
  t.update(id, "state", Value("planned"));
  EXPECT_EQ(t.count_by("state", Value("ready")), 0u);
  EXPECT_EQ(t.count_by("state", Value("planned")), 1u);
  t.erase(id);
  EXPECT_EQ(t.count_by("state", Value("planned")), 0u);
}

TEST(Table, IndexCreatedAfterInsertsBackfills) {
  Table t("jobs", jobs_schema());
  for (int i = 0; i < 5; ++i) {
    t.insert({Value("j"), Value("ready"), Value(i), Value(0.0), Value(false)});
  }
  t.create_index("state");
  EXPECT_EQ(t.count_by("state", Value("ready")), 5u);
}

TEST(Table, SelectPredicate) {
  Table t("jobs", jobs_schema());
  for (int i = 0; i < 10; ++i) {
    t.insert({Value("j"), Value("s"), Value(i), Value(i * 1.0), Value(false)});
  }
  const auto big = t.select([&t](const Row& r) {
    return r.cells[t.schema().index_of("runtime")].as_real() >= 7.0;
  });
  EXPECT_EQ(big.size(), 3u);
}

TEST(Table, ForEachVisitsInInsertionOrder) {
  Table t("jobs", jobs_schema());
  for (int i = 0; i < 5; ++i) {
    t.insert({Value("j"), Value("s"), Value(i), Value(0.0), Value(false)});
  }
  std::int64_t expected = 0;
  t.for_each([&](const Row& r) {
    EXPECT_EQ(r.cells[2].as_int(), expected++);
  });
  EXPECT_EQ(expected, 5);
}

TEST(Database, CreateAndLookupTables) {
  Database d;
  d.create_table("jobs", jobs_schema());
  d.create_table("dags", Schema{{"name", ValueType::kText}});
  EXPECT_TRUE(d.has_table("jobs"));
  EXPECT_FALSE(d.has_table("nope"));
  EXPECT_EQ(d.table_count(), 2u);
  EXPECT_EQ(d.table_names(), (std::vector<std::string>{"jobs", "dags"}));
  EXPECT_THROW(d.create_table("jobs", jobs_schema()), AssertionError);
  EXPECT_THROW((void)d.table("nope"), AssertionError);
}

TEST(Database, JournalRecordsMutations) {
  Database d;
  Table& t = d.create_table("jobs", jobs_schema());
  const RowId id =
      t.insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});
  t.update(id, "state", Value("planned"));
  t.erase(id);
  // create + insert + update + erase
  EXPECT_EQ(d.journal().size(), 4u);
}

TEST(Database, RecoverRebuildsExactState) {
  Database original;
  Table& jobs = original.create_table("jobs", jobs_schema());
  std::vector<RowId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(jobs.insert({Value("job-" + std::to_string(i)),
                               Value("ready"), Value(i % 4), Value(60.0),
                               Value(false)}));
  }
  for (int i = 0; i < 20; i += 2) {
    jobs.update(ids[i], "state", Value("completed"));
    jobs.update(ids[i], "done", Value(true));
  }
  jobs.erase(ids[3]);
  jobs.erase(ids[5]);

  Database recovered;
  ASSERT_TRUE(recovered.recover(original.journal()).ok());
  const Table& r = recovered.table("jobs");
  EXPECT_EQ(r.size(), 18u);
  EXPECT_EQ(r.get(ids[0], "state").as_text(), "completed");
  EXPECT_TRUE(r.get(ids[0], "done").as_bool());
  EXPECT_EQ(r.get(ids[1], "state").as_text(), "ready");
  EXPECT_EQ(r.find(ids[3]), nullptr);
}

TEST(Database, RecoveredDatabaseContinuesJournaling) {
  Database original;
  original.create_table("jobs", jobs_schema())
      .insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});

  Database recovered;
  ASSERT_TRUE(recovered.recover(original.journal()).ok());
  // Insert post-recovery: new row ids must not collide with replayed ones.
  const RowId id2 = recovered.table("jobs").insert(
      {Value("k"), Value("ready"), Value(2), Value(0.0), Value(false)});
  EXPECT_EQ(recovered.table("jobs").size(), 2u);
  EXPECT_GT(id2, RowId{1});
  // And the recovered journal can recover a third instance.
  Database third;
  ASSERT_TRUE(third.recover(recovered.journal()).ok());
  EXPECT_EQ(third.table("jobs").size(), 2u);
}

TEST(Database, RecoverIntoNonEmptyFails) {
  Database d;
  d.create_table("jobs", jobs_schema());
  Journal empty;
  EXPECT_FALSE(d.recover(empty).ok());
}

TEST(Database, RecoverDetectsCorruptReplay) {
  Journal j;
  JournalEntry bad;
  bad.op = JournalEntry::Op::kUpdate;
  bad.table = "missing";
  bad.row = 1;
  bad.cells = {Value(1)};
  j.append(bad);
  Database d;
  const auto status = d.recover(j);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "recover_replay");
}

TEST(Journal, SerializeParseRoundTrip) {
  Database d;
  Table& t = d.create_table("jobs", jobs_schema());
  const RowId id = t.insert({Value("has\ttab and \\slash\nnewline"),
                             Value("ready"), Value(-7), Value(3.25),
                             Value(true)});
  t.update(id, "state", Value("planned"));
  t.erase(id);

  const std::string text = d.journal().serialize();
  const auto parsed = Journal::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), d.journal().size());

  Database recovered;
  ASSERT_TRUE(recovered.recover(*parsed).ok());
  EXPECT_EQ(recovered.table("jobs").size(), 0u);
  // Serialized journals of both databases agree record-for-record.
  EXPECT_EQ(recovered.journal().serialize(), text);
}

TEST(Journal, ParseRejectsGarbage) {
  EXPECT_FALSE(Journal::parse("X\tjobs\n").has_value());
  EXPECT_FALSE(Journal::parse("U\tjobs\t1\n").has_value());
  EXPECT_FALSE(Journal::parse("I\tjobs\t1\tz:9\n").has_value());
}

TEST(Journal, ParseEmptyIsEmpty) {
  const auto j = Journal::parse("");
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(j->empty());
}

TEST(Database, TruncateJournalKeepsData) {
  Database d;
  Table& t = d.create_table("jobs", jobs_schema());
  t.insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});
  d.truncate_journal();
  EXPECT_TRUE(d.journal().empty());
  EXPECT_EQ(d.table("jobs").size(), 1u);
}

TEST(Database, JournalingCanBeDisabled) {
  Database d;
  d.set_journaling(false);
  Table& t = d.create_table("jobs", jobs_schema());
  t.insert({Value("j"), Value("ready"), Value(1), Value(0.0), Value(false)});
  EXPECT_TRUE(d.journal().empty());
}

Schema indexed_jobs_schema() {
  return Schema{{{"name", ValueType::kText},
                 indexed("state", ValueType::kText),
                 {"site", ValueType::kInt},
                 {"runtime", ValueType::kReal},
                 {"done", ValueType::kBool}}};
}

TEST(Table, SchemaDeclaredIndexes) {
  Database d;
  Table& t = d.create_table("jobs", indexed_jobs_schema());
  t.insert({Value("a"), Value("ready"), Value(1), Value(0.0), Value(false)});
  t.insert({Value("b"), Value("done"), Value(2), Value(1.0), Value(true)});
  t.insert({Value("c"), Value("ready"), Value(1), Value(2.0), Value(false)});

  // The declared index serves the query: no scan fallback.
  EXPECT_EQ(t.find_by("state", Value("ready")).size(), 2u);
  EXPECT_EQ(t.full_scans(), 0u);
#if SPHINX_CONTRACTS_ENABLED
  // Querying an undeclared column falls back to a (counted) full scan.
  EXPECT_EQ(t.find_by("name", Value("b")).size(), 1u);
  EXPECT_EQ(t.full_scans(), 1u);
#endif
}

TEST(Table, FindFirstMatchesFindBy) {
  Database d;
  Table& t = d.create_table("jobs", indexed_jobs_schema());
  const RowId first =
      t.insert({Value("a"), Value("ready"), Value(1), Value(0.0),
                Value(false)});
  t.insert({Value("b"), Value("ready"), Value(2), Value(1.0), Value(false)});

  // Index path.
  const Row* row = t.find_first("state", Value("ready"));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->id, first);
  EXPECT_EQ(row->id, t.find_by("state", Value("ready")).front());
  EXPECT_EQ(t.find_first("state", Value("nope")), nullptr);
  // Scan path agrees.
  row = t.find_first("name", Value("b"));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->id, t.find_by("name", Value("b")).front());
  EXPECT_EQ(t.find_first("name", Value("zzz")), nullptr);
}

TEST(Journal, CreateTableCarriesIndexFlags) {
  Database d;
  Table& t = d.create_table("jobs", indexed_jobs_schema());
  t.insert({Value("a"), Value("ready"), Value(1), Value(0.0), Value(false)});

  // The schema line marks indexed columns with a trailing '!'.
  const std::string text = d.journal().serialize();
  EXPECT_NE(text.find("state=text!"), std::string::npos);
  EXPECT_NE(text.find("name=text\t"), std::string::npos);

  // Round trip: the parsed journal rebuilds the index, so the recovered
  // table answers the hot query without a scan fallback.
  const auto parsed = Journal::parse(text);
  ASSERT_TRUE(parsed.has_value());
  Database r;
  ASSERT_TRUE(r.recover(*parsed).ok());
  Table& rt = r.table("jobs");
  EXPECT_EQ(rt.find_by("state", Value("ready")).size(), 1u);
  EXPECT_EQ(rt.full_scans(), 0u);

  // Journals written before the flag existed still parse (no '!').
  const auto legacy = Journal::parse("C\tlegacy\tname=text\tstate=text\n");
  ASSERT_TRUE(legacy.has_value());
  ASSERT_EQ(legacy->entries().size(), 1u);
  for (const Column& col : legacy->entries()[0].schema) {
    EXPECT_FALSE(col.indexed);
  }
}

TEST(Journal, SequenceNumbersSurviveTruncation) {
  Database d;
  Table& t = d.create_table("jobs", jobs_schema());
  std::vector<RowId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(t.insert({Value("j" + std::to_string(i)), Value("ready"),
                            Value(i), Value(0.0), Value(false)}));
  }
  // create + 5 inserts: sequences 0..5, next is 6.
  EXPECT_EQ(d.journal().base_seq(), 0u);
  EXPECT_EQ(d.journal().next_seq(), 6u);

  d.truncate_journal(4);
  EXPECT_EQ(d.journal().base_seq(), 4u);
  EXPECT_EQ(d.journal().next_seq(), 6u);
  EXPECT_EQ(d.journal().size(), 2u);

  // New mutations keep numbering from where the prefix left off.
  t.update(ids[0], "state", Value("planned"));
  EXPECT_EQ(d.journal().next_seq(), 7u);

  // Truncating before the base or past the end clamps, never throws.
  Journal j = d.journal();
  j.truncate_before(1);
  EXPECT_EQ(j.base_seq(), 4u);
  j.truncate_before(99);
  EXPECT_EQ(j.base_seq(), 7u);
  EXPECT_TRUE(j.empty());
}

TEST(Journal, SerializedSizeMatchesAndHeaderRoundTrips) {
  Database d;
  Table& t = d.create_table("jobs", jobs_schema());
  const RowId id = t.insert({Value("tab\tand\nnewline"), Value("ready"),
                             Value(-3), Value(2.5), Value(true)});
  t.update(id, "state", Value("planned"));
  EXPECT_EQ(d.journal().size_bytes(), d.journal().serialize().size());

  // Untruncated journals serialize headerless (legacy byte format).
  EXPECT_EQ(d.journal().serialize().front(), 'C');

  d.truncate_journal(2);
  const std::string text = d.journal().serialize();
  EXPECT_EQ(text.rfind("#seq\t2\n", 0), 0u);
  EXPECT_EQ(d.journal().size_bytes(), text.size());

  const auto parsed = Journal::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base_seq(), 2u);
  EXPECT_EQ(parsed->next_seq(), d.journal().next_seq());
  EXPECT_EQ(parsed->serialize(), text);

  // A header anywhere but the very start is corruption.
  EXPECT_FALSE(Journal::parse("C\tjobs\tname=text\n#seq\t2\n").has_value());
  EXPECT_FALSE(Journal::parse("#seq\tnope\n").has_value());
}

TEST(Database, SnapshotRestoreRoundTripIsByteStable) {
  Database original;
  Table& jobs = original.create_table("jobs", jobs_schema());
  original.create_table("empty", jobs_schema());
  std::vector<RowId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(jobs.insert({Value("job-" + std::to_string(i)),
                               Value(i % 2 == 0 ? "ready" : "planned"),
                               Value(i), Value(1.5 * i), Value(false)}));
  }
  jobs.update(ids[2], "state", Value("completed"));
  jobs.erase(ids[7]);  // tail erase: next_id exceeds the max live id

  const std::string image = original.snapshot();
  Database restored;
  ASSERT_TRUE(restored.restore(image).ok());

  // Restore is state, not history: the journal starts empty for the
  // caller to pair with a suffix.
  EXPECT_TRUE(restored.journal().empty());

  // The restored store is logically identical, snapshots to the same
  // bytes, and keeps allocating row ids past the erased tail.
  EXPECT_EQ(restored.snapshot(), image);
  EXPECT_EQ(restored.table("jobs").size(), 7u);
  EXPECT_EQ(restored.table("jobs").get(ids[2], "state").as_text(),
            "completed");
  const RowId fresh = restored.table("jobs").insert(
      {Value("new"), Value("ready"), Value(9), Value(0.0), Value(false)});
  EXPECT_GT(fresh, ids[7]);
  EXPECT_FALSE(restored.restore(image).ok());  // non-empty target refused
}

TEST(Database, SnapshotCarriesIndexDeclarations) {
  Database original;
  Table& t = original.create_table("jobs", indexed_jobs_schema());
  t.insert({Value("a"), Value("ready"), Value(1), Value(0.0), Value(false)});

  Database restored;
  ASSERT_TRUE(restored.restore(original.snapshot()).ok());
  Table& rt = restored.table("jobs");
  EXPECT_EQ(rt.find_by("state", Value("ready")).size(), 1u);
  EXPECT_EQ(rt.full_scans(), 0u);  // the index came back with the schema
}

TEST(Database, SuffixRecoveryReproducesCrashedJournalBytes) {
  // The checkpoint + suffix path: snapshot mid-history, keep mutating,
  // truncate, then recover a new database from (image, suffix).  The
  // recovered journal must be byte-identical to the crashed one -- the
  // recovered server must itself remain recoverable.
  Database crashed;
  Table& jobs = crashed.create_table("jobs", jobs_schema());
  std::vector<RowId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(jobs.insert({Value("j" + std::to_string(i)), Value("ready"),
                               Value(i), Value(0.0), Value(false)}));
  }
  const std::string image = crashed.snapshot();
  const std::uint64_t seq = crashed.journal().next_seq();
  jobs.update(ids[1], "state", Value("completed"));
  jobs.erase(ids[4]);
  crashed.truncate_journal(seq);

  Database recovered;
  ASSERT_TRUE(recovered.restore(image).ok());
  ASSERT_TRUE(recovered.recover(crashed.journal(), seq).ok());
  EXPECT_EQ(recovered.journal().serialize(), crashed.journal().serialize());
  EXPECT_EQ(recovered.snapshot(), crashed.snapshot());
  EXPECT_EQ(recovered.journal().base_seq(), seq);

  // The same suffix also replays from an *untruncated* crashed journal
  // (a crash between image publication and truncation): entries below
  // `seq` are skipped and the adopted journal is the compacted suffix.
  Database crashed_untruncated;
  Table& jobs2 = crashed_untruncated.create_table("jobs", jobs_schema());
  for (int i = 0; i < 6; ++i) {
    jobs2.insert({Value("j" + std::to_string(i)), Value("ready"), Value(i),
                  Value(0.0), Value(false)});
  }
  jobs2.update(ids[1], "state", Value("completed"));
  jobs2.erase(ids[4]);
  Database completed;
  ASSERT_TRUE(completed.restore(image).ok());
  ASSERT_TRUE(completed.recover(crashed_untruncated.journal(), seq).ok());
  EXPECT_EQ(completed.journal().serialize(), crashed.journal().serialize());
  EXPECT_EQ(completed.snapshot(), crashed.snapshot());

  // A suffix starting past the requested replay point is unusable.
  Journal too_new = crashed.journal();
  too_new.truncate_before(seq + 1);
  Database refused;
  ASSERT_TRUE(refused.restore(image).ok());
  const auto status = refused.recover(too_new, seq);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "recover_suffix");
}

TEST(Database, RestoreRejectsCorruptImages) {
  Database d;
  EXPECT_FALSE(d.restore("not a snapshot").ok());
  EXPECT_FALSE(d.restore("#db\t9\n").ok());          // unknown version
  EXPECT_FALSE(d.restore("#db\t1\nR\t1\tn\n").ok()); // row before table
}

TEST(Table, IndexBucketsStayInIdOrder) {
  // Updates must not move a row to the back of its index bucket: query
  // iteration order is a function of table state, not update history --
  // the property that makes snapshot/restore order-preserving.
  Table t("jobs", indexed_jobs_schema());
  std::vector<RowId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(t.insert({Value("j" + std::to_string(i)), Value("ready"),
                            Value(i), Value(0.0), Value(false)}));
  }
  t.update(ids[0], "site", Value(9));  // same state: erase + reinsert
  t.update(ids[2], "state", Value("planned"));
  t.update(ids[2], "state", Value("ready"));
  EXPECT_EQ(t.find_by("state", Value("ready")),
            (std::vector<RowId>{ids[0], ids[1], ids[2], ids[3]}));
}

}  // namespace
}  // namespace sphinx::db
