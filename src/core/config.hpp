#pragma once
/// \file config.hpp
/// Shared configuration and counters for the server's pipeline modules.
///
/// The server is decomposed into the paper's scheduling modules (message
/// handler, DAG reducer, planner -- section 3.2); they all read the same
/// configuration and update the same experiment counters, so those types
/// live here rather than in server.hpp to keep the modules free of a
/// dependency on the composite server.

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "core/state.hpp"

namespace sphinx::core {

/// Static catalog entry the server knows about each site (the Grid3
/// catalog: always available, unlike monitoring data).
struct CatalogSite {
  SiteId id;
  std::string name;
  int cpus = 1;
};

/// Server configuration.
struct ServerConfig {
  std::string endpoint = "sphinx-server";
  Algorithm algorithm = Algorithm::kCompletionTime;
  bool use_feedback = true;   ///< apply the reliability filter
  bool use_policy = false;    ///< apply quota constraints (eq. 4)
  /// QoS: order planning by priority then earliest deadline first.  Off,
  /// requests are planned in pure submission order (priority ignored).
  bool use_qos_ordering = true;
  Duration sweep_period = 5.0;
  /// Offset of the first sweep after start().  Multi-server deployments
  /// stagger shard phases with this: two shards sweeping at the same
  /// instant would tie on engine timestamps, and recovery-rescheduled
  /// events break such ties differently than the original schedule did.
  Duration sweep_phase = 0.0;
  /// Planner step 4: when set, final outputs (outputs no other job in the
  /// DAG consumes) are copied to this site's persistent storage after the
  /// producing job completes.
  SiteId persistent_site;
  /// VOs authorized to talk to this server (GSI ACL).
  std::vector<std::string> allowed_vos = {"uscms", "atlas", "ivdgl"};
  /// Checkpoint policy, record-triggered: once the journal has grown by
  /// this many records since the last checkpoint, the end of the next
  /// sweep publishes a new image and compacts the journal.  0 disables
  /// the record trigger.
  std::size_t checkpoint_every_records = 0;
  /// Checkpoint policy, time-triggered: publish at least every this many
  /// sim-seconds (checked at sweep boundaries).  0 disables the period
  /// trigger.  With both triggers off the journal grows unboundedly and
  /// recovery replays the full history -- the pre-checkpointing default.
  Duration checkpoint_period = 0.0;

  // --- straggler defense (speculative replication) ----------------------
  /// Master switch.  Off, the detector never runs and the tracker's
  /// timeout-cancel-replan loop is the only slow-site defense.
  bool speculate = false;
  /// A job is a straggler when its elapsed time since planning exceeds
  /// speculation_multiplier x the q-th percentile of its (site, class)
  /// runtime-sample distribution.
  double speculation_percentile = 0.95;
  double speculation_multiplier = 2.0;
  /// Floor on the straggler threshold: never speculate before a job has
  /// been outstanding at least this long, whatever the percentile says
  /// (tiny-class histograms would otherwise replicate healthy jobs).
  Duration speculation_min_elapsed = minutes(5);
  /// Decline to classify when the (site, class) sample ring -- falling
  /// back to the class's all-site ring for cold sites -- holds fewer
  /// samples than this.
  std::size_t speculation_min_samples = 3;
  /// Detector cadence: scan the in-flight jobs at most once per this many
  /// sim-seconds (checked at sweep boundaries; the scan is O(outstanding)).
  Duration speculation_check_period = minutes(2);
  /// Monitor staleness guard: when the freshest monitoring snapshot for a
  /// job's site is older than this, the detector declines to classify the
  /// job (a dark site's jobs all look like stragglers; the tracker
  /// timeout owns that failure mode).  Counted as detector.stale_skips.
  Duration speculation_stale_after = minutes(45);
  /// Fan-out budgets: maximum concurrently racing speculations per DAG
  /// and per server.  Both contract-checked after every detector pass.
  std::size_t speculation_max_per_dag = 2;
  std::size_t speculation_max_global = 8;
};

/// Counters for experiments and diagnostics.
struct ServerStats {
  std::size_t dags_received = 0;
  std::size_t plans_sent = 0;
  std::size_t replans = 0;         ///< plans for attempt > 1
  std::size_t reports_processed = 0;
  std::size_t jobs_reduced = 0;    ///< jobs eliminated by the DAG reducer
  std::size_t policy_rejections = 0;  ///< site filtered by quota at least once
  /// Re-delivered submissions skipped by the ingress duplicate guard (a
  /// retransmitted submit_dag that escaped the RPC dedup cache, e.g.
  /// after a crash wiped it).
  std::size_t duplicate_dags = 0;
  // Straggler defense (speculate = true).
  std::size_t speculations = 0;           ///< races launched
  std::size_t speculations_won_primary = 0;  ///< original attempt finished first
  std::size_t speculations_won_spec = 0;     ///< replica finished first
  std::size_t speculation_cancels = 0;    ///< loser-cancel RPCs issued
  std::size_t detector_stale_skips = 0;   ///< classifications declined (stale)
};

}  // namespace sphinx::core
