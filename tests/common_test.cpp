// Tests for src/common: strong ids, rng determinism, Expected, stats,
// string helpers and table rendering.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace sphinx {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  JobId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), 0u);
}

TEST(StrongId, GeneratorNeverReturnsInvalid) {
  IdGenerator<JobId> gen;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(gen.next().valid());
  }
  EXPECT_EQ(gen.last(), 100u);
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<JobId, SiteId>);
  static_assert(!std::is_convertible_v<JobId, SiteId>);
}

TEST(StrongId, OrderingAndEquality) {
  EXPECT_EQ(JobId(5), JobId(5));
  EXPECT_NE(JobId(5), JobId(6));
  EXPECT_LT(JobId(5), JobId(6));
}

TEST(StrongId, Hashable) {
  std::unordered_set<JobId> set;
  set.insert(JobId(1));
  set.insert(JobId(2));
  set.insert(JobId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(10.0, 20.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all values hit
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, NormalRespectsFloor) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.normal(1.0, 5.0, 0.5), 0.5);
  }
}

TEST(SeedTree, SameLabelSameSeed) {
  SeedTree tree(99);
  EXPECT_EQ(tree.seed_for("monitor"), tree.seed_for("monitor"));
}

TEST(SeedTree, DifferentLabelsDecorrelated) {
  SeedTree tree(99);
  EXPECT_NE(tree.seed_for("monitor"), tree.seed_for("failure"));
  EXPECT_NE(tree.seed_for("site/1"), tree.seed_for("site/2"));
}

TEST(SeedTree, DifferentMastersDiffer) {
  EXPECT_NE(SeedTree(1).seed_for("x"), SeedTree(2).seed_for("x"));
}

TEST(SeedTree, DuplicateStreamLabelThrows) {
  SeedTree tree(99);
  (void)tree.stream("bus");
#if SPHINX_CONTRACTS_ENABLED
  EXPECT_THROW((void)tree.stream("bus"), sphinx::ContractViolation);
#endif
  // Distinct labels keep working after the violation.
  (void)tree.stream("monitoring");
}

TEST(SeedTree, SeedForDoesNotCountAsIssuing) {
  SeedTree tree(99);
  (void)tree.seed_for("bus");
  (void)tree.seed_for("bus");  // probing child seeds is free
  (void)tree.stream("bus");    // first actual issue is fine
  EXPECT_EQ(tree.issued().size(), 1u);
}

TEST(SeedTree, StreamReplicaIsExemptAndIdentical) {
  SeedTree tree(99);
  Rng a = tree.stream_replica("workload/shared");
  Rng b = tree.stream_replica("workload/shared");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  }
  EXPECT_TRUE(tree.issued().empty());
}

TEST(SeedTree, CopiesInheritTheIssuedSet) {
  SeedTree parent(99);
  (void)parent.stream("bus");
  const SeedTree child = parent;
  EXPECT_EQ(child.issued().size(), 1u);
#if SPHINX_CONTRACTS_ENABLED
  // A tree forwarded by value still rejects labels the parent used...
  EXPECT_THROW((void)child.stream("bus"), sphinx::ContractViolation);
#endif
  // ...while fresh labels on the child do not affect the parent.
  (void)child.stream("site/1");
  EXPECT_EQ(parent.issued().size(), 1u);
}

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(0), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e = make_error("nope", "broken");
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, "nope");
  EXPECT_EQ(e.value_or(7), 7);
  EXPECT_THROW((void)e.value(), AssertionError);
}

TEST(Expected, WrongAlternativeAccessThrows) {
  Expected<int> ok(1);
  EXPECT_THROW((void)ok.error(), AssertionError);
  const Expected<int> err = make_error("gone", "no value here");
  EXPECT_THROW((void)err.value(), AssertionError);
  EXPECT_THROW((void)*err, AssertionError);
}

TEST(Expected, UnexpectedDeductionGuide) {
  // CTAD: Unexpected{Error{...}} deduces Unexpected<Error> without the
  // template argument being spelled out.
  Expected<int> e = Unexpected{Error{"deduced", "via CTAD"}};
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, "deduced");
  EXPECT_EQ(e.error().to_string(), "deduced: via CTAD");
}

TEST(Expected, ValueOrCoversBothAlternatives) {
  Expected<std::string> ok(std::string("present"));
  EXPECT_EQ(ok.value_or("fallback"), "present");
  Expected<std::string> err = make_error("e", "m");
  EXPECT_EQ(err.value_or("fallback"), "fallback");
}

TEST(Status, DefaultIsOk) {
  StatusOrError s;
  EXPECT_TRUE(s.ok());
  EXPECT_THROW((void)s.error(), AssertionError);
}

TEST(Status, CarriesError) {
  StatusOrError s = make_error("quota_exceeded", "cpu quota used up");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "quota_exceeded");
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(0, 100);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Ewma, FirstObservationSetsValue) {
  Ewma e(0.5);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardRecentValues) {
  Ewma e(0.5);
  e.add(0.0);
  for (int i = 0; i < 20; ++i) e.add(100.0);
  EXPECT_GT(e.value(), 99.0);
}

TEST(Ewma, EmptyValueIsZero) {
  Ewma e;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(Percentile, BasicQuantiles) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Strings, SplitAndJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("gsiftp://host/file", "gsiftp://"));
  EXPECT_FALSE(starts_with("x", "xyz"));
  EXPECT_TRUE(ends_with("job.sub", ".sub"));
  EXPECT_FALSE(ends_with("a", "ab"));
}

TEST(Strings, FormatHelpers) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_bytes(1536.0), "1.5 KB");
  EXPECT_EQ(format_bytes(10.0), "10 B");
  EXPECT_EQ(format_duration(3723), "1h 02m 03s");
  EXPECT_EQ(format_duration(42), "42s");
  EXPECT_EQ(format_duration(125), "2m 05s");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"algorithm", "time"});
  t.add_row({"round-robin", "120.0"});
  t.add_row({"completion-time", "80.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("algorithm"), std::string::npos);
  EXPECT_NE(out.find("completion-time"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW((void)t.render());
}

TEST(BarLine, ProportionalFill) {
  const std::string full = bar_line("x", 10.0, 10.0, 10);
  const std::string half = bar_line("x", 5.0, 10.0, 10);
  EXPECT_GT(std::count(full.begin(), full.end(), '#'),
            std::count(half.begin(), half.end(), '#'));
}

TEST(Time, LiteralHelpers) {
  EXPECT_DOUBLE_EQ(minutes(2), 120.0);
  EXPECT_DOUBLE_EQ(hours(1), 3600.0);
  EXPECT_DOUBLE_EQ(seconds(5), 5.0);
  EXPECT_GT(kNever, hours(1e9));
}

}  // namespace
}  // namespace sphinx
