#pragma once
/// \file clean.hpp
/// Fixture: a header that satisfies every sphinx-lint rule.  Mentioning
/// rand() or system_clock in a comment is fine -- comments are stripped.

#include <string>

namespace fixture {

/// Returns a label; "rand()" in this string must not fire sim-random.
inline std::string label() { return "rand() and time(nullptr) as text"; }

}  // namespace fixture
