#pragma once
/// \file coordinator.hpp
/// The control-plane coordinator: lease service + failure monitor +
/// dead-shard adoption.
///
/// One coordinator serves a multi-scheduler deployment.  It hosts the
/// `ctrl.renew` Clarens method the HeartbeatAgents call, keeps the
/// journaled LeaseTable, and runs a periodic monitor that declares a
/// shard dead when its owner stops renewing.  On expiry it picks the
/// adopter -- the first scheduler in grant order that still holds a
/// current lease of its own -- and runs the installed AdoptHandler,
/// which recovers the dead shard from its CheckpointImage + journal
/// suffix and re-registers its endpoint.  Only when the handler succeeds
/// is the lease transferred (epoch + 1), fencing the old owner.
///
/// Trace policy: granted / expired / adopted / fenced each emit one
/// event; successful renewals are metrics-only ("ctrl.lease_renewals"),
/// because per-beat trace lines would dwarf the scheduling trace they
/// ride alongside.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/time.hpp"
#include "ctrl/lease.hpp"
#include "obs/recorder.hpp"
#include "rpc/clarens.hpp"
#include "rpc/transport.hpp"
#include "sim/engine.hpp"

namespace sphinx::ctrl {

/// Coordinator knobs.  Defaults tolerate two missed beats: with a 1 s
/// heartbeat and a 3 s TTL, expiry needs three consecutive silent beats,
/// so one delayed delivery never triggers a spurious failover.
struct CoordinatorConfig {
  std::string endpoint = "ctrl/coordinator";
  Duration lease_ttl = 3.0;
  Duration monitor_period = 1.0;
  /// Offset of the first monitor sweep after start().
  Duration monitor_phase = 0.0;
  /// VO whose proxies may invoke ctrl methods.
  std::string control_vo = "ivdgl";
};

/// Counters for experiments and tests.
struct CoordinatorStats {
  std::size_t renewals = 0;          ///< deadline extensions granted
  std::size_t fenced = 0;            ///< stale renewals rejected
  std::size_t expirations = 0;       ///< leases declared dead
  std::size_t adoptions = 0;         ///< shards rebound to a survivor
  std::size_t failed_adoptions = 0;  ///< no candidate, or handler failed
};

class LeaseCoordinator {
 public:
  /// Recovers the dead shard's scheduler under `new_owner`.  Runs inside
  /// the monitor sweep, before the lease is transferred: a handler
  /// failure leaves the lease expired and the next sweep retries.
  using AdoptHandler = std::function<StatusOrError(
      const std::string& shard, const std::string& dead_owner,
      const std::string& new_owner)>;
  /// Fires after a successful transfer -- the harness's hook for
  /// starting the new owner's HeartbeatAgent with the new epoch.
  using AdoptedCallback = std::function<void(
      const std::string& shard, const std::string& new_owner,
      std::uint64_t epoch)>;

  LeaseCoordinator(rpc::MessageBus& bus, CoordinatorConfig config);

  /// Rebuilds a coordinator from a crashed instance's lease journal:
  /// ownership, epochs and deadlines all survive, so a recovered control
  /// plane fences exactly the owners the dead one would have.
  static Expected<std::unique_ptr<LeaseCoordinator>> recover(
      rpc::MessageBus& bus, CoordinatorConfig config,
      const db::Journal& journal);

  ~LeaseCoordinator();
  LeaseCoordinator(const LeaseCoordinator&) = delete;
  LeaseCoordinator& operator=(const LeaseCoordinator&) = delete;

  /// Grants `shard`'s initial lease to `owner` (epoch 1).
  std::uint64_t grant(const std::string& shard, const std::string& owner);

  void set_adopt_handler(AdoptHandler handler);
  void set_adopted_callback(AdoptedCallback callback);
  /// Observation only: lease lifecycle events and ctrl.* counters.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Starts / stops the expiry monitor.
  void start();
  void stop();

  /// One monitor sweep (also callable directly from tests): declares
  /// overdue leases dead and adopts them onto survivors.
  void monitor_sweep();

  [[nodiscard]] const LeaseTable& leases() const noexcept { return leases_; }
  [[nodiscard]] const CoordinatorStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const CoordinatorConfig& config() const noexcept {
    return config_;
  }

 private:
  LeaseCoordinator(rpc::MessageBus& bus, CoordinatorConfig config,
                   bool deferred_recovery);
  void register_methods();
  Expected<rpc::XrValue> handle_renew(const std::vector<rpc::XrValue>& params);

  rpc::MessageBus& bus_;
  CoordinatorConfig config_;
  LeaseTable leases_;
  std::unique_ptr<rpc::ClarensService> service_;
  std::unique_ptr<sim::PeriodicProcess> monitor_;
  AdoptHandler adopt_handler_;
  AdoptedCallback adopted_callback_;
  CoordinatorStats stats_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace sphinx::ctrl
