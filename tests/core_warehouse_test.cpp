// Tests for the SPHINX data warehouse: schema, state transitions, site
// statistics (including censored cancellations), quotas and recovery.

#include <gtest/gtest.h>

#include "core/warehouse.hpp"
#include "workflow/generator.hpp"

namespace sphinx::core {
namespace {

workflow::Dag two_job_dag(std::uint64_t base = 100) {
  workflow::Dag dag(DagId(base), "wh-dag");
  workflow::JobSpec a;
  a.id = JobId(base + 1);
  a.name = "a";
  a.compute_time = 60.0;
  a.inputs = {"lfn://in"};
  a.output = "lfn://mid";
  a.output_bytes = 5e6;
  workflow::JobSpec b;
  b.id = JobId(base + 2);
  b.name = "b";
  b.compute_time = 30.0;
  b.inputs = {"lfn://mid"};
  b.output = "lfn://out";
  b.output_bytes = 1e6;
  dag.add_job(a);
  dag.add_job(b);
  dag.add_edge(a.id, b.id);
  return dag;
}

TEST(Warehouse, InsertDagMaterializesRows) {
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(), "client-1", UserId(9), 12.5);

  const auto dag = wh.dag(DagId(100));
  ASSERT_TRUE(dag.has_value());
  EXPECT_EQ(dag->name, "wh-dag");
  EXPECT_EQ(dag->client, "client-1");
  EXPECT_EQ(dag->user, UserId(9));
  EXPECT_EQ(dag->state, DagState::kReceived);
  EXPECT_DOUBLE_EQ(dag->received_at, 12.5);
  EXPECT_EQ(dag->total_jobs, 2);

  const auto jobs = wh.jobs_of_dag(DagId(100));
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].state, JobState::kUnplanned);
  EXPECT_EQ(jobs[0].attempt, 0);
  EXPECT_EQ(wh.job_inputs(JobId(101)),
            std::vector<data::Lfn>{"lfn://in"});
  EXPECT_EQ(wh.job_parents(JobId(102)), std::vector<JobId>{JobId(101)});
  EXPECT_TRUE(wh.job_parents(JobId(101)).empty());
}

TEST(Warehouse, DagStateTransitions) {
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(), "c", UserId(1), 0.0);
  EXPECT_EQ(wh.dags_in_state(DagState::kReceived).size(), 1u);
  wh.set_dag_state(DagId(100), DagState::kPlanning);
  EXPECT_TRUE(wh.dags_in_state(DagState::kReceived).empty());
  EXPECT_EQ(wh.dags_in_state(DagState::kPlanning).size(), 1u);
  wh.set_dag_finished(DagId(100), 500.0);
  const auto dag = wh.dag(DagId(100));
  EXPECT_EQ(dag->state, DagState::kFinished);
  EXPECT_DOUBLE_EQ(dag->finished_at, 500.0);
  EXPECT_THROW(wh.set_dag_state(DagId(999), DagState::kPlanning),
               AssertionError);
}

TEST(Warehouse, JobPlanningIncrementsAttempt) {
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(), "c", UserId(1), 0.0);
  wh.set_job_planned(JobId(101), SiteId(4), 10.0);
  auto job = wh.job(JobId(101));
  EXPECT_EQ(job->state, JobState::kPlanned);
  EXPECT_EQ(job->site, SiteId(4));
  EXPECT_EQ(job->attempt, 1);
  // Replanning after a cancellation bumps the attempt again.
  wh.set_job_state(JobId(101), JobState::kUnplanned);
  wh.set_job_planned(JobId(101), SiteId(5), 20.0);
  job = wh.job(JobId(101));
  EXPECT_EQ(job->attempt, 2);
  EXPECT_EQ(job->site, SiteId(5));
}

TEST(Warehouse, CompletedJobsAndOutstanding) {
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(), "c", UserId(1), 0.0);
  EXPECT_TRUE(wh.completed_jobs(DagId(100)).empty());
  wh.set_job_planned(JobId(101), SiteId(4), 1.0);
  wh.set_job_planned(JobId(102), SiteId(4), 1.0);
  EXPECT_EQ(wh.outstanding_on_site(SiteId(4)), 2);
  wh.set_job_state(JobId(101), JobState::kCompleted);
  EXPECT_EQ(wh.outstanding_on_site(SiteId(4)), 1);
  EXPECT_EQ(wh.completed_jobs(DagId(100)).size(), 1u);
  const auto by_site = wh.outstanding_by_site();
  EXPECT_EQ(by_site.at(SiteId(4)), 1);
}

TEST(Warehouse, SiteStatsEwmaAndReliability) {
  DataWarehouse wh;
  EXPECT_TRUE(wh.site_available(SiteId(1)));  // no data = available
  wh.record_completion(SiteId(1), 100.0);
  auto stats = wh.site_stats(SiteId(1));
  EXPECT_EQ(stats.completed, 1);
  EXPECT_DOUBLE_EQ(stats.avg_completion, 100.0);
  wh.record_completion(SiteId(1), 200.0);
  stats = wh.site_stats(SiteId(1));
  EXPECT_EQ(stats.samples, 2);
  // EWMA(0.3): 0.3*200 + 0.7*100 = 130.
  EXPECT_NEAR(stats.avg_completion, 130.0, 1e-9);
  EXPECT_TRUE(wh.site_available(SiteId(1)));

  wh.record_cancellation(SiteId(1));
  EXPECT_TRUE(wh.site_available(SiteId(1)));  // 1 cancel <= 2 completed
  wh.record_cancellation(SiteId(1));
  wh.record_cancellation(SiteId(1));
  EXPECT_FALSE(wh.site_available(SiteId(1)));  // 3 > 2
}

TEST(Warehouse, CensoredCancellationRaisesEwma) {
  DataWarehouse wh;
  wh.record_completion(SiteId(2), 100.0);
  wh.record_cancellation(SiteId(2), 900.0);  // timed out after 900 s
  const auto stats = wh.site_stats(SiteId(2));
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.samples, 2);
  EXPECT_GT(stats.avg_completion, 100.0);
  // First-ever observation may be censored too.
  wh.record_cancellation(SiteId(3), 900.0);
  EXPECT_DOUBLE_EQ(wh.site_stats(SiteId(3)).avg_completion, 900.0);
  // Zero-duration cancellation (no information) leaves the EWMA alone.
  wh.record_cancellation(SiteId(4));
  EXPECT_EQ(wh.site_stats(SiteId(4)).samples, 0);
}

TEST(Warehouse, QuotaLifecycle) {
  DataWarehouse wh;
  const UserId user(7);
  const SiteId site(3);
  // No quota row: unconstrained.
  EXPECT_TRUE(std::isinf(wh.quota_remaining(user, site, "cpu_seconds")));
  wh.consume_quota(user, site, "cpu_seconds", 100.0);  // no-op
  EXPECT_TRUE(std::isinf(wh.quota_remaining(user, site, "cpu_seconds")));

  wh.set_quota(user, site, "cpu_seconds", 1000.0);
  EXPECT_DOUBLE_EQ(wh.quota_remaining(user, site, "cpu_seconds"), 1000.0);
  wh.consume_quota(user, site, "cpu_seconds", 400.0);
  EXPECT_DOUBLE_EQ(wh.quota_remaining(user, site, "cpu_seconds"), 600.0);
  wh.refund_quota(user, site, "cpu_seconds", 100.0);
  EXPECT_DOUBLE_EQ(wh.quota_remaining(user, site, "cpu_seconds"), 700.0);
  // Refund never goes below zero used.
  wh.refund_quota(user, site, "cpu_seconds", 1e9);
  EXPECT_DOUBLE_EQ(wh.quota_remaining(user, site, "cpu_seconds"), 1000.0);
  // Quotas are per (user, site, resource).
  EXPECT_TRUE(std::isinf(wh.quota_remaining(UserId(8), site, "cpu_seconds")));
  EXPECT_TRUE(std::isinf(wh.quota_remaining(user, SiteId(4), "cpu_seconds")));
  EXPECT_TRUE(std::isinf(wh.quota_remaining(user, site, "disk_bytes")));
  // set_quota on an existing row updates the limit, preserving usage.
  wh.consume_quota(user, site, "cpu_seconds", 300.0);
  wh.set_quota(user, site, "cpu_seconds", 2000.0);
  EXPECT_DOUBLE_EQ(wh.quota_remaining(user, site, "cpu_seconds"), 1700.0);
}

TEST(Warehouse, RecoveryPreservesEverything) {
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(), "client-x", UserId(3), 5.0);
  wh.set_job_planned(JobId(101), SiteId(2), 8.0);
  wh.set_job_state(JobId(101), JobState::kRunning);
  wh.record_completion(SiteId(2), 250.0);
  wh.record_cancellation(SiteId(9), 900.0);
  wh.set_quota(UserId(3), SiteId(2), "cpu_seconds", 5000.0);
  wh.consume_quota(UserId(3), SiteId(2), "cpu_seconds", 60.0);

  auto recovered = DataWarehouse::recover_from(wh.journal());
  ASSERT_TRUE(recovered.has_value());
  DataWarehouse& r = **recovered;
  EXPECT_EQ(r.dag(DagId(100))->client, "client-x");
  EXPECT_EQ(r.job(JobId(101))->state, JobState::kRunning);
  EXPECT_EQ(r.job(JobId(101))->site, SiteId(2));
  EXPECT_EQ(r.job(JobId(101))->attempt, 1);
  EXPECT_DOUBLE_EQ(r.site_stats(SiteId(2)).avg_completion, 250.0);
  EXPECT_EQ(r.site_stats(SiteId(9)).cancelled, 1);
  EXPECT_DOUBLE_EQ(r.quota_remaining(UserId(3), SiteId(2), "cpu_seconds"),
                   4940.0);
  // Recovered warehouse keeps journaling and can recover again (chain).
  r.record_completion(SiteId(2), 100.0);
  auto second = DataWarehouse::recover_from(r.journal());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)->site_stats(SiteId(2)).samples, 2);
}

TEST(Warehouse, RecoverySurvivesTextSerialization) {
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(), "c", UserId(1), 0.0);
  wh.set_job_planned(JobId(101), SiteId(2), 1.0);
  const std::string text = wh.journal().serialize();
  const auto parsed = db::Journal::parse(text);
  ASSERT_TRUE(parsed.has_value());
  const auto recovered = DataWarehouse::recover_from(*parsed);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ((*recovered)->job(JobId(101))->site, SiteId(2));
}

TEST(Warehouse, DirtyQueueDrivesTheSweep) {
  DataWarehouse wh;
  // Submission enqueues the DAG.
  wh.insert_dag(two_job_dag(), "c", UserId(1), 0.0);
  EXPECT_EQ(wh.dirty_dags(), std::vector<DagId>{DagId(100)});

  // Draining empties the queue and yields a fresh record.
  auto drained = wh.drain_dirty_dags();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].id, DagId(100));
  EXPECT_EQ(drained[0].state, DagState::kReceived);
  EXPECT_TRUE(wh.dirty_dags().empty());
  EXPECT_TRUE(wh.drain_dirty_dags().empty());

  // Planning a job creates no new work; completing one does (the
  // children may now be ready).
  wh.set_dag_state(DagId(100), DagState::kPlanning);
  (void)wh.drain_dirty_dags();  // the state change itself enqueued it
  wh.set_job_planned(JobId(101), SiteId(4), 1.0);
  EXPECT_TRUE(wh.dirty_dags().empty());
  wh.set_job_state(JobId(101), JobState::kCompleted);
  EXPECT_EQ(wh.dirty_dags(), std::vector<DagId>{DagId(100)});

  // A cancellation bounces the job back to unplanned: work again.
  (void)wh.drain_dirty_dags();
  wh.set_job_planned(JobId(102), SiteId(4), 2.0);
  wh.set_job_state(JobId(102), JobState::kUnplanned);
  EXPECT_EQ(wh.dirty_dags(), std::vector<DagId>{DagId(100)});

  // Finishing the DAG removes it from the queue: no work after the end.
  wh.set_dag_finished(DagId(100), 10.0);
  EXPECT_TRUE(wh.dirty_dags().empty());
}

TEST(Warehouse, DrainYieldsSubmissionOrder) {
  DataWarehouse wh;
  // Submission order (table row order), not DAG-id order.
  wh.insert_dag(two_job_dag(200), "c", UserId(1), 0.0);
  wh.insert_dag(two_job_dag(100), "c", UserId(1), 1.0);
  const auto ids = wh.dirty_dags();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], DagId(200));
  EXPECT_EQ(ids[1], DagId(100));
  const auto drained = wh.drain_dirty_dags();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].id, DagId(200));
  EXPECT_EQ(drained[1].id, DagId(100));
  // Marking is idempotent: one queue entry per DAG.
  wh.mark_dag_dirty(DagId(100));
  wh.mark_dag_dirty(DagId(100));
  EXPECT_EQ(wh.dirty_dags().size(), 1u);
}

TEST(Warehouse, OutstandingCountersMatchScan) {
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(100), "c", UserId(1), 0.0);
  wh.insert_dag(two_job_dag(200), "c", UserId(1), 0.0);
  EXPECT_EQ(wh.outstanding_by_site(), wh.scan_outstanding_by_site());

  wh.set_job_planned(JobId(101), SiteId(4), 1.0);
  wh.set_job_planned(JobId(102), SiteId(5), 1.0);
  wh.set_job_planned(JobId(201), SiteId(4), 1.0);
  EXPECT_EQ(wh.outstanding_by_site(), wh.scan_outstanding_by_site());
  EXPECT_EQ(wh.outstanding_on_site(SiteId(4)), 2);

  // Submitted and running still count as outstanding (eq. 1/2).
  wh.set_job_state(JobId(101), JobState::kSubmitted);
  wh.set_job_state(JobId(101), JobState::kRunning);
  EXPECT_EQ(wh.outstanding_by_site(), wh.scan_outstanding_by_site());
  EXPECT_EQ(wh.outstanding_on_site(SiteId(4)), 2);

  // Completion and cancellation-to-unplanned both release the slot.
  wh.set_job_state(JobId(101), JobState::kCompleted);
  wh.set_job_state(JobId(201), JobState::kUnplanned);
  EXPECT_EQ(wh.outstanding_by_site(), wh.scan_outstanding_by_site());
  EXPECT_EQ(wh.outstanding_on_site(SiteId(4)), 0);
  // Zero entries are erased, matching the scan map exactly.
  EXPECT_FALSE(wh.outstanding_by_site().contains(SiteId(4)));
  EXPECT_EQ(wh.outstanding_by_site().at(SiteId(5)), 1);
  wh.check_invariants();
}

TEST(Warehouse, RecoveryRebuildsWorkState) {
  DataWarehouse wh;
  // DAG 100: planning with an unplanned job -> work to retry.
  wh.insert_dag(two_job_dag(100), "c", UserId(1), 0.0);
  wh.set_dag_state(DagId(100), DagState::kPlanning);
  wh.set_job_planned(JobId(101), SiteId(4), 1.0);
  // DAG 200: planning, fully planned -> idle until something reports.
  wh.insert_dag(two_job_dag(200), "c", UserId(1), 0.0);
  wh.set_dag_state(DagId(200), DagState::kPlanning);
  wh.set_job_planned(JobId(201), SiteId(4), 1.0);
  wh.set_job_planned(JobId(202), SiteId(5), 1.0);
  // DAG 300: freshly received -> work for the reducer.
  wh.insert_dag(two_job_dag(300), "c", UserId(1), 2.0);
  // DAG 400: finished -> never work again.
  wh.insert_dag(two_job_dag(400), "c", UserId(1), 3.0);
  wh.set_job_planned(JobId(401), SiteId(5), 3.0);
  wh.set_job_state(JobId(401), JobState::kCompleted);
  wh.set_job_planned(JobId(402), SiteId(5), 4.0);
  wh.set_job_state(JobId(402), JobState::kCompleted);
  wh.set_dag_finished(DagId(400), 5.0);

  const auto recovered = DataWarehouse::recover_from(wh.journal());
  ASSERT_TRUE(recovered.has_value());
  const DataWarehouse& r = **recovered;
  // Recovery reproduces the live queue *exactly* -- not an approximation
  // from the tables.  Nothing drained yet, so every unfinished DAG that
  // was ever enqueued (100, 200, 300) is still queued; finished 400 is
  // not.  The chaos differential oracle depends on this equality.
  const std::vector<DagId> expected{DagId(100), DagId(200), DagId(300)};
  EXPECT_EQ(wh.dirty_dags(), expected);
  EXPECT_EQ(r.dirty_dags(), wh.dirty_dags());
  // Counters equal a from-scratch scan of the recovered jobs table.
  EXPECT_EQ(r.outstanding_by_site(), r.scan_outstanding_by_site());
  EXPECT_EQ(r.outstanding_on_site(SiteId(4)), 2);  // jobs 101, 201
  EXPECT_EQ(r.outstanding_on_site(SiteId(5)), 1);  // job 202
  r.check_invariants();
}

TEST(Warehouse, RecoveryReplaysDrainPoints) {
  // "Enqueued, not yet swept" and "already swept" leave identical
  // tables; only the journaled drain ledger separates them.  Recovery
  // must land on the same side of the drain as the crashed server.
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(100), "c", UserId(1), 0.0);
  wh.set_dag_state(DagId(100), DagState::kPlanning);
  wh.set_job_planned(JobId(101), SiteId(4), 1.0);
  wh.set_job_planned(JobId(102), SiteId(4), 1.0);

  const auto dirty_after_recovery = [&wh] {
    const auto recovered = DataWarehouse::recover_from(wh.journal());
    EXPECT_TRUE(recovered.has_value());
    return (*recovered)->dirty_dags();
  };

  // Sweep boundary: drained, fully planned, nothing to retry -> idle.
  (void)wh.drain_dirty_dags();
  EXPECT_EQ(dirty_after_recovery(), wh.dirty_dags());
  EXPECT_TRUE(wh.dirty_dags().empty());

  // A completion re-enqueues the DAG: a crash before the next sweep must
  // recover it queued...
  wh.set_job_state(JobId(101), JobState::kCompleted);
  EXPECT_EQ(wh.dirty_dags(), std::vector<DagId>{DagId(100)});
  EXPECT_EQ(dirty_after_recovery(), wh.dirty_dags());

  // ...and a crash after that sweep must recover it idle again, even
  // though the tables are byte-identical in both snapshots.
  (void)wh.drain_dirty_dags();
  EXPECT_TRUE(wh.dirty_dags().empty());
  EXPECT_EQ(dirty_after_recovery(), wh.dirty_dags());
}

TEST(Warehouse, CheckpointRecoveryPreservesEverything) {
  // The checkpoint + suffix mirror of RecoveryPreservesEverything: half
  // the history lands in the image, half in the journal suffix, and the
  // recovered warehouse must be indistinguishable from a full replay.
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(), "client-x", UserId(3), 5.0);
  wh.set_job_planned(JobId(101), SiteId(2), 8.0);
  wh.record_completion(SiteId(2), 250.0);

  const auto stats = wh.checkpoint(9.0);
  EXPECT_TRUE(stats.truncated);
  EXPECT_GT(stats.compacted_records, 0u);
  EXPECT_TRUE(wh.journal().empty());  // O(state): prefix discarded
  EXPECT_EQ(wh.journal().base_seq(), stats.seq);

  wh.set_job_state(JobId(101), JobState::kRunning);
  wh.record_cancellation(SiteId(9), 900.0);
  wh.set_quota(UserId(3), SiteId(2), "cpu_seconds", 5000.0);
  wh.consume_quota(UserId(3), SiteId(2), "cpu_seconds", 60.0);

  // The compacted journal alone is not recoverable -- it needs its image.
  const auto replay_only = DataWarehouse::recover_from(wh.journal());
  ASSERT_FALSE(replay_only.has_value());
  EXPECT_EQ(replay_only.error().code, "recover_suffix");

  ASSERT_TRUE(wh.checkpoint_image().has_value());
  auto recovered =
      DataWarehouse::recover_from(*wh.checkpoint_image(), wh.journal());
  ASSERT_TRUE(recovered.has_value());
  DataWarehouse& r = **recovered;
  EXPECT_EQ(r.dag(DagId(100))->client, "client-x");
  EXPECT_EQ(r.job(JobId(101))->state, JobState::kRunning);
  EXPECT_EQ(r.job(JobId(101))->attempt, 1);
  EXPECT_DOUBLE_EQ(r.site_stats(SiteId(2)).avg_completion, 250.0);
  EXPECT_EQ(r.site_stats(SiteId(9)).cancelled, 1);
  EXPECT_DOUBLE_EQ(r.quota_remaining(UserId(3), SiteId(2), "cpu_seconds"),
                   4940.0);
  EXPECT_EQ(r.outstanding_by_site(), r.scan_outstanding_by_site());
  EXPECT_EQ(r.dirty_dags(), wh.dirty_dags());
  // The recovered journal is the crashed journal, byte for byte -- the
  // recovered server is itself recoverable the same way (chain).
  EXPECT_EQ(r.journal().serialize(), wh.journal().serialize());
  r.record_completion(SiteId(2), 100.0);
  ASSERT_TRUE(r.checkpoint_image().has_value());  // carried across recovery
  auto second =
      DataWarehouse::recover_from(*r.checkpoint_image(), r.journal());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)->site_stats(SiteId(2)).samples, 2);
  r.check_invariants();
}

TEST(Warehouse, MidCheckpointCrashLeavesJournalRecoverable) {
  // A crash between image publication and journal truncation: the image
  // exists but the journal still holds the full history.  Recovery must
  // skip the already-snapshotted prefix and complete the truncation.
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(), "c", UserId(1), 0.0);
  wh.set_job_planned(JobId(101), SiteId(4), 1.0);

  const auto stats = wh.checkpoint(2.0, [](const CheckpointImage&) {
    return true;  // simulate the kill inside the window
  });
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(wh.journal().base_seq(), 0u);  // untruncated
  EXPECT_GT(wh.journal().size(), 0u);

  wh.set_job_state(JobId(101), JobState::kCompleted);  // post-window suffix

  ASSERT_TRUE(wh.checkpoint_image().has_value());
  const auto recovered =
      DataWarehouse::recover_from(*wh.checkpoint_image(), wh.journal());
  ASSERT_TRUE(recovered.has_value());
  const DataWarehouse& r = **recovered;
  EXPECT_EQ(r.job(JobId(101))->state, JobState::kCompleted);
  EXPECT_EQ(r.dirty_dags(), wh.dirty_dags());
  // Recovery finished what the crash interrupted: the journal it carries
  // is the compacted suffix, based at the image's sequence.
  EXPECT_EQ(r.journal().base_seq(), wh.checkpoint_image()->seq);
  EXPECT_EQ(r.journal().next_seq(), wh.journal().next_seq());
  r.check_invariants();
}

TEST(Warehouse, DrainLedgerStaysExactAcrossCheckpoints) {
  // The drain-ledger regression: "completion-dirtied, not yet swept" is
  // invisible to the tables (no unplanned job, DAG still planning), so
  // the final re-mark pass cannot reconstruct it.  The image must carry
  // the live queue exactly, on whichever side of the checkpoint the
  // drain and the re-dirtying completion fall.
  DataWarehouse wh;
  wh.insert_dag(two_job_dag(100), "c", UserId(1), 0.0);
  wh.set_dag_state(DagId(100), DagState::kPlanning);
  wh.set_job_planned(JobId(101), SiteId(4), 1.0);
  wh.set_job_planned(JobId(102), SiteId(4), 1.0);
  (void)wh.drain_dirty_dags();  // drain point precedes every checkpoint

  const auto dirty_after_checkpoint_recovery = [&wh] {
    const auto recovered =
        DataWarehouse::recover_from(*wh.checkpoint_image(), wh.journal());
    EXPECT_TRUE(recovered.has_value());
    (*recovered)->check_invariants();
    return (*recovered)->dirty_dags();
  };

  // Completion lands *after* the checkpoint: image says idle, the
  // journal suffix re-marks the DAG.
  wh.checkpoint(2.0);
  wh.set_job_state(JobId(101), JobState::kCompleted);
  EXPECT_EQ(wh.dirty_dags(), std::vector<DagId>{DagId(100)});
  EXPECT_EQ(dirty_after_checkpoint_recovery(), wh.dirty_dags());

  // Completion precedes the *next* checkpoint: the suffix is empty and
  // only the image's captured queue knows the DAG is still pending.
  wh.checkpoint(3.0);
  EXPECT_TRUE(wh.journal().empty());
  EXPECT_EQ(wh.dirty_dags(), std::vector<DagId>{DagId(100)});
  EXPECT_EQ(dirty_after_checkpoint_recovery(), wh.dirty_dags());

  // And after the sweep drains it, a checkpointed recovery lands idle
  // again, even though the tables are identical to the pending case.
  (void)wh.drain_dirty_dags();
  wh.checkpoint(4.0);
  EXPECT_TRUE(wh.dirty_dags().empty());
  EXPECT_EQ(dirty_after_checkpoint_recovery(), wh.dirty_dags());
}

TEST(Warehouse, UnknownLookupsAreSafe) {
  DataWarehouse wh;
  EXPECT_FALSE(wh.dag(DagId(1)).has_value());
  EXPECT_FALSE(wh.job(JobId(1)).has_value());
  EXPECT_TRUE(wh.jobs_of_dag(DagId(1)).empty());
  EXPECT_EQ(wh.outstanding_on_site(SiteId(1)), 0);
  EXPECT_EQ(wh.site_stats(SiteId(1)).completed, 0);
}

}  // namespace
}  // namespace sphinx::core
