#pragma once
/// \file xml.hpp
/// Minimal XML document model, writer and parser.
///
/// SPHINX communicates over "communication protocols on XML such as SOAP
/// and XML-RPC" (paper section 3.1).  This layer provides exactly the XML
/// subset XML-RPC envelopes need: elements, attributes, character data and
/// the five predefined entities.  It is not a general XML processor.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace sphinx::rpc {

/// One XML element.  Children are owned; text is the concatenated
/// character data directly inside this element.
struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<XmlNode> children;
  std::string text;

  XmlNode() = default;
  explicit XmlNode(std::string n) : name(std::move(n)) {}
  XmlNode(std::string n, std::string t) : name(std::move(n)), text(std::move(t)) {}

  /// Appends a child and returns a reference to it.
  XmlNode& add_child(XmlNode child) {
    children.push_back(std::move(child));
    return children.back();
  }

  /// First child with the given element name; nullptr if absent.
  [[nodiscard]] const XmlNode* child(const std::string& name) const noexcept;

  /// All children with the given element name.
  [[nodiscard]] std::vector<const XmlNode*> children_named(
      const std::string& name) const;

  /// Attribute value or empty string.
  [[nodiscard]] std::string attribute(const std::string& key) const;
};

/// Escapes the five predefined entities in character data.
[[nodiscard]] std::string xml_escape(const std::string& raw);

/// Serializes a node (and subtree) to text.  \param indent pretty-print
/// when >= 0 (that many spaces per level); -1 emits compact output.
[[nodiscard]] std::string xml_write(const XmlNode& root, int indent = -1);

/// Parses one XML document (a single root element, optional `<?xml?>`
/// declaration).  Returns an error describing the first syntax problem.
[[nodiscard]] Expected<XmlNode> xml_parse(const std::string& text);

}  // namespace sphinx::rpc
