/// Ablation: workload shape (beyond the paper's fixed 10-job DAGs).
///
/// The paper's future work mentions "different types of workload to
/// reflect general and real applications".  This sweep varies DAG width
/// and depth: a bag of tasks (no dependencies), the paper's shape, and a
/// deep pipeline -- all at the same total job count.

#include "bench_common.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Ablation", "DAG shape sweep (300 jobs, completion-time)");

  std::vector<exp::TenantSpec> specs;
  exp::TenantOptions options;
  options.algorithm = core::Algorithm::kCompletionTime;
  specs.push_back({"completion-time", options});

  struct Shape {
    const char* name;
    int jobs_per_dag;
    int dag_count;
    int max_parents;
    int max_inputs;
  };
  const Shape shapes[] = {
      {"bag-of-tasks (30x10, flat)", 10, 30, 0, 3},
      {"paper shape (30x10, 2 par)", 10, 30, 2, 3},
      {"deep pipelines (15x20, 4 par)", 20, 15, 4, 4},
      {"wide dags (10x30, 1 par)", 30, 10, 1, 3},
  };

  std::printf("\n%-32s %-14s %-14s %-10s\n", "shape", "avg dag (s)",
              "avg idle (s)", "timeouts");
  for (const Shape& shape : shapes) {
    exp::ExperimentConfig config = paper_config(shape.dag_count);
    config.workload.jobs_per_dag = shape.jobs_per_dag;
    config.workload.max_parents = shape.max_parents;
    config.workload.max_inputs = shape.max_inputs;
    exp::Experiment experiment(config);
    const auto results = experiment.run(specs);
    const auto& r = results.front();
    std::printf("%-32s %-14.1f %-14.1f %-10zu\n", shape.name,
                r.avg_dag_completion, r.avg_job_idle, r.timeouts);
  }
  std::printf("\nexpectation: deeper DAGs serialize levels and lengthen "
              "completion despite identical job counts\n");
  return 0;
}
