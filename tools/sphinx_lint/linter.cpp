#include "linter.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace sphinx::lint {
namespace {

/// Files exempt from the determinism rules: the sanctioned time/rng
/// abstractions themselves, and the logger (which may later timestamp
/// real-world diagnostics without touching simulation results).
constexpr std::array<std::string_view, 3> kDeterminismWhitelist = {
    "src/common/time.hpp",
    "src/common/rng.hpp",
    "src/common/log.cpp",
};

[[nodiscard]] bool is_whitelisted(const std::string& rel_path) {
  return std::find(kDeterminismWhitelist.begin(), kDeterminismWhitelist.end(),
                   rel_path) != kDeterminismWhitelist.end();
}

[[nodiscard]] bool is_header(const std::string& rel_path) {
  return rel_path.ends_with(".hpp") || rel_path.ends_with(".h") ||
         rel_path.ends_with(".hh");
}

[[nodiscard]] bool is_library_code(const std::string& rel_path) {
  return rel_path.starts_with("src/");
}

/// Source text with comments and string/char literals blanked out
/// (newlines preserved), plus the comment text per line so inline
/// `sphinx-lint-allow(rule)` waivers can be honoured.
struct Stripped {
  std::string code;                        // blanked text, same offsets
  std::vector<std::string> raw_lines;      // original lines
  std::vector<std::set<std::string>> allow;  // per-line waived rules
};

[[nodiscard]] Stripped strip(std::string_view content) {
  enum class Mode {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  Stripped out;
  out.code.reserve(content.size());
  std::string raw_line;
  std::string comment_line;
  Mode mode = Mode::kCode;
  std::string raw_close;  // for raw strings: )delim"

  auto parse_allows = [&] {
    std::set<std::string> rules;
    std::size_t pos = 0;
    while ((pos = comment_line.find("sphinx-lint-allow(", pos)) !=
           std::string::npos) {
      pos += std::string_view("sphinx-lint-allow(").size();
      std::string rule;
      while (pos < comment_line.size() && comment_line[pos] != ')') {
        const char c = comment_line[pos++];
        if (c == ',') {
          if (!rule.empty()) rules.insert(rule);
          rule.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          rule.push_back(c);
        }
      }
      if (!rule.empty()) rules.insert(rule);
    }
    return rules;
  };

  auto end_line = [&] {
    out.raw_lines.push_back(raw_line);
    out.allow.push_back(parse_allows());
    raw_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (mode == Mode::kLineComment) mode = Mode::kCode;
      out.code.push_back('\n');
      end_line();
      continue;
    }
    raw_line.push_back(c);
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          out.code.append("  ");
          raw_line.push_back(next);
          ++i;
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          out.code.append("  ");
          raw_line.push_back(next);
          ++i;
        } else if (c == 'R' && next == '"') {
          // Raw string: R"delim( ... )delim".  Scan the delimiter.
          std::string delim;
          std::size_t j = i + 2;
          while (j < content.size() && content[j] != '(' &&
                 content[j] != '\n') {
            delim.push_back(content[j++]);
          }
          if (j < content.size() && content[j] == '(') {
            raw_close = ")" + delim + "\"";
            mode = Mode::kRawString;
            for (std::size_t k = i; k <= j; ++k) out.code.push_back(' ');
            raw_line.append(content.substr(i + 1, j - i));
            i = j;
          } else {
            out.code.push_back(c);  // not a raw string after all
          }
        } else if (c == '"') {
          mode = Mode::kString;
          out.code.push_back('"');
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not character literals: a
          // separator is always preceded by an alphanumeric character.
          const char prev = out.code.empty() ? '\0' : out.code.back();
          if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
            out.code.push_back(' ');
          } else {
            mode = Mode::kChar;
            out.code.push_back('\'');
          }
        } else {
          out.code.push_back(c);
        }
        break;
      case Mode::kLineComment:
        comment_line.push_back(c);
        out.code.push_back(' ');
        break;
      case Mode::kBlockComment:
        if (c == '*' && next == '/') {
          mode = Mode::kCode;
          out.code.append("  ");
          raw_line.push_back(next);
          ++i;
        } else {
          comment_line.push_back(c);
          out.code.push_back(' ');
        }
        break;
      case Mode::kString:
        if (c == '\\') {
          out.code.append("  ");
          if (next != '\0' && next != '\n') {
            raw_line.push_back(next);
            ++i;
          }
        } else if (c == '"') {
          mode = Mode::kCode;
          out.code.push_back('"');
        } else {
          out.code.push_back(' ');
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          out.code.append("  ");
          if (next != '\0' && next != '\n') {
            raw_line.push_back(next);
            ++i;
          }
        } else if (c == '\'') {
          mode = Mode::kCode;
          out.code.push_back('\'');
        } else {
          out.code.push_back(' ');
        }
        break;
      case Mode::kRawString:
        if (content.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k) {
            out.code.push_back(' ');
          }
          raw_line.append(content.substr(i + 1, raw_close.size() - 1));
          i += raw_close.size() - 1;
          mode = Mode::kCode;
        } else {
          out.code.push_back(' ');
        }
        break;
    }
  }
  end_line();
  return out;
}

/// 1-based line number of a byte offset in `text`.
[[nodiscard]] std::size_t line_of(std::string_view text, std::size_t offset) {
  return static_cast<std::size_t>(
             std::count(text.begin(), text.begin() + static_cast<long>(offset),
                        '\n')) +
         1;
}

struct RuleContext {
  const Stripped& stripped;
  const std::string& rel_path;
  std::vector<Finding>& findings;

  [[nodiscard]] bool allowed(std::size_t line, const std::string& rule) const {
    if (line == 0 || line > stripped.allow.size()) return false;
    const auto& rules = stripped.allow[line - 1];
    return rules.contains(rule) || rules.contains("all");
  }

  void report(std::size_t line, std::string rule, std::string message) const {
    if (allowed(line, rule)) return;
    findings.push_back(
        Finding{rel_path, line, std::move(rule), std::move(message)});
  }
};

/// Scans the stripped text with `re`, reporting `rule` at every match.
void scan(const RuleContext& ctx, const std::regex& re,
          const std::string& rule, const std::string& message) {
  const std::string_view text = ctx.stripped.code;
  auto begin = std::cregex_iterator(text.data(), text.data() + text.size(), re);
  for (auto it = begin; it != std::cregex_iterator(); ++it) {
    ctx.report(line_of(text, static_cast<std::size_t>(it->position(0))), rule,
               message);
  }
}

void rule_sim_clock(const RuleContext& ctx) {
  if (is_whitelisted(ctx.rel_path)) return;
  static const std::regex re(
      R"((\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b|\blocaltime\b|\bgmtime\b|\bgettimeofday\b|\bclock_gettime\b))");
  static const std::regex time_re(
      R"((^|[^\w.>])(time\s*\(\s*(NULL|nullptr|0)?\s*\)|clock\s*\(\s*\)))");
  const std::string msg =
      "wall-clock source; simulation time must come from the Engine clock "
      "(src/common/time.hpp)";
  scan(ctx, re, "sim-clock", msg);
  const std::string_view text = ctx.stripped.code;
  for (auto it = std::cregex_iterator(text.data(), text.data() + text.size(),
                                      time_re);
       it != std::cregex_iterator(); ++it) {
    const std::size_t offset =
        static_cast<std::size_t>(it->position(0)) +
        static_cast<std::size_t>((*it)[1].length());
    ctx.report(line_of(text, offset), "sim-clock", msg);
  }
}

void rule_sim_random(const RuleContext& ctx) {
  if (is_whitelisted(ctx.rel_path)) return;
  static const std::regex re(
      R"((\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bdrand48\b|\blrand48\b))");
  scan(ctx, re, "sim-random",
       "ambient randomness; draw from a seeded src/common/rng.hpp stream "
       "instead");
}

void rule_discarded_status(const RuleContext& ctx) {
  // Library code only: tests/benches/examples routinely discard handles
  // (submission ids, selector picks) on purpose; in src/ a (void) cast
  // is how a dropped Status hides.
  if (!is_library_code(ctx.rel_path)) return;
  static const std::regex re(
      R"(\(\s*void\s*\)\s*[A-Za-z_:][A-Za-z0-9_:<>.*\[\]\->]*\()");
  const std::string_view text = ctx.stripped.code;
  for (auto it =
           std::cregex_iterator(text.data(), text.data() + text.size(), re);
       it != std::cregex_iterator(); ++it) {
    const std::size_t offset = static_cast<std::size_t>(it->position(0));
    const std::size_t line = line_of(text, offset);
    // Deliberately invoking a throwing accessor inside a gtest assertion
    // is not a discarded result.
    const std::string& raw = ctx.stripped.raw_lines[line - 1];
    if (raw.find("EXPECT_THROW") != std::string::npos ||
        raw.find("ASSERT_THROW") != std::string::npos ||
        raw.find("EXPECT_NO_THROW") != std::string::npos ||
        raw.find("ASSERT_NO_THROW") != std::string::npos) {
      continue;
    }
    ctx.report(line, "discarded-status",
               "(void) cast discards a call result and defeats "
               "[[nodiscard]] on Expected/Status; handle the result or "
               "waive with sphinx-lint-allow(discarded-status)");
  }
}

void rule_naked_throw(const RuleContext& ctx) {
  static const std::regex re(R"(\bthrow\b\s*(;|[A-Za-z_:][\w:]*)?)");
  const std::string_view text = ctx.stripped.code;
  for (auto it =
           std::cregex_iterator(text.data(), text.data() + text.size(), re);
       it != std::cregex_iterator(); ++it) {
    std::string token = (*it)[1].matched ? it->str(1) : std::string();
    if (token == ";") continue;  // bare rethrow in a catch handler
    static const std::set<std::string> kAllowed = {
        "AssertionError",          "sphinx::AssertionError",
        "::sphinx::AssertionError", "ContractViolation",
        "sphinx::ContractViolation", "::sphinx::ContractViolation",
    };
    if (kAllowed.contains(token)) continue;
    ctx.report(line_of(text, static_cast<std::size_t>(it->position(0))),
               "naked-throw",
               "only AssertionError/ContractViolation may be thrown; "
               "operational failures travel as Expected/Status");
  }
}

void rule_iostream_include(const RuleContext& ctx) {
  if (!is_library_code(ctx.rel_path)) return;
  if (ctx.rel_path == "src/common/log.cpp") return;  // the logger itself
  // The flight recorder's export shim supports "-" (stdout) targets.
  if (ctx.rel_path == "src/obs/export.cpp") return;
  static const std::regex re(R"(^\s*#\s*include\s*<iostream>)");
  std::istringstream lines{std::string(ctx.stripped.code)};
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    if (std::regex_search(line, re)) {
      ctx.report(n, "iostream-include",
                 "library code must log through src/common/log.hpp, not "
                 "<iostream>");
    }
  }
}

void rule_header_hygiene(const RuleContext& ctx) {
  if (!is_header(ctx.rel_path)) return;
  const auto& raw = ctx.stripped.raw_lines;
  std::size_t first_nonempty = 0;
  while (first_nonempty < raw.size() &&
         raw[first_nonempty].find_first_not_of(" \t\r") == std::string::npos) {
    ++first_nonempty;
  }
  if (first_nonempty >= raw.size() ||
      raw[first_nonempty].rfind("#pragma once", 0) != 0) {
    ctx.report(1, "pragma-once", "headers must start with #pragma once");
  }
  const std::size_t limit = std::min<std::size_t>(raw.size(), 5);
  bool has_file_comment = false;
  for (std::size_t i = 0; i < limit; ++i) {
    const std::size_t start = raw[i].find_first_not_of(" \t");
    if (start != std::string::npos &&
        raw[i].compare(start, 9, "/// \\file") == 0) {
      has_file_comment = true;
      break;
    }
  }
  if (!has_file_comment) {
    ctx.report(1, "file-comment",
               "headers must carry a `/// \\file` comment near the top");
  }
}

}  // namespace

std::string Finding::to_string() const {
  return path + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::vector<std::pair<std::string, std::string>> rule_list() {
  return {
      {"sim-clock", "no wall-clock sources outside the whitelist"},
      {"sim-random", "no ambient randomness outside the whitelist"},
      {"discarded-status", "no (void) casts of call results"},
      {"naked-throw", "throw only AssertionError/ContractViolation"},
      {"iostream-include", "no <iostream> in library code (src/)"},
      {"pragma-once", "headers start with #pragma once"},
      {"file-comment", "headers carry a /// \\file comment"},
  };
}

std::vector<Finding> lint_source(std::string_view content,
                                 const std::string& rel_path) {
  const Stripped stripped = strip(content);
  std::vector<Finding> findings;
  const RuleContext ctx{stripped, rel_path, findings};
  rule_sim_clock(ctx);
  rule_sim_random(ctx);
  rule_discarded_status(ctx);
  rule_naked_throw(ctx);
  rule_iostream_include(ctx);
  rule_header_hygiene(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::vector<std::string>& entries,
                               std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  const auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
           ext == ".h" || ext == ".hh";
  };

  std::vector<fs::path> files;
  for (const std::string& entry : entries) {
    const fs::path base = root / entry;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
    } else if (fs::is_directory(base, ec)) {
      for (auto it = fs::recursive_directory_iterator(base, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (errors != nullptr) {
      errors->push_back("no such file or directory: " + base.string());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      if (errors != nullptr) errors->push_back("cannot read " + file.string());
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel =
        fs::relative(file, root).generic_string();  // '/'-separated
    for (Finding& f : lint_source(buffer.str(), rel)) {
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

}  // namespace sphinx::lint
