// Fixture: (void)-discarding call results must trip discarded-status.
struct Status {
  bool ok() const { return true; }
};

Status do_work();

struct Worker {
  Status run();
};

void discard_everything(Worker& w) {
  (void)do_work();
  (void)w.run();
}
