file(REMOVE_RECURSE
  "CMakeFiles/fig4_algorithms_60.dir/fig4_algorithms_60.cpp.o"
  "CMakeFiles/fig4_algorithms_60.dir/fig4_algorithms_60.cpp.o.d"
  "fig4_algorithms_60"
  "fig4_algorithms_60.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_algorithms_60.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
