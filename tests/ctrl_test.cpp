// Control-plane tests: the journaled lease table (grant / renew / fence /
// expire / transfer / recovery), shard naming, and the coordinator +
// heartbeat integration on a bare engine and bus -- expiry detection,
// adoption with retry, epoch fencing, and coordinator recovery from its
// own journal.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ctrl/coordinator.hpp"
#include "ctrl/heartbeat.hpp"
#include "ctrl/lease.hpp"
#include "ctrl/shard.hpp"
#include "rpc/gsi.hpp"
#include "rpc/transport.hpp"
#include "sim/engine.hpp"

namespace sphinx::ctrl {
namespace {

rpc::Proxy control_proxy(SimTime now = 0.0) {
  return rpc::Proxy(
      rpc::Identity{"/CN=sphinx-control-plane", "/CN=iGOC CA"}, "ivdgl", {},
      now, hours(24 * 365));
}

// --- shard naming -----------------------------------------------------------

TEST(Shard, RoundRobinAssignmentAndNames) {
  EXPECT_EQ(shard_of(0, 2), 0u);
  EXPECT_EQ(shard_of(1, 2), 1u);
  EXPECT_EQ(shard_of(2, 2), 0u);
  EXPECT_EQ(shard_of(5, 1), 0u);
  EXPECT_EQ(shard_name(3), "shard:3");
  EXPECT_EQ(scheduler_name(2), "scheduler#2");
}

// --- lease table ------------------------------------------------------------

TEST(LeaseTable, GrantRenewAndLookup) {
  LeaseTable table;
  EXPECT_EQ(table.grant("shard:0", "scheduler#0", 0.0, 3.0), 1u);
  const auto lease = table.lookup("shard:0");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->owner, "scheduler#0");
  EXPECT_EQ(lease->epoch, 1u);
  EXPECT_DOUBLE_EQ(lease->expires_at, 3.0);
  EXPECT_TRUE(lease->live);

  EXPECT_EQ(table.renew("shard:0", "scheduler#0", 1, 2.0, 3.0),
            RenewOutcome::kRenewed);
  EXPECT_DOUBLE_EQ(table.lookup("shard:0")->expires_at, 5.0);
  EXPECT_EQ(table.renew("missing", "scheduler#0", 1, 2.0, 3.0),
            RenewOutcome::kUnknownShard);
  EXPECT_FALSE(table.lookup("missing").has_value());
}

TEST(LeaseTable, StaleEpochAndDeadLeaseAreFenced) {
  LeaseTable table;
  table.grant("shard:0", "scheduler#0", 0.0, 3.0);

  // Wrong owner and wrong epoch both fence.
  EXPECT_EQ(table.renew("shard:0", "scheduler#1", 1, 1.0, 3.0),
            RenewOutcome::kFenced);
  EXPECT_EQ(table.renew("shard:0", "scheduler#0", 2, 1.0, 3.0),
            RenewOutcome::kFenced);

  // A dead lease fences even its own owner at the right epoch: the owner
  // was declared failed and must not resurrect itself by renewing.
  table.mark_expired("shard:0");
  EXPECT_EQ(table.renew("shard:0", "scheduler#0", 1, 1.0, 3.0),
            RenewOutcome::kFenced);
}

TEST(LeaseTable, ExpiredAndDeadListsInGrantOrder) {
  LeaseTable table;
  table.grant("shard:1", "scheduler#1", 0.0, 3.0);
  table.grant("shard:0", "scheduler#0", 0.0, 5.0);
  EXPECT_TRUE(table.expired(2.9).empty());

  const auto at3 = table.expired(3.0);  // deadline is inclusive
  ASSERT_EQ(at3.size(), 1u);
  EXPECT_EQ(at3[0].shard, "shard:1");

  const auto at5 = table.expired(5.0);
  ASSERT_EQ(at5.size(), 2u);
  EXPECT_EQ(at5[0].shard, "shard:1");  // grant order, not name order
  EXPECT_EQ(at5[1].shard, "shard:0");

  // mark_expired moves a lease from expired() to dead() exactly once.
  EXPECT_TRUE(table.dead().empty());
  table.mark_expired("shard:1");
  EXPECT_EQ(table.expired(5.0).size(), 1u);
  const auto dead = table.dead();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].shard, "shard:1");
  EXPECT_FALSE(dead[0].live);
}

TEST(LeaseTable, TransferBumpsEpochAndRevives) {
  LeaseTable table;
  table.grant("shard:0", "scheduler#0", 0.0, 3.0);
  table.mark_expired("shard:0");
  EXPECT_EQ(table.transfer("shard:0", "scheduler#1", 4.0, 3.0), 2u);
  const auto lease = table.lookup("shard:0");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->owner, "scheduler#1");
  EXPECT_EQ(lease->epoch, 2u);
  EXPECT_TRUE(lease->live);
  EXPECT_DOUBLE_EQ(lease->expires_at, 7.0);
  EXPECT_TRUE(table.dead().empty());

  // The new owner renews under the new epoch; the fenced one cannot.
  EXPECT_EQ(table.renew("shard:0", "scheduler#1", 2, 5.0, 3.0),
            RenewOutcome::kRenewed);
  EXPECT_EQ(table.renew("shard:0", "scheduler#0", 1, 5.0, 3.0),
            RenewOutcome::kFenced);
}

TEST(LeaseTable, FirstLiveOwnerSkipsExcludedDeadAndOverdue) {
  LeaseTable table;
  table.grant("shard:0", "scheduler#0", 0.0, 3.0);
  table.grant("shard:1", "scheduler#1", 0.0, 10.0);
  table.grant("shard:2", "scheduler#2", 0.0, 10.0);

  EXPECT_EQ(table.first_live_owner(1.0, "scheduler#0"), "scheduler#1");
  EXPECT_EQ(table.first_live_owner(1.0, ""), "scheduler#0");
  // Overdue leases do not vouch for their owner.
  EXPECT_EQ(table.first_live_owner(4.0, ""), "scheduler#1");
  table.mark_expired("shard:1");
  EXPECT_EQ(table.first_live_owner(4.0, ""), "scheduler#2");
  EXPECT_FALSE(table.first_live_owner(4.0, "scheduler#2").has_value());
}

TEST(LeaseTable, JournalRecoveryIsByteExact) {
  LeaseTable table;
  table.grant("shard:0", "scheduler#0", 0.0, 3.0);
  table.grant("shard:1", "scheduler#1", 0.0, 3.0);
  table.renew("shard:0", "scheduler#0", 1, 1.0, 3.0);
  table.mark_expired("shard:1");
  table.transfer("shard:1", "scheduler#0", 4.0, 3.0);

  LeaseTable recovered;
  ASSERT_TRUE(recovered.recover_from(table.journal()).ok());
  recovered.check_invariants();
  EXPECT_EQ(recovered.journal().serialize(), table.journal().serialize());
  const auto lease = recovered.lookup("shard:1");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->owner, "scheduler#0");
  EXPECT_EQ(lease->epoch, 2u);
  EXPECT_EQ(recovered.leases().size(), 2u);
}

// --- coordinator + heartbeat integration ------------------------------------

class CtrlFixture : public ::testing::Test {
 protected:
  CtrlFixture() { bus.set_control_stream("ctrl/", Rng(99)); }

  std::unique_ptr<HeartbeatAgent> make_agent(std::size_t shard_idx,
                                             std::size_t owner_idx,
                                             std::uint64_t epoch,
                                             Duration phase = 0.25) {
    HeartbeatConfig config;
    config.period = 1.0;
    config.phase = phase;
    return std::make_unique<HeartbeatAgent>(
        bus, shard_name(shard_idx), scheduler_name(owner_idx), epoch, config,
        control_proxy());
  }

  sim::Engine engine;
  rpc::MessageBus bus{engine, Rng(1), 0.05, 0.05};
  CoordinatorConfig config;  // ttl 3, monitor period 1
  LeaseCoordinator coordinator{bus, config};
};

TEST_F(CtrlFixture, RenewalsKeepTheLeaseAliveIndefinitely) {
  coordinator.grant(shard_name(0), scheduler_name(0));
  auto agent = make_agent(0, 0, 1);
  coordinator.start();
  agent->start();
  engine.schedule_at(60.0, "stop", [&] { engine.stop(); });
  engine.run_until();
  EXPECT_TRUE(agent->running());
  EXPECT_FALSE(agent->fenced());
  EXPECT_GT(agent->renewals(), 50u);
  EXPECT_EQ(coordinator.stats().expirations, 0u);
  EXPECT_GT(coordinator.stats().renewals, 50u);
  EXPECT_TRUE(coordinator.leases().lookup(shard_name(0))->live);
}

TEST_F(CtrlFixture, SilentOwnerExpiresAndSurvivorAdopts) {
  coordinator.grant(shard_name(0), scheduler_name(0));
  coordinator.grant(shard_name(1), scheduler_name(1));
  auto dead_agent = make_agent(0, 0, 1, 0.25);
  auto live_agent = make_agent(1, 1, 1, 0.35);

  std::vector<std::string> adopted_shards;
  std::string adopter;
  std::uint64_t adopted_epoch = 0;
  std::unique_ptr<HeartbeatAgent> adopted_agent;
  coordinator.set_adopt_handler(
      [&](const std::string& shard, const std::string& dead_owner,
          const std::string& new_owner) -> StatusOrError {
        EXPECT_EQ(shard, shard_name(0));
        EXPECT_EQ(dead_owner, scheduler_name(0));
        adopted_shards.push_back(shard);
        adopter = new_owner;
        return StatusOrError{};
      });
  // The adopter starts heartbeating the shard under its new epoch, just
  // as a real scheduler would -- otherwise the adopted lease goes silent
  // and expires all over again.
  coordinator.set_adopted_callback(
      [&](const std::string&, const std::string&, std::uint64_t epoch) {
        adopted_epoch = epoch;
        adopted_agent = make_agent(0, 1, epoch, 0.45);
        adopted_agent->start();
      });

  coordinator.start();
  dead_agent->start();
  live_agent->start();
  engine.schedule_at(10.0, "kill", [&] { dead_agent.reset(); });
  engine.schedule_at(30.0, "stop", [&] { engine.stop(); });
  engine.run_until();

  EXPECT_EQ(coordinator.stats().expirations, 1u);
  EXPECT_EQ(coordinator.stats().adoptions, 1u);
  ASSERT_EQ(adopted_shards.size(), 1u);  // adopted exactly once
  EXPECT_EQ(adopter, scheduler_name(1));
  EXPECT_EQ(adopted_epoch, 2u);
  const auto lease = coordinator.leases().lookup(shard_name(0));
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->owner, scheduler_name(1));
  EXPECT_TRUE(lease->live);
  // The survivor's own shard never wobbled.
  EXPECT_EQ(coordinator.leases().lookup(shard_name(1))->epoch, 1u);
}

TEST_F(CtrlFixture, FailedAdoptionIsRetriedNextSweep) {
  coordinator.grant(shard_name(0), scheduler_name(0));
  coordinator.grant(shard_name(1), scheduler_name(1));
  auto live_agent = make_agent(1, 1, 1, 0.35);

  std::size_t attempts = 0;
  std::unique_ptr<HeartbeatAgent> adopted_agent;
  coordinator.set_adopt_handler(
      [&](const std::string&, const std::string&,
          const std::string&) -> StatusOrError {
        ++attempts;
        if (attempts < 3) {
          return make_error("adopt", "recovery failed");
        }
        return StatusOrError{};
      });
  coordinator.set_adopted_callback(
      [&](const std::string&, const std::string&, std::uint64_t epoch) {
        adopted_agent = make_agent(0, 1, epoch, 0.45);
        adopted_agent->start();
      });

  coordinator.start();
  live_agent->start();  // shard:0's owner never beats at all
  engine.schedule_at(20.0, "stop", [&] { engine.stop(); });
  engine.run_until();

  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(coordinator.stats().failed_adoptions, 2u);
  EXPECT_EQ(coordinator.stats().adoptions, 1u);
  EXPECT_EQ(coordinator.stats().expirations, 1u);  // declared dead once
  EXPECT_EQ(coordinator.leases().lookup(shard_name(0))->owner,
            scheduler_name(1));
}

TEST_F(CtrlFixture, AdoptionWaitsWhenNoLiveCandidateExists) {
  coordinator.grant(shard_name(0), scheduler_name(0));
  std::size_t attempts = 0;
  coordinator.set_adopt_handler(
      [&](const std::string&, const std::string&,
          const std::string&) -> StatusOrError {
        ++attempts;
        return StatusOrError{};
      });
  coordinator.start();  // the only owner never beats
  engine.schedule_at(10.0, "stop", [&] { engine.stop(); });
  engine.run_until();
  EXPECT_EQ(attempts, 0u);
  EXPECT_EQ(coordinator.stats().expirations, 1u);
  EXPECT_GT(coordinator.stats().failed_adoptions, 0u);
  EXPECT_FALSE(coordinator.leases().lookup(shard_name(0))->live);
}

TEST_F(CtrlFixture, ResurrectedOwnerIsFencedAndStopsItself) {
  coordinator.grant(shard_name(0), scheduler_name(0));
  coordinator.grant(shard_name(1), scheduler_name(1));
  auto old_agent = make_agent(0, 0, 1, 0.25);
  auto live_agent = make_agent(1, 1, 1, 0.35);
  std::unique_ptr<HeartbeatAgent> adopted_agent;
  coordinator.set_adopt_handler(
      [](const std::string&, const std::string&,
         const std::string&) -> StatusOrError {
        return StatusOrError{};
      });
  coordinator.set_adopted_callback(
      [&](const std::string&, const std::string&, std::uint64_t epoch) {
        adopted_agent = make_agent(0, 1, epoch, 0.45);
        adopted_agent->start();
      });

  coordinator.start();
  old_agent->start();
  live_agent->start();
  // Pause (not destroy) the owner: long enough to lose the lease, then it
  // comes back and beats with its original, now-stale epoch.
  engine.schedule_at(10.0, "pause", [&] { old_agent->stop(); });
  engine.schedule_at(20.0, "resume", [&] { old_agent->start(); });
  engine.schedule_at(30.0, "stop", [&] { engine.stop(); });
  engine.run_until();

  EXPECT_EQ(coordinator.stats().adoptions, 1u);
  EXPECT_GT(coordinator.stats().fenced, 0u);
  EXPECT_TRUE(old_agent->fenced());
  EXPECT_FALSE(old_agent->running());  // stopped itself, stays stopped
  EXPECT_EQ(coordinator.leases().lookup(shard_name(0))->owner,
            scheduler_name(1));
}

TEST_F(CtrlFixture, CoordinatorRecoversOwnershipFromItsJournal) {
  coordinator.grant(shard_name(0), scheduler_name(0));
  coordinator.grant(shard_name(1), scheduler_name(1));
  auto agent0 = make_agent(0, 0, 1, 0.25);
  auto agent1 = make_agent(1, 1, 1, 0.35);
  std::unique_ptr<HeartbeatAgent> adopted_agent;
  coordinator.set_adopt_handler(
      [](const std::string&, const std::string&,
         const std::string&) -> StatusOrError {
        return StatusOrError{};
      });
  coordinator.set_adopted_callback(
      [&](const std::string&, const std::string&, std::uint64_t epoch) {
        adopted_agent = make_agent(0, 1, epoch, 0.45);
        adopted_agent->start();
      });
  coordinator.start();
  agent0->start();
  agent1->start();
  engine.schedule_at(10.0, "kill", [&] { agent0.reset(); });
  engine.schedule_at(30.0, "stop", [&] { engine.stop(); });
  engine.run_until();
  ASSERT_EQ(coordinator.stats().adoptions, 1u);

  // Kill the coordinator and rebuild a replacement from its journal on a
  // second bus: owners, epochs and deadlines must all survive, so the
  // replacement fences exactly the owners the dead one would have.
  coordinator.stop();
  sim::Engine engine2;
  rpc::MessageBus bus2{engine2, Rng(2), 0.05, 0.05};
  auto recovered = LeaseCoordinator::recover(
      bus2, config, coordinator.leases().journal());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ((*recovered)->leases().journal().serialize(),
            coordinator.leases().journal().serialize());
  const auto lease = (*recovered)->leases().lookup(shard_name(0));
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->owner, scheduler_name(1));
  EXPECT_EQ(lease->epoch, 2u);
}

}  // namespace
}  // namespace sphinx::ctrl
