#pragma once
/// \file storage.hpp
/// Per-site storage elements with capacity and per-user accounting.
///
/// Output files land on the execution site's storage element; per-user
/// usage feeds the policy engine's disk-quota constraint ("complex policy
/// issues like hard disk quota", paper section 2).

#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "data/lfn.hpp"

namespace sphinx::data {

/// One site's storage element.
class StorageElement {
 public:
  StorageElement(SiteId site, double capacity_bytes);

  [[nodiscard]] SiteId site() const noexcept { return site_; }
  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] double used() const noexcept { return used_; }
  [[nodiscard]] double free_space() const noexcept { return capacity_ - used_; }
  [[nodiscard]] double used_by(UserId user) const noexcept;

  /// Stores a file for `user`.  Fails (without side effects) when the
  /// element is full or the lfn is already stored here.
  [[nodiscard]] StatusOrError store(UserId user, const Lfn& lfn, double bytes);

  /// Deletes a stored file; returns false if absent.
  bool erase(const Lfn& lfn);

  [[nodiscard]] bool has(const Lfn& lfn) const noexcept {
    return files_.contains(lfn);
  }
  [[nodiscard]] std::size_t file_count() const noexcept { return files_.size(); }

 private:
  struct StoredFile {
    UserId owner;
    double bytes = 0.0;
  };

  SiteId site_;
  double capacity_;
  double used_ = 0.0;
  std::unordered_map<Lfn, StoredFile> files_;
  std::unordered_map<UserId, double> per_user_;
};

/// Registry of storage elements, one per site.
class StorageFabric {
 public:
  /// Creates the storage element for a site (idempotent; first call wins).
  StorageElement& add(SiteId site, double capacity_bytes);
  [[nodiscard]] StorageElement* find(SiteId site) noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return elements_.size(); }

 private:
  std::unordered_map<SiteId, StorageElement> elements_;
};

}  // namespace sphinx::data
