#include "ctrl/heartbeat.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace sphinx::ctrl {

HeartbeatAgent::HeartbeatAgent(rpc::MessageBus& bus, std::string shard,
                               std::string owner, std::uint64_t epoch,
                               HeartbeatConfig config, rpc::Proxy proxy)
    : shard_(std::move(shard)),
      owner_(std::move(owner)),
      epoch_(epoch),
      config_(std::move(config)) {
  SPHINX_PRECONDITION(config_.period > 0, "heartbeat period must be positive");
  // One transmission per beat: a lost beat is simply superseded by the
  // next one, so the retry budget is a single attempt with the timeout at
  // the beat period (a straggler reply never outlives its beat by more
  // than one period).
  rpc::RetryPolicy retry;
  retry.timeout = config_.period;
  retry.max_timeout = config_.period;
  retry.backoff = 1.0;
  retry.jitter = 0.0;
  retry.max_attempts = 1;
  client_ = std::make_unique<rpc::ClarensClient>(
      bus, "ctrl/hb/" + owner_ + "/" + shard_, std::move(proxy), retry);
  beat_ = std::make_unique<sim::PeriodicProcess>(
      bus.engine(), "ctrl-heartbeat:" + owner_ + "/" + shard_, config_.period,
      [this] { beat(); }, config_.phase);
}

HeartbeatAgent::~HeartbeatAgent() = default;

void HeartbeatAgent::start() { beat_->start(); }
void HeartbeatAgent::stop() { beat_->stop(); }

void HeartbeatAgent::beat() {
  client_->call(
      config_.coordinator, "ctrl.renew",
      {rpc::XrValue(shard_), rpc::XrValue(owner_),
       rpc::XrValue(static_cast<std::int64_t>(epoch_))},
      [this](Expected<rpc::XrValue> result) {
        if (!result || !result->is_string()) {
          ++missed_;
          return;
        }
        const std::string& verdict = result->as_string();
        if (verdict == "renewed") {
          ++renewals_;
          return;
        }
        if (verdict == "fenced") {
          // The shard was adopted out from under us.  Stop immediately:
          // continuing to beat (or to schedule) on a lost shard is the
          // split-brain the epoch exists to prevent.
          fenced_ = true;
          beat_->stop();
          return;
        }
        ++missed_;  // "unknown" -- coordinator lost our grant
      });
}

}  // namespace sphinx::ctrl
