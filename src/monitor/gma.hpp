#pragma once
/// \file gma.hpp
/// Grid Monitoring Architecture (GMA) style metric registry.
///
/// The paper's monitoring interface "provides a buffer between external
/// monitoring services (such as MDS, GEMS, VO-Ganglia, MonALISA, and
/// Hawkeye) and the SPHINX scheduling system ... developed as an SDK so
/// that specific implementations are easily constructed" (section 3.4).
/// The era's standard shape for that buffer is the GGF Grid Monitoring
/// Architecture: *producers* publish timestamped metrics into a
/// *registry*; *consumers* subscribe by metric name (and optionally
/// site) or query the latest/history on demand.
///
/// MonitoringService publishes its condor_q-style observations here when
/// attached; any other producer (GEMS gossip, Hawkeye, a test) can
/// publish alongside it, and schedulers-to-be can consume without caring
/// which system measured what.

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace sphinx::monitor {

/// One timestamped observation.
struct Metric {
  std::string name;    ///< e.g. "queue.length", "cpu.free", "site.alive"
  SiteId site;         ///< invalid for grid-wide metrics
  double value = 0.0;
  SimTime timestamp = 0.0;
  std::string producer;  ///< which monitoring system measured it
};

/// Subscription handle.
class SubscriptionId {
 public:
  constexpr SubscriptionId() noexcept = default;
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0; }
  friend constexpr bool operator==(SubscriptionId, SubscriptionId) noexcept =
      default;

 private:
  friend class MetricRegistry;
  constexpr explicit SubscriptionId(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

class MetricRegistry {
 public:
  using Callback = std::function<void(const Metric&)>;

  /// \param history_limit observations retained per (name, site) series;
  /// must be >= 1 (contract-checked) -- the deques are bounded, eldest
  /// evicted first, so long runs cannot grow the registry without limit.
  explicit MetricRegistry(std::size_t history_limit = 64);

  /// Retargets the per-series retention cap at runtime; series already
  /// over the new cap are trimmed immediately (eldest first).
  void set_history_limit(std::size_t history_limit);
  [[nodiscard]] std::size_t history_limit() const noexcept {
    return history_limit_;
  }

  /// Producer API: publishes one observation and fans it out to matching
  /// subscribers.
  void publish(Metric metric);

  /// Consumer API: subscribes to every metric named `name`; a valid
  /// `site` narrows to one site's series.  The name "*" subscribes to
  /// *every* metric regardless of name (the flight-recorder bridge).
  SubscriptionId subscribe(std::string name, Callback callback,
                           SiteId site = SiteId());
  /// Cancels a subscription (no-op for unknown ids).
  void unsubscribe(SubscriptionId id);

  /// Latest observation of a series; nullopt when never published.
  [[nodiscard]] std::optional<Metric> latest(const std::string& name,
                                             SiteId site) const;

  /// Observations of a series not older than `since` (oldest first).
  [[nodiscard]] std::vector<Metric> history(const std::string& name,
                                            SiteId site,
                                            SimTime since = 0.0) const;

  /// Mean of the series values not older than `since`; nullopt when the
  /// window is empty.  (The aggregation consumers like a scheduler SDK
  /// would otherwise each reimplement.)
  [[nodiscard]] std::optional<double> mean_since(const std::string& name,
                                                 SiteId site,
                                                 SimTime since) const;

  /// Distinct metric names ever published (the registry's "directory").
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t published() const noexcept { return published_; }
  [[nodiscard]] std::size_t subscriptions() const noexcept {
    return subscribers_.size();
  }

 private:
  struct SeriesKey {
    std::string name;
    SiteId site;
    bool operator==(const SeriesKey&) const = default;
  };
  struct SeriesKeyHash {
    std::size_t operator()(const SeriesKey& key) const noexcept {
      return std::hash<std::string>{}(key.name) ^
             (std::hash<std::uint64_t>{}(key.site.value()) << 1);
    }
  };
  struct Subscriber {
    std::uint64_t id;
    std::string name;
    SiteId site;  ///< invalid = all sites
    Callback callback;
  };

  std::size_t history_limit_;
  std::unordered_map<SeriesKey, std::deque<Metric>, SeriesKeyHash> series_;
  std::vector<Subscriber> subscribers_;
  std::uint64_t next_subscription_ = 1;
  std::size_t published_ = 0;
};

}  // namespace sphinx::monitor
