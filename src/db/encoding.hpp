#pragma once
/// \file encoding.hpp
/// Shared text codec for the db persistence formats.
///
/// The journal and the checkpoint snapshot serialize through the same
/// line-oriented building blocks: backslash-escaped fields, tagged
/// "type:payload" values, and "name=type[!]" column specs.  One codec
/// for both formats guarantees they can never drift apart -- a snapshot
/// restored and re-journaled must reproduce the exact bytes the journal
/// would have written for the same cells.

#include <string>

#include "common/error.hpp"
#include "db/table.hpp"
#include "db/value.hpp"

namespace sphinx::db {

/// Escapes tabs/newlines/backslashes so records stay line-oriented.
[[nodiscard]] std::string escape_field(const std::string& s);
/// Length escape_field(s) would have, without building the string.
[[nodiscard]] std::size_t escaped_size(const std::string& s) noexcept;
[[nodiscard]] Expected<std::string> unescape_field(const std::string& s);

/// Serializes a value as "type:payload" (reals at precision 17, so the
/// bit pattern round-trips).  Inverse of decode_value.
[[nodiscard]] std::string encode_value(const Value& v);
[[nodiscard]] Expected<Value> decode_value(const std::string& s);

/// Column spec "name=type", with a trailing '!' marking an indexed
/// column (the index set is part of the persisted schema).
[[nodiscard]] std::string encode_column(const Column& column);
[[nodiscard]] Expected<Column> decode_column(const std::string& spec);

[[nodiscard]] Expected<ValueType> decode_type(const std::string& s);

}  // namespace sphinx::db
