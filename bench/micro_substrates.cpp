/// Microbenchmarks for the data substrates the planner leans on: RLS
/// lookups (single vs clubbed), replica selection, the GridFTP fluid
/// model, and XML-RPC wire costs.

#include <benchmark/benchmark.h>

#include "core/codec.hpp"
#include "data/gridftp.hpp"
#include "data/replication.hpp"
#include "data/rls.hpp"
#include "rpc/xmlrpc.hpp"
#include "workflow/generator.hpp"

namespace {

using namespace sphinx;

data::ReplicaLocationService make_rls(int lfns, int replicas_per) {
  data::ReplicaLocationService rls;
  for (int i = 0; i < lfns; ++i) {
    for (int r = 0; r < replicas_per; ++r) {
      rls.register_replica("lfn://bench/f" + std::to_string(i),
                           SiteId(static_cast<std::uint64_t>(1 + (i + r) % 15)),
                           1e8);
    }
  }
  return rls;
}

void BM_RlsLocateSingle(benchmark::State& state) {
  const auto rls = make_rls(10000, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rls.locate("lfn://bench/f" + std::to_string(i++ % 10000)));
  }
}
BENCHMARK(BM_RlsLocateSingle);

void BM_RlsLocateBulk(benchmark::State& state) {
  // The "clubbed" call SPHINX uses for whole-DAG reduction.
  const auto rls = make_rls(10000, 2);
  std::vector<data::Lfn> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back("lfn://bench/f" + std::to_string(i * 97 % 10000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rls.locate_bulk(batch));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RlsLocateBulk);

void BM_ReplicaSelection(benchmark::State& state) {
  sim::Engine engine;
  data::TransferService transfers(engine);
  for (std::uint64_t s = 1; s <= 15; ++s) {
    transfers.set_link(SiteId(s), {10e6 * static_cast<double>(s), 10e6});
  }
  std::vector<data::Replica> replicas;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    replicas.push_back({"lfn://x", SiteId(s), 1.5e8});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data::select_replica(replicas, SiteId(15), transfers));
  }
}
BENCHMARK(BM_ReplicaSelection);

void BM_GridFtpChurn(benchmark::State& state) {
  // Continuous arrivals/completions exercise the fluid rebalancing.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    data::TransferService transfers(engine);
    for (std::uint64_t s = 1; s <= 15; ++s) {
      transfers.set_link(SiteId(s), {20e6, 20e6});
    }
    int done = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<double>(i), "xfer", [&, i] {
        transfers.transfer(SiteId(1 + i % 15), SiteId(1 + (i + 7) % 15), 5e7,
                           [&done](TransferId, Duration) { ++done; });
      });
    }
    engine.run_until();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridFtpChurn)->Range(64, 1024);

void BM_XmlRpcDagRoundTrip(benchmark::State& state) {
  workflow::IdSpace ids;
  data::ReplicaLocationService rls;
  workflow::WorkloadGenerator generator(workflow::WorkloadConfig{}, Rng(1),
                                        ids, rls, {SiteId(1), SiteId(2)});
  const workflow::Dag dag = generator.generate("wire");
  for (auto _ : state) {
    rpc::MethodCall call;
    call.method = "sphinx.submit_dag";
    call.params = {rpc::XrValue("client"), rpc::XrValue(1),
                   core::encode_dag(dag)};
    const std::string wire = call.serialize();
    const auto parsed = rpc::MethodCall::parse(wire);
    benchmark::DoNotOptimize(core::decode_dag(parsed->params[2]));
  }
}
BENCHMARK(BM_XmlRpcDagRoundTrip);

void BM_XmlRpcReportRoundTrip(benchmark::State& state) {
  core::TrackerReport report;
  report.job = JobId(42);
  report.kind = core::ReportKind::kCompleted;
  report.site = SiteId(3);
  report.completion_time = 321.5;
  for (auto _ : state) {
    rpc::MethodCall call;
    call.method = "sphinx.report";
    call.params = {core::encode_report(report)};
    const auto parsed = rpc::MethodCall::parse(call.serialize());
    benchmark::DoNotOptimize(core::decode_report(parsed->params[0]));
  }
}
BENCHMARK(BM_XmlRpcReportRoundTrip);

}  // namespace
