/// \file two.cpp
/// Fixture: ...and module src/beta declares the same label, entangling
/// both modules' draw sequences.

#include <string>

namespace fixture {

struct Seeds {
  int stream(const std::string& label) const;
};

int beta_draw(const Seeds& seeds) { return seeds.stream("shared-label"); }

}  // namespace fixture
