#pragma once
/// \file stats.hpp
/// Descriptive statistics used by the prediction module, the monitoring
/// aggregator and the experiment reports.

#include <cstddef>
#include <vector>

namespace sphinx {

/// Online accumulator for mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void clear() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  /// Mean of the observations; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially-weighted moving average, used by the prediction module to
/// track per-site job completion times (recent behaviour matters more on a
/// dynamic grid).
class Ewma {
 public:
  /// \param alpha weight of the newest observation, in (0, 1].
  explicit Ewma(double alpha = 0.3) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    if (n_ == 0) {
      value_ = x;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    ++n_;
  }

  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Current smoothed value; 0 when empty.
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  std::size_t n_ = 0;
};

/// Percentile over a snapshot of samples.  `q` in [0, 1]; linear
/// interpolation between order statistics.  Returns 0 for empty input.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

}  // namespace sphinx
