#pragma once
/// \file checkpoint.hpp
/// The warehouse checkpoint image: snapshot + replay-start sequence.
///
/// A checkpoint makes recovery O(state) instead of O(history): the image
/// freezes everything a recovered server needs that the journal suffix
/// cannot reproduce -- the database snapshot (tables, rows, schemas with
/// their index declarations, allocation cursors) plus the derived
/// dirty-DAG queue, which is history rather than a function of the
/// tables (see DataWarehouse::rebuild_work_state).  `seq` marks the
/// journal sequence the snapshot reflects: replaying entries >= seq on
/// top of the restored image reproduces the crashed warehouse exactly.

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "db/table.hpp"

namespace sphinx::core {

struct CheckpointImage {
  /// Journal sequence number the snapshot reflects; recovery replays the
  /// suffix with sequence >= seq on top of the restored snapshot.
  std::uint64_t seq = 0;
  /// Sim time of publication -- re-seeds the period-based checkpoint
  /// policy on the recovered instance so baseline and recovered runs
  /// keep checkpointing in lockstep.
  SimTime at = 0.0;
  /// db::Database::snapshot() image.
  std::string database;
  /// Dirty-DAG work queue (dags-table row ids, ascending) at the
  /// checkpoint.  Folded into the image because drain points at or
  /// before the checkpoint are compacted out of the journal with the
  /// rest of the prefix.
  std::vector<db::RowId> dirty_rows;

  /// Deterministic text form (for tests and footprint accounting).
  /// Round-trips via parse().
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static Expected<CheckpointImage> parse(
      const std::string& text);
};

}  // namespace sphinx::core
