#include "grid/failure.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "obs/recorder.hpp"

namespace sphinx::grid {
namespace {

bool weight_ok(double w) { return std::isfinite(w) && w >= 0.0; }

}  // namespace

FailureModel::FailureModel(sim::Engine& engine, Site& site,
                           FailureConfig config, Rng rng)
    : engine_(engine), site_(site), config_(config), rng_(std::move(rng)) {
  SPHINX_PRECONDITION(weight_ok(config_.weight_down) &&
                          weight_ok(config_.weight_black_hole) &&
                          weight_ok(config_.weight_degraded),
                      "failure mode weights must be non-negative and finite");
}

void FailureModel::start() {
  if (config_.permanent_black_hole) {
    site_.become_black_hole();
    record_outage("black_hole(permanent)");
    return;
  }
  if (config_.enabled) schedule_failure();
}

void FailureModel::record_outage(const char* mode) {
  if (recorder_ == nullptr) return;
  recorder_->event(obs::TraceKind::kSiteOutage, "failure:" + site_.name(),
                   "site:" + std::to_string(site_.id().value()), mode,
                   static_cast<double>(outages_));
  recorder_->count("grid", "site.outages");
}

void FailureModel::schedule_failure() {
  const Duration uptime = rng_.exponential(config_.mean_uptime);
  engine_.schedule_in(uptime, "failure:" + site_.name() + ":fail",
                      [this] { fail(); });
}

void FailureModel::fail() {
  ++outages_;
  const double total = config_.weight_down + config_.weight_black_hole +
                       config_.weight_degraded;
  if (total <= 0.0) {
    // All-zero mode mix: there is no distribution to draw from, so the
    // outage takes the `weight_down` meaning (plain downtime) instead of
    // falling through to an arbitrary mode.
    site_.go_down();
    record_outage("down");
  } else {
    const double draw = rng_.uniform(0.0, total);
    if (draw < config_.weight_down) {
      site_.go_down();
      record_outage("down");
    } else if (draw < config_.weight_down + config_.weight_black_hole) {
      site_.become_black_hole();
      record_outage("black_hole");
    } else {
      site_.degrade();
      record_outage("degraded");
    }
  }
  const Duration downtime = rng_.exponential(config_.mean_downtime);
  engine_.schedule_in(downtime, "failure:" + site_.name() + ":repair",
                      [this] { repair(); });
}

void FailureModel::repair() {
  site_.recover();
  if (recorder_ != nullptr) {
    recorder_->event(obs::TraceKind::kSiteRepair, "failure:" + site_.name(),
                     "site:" + std::to_string(site_.id().value()), "",
                     static_cast<double>(outages_));
    recorder_->count("grid", "site.repairs");
  }
  schedule_failure();
}

BackgroundLoad::BackgroundLoad(sim::Engine& engine, Site& site,
                               BackgroundLoadConfig config, Rng rng)
    : engine_(engine), site_(site), config_(config), rng_(std::move(rng)) {}

void BackgroundLoad::start() {
  if (!config_.enabled) return;
  for (int i = 0; i < config_.prefill_jobs; ++i) {
    RemoteJob job;
    job.vo = config_.vo;
    job.compute_time = rng_.exponential(config_.mean_duration);
    if (site_.submit(std::move(job), nullptr).has_value()) ++injected_;
  }
  if (config_.burstiness > 0) {
    heavy_ = rng_.chance(0.5);
    schedule_phase_flip();
  }
  schedule_arrival();
}

void BackgroundLoad::schedule_phase_flip() {
  const Duration phase = rng_.exponential(config_.mean_phase);
  engine_.schedule_in(phase, "bg:" + site_.name() + ":phase", [this] {
    heavy_ = !heavy_;
    schedule_phase_flip();
  });
}

void BackgroundLoad::schedule_arrival() {
  // The heavy/light phase scales the arrival *rate*, i.e. divides the
  // inter-arrival mean.
  double rate_scale = 1.0;
  if (config_.burstiness > 0) {
    rate_scale = heavy_ ? 1.0 + config_.burstiness : 1.0 - config_.burstiness;
    if (rate_scale <= 0.05) rate_scale = 0.05;
  }
  const Duration gap =
      rng_.exponential(config_.mean_interarrival / rate_scale);
  engine_.schedule_in(gap, "bg:" + site_.name() + ":arrival", [this] {
    RemoteJob job;
    job.vo = config_.vo;
    job.compute_time = rng_.exponential(config_.mean_duration);
    // Background jobs do not stage data and nobody watches them.
    if (site_.submit(std::move(job), nullptr).has_value()) ++injected_;
    schedule_arrival();
  });
}

}  // namespace sphinx::grid
