file(REMOVE_RECURSE
  "CMakeFiles/example_policy_quotas.dir/policy_quotas.cpp.o"
  "CMakeFiles/example_policy_quotas.dir/policy_quotas.cpp.o.d"
  "example_policy_quotas"
  "example_policy_quotas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_policy_quotas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
