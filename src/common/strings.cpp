#include "common/strings.hpp"

#include <cmath>
#include <cstdio>

namespace sphinx {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return format_double(bytes, unit == 0 ? 0 : 1) + " " + kUnits[unit];
}

std::string format_duration(double s) {
  if (s < 0) return "-" + format_duration(-s);
  const auto total = static_cast<long long>(std::llround(s));
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long sec = total % 60;
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%lldh %02lldm %02llds", h, m, sec);
  } else if (m > 0) {
    std::snprintf(buf, sizeof(buf), "%lldm %02llds", m, sec);
  } else {
    std::snprintf(buf, sizeof(buf), "%llds", sec);
  }
  return buf;
}

}  // namespace sphinx
