#pragma once
/// \file gsi.hpp
/// Grid Security Infrastructure model: identities, VO proxies and
/// authorization.
///
/// SPHINX uses "GSI-enabled XML-RPC" through Clarens (paper Figure 1).
/// The reproduction models the parts that influence scheduling: who a
/// request is from, which VO (and group) their proxy asserts, whether the
/// proxy is still valid, and whether a service method authorizes the
/// caller.  Actual cryptography is out of scope (DESIGN.md section 6).

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

namespace sphinx::rpc {

/// A long-lived identity certificate (maps to an X.509 subject DN).
struct Identity {
  std::string subject;  ///< e.g. "/DC=org/DC=griphyn/CN=Jang-uk In"
  std::string issuer;   ///< CA subject

  friend bool operator==(const Identity&, const Identity&) = default;
};

/// A short-lived VO proxy derived from an identity (VOMS-style).
/// The proxy is what actually travels with each scheduling request.
class Proxy {
 public:
  Proxy() = default;
  Proxy(Identity identity, std::string vo, std::vector<std::string> groups,
        SimTime issued_at, Duration lifetime);

  [[nodiscard]] const Identity& identity() const noexcept { return identity_; }
  [[nodiscard]] const std::string& vo() const noexcept { return vo_; }
  [[nodiscard]] const std::vector<std::string>& groups() const noexcept {
    return groups_;
  }
  [[nodiscard]] SimTime expires_at() const noexcept { return expires_at_; }

  /// True while the proxy has not expired.
  [[nodiscard]] bool valid_at(SimTime now) const noexcept {
    return !identity_.subject.empty() && now < expires_at_;
  }

  /// Delegation: a child proxy with a (possibly shorter) remaining
  /// lifetime.  Lifetime never extends past the parent's.
  [[nodiscard]] Proxy delegate(SimTime now, Duration lifetime) const;

  /// The VO-scoped principal string, e.g. "uscms:/uscms/production".
  [[nodiscard]] std::string principal() const;

 private:
  Identity identity_;
  std::string vo_;
  std::vector<std::string> groups_;
  SimTime expires_at_ = 0.0;
};

/// Decision record returned by authorization checks.
struct AuthzDecision {
  bool allowed = false;
  std::string reason;  ///< set when denied
};

/// Per-service ACL: which subjects and which VOs may invoke which methods.
/// An empty method entry means "any authenticated caller".
class AuthzPolicy {
 public:
  /// Grants `vo` access to `method` ("*" for all methods).
  void allow_vo(const std::string& method, const std::string& vo);
  /// Grants an individual subject access to `method` ("*" for all).
  void allow_subject(const std::string& method, const std::string& subject);
  /// Denies a specific subject everywhere (a revocation list entry).
  void ban_subject(const std::string& subject);

  /// Evaluates a call.  Order: ban list, then proxy validity, then ACLs.
  [[nodiscard]] AuthzDecision check(const Proxy& proxy,
                                    const std::string& method,
                                    SimTime now) const;

 private:
  struct MethodAcl {
    std::unordered_set<std::string> vos;
    std::unordered_set<std::string> subjects;
  };
  [[nodiscard]] bool acl_matches(const MethodAcl& acl,
                                 const Proxy& proxy) const;

  std::unordered_map<std::string, MethodAcl> acls_;  // method or "*"
  std::unordered_set<std::string> banned_;
};

}  // namespace sphinx::rpc
