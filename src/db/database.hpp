#pragma once
/// \file database.hpp
/// The table store: named tables + journaling + recovery.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/journal.hpp"
#include "db/table.hpp"

namespace sphinx::db {

/// A collection of tables sharing one journal.
class Database : private TableObserver {
 public:
  Database();
  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; throws AssertionError if the name already exists.
  Table& create_table(const std::string& name, Schema schema);

  /// Looks up a table; throws AssertionError if absent (table names are
  /// compile-time constants in this codebase).
  [[nodiscard]] Table& table(const std::string& name);
  [[nodiscard]] const Table& table(const std::string& name) const;

  [[nodiscard]] bool has_table(const std::string& name) const noexcept;
  [[nodiscard]] std::vector<std::string> table_names() const;
  [[nodiscard]] std::size_t table_count() const noexcept { return tables_.size(); }

  /// The journal of all mutations since construction (or last checkpoint).
  [[nodiscard]] const Journal& journal() const noexcept { return journal_; }

  /// Drops the journal prefix (after a successful checkpoint elsewhere).
  void truncate_journal() noexcept { journal_.clear(); }

  /// Enables/disables journaling (enabled by default).  Replay-into-self
  /// would double-log, so recover() disables it internally.
  void set_journaling(bool on) noexcept { journaling_ = on; }

  /// Rebuilds database content by replaying `journal` into this (empty)
  /// database.  Returns an error if this database already has tables or if
  /// the journal is inconsistent.  On success the replayed operations are
  /// re-recorded into this database's own journal so a recovered server
  /// remains recoverable.
  [[nodiscard]] StatusOrError recover(const Journal& journal);

  /// Structural sweep across the store: every table passes its own
  /// check_invariants(), the name map and creation order agree, and
  /// every journal entry references a table that exists (tables are
  /// never dropped, so this holds across truncation and recovery).
  /// Throws ContractViolation on corruption; no-op when contracts are
  /// compiled out.
  void check_invariants() const;

 private:
  friend struct DatabaseInspector;  // test-only fault injection
  void on_insert(const std::string& table, RowId id,
                 const std::vector<Value>& cells) override;
  void on_update(const std::string& table, RowId id, std::size_t column,
                 const Value& value) override;
  void on_erase(const std::string& table, RowId id) override;

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> creation_order_;
  Journal journal_;
  bool journaling_ = true;
};

}  // namespace sphinx::db
