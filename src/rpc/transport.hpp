#pragma once
/// \file transport.hpp
/// In-simulation message bus with delivery latency and injected faults.
///
/// All client/server traffic (scheduling requests, planning decisions,
/// tracker reports) travels as envelopes on this bus.  Delivery is
/// asynchronous on the simulation engine with configurable latency and
/// jitter, so message delay is part of every experiment, exactly as WAN
/// latency was on Grid3.  An optional NetworkFaultConfig turns the wire
/// into a fault domain: per-link loss, duplication, reordering spikes and
/// timed partition windows, all drawn from a dedicated seeded RNG stream
/// so fault-free runs stay byte-identical to pre-fault-model builds.

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "rpc/gsi.hpp"
#include "sim/engine.hpp"

namespace sphinx::obs {
class Recorder;
}  // namespace sphinx::obs

namespace sphinx::rpc {

/// One message in flight.
struct Envelope {
  MessageId id;
  std::string from;          ///< sender endpoint name
  std::string to;            ///< recipient endpoint name
  std::string payload;       ///< serialized XML-RPC call or response
  Proxy proxy;               ///< caller credential (GSI)
  MessageId in_reply_to;     ///< correlation id; invalid for requests
  SimTime sent_at = 0.0;
  /// End-to-end call sequence number, stable across retransmissions of
  /// the same logical call (the bus-level `id` is per transmission).
  /// 0 = unsequenced legacy traffic; replies copy the request's value.
  std::uint64_t call_seq = 0;
};

/// Bus delivery counters, exposed for tests and diagnostics.  Drops are
/// split by cause: a missing endpoint is a wiring bug (or a crashed
/// peer); everything else is a deliberately injected fault.
struct BusStats {
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t dropped_no_endpoint = 0;   ///< no handler at delivery time
  /// Dropped while the endpoint was in a *planned* handoff window (see
  /// expect_handoff()) -- deliberate ownership transfer, not a crash.
  std::size_t dropped_handoff = 0;
  std::size_t lost_injected = 0;         ///< fault model lost the message
  std::size_t duplicated_injected = 0;   ///< extra deliveries scheduled
  std::size_t partition_dropped = 0;     ///< link inside a partition window
  std::size_t reordered_injected = 0;    ///< jitter spikes applied
};

/// One fault rule scoped to a link (endpoint-name prefix pair) and a time
/// window.  Matching is symmetric -- a rule for (client, server) also
/// affects server->client replies -- and an empty prefix matches every
/// endpoint.  Probabilities are per transmission.
struct LinkFaultRule {
  std::string from_prefix;   ///< "" = any endpoint
  std::string to_prefix;     ///< "" = any endpoint
  SimTime start = 0.0;       ///< active while start <= now < end
  SimTime end = kNever;
  double loss = 0.0;         ///< P(message silently lost)
  double duplicate = 0.0;    ///< P(message delivered twice)
  double reorder = 0.0;      ///< P(extra uniform [0, reorder_spike) delay)
  Duration reorder_spike = 5.0;
  bool partition = false;    ///< drop everything on the link in-window
};

/// The whole fault plan for one bus: rules are evaluated in order and
/// compose (loss probabilities combine as 1 - prod(1 - p)).
struct NetworkFaultConfig {
  std::vector<LinkFaultRule> rules;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
};

/// Named-endpoint message bus.
class MessageBus {
 public:
  using Handler = std::function<void(const Envelope&)>;

  /// \param base_latency one-way delivery delay; \param jitter uniform
  /// extra delay in [0, jitter).
  MessageBus(sim::Engine& engine, Rng rng, Duration base_latency = 0.05,
             Duration jitter = 0.05);

  /// Registers (or replaces) an endpoint handler.  Registration closes
  /// any pending handoff window for the name (see expect_handoff()).
  void register_endpoint(const std::string& name, Handler handler);
  /// Removes an endpoint; in-flight messages to it will be dropped.
  void unregister_endpoint(const std::string& name);
  [[nodiscard]] bool has_endpoint(const std::string& name) const noexcept;

  /// Opens a *planned handoff* window for an endpoint: until the name is
  /// registered again, in-flight messages to it are dropped with detail
  /// "endpoint_handoff" and counted in BusStats::dropped_handoff instead
  /// of "endpoint_unregistered" / dropped_no_endpoint.  The control
  /// plane marks a dead shard here before adoption re-registers it, so
  /// drops during a deliberate ownership transfer are distinguishable
  /// from drops caused by a crashed peer.
  void expect_handoff(const std::string& name);
  /// True while `name` has an open handoff window.
  [[nodiscard]] bool handoff_pending(const std::string& name) const noexcept;

  /// Sends a request envelope.  Returns the message id for correlation.
  /// `call_seq` threads the caller's end-to-end sequence number through
  /// the wire (0 = unsequenced).
  MessageId send(const std::string& from, const std::string& to,
                 std::string payload, Proxy proxy = {},
                 std::uint64_t call_seq = 0);

  /// Sends a reply correlated with `request` (copies its call_seq).
  MessageId reply(const Envelope& request, std::string payload);

  /// Installs the network fault model.  `faults_rng` must be a dedicated
  /// stream (e.g. seeds.stream("bus/faults")): fault draws never touch
  /// the latency-jitter stream, so enabling an all-zero config leaves
  /// delivery timing byte-identical.
  void set_fault_model(NetworkFaultConfig config, Rng faults_rng);
  [[nodiscard]] const NetworkFaultConfig& fault_model() const noexcept {
    return faults_;
  }

  /// Routes control-plane traffic -- envelopes whose sender or recipient
  /// name starts with `prefix` -- onto a dedicated latency stream and
  /// exempts it from the *probabilistic* fault model (loss, duplication,
  /// reorder; partition windows still apply -- they are deterministic
  /// and consume no draws).  Rationale: heartbeat/lease traffic differs
  /// by design between a failover run and its uncrashed baseline, so its
  /// draws must never interleave with the core streams or the
  /// differential oracle's byte-equality breaks.  `rng` must be a
  /// dedicated stream (e.g. seeds.stream("bus/ctrl")).
  void set_control_stream(std::string prefix, Rng rng);

  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  /// Attaches a flight recorder; every delivery records its latency and
  /// every injected fault records an observe-only event.  Pass nullptr
  /// to detach.  Observation only -- attaching a recorder changes
  /// neither delivery timing nor the RNG streams.
  void set_recorder(obs::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  MessageId post(Envelope envelope);
  void deliver_in(Duration delay, Envelope envelope);
  [[nodiscard]] static bool rule_matches(const LinkFaultRule& rule,
                                         const Envelope& env, SimTime now);

  sim::Engine& engine_;
  Rng rng_;
  Duration base_latency_;
  Duration jitter_;
  std::unordered_map<std::string, Handler> endpoints_;
  /// Every name ever registered, so a delivery-time drop can distinguish
  /// "endpoint_unregistered" (peer went away) from "missing_endpoint"
  /// (never wired up -- a config bug).
  std::unordered_set<std::string> ever_registered_;
  /// Endpoints inside a planned-handoff window (expect_handoff() opened
  /// it, re-registration closes it).  Probed only, never iterated.
  std::unordered_set<std::string> handoff_pending_;
  IdGenerator<MessageId> ids_;
  BusStats stats_;
  NetworkFaultConfig faults_;
  // Placeholder seed, never drawn from: configuring faults move-assigns
  // a stream-derived Rng over it.
  Rng faults_rng_{0};  // sphinx-lint-allow(rng-raw)
  bool faults_enabled_ = false;
  // Placeholder seed like faults_rng_: set_control_stream() move-assigns
  // a stream-derived Rng over it.
  Rng control_rng_{0};  // sphinx-lint-allow(rng-raw)
  std::string control_prefix_;
  bool control_enabled_ = false;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace sphinx::rpc
