/// Ablation: how monitoring quality changes the queue-length strategy.
///
/// The paper concludes that extant monitoring data was too stale and
/// inaccurate to schedule on.  This sweep varies the monitoring poll
/// period (with proportional reporting latency) and compares the
/// queue-length strategy against completion-time (which ignores the
/// monitoring system) under identical conditions.

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Ablation", "monitoring staleness sweep (30 dags x 10 jobs)");

  std::vector<exp::TenantSpec> specs;
  exp::TenantOptions options;
  options.algorithm = core::Algorithm::kQueueLength;
  specs.push_back({"queue-length", options});
  options.algorithm = core::Algorithm::kCompletionTime;
  specs.push_back({"completion-time", options});

  std::printf("\n%-18s %-22s %-22s\n", "poll period", "queue-length dag(s)",
              "completion-time dag(s)");
  for (const double poll_minutes : {1.0, 5.0, 20.0, 60.0}) {
    exp::ExperimentConfig config = paper_config(30);
    config.scenario.monitor.poll_period = minutes(poll_minutes);
    config.scenario.monitor.report_latency =
        std::min(minutes(poll_minutes) / 5.0, minutes(5.0));
    exp::Experiment experiment(config);
    const auto results = experiment.run(specs);
    std::printf("%-18s %-22.1f %-22.1f\n",
                (format_double(poll_minutes, 0) + " min").c_str(),
                results[0].avg_dag_completion, results[1].avg_dag_completion);
  }
  // Monitoring fully disabled: queue-length degenerates to eq. (1)-style
  // local accounting.
  {
    exp::ExperimentConfig config = paper_config(30);
    config.scenario.monitor.enabled = false;
    exp::Experiment experiment(config);
    const auto results = experiment.run(specs);
    std::printf("%-18s %-22.1f %-22.1f\n", "disabled",
                results[0].avg_dag_completion, results[1].avg_dag_completion);
  }
  std::printf("\nexpectation: queue-length degrades as the data goes stale; "
              "completion-time is unaffected\n");
  return 0;
}
