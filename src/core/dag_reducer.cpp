#include "core/dag_reducer.hpp"

#include <vector>

#include "data/lfn.hpp"

namespace sphinx::core {

DagReducer::DagReducer(DataWarehouse& warehouse,
                       data::ReplicaLocationService& rls, ServerStats& stats)
    : warehouse_(warehouse), rls_(rls), stats_(stats) {}

void DagReducer::reduce(const DagRecord& dag) {
  const auto jobs = warehouse_.jobs_of_dag(dag.id);
  std::vector<data::Lfn> outputs;
  outputs.reserve(jobs.size());
  for (const JobRecord& job : jobs) outputs.push_back(job.output);
  const auto replicas = rls_.locate_bulk(outputs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!replicas[i].empty()) {
      warehouse_.set_job_state(jobs[i].id, JobState::kCompleted,
                               "reduced:output-exists");
      ++stats_.jobs_reduced;
    }
  }
  warehouse_.set_dag_state(dag.id, DagState::kReduced);
}

}  // namespace sphinx::core
