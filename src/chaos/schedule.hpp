#pragma once
/// \file schedule.hpp
/// Seeded synthesis of adversarial failure schedules.
///
/// A chaos run's entire misbehaviour plan is one ChaosSchedule: per-site
/// outage lists (fed to grid::FailureModel's schedule-driven mode) plus
/// the journal-record positions at which the SPHINX server is
/// fail-stopped and journal-recovered mid-run.  Schedules are pure data:
/// synthesize() is a deterministic function of (seed, config, site
/// names), they serialize to JSON for the repro file, and the minimizer
/// shrinks them entry-by-entry without re-deriving anything from the
/// seed.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/json.hpp"
#include "common/error.hpp"
#include "common/time.hpp"
#include "grid/failure.hpp"

namespace sphinx::chaos {

/// One network-fault window.  Loss/duplication/reorder windows apply to
/// every RPC link; a partition window severs the client<->server links
/// (both directions) for its whole duration.
struct NetFaultWindow {
  SimTime at = 0.0;
  Duration duration = 0.0;
  double loss = 0.0;        ///< P(message lost) per transmission
  double duplicate = 0.0;   ///< P(message delivered twice)
  double reorder = 0.0;     ///< P(jitter spike)
  Duration reorder_spike = 5.0;
  bool partition = false;
};

/// One run's complete failure plan.
struct ChaosSchedule {
  /// Outages per site name, each list sorted and non-overlapping
  /// (FailureModel's schedule contract).
  std::map<std::string, std::vector<grid::ScheduledOutage>> outages;
  /// Journal-record counts (total ever appended, compaction-immune) at
  /// which the server is crashed, strictly increasing.  Each entry arms
  /// a fail-stop for the first check point at or past that many journal
  /// records; recovery happens in the same engine event.
  std::vector<std::size_t> crash_records;
  /// Like crash_records, but the fail-stop fires *inside* the first
  /// eligible checkpoint: between image publication and journal
  /// truncation, the window where durable state is an image plus an
  /// uncompacted journal.  No-ops when the run has checkpointing off.
  /// Strictly increasing within this list; a collision with a
  /// crash_records entry is fine (the campaign arms points one at a
  /// time, regular before mid on a tie).
  std::vector<std::size_t> mid_ckpt_crashes;
  /// Network-fault windows (lossy wire + partitions), sorted by start.
  /// Applied identically to the chaotic and baseline runs, so the
  /// differential oracle checks recovery *under* an unreliable network
  /// rather than comparing different networks.
  std::vector<NetFaultWindow> net_windows;

  [[nodiscard]] std::size_t outage_count() const;
};

/// Synthesis knobs.  Defaults give a mixed-mode schedule with one burst
/// and one mid-run crash -- adversarial but quick to simulate.
struct ScheduleConfig {
  /// Outage starts are drawn in [0, span); repairs may run past it.
  SimTime span = hours(8);
  /// Independent single-site outage draws.
  int outages = 10;
  Duration mean_duration = minutes(30);
  Duration min_duration = minutes(2);
  /// Outage mode mix (normalized; all-zero degenerates to plain down).
  double weight_down = 1.0;
  double weight_black_hole = 0.4;
  double weight_degraded = 0.4;
  /// Correlated multi-site events: every burst picks `burst_sites`
  /// distinct sites and starts an outage of the same mode on each within
  /// `burst_window` of the burst instant.
  int bursts = 1;
  int burst_sites = 3;
  Duration burst_window = minutes(5);
  /// Mid-run server crash points, drawn uniformly from
  /// [min_crash_record, max_crash_record] and kept strictly increasing.
  /// Points past the run's final journal length never fire, so the
  /// default range sits inside a default run's ~300-record journal.
  int crashes = 1;
  std::size_t min_crash_record = 40;
  std::size_t max_crash_record = 260;
  /// Mid-checkpoint crash points, drawn from the same record range (and
  /// the same RNG stream, after the regular crash draws, so raising this
  /// leaves the regular points unchanged).
  int mid_ckpt_crashes = 1;
  /// Network-fault windows: `net_windows` lossy-wire spans drawn in
  /// [0, span) with exponential durations, plus `net_partitions` fixed
  /// 60 s client<->server partitions.  On by default: the crash/recovery
  /// oracle should not assume a perfect wire.
  int net_windows = 1;
  double net_loss = 0.05;
  double net_duplicate = 0.02;
  double net_reorder = 0.05;
  Duration net_reorder_spike = 5.0;
  Duration net_mean_duration = minutes(10);
  Duration net_min_duration = minutes(1);
  int net_partitions = 1;
  Duration net_partition_duration = 60.0;
};

/// Deterministically synthesizes a schedule: same (seed, config, sites)
/// always yields the identical schedule.  Per-site lists come out sorted
/// and non-overlapping (overlaps from independent draws are resolved by
/// pushing the later outage behind the earlier repair, 1 s apart).
[[nodiscard]] ChaosSchedule synthesize(std::uint64_t seed,
                                       const ScheduleConfig& config,
                                       const std::vector<std::string>& sites);

/// JSON round-trip for the repro file.  to_json is deterministic (map
/// order, fixed key order, to_chars numbers).
[[nodiscard]] std::string to_json(const ChaosSchedule& schedule);
[[nodiscard]] Expected<ChaosSchedule> schedule_from_json(
    const std::string& text);
/// Same, from an already-parsed document subtree (repro files embed the
/// schedule as one member of a larger object).
[[nodiscard]] Expected<ChaosSchedule> schedule_from_value(
    const JsonValue& value);

}  // namespace sphinx::chaos
