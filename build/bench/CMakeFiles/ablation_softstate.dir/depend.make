# Empty dependencies file for ablation_softstate.
# This may be replaced when dependencies are built.
