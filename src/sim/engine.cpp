#include "sim/engine.hpp"

#include <cmath>
#include <utility>

#include "common/contracts.hpp"

namespace sphinx::sim {

EventHandle Engine::schedule_at(SimTime t, std::string label, Callback cb) {
  SPHINX_PRECONDITION(cb != nullptr, "event callback must not be null");
  SPHINX_PRECONDITION(!std::isnan(t), "event time must not be NaN");
  if (t < now_) t = now_;  // late scheduling fires immediately, never rewinds
  const std::uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(label), std::move(cb)});
  live_ids_.insert(id);
  const EventHandle handle(id);
  SPHINX_POSTCONDITION(pending(handle), "scheduled event must be pending");
  return handle;
}

EventHandle Engine::schedule_in(Duration delay, std::string label, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(label), std::move(cb));
}

void Engine::cancel(EventHandle handle) {
  // Cancelling a fired (or never-issued) event is a no-op; only events
  // still in the queue are marked, so the cancelled set cannot leak.
  if (handle.valid() && live_ids_.contains(handle.id_)) {
    cancelled_.insert(handle.id_);
  }
}

bool Engine::pending(EventHandle handle) const {
  return handle.valid() && live_ids_.contains(handle.id_) &&
         !cancelled_.contains(handle.id_);
}

bool Engine::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    live_ids_.erase(ev.id);
    if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    // Monotonicity: the queue can never surface an event behind the
    // clock (schedule_at clamps late insertions to now()).
    SPHINX_INVARIANT(ev.time >= now_, "event queue went non-monotonic");
    now_ = ev.time;
    ++fired_;
    current_label_ = std::move(ev.label);
    ev.callback();
    current_label_.clear();
    return true;
  }
  return false;
}

std::size_t Engine::run_until(SimTime limit) {
  std::size_t n = 0;
  stop_requested_ = false;
  while (!stop_requested_) {
    // Peek: do not fire events beyond the horizon.
    bool fired = false;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (cancelled_.contains(top.id)) {
        cancelled_.erase(top.id);
        live_ids_.erase(top.id);
        queue_.pop();
        continue;
      }
      if (top.time > limit) {
        now_ = limit < kNever ? limit : now_;
        return n;
      }
      fired = step();
      break;
    }
    if (!fired) break;
    ++n;
  }
  return n;
}

void Engine::check_invariants() const {
#if SPHINX_CONTRACTS_ENABLED
  SPHINX_INVARIANT(now_ >= 0.0 && !std::isnan(now_),
                   "simulation clock must be a non-negative number");
  SPHINX_INVARIANT(live_ids_.size() == queue_.size(),
                   "live id set must mirror the event queue");
  for (const std::uint64_t id : cancelled_) {
    SPHINX_INVARIANT(live_ids_.contains(id),
                     "cancelled set must only name queued events");
  }
  if (!queue_.empty()) {
    // The heap top is the earliest entry; if even it is not behind the
    // clock, no entry is.
    SPHINX_INVARIANT(queue_.top().time >= now_,
                     "pending event lies in the past");
  }
#endif
}

PeriodicProcess::PeriodicProcess(Engine& engine, std::string label,
                                 Duration period, Body body, Duration jitter0)
    : engine_(engine),
      label_(std::move(label)),
      period_(period),
      body_(std::move(body)),
      jitter0_(jitter0) {
  SPHINX_PRECONDITION(period_ > 0, "periodic process period must be positive");
  SPHINX_PRECONDITION(body_ != nullptr,
                      "periodic process body must not be null");
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start() {
  start_at(engine_.now() + jitter0_);
}

void PeriodicProcess::start_at(SimTime t) {
  if (running_) return;
  running_ = true;
  if (t < engine_.now()) t = engine_.now();
  next_at_ = t;
  next_ = engine_.schedule_at(t, label_, [this] { fire(); });
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(next_);
  next_ = EventHandle{};
}

void PeriodicProcess::fire() {
  if (!running_) return;
  // Reschedule first so the body may call stop() to terminate the chain.
  next_at_ = engine_.now() + period_;
  next_ = engine_.schedule_at(next_at_, label_, [this] { fire(); });
  body_();
}

}  // namespace sphinx::sim
