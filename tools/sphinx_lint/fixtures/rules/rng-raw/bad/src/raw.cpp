/// \file raw.cpp
/// Fixture: library code constructing Rng with hand-picked seeds, in
/// the three spellings the rule recognises.

#include <cstdint>

namespace fixture {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);
};

void temporaries() {
  auto a = Rng(7);   // temporary
  auto b = Rng{11};  // braced temporary
  static_cast<void>(a);
  static_cast<void>(b);
}

void declaration(std::uint64_t seed) {
  Rng rng(seed);  // declaration with a raw seed
  static_cast<void>(rng);
}

}  // namespace fixture
