// End-to-end at-least-once RPC tests: client retry/backoff across loss
// windows, duplicate-reply correlation, the service dedup cache
// (replay, bounded eviction, effectively-once handlers) and durable
// outbox restore after a client teardown.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rpc/clarens.hpp"
#include "rpc/transport.hpp"
#include "sim/engine.hpp"

namespace sphinx::rpc {
namespace {

Identity user_identity() {
  return Identity{"/DC=org/DC=griphyn/CN=Production Manager", "/CN=iGOC CA"};
}

Proxy user_proxy(SimTime now = 0.0, Duration lifetime = hours(48)) {
  return Proxy(user_identity(), "uscms", {"/uscms/production"}, now, lifetime);
}

class RetryFixture : public ::testing::Test {
 protected:
  RetryFixture() : service(bus, "sphinx-server", make_policy()) {
    service.register_method(
        "bump", [this](const std::vector<XrValue>&, const Proxy&) {
          ++bumps;
          return Expected<XrValue>(XrValue(static_cast<std::int64_t>(bumps)));
        });
  }

  static AuthzPolicy make_policy() {
    AuthzPolicy policy;
    policy.allow_vo("*", "uscms");
    return policy;
  }

  /// Loses every message on every link while start <= now < end.
  void lose_all_during(SimTime start, SimTime end) {
    NetworkFaultConfig config;
    LinkFaultRule rule;
    rule.loss = 1.0;
    rule.start = start;
    rule.end = end;
    config.rules.push_back(rule);
    bus.set_fault_model(config, Rng(5));
  }

  sim::Engine engine;
  MessageBus bus{engine, Rng(2), 0.05, 0.0};
  ClarensService service;
  std::size_t bumps = 0;
};

TEST_F(RetryFixture, RetransmitsAcrossLossWindowAndCompletesOnce) {
  lose_all_during(0.0, 12.0);  // swallows the first two transmissions
  ClarensClient client(bus, "client-1", user_proxy());
  std::size_t callbacks = 0;
  std::int64_t got = 0;
  client.call("sphinx-server", "bump", {}, [&](Expected<XrValue> result) {
    ++callbacks;
    ASSERT_TRUE(result.has_value());
    got = result->as_int();
  });
  engine.run_until();
  EXPECT_EQ(callbacks, 1u);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(bumps, 1u);
  EXPECT_GE(client.retransmissions(), 2u);
  EXPECT_EQ(client.pending(), 0u);
  EXPECT_EQ(client.exhausted(), 0u);
  EXPECT_GE(bus.stats().lost_injected, 2u);
}

TEST_F(RetryFixture, ExhaustsRetryBudgetWithTimeoutError) {
  lose_all_during(0.0, kNever);  // the wire never heals
  RetryPolicy retry;
  retry.timeout = 1.0;
  retry.max_timeout = 2.0;
  retry.max_attempts = 3;
  ClarensClient client(bus, "client-1", user_proxy(), retry);
  std::size_t callbacks = 0;
  std::string code;
  client.call("sphinx-server", "bump", {}, [&](Expected<XrValue> result) {
    ++callbacks;
    ASSERT_FALSE(result.has_value());
    code = result.error().code;
  });
  engine.run_until();
  EXPECT_EQ(callbacks, 1u);
  EXPECT_EQ(code, "rpc_timeout");
  EXPECT_EQ(client.exhausted(), 1u);
  EXPECT_EQ(client.retransmissions(), 2u);  // attempts 2 and 3
  EXPECT_EQ(bumps, 0u);
  EXPECT_EQ(client.pending(), 0u);
}

TEST_F(RetryFixture, BackoffIsCappedExponentialWithBoundedJitter) {
  lose_all_during(0.0, kNever);
  RetryPolicy retry;  // 5, 10, 20, 30, 30, ... (+/- 10% jitter)
  retry.max_attempts = 5;
  ClarensClient client(bus, "client-1", user_proxy(), retry);
  client.call("sphinx-server", "bump", {}, [](Expected<XrValue>) {});
  std::vector<SimTime> send_times;
  // The bus counts sends; sample the stats each sim second instead of
  // instrumenting the client.
  std::size_t seen = 0;
  for (int t = 0; t <= 200; ++t) {
    engine.run_until(static_cast<double>(t));
    if (bus.stats().sent > seen) {
      seen = bus.stats().sent;
      send_times.push_back(engine.now());
    }
  }
  engine.run_until();
  ASSERT_EQ(send_times.size(), 5u);
  for (std::size_t i = 1; i < send_times.size(); ++i) {
    const Duration gap = send_times[i] - send_times[i - 1];
    EXPECT_GE(gap, 5.0 * 0.9 - 1.0);   // never faster than jittered minimum
    EXPECT_LE(gap, 30.0 * 1.1 + 1.0);  // never slower than the cap
  }
}

TEST_F(RetryFixture, DuplicateReplyInvokesCallbackOnce) {
  // A raw endpoint that answers every request twice -- the regression
  // case for response correlation under a duplicating wire.
  bus.unregister_endpoint("sphinx-server");
  bus.register_endpoint("sphinx-server", [this](const Envelope& request) {
    const std::string body =
        MethodResponse::success(XrValue(std::int64_t{7})).serialize();
    bus.reply(request, body);
    bus.reply(request, body);
  });
  ClarensClient client(bus, "client-1", user_proxy());
  std::size_t callbacks = 0;
  client.call("sphinx-server", "bump", {}, [&](Expected<XrValue> result) {
    ++callbacks;
    EXPECT_TRUE(result.has_value());
  });
  engine.run_until();
  EXPECT_EQ(callbacks, 1u);
  EXPECT_EQ(client.duplicate_replies(), 1u);
  EXPECT_EQ(client.stray_replies(), 0u);
}

TEST_F(RetryFixture, DedupCacheReplaysByteIdenticalReply) {
  std::vector<std::string> replies;
  bus.register_endpoint("raw-caller", [&](const Envelope& reply) {
    replies.push_back(reply.payload);
  });
  const std::string request = MethodCall{"bump", {}}.serialize();
  bus.send("raw-caller", "sphinx-server", request, user_proxy(), 42);
  engine.run_until();
  bus.send("raw-caller", "sphinx-server", request, user_proxy(), 42);
  engine.run_until();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], replies[1]);  // byte-identical cached replay
  EXPECT_EQ(bumps, 1u);               // handler executed exactly once
  EXPECT_EQ(service.calls_served(), 1u);
  EXPECT_EQ(service.calls_replayed(), 1u);
}

TEST_F(RetryFixture, DedupIsScopedToCaller) {
  bus.register_endpoint("caller-a", [](const Envelope&) {});
  bus.register_endpoint("caller-b", [](const Envelope&) {});
  const std::string request = MethodCall{"bump", {}}.serialize();
  bus.send("caller-a", "sphinx-server", request, user_proxy(), 1);
  bus.send("caller-b", "sphinx-server", request, user_proxy(), 1);
  engine.run_until();
  EXPECT_EQ(bumps, 2u);  // same seq from different callers is distinct
  EXPECT_EQ(service.calls_replayed(), 0u);
}

TEST_F(RetryFixture, UnsequencedRequestsBypassTheCache) {
  bus.register_endpoint("legacy", [](const Envelope&) {});
  const std::string request = MethodCall{"bump", {}}.serialize();
  bus.send("legacy", "sphinx-server", request, user_proxy());  // seq 0
  bus.send("legacy", "sphinx-server", request, user_proxy());
  engine.run_until();
  EXPECT_EQ(bumps, 2u);
  EXPECT_EQ(service.calls_replayed(), 0u);
}

TEST_F(RetryFixture, DedupCacheEvictsFifoAtCapacity) {
  service.set_dedup_capacity(2);
  bus.register_endpoint("caller", [](const Envelope&) {});
  const std::string request = MethodCall{"bump", {}}.serialize();
  for (const std::uint64_t seq : {1u, 2u, 3u}) {
    bus.send("caller", "sphinx-server", request, user_proxy(), seq);
    engine.run_until();
  }
  // Seq 1 was evicted when seq 3 arrived; a retransmission re-executes.
  bus.send("caller", "sphinx-server", request, user_proxy(), 1);
  engine.run_until();
  EXPECT_EQ(bumps, 4u);
  EXPECT_EQ(service.calls_replayed(), 0u);
  // Seq 3 is still cached.
  bus.send("caller", "sphinx-server", request, user_proxy(), 3);
  engine.run_until();
  EXPECT_EQ(bumps, 4u);
  EXPECT_EQ(service.calls_replayed(), 1u);
}

// Property: N retransmissions of one state-mutating call change state
// exactly once, whatever N.
TEST_F(RetryFixture, ManyRetransmissionsMutateStateExactlyOnce) {
  bus.register_endpoint("caller", [](const Envelope&) {});
  const std::string request = MethodCall{"bump", {}}.serialize();
  constexpr int kRetransmissions = 20;
  for (int i = 0; i < kRetransmissions; ++i) {
    bus.send("caller", "sphinx-server", request, user_proxy(), 99);
    engine.run_until();
  }
  EXPECT_EQ(bumps, 1u);
  EXPECT_EQ(service.calls_served(), 1u);
  EXPECT_EQ(service.calls_replayed(),
            static_cast<std::size_t>(kRetransmissions - 1));
}

TEST_F(RetryFixture, ZeroCapacityDisablesDeduplication) {
  service.set_dedup_capacity(0);
  bus.register_endpoint("caller", [](const Envelope&) {});
  const std::string request = MethodCall{"bump", {}}.serialize();
  bus.send("caller", "sphinx-server", request, user_proxy(), 5);
  bus.send("caller", "sphinx-server", request, user_proxy(), 5);
  engine.run_until();
  EXPECT_EQ(bumps, 2u);
  EXPECT_EQ(service.calls_replayed(), 0u);
}

// A torn-down client whose in-flight calls were mirrored to a durable
// outbox can be rebuilt: restore_call() re-arms the retry timer without
// resending, and the call still completes effectively-once.
TEST_F(RetryFixture, OutboxRestoreResumesInFlightCall) {
  lose_all_during(0.0, 8.0);  // first transmission is lost
  struct OutboxRow {
    std::string service;
    std::string payload;
    int attempt = 0;
    SimTime last_sent_at = 0.0;
  };
  std::map<std::uint64_t, OutboxRow> outbox;
  std::uint64_t last_seq = 0;

  auto first = std::make_unique<ClarensClient>(bus, "client-1", user_proxy());
  first->set_outbox(
      [&](std::uint64_t seq, const std::string& svc, const std::string& body,
          int attempt, SimTime sent_at) {
        outbox[seq] = OutboxRow{svc, body, attempt, sent_at};
        last_seq = std::max(last_seq, seq);
      },
      [&](std::uint64_t seq) { outbox.erase(seq); });
  bool first_callback = false;
  first->call("sphinx-server", "bump", {},
              [&](Expected<XrValue>) { first_callback = true; });
  engine.run_until(1.0);  // transmission sent (and lost); timer pending
  ASSERT_EQ(outbox.size(), 1u);
  EXPECT_EQ(outbox.begin()->second.attempt, 1);
  first.reset();  // crash stand-in: timers cancelled, outbox survives

  ClarensClient second(bus, "client-1", user_proxy());
  second.set_next_seq(last_seq + 1);
  second.set_outbox(
      [&](std::uint64_t seq, const std::string& svc, const std::string& body,
          int attempt, SimTime sent_at) {
        outbox[seq] = OutboxRow{svc, body, attempt, sent_at};
      },
      [&](std::uint64_t seq) { outbox.erase(seq); });
  std::size_t callbacks = 0;
  for (const auto& [seq, row] : outbox) {
    second.restore_call(seq, row.service, row.payload, row.attempt,
                        row.last_sent_at, [&](Expected<XrValue> result) {
                          ++callbacks;
                          EXPECT_TRUE(result.has_value());
                        });
  }
  engine.run_until();
  EXPECT_FALSE(first_callback);
  EXPECT_EQ(callbacks, 1u);
  EXPECT_EQ(bumps, 1u);
  EXPECT_TRUE(outbox.empty());  // completion erased the durable row
  EXPECT_EQ(second.pending(), 0u);
}

}  // namespace
}  // namespace sphinx::rpc
