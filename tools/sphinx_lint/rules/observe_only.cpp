/// \file observe_only.cpp
/// observe-only: the flight recorder watches, it never touches.
///
/// Everything under src/obs/ is instrumentation: attaching or detaching
/// it must leave a fixed-seed run byte-identical.  That guarantee dies
/// the moment observation code draws randomness, requests a seed
/// stream, schedules engine events, or reaches into warehouse/db
/// state.  This rule makes the guarantee structural: src/obs/ cannot
/// even *name* those facilities.

#include <regex>
#include <string>

#include "rule.hpp"

namespace sphinx::lint {
namespace {

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

void rule_observe_only(const FileContext& file, const Reporter& out) {
  if (!file.rel_path.starts_with("src/obs/")) return;
  const std::vector<Token>& t = file.tokens;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    const std::string& id = t[i].text;
    if (id == "Rng" || id == "SeedTree") {
      out.report(t[i].line, "observe-only",
                 "observation code must not use randomness ('" + id +
                     "'); the recorder only watches, it never draws");
      continue;
    }
    const bool member_call =
        i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
        i + 1 < t.size() && is_punct(t[i + 1], "(");
    if (!member_call) continue;
    if (id == "stream") {
      out.report(t[i].line, "observe-only",
                 "observation code must not request rng streams");
    } else if (id == "schedule_in" || id == "schedule_at" ||
               id == "schedule") {
      out.report(t[i].line, "observe-only",
                 "observation code must not schedule engine events; event "
                 "creation order is simulation state");
    }
  }

  // Reaching for warehouse/db headers is how mutation starts.
  static const std::regex include_re(
      R"(^\s*#\s*include\s*"(db/|core/warehouse))");
  for (std::size_t i = 0; i < file.stripped.raw_lines.size(); ++i) {
    if (std::regex_search(file.stripped.raw_lines[i], include_re)) {
      out.report(i + 1, "observe-only",
                 "observation code must not include warehouse/db headers; "
                 "state flows *into* the recorder, never back out");
    }
  }
}

}  // namespace

std::vector<Rule> observe_only_rules() {
  return {
      Rule{"observe-only",
           "src/obs/ observes: no rng, no streams, no events, no "
           "warehouse/db access",
           "The determinism gates compare runs with the recorder attached; "
           "the chaos oracles compare runs with it detached from different "
           "crash points.  Both assume observation is free of side effects "
           "on the simulation.  This rule bans, structurally, everything "
           "in src/obs/ that could perturb a run: naming Rng/SeedTree, "
           "calling .stream(), scheduling engine events, or including "
           "db/warehouse headers.",
           &rule_observe_only},
  };
}

}  // namespace sphinx::lint
