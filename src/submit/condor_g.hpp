#pragma once
/// \file condor_g.hpp
/// Condor-G style grid submission gateway.
///
/// One gateway serves one client (user/VO): it turns a planned job into a
/// ClassAd submit file, submits to the chosen site's gatekeeper, stages
/// input replicas with GridFTP when the site allocates a CPU, registers
/// the output in the RLS and storage element on success, and relays the
/// condor-style state events back to the caller (the SPHINX client's job
/// tracker).

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "data/gridftp.hpp"
#include "data/rls.hpp"
#include "data/storage.hpp"
#include "grid/grid.hpp"
#include "submit/classad.hpp"

namespace sphinx::submit {

/// One resolved input: where to pull the file from.
struct StagedInput {
  data::Lfn lfn;
  SiteId source;
  double bytes = 0.0;
};

/// A fully planned job, ready to submit.
struct SubmitRequest {
  JobId job;
  std::string name;
  UserId user;
  std::string vo = "uscms";
  SiteId site;                      ///< execution site (SPHINX's decision)
  double priority = 0.0;            ///< within-VO batch priority nudge
  Duration compute_time = 60.0;
  std::vector<StagedInput> inputs;  ///< chosen transfer sources
  data::Lfn output;
  double output_bytes = 0.0;
  bool register_output = true;      ///< publish output to RLS on success
  /// Which attempt of the job this submission carries.  Speculation races
  /// two attempts of the same JobId through the same gateway, so the
  /// gateway tracks submissions per (job, attempt).
  int attempt = 1;
};

/// Gateway-level view of a submission.
enum class GatewayJobState {
  kSubmitted,  ///< handed to the remote gatekeeper
  kIdle,       ///< queued at the site
  kStaging,
  kRunning,
  kCompleted,
  kHeld,
  kRemoved,    ///< cancelled via condor_rm
  kFailed,     ///< submission itself failed (site down)
};

[[nodiscard]] const char* to_string(GatewayJobState state) noexcept;

/// Status events relayed to the owner of the submission.
struct GatewayEvent {
  JobId job;
  GatewayJobState state = GatewayJobState::kSubmitted;
  SimTime at = 0.0;
  int attempt = 1;  ///< which attempt of the job the event describes
};

using GatewayCallback = std::function<void(const GatewayEvent&)>;

/// condor_q summary for this gateway.
struct GatewayQueue {
  int idle = 0;
  int staging = 0;
  int running = 0;
  int completed = 0;
  int held = 0;
  int removed = 0;
  int failed = 0;
};

class CondorG {
 public:
  CondorG(grid::Grid& grid, data::TransferService& transfers,
          data::ReplicaLocationService& rls, data::StorageFabric* storage,
          std::string name);

  /// Submits a planned job.  Returns false when the gatekeeper is down
  /// (the caller sees a kFailed event first).  The callback observes
  /// every state change.
  bool submit(const SubmitRequest& request, GatewayCallback callback);

  /// condor_rm: cancels a job (kills in-flight stage-in transfers too).
  /// Returns false if the job is unknown, terminal, or the site is down.
  /// The JobId-only form targets the latest attempt; the qualified form
  /// cancels one specific attempt of a racing pair.
  bool cancel(JobId job);
  bool cancel(JobId job, int attempt);

  /// Per-job state, if the gateway knows the job.  JobId-only forms
  /// resolve the latest attempt.
  [[nodiscard]] std::optional<GatewayJobState> state_of(JobId job) const;
  [[nodiscard]] std::optional<GatewayJobState> state_of(JobId job,
                                                        int attempt) const;

  /// True when the gatekeeper of the job's execution site still answers
  /// status queries (condor_q against the remote jobmanager).  False for
  /// unknown jobs or down sites.
  [[nodiscard]] bool site_responsive(JobId job) const;
  [[nodiscard]] bool site_responsive(JobId job, int attempt) const;

  /// Third-party replication (globus-url-copy style): copies an existing
  /// replica to `destination`, stores it there and registers it in the
  /// RLS.  `done(true)` on success; `done(false)` if no source replica
  /// exists or the destination already has the file.
  void replicate(const data::Lfn& lfn, SiteId destination,
                 std::function<void(bool)> done);

  /// condor_q over this gateway's submissions.
  [[nodiscard]] GatewayQueue queue() const;

  /// The ClassAd submit file generated for a job (kept for diagnostics,
  /// exactly like real submit files on disk).
  [[nodiscard]] const ClassAd* submit_ad(JobId job) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t submissions() const noexcept { return total_; }

 private:
  struct Record {
    SubmitRequest request;
    SiteId site;
    SubmissionId submission;
    GatewayJobState state = GatewayJobState::kSubmitted;
    GatewayCallback callback;
    ClassAd ad;
    std::vector<TransferId> active_transfers;
    /// Owns the stage-in continuation chain; dropping the record (or the
    /// gateway) tears the chain down without dangling callbacks.
    std::shared_ptr<std::function<void(std::size_t)>> stage_chain;
  };

  /// Submissions are tracked per (job, attempt); an ordered map keeps the
  /// attempts of one job contiguous so "latest attempt" is a range scan.
  using Key = std::pair<std::uint64_t, int>;

  void relay(Record& record, GatewayJobState state, SimTime at);
  [[nodiscard]] static ClassAd make_ad(const SubmitRequest& request,
                                       const std::string& site_name);
  void stage_inputs(Key key, std::function<void()> done);
  void on_completed(Record& record);
  /// Latest-attempt record of a job, or records_.end() if unknown.
  [[nodiscard]] std::map<Key, Record>::iterator find_latest(JobId job);
  [[nodiscard]] std::map<Key, Record>::const_iterator find_latest(
      JobId job) const;

  grid::Grid& grid_;
  data::TransferService& transfers_;
  data::ReplicaLocationService& rls_;
  data::StorageFabric* storage_;  ///< optional
  std::string name_;
  std::map<Key, Record> records_;
  std::size_t total_ = 0;
};

}  // namespace sphinx::submit
