/// \file ordered_escape.cpp
/// ordered-escape: the nondeterminism taint rule.
///
/// The byte-diff oracles (flight-recorder gate, chaos differential
/// oracle) assume a fixed-seed run serializes identically every time.
/// Iterating a hash container -- or an ordered container keyed by
/// pointer values -- yields an order the simulation contract does not
/// pin down: it depends on libstdc++ internals, allocator addresses and
/// ASLR.  Such iteration is fine while it stays commutative (counting,
/// lookups, per-element mutation) but must not *escape* into anything
/// order-sensitive: journal writes, trace events, serialized output,
/// event scheduling, or accumulation into a sequence / running sum.
///
/// The pass is declaration-aware: it taints names declared as
/// std::unordered_{map,set,multimap,multiset} (and std::map/std::set
/// keyed by a pointer type), including functions *returning* such
/// types, then inspects every range-for / iterator-for over a tainted
/// name for sink operations in the loop body.
///
/// Audited sites are acknowledged per file with a comment:
///   // sphinx-lint: ordered-escape-checked -- <why the order is safe>
/// or per line with sphinx-lint-allow(ordered-escape).

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

#include "rule.hpp"

namespace sphinx::lint {
namespace {

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

[[nodiscard]] bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

[[nodiscard]] std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Skips a balanced template argument list starting at the `<` at `i`.
/// Returns the index one past the closing `>`, treating `>>` as two
/// closers.  npos when unbalanced.
[[nodiscard]] std::size_t skip_template_args(const std::vector<Token>& t,
                                             std::size_t i) {
  if (i >= t.size() || !is_punct(t[i], "<")) return std::string::npos;
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (is_punct(t[i], "<")) ++depth;
    else if (is_punct(t[i], ">")) {
      if (--depth == 0) return i + 1;
    } else if (is_punct(t[i], ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (is_punct(t[i], ";") || is_punct(t[i], "{")) {
      return std::string::npos;  // not a template argument list after all
    }
  }
  return std::string::npos;
}

/// True when the first template argument (tokens in (open, close)) ends
/// in `*` -- a pointer-keyed container.
[[nodiscard]] bool first_arg_is_pointer(const std::vector<Token>& t,
                                        std::size_t open, std::size_t close) {
  int depth = 0;
  std::size_t last = open;  // last meaningful token of the first argument
  for (std::size_t i = open + 1; i < close; ++i) {
    if (is_punct(t[i], "<") || is_punct(t[i], "(")) ++depth;
    else if (is_punct(t[i], ">") || is_punct(t[i], ")")) --depth;
    else if (is_punct(t[i], ",") && depth == 0) break;
    last = i;
  }
  return last > open && is_punct(t[last], "*");
}

}  // namespace

void extract_unordered(const std::vector<Token>& t,
                       std::set<std::string>& vars,
                       std::set<std::string>& fns) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::set<std::string> kOrdered = {"map", "set", "multimap",
                                                 "multiset"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    const bool unordered = kUnordered.contains(t[i].text);
    const bool ordered = kOrdered.contains(t[i].text);
    if (!unordered && !ordered) continue;
    if (i + 1 >= t.size() || !is_punct(t[i + 1], "<")) continue;
    const std::size_t after = skip_template_args(t, i + 1);
    if (after == std::string::npos) continue;
    // Ordered assoc containers are only hazardous when keyed by pointer
    // (iteration order = address order).
    if (ordered && !first_arg_is_pointer(t, i + 1, after - 1)) continue;
    // Skip refs/ptrs/cv between the type and the declared name.
    std::size_t j = after;
    while (j < t.size() &&
           (is_punct(t[j], "&") || is_punct(t[j], "*") ||
            is_ident(t[j], "const"))) {
      ++j;
    }
    if (j >= t.size() || t[j].kind != TokenKind::kIdentifier) continue;
    if (j + 1 < t.size() && is_punct(t[j + 1], "(")) {
      fns.insert(t[j].text);
    } else {
      vars.insert(t[j].text);
    }
  }
}

namespace {

/// A sink inside a tainted loop body, or empty when the body stays
/// commutative.
[[nodiscard]] std::string find_sink(const std::vector<Token>& t,
                                    std::size_t begin, std::size_t end) {
  static const std::set<std::string> kAppenders = {"push_back", "emplace_back",
                                                   "append"};
  static const std::set<std::string> kSerializeHints = {
      "journal", "trace", "record", "serialize", "to_json",
      "jsonl",   "emit",  "write",  "schedule"};
  for (std::size_t i = begin; i < end; ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokenKind::kIdentifier) {
      if (kAppenders.contains(tok.text)) {
        return "appends to a sequence ('" + tok.text +
               "') in iteration order";
      }
      const std::string low = lower(tok.text);
      for (const std::string& hint : kSerializeHints) {
        if (low.find(hint) != std::string::npos) {
          return "reaches an order-sensitive operation ('" + tok.text + "')";
        }
      }
    } else if (is_punct(tok, "<<")) {
      return "streams output ('<<') in iteration order";
    } else if (is_punct(tok, "+=") || is_punct(tok, "-=")) {
      return "accumulates ('" + tok.text + "') in iteration order";
    }
  }
  return "";
}

void rule_ordered_escape(const FileContext& file, const Reporter& out) {
  if (file.acknowledged("ordered-escape-checked")) return;
  const std::vector<Token>& t = file.tokens;
  // The taint sets live on the context so analyze_tree() can merge a
  // header's member declarations into the sibling .cpp (parse_file
  // seeds them with this file's own declarations).
  const std::set<std::string>& tainted_vars = file.tainted_vars;
  const std::set<std::string>& tainted_fns = file.tainted_fns;
  if (tainted_vars.empty() && tainted_fns.empty()) return;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i], "for") || i + 1 >= t.size() ||
        !is_punct(t[i + 1], "(")) {
      continue;
    }
    // Find the matching ')' of the for-header.
    int depth = 0;
    std::size_t close = std::string::npos;
    std::size_t colon = std::string::npos;  // range-for separator
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (is_punct(t[j], "(")) ++depth;
      else if (is_punct(t[j], ")")) {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (is_punct(t[j], ":") && depth == 1 &&
                 colon == std::string::npos) {
        colon = j;
      }
    }
    if (close == std::string::npos) continue;

    // Is the loop tainted?
    std::string container;
    if (colon != std::string::npos) {
      for (std::size_t j = colon + 1; j < close && container.empty(); ++j) {
        if (t[j].kind != TokenKind::kIdentifier) continue;
        const bool call = j + 1 < t.size() && is_punct(t[j + 1], "(");
        if (!call && tainted_vars.contains(t[j].text)) container = t[j].text;
        if (call && tainted_fns.contains(t[j].text)) {
          container = t[j].text + "()";
        }
      }
    } else {
      // Iterator loop: `x = tainted.begin()` somewhere in the header.
      for (std::size_t j = i + 2; j + 2 < close && container.empty(); ++j) {
        if (t[j].kind == TokenKind::kIdentifier &&
            tainted_vars.contains(t[j].text) && is_punct(t[j + 1], ".") &&
            is_ident(t[j + 2], "begin")) {
          container = t[j].text;
        }
      }
    }
    if (container.empty()) continue;

    // Loop body extent.
    std::size_t body_begin = close + 1;
    std::size_t body_end = body_begin;
    if (body_begin < t.size() && is_punct(t[body_begin], "{")) {
      int b = 0;
      for (std::size_t j = body_begin; j < t.size(); ++j) {
        if (is_punct(t[j], "{")) ++b;
        else if (is_punct(t[j], "}") && --b == 0) {
          body_end = j;
          break;
        }
      }
    } else {
      int b = 0;
      for (std::size_t j = body_begin; j < t.size(); ++j) {
        if (is_punct(t[j], "(") || is_punct(t[j], "{")) ++b;
        else if (is_punct(t[j], ")") || is_punct(t[j], "}")) --b;
        else if (is_punct(t[j], ";") && b == 0) {
          body_end = j;
          break;
        }
      }
    }

    const std::string sink = find_sink(t, body_begin, body_end);
    if (sink.empty()) continue;
    out.report(t[i].line, "ordered-escape",
               "iteration over hash-ordered container '" + container + "' " +
                   sink +
                   "; the order is not part of the simulation contract -- "
                   "use std::map / a sorted vector, or acknowledge an "
                   "audited file with `// sphinx-lint: "
                   "ordered-escape-checked -- <reason>`");
  }
}

}  // namespace

std::vector<Rule> ordered_escape_rules() {
  return {
      Rule{"ordered-escape",
           "unordered-container iteration must not escape into ordered "
           "output",
           "Flags range-for / iterator loops over std::unordered_map/set "
           "(or std::map/set keyed by a pointer) whose body appends to a "
           "sequence, accumulates (+=/-=), streams (<<), schedules events "
           "or calls anything that looks like "
           "journal/trace/record/serialize/write.  Hash iteration order is "
           "an implementation detail; letting it reach the journal, the "
           "flight recorder or any serialized artifact silently breaks the "
           "byte-diff determinism oracles.  Fix with an ordered container "
           "or sort-before-emit; acknowledge an audited file with "
           "`// sphinx-lint: ordered-escape-checked -- reason` or one line "
           "with sphinx-lint-allow(ordered-escape).",
           &rule_ordered_escape},
  };
}

}  // namespace sphinx::lint
