#include "workflow/generator.hpp"

#include <algorithm>

namespace sphinx::workflow {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, Rng rng,
                                     IdSpace& ids,
                                     data::ReplicaLocationService& rls,
                                     std::vector<SiteId> sites)
    : config_(config),
      rng_(std::move(rng)),
      ids_(ids),
      rls_(rls),
      sites_(std::move(sites)) {
  SPHINX_ASSERT(!sites_.empty(), "generator needs at least one site");
  SPHINX_ASSERT(config_.jobs_per_dag > 0, "jobs_per_dag must be positive");
  SPHINX_ASSERT(config_.min_inputs <= config_.max_inputs, "bad input range");
}

data::Lfn WorkloadGenerator::make_external_input() {
  const data::Lfn lfn =
      "lfn://input/f" + std::to_string(ids_.next_file++);
  const double bytes =
      rng_.uniform(config_.external_min_bytes, config_.external_max_bytes);
  // Register the configured number of replicas at distinct random sites.
  std::vector<SiteId> candidates = sites_;
  const int replicas = std::min<int>(config_.external_replicas,
                                     static_cast<int>(candidates.size()));
  for (int r = 0; r < replicas; ++r) {
    const auto pick = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1));
    rls_.register_replica(lfn, candidates[pick], bytes);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return lfn;
}

Dag WorkloadGenerator::generate(const std::string& name) {
  Dag dag(ids_.dags.next(), name);
  std::vector<JobId> created;
  created.reserve(static_cast<std::size_t>(config_.jobs_per_dag));

  for (int j = 0; j < config_.jobs_per_dag; ++j) {
    JobSpec job;
    job.id = ids_.jobs.next();
    job.name = name + "/job" + std::to_string(j);
    job.compute_time = config_.compute_time;
    job.output = "lfn://derived/" + name + "/out" + std::to_string(j) + "-" +
                 std::to_string(job.id.value());
    job.output_bytes =
        rng_.uniform(config_.output_min_bytes, config_.output_max_bytes);

    // Pick 0..max_parents parents among previously created jobs; their
    // outputs become inputs, which is what makes the structure a DAG.
    std::vector<JobId> parents;
    if (!created.empty()) {
      const int want = static_cast<int>(
          rng_.uniform_int(0, std::min<std::int64_t>(
                                  config_.max_parents,
                                  static_cast<std::int64_t>(created.size()))));
      std::vector<JobId> pool = created;
      for (int p = 0; p < want; ++p) {
        const auto pick = static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(pool.size()) - 1));
        parents.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    for (const JobId parent : parents) {
      job.inputs.push_back(dag.job(parent).output);
    }

    // Top up with pre-existing inputs until the 2..3 target is met.
    const int target = static_cast<int>(
        rng_.uniform_int(config_.min_inputs, config_.max_inputs));
    while (static_cast<int>(job.inputs.size()) < target) {
      job.inputs.push_back(make_external_input());
    }

    dag.add_job(job);
    for (const JobId parent : parents) dag.add_edge(parent, job.id);
    created.push_back(job.id);
  }

  SPHINX_ASSERT(dag.validate().ok(), "generator produced an invalid DAG");
  return dag;
}

std::vector<Dag> WorkloadGenerator::generate_batch(const std::string& prefix,
                                                   int count) {
  std::vector<Dag> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(generate(prefix + "-dag" + std::to_string(i)));
  }
  return out;
}

}  // namespace sphinx::workflow
