/// \file escape.cpp
/// Fixture: compliant counterparts -- an ordered container may feed a
/// sequence, and hash-order iteration is fine while it stays
/// commutative.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

std::vector<std::uint64_t> ordered_snapshot(
    const std::map<std::uint64_t, double>& by_id) {
  std::vector<std::uint64_t> out;
  for (const auto& [id, rate] : by_id) {
    out.push_back(id);  // fine: std::map iterates in key order
  }
  return out;
}

std::size_t count_hot(const std::unordered_map<std::uint64_t, double>& active) {
  std::size_t hot = 0;
  for (const auto& [id, rate] : active) {
    if (rate > 1.0) ++hot;  // fine: counting is commutative
  }
  return hot;
}

}  // namespace fixture
