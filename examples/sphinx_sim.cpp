/// sphinx_sim: a command-line driver for custom experiments.
///
/// Runs one experiment with the options given on the command line and
/// prints the figure-style report.  This is the "workbench" entry point
/// the paper positions SPHINX as ("a modular workbench for CS
/// researchers"): pick strategies, scale, workload shape, grid pathology
/// and monitoring quality without recompiling.
///
/// Usage:
///   example_sphinx_sim [--dags N] [--jobs N] [--seed S]
///                      [--algos ct,ql,nc,rr] [--no-feedback] [--policy]
///                      [--timeout MIN] [--monitor-poll MIN]
///                      [--no-failures] [--no-background] [--quiet]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace {

using namespace sphinx;

struct CliOptions {
  int dags = 30;
  int jobs = 10;
  std::uint64_t seed = 20050404;
  std::vector<std::string> algos = {"ct", "ql", "nc", "rr"};
  bool feedback = true;
  bool policy = false;
  double timeout_minutes = 20;
  double monitor_poll_minutes = 20;
  bool failures = true;
  bool background = true;
  bool quiet = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --dags N            DAG count (default 30)\n"
      "  --jobs N            jobs per DAG (default 10)\n"
      "  --seed S            master seed (default 20050404)\n"
      "  --algos LIST        comma list of ct,ql,nc,rr (default all four)\n"
      "  --no-feedback       disable the reliability feedback filter\n"
      "  --policy            enable quota policy (20%% per site)\n"
      "  --timeout MIN       tracker timeout in minutes (default 20)\n"
      "  --monitor-poll MIN  monitoring poll period (default 20)\n"
      "  --no-failures       disable site failures\n"
      "  --no-background     disable background load\n"
      "  --quiet             print only the completion table\n",
      argv0);
}

Expected<CliOptions> parse_cli(int argc, char** argv) {
  CliOptions options;
  const auto need_value = [&](int& i) -> Expected<std::string> {
    if (i + 1 >= argc) {
      return make_error("cli", std::string(argv[i]) + " needs a value");
    }
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dags") {
      auto v = need_value(i);
      if (!v) return Unexpected<Error>{v.error()};
      options.dags = std::atoi(v->c_str());
    } else if (arg == "--jobs") {
      auto v = need_value(i);
      if (!v) return Unexpected<Error>{v.error()};
      options.jobs = std::atoi(v->c_str());
    } else if (arg == "--seed") {
      auto v = need_value(i);
      if (!v) return Unexpected<Error>{v.error()};
      options.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--algos") {
      auto v = need_value(i);
      if (!v) return Unexpected<Error>{v.error()};
      options.algos = split(*v, ',');
    } else if (arg == "--no-feedback") {
      options.feedback = false;
    } else if (arg == "--policy") {
      options.policy = true;
    } else if (arg == "--timeout") {
      auto v = need_value(i);
      if (!v) return Unexpected<Error>{v.error()};
      options.timeout_minutes = std::atof(v->c_str());
    } else if (arg == "--monitor-poll") {
      auto v = need_value(i);
      if (!v) return Unexpected<Error>{v.error()};
      options.monitor_poll_minutes = std::atof(v->c_str());
    } else if (arg == "--no-failures") {
      options.failures = false;
    } else if (arg == "--no-background") {
      options.background = false;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return make_error("help", "");
    } else {
      return make_error("cli", "unknown option: " + arg);
    }
  }
  if (options.dags < 1 || options.jobs < 1 || options.timeout_minutes <= 0) {
    return make_error("cli", "counts must be positive");
  }
  return options;
}

Expected<core::Algorithm> algorithm_of(const std::string& code) {
  if (code == "ct") return core::Algorithm::kCompletionTime;
  if (code == "ql") return core::Algorithm::kQueueLength;
  if (code == "nc") return core::Algorithm::kNumCpus;
  if (code == "rr") return core::Algorithm::kRoundRobin;
  return make_error("cli", "unknown algorithm code: " + code +
                               " (want ct, ql, nc or rr)");
}

}  // namespace

int main(int argc, char** argv) {
  auto options = parse_cli(argc, argv);
  if (!options) {
    if (options.error().code != "help") {
      std::fprintf(stderr, "error: %s\n", options.error().message.c_str());
    }
    usage(argv[0]);
    return options.error().code == "help" ? 0 : 2;
  }

  exp::ExperimentConfig config;
  config.scenario.seed = options->seed;
  config.scenario.site_failures = options->failures;
  config.scenario.background_load = options->background;
  config.scenario.monitor.poll_period = minutes(options->monitor_poll_minutes);
  config.scenario.monitor.report_latency =
      std::min(minutes(options->monitor_poll_minutes) / 10.0, minutes(2.0));
  config.scenario.monitor.noise = 0.5;
  config.dag_count = options->dags;
  config.workload.jobs_per_dag = options->jobs;
  if (options->policy) {
    config.quota_cpu_fraction = 0.2;
    config.quota_disk_fraction = 0.2;
  }

  std::vector<exp::TenantSpec> specs;
  for (const std::string& code : options->algos) {
    auto algorithm = algorithm_of(std::string(trim(code)));
    if (!algorithm) {
      std::fprintf(stderr, "error: %s\n", algorithm.error().message.c_str());
      return 2;
    }
    exp::TenantOptions tenant;
    tenant.algorithm = *algorithm;
    tenant.use_feedback = options->feedback;
    tenant.use_policy = options->policy;
    tenant.job_timeout = minutes(options->timeout_minutes);
    specs.push_back({std::string(core::to_string(*algorithm)), tenant});
  }
  if (specs.empty()) {
    std::fprintf(stderr, "error: no algorithms selected\n");
    return 2;
  }

  if (!options->quiet) {
    std::printf("sphinx_sim: %d dags x %d jobs, seed %llu, %zu tenant(s), "
                "feedback %s, policy %s\n",
                options->dags, options->jobs,
                static_cast<unsigned long long>(options->seed), specs.size(),
                options->feedback ? "on" : "off",
                options->policy ? "on" : "off");
  }

  exp::Experiment experiment(config);
  const auto results = experiment.run(specs);

  std::printf("%s", exp::render_dag_completion(
                        "\nAverage DAG completion time (s):", results)
                        .c_str());
  if (!options->quiet) {
    std::printf("\n%s", exp::render_exec_idle(
                            "Average job execution and idle time (s):",
                            results)
                            .c_str());
    std::printf("\nRun summary:\n%s", exp::render_summary(results).c_str());
    std::printf("\nsimulation stopped at t=%s\n",
                format_duration(experiment.stopped_at()).c_str());
  }

  // Exit code: nonzero when any tenant failed to finish its workload.
  for (const auto& r : results) {
    if (r.dags_finished != r.dags_total) return 1;
  }
  return 0;
}
