#!/usr/bin/env sh
# One-command correctness gate: plain build + tests, the ASan+UBSan
# preset, and sphinx-lint.  Run from the repository root:
#
#   tools/check.sh          # everything
#   tools/check.sh fast     # skip the sanitizer build
set -eu

cd "$(dirname "$0")/.."

echo "== build + test (relwithdebinfo) =="
cmake --preset relwithdebinfo
cmake --build --preset relwithdebinfo
ctest --preset relwithdebinfo

echo "== sphinx-lint =="
./build/relwithdebinfo/tools/sphinx_lint/sphinx_lint \
  --root . src tests bench examples

if [ "${1:-}" != "fast" ]; then
  echo "== build + test (asan-ubsan) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan
  ctest --preset asan-ubsan
fi

echo "check.sh: all gates passed"
