// Fixture: missing #pragma once and /// \file comment; must trip both
// header hygiene rules.
#ifndef SPHINX_FIXTURE_BAD_HEADER_HPP
#define SPHINX_FIXTURE_BAD_HEADER_HPP

inline int answer() { return 42; }

#endif
