// Tests for GSI credentials, the message bus and Clarens services.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rpc/clarens.hpp"
#include "rpc/gsi.hpp"
#include "rpc/transport.hpp"
#include "sim/engine.hpp"

namespace sphinx::rpc {
namespace {

Identity user_identity() {
  return Identity{"/DC=org/DC=griphyn/CN=Production Manager", "/CN=iGOC CA"};
}

Proxy user_proxy(SimTime now = 0.0, Duration lifetime = hours(12)) {
  return Proxy(user_identity(), "uscms", {"/uscms/production"}, now, lifetime);
}

TEST(Proxy, ValidWithinLifetime) {
  const Proxy p = user_proxy(0.0, 100.0);
  EXPECT_TRUE(p.valid_at(0.0));
  EXPECT_TRUE(p.valid_at(99.9));
  EXPECT_FALSE(p.valid_at(100.0));
}

TEST(Proxy, DefaultProxyIsAnonymousAndInvalid) {
  EXPECT_FALSE(Proxy{}.valid_at(0.0));
}

TEST(Proxy, DelegationNeverOutlivesParent) {
  const Proxy p = user_proxy(0.0, 100.0);
  const Proxy child = p.delegate(50.0, 200.0);
  EXPECT_DOUBLE_EQ(child.expires_at(), 100.0);
  const Proxy short_child = p.delegate(50.0, 10.0);
  EXPECT_DOUBLE_EQ(short_child.expires_at(), 60.0);
  EXPECT_EQ(child.identity(), p.identity());
}

TEST(Proxy, PrincipalIncludesVoAndGroups) {
  EXPECT_EQ(user_proxy().principal(), "uscms:/uscms/production");
}

TEST(AuthzPolicy, NoAclMeansAnyAuthenticatedCaller) {
  AuthzPolicy policy;
  EXPECT_TRUE(policy.check(user_proxy(), "anything", 0.0).allowed);
}

TEST(AuthzPolicy, ExpiredProxyDenied) {
  AuthzPolicy policy;
  const auto d = policy.check(user_proxy(0.0, 10.0), "m", 20.0);
  EXPECT_FALSE(d.allowed);
  EXPECT_NE(d.reason.find("expired"), std::string::npos);
}

TEST(AuthzPolicy, VoAclEnforced) {
  AuthzPolicy policy;
  policy.allow_vo("schedule", "atlas");
  EXPECT_FALSE(policy.check(user_proxy(), "schedule", 0.0).allowed);
  policy.allow_vo("schedule", "uscms");
  EXPECT_TRUE(policy.check(user_proxy(), "schedule", 0.0).allowed);
}

TEST(AuthzPolicy, WildcardMethodAcl) {
  AuthzPolicy policy;
  policy.allow_vo("*", "uscms");
  EXPECT_TRUE(policy.check(user_proxy(), "whatever", 0.0).allowed);
}

TEST(AuthzPolicy, SubjectAclAndBanList) {
  AuthzPolicy policy;
  policy.allow_subject("schedule", user_identity().subject);
  EXPECT_TRUE(policy.check(user_proxy(), "schedule", 0.0).allowed);
  policy.ban_subject(user_identity().subject);
  EXPECT_FALSE(policy.check(user_proxy(), "schedule", 0.0).allowed);
}

TEST(AuthzPolicy, AclOnOtherMethodDeniesThisOne) {
  AuthzPolicy policy;
  policy.allow_vo("other", "uscms");
  // An ACL exists somewhere, so unlisted methods are no longer open.
  EXPECT_FALSE(policy.check(user_proxy(), "schedule", 0.0).allowed);
}

class BusFixture : public ::testing::Test {
 protected:
  sim::Engine engine;
  MessageBus bus{engine, Rng(1), 0.05, 0.0};
};

TEST_F(BusFixture, DeliversAfterLatency) {
  std::vector<std::string> got;
  bus.register_endpoint("server", [&](const Envelope& e) {
    got.push_back(e.payload);
    EXPECT_DOUBLE_EQ(e.sent_at, 0.0);
  });
  bus.send("client", "server", "hello");
  EXPECT_TRUE(got.empty());  // not yet delivered
  engine.run_until();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hello");
  EXPECT_DOUBLE_EQ(engine.now(), 0.05);
}

TEST_F(BusFixture, PreservesSendOrderAtEqualLatency) {
  std::vector<int> order;
  bus.register_endpoint("s", [&](const Envelope& e) {
    order.push_back(std::stoi(e.payload));
  });
  for (int i = 0; i < 5; ++i) bus.send("c", "s", std::to_string(i));
  engine.run_until();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(BusFixture, DropsToMissingEndpoint) {
  bus.send("c", "nobody", "lost");
  engine.run_until();
  EXPECT_EQ(bus.stats().sent, 1u);
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 1u);
  EXPECT_EQ(bus.stats().lost_injected, 0u);
  EXPECT_EQ(bus.stats().delivered, 0u);
}

TEST_F(BusFixture, UnregisterDropsInflight) {
  bool delivered = false;
  bus.register_endpoint("s", [&](const Envelope&) { delivered = true; });
  bus.send("c", "s", "x");
  bus.unregister_endpoint("s");
  engine.run_until();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 1u);
}

TEST_F(BusFixture, ReplyCorrelatesWithRequest) {
  MessageId request_id;
  bus.register_endpoint("server", [&](const Envelope& e) {
    request_id = e.id;
    bus.reply(e, "pong");
  });
  MessageId got_reply_to;
  bus.register_endpoint("client", [&](const Envelope& e) {
    got_reply_to = e.in_reply_to;
    EXPECT_EQ(e.payload, "pong");
  });
  bus.send("client", "server", "ping");
  engine.run_until();
  EXPECT_EQ(got_reply_to, request_id);
  EXPECT_TRUE(got_reply_to.valid());
}

class ClarensFixture : public ::testing::Test {
 protected:
  ClarensFixture() : service(bus, "sphinx-server", make_policy()) {
    service.register_method(
        "echo", [](const std::vector<XrValue>& params, const Proxy&) {
          return Expected<XrValue>(XrValue(params.at(0)));
        });
    service.register_method(
        "whoami", [](const std::vector<XrValue>&, const Proxy& proxy) {
          return Expected<XrValue>(XrValue(proxy.principal()));
        });
    service.register_method(
        "boom", [](const std::vector<XrValue>&, const Proxy&) {
          return Expected<XrValue>(make_error("app", "handler failed"));
        });
  }

  static AuthzPolicy make_policy() {
    AuthzPolicy policy;
    policy.allow_vo("*", "uscms");
    return policy;
  }

  sim::Engine engine;
  MessageBus bus{engine, Rng(2), 0.05, 0.0};
  ClarensService service;
};

TEST_F(ClarensFixture, RoundTripCall) {
  ClarensClient client(bus, "client-1", user_proxy());
  std::string got;
  client.call("sphinx-server", "echo", {XrValue("payload")},
              [&](Expected<XrValue> result) {
                ASSERT_TRUE(result.has_value());
                got = result->as_string();
              });
  engine.run_until();
  EXPECT_EQ(got, "payload");
  EXPECT_EQ(service.calls_served(), 1u);
  EXPECT_EQ(client.pending(), 0u);
}

TEST_F(ClarensFixture, ProxyTravelsWithCall) {
  ClarensClient client(bus, "client-1", user_proxy());
  std::string got;
  client.call("sphinx-server", "whoami", {},
              [&](Expected<XrValue> r) { got = r->as_string(); });
  engine.run_until();
  EXPECT_EQ(got, "uscms:/uscms/production");
}

TEST_F(ClarensFixture, UnknownMethodFaults) {
  ClarensClient client(bus, "client-1", user_proxy());
  std::string code;
  client.call("sphinx-server", "nope", {},
              [&](Expected<XrValue> r) { code = r.error().code; });
  engine.run_until();
  EXPECT_EQ(code, "fault:2");
}

TEST_F(ClarensFixture, HandlerErrorBecomesApplicationFault) {
  ClarensClient client(bus, "client-1", user_proxy());
  std::string code;
  client.call("sphinx-server", "boom", {},
              [&](Expected<XrValue> r) { code = r.error().code; });
  engine.run_until();
  EXPECT_EQ(code, "fault:100");
}

TEST_F(ClarensFixture, WrongVoDenied) {
  const Proxy intruder(Identity{"/CN=Someone Else", "/CN=CA"}, "ligo", {}, 0.0,
                       hours(1));
  ClarensClient client(bus, "client-2", intruder);
  std::string code;
  client.call("sphinx-server", "echo", {XrValue("x")},
              [&](Expected<XrValue> r) { code = r.error().code; });
  engine.run_until();
  EXPECT_EQ(code, "fault:3");
  EXPECT_EQ(service.calls_denied(), 1u);
}

TEST_F(ClarensFixture, ExpiredProxyDeniedAtCallTime) {
  ClarensClient client(bus, "client-1", user_proxy(0.0, minutes(1)));
  // Let the proxy expire before the call is made.
  engine.schedule_at(120.0, "late-call", [&] {
    client.call("sphinx-server", "echo", {XrValue("x")},
                [&](Expected<XrValue> r) {
                  EXPECT_FALSE(r.has_value());
                  EXPECT_EQ(r.error().code, "fault:3");
                });
  });
  engine.run_until();
  EXPECT_EQ(service.calls_denied(), 1u);
}

TEST_F(ClarensFixture, GarbagePayloadFaults) {
  bool got_fault = false;
  bus.register_endpoint("raw-client", [&](const Envelope& env) {
    const auto parsed = MethodResponse::parse(env.payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->is_fault);
    EXPECT_EQ(parsed->fault.code, 1);
    got_fault = true;
  });
  bus.send("raw-client", "sphinx-server", "this is not xml", user_proxy());
  engine.run_until();
  EXPECT_TRUE(got_fault);
}

// --- dedup cache management -------------------------------------------------

TEST_F(ClarensFixture, ShrinkDedupCapacityToZeroDropsCacheEagerly) {
  const std::string wire = MethodCall{"echo", {XrValue("x")}}.serialize();
  bus.send("client-1", "sphinx-server", wire, user_proxy(), 1);
  engine.run_until();
  EXPECT_EQ(service.calls_served(), 1u);
  EXPECT_EQ(service.dedup_size(), 1u);

  // Zeroing the capacity must trim the cache *now*: the next insert never
  // comes when dedup is disabled, so a lazy trim would pin the stale
  // replies (and their memory) forever.
  service.set_dedup_capacity(0);
  EXPECT_EQ(service.dedup_size(), 0u);

  // With dedup off, a retransmission re-runs the handler.
  bus.send("client-1", "sphinx-server", wire, user_proxy(), 1);
  engine.run_until();
  EXPECT_EQ(service.calls_replayed(), 0u);
  EXPECT_EQ(service.calls_served(), 2u);
  EXPECT_EQ(service.dedup_size(), 0u);
}

TEST_F(ClarensFixture, ShrinkDedupCapacityBelowSizeEvictsOldestFirst) {
  const std::string wire = MethodCall{"echo", {XrValue("x")}}.serialize();
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    bus.send("client-1", "sphinx-server", wire, user_proxy(), seq);
  }
  engine.run_until();
  EXPECT_EQ(service.calls_served(), 4u);
  EXPECT_EQ(service.dedup_size(), 4u);

  // Shrinking below occupancy trims FIFO: seqs 1 and 2 leave, 3 and 4 stay.
  service.set_dedup_capacity(2);
  EXPECT_EQ(service.dedup_size(), 2u);

  bus.send("client-1", "sphinx-server", wire, user_proxy(), 1);  // evicted
  engine.run_until();
  EXPECT_EQ(service.calls_served(), 5u);
  EXPECT_EQ(service.calls_replayed(), 0u);

  bus.send("client-1", "sphinx-server", wire, user_proxy(), 4);  // retained
  engine.run_until();
  EXPECT_EQ(service.calls_served(), 5u);
  EXPECT_EQ(service.calls_replayed(), 1u);
}

TEST_F(ClarensFixture, GrowingDedupCapacityKeepsExistingEntries) {
  const std::string wire = MethodCall{"echo", {XrValue("x")}}.serialize();
  bus.send("client-1", "sphinx-server", wire, user_proxy(), 1);
  engine.run_until();
  service.set_dedup_capacity(4096);
  EXPECT_EQ(service.dedup_size(), 1u);
  bus.send("client-1", "sphinx-server", wire, user_proxy(), 1);
  engine.run_until();
  EXPECT_EQ(service.calls_replayed(), 1u);
}

TEST(ClarensDedupKey, LengthPrefixMakesHashBearingNamesInjective) {
  // "<len>:<from>#<seq>": the length prefix pins where the caller name
  // ends, so a '#' inside a shard-qualified name can never be mistaken
  // for the name/sequence separator.
  EXPECT_EQ(ClarensService::dedup_key("server#2", 3), "8:server#2#3");
  EXPECT_EQ(ClarensService::dedup_key("server", 23), "6:server#23");

  const std::vector<std::pair<std::string, std::uint64_t>> pairs = {
      {"server", 1},     {"server", 11},     {"server#1", 1},
      {"server#", 11},   {"server#1#1", 1},  {"server#11", 1},
      {"scheduler#2", 3}, {"scheduler#23", 3}, {"scheduler", 23},
  };
  std::set<std::string> keys;
  for (const auto& [from, seq] : pairs) {
    keys.insert(ClarensService::dedup_key(from, seq));
  }
  EXPECT_EQ(keys.size(), pairs.size());
}

TEST_F(ClarensFixture, ShardQualifiedCallersKeepSeparateDedupSlots) {
  // Two callers whose names embed '#' (the tentpole's shard-qualified
  // scheduler names) retransmit with the same sequence number; each must
  // get its *own* cached reply back, never the other's.
  std::vector<std::string> a_replies;
  std::vector<std::string> b_replies;
  bus.register_endpoint("scheduler#2", [&](const Envelope& e) {
    a_replies.push_back(MethodResponse::parse(e.payload)->value.as_string());
  });
  bus.register_endpoint("scheduler#21", [&](const Envelope& e) {
    b_replies.push_back(MethodResponse::parse(e.payload)->value.as_string());
  });
  const std::string wire_a = MethodCall{"echo", {XrValue("alpha")}}.serialize();
  const std::string wire_b = MethodCall{"echo", {XrValue("beta")}}.serialize();

  bus.send("scheduler#2", "sphinx-server", wire_a, user_proxy(), 1);
  bus.send("scheduler#21", "sphinx-server", wire_b, user_proxy(), 1);
  engine.run_until();
  EXPECT_EQ(service.calls_served(), 2u);

  bus.send("scheduler#2", "sphinx-server", wire_a, user_proxy(), 1);
  bus.send("scheduler#21", "sphinx-server", wire_b, user_proxy(), 1);
  engine.run_until();
  EXPECT_EQ(service.calls_served(), 2u);
  EXPECT_EQ(service.calls_replayed(), 2u);
  EXPECT_EQ(a_replies, (std::vector<std::string>{"alpha", "alpha"}));
  EXPECT_EQ(b_replies, (std::vector<std::string>{"beta", "beta"}));
}

TEST_F(ClarensFixture, ManyConcurrentCallsAllComplete) {
  ClarensClient client(bus, "client-1", user_proxy());
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    client.call("sphinx-server", "echo", {XrValue(i)},
                [&completed, i](Expected<XrValue> r) {
                  ASSERT_TRUE(r.has_value());
                  EXPECT_EQ(r->as_int(), i);
                  ++completed;
                });
  }
  engine.run_until();
  EXPECT_EQ(completed, 100);
}

}  // namespace
}  // namespace sphinx::rpc
