#include "core/server.hpp"

#include <algorithm>

#include "data/replication.hpp"

namespace sphinx::core {

using rpc::XrValue;

SphinxServer::SphinxServer(rpc::MessageBus& bus,
                           std::vector<CatalogSite> catalog,
                           data::ReplicaLocationService& rls,
                           data::TransferService& transfers,
                           const monitor::MonitoringService* monitoring,
                           ServerConfig config)
    : SphinxServer(bus, std::move(catalog), rls, transfers, monitoring,
                   std::move(config), std::make_unique<DataWarehouse>()) {}

SphinxServer::SphinxServer(rpc::MessageBus& bus,
                           std::vector<CatalogSite> catalog,
                           data::ReplicaLocationService& rls,
                           data::TransferService& transfers,
                           const monitor::MonitoringService* monitoring,
                           ServerConfig config,
                           std::unique_ptr<DataWarehouse> warehouse)
    : bus_(bus),
      catalog_(std::move(catalog)),
      rls_(rls),
      transfers_(transfers),
      monitoring_(monitoring),
      config_(std::move(config)),
      warehouse_(std::move(warehouse)),
      algorithm_(make_algorithm(config_.algorithm)) {
  SPHINX_ASSERT(!catalog_.empty(), "server needs a non-empty site catalog");

  rpc::AuthzPolicy policy;
  for (const std::string& vo : config_.allowed_vos) policy.allow_vo("*", vo);
  service_ = std::make_unique<rpc::ClarensService>(bus_, config_.endpoint,
                                                   std::move(policy));
  // The server's own outgoing identity (host certificate proxy).
  const rpc::Proxy host_proxy(
      rpc::Identity{"/CN=" + config_.endpoint, "/CN=iGOC CA"}, "ivdgl", {},
      bus_.engine().now(), hours(24 * 365));
  out_ = std::make_unique<rpc::ClarensClient>(bus_, config_.endpoint + "/out",
                                              host_proxy);
  register_methods();

  control_ = std::make_unique<sim::PeriodicProcess>(
      bus_.engine(), config_.endpoint + ":control", config_.sweep_period,
      [this] { sweep(); });
}

Expected<std::unique_ptr<SphinxServer>> SphinxServer::recover(
    rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
    data::ReplicaLocationService& rls, data::TransferService& transfers,
    const monitor::MonitoringService* monitoring, ServerConfig config,
    const db::Journal& journal) {
  auto warehouse = DataWarehouse::recover_from(journal);
  if (!warehouse) return Unexpected<Error>{warehouse.error()};
  auto server = std::unique_ptr<SphinxServer>(new SphinxServer(
      bus, std::move(catalog), rls, transfers, monitoring, std::move(config),
      std::move(*warehouse)));
  // Rebuild the in-memory DAG -> client routing from the dags table.
  for (const DagRecord& dag : server->warehouse_->all_dags()) {
    server->dag_client_[dag.id] = dag.client;
    server->dag_user_[dag.id] = dag.user;
  }
  // In-flight plans were already sent; jobs stuck in kPlanned will be
  // re-reported by the client tracker (or time out and be replanned), so
  // no plan is lost permanently.
  return server;
}

SphinxServer::~SphinxServer() = default;

void SphinxServer::start() { control_->start(); }
void SphinxServer::stop() { control_->stop(); }

void SphinxServer::register_methods() {
  service_->register_method(
      "sphinx.submit_dag",
      [this](const std::vector<XrValue>& params, const rpc::Proxy& proxy) {
        return handle_submit_dag(params, proxy);
      });
  service_->register_method(
      "sphinx.report",
      [this](const std::vector<XrValue>& params, const rpc::Proxy& proxy) {
        return handle_report(params, proxy);
      });
  service_->register_method(
      "sphinx.set_quota",
      [this](const std::vector<XrValue>& params, const rpc::Proxy& proxy) {
        return handle_set_quota(params, proxy);
      });
}

Expected<XrValue> SphinxServer::handle_submit_dag(
    const std::vector<XrValue>& params, const rpc::Proxy& proxy) {
  if (params.size() < 3 || params.size() > 5 || !params[0].is_string() ||
      !params[1].is_int()) {
    return make_error(
        "bad_request",
        "expected [client_endpoint, user_id, dag, priority?, deadline?]");
  }
  auto dag = decode_dag(params[2]);
  if (!dag) return Unexpected<Error>{dag.error()};
  const std::string& client = params[0].as_string();
  const UserId user(static_cast<std::uint64_t>(params[1].as_int()));
  double priority = 0.0;
  if (params.size() >= 4) {
    if (!params[3].is_double() && !params[3].is_int()) {
      return make_error("bad_request", "priority must be numeric");
    }
    priority = params[3].as_double();
  }
  SimTime deadline = kNever;
  if (params.size() == 5) {
    if (!params[4].is_double() && !params[4].is_int()) {
      return make_error("bad_request", "deadline must be numeric");
    }
    deadline = params[4].as_double();
  }

  warehouse_->insert_dag(*dag, client, user, bus_.engine().now(), priority,
                         deadline);
  dag_client_[dag->id()] = client;
  dag_user_[dag->id()] = user;
  ++stats_.dags_received;
  log_.debug("received dag ", dag->name(), " (", dag->size(), " jobs) from ",
             client, " [", proxy.principal(), "]");
  return XrValue(dag->id().value());
}

Expected<XrValue> SphinxServer::handle_report(
    const std::vector<XrValue>& params, const rpc::Proxy&) {
  if (params.size() != 1) {
    return make_error("bad_request", "expected [report]");
  }
  auto report = decode_report(params[0]);
  if (!report) return Unexpected<Error>{report.error()};
  ++stats_.reports_processed;

  const auto job = warehouse_->job(report->job);
  if (!job.has_value()) {
    return make_error("unknown_job",
                      "no job " + std::to_string(report->job.value()));
  }

  switch (report->kind) {
    case ReportKind::kSubmitted:
      if (job->state == JobState::kPlanned) {
        warehouse_->set_job_state(job->id, JobState::kSubmitted);
      }
      break;
    case ReportKind::kRunning:
      if (job->state == JobState::kSubmitted ||
          job->state == JobState::kPlanned) {
        warehouse_->set_job_state(job->id, JobState::kRunning);
      }
      break;
    case ReportKind::kCompleted: {
      if (job->state == JobState::kCompleted) {
        // Duplicate completion report: folding it in again would double
        // count the site's statistics and re-run the DAG finish check.
        break;
      }
      warehouse_->set_job_state(job->id, JobState::kCompleted);
      // Feedback: fold the completion time into the site's EWMA (the
      // prediction module's knowledge base, eq. 3).
      warehouse_->record_completion(report->site, report->completion_time);
      maybe_finish_dag(job->dag);
      break;
    }
    case ReportKind::kCancelled:
    case ReportKind::kHeld: {
      if (job->state == JobState::kCompleted ||
          job->state == JobState::kUnplanned) {
        // Stale report: the job already finished, or the attempt was
        // already torn down and is waiting for the planner.  Acting on
        // it would double-refund quota and skew the site's statistics.
        break;
      }
      // The tracker killed or observed the death of this attempt.  Return
      // the reserved quota and queue the job for replanning.
      warehouse_->set_job_state(job->id, report->kind == ReportKind::kHeld
                                             ? JobState::kHeld
                                             : JobState::kCancelled);
      warehouse_->record_cancellation(report->site,
                                      report->completion_time);
      if (config_.use_policy) {
        const auto user = dag_user_.find(job->dag);
        if (user != dag_user_.end()) {
          warehouse_->refund_quota(user->second, report->site, "cpu_seconds",
                                   job->compute_time);
          warehouse_->refund_quota(user->second, report->site, "disk_bytes",
                                   job->output_bytes);
        }
      }
      // Back to the planner on the next sweep.
      warehouse_->set_job_state(job->id, JobState::kUnplanned);
      break;
    }
  }
  return XrValue(true);
}

Expected<XrValue> SphinxServer::handle_set_quota(
    const std::vector<XrValue>& params, const rpc::Proxy&) {
  if (params.size() != 4 || !params[0].is_int() || !params[1].is_int() ||
      !params[2].is_string()) {
    return make_error("bad_request",
                      "expected [user, site, resource, limit]");
  }
  set_quota(UserId(static_cast<std::uint64_t>(params[0].as_int())),
            SiteId(static_cast<std::uint64_t>(params[1].as_int())),
            params[2].as_string(), params[3].as_double());
  return XrValue(true);
}

void SphinxServer::set_quota(UserId user, SiteId site,
                             const std::string& resource, double limit) {
  warehouse_->set_quota(user, site, resource, limit);
}

void SphinxServer::sweep() {
  // Per-sweep snapshot of the eq. 1/2 "planned + unfinished" terms; kept
  // current as this sweep plans jobs.  No other event can interleave
  // while a sweep runs, so the snapshot stays consistent.
  sweep_outstanding_ = warehouse_->outstanding_by_site();
  // Control process: wake the module responsible for each state.
  for (const DagRecord& dag : warehouse_->dags_in_state(DagState::kReceived)) {
    reduce_dag(dag);
  }
  for (const DagRecord& dag : warehouse_->dags_in_state(DagState::kReduced)) {
    warehouse_->set_dag_state(dag.id, DagState::kPlanning);
  }
  // Requests are planned by priority, then submission order -- the
  // server "provides functionality for scheduling jobs from multiple
  // users concurrently based on the policy and priorities of these jobs"
  // (paper section 5).
  auto planning = warehouse_->dags_in_state(DagState::kPlanning);
  if (config_.use_qos_ordering) {
    // Priority first, then earliest deadline first among equals.
    std::stable_sort(planning.begin(), planning.end(),
                     [](const DagRecord& a, const DagRecord& b) {
                       if (a.priority != b.priority) {
                         return a.priority > b.priority;
                       }
                       return a.deadline < b.deadline;
                     });
  }
  for (const DagRecord& dag : planning) {
    plan_dag(dag);
  }
  // Every control-process sweep leaves the warehouse in a sound state;
  // compiled out with the rest of the contracts layer.
  warehouse_->check_invariants();
}

void SphinxServer::reduce_dag(const DagRecord& dag) {
  // "The DAG reducer simply checks for the existence of the output files
  // of each job, and if they all exist, the job ... can be deleted."  One
  // clubbed RLS call covers the whole DAG.
  const auto jobs = warehouse_->jobs_of_dag(dag.id);
  std::vector<data::Lfn> outputs;
  outputs.reserve(jobs.size());
  for (const JobRecord& job : jobs) outputs.push_back(job.output);
  const auto replicas = rls_.locate_bulk(outputs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!replicas[i].empty()) {
      warehouse_->set_job_state(jobs[i].id, JobState::kCompleted);
      ++stats_.jobs_reduced;
    }
  }
  warehouse_->set_dag_state(dag.id, DagState::kReduced);
  maybe_finish_dag(dag.id);
}

void SphinxServer::plan_dag(const DagRecord& dag) {
  const auto completed = warehouse_->completed_jobs(dag.id);
  for (const JobRecord& job : warehouse_->jobs_of_dag(dag.id)) {
    if (job.state != JobState::kUnplanned) continue;
    const auto parents = warehouse_->job_parents(job.id);
    const bool ready =
        std::all_of(parents.begin(), parents.end(),
                    [&](JobId p) { return completed.contains(p); });
    if (!ready) continue;
    plan_job(dag, job);
  }
}

std::vector<CandidateSite> SphinxServer::feasible_sites(const DagRecord& dag,
                                                        const JobRecord& job) {
  std::vector<CandidateSite> reliable;
  std::vector<CandidateSite> unreliable;  // kept for the starvation fallback
  bool policy_rejected_any = false;
  for (const CatalogSite& entry : catalog_) {
    // Policy filter (eq. 4): quota_i^s >= required_i^s for every resource.
    if (config_.use_policy) {
      const double cpu_quota =
          warehouse_->quota_remaining(dag.user, entry.id, "cpu_seconds");
      const double disk_quota =
          warehouse_->quota_remaining(dag.user, entry.id, "disk_bytes");
      if (cpu_quota < job.compute_time || disk_quota < job.output_bytes) {
        policy_rejected_any = true;
        continue;
      }
    }
    const SiteStats stats = warehouse_->site_stats(entry.id);

    CandidateSite site;
    site.id = entry.id;
    site.cpus = entry.cpus;
    if (const auto it = sweep_outstanding_.find(entry.id);
        it != sweep_outstanding_.end()) {
      site.outstanding = it->second;
    }
    site.completed = stats.completed;
    site.cancelled = stats.cancelled;
    site.avg_completion = stats.avg_completion;
    site.samples = stats.samples;
    if (monitoring_ != nullptr) {
      if (const auto snap = monitoring_->snapshot(entry.id); snap.has_value()) {
        site.monitored = true;
        site.mon_queued = snap->queued;
        site.mon_running = snap->running;
      }
    }
    // Feedback filter: "sites having more number of cancelled jobs than
    // completed jobs are marked unreliable".
    if (config_.use_feedback && stats.cancelled > stats.completed) {
      unreliable.push_back(site);
    } else {
      reliable.push_back(site);
    }
  }
  if (policy_rejected_any) ++stats_.policy_rejections;
  // Starvation guard: if feedback flagged every policy-feasible site,
  // fall back to the full list rather than deadlock the DAG.
  if (reliable.empty()) return unreliable;
  return reliable;
}

bool SphinxServer::plan_job(const DagRecord& dag, const JobRecord& job) {
  // Input availability: every input must have at least one replica.
  const auto inputs = warehouse_->job_inputs(job.id);
  const auto located = rls_.locate_bulk(inputs);
  for (const auto& replicas : located) {
    if (replicas.empty()) return false;  // inputs not available yet
  }

  SchedulingContext context;
  context.now = bus_.engine().now();
  context.sites = feasible_sites(dag, job);
  const auto site = algorithm_->select(context);
  if (!site.has_value()) return false;  // no feasible site right now

  // Choose the optimal transfer source for each input (planner step 3).
  ExecutionPlan plan;
  plan.job = job.id;
  plan.dag = dag.id;
  plan.job_name = job.name;
  plan.site = *site;
  plan.compute_time = job.compute_time;
  plan.output = job.output;
  plan.output_bytes = job.output_bytes;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto choice = data::select_replica(located[i], *site, transfers_);
    SPHINX_ASSERT(choice.has_value(), "located input lost its replicas");
    plan.inputs.push_back(PlannedInput{inputs[i], choice->replica.site,
                                       choice->replica.size_bytes});
  }

  // QoS: deadline requests jump within-VO batch queues; explicit request
  // priority adds a smaller bounded nudge.
  if (config_.use_qos_ordering) {
    plan.batch_priority = std::clamp(dag.priority / 10.0, -0.4, 0.4) +
                          (dag.deadline < kNever ? 0.5 : 0.0);
  }

  // Planner step 4: final outputs (no consumer within the DAG) go to
  // persistent storage; intermediates stay on their execution site.
  if (config_.persistent_site.valid() &&
      warehouse_->job_children(job.id).empty()) {
    plan.persist_output = true;
    plan.persistent_site = config_.persistent_site;
  }

  warehouse_->set_job_planned(job.id, *site, context.now);
  ++sweep_outstanding_[*site];
  plan.attempt = job.attempt + 1;
  if (config_.use_policy) {
    warehouse_->consume_quota(dag.user, *site, "cpu_seconds",
                              job.compute_time);
    warehouse_->consume_quota(dag.user, *site, "disk_bytes",
                              job.output_bytes);
  }
  ++stats_.plans_sent;
  if (plan.attempt > 1) ++stats_.replans;
  send_plan(dag, plan);
  return true;
}

void SphinxServer::send_plan(const DagRecord& dag, const ExecutionPlan& plan) {
  const auto client = dag_client_.find(dag.id);
  SPHINX_ASSERT(client != dag_client_.end(), "dag without a client route");
  out_->call(client->second, "sphinx_client.execute_plan",
             {encode_plan(plan)}, [this, job = plan.job](auto result) {
               if (!result.has_value()) {
                 // Client unreachable: the job stays kPlanned; the
                 // client's tracker (or its absence) will eventually
                 // surface as a cancellation and a replan.
                 log_.warn("plan delivery failed for job ", job.value(), ": ",
                           result.error().to_string());
               }
             });
}

void SphinxServer::maybe_finish_dag(DagId dag_id) {
  const auto dag = warehouse_->dag(dag_id);
  if (!dag.has_value() || dag->state == DagState::kFinished) return;
  const auto jobs = warehouse_->jobs_of_dag(dag_id);
  const bool all_done =
      std::all_of(jobs.begin(), jobs.end(), [](const JobRecord& job) {
        return job.state == JobState::kCompleted;
      });
  if (!all_done) return;
  const SimTime now = bus_.engine().now();
  warehouse_->set_dag_finished(dag_id, now);
  const auto client = dag_client_.find(dag_id);
  if (client != dag_client_.end()) {
    out_->call(client->second, "sphinx_client.dag_done",
               {XrValue(dag_id.value()), XrValue(now)}, [](auto) {});
  }
}

}  // namespace sphinx::core
