# Empty dependencies file for baseline_manual.
# This may be replaced when dependencies are built.
