#include "db/database.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace sphinx::db {

Database::Database() = default;
Database::~Database() = default;

Table& Database::create_table(const std::string& name, Schema schema) {
  SPHINX_ASSERT(!tables_.contains(name), "table already exists: " + name);
  if (journaling_) {
    JournalEntry entry;
    entry.op = JournalEntry::Op::kCreateTable;
    entry.table = name;
    entry.schema = schema.columns();
    journal_.append(std::move(entry));
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  table->set_observer(this);
  Table& ref = *table;
  tables_.emplace(name, std::move(table));
  creation_order_.push_back(name);
  return ref;
}

Table& Database::table(const std::string& name) {
  const auto it = tables_.find(name);
  SPHINX_ASSERT(it != tables_.end(), "no such table: " + name);
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  const auto it = tables_.find(name);
  SPHINX_ASSERT(it != tables_.end(), "no such table: " + name);
  return *it->second;
}

bool Database::has_table(const std::string& name) const noexcept {
  return tables_.contains(name);
}

std::vector<std::string> Database::table_names() const {
  return creation_order_;
}

StatusOrError Database::recover(const Journal& journal) {
  if (!tables_.empty()) {
    return make_error("recover_nonempty",
                      "recover() requires an empty database");
  }
  for (const JournalEntry& e : journal.entries()) {
    switch (e.op) {
      case JournalEntry::Op::kCreateTable: {
        if (tables_.contains(e.table)) {
          return make_error("recover_replay", "duplicate table: " + e.table);
        }
        create_table(e.table, Schema(e.schema));
        break;
      }
      case JournalEntry::Op::kInsert: {
        if (!tables_.contains(e.table)) {
          return make_error("recover_replay", "insert into missing table");
        }
        table(e.table).insert_with_id(e.row, e.cells);
        break;
      }
      case JournalEntry::Op::kUpdate: {
        if (!tables_.contains(e.table) ||
            !table(e.table).update(e.row, e.column, e.cells.at(0))) {
          return make_error("recover_replay", "update of missing row");
        }
        break;
      }
      case JournalEntry::Op::kErase: {
        if (!tables_.contains(e.table) || !table(e.table).erase(e.row)) {
          return make_error("recover_replay", "erase of missing row");
        }
        break;
      }
    }
  }
  check_invariants();  // a replayed store must be as sound as the original
  return {};
}

void Database::check_invariants() const {
#if SPHINX_CONTRACTS_ENABLED
  SPHINX_INVARIANT(creation_order_.size() == tables_.size(),
                   "creation order out of sync with the table map");
  for (const auto& [name, table] : tables_) {
    SPHINX_INVARIANT(table != nullptr, "null table in database");
    SPHINX_INVARIANT(table->name() == name,
                     "table registered under the wrong name: " + name);
    SPHINX_INVARIANT(std::find(creation_order_.begin(), creation_order_.end(),
                               name) != creation_order_.end(),
                     "table missing from creation order: " + name);
    table->check_invariants();
  }
  for (const JournalEntry& e : journal_.entries()) {
    SPHINX_INVARIANT(tables_.contains(e.table),
                     "journal entry references unknown table: " + e.table);
  }
#endif
}

void Database::on_insert(const std::string& table, RowId id,
                         const std::vector<Value>& cells) {
  if (!journaling_) return;
  JournalEntry entry;
  entry.op = JournalEntry::Op::kInsert;
  entry.table = table;
  entry.row = id;
  entry.cells = cells;
  journal_.append(std::move(entry));
}

void Database::on_update(const std::string& table, RowId id,
                         std::size_t column, const Value& value) {
  if (!journaling_) return;
  JournalEntry entry;
  entry.op = JournalEntry::Op::kUpdate;
  entry.table = table;
  entry.row = id;
  entry.column = column;
  entry.cells = {value};
  journal_.append(std::move(entry));
}

void Database::on_erase(const std::string& table, RowId id) {
  if (!journaling_) return;
  JournalEntry entry;
  entry.op = JournalEntry::Op::kErase;
  entry.table = table;
  entry.row = id;
  journal_.append(std::move(entry));
}

}  // namespace sphinx::db
