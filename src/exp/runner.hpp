#pragma once
/// \file runner.hpp
/// Group-wise experiment harness reproducing the paper's protocol.
///
/// "Each of these scheduling algorithms is executed on multiple instances
/// of SPHINX servers ... started at the same time so that they can
/// compete for the same set of grid resources.  It is believed as the
/// fairest way to compare the performance of different algorithms in a
/// dynamically changing environment" (section 4.2).  The Experiment class
/// builds one shared grid, one tenant per strategy, hands every tenant a
/// structurally identical workload, runs the simulation and extracts the
/// per-tenant metrics each figure plots.

#include <memory>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

namespace sphinx::exp {

/// One strategy under test.
struct TenantSpec {
  std::string label;
  TenantOptions options;
};

/// Figure-6 style per-site observation.
struct SiteFigure {
  std::string site;
  std::size_t completed = 0;
  double avg_completion = 0.0;
};

/// Everything the figures need about one tenant's run.
struct TenantResult {
  std::string label;
  std::size_t dags_total = 0;
  std::size_t dags_finished = 0;
  double avg_dag_completion = 0.0;  ///< Figures 2, 3a, 4a, 5a, 7a
  double avg_job_execution = 0.0;   ///< Figures 3b, 4b, 5b, 7b
  double avg_job_idle = 0.0;        ///< Figures 3b, 4b, 5b, 7b
  std::size_t timeouts = 0;         ///< Figure 8
  std::size_t extensions = 0;       ///< progress-aware timeout deferrals
  std::size_t held_or_failed = 0;
  std::size_t plans = 0;
  std::size_t replans = 0;
  std::size_t policy_rejections = 0;
  /// Reliable-RPC accounting (lossy-network smoke gate): submissions and
  /// the distinct (job, attempt) pairs ever handed to the gateway must
  /// agree, or a duplicate delivery executed a plan twice.
  std::size_t submissions = 0;
  std::size_t unique_submissions = 0;
  std::size_t duplicate_plans = 0;       ///< re-deliveries skipped by the guard
  std::size_t duplicate_dags = 0;        ///< server-side duplicate submissions
  std::vector<SiteFigure> per_site;  ///< Figure 6
};

/// Experiment-level configuration.
struct ExperimentConfig {
  ScenarioConfig scenario;
  workflow::WorkloadConfig workload;
  int dag_count = 30;             ///< 30 / 60 / 120 in the paper
  Duration submit_spacing = 15.0;  ///< seconds between DAG submissions
  SimTime horizon = hours(48);    ///< hard stop
  /// Figure 7: per-user per-site usage quotas, as a fraction of the total
  /// workload demand.  0 disables quota installation.
  double quota_cpu_fraction = 0.0;
  double quota_disk_fraction = 0.0;
  /// Flight-recorder export: written after run() when non-empty
  /// ("-" = stdout).  Same-seed runs produce byte-identical files.
  std::string trace_path;
  std::string metrics_path;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config) : config_(std::move(config)) {}

  /// Runs the group-wise comparison and returns one result per tenant.
  [[nodiscard]] std::vector<TenantResult> run(
      const std::vector<TenantSpec>& specs);

  /// Simulated time at which the run stopped (after run()).
  [[nodiscard]] SimTime stopped_at() const noexcept { return stopped_at_; }

  /// The run's flight recorder (valid after run(); the scenario stays
  /// alive so figures can derive their numbers from the recorded trace
  /// and metrics instead of ad-hoc counters).
  [[nodiscard]] const obs::Recorder& recorder() const;

 private:
  ExperimentConfig config_;
  SimTime stopped_at_ = 0.0;
  std::unique_ptr<Scenario> scenario_;
};

/// Convenience: the four-strategy panel used by Figures 3-5 (all with
/// feedback, no policy).
[[nodiscard]] std::vector<TenantSpec> standard_panel();

}  // namespace sphinx::exp
