// Tests for QoS deadline scheduling (priority + earliest-deadline-first
// planning order) and the DagOutcome deadline bookkeeping.

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

namespace sphinx::exp {
namespace {

ScenarioConfig quiet(std::uint64_t seed = 91) {
  ScenarioConfig config;
  config.seed = seed;
  config.site_failures = false;
  config.background_load = false;
  return config;
}

TEST(Qos, DeadlineStoredAndOutcomeTracked) {
  Scenario scenario(quiet());
  Tenant& tenant = scenario.add_tenant("qos", TenantOptions{});
  workflow::WorkloadConfig workload;
  workload.jobs_per_dag = 4;
  auto generator = scenario.make_generator("w", workload);
  const auto relaxed = generator.generate("relaxed");
  const auto tight = generator.generate("tight");
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit", [&] {
    tenant.client->submit(relaxed, 0.0, hours(10));  // generous deadline
    tenant.client->submit(tight, 0.0, 2.0);          // impossible deadline
  });
  scenario.run(hours(8));
  ASSERT_TRUE(tenant.client->all_dags_finished());

  // Server-side records carry the deadlines.
  EXPECT_DOUBLE_EQ(tenant.server->warehouse().dag(relaxed.id())->deadline,
                   hours(10));
  EXPECT_DOUBLE_EQ(tenant.server->warehouse().dag(tight.id())->deadline, 2.0);

  // Outcome accounting: one met, one missed.
  const auto [met, total] = tenant.client->deadline_hits();
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(met, 1u);
  for (const auto& outcome : tenant.client->dag_outcomes()) {
    if (outcome.name == "relaxed") {
      EXPECT_TRUE(outcome.deadline_met());
    }
    if (outcome.name == "tight") {
      EXPECT_FALSE(outcome.deadline_met());
    }
  }
}

TEST(Qos, BestEffortDagsDoNotCountAsDeadlines) {
  Scenario scenario(quiet());
  Tenant& tenant = scenario.add_tenant("qos", TenantOptions{});
  workflow::WorkloadConfig workload;
  workload.jobs_per_dag = 3;
  auto generator = scenario.make_generator("w", workload);
  const auto dag = generator.generate("be");
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  scenario.run(hours(8));
  const auto [met, total] = tenant.client->deadline_hits();
  EXPECT_EQ(total, 0u);
  EXPECT_EQ(met, 0u);
  EXPECT_FALSE(tenant.client->dag_outcomes().front().deadline_met());
}

TEST(Qos, EdfOrderPrefersUrgentDag) {
  // Runs the same congested workload twice -- once with QoS ordering,
  // once without -- and compares the urgent DAG's completion time.  All
  // jobs are quota-confined to one small site so a real batch queue
  // forms and the priority nudge matters.
  const auto run_once = [](bool qos_ordering) {
    Scenario scenario(quiet(17));
    TenantOptions options;
    options.use_policy = true;
    options.use_qos_ordering = qos_ordering;
    Tenant& tenant = scenario.add_tenant("qos", options);
    const SiteId pen = scenario.grid().find_site("ufgrid1")->id();
    for (const auto& site : scenario.catalog()) {
      tenant.server->set_quota(tenant.client->config().user, site.id,
                               "cpu_seconds", site.id == pen ? 1e9 : 0.0);
    }
    // Compute-bound bags of tasks: staging is negligible (the shared
    // link has no priorities), so the CPU queue is the contended
    // resource the batch priority acts on.
    workflow::WorkloadConfig workload;
    workload.jobs_per_dag = 8;
    workload.max_parents = 0;
    workload.compute_time = 300.0;
    workload.external_min_bytes = 1e6;
    workload.external_max_bytes = 2e6;
    workload.output_min_bytes = 1e5;
    workload.output_max_bytes = 1e6;
    auto generator = scenario.make_generator("w", workload);
    const auto batch = generator.generate_batch("bg", 10);
    const auto urgent = generator.generate("urgent");
    scenario.start();
    scenario.engine().schedule_at(1.0, "submit", [&] {
      for (const auto& dag : batch) tenant.client->submit(dag);
      tenant.client->submit(urgent, 0.0, scenario.engine().now() + hours(2));
    });
    scenario.run(hours(12));
    EXPECT_TRUE(tenant.client->all_dags_finished());
    for (const auto& outcome : tenant.client->dag_outcomes()) {
      if (outcome.name == "urgent") return outcome.completion_time();
    }
    return -1.0;
  };
  const double with_qos = run_once(true);
  const double without_qos = run_once(false);
  // QoS ordering must speed the urgent DAG up materially.
  EXPECT_LT(with_qos, 0.7 * without_qos);
}

TEST(Qos, OrderingCanBeDisabled) {
  Scenario scenario(quiet(19));
  TenantOptions options;
  options.use_qos_ordering = false;
  Tenant& tenant = scenario.add_tenant("fifo", options);
  EXPECT_FALSE(tenant.server->config().use_qos_ordering);
}

}  // namespace
}  // namespace sphinx::exp
