#include "core/algorithms.hpp"

#include <algorithm>
#include <charconv>

#include "common/error.hpp"

namespace sphinx::core {
namespace {

// Parses a decimal uint64 from [first, last); returns false (leaving
// `out` untouched) on anything else.
bool parse_u64(const char* first, const char* last, std::uint64_t& out) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return false;
  out = value;
  return true;
}

}  // namespace

std::unique_ptr<SchedulingAlgorithm> make_algorithm(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kRoundRobin:
      return std::make_unique<RoundRobinAlgorithm>();
    case Algorithm::kNumCpus:
      return std::make_unique<NumCpusAlgorithm>();
    case Algorithm::kQueueLength:
      return std::make_unique<QueueLengthAlgorithm>();
    case Algorithm::kCompletionTime:
      return std::make_unique<CompletionTimeAlgorithm>();
  }
  throw AssertionError("unknown algorithm");
}

std::optional<SiteId> RoundRobinAlgorithm::select(
    const PlanningContext& context) {
  if (context.sites.empty()) return std::nullopt;
  const CandidateSite& pick =
      context.sites[cursor_++ % context.sites.size()];
  return pick.id;
}

std::string RoundRobinAlgorithm::save_state() const {
  return std::to_string(cursor_);
}

void RoundRobinAlgorithm::restore_state(const std::string& state) {
  parse_u64(state.data(), state.data() + state.size(), cursor_);
}

std::optional<SiteId> NumCpusAlgorithm::select(
    const PlanningContext& context) {
  // rate_i = (planned_jobs_i + unfinished_jobs_i) / CPU_i   (eq. 1)
  // `outstanding` is exactly planned + unfinished in the server's books.
  std::optional<SiteId> best;
  double best_rate = 0.0;
  for (const CandidateSite& site : context.sites) {
    const double rate =
        static_cast<double>(site.outstanding) / static_cast<double>(site.cpus);
    if (!best.has_value() || rate < best_rate) {
      best = site.id;
      best_rate = rate;
    }
  }
  return best;
}

std::optional<SiteId> QueueLengthAlgorithm::select(
    const PlanningContext& context) {
  // rate_i = (queued_i + running_i + planned_i) / CPU_i   (eq. 2)
  // queued/running come from monitoring; planned from local accounting.
  std::optional<SiteId> best;
  double best_rate = 0.0;
  for (const CandidateSite& site : context.sites) {
    const double monitored_load =
        site.monitored
            ? static_cast<double>(site.mon_queued + site.mon_running)
            : 0.0;  // no data: looks idle -- exactly the stale-info hazard
    const double rate =
        (monitored_load + static_cast<double>(site.outstanding)) /
        static_cast<double>(site.cpus);
    if (!best.has_value() || rate < best_rate) {
      best = site.id;
      best_rate = rate;
    }
  }
  return best;
}

std::optional<SiteId> CompletionTimeAlgorithm::select(
    const PlanningContext& context) {
  if (context.sites.empty()) return std::nullopt;

  // Hybrid warm-up: "in the absence of the job completion rate
  // information, SPHINX schedules jobs on round robin technique until it
  // has that information for the remote sites" (paper section 4.1).
  // Each site lacking data receives exactly one probe job; a site that
  // has produced only cancellations does not count as awaiting
  // measurement -- probing it again would just buy another timeout.
  std::vector<const CandidateSite*> unprobed;
  for (const CandidateSite& site : context.sites) {
    if (site.samples == 0 && site.cancelled == 0 &&
        !probed_.contains(site.id.value())) {
      unprobed.push_back(&site);
    }
  }
  if (!unprobed.empty()) {
    const CandidateSite* pick =
        unprobed[warmup_cursor_++ % unprobed.size()];
    probed_.insert(pick->id.value());
    return pick->id;
  }

  // Eq. (3): min over available sites of the estimated completion time,
  // restricted to sites that actually have measurements.  The historical
  // EWMA alone would send every ready job of a burst to the same site;
  // the prediction module ("provides estimates for the completion time
  // of the requests on these resources", paper section 3.2) scales the
  // EWMA by the jobs this server has already placed there, so the
  // estimate reflects the load the plan itself creates.
  // Grid sites are shared: only a fraction of the catalog CPU count is
  // ever available to one VO, so the load penalty assumes a conservative
  // effective capacity (a site's own CPUs divided by this factor).
  constexpr double kLoadSensitivity = 4.0;
  std::optional<SiteId> best;
  double best_estimate = 0.0;
  for (const CandidateSite& site : context.sites) {
    if (site.samples == 0) continue;  // probe still in flight
    const double load = kLoadSensitivity *
                        static_cast<double>(site.outstanding) /
                        static_cast<double>(site.cpus);
    const double estimate = site.avg_completion * (1.0 + load);
    if (!best.has_value() || estimate < best_estimate) {
      best = site.id;
      best_estimate = estimate;
    }
  }
  if (!best.has_value()) {
    // Nothing measured yet (all probes in flight): fall back to round
    // robin over whatever is feasible.
    return context.sites[warmup_cursor_++ % context.sites.size()].id;
  }
  return best;
}

std::string CompletionTimeAlgorithm::save_state() const {
  // "<warmup_cursor>|<probed site ids, sorted, comma separated>" -- the
  // sort makes equal states serialize identically regardless of the
  // unordered_set's iteration order.
  std::vector<std::uint64_t> ids(probed_.begin(), probed_.end());
  std::sort(ids.begin(), ids.end());
  std::string out = std::to_string(warmup_cursor_) + "|";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

void CompletionTimeAlgorithm::restore_state(const std::string& state) {
  const std::size_t bar = state.find('|');
  if (bar == std::string::npos) return;
  std::uint64_t cursor = 0;
  if (!parse_u64(state.data(), state.data() + bar, cursor)) return;
  std::unordered_set<std::uint64_t> probed;
  std::size_t pos = bar + 1;
  while (pos < state.size()) {
    std::size_t comma = state.find(',', pos);
    if (comma == std::string::npos) comma = state.size();
    std::uint64_t id = 0;
    if (!parse_u64(state.data() + pos, state.data() + comma, id)) return;
    probed.insert(id);
    pos = comma + 1;
  }
  warmup_cursor_ = cursor;
  probed_ = std::move(probed);
}

}  // namespace sphinx::core
