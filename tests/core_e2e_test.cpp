// End-to-end tests of the SPHINX middleware on the simulated grid:
// submission -> reduction -> planning -> staging -> execution -> feedback
// -> DAG completion, plus fault tolerance (timeouts, replanning) and
// server crash recovery.

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

namespace sphinx::exp {
namespace {

ScenarioConfig quiet_scenario(std::uint64_t seed = 7) {
  ScenarioConfig config;
  config.seed = seed;
  config.site_failures = false;
  config.background_load = false;
  config.monitor.poll_period = minutes(2);
  config.monitor.report_latency = 5.0;
  return config;
}

workflow::WorkloadConfig small_workload() {
  workflow::WorkloadConfig workload;
  workload.jobs_per_dag = 6;
  return workload;
}

TEST(CoreE2E, SingleDagCompletesOnHealthyGrid) {
  Scenario scenario(quiet_scenario());
  Tenant& tenant = scenario.add_tenant("solo", TenantOptions{});
  auto generator = scenario.make_generator("w", small_workload());
  const workflow::Dag dag = generator.generate("e2e");
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  scenario.run(hours(6));

  EXPECT_TRUE(tenant.client->all_dags_finished());
  const auto& outcome = tenant.client->dag_outcomes().front();
  EXPECT_GT(outcome.completion_time(), 60.0);   // at least one compute
  EXPECT_LT(outcome.completion_time(), hours(3));
  EXPECT_EQ(tenant.client->tracker_stats().completions, dag.size());
  EXPECT_EQ(tenant.client->tracker_stats().timeouts, 0u);
  EXPECT_EQ(tenant.server->stats().plans_sent, dag.size());
  EXPECT_EQ(tenant.server->stats().replans, 0u);

  // Every job's output is now registered in the RLS.
  for (const auto& job : dag.jobs()) {
    EXPECT_TRUE(scenario.rls().exists(job.output)) << job.output;
  }
  // Server-side automaton: DAG finished, all jobs completed.
  const auto record = tenant.server->warehouse().dag(dag.id());
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, core::DagState::kFinished);
}

TEST(CoreE2E, JobsWithDependenciesRespectOrdering) {
  Scenario scenario(quiet_scenario());
  Tenant& tenant = scenario.add_tenant("solo", TenantOptions{});
  // A 3-job chain via the VDC-style manual construction.
  workflow::Dag dag(scenario.ids().dags.next(), "chain");
  JobId prev;
  data::Lfn prev_out;
  for (int i = 0; i < 3; ++i) {
    workflow::JobSpec job;
    job.id = scenario.ids().jobs.next();
    job.name = "stage" + std::to_string(i);
    job.compute_time = 30.0;
    job.output = "lfn://chain/out" + std::to_string(i);
    job.output_bytes = 1e6;
    if (i == 0) {
      job.inputs = {"lfn://chain/seed"};
    } else {
      job.inputs = {prev_out};
    }
    dag.add_job(job);
    if (i > 0) dag.add_edge(prev, job.id);
    prev = job.id;
    prev_out = job.output;
  }
  scenario.rls().register_replica("lfn://chain/seed", SiteId(1), 1e6);

  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  scenario.run(hours(4));
  EXPECT_TRUE(tenant.client->all_dags_finished());
  EXPECT_TRUE(scenario.rls().exists("lfn://chain/out2"));
}

TEST(CoreE2E, DagReducerSkipsMaterializedJobs) {
  Scenario scenario(quiet_scenario());
  Tenant& tenant = scenario.add_tenant("solo", TenantOptions{});
  auto generator = scenario.make_generator("w", small_workload());
  const workflow::Dag dag = generator.generate("reduced");
  // Pre-register every output: the whole DAG reduces away.
  for (const auto& job : dag.jobs()) {
    scenario.rls().register_replica(job.output, SiteId(2), job.output_bytes);
  }
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  scenario.run(hours(1));

  EXPECT_TRUE(tenant.client->all_dags_finished());
  EXPECT_EQ(tenant.server->stats().jobs_reduced, dag.size());
  EXPECT_EQ(tenant.server->stats().plans_sent, 0u);
  // DAG completion was nearly instantaneous (no execution happened).
  EXPECT_LT(tenant.client->dag_outcomes().front().completion_time(),
            minutes(2));
}

TEST(CoreE2E, FeedbackRecordsCompletionStats) {
  Scenario scenario(quiet_scenario());
  Tenant& tenant = scenario.add_tenant("solo", TenantOptions{});
  auto generator = scenario.make_generator("w", small_workload());
  const auto dags = generator.generate_batch("fb", 3);
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit", [&] {
    for (const auto& dag : dags) tenant.client->submit(dag);
  });
  scenario.run(hours(6));
  ASSERT_TRUE(tenant.client->all_dags_finished());

  // Some sites must have accumulated completion statistics with sane
  // completion-time EWMAs (> compute time, well under the timeout).
  std::size_t sites_with_data = 0;
  std::int64_t total_completed = 0;
  for (const auto& site : scenario.catalog()) {
    const auto stats = tenant.server->warehouse().site_stats(site.id);
    if (stats.samples > 0) {
      ++sites_with_data;
      EXPECT_GT(stats.avg_completion, 30.0);
      EXPECT_LT(stats.avg_completion, hours(2));
    }
    total_completed += stats.completed;
    EXPECT_EQ(stats.cancelled, 0);
  }
  EXPECT_GT(sites_with_data, 1u);
  EXPECT_EQ(total_completed, 18);  // 3 dags x 6 jobs
}

TEST(CoreE2E, BlackHoleSiteTriggersTimeoutAndReplan) {
  ScenarioConfig config = quiet_scenario();
  Scenario scenario(config);
  // Make ll3 a permanent black hole manually (failures are disabled).
  scenario.grid().find_site("ll3")->become_black_hole();

  TenantOptions options;
  options.algorithm = core::Algorithm::kRoundRobin;  // guaranteed to hit ll3
  options.use_feedback = true;
  options.job_timeout = minutes(10);
  Tenant& tenant = scenario.add_tenant("rr", options);
  auto generator = scenario.make_generator("w", small_workload());
  const auto dags = generator.generate_batch("bh", 4);
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit", [&] {
    for (const auto& dag : dags) tenant.client->submit(dag);
  });
  scenario.run(hours(8));

  EXPECT_TRUE(tenant.client->all_dags_finished());
  EXPECT_GT(tenant.client->tracker_stats().timeouts, 0u);
  EXPECT_GT(tenant.server->stats().replans, 0u);
  // The black hole shows up in the feedback stats as cancel-only.
  const SiteId ll3 = scenario.grid().find_site("ll3")->id();
  const auto stats = tenant.server->warehouse().site_stats(ll3);
  EXPECT_GT(stats.cancelled, 0);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_FALSE(tenant.server->warehouse().site_available(ll3));
}

TEST(CoreE2E, FeedbackAvoidsBlackHoleAfterFirstTimeouts) {
  ScenarioConfig config = quiet_scenario();
  Scenario scenario(config);
  scenario.grid().find_site("ll3")->become_black_hole();

  TenantOptions with_fb;
  with_fb.algorithm = core::Algorithm::kRoundRobin;
  with_fb.use_feedback = true;
  with_fb.job_timeout = minutes(10);
  TenantOptions without_fb = with_fb;
  without_fb.use_feedback = false;

  Tenant& fb = scenario.add_tenant("rr-fb", with_fb);
  Tenant& nofb = scenario.add_tenant("rr-nofb", without_fb);
  auto generator_a = scenario.make_generator("w", small_workload());
  auto generator_b = scenario.make_generator("w", small_workload());
  // Wave 1 seeds the feedback statistics (its ll3 jobs time out); wave 2,
  // submitted after those timeouts have been reported, is where the two
  // tenants diverge: the feedback tenant never plans onto ll3 again.
  const auto wave1_a = generator_a.generate_batch("a1", 4);
  const auto wave1_b = generator_b.generate_batch("b1", 4);
  const auto wave2_a = generator_a.generate_batch("a2", 10);
  const auto wave2_b = generator_b.generate_batch("b2", 10);
  scenario.start();
  scenario.engine().schedule_at(1.0, "wave1", [&] {
    for (const auto& dag : wave1_a) fb.client->submit(dag);
    for (const auto& dag : wave1_b) nofb.client->submit(dag);
  });
  scenario.engine().schedule_at(minutes(12), "wave2", [&] {
    for (const auto& dag : wave2_a) fb.client->submit(dag);
    for (const auto& dag : wave2_b) nofb.client->submit(dag);
  });
  scenario.run(hours(12));

  ASSERT_TRUE(fb.client->all_dags_finished());
  ASSERT_TRUE(nofb.client->all_dags_finished());
  // Feedback caps the damage: the black hole is abandoned after the first
  // timeouts, while the no-feedback tenant keeps feeding it.
  const SiteId ll3 = scenario.grid().find_site("ll3")->id();
  const auto fb_ll3 = fb.server->warehouse().site_stats(ll3);
  const auto nofb_ll3 = nofb.server->warehouse().site_stats(ll3);
  EXPECT_LT(fb_ll3.cancelled, nofb_ll3.cancelled);
  EXPECT_LE(fb.client->tracker_stats().timeouts,
            nofb.client->tracker_stats().timeouts);
  // And the DAGs finish no later on average.
  EXPECT_LE(fb.client->avg_dag_completion(),
            nofb.client->avg_dag_completion());
}

TEST(CoreE2E, PolicyQuotasRestrictSites) {
  Scenario scenario(quiet_scenario());
  TenantOptions options;
  options.use_policy = true;
  options.algorithm = core::Algorithm::kNumCpus;
  Tenant& tenant = scenario.add_tenant("quota", options);
  auto generator = scenario.make_generator("w", small_workload());
  const workflow::Dag dag = generator.generate("q");

  // Give quota on exactly one site; everything must run there.
  const UserId user = tenant.client->config().user;
  const SiteId allowed = scenario.grid().find_site("ufloridapg")->id();
  for (const auto& site : scenario.catalog()) {
    tenant.server->set_quota(user, site.id, "cpu_seconds",
                             site.id == allowed ? 1e9 : 0.0);
  }
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  scenario.run(hours(6));

  ASSERT_TRUE(tenant.client->all_dags_finished());
  EXPECT_GT(tenant.server->stats().policy_rejections, 0u);
  for (const auto& job : dag.jobs()) {
    const auto record = tenant.server->warehouse().job(job.id);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->site, allowed);
  }
  // Quota was consumed.
  EXPECT_LT(tenant.server->warehouse().quota_remaining(user, allowed,
                                                       "cpu_seconds"),
            1e9);
}

TEST(CoreE2E, ServerRecoversFromCrashMidRun) {
  Scenario scenario(quiet_scenario());
  Tenant& tenant = scenario.add_tenant("crashy", TenantOptions{});
  auto generator = scenario.make_generator("w", small_workload());
  const auto dags = generator.generate_batch("crash", 3);
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit", [&] {
    for (const auto& dag : dags) tenant.client->submit(dag);
  });

  // Let some work happen, then "crash" the server and rebuild it from its
  // journal, transparently to the client.
  std::unique_ptr<core::SphinxServer> recovered;
  scenario.engine().schedule_at(150.0, "crash", [&] {
    const db::Journal journal = tenant.server->warehouse().journal();
    const auto catalog = scenario.catalog();
    const core::ServerConfig config = tenant.server->config();
    tenant.server.reset();  // kaboom: endpoint unregisters, control stops
    auto result = core::SphinxServer::recover(
        scenario.bus(), catalog, scenario.rls(), scenario.transfers(),
        &scenario.monitoring(), config, journal);
    ASSERT_TRUE(result.has_value()) << result.error().to_string();
    recovered = std::move(*result);
    recovered->start();
  });
  scenario.run(hours(8));

  EXPECT_TRUE(tenant.client->all_dags_finished());
  ASSERT_NE(recovered, nullptr);
  const auto record = recovered->warehouse().dag(dags[0].id());
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, core::DagState::kFinished);
}

TEST(CoreE2E, ConcurrentTenantsShareTheGrid) {
  Scenario scenario(quiet_scenario());
  TenantOptions options;
  Tenant& a = scenario.add_tenant("a", options);
  Tenant& b = scenario.add_tenant("b", options);
  auto generator_a = scenario.make_generator("shared", small_workload());
  auto generator_b = scenario.make_generator("shared", small_workload());
  const auto dags_a = generator_a.generate_batch("a", 3);
  const auto dags_b = generator_b.generate_batch("b", 3);
  // Identical structure, distinct ids.
  ASSERT_EQ(dags_a[0].size(), dags_b[0].size());
  ASSERT_NE(dags_a[0].id(), dags_b[0].id());

  scenario.start();
  scenario.engine().schedule_at(1.0, "submit", [&] {
    for (const auto& dag : dags_a) a.client->submit(dag);
    for (const auto& dag : dags_b) b.client->submit(dag);
  });
  scenario.run(hours(8));
  EXPECT_TRUE(a.client->all_dags_finished());
  EXPECT_TRUE(b.client->all_dags_finished());
}

TEST(ExperimentRunner, SmallPanelProducesMetrics) {
  ExperimentConfig config;
  config.scenario = quiet_scenario(3);
  config.workload = small_workload();
  config.dag_count = 3;
  config.horizon = hours(12);
  Experiment experiment(config);
  const auto results = experiment.run(standard_panel());
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.dags_finished, 3u) << r.label;
    EXPECT_GT(r.avg_dag_completion, 0.0) << r.label;
    EXPECT_GT(r.avg_job_execution, 0.0) << r.label;
    EXPECT_GE(r.avg_job_idle, 0.0) << r.label;
    EXPECT_EQ(r.per_site.size(), 15u);
  }
  EXPECT_LT(experiment.stopped_at(), hours(12));
}

TEST(Scenario, CatalogMatchesGrid) {
  Scenario scenario(quiet_scenario());
  const auto catalog = scenario.catalog();
  ASSERT_EQ(catalog.size(), 15u);
  EXPECT_EQ(scenario.grid().size(), 15u);
  int total = 0;
  for (const auto& site : catalog) {
    EXPECT_EQ(scenario.grid().site(site.id).name(), site.name);
    total += site.cpus;
  }
  EXPECT_EQ(total, scenario.grid().total_cpus());
  EXPECT_GT(total, 500);
}

}  // namespace
}  // namespace sphinx::exp
