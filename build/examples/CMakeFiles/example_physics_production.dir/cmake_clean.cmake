file(REMOVE_RECURSE
  "CMakeFiles/example_physics_production.dir/physics_production.cpp.o"
  "CMakeFiles/example_physics_production.dir/physics_production.cpp.o.d"
  "example_physics_production"
  "example_physics_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_physics_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
