#pragma once
/// \file state.hpp
/// The scheduling automaton's states.
///
/// "SPHINX adapts finite automaton for scheduling status management.  The
/// scheduler moves a DAG through predefined states to complete resource
/// allocation to the jobs in the DAG" (paper section 3.2).  Each state is
/// owned by exactly one server module; the control process wakes the
/// module responsible for whatever states it finds in the warehouse.

#include <string_view>

namespace sphinx::core {

/// Server-side DAG states.
enum class DagState {
  kReceived,  ///< stored by the message handler; awaiting reduction
  kReduced,   ///< DAG reducer removed already-materialized jobs
  kPlanning,  ///< planner is allocating resources job by job
  kFinished,  ///< every job completed
};

/// Server-side job states.
enum class JobState {
  kUnplanned,  ///< waiting for dependencies/inputs or a feasible site
  kPlanned,    ///< site chosen; plan sent to the client
  kSubmitted,  ///< client confirmed submission to the site
  kRunning,    ///< client reported execution start
  kCompleted,  ///< done (terminal)
  kCancelled,  ///< cancelled (tracker timeout or user); will be replanned
  kHeld,       ///< held at the site; will be replanned
};

[[nodiscard]] const char* to_string(DagState state) noexcept;
[[nodiscard]] const char* to_string(JobState state) noexcept;

/// Parses the to_string() form back (used when reading warehouse rows).
[[nodiscard]] DagState dag_state_from(std::string_view text);
[[nodiscard]] JobState job_state_from(std::string_view text);

/// Job states that count as "outstanding on a site" for the load-rate
/// formulas (planned_jobs + unfinished_jobs in eq. 1 and 2).
[[nodiscard]] constexpr bool is_outstanding(JobState s) noexcept {
  return s == JobState::kPlanned || s == JobState::kSubmitted ||
         s == JobState::kRunning;
}

/// Legality of the scheduling automaton's job transitions.  Self
/// transitions are legal (idempotent writes); kCompleted is terminal.
/// kUnplanned -> kCompleted covers DAG reduction (output already
/// materialized); kPlanned -> kUnplanned covers plan withdrawal.  The
/// warehouse enforces this on every state write (contracts.hpp).
[[nodiscard]] bool is_legal_transition(JobState from, JobState to) noexcept;

/// DAG states only move forward through the automaton (received <
/// reduced < planning < finished); skipping a stage is allowed (e.g. a
/// fully-materialized DAG goes straight to planning), regressing is not.
[[nodiscard]] constexpr bool is_legal_transition(DagState from,
                                                 DagState to) noexcept {
  return static_cast<int>(to) >= static_cast<int>(from);
}

/// Lifecycle of one speculative replication race (straggler defense).
/// A race starts kRacing with two live attempts -- the original
/// ("primary") and the replica ("spec") -- and resolves exactly once:
/// either side completing wins the job, either side dying mid-race
/// leaves the survivor carrying the job alone.
enum class SpeculationState {
  kRacing,       ///< both attempts live; first completion wins
  kPrimaryWon,   ///< original attempt completed; replica cancelled
  kSpecWon,      ///< replica completed; original attempt cancelled
  kPrimaryDead,  ///< original died mid-race; replica carries the job
  kSpecDead,     ///< replica died mid-race; original carries the job
};

[[nodiscard]] const char* to_string(SpeculationState state) noexcept;
[[nodiscard]] SpeculationState speculation_state_from(std::string_view text);

/// Scheduling strategies evaluated in the paper (section 4.1).
enum class Algorithm {
  kRoundRobin,
  kNumCpus,         ///< eq. (1): (planned + unfinished) / CPUs
  kQueueLength,     ///< eq. (2): monitored (queued + running + planned) / CPUs
  kCompletionTime,  ///< eq. (3): min normalized avg completion time, hybrid
};

[[nodiscard]] const char* to_string(Algorithm algorithm) noexcept;

}  // namespace sphinx::core
