#pragma once
/// \file metrics.hpp
/// Counter/histogram metric set -- the flight recorder's aggregate half.
///
/// Built on common/stats: a counter is a monotonically increasing
/// integer, a histogram a RunningStats accumulator plus the retained
/// samples so percentiles can be computed at export time.  Storage is
/// ordered (std::map) and the serializer emits keys in that order with
/// deterministic float formatting, so two same-seed runs export
/// byte-identical metrics.json.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace sphinx::obs {

class MetricSet {
 public:
  /// Per-histogram accumulator.  Samples are retained for percentile
  /// export; stats carries the Welford aggregates.
  struct Histogram {
    RunningStats stats;
    std::vector<double> samples;
  };

  /// Increments a counter (creating it at zero first).
  void add(const std::string& name, std::uint64_t delta = 1);
  /// Folds one observation into a histogram.
  void observe(const std::string& name, double value);

  /// Counter value; 0 for a counter never incremented.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  /// Histogram by name; nullptr when never observed.
  [[nodiscard]] const Histogram* histogram(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  /// The whole set as one pretty-printed JSON document: counters first,
  /// then histograms with count/mean/min/max/stddev and p50/p90/p99.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sphinx::obs
