#pragma once
/// \file parallel.hpp
/// Thread-pool execution of independent simulations.
///
/// One simulation is single-threaded and deterministic (DESIGN.md
/// section 5); throughput comes from running many simulations -- seed
/// sweeps, ablation grids -- on a pool.  Tasks must not share mutable
/// state; each builds its own Scenario.

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace sphinx::exp {

/// Runs every task (possibly concurrently) and returns results in input
/// order.  `max_threads` 0 means hardware concurrency.  Every task runs
/// to completion (or failure) even when another task throws; after all
/// threads join, the exception of the *lowest-indexed* failing task is
/// rethrown.  Which thread failed first is a race; the task index is
/// not, so a sweep's reported failure is reproducible.
template <typename R>
[[nodiscard]] std::vector<R> run_parallel(
    const std::vector<std::function<R()>>& tasks,
    unsigned max_threads = 0) {
  if (max_threads == 0) {
    max_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  std::vector<R> results(tasks.size());
  std::vector<std::exception_ptr> errors(tasks.size());
  std::atomic<std::size_t> next{0};

  const auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1);
      if (index >= tasks.size()) return;
      try {
        results[index] = tasks[index]();
      } catch (...) {
        errors[index] = std::current_exception();
      }
    }
  };

  const unsigned n =
      std::min<unsigned>(max_threads, static_cast<unsigned>(tasks.size()));
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (unsigned i = 0; i < n; ++i) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();

  // Deterministic error selection: errors[] is task-indexed, so scanning
  // from slot 0 always surfaces the lowest-indexed failure regardless of
  // which worker thread hit its exception first.
  for (std::size_t index = 0; index < errors.size(); ++index) {
    if (errors[index]) std::rethrow_exception(errors[index]);
  }
  return results;
}

}  // namespace sphinx::exp
