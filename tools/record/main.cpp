// sphinx_record: run one failure-enabled scenario and export the flight
// recorder's trace.jsonl + metrics.json.
//
//   sphinx_record [--seed N] [--dags K] [--trace PATH] [--metrics PATH]
//                 [--loss P] [--duplicate P] [--reorder P]
//                 [--partition-at T] [--partition-duration D]
//                 [--checkpoint-every R] [--speculate]
//
// Same seed -> byte-identical outputs; tools/check.sh runs this twice
// and diffs the files as the determinism gate, and again with --loss /
// --duplicate / --partition-at as the lossy-network gate.  When any
// network fault is enabled the tool additionally asserts the end-to-end
// delivery contract: every DAG finishes, and no tenant ever executed a
// plan twice (submissions == distinct (job, attempt) pairs).  Exit 1 on
// violation.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  int dags = 4;
  std::string trace_path = "trace.jsonl";
  std::string metrics_path = "metrics.json";
  double loss = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double partition_at = -1.0;
  double partition_duration = 60.0;
  std::size_t checkpoint_every = 0;
  bool speculate = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (arg == "--seed" && value != nullptr) {
      seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--dags" && value != nullptr) {
      dags = std::atoi(value);
      ++i;
    } else if (arg == "--trace" && value != nullptr) {
      trace_path = value;
      ++i;
    } else if (arg == "--metrics" && value != nullptr) {
      metrics_path = value;
      ++i;
    } else if (arg == "--loss" && value != nullptr) {
      loss = std::atof(value);
      ++i;
    } else if (arg == "--duplicate" && value != nullptr) {
      duplicate = std::atof(value);
      ++i;
    } else if (arg == "--reorder" && value != nullptr) {
      reorder = std::atof(value);
      ++i;
    } else if (arg == "--partition-at" && value != nullptr) {
      partition_at = std::atof(value);
      ++i;
    } else if (arg == "--partition-duration" && value != nullptr) {
      partition_duration = std::atof(value);
      ++i;
    } else if (arg == "--checkpoint-every" && value != nullptr) {
      checkpoint_every = static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else if (arg == "--speculate") {
      speculate = true;
    } else {
      std::fprintf(stderr,
                   "usage: sphinx_record [--seed N] [--dags K] "
                   "[--trace PATH] [--metrics PATH]\n"
                   "                     [--loss P] [--duplicate P] "
                   "[--reorder P]\n"
                   "                     [--partition-at T] "
                   "[--partition-duration D]\n"
                   "                     [--checkpoint-every R] "
                   "[--speculate]\n");
      return 2;
    }
  }

  using namespace sphinx;
  exp::ExperimentConfig config;
  config.scenario.seed = seed;
  config.scenario.site_failures = true;   // exercise outage/repair tracing
  config.scenario.background_load = true;
  config.dag_count = dags;
  config.horizon = hours(12);
  config.trace_path = trace_path;
  config.metrics_path = metrics_path;

  const bool lossy_wire = loss > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
                          partition_at >= 0.0;
  if (loss > 0.0 || duplicate > 0.0 || reorder > 0.0) {
    rpc::LinkFaultRule rule;  // empty prefixes: every RPC link
    rule.loss = loss;
    rule.duplicate = duplicate;
    rule.reorder = reorder;
    config.scenario.network_faults.rules.push_back(rule);
  }
  if (partition_at >= 0.0) {
    rpc::LinkFaultRule rule;
    rule.from_prefix = "sphinx-client";
    rule.to_prefix = "sphinx-server";
    rule.start = partition_at;
    rule.end = partition_at + partition_duration;
    rule.partition = true;
    config.scenario.network_faults.rules.push_back(rule);
  }

  exp::TenantOptions with_feedback;
  exp::TenantOptions no_feedback;
  no_feedback.algorithm = core::Algorithm::kRoundRobin;
  no_feedback.use_feedback = false;
  with_feedback.checkpoint_every_records = checkpoint_every;
  no_feedback.checkpoint_every_records = checkpoint_every;
  with_feedback.speculate = speculate;
  no_feedback.speculate = speculate;
  exp::Experiment experiment(config);
  const auto results = experiment.run(
      {{"feedback", with_feedback}, {"no-feedback", no_feedback}});

  const auto& recorder = experiment.recorder();
  std::printf("sphinx_record: seed=%llu dags=%d tenants=%zu events=%zu\n",
              static_cast<unsigned long long>(seed), dags, results.size(),
              recorder.trace().size());
  std::printf("  trace   -> %s\n  metrics -> %s\n", trace_path.c_str(),
              metrics_path.c_str());

  if (lossy_wire) {
    // End-to-end delivery contract under the unreliable wire: zero lost
    // DAGs and zero double-executed jobs, per tenant.
    int violations = 0;
    for (const exp::TenantResult& r : results) {
      if (r.dags_finished != r.dags_total) {
        std::fprintf(stderr,
                     "sphinx_record: tenant %s lost DAGs (%zu/%zu finished)\n",
                     r.label.c_str(), r.dags_finished, r.dags_total);
        ++violations;
      }
      if (r.submissions != r.unique_submissions) {
        std::fprintf(stderr,
                     "sphinx_record: tenant %s double-executed a plan "
                     "(%zu submissions, %zu unique attempts)\n",
                     r.label.c_str(), r.submissions, r.unique_submissions);
        ++violations;
      }
      std::printf(
          "  tenant %s: dags=%zu/%zu submissions=%zu unique=%zu "
          "duplicate_plans=%zu duplicate_dags=%zu\n",
          r.label.c_str(), r.dags_finished, r.dags_total, r.submissions,
          r.unique_submissions, r.duplicate_plans, r.duplicate_dags);
    }
    if (violations > 0) return 1;
    std::printf("  lossy-wire contract: all DAGs finished, no plan ran twice\n");
  }
  return 0;
}
