file(REMOVE_RECURSE
  "CMakeFiles/example_sphinx_sim.dir/sphinx_sim.cpp.o"
  "CMakeFiles/example_sphinx_sim.dir/sphinx_sim.cpp.o.d"
  "example_sphinx_sim"
  "example_sphinx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sphinx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
