#include "exp/scenario.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace sphinx::exp {
namespace {

constexpr double kMB = 1e6;

/// Static description of one testbed site.
struct SiteRow {
  const char* name;
  int cpus;
  double speed;
  double bg_utilization;   ///< fraction of CPUs background load targets
  double uscms_priority;   ///< local batch priority of our VO (bg VO = 0)
  double link_mbps;        ///< symmetric up/downlink (scales with site
                           ///< size, so staging cost per job is roughly
                           ///< uniform and turnaround differences stay
                           ///< intrinsic: speed, load, VO priority)
  int bg_backlog;          ///< background jobs queued (beyond busy CPUs)
                           ///< at t=0 -- busy sites do not start idle
  // Failure behaviour:
  bool flaky_down;         ///< intermittent full outages
  bool flaky_black_hole;   ///< intermittent black-hole episodes
  bool permanent_black_hole;
  bool flaky_degraded;
};

/// The 15-site testbed (names from the paper's Figure 6).  Heterogeneity
/// is deliberate: CPU counts span 8..96, speeds 0.5..1.5, several sites
/// relegate the uscms VO, and four sites misbehave in distinct ways.
// Sized to echo Grid3's "more than 2000 CPUs" at 15 sites (~1500 here).
constexpr SiteRow kSites[] = {
    // name        cpus speed bg-util prio  link  backlog down  bhole perm  degr
    {"acdc",       224, 1.2,  0.90, 2.0,  52.0,  60, false, false, false, false},
    {"atlas",      336, 1.0,  0.97, -1.0,  78.0,  60, false, false, false, false},
    {"citgrid3",   84, 0.5,  0.40, 1.0,  15.6,   0, true,  false, false, false},
    {"cluster28",  56, 0.4,  0.30, 1.0,  13.0,   0, false, false, false, false},
    {"grid3",      168, 0.85,  0.75, 1.0,  39.0,  20, false, false, false, false},
    {"ll3",        42, 0.6,  0.25, 1.0,  13.0,   0, false, false, true,  false},
    {"mcfarm",     70, 0.7,  0.50, 1.0,  18.2,   0, false, true,  false, false},
    {"nest",       56, 0.8,  0.90, -1.0,  13.0,  15, false, false, false, false},
    {"spider",     140, 1.4,  0.35, 1.0,  39.0,   0, false, false, false, false},
    {"spike",      112, 1.4,  0.30, 1.0,  32.5,   0, false, false, false, false},
    {"tier2-1",    224, 0.6,  0.75, 1.0,  52.0,  20, false, false, false, false},
    {"tier2b",     168, 1.0,  0.90, -1.0,  39.0,  40, false, false, false, false},
    {"ufgrid1",    28, 0.3,  0.30, 1.0,  13.0,   0, true,  false, false, false},
    {"ufloridapg", 280, 1.5,  0.40, 1.0,  65.0,   0, false, false, false, false},
    {"uscmstb",    84, 0.9,  0.50, 1.0,  15.6,   0, false, false, false, true},
};

constexpr double kBackgroundJobMeanDuration = 20.0 * 60.0;  // 20 min

}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(config),
      registry_(config.metric_history_limit),
      seeds_(config.seed),
      bus_(engine_, seeds_.stream("bus"), config.bus_latency,
           config.bus_jitter),
      grid_(engine_, seeds_),
      transfers_(engine_),
      monitoring_(engine_, grid_, config.monitor,
                  seeds_.stream("monitoring")) {
  // Flight-recorder wiring.  Recording is observation only -- no events,
  // no RNG draws -- so a fixed-seed run's results are bit-identical with
  // or without the instrumentation.
  bus_.set_recorder(&recorder_);
  if (!config_.network_faults.empty()) {
    bus_.set_fault_model(config_.network_faults, seeds_.stream("bus/faults"));
  }
  // Control-plane traffic (heartbeats, lease renewals -- every endpoint
  // under "ctrl/") rides a dedicated latency stream and bypasses the
  // probabilistic fault draws.  Unconditional: with no ctrl endpoints the
  // stream is simply never drawn from, and runs stay byte-identical.
  bus_.set_control_stream("ctrl/", seeds_.stream("bus/ctrl"));
  grid_.set_recorder(&recorder_);
  monitoring_.attach_registry(&registry_);
  recorder_.bridge(registry_, "monitor");
  build_sites();
}

void Scenario::build_sites() {
  for (const SiteRow& row : kSites) {
    grid::SiteSpec spec;
    spec.site.name = row.name;
    spec.site.cpus = row.cpus;
    spec.site.cpu_speed = row.speed;
    spec.site.runtime_noise = 0.15;
    spec.site.vo_priority["uscms"] = row.uscms_priority;
    spec.site.vo_priority["background"] = 0.0;

    if (config_.background_load) {
      spec.background.enabled = true;
      spec.background.vo = "background";
      spec.background.mean_duration = kBackgroundJobMeanDuration;
      // Arrival rate lambda = utilization * cpus / mean_duration.
      const double lambda =
          row.bg_utilization * row.cpus / kBackgroundJobMeanDuration;
      spec.background.mean_interarrival = 1.0 / lambda;
      // Start in steady state: an empty grid would make every site look
      // equally good for the first simulated hour.  The backlog puts a
      // visible queue on busy sites from the outset.
      spec.background.prefill_jobs =
          static_cast<int>(std::min(row.bg_utilization, 1.0) * row.cpus) +
          row.bg_backlog;
      // Grid3 load was anything but stationary; alternating heavy/light
      // phases are what make stale monitoring data actively misleading.
      spec.background.burstiness = 0.6;
      spec.background.mean_phase = minutes(25);
    }
    if (config_.site_failures) {
      spec.failure.permanent_black_hole = row.permanent_black_hole;
      if (row.flaky_down || row.flaky_black_hole || row.flaky_degraded) {
        spec.failure.enabled = true;
        spec.failure.mean_uptime = hours(2);
        spec.failure.mean_downtime = minutes(40);
        spec.failure.weight_down = row.flaky_down ? 1.0 : 0.0;
        spec.failure.weight_black_hole = row.flaky_black_hole ? 1.0 : 0.0;
        spec.failure.weight_degraded = row.flaky_degraded ? 1.0 : 0.0;
      }
    }
    if (const auto it = config_.outage_schedules.find(row.name);
        it != config_.outage_schedules.end()) {
      // Schedule-driven injection overrides the renewal process for this
      // site (FailureModel prefers a non-empty schedule).
      spec.failure.schedule = it->second;
    }
    const SiteId id = grid_.add_site(spec);
    transfers_.set_link(id, {row.link_mbps * kMB, row.link_mbps * kMB});
    storage_.add(id, 10e12);  // 10 TB storage element per site
  }
}

std::vector<std::string> Scenario::site_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kSites));
  for (const SiteRow& row : kSites) names.emplace_back(row.name);
  return names;
}

std::vector<core::CatalogSite> Scenario::catalog() const {
  std::vector<core::CatalogSite> out;
  for (std::size_t i = 0; i < std::size(kSites); ++i) {
    out.push_back(core::CatalogSite{SiteId(i + 1), kSites[i].name,
                                    kSites[i].cpus});
  }
  return out;
}

workflow::WorkloadGenerator Scenario::make_generator(
    const std::string& stream_label, const workflow::WorkloadConfig& workload) {
  // External inputs may live on any healthy-at-t0 site; including the
  // permanent black hole is fine (its storage still serves transfers).
  // A replica stream, not stream(): the runner requests the same label
  // for every tenant on purpose, so the workloads are structurally
  // identical and only the ids differ.
  return workflow::WorkloadGenerator(
      workload, seeds_.stream_replica("workload/" + stream_label), ids_, rls_,
      grid_.site_ids());
}

Tenant& Scenario::add_tenant(const std::string& label,
                             const TenantOptions& options) {
  SPHINX_ASSERT(!started_, "add tenants before start()");
  Tenant tenant;
  tenant.label = label;
  const UserId user = users_.next();

  tenant.gateway = std::make_unique<submit::CondorG>(
      grid_, transfers_, rls_, &storage_, "condor-g/" + label);

  core::ServerConfig server_config;
  server_config.endpoint = "sphinx-server/" + label;
  server_config.algorithm = options.algorithm;
  server_config.use_feedback = options.use_feedback;
  server_config.use_policy = options.use_policy;
  server_config.use_qos_ordering = options.use_qos_ordering;
  server_config.checkpoint_every_records = options.checkpoint_every_records;
  server_config.checkpoint_period = options.checkpoint_period;
  server_config.sweep_phase = options.sweep_phase;
  server_config.speculate = options.speculate;
  tenant.server = std::make_unique<core::SphinxServer>(
      bus_, catalog(), rls_, transfers_, &monitoring_, server_config);
  tenant.server->set_recorder(&recorder_);

  core::ClientConfig client_config;
  client_config.endpoint = "sphinx-client/" + label;
  client_config.server = server_config.endpoint;
  client_config.user = user;
  client_config.vo = "uscms";
  client_config.job_timeout = options.job_timeout;
  const rpc::Proxy proxy(
      rpc::Identity{"/DC=org/DC=griphyn/CN=user-" + label, "/CN=iGOC CA"},
      "uscms", {"/uscms/production"}, engine_.now(), hours(24 * 365));
  tenant.client = std::make_unique<core::SphinxClient>(bus_, *tenant.gateway,
                                                       client_config, proxy);
  tenant.client->set_recorder(&recorder_);

  tenants_.push_back(std::move(tenant));
  return tenants_.back();
}

void Scenario::start() {
  if (started_) return;
  started_ = true;
  grid_.start();
  monitoring_.start();
  for (Tenant& tenant : tenants_) tenant.server->start();
}

StatusOrError Scenario::crash_and_recover_server(std::size_t tenant_index) {
  crash_server(tenant_index);
  return recover_server(tenant_index);
}

void Scenario::crash_server(std::size_t tenant_index) {
  SPHINX_PRECONDITION(tenant_index < tenants_.size(),
                      "crash target must name an existing tenant");
  Tenant& tenant = tenants_[tenant_index];
  SPHINX_PRECONDITION(tenant.server != nullptr,
                      "crash target has no live server");

  // Capture everything the recovered instance needs *before* destroying
  // the crashed one: the journal (its whole durable state), the config,
  // and the exact pending sweep time -- restarting at the literal time the
  // crashed control process was going to fire avoids recomputing the
  // phase in floating point and keeps the event order identical to an
  // uninterrupted run.
  DurableServerState durable;
  durable.journal = tenant.server->warehouse().journal();
  // With checkpointing on, the journal alone is not enough: it may be a
  // compacted suffix whose sequence base only the last published image
  // anchors.  Capture the image alongside it -- together they are the
  // crashed instance's complete durable state.
  durable.checkpoint = tenant.server->warehouse().checkpoint_image();
  durable.config = tenant.server->config();
  durable.resume_at = tenant.server->next_sweep_at();

  recorder_.event(obs::TraceKind::kServerCrash, durable.config.endpoint, "",
                  "fail-stop", static_cast<double>(durable.journal.size()));
  recorder_.count("chaos", "server.crashes");

  // Fail-stop: the destructor unregisters the endpoint, so until
  // recover_server() re-registers it the server simply does not exist on
  // the bus.  The classic chaos path recovers within the same engine
  // event; a failover leaves the endpoint dark until a surviving peer's
  // monitor sweep adopts the shard.
  tenant.server.reset();
  tenant.durable = std::move(durable);
}

StatusOrError Scenario::recover_server(std::size_t tenant_index) {
  SPHINX_PRECONDITION(tenant_index < tenants_.size(),
                      "recovery target must name an existing tenant");
  Tenant& tenant = tenants_[tenant_index];
  SPHINX_PRECONDITION(tenant.durable.has_value(),
                      "recovery target has no captured durable state");
  SPHINX_PRECONDITION(tenant.server == nullptr,
                      "recovery target still has a live server");
  const DurableServerState& durable = *tenant.durable;

  auto recovered =
      durable.checkpoint.has_value()
          ? core::SphinxServer::recover(bus_, catalog(), rls_, transfers_,
                                        &monitoring_, durable.config,
                                        *durable.checkpoint, durable.journal)
          : core::SphinxServer::recover(bus_, catalog(), rls_, transfers_,
                                        &monitoring_, durable.config,
                                        durable.journal);
  if (!recovered) return Unexpected<Error>{recovered.error()};
  tenant.server = std::move(*recovered);
  tenant.server->set_recorder(&recorder_);
  // A resume time in the dead past (the pending sweep elapsed while the
  // endpoint was dark) is clamped to now by start_at; sweep content only
  // depends on warehouse state, so the late sweep does what the missed
  // one would have.
  tenant.server->start_at(durable.resume_at);

  recorder_.event(obs::TraceKind::kServerRecovery, durable.config.endpoint, "",
                  durable.checkpoint.has_value() ? "checkpoint+suffix"
                                                 : "journal-replay",
                  static_cast<double>(tenant.server->warehouse().journal().size()));
  recorder_.count("chaos", "server.recoveries");
  tenant.durable.reset();
  return {};
}

SimTime Scenario::run(SimTime horizon) {
  // Stop as soon as every tenant has finished (checked once a sim-minute).
  sim::PeriodicProcess watchdog(
      engine_, "scenario:watchdog", 60.0, [this] {
        for (const Tenant& tenant : tenants_) {
          if (!tenant.client->all_dags_finished()) return;
        }
        engine_.stop();
      },
      60.0);
  watchdog.start();
  engine_.run_until(horizon);
  return engine_.now();
}

}  // namespace sphinx::exp
