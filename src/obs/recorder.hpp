#pragma once
/// \file recorder.hpp
/// The flight recorder: one deterministic timeline + metric set per run.
///
/// A Recorder joins a TraceSink and a MetricSet and stamps everything
/// with the owning engine's sim clock, so instrumented components that
/// have no clock of their own (the warehouse, the metric registry
/// bridge) still produce correctly timed events.  The recorder only
/// *observes*: it never schedules events, draws random numbers or
/// otherwise perturbs the simulation, so attaching one leaves a
/// fixed-seed run's results byte-identical.
///
/// Metric names are qualified by their emitting source as
/// "name\@source" (e.g. "dag.completion_time\@sphinx-client/rr"), so
/// multiple tenants sharing one recorder stay separable.

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace sphinx::monitor {
class MetricRegistry;
}  // namespace sphinx::monitor

namespace sphinx::obs {

class Recorder {
 public:
  explicit Recorder(const sim::Engine& engine) : engine_(engine) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Appends one trace event stamped with the engine's current time.
  void event(TraceKind kind, std::string source, std::string subject,
             std::string detail, double value = 0.0);

  /// Increments counter "name\@source".
  void count(const std::string& source, const std::string& name,
             std::uint64_t delta = 1);
  /// Folds one observation into histogram "name\@source".
  void observe(const std::string& source, const std::string& name,
               double value);

  /// Qualified lookup helpers (see qualified_name()).
  [[nodiscard]] std::uint64_t counter(const std::string& name,
                                      const std::string& source) const;
  [[nodiscard]] const MetricSet::Histogram* histogram(
      const std::string& name, const std::string& source) const;

  /// Subscribes to every metric the registry publishes, mirroring each
  /// observation into this recorder ("monitor_sample" trace events plus
  /// a per-metric histogram under `source`).  The registry must not
  /// outlive this recorder.
  void bridge(monitor::MetricRegistry& registry, std::string source = "gma");

  [[nodiscard]] const TraceSink& trace() const noexcept { return trace_; }
  [[nodiscard]] const MetricSet& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const sim::Engine& engine() const noexcept { return engine_; }

  [[nodiscard]] static std::string qualified_name(const std::string& name,
                                                  const std::string& source) {
    return source.empty() ? name : name + "@" + source;
  }

 private:
  const sim::Engine& engine_;
  TraceSink trace_;
  MetricSet metrics_;
};

}  // namespace sphinx::obs
