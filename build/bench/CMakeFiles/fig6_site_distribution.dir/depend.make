# Empty dependencies file for fig6_site_distribution.
# This may be replaced when dependencies are built.
