#include "rpc/clarens.hpp"

namespace sphinx::rpc {

ClarensService::ClarensService(MessageBus& bus, std::string endpoint,
                               AuthzPolicy policy)
    : bus_(bus), endpoint_(std::move(endpoint)), policy_(std::move(policy)) {
  bus_.register_endpoint(endpoint_,
                         [this](const Envelope& env) { handle(env); });
}

ClarensService::~ClarensService() { bus_.unregister_endpoint(endpoint_); }

void ClarensService::register_method(const std::string& name, Method method) {
  SPHINX_ASSERT(method != nullptr, "method handler must not be null");
  methods_[name] = std::move(method);
}

void ClarensService::handle(const Envelope& request) {
  const auto respond = [&](const MethodResponse& response) {
    bus_.reply(request, response.serialize());
  };

  auto call = MethodCall::parse(request.payload);
  if (!call) {
    respond(MethodResponse::failure(
        static_cast<std::int64_t>(ClarensFault::kParse), call.error().message));
    return;
  }

  const AuthzDecision decision =
      policy_.check(request.proxy, call->method, bus_.engine().now());
  if (!decision.allowed) {
    ++denied_;
    respond(MethodResponse::failure(
        static_cast<std::int64_t>(ClarensFault::kDenied), decision.reason));
    return;
  }

  const auto it = methods_.find(call->method);
  if (it == methods_.end()) {
    respond(MethodResponse::failure(
        static_cast<std::int64_t>(ClarensFault::kNoSuchMethod),
        "no such method: " + call->method));
    return;
  }

  ++served_;
  auto result = it->second(call->params, request.proxy);
  if (!result) {
    respond(MethodResponse::failure(
        static_cast<std::int64_t>(ClarensFault::kApplication),
        result.error().to_string()));
    return;
  }
  respond(MethodResponse::success(std::move(*result)));
}

ClarensClient::ClarensClient(MessageBus& bus, std::string endpoint, Proxy proxy)
    : bus_(bus), endpoint_(std::move(endpoint)), proxy_(std::move(proxy)) {
  bus_.register_endpoint(endpoint_,
                         [this](const Envelope& env) { handle(env); });
}

ClarensClient::~ClarensClient() { bus_.unregister_endpoint(endpoint_); }

void ClarensClient::call(const std::string& service, const std::string& method,
                         std::vector<XrValue> params, Callback callback) {
  SPHINX_ASSERT(callback != nullptr, "call callback must not be null");
  MethodCall mc;
  mc.method = method;
  mc.params = std::move(params);
  const MessageId id = bus_.send(endpoint_, service, mc.serialize(), proxy_);
  pending_.emplace(id, std::move(callback));
}

void ClarensClient::handle(const Envelope& response) {
  const auto it = pending_.find(response.in_reply_to);
  if (it == pending_.end()) return;  // unsolicited or duplicate; ignore
  Callback callback = std::move(it->second);
  pending_.erase(it);

  auto parsed = MethodResponse::parse(response.payload);
  if (!parsed) {
    callback(Unexpected<Error>{parsed.error()});
    return;
  }
  if (parsed->is_fault) {
    callback(make_error("fault:" + std::to_string(parsed->fault.code),
                        parsed->fault.message));
    return;
  }
  callback(std::move(parsed->value));
}

}  // namespace sphinx::rpc
