/// A high-energy-physics production campaign through the Chimera-style
/// virtual data catalog.
///
/// The paper's motivating users are HEP collaborations running
/// simulation + reconstruction + analysis pipelines described as virtual
/// data: transformations and derivations, compiled on demand into
/// abstract DAGs (section 3.3).  This example registers a small CMS-like
/// pipeline, requests two analysis products, lets SPHINX schedule the
/// compiled DAGs, and then requests one of them *again* to show the DAG
/// reducer eliminating already-materialized derivations.

#include <cstdio>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "exp/scenario.hpp"
#include "workflow/chimera.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::exp;

  ScenarioConfig scenario_config;
  scenario_config.seed = 7;
  Scenario scenario(scenario_config);
  TenantOptions options;
  options.algorithm = core::Algorithm::kCompletionTime;
  Tenant& tenant = scenario.add_tenant("cms-prod", options);

  // --- virtual data catalog: a mini CMS pipeline ----------------------
  workflow::VirtualDataCatalog vdc;
  const auto must = [](StatusOrError status) {
    SPHINX_ASSERT(status.ok(), "derivation registration failed");
  };
  vdc.add_transformation({"cmkin", 60.0});    // event generation
  vdc.add_transformation({"cmsim", 90.0});    // detector simulation
  vdc.add_transformation({"reco", 60.0});     // reconstruction
  vdc.add_transformation({"analysis", 45.0}); // ntuple analysis

  for (int run = 0; run < 4; ++run) {
    const std::string r = std::to_string(run);
    must(vdc.add_derivation({"cmkin", {}, "lfn://mc/gen" + r, 80e6}));
    must(vdc.add_derivation(
        {"cmsim", {"lfn://mc/gen" + r}, "lfn://mc/sim" + r, 150e6}));
    must(vdc.add_derivation(
        {"reco", {"lfn://mc/sim" + r}, "lfn://mc/reco" + r, 60e6}));
  }
  must(vdc.add_derivation({"analysis",
                          {"lfn://mc/reco0", "lfn://mc/reco1"},
                          "lfn://plots/higgs", 5e6}));
  must(vdc.add_derivation({"analysis",
                          {"lfn://mc/reco2", "lfn://mc/reco3"},
                          "lfn://plots/susy", 5e6}));
  std::printf("virtual data catalog: %zu derivations registered\n",
              vdc.derivation_count());

  // --- compile and submit the two analysis requests -------------------
  const auto higgs = vdc.request("lfn://plots/higgs", scenario.ids(), "higgs");
  const auto susy = vdc.request("lfn://plots/susy", scenario.ids(), "susy");
  if (!higgs || !susy) {
    std::printf("derivation request failed\n");
    return 1;
  }
  std::printf("compiled DAGs: higgs=%zu jobs, susy=%zu jobs\n",
              higgs->size(), susy->size());

  scenario.start();
  scenario.engine().schedule_at(1.0, "submit", [&] {
    tenant.client->submit(*higgs);
    tenant.client->submit(*susy);
  });
  scenario.run(hours(12));

  for (const auto& outcome : tenant.client->dag_outcomes()) {
    std::printf("%s finished in %s\n", outcome.name.c_str(),
                outcome.done()
                    ? format_duration(outcome.completion_time()).c_str()
                    : "(did not finish)");
  }

  // --- request higgs again: everything is already materialized --------
  const auto again = vdc.request("lfn://plots/higgs", scenario.ids(),
                                 "higgs-again");
  const std::size_t reduced_before = tenant.server->stats().jobs_reduced;
  scenario.engine().schedule_in(1.0, "resubmit",
                                [&] { tenant.client->submit(*again); });
  scenario.run(scenario.engine().now() + hours(1));
  const auto& outcome = tenant.client->dag_outcomes().back();
  std::printf(
      "\nre-request of lfn://plots/higgs: %zu of %zu jobs eliminated by the "
      "DAG reducer, finished in %s\n",
      tenant.server->stats().jobs_reduced - reduced_before, again->size(),
      outcome.done() ? format_duration(outcome.completion_time()).c_str()
                     : "(did not finish)");
  return 0;
}
