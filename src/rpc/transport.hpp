#pragma once
/// \file transport.hpp
/// In-simulation message bus with delivery latency.
///
/// All client/server traffic (scheduling requests, planning decisions,
/// tracker reports) travels as envelopes on this bus.  Delivery is
/// asynchronous on the simulation engine with configurable latency and
/// jitter, so message delay is part of every experiment, exactly as WAN
/// latency was on Grid3.

#include <functional>
#include <string>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "rpc/gsi.hpp"
#include "sim/engine.hpp"

namespace sphinx::obs {
class Recorder;
}  // namespace sphinx::obs

namespace sphinx::rpc {

/// One message in flight.
struct Envelope {
  MessageId id;
  std::string from;          ///< sender endpoint name
  std::string to;            ///< recipient endpoint name
  std::string payload;       ///< serialized XML-RPC call or response
  Proxy proxy;               ///< caller credential (GSI)
  MessageId in_reply_to;     ///< correlation id; invalid for requests
  SimTime sent_at = 0.0;
};

/// Bus delivery counters, exposed for tests and diagnostics.
struct BusStats {
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t dropped = 0;  ///< recipient endpoint missing at delivery time
};

/// Named-endpoint message bus.
class MessageBus {
 public:
  using Handler = std::function<void(const Envelope&)>;

  /// \param base_latency one-way delivery delay; \param jitter uniform
  /// extra delay in [0, jitter).
  MessageBus(sim::Engine& engine, Rng rng, Duration base_latency = 0.05,
             Duration jitter = 0.05);

  /// Registers (or replaces) an endpoint handler.
  void register_endpoint(const std::string& name, Handler handler);
  /// Removes an endpoint; in-flight messages to it will be dropped.
  void unregister_endpoint(const std::string& name);
  [[nodiscard]] bool has_endpoint(const std::string& name) const noexcept;

  /// Sends a request envelope.  Returns the message id for correlation.
  MessageId send(const std::string& from, const std::string& to,
                 std::string payload, Proxy proxy = {});

  /// Sends a reply correlated with `request`.
  MessageId reply(const Envelope& request, std::string payload);

  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  /// Attaches a flight recorder; every delivery records its latency.
  /// Pass nullptr to detach.  Observation only -- attaching a recorder
  /// changes neither delivery timing nor the RNG stream.
  void set_recorder(obs::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  MessageId post(Envelope envelope);

  sim::Engine& engine_;
  Rng rng_;
  Duration base_latency_;
  Duration jitter_;
  std::unordered_map<std::string, Handler> endpoints_;
  IdGenerator<MessageId> ids_;
  BusStats stats_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace sphinx::rpc
