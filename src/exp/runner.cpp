#include "exp/runner.hpp"

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "obs/export.hpp"

namespace sphinx::exp {

std::vector<TenantSpec> standard_panel() {
  std::vector<TenantSpec> specs;
  TenantOptions options;
  options.use_feedback = true;
  options.algorithm = core::Algorithm::kCompletionTime;
  specs.push_back({"completion-time", options});
  options.algorithm = core::Algorithm::kQueueLength;
  specs.push_back({"queue-length", options});
  options.algorithm = core::Algorithm::kNumCpus;
  specs.push_back({"num-cpus", options});
  options.algorithm = core::Algorithm::kRoundRobin;
  specs.push_back({"round-robin", options});
  return specs;
}

const obs::Recorder& Experiment::recorder() const {
  SPHINX_PRECONDITION(scenario_ != nullptr, "recorder(): call run() first");
  return scenario_->recorder();
}

std::vector<TenantResult> Experiment::run(
    const std::vector<TenantSpec>& specs) {
  scenario_ = std::make_unique<Scenario>(config_.scenario);
  Scenario& scenario = *scenario_;

  // Create tenants and their (structurally identical) workloads.
  std::vector<std::vector<workflow::Dag>> workloads;
  for (const TenantSpec& spec : specs) {
    Tenant& tenant = scenario.add_tenant(spec.label, spec.options);
    // Same stream label for every tenant -> identical DAG structures,
    // compute times and file sizes; only the ids differ.
    auto generator = scenario.make_generator("shared", config_.workload);
    workloads.push_back(
        generator.generate_batch(spec.label, config_.dag_count));

    // Figure 7: install usage quotas sized relative to workload demand.
    if (spec.options.use_policy &&
        (config_.quota_cpu_fraction > 0 || config_.quota_disk_fraction > 0)) {
      double total_cpu_seconds = 0.0;
      double total_disk_bytes = 0.0;
      for (const workflow::Dag& dag : workloads.back()) {
        for (const workflow::JobSpec& job : dag.jobs()) {
          total_cpu_seconds += job.compute_time;
          total_disk_bytes += job.output_bytes;
        }
      }
      for (const core::CatalogSite& site : scenario.catalog()) {
        if (config_.quota_cpu_fraction > 0) {
          tenant.server->set_quota(tenant.client->config().user, site.id,
                                   "cpu_seconds",
                                   total_cpu_seconds *
                                       config_.quota_cpu_fraction);
        }
        if (config_.quota_disk_fraction > 0) {
          tenant.server->set_quota(tenant.client->config().user, site.id,
                                   "disk_bytes",
                                   total_disk_bytes *
                                       config_.quota_disk_fraction);
        }
      }
    }
  }

  scenario.start();

  // Submit every tenant's k-th DAG at the same instant (fair start).
  for (std::size_t t = 0; t < specs.size(); ++t) {
    for (std::size_t k = 0; k < workloads[t].size(); ++k) {
      const workflow::Dag& dag = workloads[t][k];
      scenario.engine().schedule_at(
          10.0 + static_cast<double>(k) * config_.submit_spacing,
          "submit:" + dag.name(),
          [&scenario, t, &dag] { scenario.tenants()[t].client->submit(dag); });
    }
  }

  stopped_at_ = scenario.run(config_.horizon);

  // Harvest metrics.
  std::vector<TenantResult> results;
  for (std::size_t t = 0; t < specs.size(); ++t) {
    const Tenant& tenant = scenario.tenants()[t];
    TenantResult r;
    r.label = tenant.label;
    r.dags_total = tenant.client->dag_outcomes().size();
    r.dags_finished = tenant.client->dags_finished();
    r.avg_dag_completion = tenant.client->avg_dag_completion();
    r.avg_job_execution = tenant.client->avg_job_execution();
    r.avg_job_idle = tenant.client->avg_job_idle();
    r.timeouts = tenant.client->tracker_stats().timeouts;
    r.extensions = tenant.client->tracker_stats().extensions;
    r.held_or_failed = tenant.client->tracker_stats().held_or_failed;
    r.plans = tenant.server->stats().plans_sent;
    r.replans = tenant.server->stats().replans;
    r.policy_rejections = tenant.server->stats().policy_rejections;
    r.submissions = tenant.client->tracker_stats().submissions;
    r.unique_submissions = tenant.client->unique_submissions();
    r.duplicate_plans = tenant.client->tracker_stats().duplicate_plans;
    r.duplicate_dags = tenant.server->stats().duplicate_dags;
    for (const core::CatalogSite& site : scenario.catalog()) {
      const auto& observations = tenant.client->site_observations();
      const auto it = observations.find(site.id);
      SiteFigure figure;
      figure.site = site.name;
      if (it != observations.end()) {
        figure.completed = it->second.completed;
        figure.avg_completion = it->second.completion_times.mean();
      }
      r.per_site.push_back(figure);
    }
    results.push_back(std::move(r));
  }

  // Flight-recorder export: per-run trace + metrics, byte-identical for
  // same-seed runs (tools/check.sh's determinism gate diffs two of them).
  if (!config_.trace_path.empty()) {
    if (const auto status =
            obs::write_trace_jsonl(scenario.recorder().trace(),
                                   config_.trace_path);
        !status.ok()) {
      Logger("experiment").warn("trace export failed: ",
                                status.error().to_string());
    }
  }
  if (!config_.metrics_path.empty()) {
    if (const auto status =
            obs::write_metrics_json(scenario.recorder().metrics(),
                                    config_.metrics_path);
        !status.ok()) {
      Logger("experiment").warn("metrics export failed: ",
                                status.error().to_string());
    }
  }
  return results;
}

}  // namespace sphinx::exp
