#pragma once
/// \file rls.hpp
/// Replica Location Service (Giggle-style LRC + RLI hierarchy).
///
/// Following the Globus RLS design the paper uses (section 3.4): each
/// site runs a Local Replica Catalog (LRC) mapping logical names to its
/// own physical files; a Replica Location Index (RLI) knows, for every
/// logical name, *which* LRCs hold replicas.  Queries go index-first,
/// then fan out to the relevant LRCs.  SPHINX "clubs" its lookups into
/// single bulk calls, which the API supports directly.

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "data/lfn.hpp"

namespace sphinx::sim {
class Engine;
}

namespace sphinx::data {

/// Local Replica Catalog: one site's logical -> physical mapping.
class LocalReplicaCatalog {
 public:
  explicit LocalReplicaCatalog(SiteId site) : site_(site) {}

  [[nodiscard]] SiteId site() const noexcept { return site_; }

  /// Registers (or re-registers, updating the size) a local replica.
  void add(const Lfn& lfn, double size_bytes);
  /// Removes a mapping; no-op if absent.
  void remove(const Lfn& lfn);
  [[nodiscard]] bool has(const Lfn& lfn) const noexcept;
  [[nodiscard]] std::optional<double> size_of(const Lfn& lfn) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return files_.size(); }

 private:
  SiteId site_;
  std::unordered_map<Lfn, double> files_;  // lfn -> bytes
};

/// The full service: RLI index over per-site LRCs.
///
/// By default index updates are immediate.  In *soft-state* mode (the
/// Giggle design the paper cites: LRCs push periodic state summaries to
/// the index) registrations reach the LRC at once but become visible to
/// index queries only after the propagation delay -- queries in that
/// window miss the new replica, exactly like a freshly produced file on
/// the real RLS.
class ReplicaLocationService {
 public:
  ReplicaLocationService() = default;

  /// Enables soft-state index propagation.  The engine must outlive the
  /// service.
  void enable_soft_state(sim::Engine& engine, Duration propagation_delay);

  /// Creates (idempotently) the LRC for a site.
  LocalReplicaCatalog& lrc(SiteId site);

  /// Registers a replica of `lfn` at `site` and updates the index.
  void register_replica(const Lfn& lfn, SiteId site, double size_bytes);

  /// Unregisters one replica; drops the index entry when none remain.
  void unregister_replica(const Lfn& lfn, SiteId site);

  /// True if at least one replica of `lfn` exists anywhere.
  [[nodiscard]] bool exists(const Lfn& lfn) const noexcept;

  /// All replicas of one logical file.
  [[nodiscard]] std::vector<Replica> locate(const Lfn& lfn) const;

  /// Bulk ("clubbed") lookup: one call, many logical names.  The result
  /// vector is parallel to `lfns`; missing files yield empty entries.
  [[nodiscard]] std::vector<std::vector<Replica>> locate_bulk(
      const std::vector<Lfn>& lfns) const;

  /// Number of RLS queries answered (single and bulk both count once) --
  /// lets tests verify that clubbing reduces call volume.
  [[nodiscard]] std::size_t queries() const noexcept { return queries_; }
  [[nodiscard]] std::size_t lfn_count() const noexcept { return index_.size(); }
  /// Index updates still in flight (soft-state mode only).
  [[nodiscard]] std::size_t pending_updates() const noexcept {
    return pending_;
  }

 private:
  [[nodiscard]] std::vector<Replica> locate_uncounted(const Lfn& lfn) const;

  std::unordered_map<SiteId, LocalReplicaCatalog> lrcs_;
  // RLI: lfn -> set of sites whose LRC has it.
  std::unordered_map<Lfn, std::unordered_set<SiteId>> index_;
  mutable std::size_t queries_ = 0;
  sim::Engine* engine_ = nullptr;  ///< non-null in soft-state mode
  Duration propagation_delay_ = 0.0;
  std::size_t pending_ = 0;
};

}  // namespace sphinx::data
