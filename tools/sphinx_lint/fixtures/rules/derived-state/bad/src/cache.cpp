/// \file cache.cpp
/// Fixture: mutating a derived member outside its declared rebuild
/// function -- recovered state would diverge from a journal replay.

#include "cache.hpp"

namespace fixture {

void Cache::rebuild() {
  dirty_.clear();
  dirty_.insert(1);
}

void Cache::poke() {
  dirty_.insert(2);  // not in the annotation's allow list
}

}  // namespace fixture
