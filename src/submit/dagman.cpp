#include "submit/dagman.hpp"

namespace sphinx::submit {

DagMan::DagMan(CondorG& gateway, workflow::Dag dag, UserId user,
               std::string vo, PlacementCallout callout,
               DagDoneCallback on_done, int max_retries)
    : gateway_(gateway),
      dag_(std::move(dag)),
      user_(user),
      vo_(std::move(vo)),
      callout_(std::move(callout)),
      on_done_(std::move(on_done)),
      max_retries_(max_retries) {
  SPHINX_ASSERT(callout_ != nullptr, "DAGMan needs a placement callout");
}

void DagMan::start(SimTime now) { release_ready(now); }

void DagMan::release_ready(SimTime now) {
  if (failed_) return;
  for (const JobId id : dag_.ready_jobs(completed_)) {
    if (active_.contains(id)) continue;
    submit_job(id, now);
    if (failed_) return;
  }
  if (finished() && !done_notified_) {
    done_notified_ = true;
    if (on_done_) on_done_(dag_.id(), now);
  }
}

void DagMan::submit_job(JobId id, SimTime /*now*/) {
  const workflow::JobSpec& spec = dag_.job(id);
  const auto placement = callout_(spec);
  if (!placement.has_value()) return;  // deferred; retried on next event

  SubmitRequest request;
  request.job = id;
  request.name = spec.name;
  request.user = user_;
  request.vo = vo_;
  request.site = placement->site;
  request.compute_time = spec.compute_time;
  request.inputs = placement->inputs;
  request.output = spec.output;
  request.output_bytes = spec.output_bytes;

  active_.insert(id);
  const bool accepted = gateway_.submit(
      request, [this](const GatewayEvent& event) { on_event(event); });
  if (!accepted) {
    // Synchronous failure already produced a kFailed event handled by
    // on_event (retry accounting happens there).
    return;
  }
}

void DagMan::on_event(const GatewayEvent& event) {
  switch (event.state) {
    case GatewayJobState::kCompleted: {
      active_.erase(event.job);
      completed_.insert(event.job);
      release_ready(event.at);
      return;
    }
    case GatewayJobState::kHeld:
    case GatewayJobState::kFailed:
    case GatewayJobState::kRemoved: {
      active_.erase(event.job);
      const int attempt = ++attempts_[event.job];
      if (attempt > max_retries_) {
        failed_ = true;
        return;
      }
      ++retries_;
      submit_job(event.job, event.at);
      return;
    }
    default:
      return;  // queue progress states need no action here
  }
}

}  // namespace sphinx::submit
