/// Ablation: how much grid pathology is needed before feedback matters.
///
/// Figure 2's conclusion ("feedback is critical") depends on sites
/// actually misbehaving.  This sweep compares round-robin with and
/// without feedback on (a) a clean grid, (b) failures only, (c)
/// background load only, and (d) the full dynamic grid.

#include "bench_common.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Ablation",
               "grid pathology vs value of feedback (30 dags x 10 jobs)");

  std::vector<exp::TenantSpec> specs;
  exp::TenantOptions options;
  options.algorithm = core::Algorithm::kRoundRobin;
  options.use_feedback = true;
  specs.push_back({"rr+feedback", options});
  options.use_feedback = false;
  specs.push_back({"rr w/o feedback", options});

  struct Case {
    const char* name;
    bool failures;
    bool background;
  };
  const Case cases[] = {
      {"clean grid", false, false},
      {"failures only", true, false},
      {"background only", false, true},
      {"full dynamic grid", true, true},
  };

  std::printf("\n%-20s %-14s %-18s %-12s\n", "grid", "rr+fb (s)",
              "rr w/o fb (s)", "fb gain");
  for (const Case& c : cases) {
    exp::ExperimentConfig config = paper_config(30);
    config.scenario.site_failures = c.failures;
    config.scenario.background_load = c.background;
    exp::Experiment experiment(config);
    const auto results = experiment.run(specs);
    const double with_fb = results[0].avg_dag_completion;
    const double without = results[1].avg_dag_completion;
    std::printf("%-20s %-14.1f %-18.1f %.1f%%\n", c.name, with_fb, without,
                100.0 * (without - with_fb) / without);
  }
  std::printf("\nexpectation: feedback is worth ~nothing on a clean grid "
              "and the most when sites fail\n");
  return 0;
}
