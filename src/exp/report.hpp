#pragma once
/// \file report.hpp
/// Terminal rendering of experiment results (one table/series per paper
/// figure, printed by the bench binaries).

#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace sphinx::exp {

/// Figure 2/3a/4a/5a/7a: average DAG completion time per strategy.
[[nodiscard]] std::string render_dag_completion(
    const std::string& title, const std::vector<TenantResult>& results);

/// Figure 3b/4b/5b/7b: average job execution and idle time per strategy.
[[nodiscard]] std::string render_exec_idle(
    const std::string& title, const std::vector<TenantResult>& results);

/// Figure 6: per-site completed jobs vs average completion time.
[[nodiscard]] std::string render_site_distribution(
    const std::string& title, const TenantResult& result);

/// Figure 8: timeout counts per strategy.
[[nodiscard]] std::string render_timeouts(
    const std::string& title, const std::vector<TenantResult>& results);

/// Run health summary (DAGs finished, plans, replans) for any figure.
[[nodiscard]] std::string render_summary(
    const std::vector<TenantResult>& results);

}  // namespace sphinx::exp
