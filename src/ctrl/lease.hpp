#pragma once
/// \file lease.hpp
/// The journaled heartbeat-lease table: which scheduler owns which shard.
///
/// Ownership is a lease, not an assignment: the owner must renew within
/// the TTL or the coordinator declares the shard dead and a surviving
/// peer adopts it.  Every mutation -- grant, renewal, expiry, transfer --
/// goes through a db::Database so it lands in a journal, exactly like
/// the warehouse's scheduling state: a crashed-and-recovered coordinator
/// replays the journal and sees the same owners, epochs and deadlines as
/// the instance it replaced (recover_from()).
///
/// Epochs fence stale owners.  Each transfer increments the shard's
/// epoch; a renewal carrying an older epoch (an owner that was paused,
/// declared dead, and came back) is rejected as kFenced so two
/// schedulers can never both believe they own a shard.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "db/database.hpp"

namespace sphinx::ctrl {

/// One shard's lease, materialized from its table row.
struct Lease {
  std::string shard;
  std::string owner;
  std::uint64_t epoch = 0;
  SimTime expires_at = 0.0;
  bool live = true;  ///< false once the coordinator declared it expired
};

/// Outcome of a renewal attempt.
enum class RenewOutcome {
  kRenewed,       ///< deadline extended
  kFenced,        ///< stale epoch or already-expired lease; owner must stop
  kUnknownShard,  ///< no lease was ever granted for this shard
};

/// The lease table itself.  All reads iterate in row (= grant) order, so
/// decisions derived from the table -- expiry sweeps, adopter choice --
/// are a function of table state alone, never of hash-map iteration.
class LeaseTable {
 public:
  LeaseTable();

  LeaseTable(const LeaseTable&) = delete;
  LeaseTable& operator=(const LeaseTable&) = delete;

  /// Grants the initial lease on `shard` (epoch 1).  The shard must not
  /// already hold a lease -- regrant is transfer()'s job.
  std::uint64_t grant(const std::string& shard, const std::string& owner,
                      SimTime now, Duration ttl);

  /// Extends `shard`'s deadline to now + ttl iff (owner, epoch) match the
  /// live lease.  A mismatch fences the caller (see file comment).
  RenewOutcome renew(const std::string& shard, const std::string& owner,
                     std::uint64_t epoch, SimTime now, Duration ttl);

  /// Live leases whose deadline has passed, in grant order.
  [[nodiscard]] std::vector<Lease> expired(SimTime now) const;

  /// Leases already declared dead (mark_expired()) and not yet
  /// transferred, in grant order -- the standing adoption work-list: a
  /// shard whose adoption failed stays here until a sweep succeeds.
  [[nodiscard]] std::vector<Lease> dead() const;

  /// Marks a lease dead (journaled), so one missed deadline is declared
  /// exactly once no matter how often the monitor sweeps.
  void mark_expired(const std::string& shard);

  /// Rebinds `shard` to `new_owner` with epoch + 1 and a fresh deadline.
  /// Returns the new epoch.  Valid on live and expired leases (adoption
  /// transfers an expired one).
  std::uint64_t transfer(const std::string& shard, const std::string& new_owner,
                         SimTime now, Duration ttl);

  [[nodiscard]] std::optional<Lease> lookup(const std::string& shard) const;

  /// The owner of the first live, unexpired lease in grant order whose
  /// owner differs from `exclude` -- the adoption candidate.  An owner
  /// is only believed alive while some lease of its own is current.
  [[nodiscard]] std::optional<std::string> first_live_owner(
      SimTime now, const std::string& exclude) const;

  /// All leases in grant order.
  [[nodiscard]] std::vector<Lease> leases() const;

  [[nodiscard]] const db::Journal& journal() const noexcept {
    return db_->journal();
  }

  /// Replays a crashed instance's journal into this (freshly constructed,
  /// never-mutated) table, replacing the fresh schema wholesale -- the
  /// replayed journal's own create-table record rebuilds it, so the
  /// recovered journal stays byte-identical to the crashed one's.
  [[nodiscard]] StatusOrError recover_from(const db::Journal& journal);

  void check_invariants() const { db_->check_invariants(); }

 private:
  [[nodiscard]] static Lease from_row(const db::Row& row);

  /// unique_ptr so recover_from() can swap in the replayed store.
  std::unique_ptr<db::Database> db_;
  db::Table* table_ = nullptr;
};

}  // namespace sphinx::ctrl
