/// Microbenchmarks for the scheduling core itself: strategy decision
/// cost, warehouse sweep building blocks, and full end-to-end simulation
/// throughput (events per second of one complete experiment).

#include <benchmark/benchmark.h>

#include "core/algorithms.hpp"
#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

namespace {

using namespace sphinx;

core::SchedulingContext synthetic_context(int sites) {
  core::SchedulingContext ctx;
  Rng rng(7);
  for (int i = 0; i < sites; ++i) {
    core::CandidateSite site;
    site.id = SiteId(static_cast<std::uint64_t>(i + 1));
    site.cpus = static_cast<int>(rng.uniform_int(8, 256));
    site.outstanding = rng.uniform_int(0, 40);
    site.monitored = true;
    site.mon_queued = static_cast<int>(rng.uniform_int(0, 80));
    site.mon_running = static_cast<int>(rng.uniform_int(0, 200));
    site.samples = rng.uniform_int(1, 50);
    site.completed = site.samples;
    site.avg_completion = rng.uniform(60.0, 1500.0);
    ctx.sites.push_back(site);
  }
  return ctx;
}

void BM_StrategyDecision(benchmark::State& state) {
  const auto algorithm =
      core::make_algorithm(static_cast<core::Algorithm>(state.range(1)));
  const auto ctx = synthetic_context(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm->select(ctx));
  }
  state.SetLabel(algorithm->name());
}
BENCHMARK(BM_StrategyDecision)
    ->ArgsProduct({{15, 100}, {0, 1, 2, 3}});

void BM_EndToEndExperiment(benchmark::State& state) {
  // One full single-tenant run: N DAGs x 10 jobs on the quiet grid.
  const int dags = static_cast<int>(state.range(0));
  for (auto _ : state) {
    exp::ScenarioConfig config;
    config.seed = 5;
    config.site_failures = false;
    config.background_load = false;
    exp::Scenario scenario(config);
    exp::Tenant& tenant = scenario.add_tenant("bench", exp::TenantOptions{});
    auto generator =
        scenario.make_generator("bench", workflow::WorkloadConfig{});
    const auto batch = generator.generate_batch("bench", dags);
    scenario.start();
    scenario.engine().schedule_at(1.0, "submit", [&] {
      for (const auto& dag : batch) tenant.client->submit(dag);
    });
    scenario.run(hours(24));
    benchmark::DoNotOptimize(tenant.client->dags_finished());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(
                                scenario.engine().events_fired()));
  }
  state.SetLabel("items = engine events");
}
BENCHMARK(BM_EndToEndExperiment)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace
