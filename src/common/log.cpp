#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace sphinx {
namespace log_detail {

LogLevel& global_level() noexcept {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void emit(LogLevel level, const std::string& component, const std::string& msg) {
  static std::mutex mu;  // examples may log from the parallel sweep pool
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN",  "ERROR", "OFF"};
  const std::scoped_lock lock(mu);
  std::fprintf(stderr, "[%s] %s: %s\n",
               kNames[static_cast<int>(level)], component.c_str(), msg.c_str());
}

}  // namespace log_detail

LogLevel set_log_level(LogLevel level) noexcept {
  const LogLevel prev = log_detail::global_level();
  log_detail::global_level() = level;
  return prev;
}

LogLevel log_level() noexcept { return log_detail::global_level(); }

}  // namespace sphinx
