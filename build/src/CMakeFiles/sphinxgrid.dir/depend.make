# Empty dependencies file for sphinxgrid.
# This may be replaced when dependencies are built.
