#pragma once
/// \file lfn.hpp
/// Logical and physical file names.
///
/// Grid data management separates a *logical* file name (what a workflow
/// references) from its *physical* replicas (site + size).  The replica
/// location service maps one to the other.

#include <string>

#include "common/ids.hpp"

namespace sphinx::data {

/// A logical file name, e.g. "lfn://cms/reco/run42/evts.root".
using Lfn = std::string;

/// One physical replica of a logical file.
struct Replica {
  Lfn lfn;
  SiteId site;
  double size_bytes = 0.0;

  friend bool operator==(const Replica&, const Replica&) = default;
};

}  // namespace sphinx::data
