/// Microbenchmarks for the scheduling core itself: strategy decision
/// cost, warehouse sweep building blocks, and full end-to-end simulation
/// throughput (events per second of one complete experiment).

#include <benchmark/benchmark.h>

#include "core/algorithms.hpp"
#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

namespace {

using namespace sphinx;

core::PlanningContext synthetic_context(int sites) {
  core::PlanningContext ctx;
  Rng rng(7);
  for (int i = 0; i < sites; ++i) {
    core::CandidateSite site;
    site.id = SiteId(static_cast<std::uint64_t>(i + 1));
    site.cpus = static_cast<int>(rng.uniform_int(8, 256));
    site.outstanding = rng.uniform_int(0, 40);
    site.monitored = true;
    site.mon_queued = static_cast<int>(rng.uniform_int(0, 80));
    site.mon_running = static_cast<int>(rng.uniform_int(0, 200));
    site.samples = rng.uniform_int(1, 50);
    site.completed = site.samples;
    site.avg_completion = rng.uniform(60.0, 1500.0);
    ctx.sites.push_back(site);
  }
  return ctx;
}

void BM_StrategyDecision(benchmark::State& state) {
  const auto algorithm =
      core::make_algorithm(static_cast<core::Algorithm>(state.range(1)));
  const auto ctx = synthetic_context(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm->select(ctx));
  }
  state.SetLabel(algorithm->name());
}
BENCHMARK(BM_StrategyDecision)
    ->ArgsProduct({{15, 100}, {0, 1, 2, 3}});

void BM_EndToEndExperiment(benchmark::State& state) {
  // One full single-tenant run: N DAGs x 10 jobs on the quiet grid.
  const int dags = static_cast<int>(state.range(0));
  for (auto _ : state) {
    exp::ScenarioConfig config;
    config.seed = 5;
    config.site_failures = false;
    config.background_load = false;
    exp::Scenario scenario(config);
    exp::Tenant& tenant = scenario.add_tenant("bench", exp::TenantOptions{});
    auto generator =
        scenario.make_generator("bench", workflow::WorkloadConfig{});
    const auto batch = generator.generate_batch("bench", dags);
    scenario.start();
    scenario.engine().schedule_at(1.0, "submit", [&] {
      for (const auto& dag : batch) tenant.client->submit(dag);
    });
    scenario.run(hours(24));
    benchmark::DoNotOptimize(tenant.client->dags_finished());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(
                                scenario.engine().events_fired()));
  }
  state.SetLabel("items = engine events");
}
BENCHMARK(BM_EndToEndExperiment)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

workflow::Dag one_job_dag(std::uint64_t base, const std::string& input) {
  workflow::Dag dag(DagId(base), "sweep-" + std::to_string(base));
  workflow::JobSpec job;
  job.id = JobId(base * 10 + 1);
  job.name = "j";
  job.compute_time = 60.0;
  job.inputs = {input};
  job.output = "lfn://sweep-out/" + std::to_string(base);
  dag.add_job(job);
  return dag;
}

void BM_SweepCost(benchmark::State& state) {
  // Sweep cost must be O(changed work): N mostly-idle planning DAGs sit
  // in the warehouse while a fixed handful stays blocked (inputs with no
  // replicas), so every sweep retries only the blocked ones.  Growing N
  // 100x should leave the per-sweep time roughly flat.
  const std::uint64_t idle = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kActive = 8;
  exp::ScenarioConfig config;
  config.seed = 5;
  config.site_failures = false;
  config.background_load = false;
  exp::Scenario scenario(config);
  exp::Tenant& tenant = scenario.add_tenant("bench", exp::TenantOptions{});
  core::DataWarehouse& wh = tenant.server->warehouse();
  for (std::uint64_t i = 1; i <= idle; ++i) {
    // Fully planned: no unplanned jobs, so the DAG settles off the queue.
    wh.insert_dag(one_job_dag(i, "lfn://sweep-in"), "bench", UserId(1), 0.0);
    wh.set_dag_state(DagId(i), core::DagState::kPlanning);
    wh.set_job_planned(JobId(i * 10 + 1), SiteId(1), 0.0);
  }
  for (std::uint64_t i = idle + 1; i <= idle + kActive; ++i) {
    // Unplanned job whose input has no replica: blocked every sweep.
    wh.insert_dag(one_job_dag(i, "lfn://nowhere/" + std::to_string(i)),
                  "bench", UserId(1), 0.0);
    wh.set_dag_state(DagId(i), core::DagState::kPlanning);
  }
  tenant.server->sweep();  // settle: the idle DAGs drain and stay idle
  for (auto _ : state) {
    tenant.server->sweep();
  }
  state.SetLabel("idle=" + std::to_string(idle) + " active=8");
}
BENCHMARK(BM_SweepCost)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
