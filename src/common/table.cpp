#include "common/table.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace sphinx {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  const std::size_t cols =
      std::max(header_.size(),
               rows_.empty() ? std::size_t{0}
                             : std::max_element(rows_.begin(), rows_.end(),
                                                [](const auto& a, const auto& b) {
                                                  return a.size() < b.size();
                                                })
                                   ->size());
  std::vector<std::size_t> widths(cols, 0);
  const auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      line += cell;
      if (c + 1 < cols) line += std::string(widths[c] - cell.size() + 2, ' ');
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < cols; ++c) total += widths[c] + (c + 1 < cols ? 2 : 0);
  out += std::string(total, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string bar_line(const std::string& label, double value, double max_value,
                     int width, const std::string& unit) {
  const double frac = max_value > 0 ? std::clamp(value / max_value, 0.0, 1.0) : 0.0;
  const int filled = static_cast<int>(frac * width + 0.5);
  std::string line = "  ";
  line += label;
  if (label.size() < 28) line += std::string(28 - label.size(), ' ');
  line += " |" + std::string(filled, '#') + std::string(width - filled, ' ') + "| ";
  line += format_double(value, 1);
  if (!unit.empty()) line += " " + unit;
  return line;
}

}  // namespace sphinx
